/**
 * @file
 * Fig 14: normalized latency/throughput metrics for 12/24/48/96 SPR
 * cores (normalized to 12 cores), averaged over all models and
 * batches.
 */

#include "bench_common.h"

#include "perf/cpu_model.h"

namespace {

void
BM_CoreScalingSimulation(benchmark::State& state)
{
    const int cores = static_cast<int>(state.range(0));
    const cpullm::perf::CpuPerfModel m(cpullm::hw::sprPlatform(
        cpullm::hw::ClusteringMode::Quadrant,
        cpullm::hw::MemoryMode::Flat, cores));
    const auto spec = cpullm::model::llama2_7b();
    const auto w = cpullm::perf::paperWorkload(8);
    for (auto _ : state) {
        auto t = m.run(spec, w);
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_CoreScalingSimulation)->Arg(12)->Arg(48)->Arg(96);

} // namespace

int
main(int argc, char** argv)
{
    cpullm::bench::printFigure(cpullm::core::fig14CoreScaling());
    // Machine-readable run report(s) for this figure's
    // representative configuration (no-op without
    // CPULLM_RESULTS_DIR).
    cpullm::bench::reportSingleRequest(cpullm::hw::sprDefaultPlatform(),
                                       cpullm::model::llama2_7b(),
                                       cpullm::perf::paperWorkload(8));
    return cpullm::bench::runBenchmarks(argc, argv);
}
