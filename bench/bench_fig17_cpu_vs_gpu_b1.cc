/**
 * @file
 * Fig 17: end-to-end latency and throughput of the SPR Max CPU vs
 * A100/H100 GPUs at batch size 1, normalized to the CPU. Models
 * exceeding GPU memory run through the FlexGen-style offload engine.
 */

#include "bench_common.h"

#include "gpu/gpu_model.h"

namespace {

void
BM_GpuResidentSimulation(benchmark::State& state)
{
    const cpullm::gpu::GpuPerfModel h100(cpullm::hw::nvidiaH100());
    const auto m = cpullm::model::opt13b();
    const auto w = cpullm::perf::paperWorkload(1);
    for (auto _ : state) {
        auto r = h100.run(m, w);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_GpuResidentSimulation);

void
BM_GpuOffloadSimulation(benchmark::State& state)
{
    const cpullm::gpu::GpuPerfModel a100(cpullm::hw::nvidiaA100());
    const auto m = cpullm::model::opt30b();
    const auto w = cpullm::perf::paperWorkload(1);
    for (auto _ : state) {
        auto r = a100.run(m, w);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_GpuOffloadSimulation);

} // namespace

int
main(int argc, char** argv)
{
    const auto fig = cpullm::core::figCpuVsGpu(1);
    cpullm::bench::printFigure(fig.latency);
    cpullm::bench::printFigure(fig.throughput);
    // Machine-readable run report(s) for this figure's
    // representative configuration (no-op without
    // CPULLM_RESULTS_DIR).
    cpullm::bench::reportSingleRequest(cpullm::hw::sprDefaultPlatform(),
                                       cpullm::model::opt30b(),
                                       cpullm::perf::paperWorkload(1));
    cpullm::bench::reportGpuRequest(cpullm::hw::nvidiaA100(),
                                    cpullm::model::opt30b(),
                                    cpullm::perf::paperWorkload(1));
    cpullm::bench::reportGpuRequest(cpullm::hw::nvidiaH100(),
                                    cpullm::model::opt30b(),
                                    cpullm::perf::paperWorkload(1));
    return cpullm::bench::runBenchmarks(argc, argv);
}
