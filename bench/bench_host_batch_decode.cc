/**
 * @file
 * Host continuous-batching decode benchmark: wall-clock of the fused
 * ragged decode step (decodeStepRagged over the paged-KV block pool)
 * at batch sizes m in {1, 2, 4, 8, 16, 32} against the same model's
 * m=1 step. This is the mechanism behind `cpullm ... --batching
 * continuous`: one last-token row per live sequence fused into a
 * single m-row GEMM pass per projection, attention running per
 * sequence over its own paged span chunks.
 *
 * Decode at m=1 is bandwidth-bound on weight streaming (the paper's
 * Fig 8-11 regime), so fusing m sequences into one pass must amortize
 * the weight traffic into a near-linear aggregate tokens/s win — this
 * bench pins that scaling curve, the paged pool's byte accounting,
 * and the contract that makes fusion legal at all: ragged outputs
 * bitwise-equal to per-sequence sequential decode.
 *
 * Two baseline files come out of a run:
 *
 *  - --out DIR:          BENCH_host_batch_decode.json with every
 *                        metric, including machine-dependent tokens/s.
 *  - --baseline-out DIR: only the machine-relative metrics (the
 *                        "speedup/..." scaling ratios, the
 *                        deterministic "bytes_per_token/...",
 *                        "frag/..." pool accounting and "exact/..."
 *                        equivalence counts), which is what
 *                        bench/baselines/host commits and bench_diff
 *                        gates.
 *
 * Exit codes: 0 ok, 1 when --check-speedup is not met or an
 * equivalence/admission invariant breaks, 2 on usage errors like the
 * cpullm CLI.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/bench_suite.h"
#include "kv/kv_cache.h"
#include "kv/paged_kv_cache.h"
#include "model/spec.h"
#include "model/transformer.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace cpullm;

constexpr int kUsageExit = 2;

void
usage(std::ostream& os)
{
    os << "usage: bench_host_batch_decode [--quick] [--out DIR]\n"
          "                               [--baseline-out DIR]\n"
          "                               [--threads N]\n"
          "                               [--check-speedup X]\n"
          "\n"
          "Wall-clock benchmark of the fused ragged decode step over\n"
          "the paged-KV block pool at batch sizes 1..32 (the\n"
          "continuous-batching iteration) vs the same model at m=1.\n"
          "\n"
          "  --quick           short timing windows (the CI smoke\n"
          "                    settings; shapes are unchanged so the\n"
          "                    committed baseline stays comparable)\n"
          "  --out DIR         write BENCH_host_batch_decode.json\n"
          "                    (all metrics, incl. machine-bound\n"
          "                    tokens/s)\n"
          "  --baseline-out DIR  write only machine-relative metrics\n"
          "                    (speedup/*, bytes_per_token/*, frag/*,\n"
          "                    exact/*)\n"
          "  --threads N       cap host threads (also CPULLM_THREADS)\n"
          "  --check-speedup X fail (exit 1) unless the m=16\n"
          "                    aggregate-decode speedup geomean across\n"
          "                    model specs is >= X\n";
}

[[noreturn]] void
usageError(const std::string& msg)
{
    std::cerr << "bench_host_batch_decode: " << msg << "\n\n";
    usage(std::cerr);
    std::exit(kUsageExit);
}

[[noreturn]] void
invariantError(const std::string& msg)
{
    std::cerr << "bench_host_batch_decode: " << msg << "\n";
    std::exit(1);
}

double
geomean(const std::vector<double>& v)
{
    double acc = 0.0;
    for (const double x : v)
        acc += std::log(x);
    return std::exp(acc / static_cast<double>(v.size()));
}

std::string
fmt(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3g", v);
    return buf;
}

/** Equal-length random prompts in [0, vocab). */
std::vector<std::vector<std::int64_t>>
makePrompts(std::int64_t vocab, std::int64_t n, std::int64_t len,
            std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<std::int64_t>> prompts(
        static_cast<std::size_t>(n));
    for (auto& p : prompts) {
        p.resize(static_cast<std::size_t>(len));
        for (auto& tok : p)
            tok = static_cast<std::int64_t>(
                rng.uniformInt(static_cast<std::uint64_t>(vocab)));
    }
    return prompts;
}

/**
 * Bench specs sized so each model's weights (tens of MB in BF16)
 * overflow the last-level cache — the regime where m=1 decode is
 * bandwidth-bound on weight streaming and fusing rows into one GEMM
 * pass pays (the paper's Fig 8-11 argument). Toy test dims (d=64,
 * vocab<300) fit entirely in cache, are dominated by per-row compute
 * and per-call overheads, and understate the scaling the runtime
 * delivers on paper-scale models.
 */

/** OPT-flavoured spec (MHA, LayerNorm, learned pos, tied head). */
model::ModelSpec
benchOpt()
{
    model::ModelSpec s;
    s.name = "Bench-OPT";
    s.family = "test";
    s.numLayers = 4;
    s.dModel = 1024;
    s.numHeads = 16;
    s.numKvHeads = 16;
    s.dFf = 4096;
    s.vocabSize = 4099;
    s.maxSeqLen = 128;
    s.activation = model::Activation::ReLU;
    s.norm = model::NormKind::LayerNorm;
    s.posEmbedding = model::PosEmbedding::Learned;
    s.gatedFfn = false;
    s.linearBias = true;
    s.tiedEmbedding = true;
    s.validate();
    return s;
}

/** LLaMA-flavoured spec (GQA, RMSNorm, RoPE, SwiGLU). */
model::ModelSpec
benchLlama()
{
    model::ModelSpec s;
    s.name = "Bench-LLaMA";
    s.family = "test";
    s.numLayers = 4;
    s.dModel = 1024;
    s.numHeads = 16;
    s.numKvHeads = 4;
    s.dFf = 2816;
    s.vocabSize = 4096;
    s.maxSeqLen = 128;
    s.activation = model::Activation::SiLU;
    s.norm = model::NormKind::RMSNorm;
    s.posEmbedding = model::PosEmbedding::Rotary;
    s.gatedFfn = true;
    s.linearBias = false;
    s.tiedEmbedding = true;
    s.validate();
    return s;
}

/** A deeper narrow spec with an untied LM head. */
model::ModelSpec
benchDeep()
{
    model::ModelSpec s;
    s.name = "Bench-Deep";
    s.family = "test";
    s.numLayers = 8;
    s.dModel = 768;
    s.numHeads = 12;
    s.numKvHeads = 12;
    s.dFf = 3072;
    s.vocabSize = 3079;
    s.maxSeqLen = 128;
    s.activation = model::Activation::GELU;
    s.norm = model::NormKind::LayerNorm;
    s.posEmbedding = model::PosEmbedding::Learned;
    s.gatedFfn = false;
    s.linearBias = true;
    s.tiedEmbedding = false;
    s.validate();
    return s;
}

constexpr std::int64_t kCtx = 16;       ///< prompt tokens per sequence
constexpr std::int64_t kSteps = 8;      ///< timed fused decode steps
constexpr std::int64_t kBlockSize = 16; ///< paged-pool tokens/block

struct MeasureResult
{
    double tokensPerSecond = 0.0;
    double bytesPerToken = 0.0; ///< valid KV bytes per cached token
    double fragmentation = 0.0; ///< in-block slack after the run
};

/**
 * Steady-state aggregate decode throughput at batch m: prefill m
 * sequences into a fresh paged pool (untimed), then time kSteps fused
 * decodeStepRagged calls; repeat whole passes until the timed decode
 * region covers @p min_s.
 */
MeasureResult
measureDecode(model::TransformerModel& m,
              const std::vector<std::vector<std::int64_t>>& prompts,
              double min_s)
{
    const std::int64_t n =
        static_cast<std::int64_t>(prompts.size());
    const std::int64_t final_len = kCtx + 1 + kSteps;
    const std::int64_t per_seq =
        (final_len + kBlockSize - 1) / kBlockSize;
    kv::PagedKvCache cache =
        m.makePagedKvCache(kBlockSize, n * per_seq + 4);

    MeasureResult res;
    auto pass = [&](double* timed_acc) {
        cache.reset();
        std::vector<model::TransformerModel::RaggedSlot> slots(
            static_cast<std::size_t>(n));
        for (std::size_t b = 0; b < slots.size(); ++b) {
            const std::int64_t seq = cache.addSequence();
            const std::int64_t tok =
                m.prefillPaged(prompts[b], seq, cache);
            if (tok < 0)
                invariantError("paged pool rejected a prefill the "
                               "bench sized it for");
            slots[b] = {seq, tok};
        }
        using clock = std::chrono::steady_clock;
        const auto t0 = clock::now();
        for (std::int64_t step = 0; step < kSteps; ++step) {
            const auto next = m.decodeStepRagged(slots, cache);
            if (next.empty())
                invariantError("paged pool rejected a decode step "
                               "the bench sized it for");
            for (std::size_t b = 0; b < slots.size(); ++b)
                slots[b].token = next[b];
        }
        if (timed_acc)
            *timed_acc += std::chrono::duration<double>(clock::now() -
                                                        t0)
                              .count();
        res.bytesPerToken =
            static_cast<double>(cache.usedBytes()) /
            static_cast<double>(n * final_len);
        res.fragmentation = cache.fragmentation();
    };

    pass(nullptr); // warmup (touches weights and pool storage)
    double decode_s = 0.0;
    std::int64_t reps = 0;
    do {
        pass(&decode_s);
        ++reps;
    } while (decode_s < min_s);
    res.tokensPerSecond =
        static_cast<double>(n * kSteps * reps) / decode_s;
    return res;
}

/**
 * Count token mismatches between the fused ragged path and n
 * independent per-sequence runs on the contiguous cache — the
 * bitwise-equivalence contract that makes the fusion legal. Any
 * nonzero count is a bug; the committed baseline pins exactly 0.
 */
std::int64_t
equivalenceMismatches(model::TransformerModel& m,
                      const std::vector<std::vector<std::int64_t>>&
                          prompts)
{
    const std::int64_t n =
        static_cast<std::int64_t>(prompts.size());
    const std::int64_t final_len = kCtx + 1 + kSteps;

    // Reference: each sequence alone on the contiguous KV path.
    std::vector<std::vector<std::int64_t>> want(
        static_cast<std::size_t>(n));
    for (std::size_t b = 0; b < want.size(); ++b) {
        kv::KvCache cache = m.makeKvCache(1, final_len);
        std::vector<std::int64_t> last = m.prefill({prompts[b]}, cache);
        want[b].push_back(last[0]);
        for (std::int64_t step = 0; step < kSteps; ++step) {
            last = m.decodeStep(last, cache);
            want[b].push_back(last[0]);
        }
    }

    // Fused: all sequences in one ragged step per iteration.
    const std::int64_t per_seq =
        (final_len + kBlockSize - 1) / kBlockSize;
    kv::PagedKvCache cache =
        m.makePagedKvCache(kBlockSize, n * per_seq + 4);
    std::vector<model::TransformerModel::RaggedSlot> slots(
        static_cast<std::size_t>(n));
    std::vector<std::vector<std::int64_t>> got(
        static_cast<std::size_t>(n));
    for (std::size_t b = 0; b < slots.size(); ++b) {
        const std::int64_t seq = cache.addSequence();
        const std::int64_t tok = m.prefillPaged(prompts[b], seq, cache);
        if (tok < 0)
            invariantError("paged pool rejected the equivalence "
                           "prefill");
        slots[b] = {seq, tok};
        got[b].push_back(tok);
    }
    for (std::int64_t step = 0; step < kSteps; ++step) {
        const auto next = m.decodeStepRagged(slots, cache);
        if (next.empty())
            invariantError("paged pool rejected the equivalence "
                           "decode step");
        for (std::size_t b = 0; b < slots.size(); ++b) {
            slots[b].token = next[b];
            got[b].push_back(next[b]);
        }
    }

    std::int64_t mismatches = 0;
    for (std::size_t b = 0; b < want.size(); ++b)
        for (std::size_t i = 0; i < want[b].size(); ++i)
            if (want[b][i] != got[b][i])
                ++mismatches;
    return mismatches;
}

struct Row
{
    std::string spec;
    std::int64_t m = 0;
    double tokS = 0.0;
    double speedup = 0.0;
};

} // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    std::string out_dir;
    std::string baseline_dir;
    double check_speedup = 0.0;

    {
        std::string err;
        if (!applyThreadsEnv(&err))
            usageError("CPULLM_THREADS expects a non-negative "
                       "integer, got '" + err + "'");
    }

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char* flag) -> std::string {
            if (i + 1 >= argc)
                usageError(std::string(flag) + " needs a value");
            return argv[++i];
        };
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--out") {
            out_dir = value("--out");
        } else if (arg == "--baseline-out") {
            baseline_dir = value("--baseline-out");
        } else if (arg == "--threads") {
            const std::string v = value("--threads");
            char* end = nullptr;
            const long n = std::strtol(v.c_str(), &end, 10);
            if (end == v.c_str() || *end != '\0' || n < 0)
                usageError("--threads expects a non-negative "
                           "integer, got '" + v + "'");
            setMaxThreads(static_cast<std::size_t>(n));
        } else if (arg == "--check-speedup") {
            const std::string v = value("--check-speedup");
            char* end = nullptr;
            const double x = std::strtod(v.c_str(), &end);
            if (end == v.c_str() || *end != '\0' || !(x > 0.0))
                usageError("--check-speedup expects a positive "
                           "number, got '" + v + "'");
            check_speedup = x;
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else {
            usageError("unknown flag: " + arg);
        }
    }

    // Same shapes in both modes — only the timing window shrinks in
    // quick mode, so the committed machine-relative baseline compares
    // against identical work.
    const double min_s = quick ? 0.02 : 0.25;
    const std::vector<std::int64_t> batches = {1, 2, 4, 8, 16, 32};
    const model::ModelSpec specs[] = {benchOpt(), benchLlama(),
                                      benchDeep()};

    const auto run_started = std::chrono::steady_clock::now();
    core::BenchBaseline full;
    full.id = "host_batch_decode";
    full.title = "Host continuous-batching decode: fused ragged "
                 "steps over the paged-KV pool vs m=1";

    std::vector<Row> rows;
    // speedups[m index] collects the per-spec ratios for the geomean.
    std::vector<std::vector<double>> speedups(batches.size());

    for (const model::ModelSpec& spec : specs) {
        model::TransformerModel m(spec, gemm::Engine::AmxBf16, 31);
        const std::string tag = spec.name;

        double m1_tok_s = 0.0;
        for (std::size_t bi = 0; bi < batches.size(); ++bi) {
            const std::int64_t batch = batches[bi];
            const auto prompts =
                makePrompts(spec.vocabSize, batch, kCtx, 51 + batch);
            const MeasureResult r = measureDecode(m, prompts, min_s);
            if (batch == 1) {
                m1_tok_s = r.tokensPerSecond;
                full.metrics["bytes_per_token/" + tag] =
                    r.bytesPerToken;
            }
            const double speedup = r.tokensPerSecond / m1_tok_s;
            full.metrics["toks/" + tag + "_m" +
                         std::to_string(batch)] = r.tokensPerSecond;
            if (batch > 1) {
                full.metrics["speedup/" + tag + "_m" +
                             std::to_string(batch)] = speedup;
                speedups[bi].push_back(speedup);
            }
            if (batch == 8)
                full.metrics["frag/" + tag + "_m8"] = r.fragmentation;
            rows.push_back({tag, batch, r.tokensPerSecond, speedup});
        }

        full.metrics["exact/" + tag + "_ragged_vs_sequential"] =
            static_cast<double>(equivalenceMismatches(
                m, makePrompts(spec.vocabSize, 4, kCtx, 97)));
    }

    for (std::size_t bi = 0; bi < batches.size(); ++bi) {
        if (speedups[bi].empty())
            continue;
        full.metrics["speedup/batch" +
                     std::to_string(batches[bi]) + "_geomean"] =
            geomean(speedups[bi]);
    }

    full.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      run_started)
            .count();

    // ---- report ----
    Table t({"model", "m", "decode tok/s", "speedup vs m=1"});
    t.setCaption("host fused ragged decode over the paged-KV pool (" +
                 std::string(quick ? "quick" : "full") + ", " +
                 std::to_string(hardwareThreads()) + " threads)");
    for (const Row& r : rows) {
        t.addRow({r.spec, std::to_string(r.m), fmt(r.tokS),
                  fmt(r.speedup)});
    }
    t.print(std::cout);
    std::cout << "m=16 aggregate decode speedup geomean vs m=1: "
              << fmt(full.metrics["speedup/batch16_geomean"])
              << "x across " << std::size(specs) << " model specs\n";

    if (!out_dir.empty()) {
        if (!core::writeBaseline(full, out_dir)) {
            std::cerr << "bench_host_batch_decode: cannot write "
                      << out_dir << "\n";
            return 1;
        }
        std::cout << "wrote " << out_dir << "/" << full.filename()
                  << "\n";
    }
    if (!baseline_dir.empty()) {
        // Machine-relative subset only: raw tokens/s do not transfer
        // between machines; the scaling ratios, the deterministic
        // pool byte accounting and the equivalence counts do.
        core::BenchBaseline portable = full;
        for (auto it = portable.metrics.begin();
             it != portable.metrics.end();) {
            if (it->first.rfind("speedup/", 0) == 0 ||
                it->first.rfind("bytes_per_token/", 0) == 0 ||
                it->first.rfind("frag/", 0) == 0 ||
                it->first.rfind("exact/", 0) == 0)
                ++it;
            else
                it = portable.metrics.erase(it);
        }
        if (!core::writeBaseline(portable, baseline_dir)) {
            std::cerr << "bench_host_batch_decode: cannot write "
                      << baseline_dir << "\n";
            return 1;
        }
        std::cout << "wrote " << baseline_dir << "/"
                  << portable.filename() << " (machine-relative "
                  << portable.metrics.size() << " metrics)\n";
    }

    int rc = 0;
    for (const model::ModelSpec& spec : specs) {
        const double mism =
            full.metrics["exact/" + spec.name +
                         "_ragged_vs_sequential"];
        if (mism != 0.0) {
            std::cerr << "bench_host_batch_decode: " << spec.name
                      << " ragged decode diverged from sequential "
                         "decode ("
                      << mism << " token mismatches)\n";
            rc = 1;
        }
    }
    if (check_speedup > 0.0) {
        const double got = full.metrics["speedup/batch16_geomean"];
        if (!(got >= check_speedup)) {
            std::cerr << "bench_host_batch_decode: m=16 decode "
                         "speedup geomean "
                      << fmt(got) << "x is below the required "
                      << fmt(check_speedup) << "x\n";
            rc = 1;
        } else {
            std::cout << "speedup check passed: " << fmt(got)
                      << "x >= " << fmt(check_speedup) << "x\n";
        }
    }
    return rc;
}
