/**
 * @file
 * Fig 21: CPU vs GPU latency/throughput across input sequence lengths
 * at batch size 16. The sweep extends past the paper's 1024 tokens to
 * show the H100/CPU crossover on LLaMA2-70B (see EXPERIMENTS.md for
 * the paper-vs-model discussion).
 */

#include "bench_common.h"

#include "gpu/gpu_model.h"
#include "perf/cpu_model.h"

namespace {

void
BM_CrossoverPointSearch(benchmark::State& state)
{
    const cpullm::perf::CpuPerfModel spr(
        cpullm::hw::sprDefaultPlatform());
    const cpullm::gpu::GpuPerfModel h100(cpullm::hw::nvidiaH100());
    const auto m = cpullm::model::llama2_70b();
    for (auto _ : state) {
        std::int64_t crossover = -1;
        for (std::int64_t s : {128, 256, 512, 1024, 2048, 4096}) {
            cpullm::perf::Workload w;
            w.batch = 16;
            w.promptLen = s;
            w.genLen = 32;
            if (h100.run(m, w).timing.e2eLatency <
                spr.run(m, w).e2eLatency) {
                crossover = s;
                break;
            }
        }
        benchmark::DoNotOptimize(crossover);
    }
}
BENCHMARK(BM_CrossoverPointSearch);

} // namespace

int
main(int argc, char** argv)
{
    const auto fig = cpullm::core::figSeqLenSweep(16);
    cpullm::bench::printFigure(fig.latency);
    cpullm::bench::printFigure(fig.throughput);
    // Machine-readable run report(s) for this figure's
    // representative configuration (no-op without
    // CPULLM_RESULTS_DIR).
    cpullm::perf::Workload wl = cpullm::perf::paperWorkload(16);
    wl.promptLen = 1024;
    cpullm::bench::reportSingleRequest(cpullm::hw::sprDefaultPlatform(),
                                       cpullm::model::llama2_13b(),
                                       wl);
    return cpullm::bench::runBenchmarks(argc, argv);
}
