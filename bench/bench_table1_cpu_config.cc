/**
 * @file
 * Table I: the CPU server configurations (ICL 8352Y vs SPR Max 9468),
 * printed from the hardware registry. The benchmark times platform
 * construction + validation.
 */

#include "bench_common.h"

#include "hw/platform.h"

namespace {

void
BM_PlatformConstruction(benchmark::State& state)
{
    for (auto _ : state) {
        auto p = cpullm::hw::sprDefaultPlatform();
        benchmark::DoNotOptimize(p);
    }
}
BENCHMARK(BM_PlatformConstruction);

void
BM_PlatformParse(benchmark::State& state)
{
    for (auto _ : state) {
        auto p = cpullm::hw::platformByName("spr/snc_cache/24c");
        benchmark::DoNotOptimize(p);
    }
}
BENCHMARK(BM_PlatformParse);

} // namespace

int
main(int argc, char** argv)
{
    cpullm::core::table1CpuConfigs().print(std::cout);
    std::cout << '\n';
    return cpullm::bench::runBenchmarks(argc, argv);
}
