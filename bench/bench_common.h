#ifndef CPULLM_BENCH_BENCH_COMMON_H
#define CPULLM_BENCH_BENCH_COMMON_H

/**
 * @file
 * Shared helpers for the per-figure benchmark binaries: print a
 * reproduced figure as a console table (and as CSV when
 * CPULLM_RESULTS_DIR is set), then hand control to google-benchmark
 * for the registered simulator timers.
 */

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/experiments.h"
#include "core/figure.h"
#include "obs/run_report.h"
#include "util/logging.h"

namespace cpullm {
namespace bench {

/** Print one figure; dump CSV when CPULLM_RESULTS_DIR is set. */
inline void
printFigure(const core::FigureData& f)
{
    f.toTable().print(std::cout);
    std::cout << '\n';
    if (const char* dir = std::getenv("CPULLM_RESULTS_DIR")) {
        const std::string path =
            std::string(dir) + "/" + f.id() + ".csv";
        if (f.writeCsv(path))
            inform("wrote ", path);
    }
}

/**
 * Append a run report to $CPULLM_RESULTS_DIR/reports.jsonl, so a
 * benchmark sweep leaves one machine-readable line per experiment
 * next to the figure CSVs. No-op when the env var is unset.
 */
inline void
appendRunReport(const obs::RunReport& report)
{
    if (const char* dir = std::getenv("CPULLM_RESULTS_DIR")) {
        const std::string path =
            std::string(dir) + "/reports.jsonl";
        if (report.appendJsonlFile(path))
            inform("appended report to ", path);
    }
}

/** Standard google-benchmark driver tail for every binary. */
inline int
runBenchmarks(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

} // namespace bench
} // namespace cpullm

#endif // CPULLM_BENCH_BENCH_COMMON_H
