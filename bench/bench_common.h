#ifndef CPULLM_BENCH_BENCH_COMMON_H
#define CPULLM_BENCH_BENCH_COMMON_H

/**
 * @file
 * Shared helpers for the per-figure benchmark binaries: print a
 * reproduced figure as a console table (and as CSV when
 * CPULLM_RESULTS_DIR is set), append machine-readable run reports
 * next to the CSVs, then hand control to google-benchmark for the
 * registered simulator timers.
 */

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>

#include "core/experiments.h"
#include "core/figure.h"
#include "engine/inference_engine.h"
#include "gpu/gpu_attribution.h"
#include "gpu/gpu_model.h"
#include "obs/run_report.h"
#include "util/logging.h"

namespace cpullm {
namespace bench {

/**
 * Results directory from $CPULLM_RESULTS_DIR, created if needed; ""
 * when the variable is unset (callers skip their export then). The
 * one place the env var is consulted.
 */
inline std::string
resultsDir()
{
    const char* dir = std::getenv("CPULLM_RESULTS_DIR");
    if (!dir || !*dir)
        return "";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        warn("cannot create ", dir, ": ", ec.message());
        return "";
    }
    return dir;
}

/** Print one figure; dump CSV when CPULLM_RESULTS_DIR is set. */
inline void
printFigure(const core::FigureData& f)
{
    f.toTable().print(std::cout);
    std::cout << '\n';
    const std::string dir = resultsDir();
    if (!dir.empty()) {
        const std::string path = dir + "/" + f.id() + ".csv";
        if (f.writeCsv(path))
            inform("wrote ", path);
    }
}

/**
 * Append a run report to $CPULLM_RESULTS_DIR/reports.jsonl, so a
 * benchmark sweep leaves one machine-readable line per experiment
 * next to the figure CSVs. No-op when the env var is unset.
 */
inline void
appendRunReport(const obs::RunReport& report)
{
    const std::string dir = resultsDir();
    if (dir.empty())
        return;
    const std::string path = dir + "/reports.jsonl";
    if (report.appendJsonlFile(path))
        inform("appended report to ", path);
}

/**
 * Simulate one CPU request and append its run report (bottleneck
 * attribution embedded). No-op when CPULLM_RESULTS_DIR is unset, so
 * binaries pay nothing in plain runs.
 */
inline void
reportSingleRequest(const hw::PlatformConfig& platform,
                    const model::ModelSpec& spec,
                    const perf::Workload& w)
{
    if (resultsDir().empty())
        return;
    engine::CpuInferenceEngine eng(platform, spec);
    const auto r = eng.infer(w);
    appendRunReport(obs::makeInferenceReport(platform.label(),
                                             spec.name, w, r.timing,
                                             r.counters,
                                             &r.attribution));
}

/**
 * Same for a GPU board: simulate, attribute (Fig 18 components for
 * offloaded runs) and append. Modeled CPU counters do not apply.
 */
inline void
reportGpuRequest(const hw::GpuConfig& gpu,
                 const model::ModelSpec& spec, const perf::Workload& w)
{
    if (resultsDir().empty())
        return;
    const gpu::GpuPerfModel m(gpu);
    const auto r = m.run(spec, w);
    const obs::Attribution attr = gpu::attributeGpuResult(m, r);
    appendRunReport(obs::makeInferenceReport(attr.device, spec.name,
                                             w, r.timing,
                                             perf::Counters{},
                                             &attr));
}

/** Standard google-benchmark driver tail for every binary. */
inline int
runBenchmarks(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

} // namespace bench
} // namespace cpullm

#endif // CPULLM_BENCH_BENCH_COMMON_H
