/**
 * @file
 * Measured-hardware-counter micro-bench: runs the tiny functional
 * model (prefill + decode on the real host kernels) under a
 * pmu::Session and emits BENCH_host_counters.json for bench_diff.
 *
 * Raw counts are machine-bound, so the committed baseline keeps only
 * machine-relative facts — completion/availability flags and the
 * paper's trend booleans (decode MPKI > prefill MPKI, decode MPKI
 * falling with batch, prefill IPC > decode IPC) — evaluated as 0/1
 * metrics. Hardware trends are emitted only when hardware events
 * actually opened; on PMU-less machines and under --counters soft
 * they are simply absent, which bench_diff reports as notes, not
 * failures. The CI counters-smoke job runs with --counters soft so
 * the committed baseline is reproducible in unprivileged containers.
 *
 *  - --out DIR:          every metric, incl. machine-bound measured
 *                        IPC/MPKI/GB/s per batch.
 *  - --baseline-out DIR: only the ok/, avail/ and trend/ metrics,
 *                        which is what bench/baselines/host commits.
 *
 * Exit codes: 0 ok, 1 on I/O failure, 2 on usage errors.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/bench_suite.h"
#include "engine/inference_engine.h"
#include "hw/platform.h"
#include "model/spec.h"
#include "obs/counters.h"
#include "obs/perf_events.h"
#include "util/parallel.h"
#include "util/table.h"

namespace {

using namespace cpullm;

constexpr int kUsageExit = 2;

void
usage(std::ostream& os)
{
    os << "usage: bench_host_counters [--quick] [--out DIR]\n"
          "                           [--baseline-out DIR]\n"
          "                           [--threads N]\n"
          "                           [--counters auto|perf|soft]\n"
          "\n"
          "Measured hardware counters of the functional host path\n"
          "(tiny model, batches 1 and 8), with the paper's Fig 11/12\n"
          "trend booleans evaluated on the measured numbers.\n"
          "\n"
          "  --quick           shorter run (the CI smoke settings)\n"
          "  --out DIR         write BENCH_host_counters.json (all\n"
          "                    metrics, incl. machine-bound counts)\n"
          "  --baseline-out DIR  write only machine-relative metrics\n"
          "                    (ok/*, avail/*, trend/*)\n"
          "  --threads N       cap host threads (also CPULLM_THREADS)\n"
          "  --counters MODE   backend: auto (default), perf, soft\n"
          "                    (also CPULLM_COUNTERS; off is a usage\n"
          "                    error here — this bench measures)\n";
}

[[noreturn]] void
usageError(const std::string& msg)
{
    std::cerr << "bench_host_counters: " << msg << "\n\n";
    usage(std::cerr);
    std::exit(kUsageExit);
}

/** 1.0 / 0.0 for the boolean trend metrics. */
double
asMetric(bool b)
{
    return b ? 1.0 : 0.0;
}

std::string
fmt(double v)
{
    if (!std::isfinite(v))
        return "n/a";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3g", v);
    return buf;
}

struct PhaseMeasurement
{
    obs::pmu::PmuCounts counts;
    obs::CounterMetrics metrics;
};

} // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    std::string out_dir;
    std::string baseline_dir;

    {
        std::string err;
        if (!applyThreadsEnv(&err))
            usageError("CPULLM_THREADS expects a non-negative "
                       "integer, got '" + err + "'");
        if (!obs::pmu::applyCountersEnv(&err))
            usageError("CPULLM_COUNTERS expects auto|perf|soft|off, "
                       "got '" + err + "'");
    }
    bool mode_given = obs::pmu::countersEnvPresent();

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char* flag) -> std::string {
            if (i + 1 >= argc)
                usageError(std::string(flag) + " needs a value");
            return argv[++i];
        };
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--out") {
            out_dir = value("--out");
        } else if (arg == "--baseline-out") {
            baseline_dir = value("--baseline-out");
        } else if (arg == "--threads") {
            const std::string v = value("--threads");
            char* end = nullptr;
            const long n = std::strtol(v.c_str(), &end, 10);
            if (end == v.c_str() || *end != '\0' || n < 0)
                usageError("--threads expects a non-negative "
                           "integer, got '" + v + "'");
            setMaxThreads(static_cast<std::size_t>(n));
        } else if (arg == "--counters") {
            const std::string v = value("--counters");
            obs::pmu::Mode m;
            if (!obs::pmu::modeFromString(v, &m))
                usageError("--counters expects auto|perf|soft|off, "
                           "got '" + v + "'");
            obs::pmu::setRequestedMode(m);
            mode_given = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else {
            usageError("unknown flag: " + arg);
        }
    }
    if (!mode_given)
        obs::pmu::setRequestedMode(obs::pmu::Mode::Auto);
    if (obs::pmu::requestedMode() == obs::pmu::Mode::Off)
        usageError("this bench measures counters; --counters off "
                   "leaves nothing to do");

    const auto run_started = std::chrono::steady_clock::now();
    core::BenchBaseline full;
    full.id = "host_counters";
    full.title = "Measured hardware counters of the functional host "
                 "path: availability and Fig 11/12 trend booleans";

    const model::ModelSpec spec = model::modelByName("tiny");
    perf::Workload w;
    w.promptLen = quick ? 16 : 32;
    w.genLen = quick ? 16 : 32;
    // Keep each batch's decode window long enough that even the
    // coarse rusage clock of the soft backend sees nonzero CPU time.
    const double min_decode_wall_ns = quick ? 10e6 : 40e6;
    const int max_reps = quick ? 3 : 6;

    obs::pmu::Session& session = obs::pmu::Session::instance();
    const obs::pmu::Backend backend =
        session.begin(obs::pmu::requestedMode());
    const obs::pmu::PerfProbe probe = session.probe();
    const int hw_events = session.hardwareEventsOpen();
    const bool imc = session.imcOpen();

    const std::vector<std::int64_t> batches = {1, 8};
    std::vector<PhaseMeasurement> prefills, decodes;
    for (const std::int64_t b : batches) {
        w.batch = b;
        engine::CpuInferenceEngine eng(
            hw::sprDefaultPlatform(), spec,
            engine::ExecutionMode::FunctionalAndTiming);
        session.clearSlots();
        for (int rep = 0; rep < max_reps; ++rep) {
            (void)eng.infer(w);
            if (session.slot("decode").wallNs >= min_decode_wall_ns)
                break;
        }
        PhaseMeasurement pre, dec;
        pre.counts = session.slot("prefill");
        dec.counts = session.slot("decode");
        // Tokens per engine rep cancel out of the ratio metrics the
        // trends use; per-token numbers use the accumulated totals
        // and so describe "per generated token" exactly.
        pre.metrics = obs::deriveCounterMetrics(
            pre.counts, static_cast<double>(b));
        dec.metrics = obs::deriveCounterMetrics(
            dec.counts,
            static_cast<double>(b) *
                static_cast<double>(w.genLen - 1));
        prefills.push_back(pre);
        decodes.push_back(dec);

        const std::string tag = "b" + std::to_string(b);
        auto finiteMetric = [&](const std::string& key, double v) {
            // BenchBaseline JSON has no null; unavailable metrics
            // are omitted rather than faked.
            if (std::isfinite(v))
                full.metrics[key] = v;
        };
        finiteMetric("measured/" + tag + "_prefill_ipc",
                     pre.metrics.ipc);
        finiteMetric("measured/" + tag + "_decode_ipc",
                     dec.metrics.ipc);
        finiteMetric("measured/" + tag + "_prefill_llc_mpki",
                     pre.metrics.llcMpki);
        finiteMetric("measured/" + tag + "_decode_llc_mpki",
                     dec.metrics.llcMpki);
        finiteMetric("measured/" + tag + "_decode_gbps",
                     dec.metrics.gbps);
        finiteMetric("wall/" + tag + "_decode_ms",
                     dec.counts.wallNs / 1e6);
        finiteMetric("wall/" + tag + "_decode_task_clock_ms",
                     dec.counts.taskClockNs / 1e6);
    }
    session.end();

    // Machine-relative facts: did the run complete, what opened, and
    // the paper's trends on the measured numbers. Hardware trends
    // need hardware events; when none opened (soft backend, PMU-less
    // VM) they are omitted entirely.
    full.metrics["ok/completed"] = 1.0;
    full.metrics["ok/backend_selected"] =
        asMetric(backend != obs::pmu::Backend::Disabled);
    full.metrics["avail/hw_events"] = static_cast<double>(hw_events);
    full.metrics["avail/imc"] = asMetric(imc);
    full.metrics["trend/task_clock_positive"] =
        asMetric(decodes[0].counts.taskClockNs > 0.0);
    full.metrics["trend/decode_wall_positive"] =
        asMetric(decodes[0].counts.wallNs > 0.0);
    const double pre_mpki = prefills[0].metrics.llcMpki;
    const double dec_mpki_b1 = decodes[0].metrics.llcMpki;
    const double dec_mpki_b8 = decodes[1].metrics.llcMpki;
    if (std::isfinite(pre_mpki) && std::isfinite(dec_mpki_b1))
        full.metrics["trend/decode_mpki_gt_prefill"] =
            asMetric(dec_mpki_b1 > pre_mpki);
    if (std::isfinite(dec_mpki_b1) && std::isfinite(dec_mpki_b8))
        full.metrics["trend/mpki_falls_with_batch"] =
            asMetric(dec_mpki_b8 < dec_mpki_b1);
    if (std::isfinite(prefills[0].metrics.ipc) &&
        std::isfinite(decodes[0].metrics.ipc))
        full.metrics["trend/prefill_ipc_gt_decode"] =
            asMetric(prefills[0].metrics.ipc >
                     decodes[0].metrics.ipc);

    full.wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - run_started)
            .count();

    Table t({"batch", "phase", "IPC", "LLC MPKI", "GB/s",
             "task clock ms"});
    t.setCaption("measured host counters (backend " +
                 std::string(obs::pmu::backendName(backend)) + ", " +
                 std::to_string(hw_events) + " hw events, paranoid " +
                 std::to_string(probe.paranoid) + ")");
    for (std::size_t i = 0; i < batches.size(); ++i) {
        const std::string b = std::to_string(batches[i]);
        t.addRow({b, "prefill", fmt(prefills[i].metrics.ipc),
                  fmt(prefills[i].metrics.llcMpki),
                  fmt(prefills[i].metrics.gbps),
                  fmt(prefills[i].counts.taskClockNs / 1e6)});
        t.addRow({b, "decode", fmt(decodes[i].metrics.ipc),
                  fmt(decodes[i].metrics.llcMpki),
                  fmt(decodes[i].metrics.gbps),
                  fmt(decodes[i].counts.taskClockNs / 1e6)});
    }
    t.print(std::cout);

    if (!out_dir.empty()) {
        if (!core::writeBaseline(full, out_dir)) {
            std::cerr << "bench_host_counters: cannot write "
                      << out_dir << "\n";
            return 1;
        }
        std::cout << "wrote " << out_dir << "/" << full.filename()
                  << "\n";
    }
    if (!baseline_dir.empty()) {
        // Machine-relative subset only: raw counts and rates do not
        // transfer between machines, flags and trend booleans do.
        core::BenchBaseline portable = full;
        for (auto it = portable.metrics.begin();
             it != portable.metrics.end();) {
            if (it->first.rfind("ok/", 0) == 0 ||
                it->first.rfind("avail/", 0) == 0 ||
                it->first.rfind("trend/", 0) == 0)
                ++it;
            else
                it = portable.metrics.erase(it);
        }
        if (!core::writeBaseline(portable, baseline_dir)) {
            std::cerr << "bench_host_counters: cannot write "
                      << baseline_dir << "\n";
            return 1;
        }
        std::cout << "wrote " << baseline_dir << "/"
                  << portable.filename() << " (machine-relative "
                  << portable.metrics.size() << " metrics)\n";
    }
    return 0;
}
