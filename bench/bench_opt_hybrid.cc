/**
 * @file
 * Ablation for the paper's Section VI "CPU-GPU hybrid execution"
 * proposal: split decoder layers between the AMX CPU and a GPU so
 * offload-class models stop streaming weights over PCIe. Prints the
 * optimal split and its gain over the best pure strategy.
 */

#include "bench_common.h"

#include "opt/hybrid.h"
#include "util/string_util.h"

namespace {

using namespace cpullm;

core::FigureData
buildHybridFigure(std::int64_t batch)
{
    core::FigureData f(
        strformat("opt_hybrid_b%lld", static_cast<long long>(batch)),
        strformat("CPU-GPU hybrid execution, batch %lld",
                  static_cast<long long>(batch)),
        "model/gpu", "E2E latency (s)");

    std::vector<std::string> labels;
    std::vector<double> pure_cpu, pure_gpu, hybrid, frac;
    const auto w = perf::paperWorkload(batch);
    for (const auto& gpu_cfg :
         {hw::nvidiaA100(), hw::nvidiaH100()}) {
        const opt::HybridExecutionModel hy(hw::sprDefaultPlatform(),
                                           gpu_cfg);
        for (const auto& m : {model::opt30b(), model::opt66b(),
                              model::llama2_70b()}) {
            const auto r = hy.optimize(m, w);
            labels.push_back(m.name + "/" + gpu_cfg.shortName);
            pure_cpu.push_back(r.pureCpu.e2eLatency);
            pure_gpu.push_back(r.pureGpu.e2eLatency);
            hybrid.push_back(r.best.timing.e2eLatency);
            frac.push_back(r.best.cpuFraction);
        }
    }
    f.setXLabels(labels);
    f.addSeries("pure_cpu", std::move(pure_cpu));
    f.addSeries("pure_gpu", std::move(pure_gpu));
    f.addSeries("hybrid", std::move(hybrid));
    f.addSeries("cpu_fraction", std::move(frac));
    return f;
}

void
BM_HybridOptimize(benchmark::State& state)
{
    const opt::HybridExecutionModel hy(hw::sprDefaultPlatform(),
                                       hw::nvidiaH100());
    const auto w = perf::paperWorkload(8);
    for (auto _ : state) {
        auto r = hy.optimize(model::opt66b(), w);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_HybridOptimize);

} // namespace

int
main(int argc, char** argv)
{
    cpullm::bench::printFigure(buildHybridFigure(1));
    cpullm::bench::printFigure(buildHybridFigure(16));
    // Machine-readable run report(s) for this figure's
    // representative configuration (no-op without
    // CPULLM_RESULTS_DIR).
    cpullm::bench::reportSingleRequest(cpullm::hw::sprDefaultPlatform(),
                                       cpullm::model::llama2_13b(),
                                       cpullm::perf::paperWorkload(16));
    return cpullm::bench::runBenchmarks(argc, argv);
}
