/**
 * @file
 * Fig 15: LLC MPKI, core utilization, and remote-LLC accesses for
 * LLaMA2-13B (batch 8) under the four NUMA configurations.
 */

#include "bench_common.h"

#include "mem/memory_system.h"

namespace {

void
BM_MemoryPlanSolve(benchmark::State& state)
{
    const cpullm::mem::MemorySystem ms(
        cpullm::hw::sprDefaultPlatform());
    cpullm::mem::RegionSizes sizes;
    sizes.weights = cpullm::model::llama2_13b().weightBytes(
        cpullm::DType::BF16);
    sizes.kvCache = 4ULL << 30;
    sizes.activations = 1ULL << 30;
    for (auto _ : state) {
        auto plan = ms.plan(sizes);
        benchmark::DoNotOptimize(plan);
    }
}
BENCHMARK(BM_MemoryPlanSolve);

} // namespace

int
main(int argc, char** argv)
{
    cpullm::bench::printFigure(cpullm::core::fig15NumaCounters());
    // Machine-readable run report(s) for this figure's
    // representative configuration (no-op without
    // CPULLM_RESULTS_DIR).
    cpullm::bench::reportSingleRequest(cpullm::hw::sprDefaultPlatform(),
                                       cpullm::model::llama2_13b(),
                                       cpullm::perf::paperWorkload(8));
    return cpullm::bench::runBenchmarks(argc, argv);
}
