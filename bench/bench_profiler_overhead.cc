/**
 * @file
 * Overhead guard for the sampling profiler: the same functional
 * inference workload is executed with the profiler off and with it
 * sampling at 97 Hz, interleaved, and the minimum process-CPU-time
 * per arm is compared. The profiler's cost is a SIGPROF delivery plus
 * a bounded memcpy per sample — at 97 Hz that must stay within a few
 * percent of the unprofiled run, and the ctest wired to this binary
 * fails the build when it does not.
 *
 * CPU time (CLOCK_PROCESS_CPUTIME_ID) is compared instead of wall
 * time: the overhead being bounded is compute the handler steals, and
 * CPU time is robust against scheduler noise on shared CI runners.
 * Min-of-R discards interference spikes on both arms alike.
 *
 * Usage: bench_profiler_overhead [--quick] [--reps N] [--tol X]
 * Exit codes: 0 within tolerance, 1 over, 2 usage error.
 */

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <iostream>
#include <string>

#include "engine/inference_engine.h"
#include "hw/platform.h"
#include "model/spec.h"
#include "obs/profiler.h"
#include "perf/workload.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_registry.h"

using namespace cpullm;

namespace {

/** Tolerated on/off CPU-time ratio. Sanitizer builds intercept every
 *  signal delivery, so the handler costs far more than in production
 *  code; the guard loosens rather than testing the sanitizer. */
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr double kDefaultTol = 1.10;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr double kDefaultTol = 1.10;
#else
constexpr double kDefaultTol = 1.03;
#endif
#else
constexpr double kDefaultTol = 1.03;
#endif

double
cpuSeconds()
{
    timespec ts;
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

[[noreturn]] void
usageError(const std::string& msg)
{
    std::cerr << "bench_profiler_overhead: " << msg << "\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char** argv)
{
    int reps = 9;
    double tol = kDefaultTol;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--quick") {
            reps = 5;
        } else if (a == "--reps" && i + 1 < argc) {
            reps = std::atoi(argv[++i]);
            if (reps < 1)
                usageError("--reps expects a positive integer");
        } else if (a == "--tol" && i + 1 < argc) {
            tol = std::atof(argv[++i]);
            if (tol <= 0.0)
                usageError("--tol expects a positive ratio");
        } else {
            usageError("unknown flag '" + a + "'");
        }
    }

    threadreg::registerCurrentThread("main");
    const auto platform = hw::sprDefaultPlatform();
    const auto spec = model::modelByName("tiny");
    perf::Workload w;
    w.batch = 1;
    w.promptLen = 32;
    w.genLen = 32;
    engine::CpuInferenceEngine eng(
        platform, spec, engine::ExecutionMode::FunctionalAndTiming);

    auto workload = [&] { (void)eng.infer(w); };

    // Warmup: weight packing, pool spin-up, page faults.
    workload();
    workload();

    obs::prof::Profiler& prof = obs::prof::Profiler::instance();
    obs::prof::Options popt;
    popt.hz = 97.0;

    double min_off = 1e300, min_on = 1e300;
    for (int r = 0; r < reps; ++r) {
        double t0 = cpuSeconds();
        workload();
        const double off = cpuSeconds() - t0;
        if (off < min_off)
            min_off = off;

        if (!prof.start(popt))
            CPULLM_FATAL("cannot start the sampling profiler");
        t0 = cpuSeconds();
        workload();
        const double on = cpuSeconds() - t0;
        prof.stop();
        if (on < min_on)
            min_on = on;
    }
    const obs::prof::FoldedProfile p = prof.collect();

    const double ratio = min_on / std::max(1e-12, min_off);
    std::cout << strformat(
        "profiler overhead: off %.3f ms, on %.3f ms @ %.0f Hz "
        "(%llu samples), ratio %.4f, tolerance %.2f\n",
        min_off * 1e3, min_on * 1e3, popt.hz,
        static_cast<unsigned long long>(p.samples), ratio, tol);
    if (ratio > tol) {
        std::cout << "overhead [FAIL] profiled run "
                  << strformat("%.1f", 100.0 * (ratio - 1.0))
                  << " % slower than unprofiled\n";
        return 1;
    }
    std::cout << "overhead [PASS] within "
              << strformat("%.0f", 100.0 * (tol - 1.0)) << " %\n";
    return 0;
}
