/**
 * @file
 * Host quantized-weight micro-benchmark: wall-clock of the fused
 * group-wise INT8/INT4 dequant kernels against the packed BF16
 * functional path on the paper's decode (m=1) GEMV shapes, plus the
 * quantized formats' byte footprints and dequantization accuracy.
 *
 * This measures *host* execution speed of the emulator — decode is
 * bandwidth-bound, so fewer weight bytes per token must show up as
 * real m=1 wall-clock wins, and this bench pins that. Two baseline
 * files come out of a run:
 *
 *  - --out DIR:          BENCH_host_quant.json with every metric,
 *                        including machine-dependent GFLOP/s.
 *  - --baseline-out DIR: only the machine-relative metrics (the
 *                        "speedup/..." ratios, "bytes_ratio/..." and
 *                        "bytes_reduction/..." footprints, "acc/..."
 *                        dequant errors and "exact/..." invariance
 *                        diffs), which is what bench/baselines/host
 *                        commits and bench_diff gates.
 *
 * Exit codes: 0 ok, 1 when --check-speedup or
 * --check-bytes-reduction is not met, 2 on usage errors (unknown
 * flags, malformed values) like the cpullm CLI.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/bench_suite.h"
#include "gemm/gemm.h"
#include "gemm/packed_weights.h"
#include "numerics/bf16.h"
#include "numerics/dtype.h"
#include "tensor/tensor.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace cpullm;

constexpr int kUsageExit = 2;

void
usage(std::ostream& os)
{
    os << "usage: bench_host_quant [--quick] [--out DIR]\n"
          "                        [--baseline-out DIR] [--threads N]\n"
          "                        [--check-speedup X]\n"
          "                        [--check-bytes-reduction X]\n"
          "\n"
          "Wall-clock benchmark of the fused group-wise INT8/INT4\n"
          "dequant kernels vs the packed BF16 functional path.\n"
          "\n"
          "  --quick           small shapes (the CI smoke settings)\n"
          "  --out DIR         write BENCH_host_quant.json (all\n"
          "                    metrics, incl. machine-bound GFLOP/s)\n"
          "  --baseline-out DIR  write only machine-relative metrics\n"
          "                    (speedup/*, bytes_*/*, acc/*, exact/*)\n"
          "  --threads N       cap host threads (also CPULLM_THREADS)\n"
          "  --check-speedup X fail (exit 1) unless the INT4 decode\n"
          "                    GEMV geomean speedup vs packed BF16\n"
          "                    is >= X\n"
          "  --check-bytes-reduction X  fail (exit 1) unless INT4\n"
          "                    moves >= Xx fewer weight bytes than\n"
          "                    packed BF16\n";
}

[[noreturn]] void
usageError(const std::string& msg)
{
    std::cerr << "bench_host_quant: " << msg << "\n\n";
    usage(std::cerr);
    std::exit(kUsageExit);
}

/** Mean seconds per call: one warmup, then repeat until min_s. */
template <typename Fn>
double
timeLoop(double min_s, const Fn& fn)
{
    fn(); // warmup
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    int reps = 0;
    double elapsed = 0.0;
    do {
        fn();
        ++reps;
        elapsed = std::chrono::duration<double>(clock::now() - t0)
                      .count();
    } while (elapsed < min_s);
    return elapsed / reps;
}

double
geomean(const std::vector<double>& v)
{
    double acc = 0.0;
    for (const double x : v)
        acc += std::log(x);
    return std::exp(acc / static_cast<double>(v.size()));
}

double
gflops(std::int64_t m, std::int64_t n, std::int64_t k, double secs)
{
    return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
           static_cast<double>(k) / secs / 1e9;
}

std::string
fmt(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3g", v);
    return buf;
}

/** Plain FP32 reference GEMM (row-major, [m,k] x [k,n]). */
std::vector<float>
refGemm(const float* a, const float* b, std::int64_t m,
        std::int64_t k, std::int64_t n)
{
    std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
    for (std::int64_t mi = 0; mi < m; ++mi)
        for (std::int64_t kk = 0; kk < k; ++kk) {
            const float av = a[mi * k + kk];
            for (std::int64_t j = 0; j < n; ++j)
                c[static_cast<std::size_t>(mi * n + j)] +=
                    av * b[kk * n + j];
        }
    return c;
}

double
maxAbsDiff(const std::vector<float>& x, const std::vector<float>& y)
{
    double worst = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
        worst = std::max(worst, static_cast<double>(std::fabs(
                                    x[i] - y[i])));
    return worst;
}

struct Row
{
    std::string kernel;
    std::string label;
    std::int64_t k, n;
    double bf16S = 0.0;
    double quantS = 0.0;
    double bytesRatio = 0.0;
};

} // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    std::string out_dir;
    std::string baseline_dir;
    double check_speedup = 0.0;
    double check_bytes_reduction = 0.0;

    {
        std::string err;
        if (!applyThreadsEnv(&err))
            usageError("CPULLM_THREADS expects a non-negative "
                       "integer, got '" + err + "'");
    }

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char* flag) -> std::string {
            if (i + 1 >= argc)
                usageError(std::string(flag) + " needs a value");
            return argv[++i];
        };
        auto positive = [&](const char* flag,
                            const std::string& v) -> double {
            char* end = nullptr;
            const double x = std::strtod(v.c_str(), &end);
            if (end == v.c_str() || *end != '\0' || !(x > 0.0))
                usageError(std::string(flag) +
                           " expects a positive number, got '" + v +
                           "'");
            return x;
        };
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--out") {
            out_dir = value("--out");
        } else if (arg == "--baseline-out") {
            baseline_dir = value("--baseline-out");
        } else if (arg == "--threads") {
            const std::string v = value("--threads");
            char* end = nullptr;
            const long n = std::strtol(v.c_str(), &end, 10);
            if (end == v.c_str() || *end != '\0' || n < 0)
                usageError("--threads expects a non-negative "
                           "integer, got '" + v + "'");
            setMaxThreads(static_cast<std::size_t>(n));
        } else if (arg == "--check-speedup") {
            check_speedup =
                positive("--check-speedup", value("--check-speedup"));
        } else if (arg == "--check-bytes-reduction") {
            check_bytes_reduction =
                positive("--check-bytes-reduction",
                         value("--check-bytes-reduction"));
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else {
            usageError("unknown flag: " + arg);
        }
    }

    // Decode-shape weight matrices: square d x d, the up projection
    // d x 4d and the down projection 4d x d — the three GEMV shapes a
    // decode step streams per layer. Quick mode shrinks d so the
    // ASan/Debug ctest smoke stays fast.
    const std::int64_t d = quick ? 256 : 1024;
    const double min_s = quick ? 0.01 : 0.2;
    struct ShapeDef
    {
        const char* label;
        std::int64_t k, n;
    };
    const ShapeDef shapes[] = {
        {"square", d, d}, {"up", d, 4 * d}, {"down", 4 * d, d}};

    const auto run_started = std::chrono::steady_clock::now();
    core::BenchBaseline full;
    full.id = "host_quant";
    full.title = "Host quantized decode: fused group-wise INT8/INT4 "
                 "dequant kernels vs the packed BF16 path";

    std::vector<Row> rows;
    std::vector<double> i4_speedups, i8_speedups;
    std::vector<double> i4_reductions;

    Rng rng(42);
    for (const ShapeDef& s : shapes) {
        const std::int64_t k = s.k, n = s.n;
        const Tensor bf = Tensor::randomUniform({k, n}, DType::F32,
                                                rng, -1.0f, 1.0f);
        const Tensor bb = bf.cast(DType::BF16);
        const gemm::PackedWeightsBf16 packed_bf16(bb.data<BFloat16>(),
                                                  k, n);
        const gemm::PackedWeightsI8G i8g(bf.data<float>(), k, n);
        const gemm::PackedWeightsI4G i4g(bf.data<float>(), k, n);

        const Tensor af = Tensor::randomUniform({1, k}, DType::F32,
                                                rng, -1.0f, 1.0f);
        const Tensor ab = af.cast(DType::BF16);
        std::vector<float> c(static_cast<std::size_t>(n));

        // Packed BF16 m=1 reference: the AMX tile path the engine
        // defaults to on SPR.
        const double bf16_s = timeLoop(min_s, [&] {
            gemm::gemmAmxBf16Packed(ab.data<BFloat16>(), packed_bf16,
                                    c.data(), 1);
        });
        const double i8g_s = timeLoop(min_s, [&] {
            gemm::gemmAvx512I8gPacked(af.data<float>(), i8g, c.data(),
                                      1);
        });
        const double i4g_s = timeLoop(min_s, [&] {
            gemm::gemvI4gFused(af.data<float>(), i4g, c.data());
        });

        const double bf16_bytes = static_cast<double>(
            gemm::packedBf16Bytes(k, n));
        const double r8 = static_cast<double>(i8g.bytes()) /
                          bf16_bytes;
        const double r4 = static_cast<double>(i4g.bytes()) /
                          bf16_bytes;
        const std::string label = s.label;

        rows.push_back({"i8g", label, k, n, bf16_s, i8g_s, r8});
        rows.push_back({"i4g", label, k, n, bf16_s, i4g_s, r4});

        full.metrics["speedup/i8g_m1_" + label] = bf16_s / i8g_s;
        full.metrics["speedup/i4g_gemv_m1_" + label] = bf16_s / i4g_s;
        full.metrics["bytes_ratio/i8g_" + label] = r8;
        full.metrics["bytes_ratio/i4g_" + label] = r4;
        full.metrics["bytes_reduction/i4g_" + label] = 1.0 / r4;
        full.metrics["gflops/bf16_m1_" + label] =
            gflops(1, n, k, bf16_s);
        full.metrics["gflops/i8g_m1_" + label] =
            gflops(1, n, k, i8g_s);
        full.metrics["gflops/i4g_gemv_m1_" + label] =
            gflops(1, n, k, i4g_s);
        i8_speedups.push_back(bf16_s / i8g_s);
        i4_speedups.push_back(bf16_s / i4g_s);
        i4_reductions.push_back(1.0 / r4);
    }
    full.metrics["speedup/i8g_decode_geomean"] = geomean(i8_speedups);
    full.metrics["speedup/i4g_gemv_decode_geomean"] =
        geomean(i4_speedups);
    full.metrics["bytes_reduction/i4g_geomean"] =
        geomean(i4_reductions);

    // ---- dequantization accuracy on a ragged shape, per group ----
    // Deterministic (fixed seed, thread-invariant kernels), so the
    // committed baseline pins these as the documented error ceilings.
    {
        const std::int64_t m = 5, k = 129, n = 77;
        Rng rng2(7);
        const Tensor a2 = Tensor::randomUniform({m, k}, DType::F32,
                                                rng2, -1.0f, 1.0f);
        const Tensor b2 = Tensor::randomUniform({k, n}, DType::F32,
                                                rng2, -1.0f, 1.0f);
        const std::vector<float> want =
            refGemm(a2.data<float>(), b2.data<float>(), m, k, n);
        std::vector<float> got(static_cast<std::size_t>(m * n));
        for (const std::int64_t g : {std::int64_t{32},
                                     std::int64_t{64},
                                     std::int64_t{128}}) {
            const std::string suffix = "_g" + std::to_string(g);
            const gemm::PackedWeightsI8G q8(b2.data<float>(), k, n,
                                            g);
            gemm::gemmAvx512I8gPacked(a2.data<float>(), q8,
                                      got.data(), m);
            full.metrics["acc/i8g_max_abs_diff" + suffix] =
                maxAbsDiff(got, want);
            const gemm::PackedWeightsI4G q4(b2.data<float>(), k, n,
                                            g);
            gemm::gemmAvx512I4gPacked(a2.data<float>(), q4,
                                      got.data(), m);
            full.metrics["acc/i4g_max_abs_diff" + suffix] =
                maxAbsDiff(got, want);
        }
    }

    // ---- bitwise thread-count invariance of the fused kernels ----
    // Same contract as attnFused: fixed 16-column task boundaries,
    // every output element computed whole inside one task. Any
    // nonzero diff here is a bug (the baseline pins exactly 0).
    {
        const std::int64_t k = 192, n = 96;
        Rng rng3(11);
        const Tensor a3 = Tensor::randomUniform({1, k}, DType::F32,
                                                rng3, -1.0f, 1.0f);
        const Tensor b3 = Tensor::randomUniform({k, n}, DType::F32,
                                                rng3, -1.0f, 1.0f);
        const gemm::PackedWeightsI4G q4(b3.data<float>(), k, n);
        std::vector<float> base(static_cast<std::size_t>(n));
        std::vector<float> other(static_cast<std::size_t>(n));

        setMaxThreads(1);
        gemm::gemvI4gFused(a3.data<float>(), q4, base.data());
        double worst = 0.0;
        for (const std::size_t threads : {std::size_t{2},
                                          std::size_t{3},
                                          std::size_t{0}}) {
            for (const ParallelBackend backend :
                 {ParallelBackend::Pool, ParallelBackend::Spawn}) {
                setMaxThreads(threads);
                setParallelBackend(backend);
                gemm::gemvI4gFused(a3.data<float>(), q4,
                                   other.data());
                worst = std::max(worst, maxAbsDiff(other, base));
            }
        }
        setParallelBackend(ParallelBackend::Pool);
        full.metrics["exact/i4g_gemv_thread_invariance"] = worst;

        // The m=1 GEMM entry point shares the per-column dot routine
        // with the GEMV fast path — bitwise identical by design.
        gemm::gemmAvx512I4gPacked(a3.data<float>(), q4, other.data(),
                                  1);
        full.metrics["exact/i4g_gemv_vs_gemm_m1"] =
            maxAbsDiff(other, base);
    }

    full.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      run_started)
            .count();

    // ---- report ----
    Table t({"kernel", "shape", "K", "N", "bf16 GFLOP/s",
             "quant GFLOP/s", "speedup", "bytes ratio"});
    t.setCaption("host quantized decode GEMV wall-clock (" +
                 std::string(quick ? "quick" : "full") + ", " +
                 std::to_string(hardwareThreads()) + " threads)");
    for (const Row& r : rows) {
        t.addRow({r.kernel, r.label, std::to_string(r.k),
                  std::to_string(r.n),
                  fmt(gflops(1, r.n, r.k, r.bf16S)),
                  fmt(gflops(1, r.n, r.k, r.quantS)),
                  fmt(r.bf16S / r.quantS), fmt(r.bytesRatio)});
    }
    t.print(std::cout);
    std::cout << "i4g decode GEMV speedup geomean vs packed bf16: "
              << fmt(full.metrics["speedup/i4g_gemv_decode_geomean"])
              << "x (" << fmt(full.metrics["bytes_reduction/"
                                           "i4g_geomean"])
              << "x fewer weight bytes)\n";

    if (!out_dir.empty()) {
        if (!core::writeBaseline(full, out_dir)) {
            std::cerr << "bench_host_quant: cannot write " << out_dir
                      << "\n";
            return 1;
        }
        std::cout << "wrote " << out_dir << "/" << full.filename()
                  << "\n";
    }
    if (!baseline_dir.empty()) {
        // Machine-relative subset only: GFLOP/s do not transfer
        // between machines; speedup ratios, byte footprints and the
        // deterministic accuracy/exactness metrics do.
        core::BenchBaseline portable = full;
        for (auto it = portable.metrics.begin();
             it != portable.metrics.end();) {
            if (it->first.rfind("speedup", 0) == 0 ||
                it->first.rfind("bytes_ratio/", 0) == 0 ||
                it->first.rfind("bytes_reduction/", 0) == 0 ||
                it->first.rfind("acc/", 0) == 0 ||
                it->first.rfind("exact/", 0) == 0)
                ++it;
            else
                it = portable.metrics.erase(it);
        }
        if (!core::writeBaseline(portable, baseline_dir)) {
            std::cerr << "bench_host_quant: cannot write "
                      << baseline_dir << "\n";
            return 1;
        }
        std::cout << "wrote " << baseline_dir << "/"
                  << portable.filename() << " (machine-relative "
                  << portable.metrics.size() << " metrics)\n";
    }

    int rc = 0;
    if (check_speedup > 0.0) {
        const double got =
            full.metrics["speedup/i4g_gemv_decode_geomean"];
        if (!(got >= check_speedup)) {
            std::cerr << "bench_host_quant: i4g decode GEMV speedup "
                      << fmt(got) << "x is below the required "
                      << fmt(check_speedup) << "x\n";
            rc = 1;
        } else {
            std::cout << "speedup check passed: " << fmt(got)
                      << "x >= " << fmt(check_speedup) << "x\n";
        }
    }
    if (check_bytes_reduction > 0.0) {
        const double got =
            full.metrics["bytes_reduction/i4g_geomean"];
        if (!(got >= check_bytes_reduction)) {
            std::cerr << "bench_host_quant: i4g bytes-moved "
                         "reduction "
                      << fmt(got) << "x is below the required "
                      << fmt(check_bytes_reduction) << "x\n";
            rc = 1;
        } else {
            std::cout << "bytes-reduction check passed: " << fmt(got)
                      << "x >= " << fmt(check_bytes_reduction)
                      << "x\n";
        }
    }
    return rc;
}
