/**
 * @file
 * Ablation for the paper's Section VI "NUMA-aware designs" proposal:
 * re-run the configurations Key Findings #2/#3 rejected (SNC-4
 * clustering, 96-core two-socket) with hot/cold-aware data placement
 * and quantify how much of the gap to quad_flat/48c closes.
 */

#include "bench_common.h"

#include "opt/numa_placement.h"
#include "perf/cpu_model.h"
#include "util/string_util.h"

namespace {

using namespace cpullm;

core::FigureData
buildAblation()
{
    core::FigureData f(
        "opt_numa", "NUMA-aware placement ablation (LLaMA2-13B b8)",
        "platform", "E2E latency (s)");
    const auto spec = model::llama2_13b();
    const auto w = perf::paperWorkload(8);

    std::vector<std::string> labels{"spr/quad_flat/48c (ref)"};
    std::vector<double> oblivious, aware;
    const perf::CpuPerfModel ref(hw::sprDefaultPlatform());
    const double ref_lat = ref.run(spec, w).e2eLatency;
    oblivious.push_back(ref_lat);
    aware.push_back(ref_lat);

    for (const auto& r : opt::numaPlacementAblation(spec, w)) {
        labels.push_back(r.platform.label());
        oblivious.push_back(r.oblivious.e2eLatency);
        aware.push_back(r.aware.e2eLatency);
    }
    f.setXLabels(labels);
    f.addSeries("oblivious", std::move(oblivious));
    f.addSeries("hot_cold_aware", std::move(aware));
    return f;
}

void
BM_NumaPlacementAblation(benchmark::State& state)
{
    const auto spec = cpullm::model::llama2_13b();
    const auto w = cpullm::perf::paperWorkload(8);
    for (auto _ : state) {
        auto results = cpullm::opt::numaPlacementAblation(spec, w);
        benchmark::DoNotOptimize(results);
    }
}
BENCHMARK(BM_NumaPlacementAblation);

} // namespace

int
main(int argc, char** argv)
{
    cpullm::bench::printFigure(buildAblation());
    // Machine-readable run report(s) for this figure's
    // representative configuration (no-op without
    // CPULLM_RESULTS_DIR).
    cpullm::bench::reportSingleRequest(cpullm::hw::sprDefaultPlatform(),
                                       cpullm::model::llama2_13b(),
                                       cpullm::perf::paperWorkload(8));
    return cpullm::bench::runBenchmarks(argc, argv);
}
