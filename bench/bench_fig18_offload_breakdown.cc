/**
 * @file
 * Fig 18: execution-time breakdown of offloading-based GPU inference
 * (A100/OPT-30B and H100/OPT-66B) across batch sizes: visible PCIe
 * load time vs GPU compute vs host-side attention vs overheads.
 */

#include "bench_common.h"

#include "gpu/gpu_model.h"

namespace {

void
BM_OffloadBreakdownSweep(benchmark::State& state)
{
    const cpullm::gpu::GpuPerfModel h100(cpullm::hw::nvidiaH100());
    const auto m = cpullm::model::opt66b();
    for (auto _ : state) {
        for (std::int64_t b : {1, 4, 8, 16, 32}) {
            auto r = h100.run(m, cpullm::perf::paperWorkload(b));
            benchmark::DoNotOptimize(r);
        }
    }
}
BENCHMARK(BM_OffloadBreakdownSweep);

} // namespace

int
main(int argc, char** argv)
{
    const auto fig = cpullm::core::fig18OffloadBreakdown();
    cpullm::bench::printFigure(fig.a100Opt30b);
    cpullm::bench::printFigure(fig.h100Opt66b);
    // Machine-readable run report(s) for this figure's
    // representative configuration (no-op without
    // CPULLM_RESULTS_DIR).
    cpullm::bench::reportGpuRequest(cpullm::hw::nvidiaA100(),
                                    cpullm::model::opt30b(),
                                    cpullm::perf::paperWorkload(8));
    cpullm::bench::reportGpuRequest(cpullm::hw::nvidiaH100(),
                                    cpullm::model::opt66b(),
                                    cpullm::perf::paperWorkload(8));
    return cpullm::bench::runBenchmarks(argc, argv);
}
