/**
 * @file
 * Fig 8: end-to-end latency and throughput of LLM inference on the
 * ICL and SPR CPUs, normalized to ICL, over the full model zoo and
 * batch sweep (input 128 / output 32 tokens, BF16).
 */

#include "bench_common.h"

#include "engine/inference_engine.h"
#include "perf/cpu_model.h"

namespace {

void
BM_SimulateFullRequestSpr(benchmark::State& state)
{
    const cpullm::perf::CpuPerfModel spr(
        cpullm::hw::sprDefaultPlatform());
    const auto m = cpullm::model::opt13b();
    const auto w = cpullm::perf::paperWorkload(state.range(0));
    for (auto _ : state) {
        auto t = spr.run(m, w);
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_SimulateFullRequestSpr)->Arg(1)->Arg(8)->Arg(32);

void
BM_SimulateFullRequestIcl(benchmark::State& state)
{
    const cpullm::perf::CpuPerfModel icl(
        cpullm::hw::iclDefaultPlatform());
    const auto m = cpullm::model::opt13b();
    const auto w = cpullm::perf::paperWorkload(state.range(0));
    for (auto _ : state) {
        auto t = icl.run(m, w);
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_SimulateFullRequestIcl)->Arg(1)->Arg(32);

} // namespace

int
main(int argc, char** argv)
{
    const auto fig = cpullm::core::fig08E2eIclVsSpr();
    cpullm::bench::printFigure(fig.latency);
    cpullm::bench::printFigure(fig.throughput);
    // One machine-readable run report per platform at batch 1,
    // appended to $CPULLM_RESULTS_DIR/reports.jsonl when set.
    for (const auto& platform : {cpullm::hw::iclDefaultPlatform(),
                                 cpullm::hw::sprDefaultPlatform()}) {
        cpullm::bench::reportSingleRequest(
            platform, cpullm::model::opt13b(),
            cpullm::perf::paperWorkload(1));
    }
    return cpullm::bench::runBenchmarks(argc, argv);
}
