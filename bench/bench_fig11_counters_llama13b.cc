/**
 * @file
 * Fig 11: modeled hardware counters (LLC MPKI, core utilization,
 * normalized load/store counts) for LLaMA2-13B inference on the SPR
 * CPU across batch sizes.
 */

#include "bench_common.h"

#include "engine/inference_engine.h"

namespace {

void
BM_CounterEstimation(benchmark::State& state)
{
    cpullm::engine::CpuInferenceEngine eng(
        cpullm::hw::sprDefaultPlatform(), cpullm::model::llama2_13b());
    const auto w = cpullm::perf::paperWorkload(state.range(0));
    for (auto _ : state) {
        auto r = eng.infer(w);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_CounterEstimation)->Arg(1)->Arg(32);

} // namespace

int
main(int argc, char** argv)
{
    cpullm::bench::printFigure(
        cpullm::core::figCountersVsBatch(cpullm::model::llama2_13b()));
    // Machine-readable run report(s) for this figure's
    // representative configuration (no-op without
    // CPULLM_RESULTS_DIR).
    cpullm::bench::reportSingleRequest(cpullm::hw::sprDefaultPlatform(),
                                       cpullm::model::llama2_13b(),
                                       cpullm::perf::paperWorkload(1));
    cpullm::bench::reportSingleRequest(cpullm::hw::sprDefaultPlatform(),
                                       cpullm::model::llama2_13b(),
                                       cpullm::perf::paperWorkload(8));
    return cpullm::bench::runBenchmarks(argc, argv);
}
