/**
 * @file
 * Fig 12: modeled hardware counters for OPT-66B inference on the SPR
 * CPU across batch sizes (the DDR-spilling large-model counterpart of
 * Fig 11).
 */

#include "bench_common.h"

#include "engine/inference_engine.h"

namespace {

void
BM_CounterEstimationOpt66b(benchmark::State& state)
{
    cpullm::engine::CpuInferenceEngine eng(
        cpullm::hw::sprDefaultPlatform(), cpullm::model::opt66b());
    const auto w = cpullm::perf::paperWorkload(state.range(0));
    for (auto _ : state) {
        auto r = eng.infer(w);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_CounterEstimationOpt66b)->Arg(1)->Arg(32);

} // namespace

int
main(int argc, char** argv)
{
    cpullm::bench::printFigure(
        cpullm::core::figCountersVsBatch(cpullm::model::opt66b()));
    // Machine-readable run report(s) for this figure's
    // representative configuration (no-op without
    // CPULLM_RESULTS_DIR).
    cpullm::bench::reportSingleRequest(cpullm::hw::sprDefaultPlatform(),
                                       cpullm::model::opt66b(),
                                       cpullm::perf::paperWorkload(8));
    return cpullm::bench::runBenchmarks(argc, argv);
}
