/**
 * @file
 * Extension: paged KV cache (vLLM's PagedAttention, related work
 * [28]). Fig 7 shows the KV cache dominating memory; this bench
 * quantifies how much of a *reserved* contiguous cache is actually
 * used for realistic mixed-length request pools, versus the paged
 * layout's near-zero waste, and how many extra requests fit in the
 * same HBM budget as a result.
 */

#include "bench_common.h"

#include "kv/paged_kv_cache.h"
#include "model/spec.h"
#include "util/rng.h"
#include "util/units.h"

namespace {

using namespace cpullm;

core::FigureData
buildPagedFigure()
{
    const model::ModelSpec spec = model::llama2_13b();
    const std::int64_t max_seq = 4096;
    const std::int64_t block = 16;

    core::FigureData f(
        "ext_paged_kv",
        "KV memory utilization: contiguous reservation vs paged, " +
            spec.name,
        "mean sequence length", "value");

    std::vector<std::string> labels;
    std::vector<double> contiguous_util, paged_util, capacity_gain;

    Rng rng(11);
    for (std::int64_t mean_len : {128, 256, 512, 1024, 2048}) {
        labels.push_back(std::to_string(mean_len));
        // 64 concurrent requests, lengths uniform in
        // [mean/2, 3*mean/2).
        double tokens = 0.0;
        std::int64_t blocks_needed = 0;
        const int requests = 64;
        for (int r = 0; r < requests; ++r) {
            const auto len = static_cast<std::int64_t>(
                rng.uniform(static_cast<double>(mean_len) / 2,
                            static_cast<double>(mean_len) * 1.5));
            tokens += static_cast<double>(len);
            blocks_needed += (len + block - 1) / block;
        }
        // Contiguous: every request reserves max_seq slots.
        const double contiguous_slots =
            static_cast<double>(requests) *
            static_cast<double>(max_seq);
        const double paged_slots =
            static_cast<double>(blocks_needed) *
            static_cast<double>(block);
        contiguous_util.push_back(tokens / contiguous_slots);
        paged_util.push_back(tokens / paged_slots);
        capacity_gain.push_back(contiguous_slots / paged_slots);
    }
    f.setXLabels(labels);
    f.addSeries("contiguous_utilization", std::move(contiguous_util));
    f.addSeries("paged_utilization", std::move(paged_util));
    f.addSeries("capacity_gain", std::move(capacity_gain));
    return f;
}

void
BM_PagedAppendRead(benchmark::State& state)
{
    // Functional paged-cache hot path: append + strided reads.
    kv::PagedKvCache cache(4, 128, 16, 4096, DType::BF16);
    auto seq = cache.addSequence();
    std::vector<float> kv(4 * 128, 0.25f);
    std::vector<float> out(128);
    std::int64_t len = 0;
    for (auto _ : state) {
        if (!cache.canAppend(seq)) {
            cache.releaseSequence(seq);
            seq = cache.addSequence();
            len = 0;
        }
        cache.appendToken(seq, kv.data(), kv.data());
        ++len;
        cache.readK(seq, 2, (len - 1) / 2, out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PagedAppendRead);

} // namespace

int
main(int argc, char** argv)
{
    cpullm::bench::printFigure(buildPagedFigure());
    // Machine-readable run report(s) for this figure's
    // representative configuration (no-op without
    // CPULLM_RESULTS_DIR).
    cpullm::bench::reportSingleRequest(cpullm::hw::sprDefaultPlatform(),
                                       cpullm::model::llama2_13b(),
                                       cpullm::perf::paperWorkload(8));
    return cpullm::bench::runBenchmarks(argc, argv);
}
