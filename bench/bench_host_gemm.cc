/**
 * @file
 * Host kernel micro-benchmark: wall-clock GFLOP/s of the functional
 * GEMM path, packed-vs-unpacked and pooled-vs-spawn, across the
 * paper's decode (M=1..16) and prefill GEMM shapes.
 *
 * This measures *host* execution speed of the emulator — how fast the
 * figures and the serving simulator run on the development machine —
 * not the simulated device timing (src/perf computes that
 * analytically). Two baseline files come out of a run:
 *
 *  - --out DIR:          BENCH_host_gemm.json with every metric,
 *                        including machine-dependent GFLOP/s.
 *  - --baseline-out DIR: only the machine-relative metrics (the
 *                        "speedup/..." ratios and "exact/..."
 *                        packed-vs-unpacked diffs), which is what
 *                        bench/baselines/host commits and bench_diff
 *                        gates.
 *
 * Exit codes: 0 ok, 1 when --check-speedup is not met, 2 on usage
 * errors (unknown flags, malformed values) like the cpullm CLI.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/bench_suite.h"
#include "gemm/gemm.h"
#include "gemm/packed_weights.h"
#include "numerics/bf16.h"
#include "numerics/dtype.h"
#include "tensor/tensor.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace cpullm;

constexpr int kUsageExit = 2;

void
usage(std::ostream& os)
{
    os << "usage: bench_host_gemm [--quick] [--out DIR]\n"
          "                       [--baseline-out DIR] [--threads N]\n"
          "                       [--check-speedup X]\n"
          "\n"
          "Wall-clock benchmark of the functional GEMM path:\n"
          "packed+pooled kernels vs the spawn-per-call unpacked path.\n"
          "\n"
          "  --quick           small shapes (the CI smoke settings)\n"
          "  --out DIR         write BENCH_host_gemm.json (all\n"
          "                    metrics, incl. machine-bound GFLOP/s)\n"
          "  --baseline-out DIR  write only machine-relative metrics\n"
          "                    (speedup/*, exact/*) for committing\n"
          "  --threads N       cap host threads (also CPULLM_THREADS)\n"
          "  --check-speedup X fail (exit 1) unless the AMX BF16\n"
          "                    decode geomean speedup is >= X\n";
}

[[noreturn]] void
usageError(const std::string& msg)
{
    std::cerr << "bench_host_gemm: " << msg << "\n\n";
    usage(std::cerr);
    std::exit(kUsageExit);
}

/** Mean seconds per call: one warmup, then repeat until min_s. */
template <typename Fn>
double
timeLoop(double min_s, const Fn& fn)
{
    fn(); // warmup
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    int reps = 0;
    double elapsed = 0.0;
    do {
        fn();
        ++reps;
        elapsed = std::chrono::duration<double>(clock::now() - t0)
                      .count();
    } while (elapsed < min_s);
    return elapsed / reps;
}

double
geomean(const std::vector<double>& v)
{
    double acc = 0.0;
    for (const double x : v)
        acc += std::log(x);
    return std::exp(acc / static_cast<double>(v.size()));
}

double
gflops(std::int64_t m, std::int64_t n, std::int64_t k, double secs)
{
    return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
           static_cast<double>(k) / secs / 1e9;
}

std::string
fmt(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3g", v);
    return buf;
}

struct Row
{
    std::string engine;
    std::string label;
    std::int64_t m, n, k;
    double unpackedSpawnS = 0.0;
    double unpackedPoolS = 0.0; ///< 0 when not measured
    double packedPoolS = 0.0;
};

} // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    std::string out_dir;
    std::string baseline_dir;
    double check_speedup = 0.0;

    {
        std::string err;
        if (!applyThreadsEnv(&err))
            usageError("CPULLM_THREADS expects a non-negative "
                       "integer, got '" + err + "'");
    }

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char* flag) -> std::string {
            if (i + 1 >= argc)
                usageError(std::string(flag) + " needs a value");
            return argv[++i];
        };
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--out") {
            out_dir = value("--out");
        } else if (arg == "--baseline-out") {
            baseline_dir = value("--baseline-out");
        } else if (arg == "--threads") {
            const std::string v = value("--threads");
            char* end = nullptr;
            const long n = std::strtol(v.c_str(), &end, 10);
            if (end == v.c_str() || *end != '\0' || n < 0)
                usageError("--threads expects a non-negative "
                           "integer, got '" + v + "'");
            setMaxThreads(static_cast<std::size_t>(n));
        } else if (arg == "--check-speedup") {
            const std::string v = value("--check-speedup");
            char* end = nullptr;
            const double x = std::strtod(v.c_str(), &end);
            if (end == v.c_str() || *end != '\0' || !(x > 0.0))
                usageError("--check-speedup expects a positive "
                           "number, got '" + v + "'");
            check_speedup = x;
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else {
            usageError("unknown flag: " + arg);
        }
    }

    // The paper's GEMM shapes: decode GEMV-ish slivers M=1..16 over a
    // square weight, one prefill block. Quick mode shrinks the weight
    // so the ASan/Debug ctest smoke stays fast.
    const std::int64_t kn = quick ? 256 : 1024;
    const std::int64_t prefill_m = quick ? 64 : 256;
    const double min_s = quick ? 0.01 : 0.2;
    const std::vector<std::int64_t> decode_ms = {1, 2, 4, 8, 16};

    const auto run_started = std::chrono::steady_clock::now();
    core::BenchBaseline full;
    full.id = "host_gemm";
    full.title = "Host GEMM wall-clock: packed+pooled vs "
                 "spawn-per-call unpacked functional kernels";

    std::vector<Row> rows;
    std::vector<double> amx_decode_speedups;

    Rng rng(42);
    const Tensor bf =
        Tensor::randomUniform({kn, kn}, DType::F32, rng, -1.0f, 1.0f);
    const Tensor bb = bf.cast(DType::BF16);

    auto restore_pool = [] {
        setParallelBackend(ParallelBackend::Pool);
    };

    // ---- AMX BF16 (the gated path) and AVX-512 BF16 ----
    const gemm::PackedWeightsBf16 packed_bf16(bb.data<BFloat16>(), kn,
                                              kn);
    const gemm::PackedWeightsVnni packed_vnni(bb.data<BFloat16>(), kn,
                                              kn);

    std::vector<std::int64_t> shapes_m = decode_ms;
    shapes_m.push_back(prefill_m);
    for (const std::int64_t m : shapes_m) {
        const bool is_decode = m <= 16;
        // The prefill key omits M so quick and full runs stay
        // comparable through bench_diff.
        const std::string label =
            is_decode ? "decode_m" + std::to_string(m) : "prefill";
        Tensor af = Tensor::randomUniform({m, kn}, DType::F32, rng,
                                          -1.0f, 1.0f);
        const Tensor ab = af.cast(DType::BF16);
        std::vector<float> c(static_cast<std::size_t>(m * kn));

        // amx_bf16: the three-way comparison that isolates what the
        // pool buys vs what packing+register-blocking buys.
        Row r{"amx-bf16", label, m, kn, kn};
        setParallelBackend(ParallelBackend::Spawn);
        r.unpackedSpawnS = timeLoop(min_s, [&] {
            gemm::gemmAmxBf16(ab.data<BFloat16>(), bb.data<BFloat16>(),
                              c.data(), m, kn, kn);
        });
        restore_pool();
        r.unpackedPoolS = timeLoop(min_s, [&] {
            gemm::gemmAmxBf16(ab.data<BFloat16>(), bb.data<BFloat16>(),
                              c.data(), m, kn, kn);
        });
        r.packedPoolS = timeLoop(min_s, [&] {
            gemm::gemmAmxBf16Packed(ab.data<BFloat16>(), packed_bf16,
                                    c.data(), m);
        });
        rows.push_back(r);
        const double sp = r.unpackedSpawnS / r.packedPoolS;
        full.metrics["speedup/amx_bf16_" + label] = sp;
        full.metrics["speedup_pool/amx_bf16_" + label] =
            r.unpackedSpawnS / r.unpackedPoolS;
        full.metrics["gflops/amx_bf16_" + label + "_unpacked_spawn"] =
            gflops(m, kn, kn, r.unpackedSpawnS);
        full.metrics["gflops/amx_bf16_" + label + "_packed_pool"] =
            gflops(m, kn, kn, r.packedPoolS);
        if (is_decode)
            amx_decode_speedups.push_back(sp);

        // avx512-bf16: unpacked vs pair-interleaved.
        Row v{"avx512-bf16", label, m, kn, kn};
        setParallelBackend(ParallelBackend::Spawn);
        v.unpackedSpawnS = timeLoop(min_s, [&] {
            gemm::gemmAvx512Bf16(ab.data<BFloat16>(),
                                 bb.data<BFloat16>(), c.data(), m, kn,
                                 kn);
        });
        restore_pool();
        v.packedPoolS = timeLoop(min_s, [&] {
            gemm::gemmAvx512Bf16Packed(ab.data<BFloat16>(),
                                       packed_vnni, c.data(), m);
        });
        rows.push_back(v);
        full.metrics["speedup/avx512_bf16_" + label] =
            v.unpackedSpawnS / v.packedPoolS;
        full.metrics["gflops/avx512_bf16_" + label + "_packed_pool"] =
            gflops(m, kn, kn, v.packedPoolS);
    }
    full.metrics["speedup/amx_bf16_decode_geomean"] =
        geomean(amx_decode_speedups);

    // ---- AMX INT8 (decode sliver + prefill block) ----
    {
        float bmax = 0.0f;
        const float* bp = bf.data<float>();
        for (std::int64_t i = 0; i < kn * kn; ++i)
            bmax = std::max(bmax, std::fabs(bp[i]));
        const QuantParams qb = QuantParams::forAbsMax(bmax);
        std::vector<std::int8_t> bq(static_cast<std::size_t>(kn * kn));
        for (std::int64_t i = 0; i < kn * kn; ++i)
            bq[static_cast<std::size_t>(i)] = qb.quantize(bp[i]);
        const gemm::PackedWeightsI8 packed_i8(bp, kn, kn);

        std::vector<double> i8_speedups;
        for (const std::int64_t m :
             {std::int64_t{1}, std::int64_t{16}, prefill_m}) {
            const bool is_decode = m <= 16;
            const std::string label =
                is_decode ? "decode_m" + std::to_string(m)
                          : "prefill";
            Tensor af = Tensor::randomUniform({m, kn}, DType::F32,
                                              rng, -1.0f, 1.0f);
            const float* ap = af.data<float>();
            float amax = 0.0f;
            for (std::int64_t i = 0; i < m * kn; ++i)
                amax = std::max(amax, std::fabs(ap[i]));
            const QuantParams qa = QuantParams::forAbsMax(amax);
            std::vector<std::int8_t> aq(
                static_cast<std::size_t>(m * kn));
            for (std::int64_t i = 0; i < m * kn; ++i)
                aq[static_cast<std::size_t>(i)] = qa.quantize(ap[i]);
            std::vector<float> c(static_cast<std::size_t>(m * kn));

            Row r{"amx-int8", label, m, kn, kn};
            setParallelBackend(ParallelBackend::Spawn);
            r.unpackedSpawnS = timeLoop(min_s, [&] {
                gemm::gemmAmxI8(aq.data(), bq.data(), c.data(), m, kn,
                                kn, qa.scale, qb.scale);
            });
            restore_pool();
            r.packedPoolS = timeLoop(min_s, [&] {
                gemm::gemmAmxI8Packed(aq.data(), packed_i8, c.data(),
                                      m, qa.scale);
            });
            rows.push_back(r);
            const double sp = r.unpackedSpawnS / r.packedPoolS;
            full.metrics["speedup/amx_int8_" + label] = sp;
            full.metrics["gflops/amx_int8_" + label +
                         "_packed_pool"] = gflops(m, kn, kn,
                                                  r.packedPoolS);
            if (is_decode)
                i8_speedups.push_back(sp);
        }
        full.metrics["speedup/amx_int8_decode_geomean"] =
            geomean(i8_speedups);
    }

    // ---- packed-vs-unpacked agreement on a ragged shape ----
    // Packing only reorders bytes; any nonzero diff here is a bug
    // (the committed baseline pins these at exactly 0).
    {
        const std::int64_t m = 33, n = 77, k = 129;
        Rng rng2(7);
        const Tensor a2 = Tensor::randomUniform({m, k}, DType::F32,
                                                rng2, -1.0f, 1.0f);
        const Tensor b2 = Tensor::randomUniform({k, n}, DType::F32,
                                                rng2, -1.0f, 1.0f);
        for (const auto engine :
             {gemm::Engine::AmxBf16, gemm::Engine::Avx512Bf16,
              gemm::Engine::AmxI8}) {
            const Tensor want = gemm::matmul(engine, a2, b2);
            const Tensor got = gemm::matmul(
                engine, a2, gemm::PreparedB(engine, b2));
            std::string key = gemm::engineName(engine);
            for (auto& ch : key)
                if (ch == '-')
                    ch = '_';
            full.metrics["exact/" + key + "_packed_max_abs_diff"] =
                static_cast<double>(maxAbsDiff(got, want));
        }
    }

    full.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      run_started)
            .count();

    // ---- report ----
    Table t({"engine", "shape", "M", "N=K", "unpacked+spawn GFLOP/s",
             "packed+pool GFLOP/s", "speedup"});
    t.setCaption("host GEMM wall-clock (" +
                 std::string(quick ? "quick" : "full") + ", " +
                 std::to_string(hardwareThreads()) + " threads)");
    for (const Row& r : rows) {
        t.addRow({r.engine, r.label, std::to_string(r.m),
                  std::to_string(r.n),
                  fmt(gflops(r.m, r.n, r.k, r.unpackedSpawnS)),
                  fmt(gflops(r.m, r.n, r.k, r.packedPoolS)),
                  fmt(r.unpackedSpawnS / r.packedPoolS)});
    }
    t.print(std::cout);
    std::cout << "amx-bf16 decode speedup geomean (M=1..16): "
              << fmt(full.metrics["speedup/amx_bf16_decode_geomean"])
              << "x\n";

    if (!out_dir.empty()) {
        if (!core::writeBaseline(full, out_dir)) {
            std::cerr << "bench_host_gemm: cannot write " << out_dir
                      << "\n";
            return 1;
        }
        std::cout << "wrote " << out_dir << "/" << full.filename()
                  << "\n";
    }
    if (!baseline_dir.empty()) {
        // Machine-relative subset only: GFLOP/s do not transfer
        // between machines, speedup ratios and exactness do.
        core::BenchBaseline portable = full;
        for (auto it = portable.metrics.begin();
             it != portable.metrics.end();) {
            if (it->first.rfind("speedup", 0) == 0 ||
                it->first.rfind("exact/", 0) == 0)
                ++it;
            else
                it = portable.metrics.erase(it);
        }
        if (!core::writeBaseline(portable, baseline_dir)) {
            std::cerr << "bench_host_gemm: cannot write "
                      << baseline_dir << "\n";
            return 1;
        }
        std::cout << "wrote " << baseline_dir << "/"
                  << portable.filename() << " (machine-relative "
                  << portable.metrics.size() << " metrics)\n";
    }

    if (check_speedup > 0.0) {
        const double got =
            full.metrics["speedup/amx_bf16_decode_geomean"];
        if (!(got >= check_speedup)) {
            std::cerr << "bench_host_gemm: amx-bf16 decode speedup "
                      << fmt(got) << "x is below the required "
                      << fmt(check_speedup) << "x\n";
            return 1;
        }
        std::cout << "speedup check passed: " << fmt(got)
                  << "x >= " << fmt(check_speedup) << "x\n";
    }
    return 0;
}
