/**
 * @file
 * Fig 13: normalized latency/throughput metrics for the four SPR
 * memory + clustering configurations (quad/snc x cache/flat),
 * averaged over all models and batches, normalized to quad_cache.
 */

#include "bench_common.h"

#include "perf/cpu_model.h"

namespace {

void
BM_NumaModeSimulation(benchmark::State& state)
{
    const auto sweep = cpullm::hw::sprModeSweepPlatforms();
    const auto m = cpullm::model::llama2_13b();
    const auto w = cpullm::perf::paperWorkload(8);
    for (auto _ : state) {
        for (const auto& p : sweep) {
            cpullm::perf::CpuPerfModel model(p);
            auto t = model.run(m, w);
            benchmark::DoNotOptimize(t);
        }
    }
}
BENCHMARK(BM_NumaModeSimulation);

} // namespace

int
main(int argc, char** argv)
{
    cpullm::bench::printFigure(cpullm::core::fig13NumaModes());
    // Machine-readable run report(s) for this figure's
    // representative configuration (no-op without
    // CPULLM_RESULTS_DIR).
    cpullm::bench::reportSingleRequest(cpullm::hw::sprDefaultPlatform(),
                                       cpullm::model::llama2_13b(),
                                       cpullm::perf::paperWorkload(8));
    return cpullm::bench::runBenchmarks(argc, argv);
}
