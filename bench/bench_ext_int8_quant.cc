/**
 * @file
 * Extension: weight-only INT8/INT4 quantization (related work [48],
 * Shen et al.). Weights stream at half (INT8) or a quarter (INT4) of
 * the BF16 bytes and compute at the AMX INT8 rate while
 * activations/KV stay BF16. Prints BF16 vs INT8 vs INT4 decode
 * throughput and HBM residency over the model zoo; series names
 * (`*_gain`, `*_hbm_frac`) line up with the measured-kernel
 * counterparts in bench_host_quant.
 */

#include "bench_common.h"

#include "engine/inference_engine.h"
#include "perf/cpu_model.h"

namespace {

using namespace cpullm;

core::FigureData
buildInt8Figure()
{
    core::FigureData f(
        "ext_int8", "BF16 vs weight-only INT8/INT4 on SPR (batch 1)",
        "model", "value");
    std::vector<std::string> labels;
    std::vector<double> bf16_tput, int8_tput, int4_tput, gain8, gain4,
        hbm_bf16, hbm_int8, hbm_int4;

    for (const auto& m : model::evaluatedModels()) {
        engine::CpuInferenceEngine eng(hw::sprDefaultPlatform(), m);
        const auto wb = perf::paperWorkload(1);
        perf::Workload wq = wb;
        wq.dtype = DType::I8;
        perf::Workload wq4 = wb;
        wq4.dtype = DType::I4;
        const auto rb = eng.infer(wb);
        const auto rq = eng.infer(wq);
        const auto rq4 = eng.infer(wq4);
        labels.push_back(m.name);
        bf16_tput.push_back(rb.timing.decodeThroughput);
        int8_tput.push_back(rq.timing.decodeThroughput);
        int4_tput.push_back(rq4.timing.decodeThroughput);
        gain8.push_back(rq.timing.decodeThroughput /
                        rb.timing.decodeThroughput);
        gain4.push_back(rq4.timing.decodeThroughput /
                        rb.timing.decodeThroughput);
        hbm_bf16.push_back(rb.weightsHbmFraction);
        hbm_int8.push_back(rq.weightsHbmFraction);
        hbm_int4.push_back(rq4.weightsHbmFraction);
    }
    f.setXLabels(labels);
    f.addSeries("bf16_decode_tok_s", std::move(bf16_tput));
    f.addSeries("int8_decode_tok_s", std::move(int8_tput));
    f.addSeries("int4_decode_tok_s", std::move(int4_tput));
    f.addSeries("int8_gain", std::move(gain8));
    f.addSeries("int4_gain", std::move(gain4));
    f.addSeries("bf16_hbm_frac", std::move(hbm_bf16));
    f.addSeries("int8_hbm_frac", std::move(hbm_int8));
    f.addSeries("int4_hbm_frac", std::move(hbm_int4));
    return f;
}

void
BM_Int8Simulation(benchmark::State& state)
{
    const perf::CpuPerfModel spr(hw::sprDefaultPlatform());
    perf::Workload w = perf::paperWorkload(8);
    w.dtype = DType::I8;
    for (auto _ : state) {
        auto t = spr.run(model::opt66b(), w);
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_Int8Simulation);

} // namespace

int
main(int argc, char** argv)
{
    cpullm::bench::printFigure(buildInt8Figure());
    // Machine-readable run report(s) for this figure's
    // representative configuration (no-op without
    // CPULLM_RESULTS_DIR).
    cpullm::perf::Workload wq = cpullm::perf::paperWorkload(1);
    wq.dtype = cpullm::DType::I8;
    cpullm::bench::reportSingleRequest(cpullm::hw::sprDefaultPlatform(),
                                       cpullm::model::llama2_13b(),
                                       cpullm::perf::paperWorkload(1));
    cpullm::bench::reportSingleRequest(cpullm::hw::sprDefaultPlatform(),
                                       cpullm::model::llama2_13b(),
                                       wq);
    return cpullm::bench::runBenchmarks(argc, argv);
}
