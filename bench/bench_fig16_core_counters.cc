/**
 * @file
 * Fig 16: LLC MPKI, core utilization, and UPI utilization for
 * LLaMA2-7B (batch 8) as the core count increases from 12 to 96.
 */

#include "bench_common.h"

#include "perf/cpu_model.h"

namespace {

void
BM_CrossSocketSimulation(benchmark::State& state)
{
    const cpullm::perf::CpuPerfModel m(cpullm::hw::sprPlatform(
        cpullm::hw::ClusteringMode::Quadrant,
        cpullm::hw::MemoryMode::Flat, 96));
    const auto spec = cpullm::model::llama2_7b();
    const auto w = cpullm::perf::paperWorkload(8);
    for (auto _ : state) {
        auto t = m.run(spec, w);
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_CrossSocketSimulation);

} // namespace

int
main(int argc, char** argv)
{
    cpullm::bench::printFigure(cpullm::core::fig16CoreCounters());
    // Machine-readable run report(s) for this figure's
    // representative configuration (no-op without
    // CPULLM_RESULTS_DIR).
    cpullm::bench::reportSingleRequest(cpullm::hw::sprDefaultPlatform(),
                                       cpullm::model::llama2_7b(),
                                       cpullm::perf::paperWorkload(8));
    return cpullm::bench::runBenchmarks(argc, argv);
}
