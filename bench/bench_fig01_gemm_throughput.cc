/**
 * @file
 * Fig 1: GEMM throughput across CPUs and GPUs with varying matrix
 * dimensions (modeled achieved TFLOPS). The google-benchmark section
 * additionally times the *functional* emulated AMX and AVX-512 GEMMs
 * on this host, demonstrating the instruction-level substrate.
 */

#include "bench_common.h"

#include <vector>

#include "gemm/gemm.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace {

using cpullm::DType;
using cpullm::Rng;
using cpullm::Tensor;

void
BM_FunctionalAmxGemm(benchmark::State& state)
{
    const auto n = state.range(0);
    Rng rng(1);
    const Tensor a =
        Tensor::randomUniform({n, n}, DType::BF16, rng, -1, 1);
    const Tensor b =
        Tensor::randomUniform({n, n}, DType::BF16, rng, -1, 1);
    for (auto _ : state) {
        Tensor c = cpullm::gemm::matmul(cpullm::gemm::Engine::AmxBf16,
                                        a, b);
        benchmark::DoNotOptimize(c.raw());
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_FunctionalAmxGemm)->Arg(64)->Arg(128)->Arg(256);

void
BM_FunctionalAvx512Gemm(benchmark::State& state)
{
    const auto n = state.range(0);
    Rng rng(2);
    const Tensor a =
        Tensor::randomUniform({n, n}, DType::BF16, rng, -1, 1);
    const Tensor b =
        Tensor::randomUniform({n, n}, DType::BF16, rng, -1, 1);
    for (auto _ : state) {
        Tensor c = cpullm::gemm::matmul(
            cpullm::gemm::Engine::Avx512Bf16, a, b);
        benchmark::DoNotOptimize(c.raw());
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_FunctionalAvx512Gemm)->Arg(64)->Arg(128)->Arg(256);

} // namespace

int
main(int argc, char** argv)
{
    cpullm::bench::printFigure(cpullm::core::fig01GemmThroughput());
    // Machine-readable run report(s) for this figure's
    // representative configuration (no-op without
    // CPULLM_RESULTS_DIR).
    cpullm::bench::reportSingleRequest(cpullm::hw::sprDefaultPlatform(),
                                       cpullm::model::llama2_7b(),
                                       cpullm::perf::paperWorkload(1));
    return cpullm::bench::runBenchmarks(argc, argv);
}
