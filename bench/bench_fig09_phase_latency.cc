/**
 * @file
 * Fig 9: prefill (TTFT) and decode (TPOT) latency of ICL vs SPR,
 * normalized to ICL.
 */

#include "bench_common.h"

#include "perf/cpu_model.h"

namespace {

void
BM_TimePrefillPhase(benchmark::State& state)
{
    const cpullm::perf::CpuPerfModel spr(
        cpullm::hw::sprDefaultPlatform());
    const auto m = cpullm::model::llama2_13b();
    const auto w = cpullm::perf::paperWorkload(8);
    for (auto _ : state) {
        auto bd = spr.timePhase(m, cpullm::perf::Phase::Prefill, w,
                                w.promptLen);
        benchmark::DoNotOptimize(bd);
    }
}
BENCHMARK(BM_TimePrefillPhase);

void
BM_TimeDecodePhase(benchmark::State& state)
{
    const cpullm::perf::CpuPerfModel spr(
        cpullm::hw::sprDefaultPlatform());
    const auto m = cpullm::model::llama2_13b();
    const auto w = cpullm::perf::paperWorkload(8);
    for (auto _ : state) {
        auto bd = spr.timePhase(m, cpullm::perf::Phase::Decode, w,
                                129);
        benchmark::DoNotOptimize(bd);
    }
}
BENCHMARK(BM_TimeDecodePhase);

} // namespace

int
main(int argc, char** argv)
{
    const auto fig = cpullm::core::fig09PhaseLatency();
    cpullm::bench::printFigure(fig.prefill);
    cpullm::bench::printFigure(fig.decode);
    return cpullm::bench::runBenchmarks(argc, argv);
}
