/**
 * @file
 * Fig 9: prefill (TTFT) and decode (TPOT) latency of ICL vs SPR,
 * normalized to ICL.
 */

#include "bench_common.h"

#include "perf/cpu_model.h"

namespace {

void
BM_TimePrefillPhase(benchmark::State& state)
{
    const cpullm::perf::CpuPerfModel spr(
        cpullm::hw::sprDefaultPlatform());
    const auto m = cpullm::model::llama2_13b();
    const auto w = cpullm::perf::paperWorkload(8);
    for (auto _ : state) {
        auto bd = spr.timePhase(m, cpullm::perf::Phase::Prefill, w,
                                w.promptLen);
        benchmark::DoNotOptimize(bd);
    }
}
BENCHMARK(BM_TimePrefillPhase);

void
BM_TimeDecodePhase(benchmark::State& state)
{
    const cpullm::perf::CpuPerfModel spr(
        cpullm::hw::sprDefaultPlatform());
    const auto m = cpullm::model::llama2_13b();
    const auto w = cpullm::perf::paperWorkload(8);
    for (auto _ : state) {
        auto bd = spr.timePhase(m, cpullm::perf::Phase::Decode, w,
                                129);
        benchmark::DoNotOptimize(bd);
    }
}
BENCHMARK(BM_TimeDecodePhase);

} // namespace

int
main(int argc, char** argv)
{
    const auto fig = cpullm::core::fig09PhaseLatency();
    cpullm::bench::printFigure(fig.prefill);
    cpullm::bench::printFigure(fig.decode);
    // Machine-readable run report(s) for this figure's
    // representative configuration (no-op without
    // CPULLM_RESULTS_DIR).
    for (const auto& platform : {cpullm::hw::iclDefaultPlatform(),
                                 cpullm::hw::sprDefaultPlatform()}) {
        cpullm::bench::reportSingleRequest(
            platform, cpullm::model::opt13b(),
            cpullm::perf::paperWorkload(8));
    }
    return cpullm::bench::runBenchmarks(argc, argv);
}
