/**
 * @file
 * Extension: CXL memory expansion (Section III points at CXL as the
 * CPU capacity lever). Attaches a 512 GiB CXL expander per socket and
 * serves OPT-175B -- impossible on the unexpanded machine -- plus the
 * bandwidth cost it pays for models that spill into CXL.
 */

#include "bench_common.h"

#include "perf/cpu_model.h"
#include "util/units.h"

namespace {

using namespace cpullm;

hw::PlatformConfig
cxlPlatform()
{
    hw::PlatformConfig p;
    p.cpu = hw::sprXeonMax9468WithCxl(512ULL * GiB);
    p.memoryMode = hw::MemoryMode::Flat;
    p.clusteringMode = hw::ClusteringMode::Quadrant;
    p.coresUsed = 48;
    return p;
}

core::FigureData
buildCxlFigure()
{
    core::FigureData f(
        "ext_cxl", "SPR + 512 GiB/socket CXL expander (batch 1)",
        "model", "value");
    const perf::CpuPerfModel with_cxl(cxlPlatform());
    const auto w = perf::paperWorkload(1);

    std::vector<model::ModelSpec> zoo = {
        model::opt13b(), model::opt66b(), model::llama2_70b(),
        model::opt175b()};
    std::vector<std::string> labels;
    std::vector<double> tpot, tput;
    for (const auto& m : zoo) {
        labels.push_back(m.name);
        const auto t = with_cxl.run(m, w);
        tpot.push_back(t.tpot);
        tput.push_back(t.totalThroughput);
    }
    f.setXLabels(labels);
    f.addSeries("tpot_s", std::move(tpot));
    f.addSeries("tokens_per_s", std::move(tput));
    return f;
}

void
BM_CxlSimulation(benchmark::State& state)
{
    const perf::CpuPerfModel with_cxl(cxlPlatform());
    const auto w = perf::paperWorkload(1);
    for (auto _ : state) {
        auto t = with_cxl.run(model::opt175b(), w);
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_CxlSimulation);

} // namespace

int
main(int argc, char** argv)
{
    std::cout << "Without CXL, OPT-175B does not fit the SPR server "
                 "(see tests/perf RunDeath.ModelTooBigForMachine for "
                 "the ICL case); with the expander it serves:\n\n";
    cpullm::bench::printFigure(buildCxlFigure());
    // Machine-readable run report(s) for this figure's
    // representative configuration (no-op without
    // CPULLM_RESULTS_DIR).
    cpullm::bench::reportSingleRequest(
        cxlPlatform(), cpullm::model::opt175b(),
        cpullm::perf::paperWorkload(1));
    return cpullm::bench::runBenchmarks(argc, argv);
}
