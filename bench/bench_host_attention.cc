/**
 * @file
 * Host attention micro-benchmark: wall-clock of the fused, parallel
 * decode/prefill attention kernel (gemm::attnFused over contiguous
 * KV-cache spans) against the naive per-position loop the transformer
 * used before — readK/readV element copies through Tensor::at, one
 * scalar dot per (head, position), a two-pass softmax, and per-call
 * kbuf/vbuf/scores heap buffers.
 *
 * This measures *host* execution speed of the emulator — how fast
 * decode attention runs on the development machine — not simulated
 * device timing (src/perf computes that analytically). Two baseline
 * files come out of a run:
 *
 *  - --out DIR:          BENCH_host_attention.json with every metric,
 *                        including machine-dependent rows/s.
 *  - --baseline-out DIR: only the machine-relative metrics — the
 *                        "speedup/..." ratios plus the "exact/..."
 *                        booleans (fused-vs-reference within
 *                        kAttnTolerance, bitwise thread invariance),
 *                        which bench/baselines/host commits and
 *                        bench_diff gates.
 *
 * Exit codes: 0 ok, 1 when --check-speedup is not met, 2 on usage
 * errors (unknown flags, malformed values) like the cpullm CLI.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/bench_suite.h"
#include "gemm/attention.h"
#include "kv/kv_cache.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace cpullm;

constexpr int kUsageExit = 2;

void
usage(std::ostream& os)
{
    os << "usage: bench_host_attention [--quick] [--out DIR]\n"
          "                            [--baseline-out DIR] "
          "[--threads N]\n"
          "                            [--check-speedup X]\n"
          "\n"
          "Wall-clock benchmark of fused decode/prefill attention\n"
          "over contiguous KV-cache spans vs the naive per-position\n"
          "readK/readV loop.\n"
          "\n"
          "  --quick           short timing loops (the CI settings)\n"
          "  --out DIR         write BENCH_host_attention.json (all\n"
          "                    metrics, incl. machine-bound rows/s)\n"
          "  --baseline-out DIR  write only machine-relative metrics\n"
          "                    (speedup/*, exact/*) for committing\n"
          "  --threads N       cap host threads (also CPULLM_THREADS)\n"
          "  --check-speedup X fail (exit 1) unless the decode\n"
          "                    geomean speedup at spans >= 512 is\n"
          "                    >= X\n";
}

[[noreturn]] void
usageError(const std::string& msg)
{
    std::cerr << "bench_host_attention: " << msg << "\n\n";
    usage(std::cerr);
    std::exit(kUsageExit);
}

/** Mean seconds per call: one warmup, then repeat until min_s. */
template <typename Fn>
double
timeLoop(double min_s, const Fn& fn)
{
    fn(); // warmup
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    int reps = 0;
    double elapsed = 0.0;
    do {
        fn();
        ++reps;
        elapsed = std::chrono::duration<double>(clock::now() - t0)
                      .count();
    } while (elapsed < min_s);
    return elapsed / reps;
}

double
geomean(const std::vector<double>& v)
{
    double acc = 0.0;
    for (const double x : v)
        acc += std::log(x);
    return std::exp(acc / static_cast<double>(v.size()));
}

std::string
fmt(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3g", v);
    return buf;
}

/**
 * The pre-fused transformer attention loop, verbatim: per-element
 * cache reads, scalar dots, two-pass softmax, fresh heap buffers
 * every call.
 */
void
naiveAttention(const kv::KvCache& cache, const float* q, float* out,
               std::int64_t b, std::int64_t heads,
               std::int64_t kv_heads, std::int64_t hd,
               std::int64_t span)
{
    const std::int64_t group = heads / kv_heads;
    const std::int64_t d_kv = cache.dKv();
    const float scale = 1.0f / std::sqrt(static_cast<float>(hd));
    std::vector<float> kbuf(static_cast<std::size_t>(d_kv));
    std::vector<float> vbuf(static_cast<std::size_t>(d_kv));
    std::vector<float> scores(static_cast<std::size_t>(span));
    for (std::int64_t h = 0; h < heads; ++h) {
        const std::int64_t kvh = h / group;
        const float* qh = q + h * hd;
        for (std::int64_t p = 0; p < span; ++p) {
            cache.readK(0, b, p, kbuf.data());
            const float* kh = kbuf.data() + kvh * hd;
            float dot = 0.0f;
            for (std::int64_t i = 0; i < hd; ++i)
                dot += qh[i] * kh[i];
            scores[static_cast<std::size_t>(p)] = dot * scale;
        }
        float mx = scores[0];
        for (std::int64_t p = 1; p < span; ++p)
            mx = std::max(mx, scores[static_cast<std::size_t>(p)]);
        float sum = 0.0f;
        for (std::int64_t p = 0; p < span; ++p) {
            scores[static_cast<std::size_t>(p)] =
                std::exp(scores[static_cast<std::size_t>(p)] - mx);
            sum += scores[static_cast<std::size_t>(p)];
        }
        const float inv = 1.0f / sum;
        float* ch = out + h * hd;
        for (std::int64_t i = 0; i < hd; ++i)
            ch[i] = 0.0f;
        for (std::int64_t p = 0; p < span; ++p) {
            cache.readV(0, b, p, vbuf.data());
            const float* vh = vbuf.data() + kvh * hd;
            const float pw = scores[static_cast<std::size_t>(p)] * inv;
            for (std::int64_t i = 0; i < hd; ++i)
                ch[i] += pw * vh[i];
        }
    }
}

struct ShapeCfg
{
    const char* name; ///< metric key segment
    std::int64_t heads, kvHeads, headDim;
};

/** One decode config's storage: a filled cache and query/output. */
struct DecodeSetup
{
    kv::KvCache cache;
    std::int64_t batch, span;
    gemm::AttnShape shape;
    std::vector<float> q, out;

    DecodeSetup(const ShapeCfg& s, std::int64_t batch_,
                std::int64_t span_, DType dtype, Rng& rng)
        : cache(1, batch_, s.kvHeads * s.headDim, span_, dtype),
          batch(batch_), span(span_),
          shape{s.heads, s.kvHeads, s.headDim}
    {
        const std::int64_t d_kv = s.kvHeads * s.headDim;
        const std::int64_t width = s.heads * s.headDim;
        std::vector<float> k(static_cast<std::size_t>(d_kv));
        std::vector<float> v(static_cast<std::size_t>(d_kv));
        for (std::int64_t b = 0; b < batch_; ++b) {
            for (std::int64_t p = 0; p < span_; ++p) {
                for (auto& x : k)
                    x = static_cast<float>(rng.uniform(-1.0, 1.0));
                for (auto& x : v)
                    x = static_cast<float>(rng.uniform(-1.0, 1.0));
                cache.write(0, b, p, k.data(), v.data());
            }
        }
        cache.setSeqLen(span_);
        q.resize(static_cast<std::size_t>(batch_ * width));
        out.assign(q.size(), 0.0f);
        for (auto& x : q)
            x = static_cast<float>(rng.uniform(-1.0, 1.0));
    }

    std::vector<gemm::AttnSeqView>
    views(std::vector<kv::KvSpan>& ks, std::vector<kv::KvSpan>& vs)
    {
        const std::int64_t width = shape.heads * shape.headDim;
        ks.resize(static_cast<std::size_t>(batch));
        vs.resize(static_cast<std::size_t>(batch));
        std::vector<gemm::AttnSeqView> seqs(
            static_cast<std::size_t>(batch));
        for (std::int64_t b = 0; b < batch; ++b) {
            const auto sb = static_cast<std::size_t>(b);
            ks[sb] = cache.kSpan(0, b);
            vs[sb] = cache.vSpan(0, b);
            seqs[sb].q = q.data() + b * width;
            seqs[sb].out = out.data() + b * width;
            seqs[sb].k = &ks[sb];
            seqs[sb].v = &vs[sb];
            seqs[sb].chunks = 1;
        }
        return seqs;
    }

    void
    runFused()
    {
        std::vector<kv::KvSpan> ks, vs;
        auto seqs = views(ks, vs);
        gemm::attnFused(shape, 1, span - 1, seqs.data(), seqs.size());
    }

    void
    runNaive()
    {
        const std::int64_t width = shape.heads * shape.headDim;
        for (std::int64_t b = 0; b < batch; ++b)
            naiveAttention(cache, q.data() + b * width,
                           out.data() + b * width, b, shape.heads,
                           shape.kvHeads, shape.headDim, span);
    }
};

float
maxAbsDiff(const std::vector<float>& a, const std::vector<float>& b)
{
    float worst = 0.0f;
    for (std::size_t i = 0; i < a.size(); ++i)
        worst = std::max(worst, std::abs(a[i] - b[i]));
    return worst;
}

} // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    std::string out_dir;
    std::string baseline_dir;
    double check_speedup = 0.0;

    {
        std::string err;
        if (!applyThreadsEnv(&err))
            usageError("CPULLM_THREADS expects a non-negative "
                       "integer, got '" + err + "'");
    }

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char* flag) -> std::string {
            if (i + 1 >= argc)
                usageError(std::string(flag) + " needs a value");
            return argv[++i];
        };
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--out") {
            out_dir = value("--out");
        } else if (arg == "--baseline-out") {
            baseline_dir = value("--baseline-out");
        } else if (arg == "--threads") {
            const std::string v = value("--threads");
            char* end = nullptr;
            const long n = std::strtol(v.c_str(), &end, 10);
            if (end == v.c_str() || *end != '\0' || n < 0)
                usageError("--threads expects a non-negative "
                           "integer, got '" + v + "'");
            setMaxThreads(static_cast<std::size_t>(n));
        } else if (arg == "--check-speedup") {
            const std::string v = value("--check-speedup");
            char* end = nullptr;
            const double x = std::strtod(v.c_str(), &end);
            if (end == v.c_str() || *end != '\0' || !(x > 0.0))
                usageError("--check-speedup expects a positive "
                           "number, got '" + v + "'");
            check_speedup = x;
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else {
            usageError("unknown flag: " + arg);
        }
    }

    // Decode: batch 2 sequences over the paper's span sweep. Quick
    // and full run the SAME shapes and spans so their metric keys
    // stay bench_diff-comparable; quick only shortens the timing
    // loops (and the prefill span below).
    const double min_s = quick ? 0.005 : 0.2;
    const std::int64_t batch = 2;
    const std::vector<std::int64_t> spans = {128, 512, 1024};
    const ShapeCfg mha{"mha", 8, 8, 64}; // OPT-style heads
    const ShapeCfg gqa{"gqa", 8, 2, 64}; // LLaMA-style grouped kv

    const auto run_started = std::chrono::steady_clock::now();
    core::BenchBaseline full;
    full.id = "host_attention";
    full.title = "Host attention wall-clock: fused parallel "
                 "span kernel vs naive per-position readK/readV loop";

    Rng rng(42);
    Table t({"config", "span", "naive ms", "fused ms", "speedup",
             "fused Mrows/s"});
    t.setCaption("host decode attention wall-clock (" +
                 std::string(quick ? "quick" : "full") + ", " +
                 std::to_string(hardwareThreads()) + " threads)");

    bool within_tol = true;
    std::vector<double> ge512_speedups;
    for (const ShapeCfg& shape : {mha, gqa}) {
        for (const std::int64_t span : spans) {
            DecodeSetup d(shape, batch, span, DType::BF16, rng);

            // Correctness first: fused vs the reference kernel.
            std::vector<kv::KvSpan> ks, vs;
            auto seqs = d.views(ks, vs);
            gemm::attnRef(d.shape, 1, span - 1, seqs.data(),
                          seqs.size());
            const std::vector<float> want = d.out;
            d.runFused();
            if (maxAbsDiff(d.out, want) > gemm::kAttnTolerance)
                within_tol = false;

            const double naive_s =
                timeLoop(min_s, [&] { d.runNaive(); });
            const double fused_s =
                timeLoop(min_s, [&] { d.runFused(); });
            const double sp = naive_s / fused_s;
            const std::string key = std::string(shape.name) +
                                    "_span" + std::to_string(span);
            full.metrics["speedup/decode_" + key] = sp;
            // K/V rows streamed per second, the bandwidth-style view
            // (machine-bound; excluded from the committed subset).
            const double rows = static_cast<double>(
                batch * shape.kvHeads * span);
            full.metrics["rows_per_s/decode_" + key + "_fused"] =
                rows / fused_s;
            if (span >= 512)
                ge512_speedups.push_back(sp);
            t.addRow({std::string(shape.name) + " bf16",
                      std::to_string(span), fmt(naive_s * 1e3),
                      fmt(fused_s * 1e3), fmt(sp),
                      fmt(rows / fused_s / 1e6)});
        }
    }

    // One F32-cache decode point: the span path with no BF16
    // widening on the stream.
    {
        DecodeSetup d(mha, batch, 512, DType::F32, rng);
        std::vector<kv::KvSpan> ks, vs;
        auto seqs = d.views(ks, vs);
        gemm::attnRef(d.shape, 1, 511, seqs.data(), seqs.size());
        const std::vector<float> want = d.out;
        d.runFused();
        if (maxAbsDiff(d.out, want) > gemm::kAttnTolerance)
            within_tol = false;
        const double naive_s = timeLoop(min_s, [&] { d.runNaive(); });
        const double fused_s = timeLoop(min_s, [&] { d.runFused(); });
        full.metrics["speedup/decode_f32_span512"] = naive_s / fused_s;
        t.addRow({"mha f32", "512", fmt(naive_s * 1e3),
                  fmt(fused_s * 1e3), fmt(naive_s / fused_s), "-"});
    }

    // Prefill: the fused kernel batches all query positions into one
    // call; the naive path re-ran single-position attention per
    // token. The metric key omits the span so quick (64 tokens) and
    // full (128) runs stay comparable only within their own mode —
    // the committed baseline comes from a quick run.
    {
        const std::int64_t m = quick ? 64 : 128;
        const ShapeCfg& shape = mha;
        const std::int64_t width = shape.heads * shape.headDim;
        DecodeSetup d(shape, 1, m, DType::BF16, rng);
        d.q.resize(static_cast<std::size_t>(m * width));
        d.out.assign(d.q.size(), 0.0f);
        for (auto& x : d.q)
            x = static_cast<float>(rng.uniform(-1.0, 1.0));

        const double naive_s = timeLoop(min_s, [&] {
            for (std::int64_t p = 0; p < m; ++p)
                naiveAttention(d.cache, d.q.data() + p * width,
                               d.out.data() + p * width, 0,
                               shape.heads, shape.kvHeads,
                               shape.headDim, p + 1);
        });
        const double fused_s = timeLoop(min_s, [&] {
            kv::KvSpan ks = d.cache.kSpan(0, 0);
            kv::KvSpan vs = d.cache.vSpan(0, 0);
            gemm::AttnSeqView seq;
            seq.q = d.q.data();
            seq.out = d.out.data();
            seq.k = &ks;
            seq.v = &vs;
            seq.chunks = 1;
            gemm::attnFused(d.shape, m, 0, &seq, 1);
        });
        full.metrics["speedup/prefill_mha"] = naive_s / fused_s;
        t.addRow({"mha prefill m" + std::to_string(m), "-",
                  fmt(naive_s * 1e3), fmt(fused_s * 1e3),
                  fmt(naive_s / fused_s), "-"});
    }

    // Thread invariance: the (sequence x kv-head) grid must produce
    // bitwise-identical output under any thread count.
    bool invariant = true;
    {
        Rng r2(7);
        DecodeSetup one(gqa, batch, 256, DType::BF16, r2);
        Rng r3(7);
        DecodeSetup many(gqa, batch, 256, DType::BF16, r3);
        setMaxThreads(1);
        one.runFused();
        setMaxThreads(4);
        many.runFused();
        setMaxThreads(0);
        invariant = one.out == many.out;
    }

    const double geo = geomean(ge512_speedups);
    full.metrics["speedup/decode_geomean_ge512"] = geo;
    // Booleans pinned at 1: any drift on another machine is a real
    // kernel defect, not wall-clock noise.
    full.metrics["exact/fused_within_tol"] = within_tol ? 1.0 : 0.0;
    full.metrics["exact/thread_invariant"] = invariant ? 1.0 : 0.0;
    full.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      run_started)
            .count();

    t.print(std::cout);
    std::cout << "decode speedup geomean (spans >= 512): " << fmt(geo)
              << "x; fused within tolerance: "
              << (within_tol ? "yes" : "NO")
              << "; thread invariant: " << (invariant ? "yes" : "NO")
              << "\n";

    if (!out_dir.empty()) {
        if (!core::writeBaseline(full, out_dir)) {
            std::cerr << "bench_host_attention: cannot write "
                      << out_dir << "\n";
            return 1;
        }
        std::cout << "wrote " << out_dir << "/" << full.filename()
                  << "\n";
    }
    if (!baseline_dir.empty()) {
        // Machine-relative subset only: rows/s do not transfer
        // between machines, speedup ratios and exactness do.
        core::BenchBaseline portable = full;
        for (auto it = portable.metrics.begin();
             it != portable.metrics.end();) {
            if (it->first.rfind("speedup", 0) == 0 ||
                it->first.rfind("exact/", 0) == 0)
                ++it;
            else
                it = portable.metrics.erase(it);
        }
        if (!core::writeBaseline(portable, baseline_dir)) {
            std::cerr << "bench_host_attention: cannot write "
                      << baseline_dir << "\n";
            return 1;
        }
        std::cout << "wrote " << baseline_dir << "/"
                  << portable.filename() << " (machine-relative "
                  << portable.metrics.size() << " metrics)\n";
    }

    if (!within_tol || !invariant) {
        std::cerr << "bench_host_attention: kernel correctness check "
                     "failed\n";
        return 1;
    }
    if (check_speedup > 0.0) {
        if (!(geo >= check_speedup)) {
            std::cerr << "bench_host_attention: decode speedup "
                      << fmt(geo) << "x is below the required "
                      << fmt(check_speedup) << "x\n";
            return 1;
        }
        std::cout << "speedup check passed: " << fmt(geo)
                  << "x >= " << fmt(check_speedup) << "x\n";
    }
    return 0;
}
