/**
 * @file
 * Fig 19: end-to-end latency and throughput of the SPR Max CPU vs
 * A100/H100 at batch size 16, normalized to the CPU.
 */

#include "bench_common.h"

#include "gpu/gpu_model.h"

namespace {

void
BM_GpuBatchedSimulation(benchmark::State& state)
{
    const cpullm::gpu::GpuPerfModel h100(cpullm::hw::nvidiaH100());
    const auto m = cpullm::model::llama2_13b();
    const auto w = cpullm::perf::paperWorkload(16);
    for (auto _ : state) {
        auto r = h100.run(m, w);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_GpuBatchedSimulation);

} // namespace

int
main(int argc, char** argv)
{
    const auto fig = cpullm::core::figCpuVsGpu(16);
    cpullm::bench::printFigure(fig.latency);
    cpullm::bench::printFigure(fig.throughput);
    // Machine-readable run report(s) for this figure's
    // representative configuration (no-op without
    // CPULLM_RESULTS_DIR).
    cpullm::bench::reportSingleRequest(cpullm::hw::sprDefaultPlatform(),
                                       cpullm::model::opt30b(),
                                       cpullm::perf::paperWorkload(16));
    cpullm::bench::reportGpuRequest(cpullm::hw::nvidiaA100(),
                                    cpullm::model::opt30b(),
                                    cpullm::perf::paperWorkload(16));
    cpullm::bench::reportGpuRequest(cpullm::hw::nvidiaH100(),
                                    cpullm::model::opt30b(),
                                    cpullm::perf::paperWorkload(16));
    return cpullm::bench::runBenchmarks(argc, argv);
}
