/**
 * @file
 * Fig 20: CPU vs GPU latency/throughput across input sequence lengths
 * at batch size 1 (output fixed at 32 tokens).
 */

#include "bench_common.h"

#include "perf/cpu_model.h"

namespace {

void
BM_LongSequenceSimulation(benchmark::State& state)
{
    const cpullm::perf::CpuPerfModel spr(
        cpullm::hw::sprDefaultPlatform());
    const auto m = cpullm::model::llama2_70b();
    cpullm::perf::Workload w;
    w.batch = 1;
    w.promptLen = state.range(0);
    w.genLen = 32;
    for (auto _ : state) {
        auto t = spr.run(m, w);
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_LongSequenceSimulation)->Arg(128)->Arg(1024)->Arg(4096);

} // namespace

int
main(int argc, char** argv)
{
    const auto fig = cpullm::core::figSeqLenSweep(1);
    cpullm::bench::printFigure(fig.latency);
    cpullm::bench::printFigure(fig.throughput);
    // Machine-readable run report(s) for this figure's
    // representative configuration (no-op without
    // CPULLM_RESULTS_DIR).
    cpullm::perf::Workload wl = cpullm::perf::paperWorkload(1);
    wl.promptLen = 1024;
    cpullm::bench::reportSingleRequest(cpullm::hw::sprDefaultPlatform(),
                                       cpullm::model::llama2_13b(),
                                       wl);
    return cpullm::bench::runBenchmarks(argc, argv);
}
