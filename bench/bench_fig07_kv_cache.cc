/**
 * @file
 * Fig 7: KV-cache memory footprint for LLaMA2-13B across sequence
 * lengths and batch sizes; the benchmark times functional KV-cache
 * writes through the kv::KvCache substrate.
 */

#include "bench_common.h"

#include <vector>

#include "kv/kv_cache.h"

namespace {

void
BM_KvCacheWriteToken(benchmark::State& state)
{
    // One layer's worth of K/V appends for a 5120-wide model.
    cpullm::kv::KvCache cache(1, 1, 5120, 2048, cpullm::DType::BF16);
    std::vector<float> k(5120, 0.5f), v(5120, -0.5f);
    std::int64_t pos = 0;
    for (auto _ : state) {
        cache.write(0, 0, pos, k.data(), v.data());
        pos = (pos + 1) % 2048;
    }
    state.SetBytesProcessed(state.iterations() * 5120 * 2 * 2);
}
BENCHMARK(BM_KvCacheWriteToken);

} // namespace

int
main(int argc, char** argv)
{
    cpullm::bench::printFigure(cpullm::core::fig07KvCacheFootprint());
    // Machine-readable run report(s) for this figure's
    // representative configuration (no-op without
    // CPULLM_RESULTS_DIR).
    cpullm::bench::reportSingleRequest(cpullm::hw::sprDefaultPlatform(),
                                       cpullm::model::llama2_13b(),
                                       cpullm::perf::paperWorkload(8));
    return cpullm::bench::runBenchmarks(argc, argv);
}
