/**
 * @file
 * Table II: the GPU server configurations (A100-40GB, H100-80GB)
 * printed from the hardware registry.
 */

#include "bench_common.h"

#include "hw/gpu.h"

namespace {

void
BM_GpuConfigConstruction(benchmark::State& state)
{
    for (auto _ : state) {
        auto a = cpullm::hw::nvidiaA100();
        auto h = cpullm::hw::nvidiaH100();
        benchmark::DoNotOptimize(a);
        benchmark::DoNotOptimize(h);
    }
}
BENCHMARK(BM_GpuConfigConstruction);

} // namespace

int
main(int argc, char** argv)
{
    cpullm::core::table2GpuConfigs().print(std::cout);
    std::cout << '\n';
    return cpullm::bench::runBenchmarks(argc, argv);
}
