/**
 * @file
 * Fig 10: prefill and decode throughput improvements of SPR over ICL
 * (normalized to ICL).
 */

#include "bench_common.h"

#include "perf/cpu_model.h"

namespace {

void
BM_PhaseOpsBuild(benchmark::State& state)
{
    const auto m = cpullm::model::opt66b();
    const auto w = cpullm::perf::paperWorkload(16);
    for (auto _ : state) {
        auto ops = cpullm::perf::buildPhaseOps(
            m, cpullm::perf::Phase::Prefill, w, w.promptLen);
        benchmark::DoNotOptimize(ops);
    }
}
BENCHMARK(BM_PhaseOpsBuild);

} // namespace

int
main(int argc, char** argv)
{
    const auto fig = cpullm::core::fig10PhaseThroughput();
    cpullm::bench::printFigure(fig.prefill);
    cpullm::bench::printFigure(fig.decode);
    // Machine-readable run report(s) for this figure's
    // representative configuration (no-op without
    // CPULLM_RESULTS_DIR).
    for (const auto& platform : {cpullm::hw::iclDefaultPlatform(),
                                 cpullm::hw::sprDefaultPlatform()}) {
        cpullm::bench::reportSingleRequest(
            platform, cpullm::model::opt13b(),
            cpullm::perf::paperWorkload(8));
    }
    return cpullm::bench::runBenchmarks(argc, argv);
}
