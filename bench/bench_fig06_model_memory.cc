/**
 * @file
 * Fig 6: FP16 weight memory footprint of the OPT and LLaMA-2 model
 * zoo (plus OPT-175B, the Section III example).
 */

#include "bench_common.h"

#include "model/spec.h"

namespace {

void
BM_ParameterCounting(benchmark::State& state)
{
    const auto zoo = cpullm::model::evaluatedModels();
    for (auto _ : state) {
        std::uint64_t total = 0;
        for (const auto& m : zoo)
            total += m.numParameters();
        benchmark::DoNotOptimize(total);
    }
}
BENCHMARK(BM_ParameterCounting);

} // namespace

int
main(int argc, char** argv)
{
    cpullm::bench::printFigure(cpullm::core::fig06ModelMemory());
    // Machine-readable run report(s) for this figure's
    // representative configuration (no-op without
    // CPULLM_RESULTS_DIR).
    cpullm::bench::reportSingleRequest(cpullm::hw::sprDefaultPlatform(),
                                       cpullm::model::llama2_13b(),
                                       cpullm::perf::paperWorkload(1));
    return cpullm::bench::runBenchmarks(argc, argv);
}
