#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/logging.h"
#include "util/string_util.h"

namespace cpullm {

std::int64_t
numElements(const Shape& shape)
{
    std::int64_t n = 1;
    for (std::int64_t d : shape) {
        CPULLM_ASSERT(d >= 0, "negative dimension");
        n *= d;
    }
    return n;
}

std::string
shapeToString(const Shape& shape)
{
    std::string out = "[";
    for (size_t i = 0; i < shape.size(); ++i) {
        if (i) out += ", ";
        out += std::to_string(shape[i]);
    }
    return out + "]";
}

Tensor::Tensor(Shape shape, DType dtype)
    : shape_(std::move(shape)), dtype_(dtype), elems_(numElements(shape_)),
      storage_(static_cast<size_t>(elems_) * dtypeSize(dtype), 0)
{
}

Tensor
Tensor::fromValues(Shape shape, const std::vector<float>& vals)
{
    Tensor t(std::move(shape), DType::F32);
    CPULLM_ASSERT(static_cast<std::int64_t>(vals.size()) == t.size(),
                  "value count ", vals.size(), " != tensor size ",
                  t.size());
    std::memcpy(t.raw(), vals.data(), vals.size() * sizeof(float));
    return t;
}

Tensor
Tensor::randomNormal(Shape shape, DType dtype, Rng& rng, float stddev)
{
    Tensor t(std::move(shape), dtype);
    for (std::int64_t i = 0; i < t.size(); ++i)
        t.setAt(i, static_cast<float>(rng.normal()) * stddev);
    return t;
}

Tensor
Tensor::randomUniform(Shape shape, DType dtype, Rng& rng, float lo,
                      float hi)
{
    Tensor t(std::move(shape), dtype);
    for (std::int64_t i = 0; i < t.size(); ++i)
        t.setAt(i, static_cast<float>(rng.uniform(lo, hi)));
    return t;
}

std::int64_t
Tensor::dim(std::int64_t i) const
{
    CPULLM_ASSERT(i >= 0 && i < rank(), "dim index ", i,
                  " out of range for rank ", rank());
    return shape_[static_cast<size_t>(i)];
}

void
Tensor::checkDType(DType expect) const
{
    CPULLM_ASSERT(dtype_ == expect, "dtype mismatch: tensor is ",
                  dtypeName(dtype_), ", access as ", dtypeName(expect));
}

template <>
const float*
Tensor::data<float>() const
{
    checkDType(DType::F32);
    return reinterpret_cast<const float*>(storage_.data());
}

template <>
const BFloat16*
Tensor::data<BFloat16>() const
{
    checkDType(DType::BF16);
    return reinterpret_cast<const BFloat16*>(storage_.data());
}

template <>
const Float16*
Tensor::data<Float16>() const
{
    checkDType(DType::F16);
    return reinterpret_cast<const Float16*>(storage_.data());
}

template <>
const std::int8_t*
Tensor::data<std::int8_t>() const
{
    checkDType(DType::I8);
    return reinterpret_cast<const std::int8_t*>(storage_.data());
}

template <>
const std::int32_t*
Tensor::data<std::int32_t>() const
{
    checkDType(DType::I32);
    return reinterpret_cast<const std::int32_t*>(storage_.data());
}

float
Tensor::at(std::int64_t index) const
{
    CPULLM_ASSERT(index >= 0 && index < elems_, "index ", index,
                  " out of range for size ", elems_);
    const auto* base = storage_.data();
    switch (dtype_) {
      case DType::F32:
        return reinterpret_cast<const float*>(base)[index];
      case DType::BF16:
        return reinterpret_cast<const BFloat16*>(base)[index].toFloat();
      case DType::F16:
        return reinterpret_cast<const Float16*>(base)[index].toFloat();
      case DType::I8:
      case DType::I4: // stored one code per byte (storage ceiling)
        return static_cast<float>(
            reinterpret_cast<const std::int8_t*>(base)[index]);
      case DType::I32:
        return static_cast<float>(
            reinterpret_cast<const std::int32_t*>(base)[index]);
    }
    CPULLM_PANIC("unhandled dtype");
}

void
Tensor::setAt(std::int64_t index, float value)
{
    CPULLM_ASSERT(index >= 0 && index < elems_, "index ", index,
                  " out of range for size ", elems_);
    auto* base = storage_.data();
    switch (dtype_) {
      case DType::F32:
        reinterpret_cast<float*>(base)[index] = value;
        return;
      case DType::BF16:
        reinterpret_cast<BFloat16*>(base)[index] = BFloat16(value);
        return;
      case DType::F16:
        reinterpret_cast<Float16*>(base)[index] = Float16(value);
        return;
      case DType::I8:
      case DType::I4: // stored one code per byte (storage ceiling)
        reinterpret_cast<std::int8_t*>(base)[index] =
            static_cast<std::int8_t>(std::clamp(
                std::nearbyintf(value), -128.0f, 127.0f));
        return;
      case DType::I32:
        reinterpret_cast<std::int32_t*>(base)[index] =
            static_cast<std::int32_t>(std::llrint(value));
        return;
    }
    CPULLM_PANIC("unhandled dtype");
}

Tensor
Tensor::cast(DType target) const
{
    if (target == dtype_) {
        Tensor out(shape_, dtype_);
        std::memcpy(out.raw(), storage_.data(), storage_.size());
        return out;
    }
    Tensor out(shape_, target);
    for (std::int64_t i = 0; i < elems_; ++i)
        out.setAt(i, at(i));
    return out;
}

Tensor
Tensor::reshaped(Shape new_shape) const
{
    CPULLM_ASSERT(numElements(new_shape) == elems_,
                  "reshape element mismatch: ", shapeToString(new_shape),
                  " vs ", shapeToString(shape_));
    Tensor out(std::move(new_shape), dtype_);
    std::memcpy(out.raw(), storage_.data(), storage_.size());
    return out;
}

void
Tensor::fill(float value)
{
    for (std::int64_t i = 0; i < elems_; ++i)
        setAt(i, value);
}

float
maxAbsDiff(const Tensor& a, const Tensor& b)
{
    CPULLM_ASSERT(a.shape() == b.shape(), "shape mismatch: ",
                  shapeToString(a.shape()), " vs ",
                  shapeToString(b.shape()));
    float m = 0.0f;
    for (std::int64_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::fabs(a.at(i) - b.at(i)));
    return m;
}

bool
allClose(const Tensor& a, const Tensor& b, float rtol, float atol)
{
    if (a.shape() != b.shape())
        return false;
    for (std::int64_t i = 0; i < a.size(); ++i) {
        const float x = a.at(i);
        const float y = b.at(i);
        if (std::fabs(x - y) > atol + rtol * std::fabs(y))
            return false;
    }
    return true;
}

} // namespace cpullm
