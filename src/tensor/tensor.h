#ifndef CPULLM_TENSOR_TENSOR_H
#define CPULLM_TENSOR_TENSOR_H

/**
 * @file
 * Dense row-major tensor used by the functional execution path. The
 * timing-only path never allocates tensors; it works with shapes alone,
 * so this class favours clarity over exotic features (no strided views,
 * no broadcasting).
 */

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "numerics/bf16.h"
#include "numerics/dtype.h"
#include "numerics/fp16.h"
#include "util/rng.h"

namespace cpullm {

/** Shape as a list of dimension extents. */
using Shape = std::vector<std::int64_t>;

/** Number of elements in a shape. */
std::int64_t numElements(const Shape& shape);

/** Render e.g. "[2, 128, 4096]". */
std::string shapeToString(const Shape& shape);

/**
 * A dense, contiguous, row-major tensor owning its storage.
 *
 * Element access is through typed data<T>() pointers; T must match the
 * dtype's storage type (float for F32, BFloat16 for BF16, ...).
 */
class Tensor
{
  public:
    /** Empty tensor (rank 0, no storage). */
    Tensor() = default;

    /** Allocate a zero-initialized tensor. */
    Tensor(Shape shape, DType dtype);

    /** @name Factories */
    /// @{
    /** FP32 tensor from explicit values; size must match the shape. */
    static Tensor fromValues(Shape shape, const std::vector<float>& vals);

    /** i.i.d. normal(0, stddev) values in the given dtype. */
    static Tensor randomNormal(Shape shape, DType dtype, Rng& rng,
                               float stddev = 1.0f);

    /** Uniform [lo, hi) values in the given dtype. */
    static Tensor randomUniform(Shape shape, DType dtype, Rng& rng,
                                float lo = -1.0f, float hi = 1.0f);
    /// @}

    const Shape& shape() const { return shape_; }
    DType dtype() const { return dtype_; }
    std::int64_t rank() const
    {
        return static_cast<std::int64_t>(shape_.size());
    }
    std::int64_t dim(std::int64_t i) const;
    std::int64_t size() const { return elems_; }
    std::uint64_t byteSize() const
    {
        return static_cast<std::uint64_t>(elems_) * dtypeSize(dtype_);
    }
    bool empty() const { return elems_ == 0; }

    /** Typed storage pointer; panics if T mismatches the dtype. */
    template <typename T> T* data();
    template <typename T> const T* data() const;

    /** Raw bytes. */
    void* raw() { return storage_.data(); }
    const void* raw() const { return storage_.data(); }

    /** Element as float regardless of dtype (linear index). */
    float at(std::int64_t index) const;

    /** Store a float into a linear index, converting to the dtype. */
    void setAt(std::int64_t index, float value);

    /** Copy-convert to another dtype. */
    Tensor cast(DType target) const;

    /** Return a same-data tensor with a different shape. */
    Tensor reshaped(Shape new_shape) const;

    /** Fill with a constant. */
    void fill(float value);

  private:
    void checkDType(DType expect) const;

    Shape shape_;
    DType dtype_ = DType::F32;
    std::int64_t elems_ = 0;
    std::vector<std::uint8_t> storage_;
};

/**
 * Max absolute difference between two tensors (must be same shape);
 * compares in FP32.
 */
float maxAbsDiff(const Tensor& a, const Tensor& b);

/** True if max |a-b| <= atol + rtol*max|b| elementwise (FP32 compare). */
bool allClose(const Tensor& a, const Tensor& b, float rtol = 1e-3f,
              float atol = 1e-5f);

template <typename T>
T*
Tensor::data()
{
    return const_cast<T*>(
        static_cast<const Tensor*>(this)->data<T>());
}

template <> const float* Tensor::data<float>() const;
template <> const BFloat16* Tensor::data<BFloat16>() const;
template <> const Float16* Tensor::data<Float16>() const;
template <> const std::int8_t* Tensor::data<std::int8_t>() const;
template <> const std::int32_t* Tensor::data<std::int32_t>() const;

} // namespace cpullm

#endif // CPULLM_TENSOR_TENSOR_H
