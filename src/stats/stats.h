#ifndef CPULLM_STATS_STATS_H
#define CPULLM_STATS_STATS_H

/**
 * @file
 * Lightweight statistics package in the spirit of gem5's Stats. A
 * Registry owns named statistics; simulation components register
 * scalars/distributions and the harness dumps them as a table.
 */

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace cpullm {
namespace stats {

/** A named scalar accumulator (sum; also tracks sample count). */
class Scalar
{
  public:
    Scalar() = default;

    Scalar& operator+=(double v)
    {
        sum_ += v;
        ++samples_;
        return *this;
    }

    void set(double v)
    {
        sum_ = v;
        samples_ = 1;
    }

    void reset()
    {
        sum_ = 0.0;
        samples_ = 0;
    }

    double value() const { return sum_; }
    std::uint64_t samples() const { return samples_; }
    double mean() const { return samples_ ? sum_ / samples_ : 0.0; }

  private:
    double sum_ = 0.0;
    std::uint64_t samples_ = 0;
};

/** Running min/max/mean/variance (Welford) over samples. */
class Distribution
{
  public:
    void sample(double v);
    void reset();

    std::uint64_t count() const { return count_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return mean_; }
    double variance() const;
    double stddev() const;

  private:
    std::uint64_t count_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/** Fixed-bucket histogram over [lo, hi) with overflow/underflow bins. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    void sample(double v);
    void reset();

    std::uint64_t count() const { return count_; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    const std::vector<std::uint64_t>& buckets() const { return buckets_; }
    double bucketLow(std::size_t i) const;
    double bucketHigh(std::size_t i) const;

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
};

/**
 * Owns named statistics. Names are hierarchical, dot-separated
 * ("engine.decode.tokens"); dump() emits them in sorted order.
 */
class Registry
{
  public:
    /** Register (or fetch) a scalar by name. */
    Scalar& scalar(const std::string& name, const std::string& desc = "");

    /** Register (or fetch) a distribution by name. */
    Distribution& distribution(const std::string& name,
                               const std::string& desc = "");

    /** True if a statistic with this name exists. */
    bool has(const std::string& name) const;

    /** Look up a scalar; panics if absent (internal error). */
    const Scalar& getScalar(const std::string& name) const;

    /** Reset all statistics to zero. */
    void resetAll();

    /** Emit "name value description" lines, sorted by name. */
    void dump(std::ostream& os) const;

    /** Names in sorted order. */
    std::vector<std::string> names() const;

  private:
    struct Entry
    {
        std::string desc;
        std::unique_ptr<Scalar> scalar;
        std::unique_ptr<Distribution> dist;
    };

    std::map<std::string, Entry> entries_;
};

} // namespace stats
} // namespace cpullm

#endif // CPULLM_STATS_STATS_H
