#ifndef CPULLM_STATS_STATS_H
#define CPULLM_STATS_STATS_H

/**
 * @file
 * Lightweight statistics package in the spirit of gem5's Stats. A
 * Registry owns named statistics; simulation components register
 * scalars/distributions and the harness dumps them as a table.
 */

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace cpullm {
namespace stats {

/**
 * Linearly interpolated percentile (0-100) over raw samples; the one
 * definition shared by the serving simulator, the metrics exporters,
 * and the run reports. An empty sample set has no percentiles:
 * returns quiet NaN (JSON writers must map it to null, see
 * obs::writeRegistryJson).
 */
double percentile(std::vector<double> values, double p);

/** A named scalar accumulator (sum; also tracks sample count). */
class Scalar
{
  public:
    Scalar() = default;

    Scalar& operator+=(double v)
    {
        sum_ += v;
        ++samples_;
        return *this;
    }

    void set(double v)
    {
        sum_ = v;
        samples_ = 1;
    }

    void reset()
    {
        sum_ = 0.0;
        samples_ = 0;
    }

    /** Fold another accumulator in (sum and sample counts add). */
    void merge(const Scalar& other)
    {
        sum_ += other.sum_;
        samples_ += other.samples_;
    }

    double value() const { return sum_; }
    std::uint64_t samples() const { return samples_; }
    double mean() const { return samples_ ? sum_ / samples_ : 0.0; }

  private:
    double sum_ = 0.0;
    std::uint64_t samples_ = 0;
};

/** Running min/max/mean/variance (Welford) over samples. */
class Distribution
{
  public:
    void sample(double v);
    void reset();

    /** Fold another distribution in (parallel Welford combine). */
    void merge(const Distribution& other);

    std::uint64_t count() const { return count_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return mean_; }
    double variance() const;
    double stddev() const;

  private:
    std::uint64_t count_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/** Fixed-bucket histogram over [lo, hi) with overflow/underflow bins. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    void sample(double v);
    void reset();

    /** Fold another histogram in; bounds must match (panic if not). */
    void merge(const Histogram& other);

    std::uint64_t count() const { return count_; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    const std::vector<std::uint64_t>& buckets() const { return buckets_; }
    double bucketLow(std::size_t i) const;
    double bucketHigh(std::size_t i) const;

    double lo() const { return lo_; }
    double hi() const { return hi_; }

    /** Sum of all samples (incl. under/overflow), for mean and the
     *  Prometheus `_sum` series. */
    double sum() const { return sum_; }
    double mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }

    /**
     * Estimated percentile (0-100), linearly interpolated within the
     * containing bucket. Underflow samples clamp to lo(), overflow
     * samples to hi(). An empty histogram has no quantiles: returns
     * quiet NaN (JSON writers must map it to null).
     */
    double quantile(double p) const;

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    double sum_ = 0.0;
};

/** Which concrete statistic a Registry entry holds. */
enum class StatKind { Scalar, Distribution, Histogram };

/**
 * Owns named statistics. Names are hierarchical, dot-separated
 * ("engine.decode.tokens"); dump() emits them in sorted order.
 *
 * Threading: recording through the references returned by
 * scalar()/distribution()/histogram() is NOT synchronized — each
 * simulation thread records into its own shard registry. The
 * supported concurrent pattern is shard-and-merge: merge() and
 * snapshot() serialize on an internal mutex, so a reader (e.g. the
 * telemetry HTTP endpoint) takes snapshot() copies while writer
 * threads fold their shards in via merge().
 */
class Registry
{
  public:
    /** Register (or fetch) a scalar by name. */
    Scalar& scalar(const std::string& name, const std::string& desc = "");

    /** Register (or fetch) a distribution by name. */
    Distribution& distribution(const std::string& name,
                               const std::string& desc = "");

    /**
     * Register (or fetch) a histogram by name. Bounds are fixed at
     * first registration; later calls with the same name return the
     * existing histogram and ignore the bounds.
     */
    Histogram& histogram(const std::string& name, double lo, double hi,
                         std::size_t buckets,
                         const std::string& desc = "");

    /** True if a statistic with this name exists. */
    bool has(const std::string& name) const;

    /** Look up a scalar; panics if absent (internal error). */
    const Scalar& getScalar(const std::string& name) const;

    /** Look up a distribution; panics if absent (internal error). */
    const Distribution& getDistribution(const std::string& name) const;

    /** Look up a histogram; panics if absent (internal error). */
    const Histogram& getHistogram(const std::string& name) const;

    /** Description registered with a statistic ("" if none). */
    const std::string& description(const std::string& name) const;

    /** Kind of a registered statistic; panics if absent. */
    StatKind kind(const std::string& name) const;

    /** Reset all statistics to zero. */
    void resetAll();

    /**
     * Fold every statistic of @p other into this registry, creating
     * entries (with @p other's descriptions) where absent. Same-name
     * entries must hold the same statistic kind — this is how
     * per-thread registries combine after a parallelFor sweep.
     * Serializes with snapshot() on this registry's mutex (@p other
     * is read unlocked: it is the caller's thread-local shard).
     */
    void merge(const Registry& other);

    /**
     * Deep copy of every statistic, taken under the registry mutex —
     * the read side of the shard-and-merge pattern. The copy is
     * private to the caller and safe to read while writers keep
     * merging into this registry.
     */
    Registry snapshot() const;

    /** Emit "name value description" lines, sorted by name. */
    void dump(std::ostream& os) const;

    /** Names in sorted order. */
    std::vector<std::string> names() const;

  private:
    struct Entry
    {
        std::string desc;
        std::unique_ptr<Scalar> scalar;
        std::unique_ptr<Distribution> dist;
        std::unique_ptr<Histogram> hist;
    };

    std::map<std::string, Entry> entries_;
    /** Guards merge()/snapshot(); heap-allocated so the registry
     *  stays movable (null after a move — see lockIfPresent()). */
    mutable std::unique_ptr<std::mutex> mu_ =
        std::make_unique<std::mutex>();

    std::unique_lock<std::mutex> lockIfPresent() const
    {
        return mu_ ? std::unique_lock<std::mutex>(*mu_)
                   : std::unique_lock<std::mutex>();
    }
};

} // namespace stats
} // namespace cpullm

#endif // CPULLM_STATS_STATS_H
