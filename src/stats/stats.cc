#include "stats/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"
#include "util/string_util.h"

namespace cpullm {
namespace stats {

double
percentile(std::vector<double> values, double p)
{
    CPULLM_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range");
    if (values.empty())
        return std::numeric_limits<double>::quiet_NaN();
    std::sort(values.begin(), values.end());
    const double rank = p / 100.0 *
                        static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

void
Distribution::sample(double v)
{
    ++count_;
    if (count_ == 1) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (v - mean_);
}

void
Distribution::reset()
{
    count_ = 0;
    min_ = max_ = mean_ = m2_ = 0.0;
}

void
Distribution::merge(const Distribution& other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    const double total =
        static_cast<double>(count_ + other.count_);
    const double delta = other.mean_ - mean_;
    // Chan et al. parallel variance combine.
    m2_ += other.m2_ + delta * delta *
                           static_cast<double>(count_) *
                           static_cast<double>(other.count_) / total;
    mean_ += delta * static_cast<double>(other.count_) / total;
    count_ += other.count_;
}

double
Distribution::variance() const
{
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double
Distribution::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), buckets_(buckets, 0)
{
    CPULLM_ASSERT(hi > lo && buckets > 0, "invalid histogram bounds");
}

void
Histogram::sample(double v)
{
    ++count_;
    sum_ += v;
    if (v < lo_) {
        ++underflow_;
        return;
    }
    if (v >= hi_) {
        ++overflow_;
        return;
    }
    const double frac = (v - lo_) / (hi_ - lo_);
    auto idx = static_cast<std::size_t>(
        frac * static_cast<double>(buckets_.size()));
    if (idx >= buckets_.size())
        idx = buckets_.size() - 1;
    ++buckets_[idx];
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = underflow_ = overflow_ = 0;
    sum_ = 0.0;
}

void
Histogram::merge(const Histogram& other)
{
    CPULLM_ASSERT(lo_ == other.lo_ && hi_ == other.hi_ &&
                      buckets_.size() == other.buckets_.size(),
                  "merging histograms with different bounds");
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    sum_ += other.sum_;
}

double
Histogram::bucketLow(std::size_t i) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(buckets_.size());
}

double
Histogram::bucketHigh(std::size_t i) const
{
    return bucketLow(i + 1);
}

double
Histogram::quantile(double p) const
{
    CPULLM_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range");
    if (count_ == 0)
        return std::numeric_limits<double>::quiet_NaN();
    const double rank = p / 100.0 * static_cast<double>(count_);
    double cum = static_cast<double>(underflow_);
    if (rank <= cum)
        return lo_;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        const double n = static_cast<double>(buckets_[i]);
        if (rank <= cum + n && n > 0.0) {
            const double frac = (rank - cum) / n;
            return bucketLow(i) +
                   frac * (bucketHigh(i) - bucketLow(i));
        }
        cum += n;
    }
    return hi_;
}

Scalar&
Registry::scalar(const std::string& name, const std::string& desc)
{
    Entry& e = entries_[name];
    if (!e.scalar) {
        e.scalar = std::make_unique<Scalar>();
        if (!desc.empty())
            e.desc = desc;
    }
    return *e.scalar;
}

Distribution&
Registry::distribution(const std::string& name, const std::string& desc)
{
    Entry& e = entries_[name];
    if (!e.dist) {
        e.dist = std::make_unique<Distribution>();
        if (!desc.empty())
            e.desc = desc;
    }
    return *e.dist;
}

Histogram&
Registry::histogram(const std::string& name, double lo, double hi,
                    std::size_t buckets, const std::string& desc)
{
    Entry& e = entries_[name];
    if (!e.hist) {
        e.hist = std::make_unique<Histogram>(lo, hi, buckets);
        if (!desc.empty())
            e.desc = desc;
    }
    return *e.hist;
}

bool
Registry::has(const std::string& name) const
{
    return entries_.count(name) != 0;
}

const Scalar&
Registry::getScalar(const std::string& name) const
{
    auto it = entries_.find(name);
    CPULLM_ASSERT(it != entries_.end() && it->second.scalar,
                  "unknown scalar stat '", name, "'");
    return *it->second.scalar;
}

const Distribution&
Registry::getDistribution(const std::string& name) const
{
    auto it = entries_.find(name);
    CPULLM_ASSERT(it != entries_.end() && it->second.dist,
                  "unknown distribution stat '", name, "'");
    return *it->second.dist;
}

const Histogram&
Registry::getHistogram(const std::string& name) const
{
    auto it = entries_.find(name);
    CPULLM_ASSERT(it != entries_.end() && it->second.hist,
                  "unknown histogram stat '", name, "'");
    return *it->second.hist;
}

const std::string&
Registry::description(const std::string& name) const
{
    auto it = entries_.find(name);
    CPULLM_ASSERT(it != entries_.end(), "unknown stat '", name, "'");
    return it->second.desc;
}

StatKind
Registry::kind(const std::string& name) const
{
    auto it = entries_.find(name);
    CPULLM_ASSERT(it != entries_.end(), "unknown stat '", name, "'");
    if (it->second.scalar)
        return StatKind::Scalar;
    if (it->second.dist)
        return StatKind::Distribution;
    CPULLM_ASSERT(it->second.hist, "empty stat entry '", name, "'");
    return StatKind::Histogram;
}

void
Registry::resetAll()
{
    for (auto& [name, e] : entries_) {
        if (e.scalar)
            e.scalar->reset();
        if (e.dist)
            e.dist->reset();
        if (e.hist)
            e.hist->reset();
    }
}

void
Registry::merge(const Registry& other)
{
    const auto lock = lockIfPresent();
    for (const auto& [name, oe] : other.entries_) {
        Entry& e = entries_[name];
        if (e.desc.empty())
            e.desc = oe.desc;
        if (oe.scalar) {
            CPULLM_ASSERT(!e.dist && !e.hist,
                          "stat kind mismatch merging '", name, "'");
            if (!e.scalar)
                e.scalar = std::make_unique<Scalar>();
            e.scalar->merge(*oe.scalar);
        } else if (oe.dist) {
            CPULLM_ASSERT(!e.scalar && !e.hist,
                          "stat kind mismatch merging '", name, "'");
            if (!e.dist)
                e.dist = std::make_unique<Distribution>();
            e.dist->merge(*oe.dist);
        } else if (oe.hist) {
            CPULLM_ASSERT(!e.scalar && !e.dist,
                          "stat kind mismatch merging '", name, "'");
            if (!e.hist) {
                e.hist = std::make_unique<Histogram>(
                    oe.hist->lo(), oe.hist->hi(),
                    oe.hist->buckets().size());
            }
            e.hist->merge(*oe.hist);
        }
    }
}

Registry
Registry::snapshot() const
{
    const auto lock = lockIfPresent();
    Registry out;
    for (const auto& [name, e] : entries_) {
        Entry& ne = out.entries_[name];
        ne.desc = e.desc;
        if (e.scalar)
            ne.scalar = std::make_unique<Scalar>(*e.scalar);
        if (e.dist)
            ne.dist = std::make_unique<Distribution>(*e.dist);
        if (e.hist)
            ne.hist = std::make_unique<Histogram>(*e.hist);
    }
    return out;
}

void
Registry::dump(std::ostream& os) const
{
    for (const auto& [name, e] : entries_) {
        if (e.scalar) {
            os << strformat("%-48s %18s", name.c_str(),
                            formatNumber(e.scalar->value(), 6).c_str());
        } else if (e.dist) {
            os << strformat("%-48s mean=%s min=%s max=%s n=%llu",
                            name.c_str(),
                            formatNumber(e.dist->mean(), 6).c_str(),
                            formatNumber(e.dist->min(), 6).c_str(),
                            formatNumber(e.dist->max(), 6).c_str(),
                            static_cast<unsigned long long>(
                                e.dist->count()));
        } else if (e.hist) {
            os << strformat(
                "%-48s p50=%s p95=%s p99=%s n=%llu (uf=%llu of=%llu)",
                name.c_str(),
                formatNumber(e.hist->quantile(50.0), 6).c_str(),
                formatNumber(e.hist->quantile(95.0), 6).c_str(),
                formatNumber(e.hist->quantile(99.0), 6).c_str(),
                static_cast<unsigned long long>(e.hist->count()),
                static_cast<unsigned long long>(e.hist->underflow()),
                static_cast<unsigned long long>(e.hist->overflow()));
        }
        if (!e.desc.empty())
            os << "  # " << e.desc;
        os << '\n';
    }
}

std::vector<std::string>
Registry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [name, e] : entries_)
        out.push_back(name);
    return out;
}

} // namespace stats
} // namespace cpullm
