#include "stats/stats.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace cpullm {
namespace stats {

void
Distribution::sample(double v)
{
    ++count_;
    if (count_ == 1) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (v - mean_);
}

void
Distribution::reset()
{
    count_ = 0;
    min_ = max_ = mean_ = m2_ = 0.0;
}

double
Distribution::variance() const
{
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double
Distribution::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), buckets_(buckets, 0)
{
    CPULLM_ASSERT(hi > lo && buckets > 0, "invalid histogram bounds");
}

void
Histogram::sample(double v)
{
    ++count_;
    if (v < lo_) {
        ++underflow_;
        return;
    }
    if (v >= hi_) {
        ++overflow_;
        return;
    }
    const double frac = (v - lo_) / (hi_ - lo_);
    auto idx = static_cast<std::size_t>(
        frac * static_cast<double>(buckets_.size()));
    if (idx >= buckets_.size())
        idx = buckets_.size() - 1;
    ++buckets_[idx];
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = underflow_ = overflow_ = 0;
}

double
Histogram::bucketLow(std::size_t i) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(buckets_.size());
}

double
Histogram::bucketHigh(std::size_t i) const
{
    return bucketLow(i + 1);
}

Scalar&
Registry::scalar(const std::string& name, const std::string& desc)
{
    Entry& e = entries_[name];
    if (!e.scalar) {
        e.scalar = std::make_unique<Scalar>();
        if (!desc.empty())
            e.desc = desc;
    }
    return *e.scalar;
}

Distribution&
Registry::distribution(const std::string& name, const std::string& desc)
{
    Entry& e = entries_[name];
    if (!e.dist) {
        e.dist = std::make_unique<Distribution>();
        if (!desc.empty())
            e.desc = desc;
    }
    return *e.dist;
}

bool
Registry::has(const std::string& name) const
{
    return entries_.count(name) != 0;
}

const Scalar&
Registry::getScalar(const std::string& name) const
{
    auto it = entries_.find(name);
    CPULLM_ASSERT(it != entries_.end() && it->second.scalar,
                  "unknown scalar stat '", name, "'");
    return *it->second.scalar;
}

void
Registry::resetAll()
{
    for (auto& [name, e] : entries_) {
        if (e.scalar)
            e.scalar->reset();
        if (e.dist)
            e.dist->reset();
    }
}

void
Registry::dump(std::ostream& os) const
{
    for (const auto& [name, e] : entries_) {
        if (e.scalar) {
            os << strformat("%-48s %18s", name.c_str(),
                            formatNumber(e.scalar->value(), 6).c_str());
        } else if (e.dist) {
            os << strformat("%-48s mean=%s min=%s max=%s n=%llu",
                            name.c_str(),
                            formatNumber(e.dist->mean(), 6).c_str(),
                            formatNumber(e.dist->min(), 6).c_str(),
                            formatNumber(e.dist->max(), 6).c_str(),
                            static_cast<unsigned long long>(
                                e.dist->count()));
        }
        if (!e.desc.empty())
            os << "  # " << e.desc;
        os << '\n';
    }
}

std::vector<std::string>
Registry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [name, e] : entries_)
        out.push_back(name);
    return out;
}

} // namespace stats
} // namespace cpullm
