#ifndef CPULLM_NUMERICS_DTYPE_H
#define CPULLM_NUMERICS_DTYPE_H

/**
 * @file
 * Data types the framework models, with the element sizes used in all
 * footprint and bandwidth computations.
 */

#include <cstddef>
#include <cstdint>
#include <string>

namespace cpullm {

/** Element types supported by the tensors and hardware models. */
enum class DType : std::uint8_t {
    F32,  ///< IEEE binary32
    BF16, ///< brain float 16 (AMX/AVX-512 native)
    F16,  ///< IEEE binary16 (footprint accounting, GPU native)
    I8,   ///< signed 8-bit integer (AMX INT8 path)
    I32,  ///< 32-bit integer (INT8 accumulator)
    I4,   ///< 4-bit integer (weight-only quantization accounting)
};

/**
 * Bytes per element of @p t, rounded up to a whole storage byte.
 * I4 reports 1 here (tensors never store nibbles); bandwidth and
 * footprint math must use dtypeBits to keep sub-byte dtypes honest.
 */
std::size_t dtypeSize(DType t);

/** Bits per element of @p t (4 for I4). */
std::size_t dtypeBits(DType t);

/** Human-readable name ("bf16", ...). */
std::string dtypeName(DType t);

/** Parse a dtype name; fatal on unknown names (user input). */
DType dtypeFromName(const std::string& name);

/**
 * Symmetric per-tensor INT8 quantization parameters: real = scale * q.
 */
struct QuantParams
{
    float scale = 1.0f;

    /** Quantize with round-to-nearest and saturation to [-127, 127]. */
    std::int8_t quantize(float v) const;

    /** Dequantize. */
    float dequantize(std::int8_t q) const { return scale * q; }

    /** Pick a scale covering [-absmax, absmax]. */
    static QuantParams forAbsMax(float absmax);
};

} // namespace cpullm

#endif // CPULLM_NUMERICS_DTYPE_H
