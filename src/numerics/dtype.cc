#include "numerics/dtype.h"

#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace cpullm {

std::size_t
dtypeSize(DType t)
{
    switch (t) {
      case DType::F32:
      case DType::I32:
        return 4;
      case DType::BF16:
      case DType::F16:
        return 2;
      case DType::I8:
      case DType::I4: // storage ceiling; use dtypeBits for traffic math
        return 1;
    }
    CPULLM_PANIC("unhandled dtype");
}

std::size_t
dtypeBits(DType t)
{
    if (t == DType::I4)
        return 4;
    return dtypeSize(t) * 8;
}

std::string
dtypeName(DType t)
{
    switch (t) {
      case DType::F32:
        return "f32";
      case DType::BF16:
        return "bf16";
      case DType::F16:
        return "f16";
      case DType::I8:
        return "i8";
      case DType::I32:
        return "i32";
      case DType::I4:
        return "i4";
    }
    CPULLM_PANIC("unhandled dtype");
}

DType
dtypeFromName(const std::string& name)
{
    const std::string n = toLower(name);
    if (n == "f32" || n == "fp32" || n == "float32")
        return DType::F32;
    if (n == "bf16" || n == "bfloat16")
        return DType::BF16;
    if (n == "f16" || n == "fp16" || n == "half")
        return DType::F16;
    if (n == "i8" || n == "int8")
        return DType::I8;
    if (n == "i32" || n == "int32")
        return DType::I32;
    if (n == "i4" || n == "int4")
        return DType::I4;
    CPULLM_FATAL("unknown dtype '", name, "'");
}

std::int8_t
QuantParams::quantize(float v) const
{
    const float scaled = v / scale;
    float r = std::nearbyint(scaled);
    if (r > 127.0f)
        r = 127.0f;
    if (r < -127.0f)
        r = -127.0f;
    return static_cast<std::int8_t>(r);
}

QuantParams
QuantParams::forAbsMax(float absmax)
{
    QuantParams p;
    p.scale = absmax > 0.0f ? absmax / 127.0f : 1.0f;
    return p;
}

} // namespace cpullm
