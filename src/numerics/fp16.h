#ifndef CPULLM_NUMERICS_FP16_H
#define CPULLM_NUMERICS_FP16_H

/**
 * @file
 * IEEE-754 binary16 used for footprint accounting (the paper quotes
 * FP16 model sizes) and as an alternative activation dtype.
 */

#include <cstdint>
#include <cstring>

namespace cpullm {

/** 16-bit IEEE half: 1 sign, 5 exponent, 10 mantissa bits. */
class Float16
{
  public:
    Float16() = default;

    /** Round-to-nearest-even conversion from FP32. */
    explicit Float16(float f) : bits_(fromFloat(f)) {}

    static Float16
    fromBits(std::uint16_t bits)
    {
        Float16 h;
        h.bits_ = bits;
        return h;
    }

    std::uint16_t bits() const { return bits_; }

    float
    toFloat() const
    {
        const std::uint32_t sign = (bits_ & 0x8000u) << 16;
        const std::uint32_t exp = (bits_ >> 10) & 0x1Fu;
        const std::uint32_t man = bits_ & 0x3FFu;
        std::uint32_t w;
        if (exp == 0) {
            if (man == 0) {
                w = sign; // signed zero
            } else {
                // Subnormal: normalize.
                int e = -1;
                std::uint32_t m = man;
                do {
                    ++e;
                    m <<= 1;
                } while ((m & 0x400u) == 0);
                w = sign | ((127 - 15 - e) << 23) | ((m & 0x3FFu) << 13);
            }
        } else if (exp == 0x1F) {
            w = sign | 0x7F800000u | (man << 13); // Inf/NaN
        } else {
            w = sign | ((exp - 15 + 127) << 23) | (man << 13);
        }
        float f;
        std::memcpy(&f, &w, sizeof(f));
        return f;
    }

    explicit operator float() const { return toFloat(); }

    bool operator==(const Float16& o) const { return bits_ == o.bits_; }

  private:
    static std::uint16_t
    fromFloat(float f)
    {
        std::uint32_t w;
        std::memcpy(&w, &f, sizeof(w));
        const std::uint32_t sign = (w >> 16) & 0x8000u;
        const std::int32_t exp =
            static_cast<std::int32_t>((w >> 23) & 0xFFu) - 127 + 15;
        std::uint32_t man = w & 0x7FFFFFu;

        if (((w >> 23) & 0xFFu) == 0xFFu) { // Inf/NaN
            const std::uint32_t nan = man ? 0x200u : 0u;
            return static_cast<std::uint16_t>(
                sign | 0x7C00u | nan | (man >> 13));
        }
        if (exp >= 0x1F) // overflow -> Inf
            return static_cast<std::uint16_t>(sign | 0x7C00u);
        if (exp <= 0) {
            if (exp < -10)
                return static_cast<std::uint16_t>(sign); // underflow -> 0
            // Subnormal half.
            man |= 0x800000u;
            const int shift = 14 - exp;
            std::uint32_t half_man = man >> shift;
            // Round to nearest even.
            const std::uint32_t rem = man & ((1u << shift) - 1);
            const std::uint32_t halfway = 1u << (shift - 1);
            if (rem > halfway || (rem == halfway && (half_man & 1)))
                ++half_man;
            return static_cast<std::uint16_t>(sign | half_man);
        }
        // Normal number; round mantissa to nearest even on 13 bits.
        std::uint32_t out = sign |
            (static_cast<std::uint32_t>(exp) << 10) | (man >> 13);
        const std::uint32_t rem = man & 0x1FFFu;
        if (rem > 0x1000u || (rem == 0x1000u && (out & 1)))
            ++out; // may carry into exponent, which is correct rounding
        return static_cast<std::uint16_t>(out);
    }

    std::uint16_t bits_ = 0;
};

} // namespace cpullm

#endif // CPULLM_NUMERICS_FP16_H
