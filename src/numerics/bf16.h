#ifndef CPULLM_NUMERICS_BF16_H
#define CPULLM_NUMERICS_BF16_H

/**
 * @file
 * Brain floating point (BF16) with the exact conversion semantics the
 * AMX/AVX-512 BF16 instructions use: truncation of an FP32 value keeps
 * the top 16 bits; FP32->BF16 conversion rounds to nearest-even. The
 * functional AMX model (tdpbf16ps) multiplies BF16 pairs and
 * accumulates in FP32, matching hardware.
 */

#include <cstdint>
#include <cstring>

namespace cpullm {

/** 16-bit brain float: 1 sign, 8 exponent, 7 mantissa bits. */
class BFloat16
{
  public:
    BFloat16() = default;

    /** Round-to-nearest-even conversion from FP32, as VCVTNEPS2BF16. */
    explicit BFloat16(float f) : bits_(fromFloatBits(f)) {}

    /** Reinterpret raw 16-bit storage. */
    static BFloat16
    fromBits(std::uint16_t bits)
    {
        BFloat16 b;
        b.bits_ = bits;
        return b;
    }

    std::uint16_t bits() const { return bits_; }

    /** Widen to FP32 (exact: append 16 zero mantissa bits). */
    float
    toFloat() const
    {
        std::uint32_t w = static_cast<std::uint32_t>(bits_) << 16;
        float f;
        std::memcpy(&f, &w, sizeof(f));
        return f;
    }

    explicit operator float() const { return toFloat(); }

    bool operator==(const BFloat16& o) const { return bits_ == o.bits_; }
    bool operator!=(const BFloat16& o) const { return bits_ != o.bits_; }

  private:
    static std::uint16_t
    fromFloatBits(float f)
    {
        std::uint32_t w;
        std::memcpy(&w, &f, sizeof(w));
        // NaN: keep a quiet NaN, don't let rounding turn it into Inf.
        if ((w & 0x7F800000u) == 0x7F800000u && (w & 0x007FFFFFu) != 0)
            return static_cast<std::uint16_t>((w >> 16) | 0x0040u);
        // Round to nearest even on the 16 discarded bits.
        const std::uint32_t rounding =
            0x7FFFu + ((w >> 16) & 1u);
        w += rounding;
        return static_cast<std::uint16_t>(w >> 16);
    }

    std::uint16_t bits_ = 0;
};

/** BF16 * BF16 with FP32 accumulation, the TMUL primitive. */
inline float
bf16MulAcc(BFloat16 a, BFloat16 b, float acc)
{
    return acc + a.toFloat() * b.toFloat();
}

} // namespace cpullm

#endif // CPULLM_NUMERICS_BF16_H
