#include "opt/hybrid.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace cpullm {
namespace opt {

HybridExecutionModel::HybridExecutionModel(
    const hw::PlatformConfig& cpu_platform, const hw::GpuConfig& gpu,
    HybridCalibration cal)
    : cpu_(cpu_platform), gpu_(gpu), cal_(cal)
{
}

double
HybridExecutionModel::minCpuFraction(const model::ModelSpec& spec,
                                     const perf::Workload& w) const
{
    const double weights =
        static_cast<double>(spec.weightBytes(w.dtype));
    const double kv = static_cast<double>(
        spec.kvCacheBytes(w.finalSeqLen(), w.batch, w.kvDtype));
    const double act = static_cast<double>(spec.activationBytes(
        w.batch * w.promptLen, w.finalSeqLen(), DType::BF16));
    const double budget =
        static_cast<double>(gpu_.memoryBudget()) - kv - act;
    if (budget <= 0.0)
        return 1.0; // KV alone exceeds the GPU: everything on CPU
    if (budget >= weights)
        return 0.0; // whole model fits
    return 1.0 - budget / weights;
}

namespace {

/** Scale a phase breakdown by the share of layers it covers. */
double
scaledPhaseTime(const perf::PhaseBreakdown& full, double fraction)
{
    return full.totalTime * fraction;
}

} // namespace

HybridEvaluation
HybridExecutionModel::evaluate(const model::ModelSpec& spec,
                               const perf::Workload& w,
                               double cpu_fraction) const
{
    CPULLM_ASSERT(cpu_fraction >= 0.0 && cpu_fraction <= 1.0,
                  "cpu fraction out of range: ", cpu_fraction);
    const double f = cpu_fraction;
    const double g = 1.0 - f;

    // Boundary activation transfer: the residual stream crosses PCIe
    // once per step (per direction amortized into one crossing).
    const double pcie = gpu_.gpu().pcie.effectiveBandwidth();
    auto boundary = [&](std::int64_t tokens) {
        if (f == 0.0 || g == 0.0)
            return 0.0;
        const double bytes = static_cast<double>(tokens) *
                             static_cast<double>(spec.dModel) * 2.0;
        return bytes / pcie + gpu_.gpu().pcie.latency;
    };
    const double sync = (f > 0.0 && g > 0.0) ? cal_.syncOverhead : 0.0;
    const bool pipelined =
        w.batch >= cal_.pipelineDepth && f > 0.0 && g > 0.0;

    auto step_time = [&](perf::Phase phase, std::int64_t ctx) {
        const double cpu_t =
            f > 0.0
                ? scaledPhaseTime(cpu_.timePhase(spec, phase, w, ctx),
                                  f)
                : 0.0;
        const double gpu_t =
            g > 0.0 ? gpu_.timeStep(spec, phase, w, ctx,
                                    gpu::GpuPlacement::Resident)
                              .total *
                          g
                    : 0.0;
        const std::int64_t tokens =
            w.batch * (phase == perf::Phase::Prefill ? w.promptLen : 1);
        const double cross = boundary(tokens) + sync;
        if (pipelined)
            return std::max(cpu_t, gpu_t) + cross;
        return cpu_t + gpu_t + cross;
    };

    HybridEvaluation ev;
    ev.cpuFraction = f;
    perf::InferenceTiming& t = ev.timing;
    t.ttft = step_time(perf::Phase::Prefill, w.promptLen);
    const std::int64_t steps = w.genLen - 1;
    t.decodeTime = 0.0;
    for (std::int64_t s = 0; s < steps; ++s)
        t.decodeTime += step_time(perf::Phase::Decode,
                                  w.promptLen + s + 1);
    t.tpot = steps > 0 ? t.decodeTime / static_cast<double>(steps)
                       : 0.0;
    t.e2eLatency = t.ttft + t.decodeTime;
    t.totalThroughput =
        static_cast<double>(w.generatedTokens()) / t.e2eLatency;
    t.prefillThroughput =
        static_cast<double>(w.batch * w.promptLen) / t.ttft;
    t.decodeThroughput =
        steps > 0 ? static_cast<double>(w.batch * steps) / t.decodeTime
                  : 0.0;
    return ev;
}

HybridResult
HybridExecutionModel::optimize(const model::ModelSpec& spec,
                               const perf::Workload& w,
                               int granularity) const
{
    CPULLM_ASSERT(granularity >= 1, "granularity must be >= 1");
    HybridResult r;
    r.pureCpu = cpu_.run(spec, w);
    const gpu::GpuRunResult pure_gpu = gpu_.run(spec, w);
    r.pureGpu = pure_gpu.timing;
    r.pureGpuPlacement = pure_gpu.placement;

    const double f_min = minCpuFraction(spec, w);
    double best_lat = r.pureCpu.e2eLatency;
    HybridEvaluation best;
    best.cpuFraction = 1.0;
    best.timing = r.pureCpu;

    // Pure GPU counts as a candidate only when it needs no streaming;
    // an offloaded pure-GPU baseline is already captured in pureGpu.
    if (f_min == 0.0 && r.pureGpu.e2eLatency < best_lat) {
        best_lat = r.pureGpu.e2eLatency;
        best.cpuFraction = 0.0;
        best.timing = r.pureGpu;
    }

    for (int i = 0; i <= granularity; ++i) {
        const double f =
            f_min + (1.0 - f_min) * static_cast<double>(i) /
                        static_cast<double>(granularity);
        if (f <= 0.0 || f >= 1.0)
            continue;
        const HybridEvaluation ev = evaluate(spec, w, f);
        r.sweep.push_back(ev);
        if (ev.timing.e2eLatency < best_lat) {
            best_lat = ev.timing.e2eLatency;
            best = ev;
        }
    }
    r.best = best;
    return r;
}

} // namespace opt
} // namespace cpullm
