#ifndef CPULLM_OPT_HYBRID_H
#define CPULLM_OPT_HYBRID_H

/**
 * @file
 * Section VI optimization #2: CPU-GPU hybrid execution. FlexGen
 * leaves the host CPU nearly idle (attention only); the paper argues
 * that for models exceeding GPU memory, running a *share of the
 * decoder layers* on the AMX CPU — instead of streaming their weights
 * over PCIe — should beat both pure strategies.
 *
 * Model: the GPU keeps as many layers resident as fit its memory
 * budget; the CPU executes the remaining fraction f from HBM. Within
 * a token the two parts are sequential; with batch >= 2 the runtime
 * splits the batch into micro-batches and pipelines the two devices,
 * so the steady-state step cost is max(cpu, gpu) + boundary transfer.
 */

#include <vector>

#include "gpu/gpu_model.h"
#include "hw/platform.h"
#include "model/spec.h"
#include "perf/cpu_model.h"
#include "perf/timing.h"
#include "perf/workload.h"

namespace cpullm {
namespace opt {

/** Calibration of the hybrid runtime glue. */
struct HybridCalibration
{
    /** Per-step cross-device synchronization cost, seconds. */
    double syncOverhead = 150e-6;
    /** Micro-batches used to pipeline CPU and GPU stages. */
    int pipelineDepth = 2;
};

/** One evaluated split point. */
struct HybridEvaluation
{
    /** Fraction of decoder layers executed on the CPU. */
    double cpuFraction = 0.0;
    perf::InferenceTiming timing;
};

/** Outcome of a hybrid-execution search. */
struct HybridResult
{
    HybridEvaluation best;
    perf::InferenceTiming pureCpu;
    perf::InferenceTiming pureGpu;
    gpu::GpuPlacement pureGpuPlacement = gpu::GpuPlacement::Resident;
    /** All evaluated split points (for ablation plots). */
    std::vector<HybridEvaluation> sweep;

    /** Hybrid speedup over the better pure strategy (>1 = wins). */
    double
    speedupVsBestPure() const
    {
        const double best_pure = pureCpu.e2eLatency <
                                         pureGpu.e2eLatency
                                     ? pureCpu.e2eLatency
                                     : pureGpu.e2eLatency;
        return best_pure / best.timing.e2eLatency;
    }
};

/** CPU-GPU hybrid (pipelined layer-split) execution model. */
class HybridExecutionModel
{
  public:
    HybridExecutionModel(const hw::PlatformConfig& cpu_platform,
                         const hw::GpuConfig& gpu,
                         HybridCalibration cal = {});

    /**
     * Smallest CPU fraction such that the GPU share of the weights
     * (plus KV/activations) fits the GPU memory budget.
     */
    double minCpuFraction(const model::ModelSpec& spec,
                          const perf::Workload& w) const;

    /** Evaluate one split point (cpu_fraction in [0, 1]). */
    HybridEvaluation evaluate(const model::ModelSpec& spec,
                              const perf::Workload& w,
                              double cpu_fraction) const;

    /**
     * Search split points (including the pure strategies) and return
     * the best, with the pure baselines for comparison.
     * @param granularity number of interior split points to test
     */
    HybridResult optimize(const model::ModelSpec& spec,
                          const perf::Workload& w,
                          int granularity = 20) const;

  private:
    perf::CpuPerfModel cpu_;
    gpu::GpuPerfModel gpu_;
    HybridCalibration cal_;
};

} // namespace opt
} // namespace cpullm

#endif // CPULLM_OPT_HYBRID_H
