#ifndef CPULLM_OPT_NUMA_PLACEMENT_H
#define CPULLM_OPT_NUMA_PLACEMENT_H

/**
 * @file
 * Section VI optimization #1: NUMA-aware data placement. The paper
 * proposes placing hot activations in HBM/local DDR and cold data in
 * remote DDR, motivated by activation-importance studies (Deja Vu,
 * Flash-LLM). This module evaluates that proposal inside the timing
 * model: the same platform simulated with NUMA-oblivious vs.
 * hot/cold-aware placement.
 */

#include "hw/platform.h"
#include "model/spec.h"
#include "perf/cpu_model.h"
#include "perf/timing.h"
#include "perf/workload.h"

namespace cpullm {
namespace opt {

/** Outcome of one placement-policy comparison. */
struct NumaPlacementResult
{
    hw::PlatformConfig platform;
    perf::InferenceTiming oblivious;
    perf::InferenceTiming aware;

    /** E2E latency improvement factor (>1 = aware is faster). */
    double
    e2eSpeedup() const
    {
        return oblivious.e2eLatency / aware.e2eLatency;
    }

    /** Decode (TPOT) improvement factor. */
    double
    tpotSpeedup() const
    {
        return aware.tpot > 0.0 ? oblivious.tpot / aware.tpot : 1.0;
    }
};

/**
 * Simulate @p spec/@p workload on @p platform under both placement
 * policies. The interesting platforms are the ones the paper found
 * degraded: SNC-4 clustering and 96-core (two-socket) runs.
 */
NumaPlacementResult compareNumaPlacement(
    const hw::PlatformConfig& platform, const model::ModelSpec& spec,
    const perf::Workload& workload);

/**
 * The headline ablation: does NUMA-aware placement rehabilitate the
 * configurations Key Findings #2/#3 rejected?
 *
 * Returns results for snc_flat/48c and quad_flat/96c, whose oblivious
 * versions lose to quad_flat/48c; with aware placement both should
 * close most of the gap (and SNC can edge ahead, as Section II-E's
 * "higher bandwidth and lower latency" suggests).
 */
std::vector<NumaPlacementResult> numaPlacementAblation(
    const model::ModelSpec& spec, const perf::Workload& workload);

} // namespace opt
} // namespace cpullm

#endif // CPULLM_OPT_NUMA_PLACEMENT_H
