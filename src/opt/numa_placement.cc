#include "opt/numa_placement.h"

namespace cpullm {
namespace opt {

NumaPlacementResult
compareNumaPlacement(const hw::PlatformConfig& platform,
                     const model::ModelSpec& spec,
                     const perf::Workload& workload)
{
    NumaPlacementResult r;
    r.platform = platform;

    perf::CpuCalibration oblivious_cal;
    oblivious_cal.placementPolicy = mem::PlacementPolicy::Oblivious;
    const perf::CpuPerfModel oblivious(platform, oblivious_cal);
    r.oblivious = oblivious.run(spec, workload);

    perf::CpuCalibration aware_cal;
    aware_cal.placementPolicy = mem::PlacementPolicy::HotColdAware;
    const perf::CpuPerfModel aware(platform, aware_cal);
    r.aware = aware.run(spec, workload);
    return r;
}

std::vector<NumaPlacementResult>
numaPlacementAblation(const model::ModelSpec& spec,
                      const perf::Workload& workload)
{
    std::vector<NumaPlacementResult> out;
    out.push_back(compareNumaPlacement(
        hw::sprPlatform(hw::ClusteringMode::Snc4, hw::MemoryMode::Flat,
                        48),
        spec, workload));
    out.push_back(compareNumaPlacement(
        hw::sprPlatform(hw::ClusteringMode::Quadrant,
                        hw::MemoryMode::Flat, 96),
        spec, workload));
    return out;
}

} // namespace opt
} // namespace cpullm
