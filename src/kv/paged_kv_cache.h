#ifndef CPULLM_KV_PAGED_KV_CACHE_H
#define CPULLM_KV_PAGED_KV_CACHE_H

/**
 * @file
 * Paged KV cache in the style of vLLM's PagedAttention (related work
 * [28]). Instead of one contiguous [batch, max_seq] allocation per
 * layer, KV entries live in fixed-size blocks drawn from a shared
 * pool, and each sequence keeps a block table. This removes the
 * reservation waste the contiguous layout pays for short sequences —
 * the memory-capacity pressure Fig 7 quantifies — at the cost of an
 * indirection per access.
 */

#include <cstdint>
#include <vector>

#include "kv/kv_span.h"
#include "numerics/dtype.h"
#include "tensor/tensor.h"

namespace cpullm {
namespace kv {

/**
 * Pool lifetime accounting for admission control and telemetry: the
 * low-watermark says how close the pool came to exhaustion, the CoW /
 * prefix counters how much sharing actually paid off.
 */
struct PagedPoolStats
{
    std::int64_t blockAllocs = 0;    ///< blocks handed to sequences
    std::int64_t blockFrees = 0;     ///< blocks returned to the pool
    std::int64_t cowCopies = 0;      ///< copy-on-write block clones
    std::int64_t prefixSharedBlocks = 0; ///< blocks reused via prefix
    std::int64_t minFreeBlocks = 0;  ///< low watermark of free list
};

/** Paged KV storage for a whole model. */
class PagedKvCache
{
  public:
    /**
     * @param layers     decoder block count
     * @param d_kv       numKvHeads * headDim
     * @param block_size tokens per block (vLLM default: 16)
     * @param num_blocks pool capacity in blocks (shared by all
     *                   sequences and layers' token positions; each
     *                   block stores all layers' K and V for its
     *                   tokens)
     * @param dtype      storage dtype
     */
    PagedKvCache(std::int64_t layers, std::int64_t d_kv,
                 std::int64_t block_size, std::int64_t num_blocks,
                 DType dtype);

    std::int64_t layers() const { return layers_; }
    std::int64_t dKv() const { return d_kv_; }
    std::int64_t blockSize() const { return block_size_; }
    std::int64_t numBlocks() const { return num_blocks_; }
    std::int64_t freeBlocks() const
    {
        return static_cast<std::int64_t>(free_.size());
    }

    /** @name Sequence lifecycle */
    /// @{
    /** Register a new sequence; returns its id. */
    std::int64_t addSequence();

    /**
     * Register a new sequence that shares the blocks holding the
     * first @p prefix_len cached tokens of live sequence @p src
     * (a common system prompt). Shared blocks are refcounted; a
     * partial tail block is shared too and copy-on-write cloned the
     * first time either sequence appends into it. The new sequence
     * starts with seqLen() == prefix_len.
     */
    std::int64_t addSequenceWithPrefix(std::int64_t src,
                                       std::int64_t prefix_len);

    /** Tokens currently cached for a sequence. */
    std::int64_t seqLen(std::int64_t seq) const;

    /**
     * True if appending one token to @p seq can be satisfied without
     * allocating (current block has room) or the pool has a free
     * block.
     */
    bool canAppend(std::int64_t seq) const;

    /**
     * Release a finished sequence's blocks back to the pool (each
     * block returns only when its last referencing sequence drops
     * it).
     */
    void releaseSequence(std::int64_t seq);

    /**
     * Release every sequence and return all blocks to the pool,
     * keeping the allocation. Sequence ids are invalidated; span
     * views must be re-taken after the next append (the pool storage
     * they alias is unchanged).
     */
    void reset();
    /// @}

    /** @name Token data */
    /// @{
    /**
     * Append one token's K/V vectors for every layer. @p k and @p v
     * point to layers x d_kv values (layer-major).
     * @return false if the pool is exhausted (caller must evict or
     *         release sequences first).
     */
    bool appendToken(std::int64_t seq, const float* k,
                     const float* v);

    /**
     * @name Layer-at-a-time append (the ragged decode path)
     * A transformer step discovers one layer's K/V at a time, so the
     * batched model path reserves slots up front, writes each layer
     * as it is computed, and commits once all layers are in:
     *
     *   pos0 = reserve(seq, m);            // blocks + CoW up front
     *   for each layer l, row i:
     *       writeToken(seq, l, pos0 + i, k, v);
     *   commit(seq, m);                    // publishes the length
     *
     * Span views taken with an explicit length cover the reserved
     * rows before commit() publishes them.
     */
    /// @{
    /**
     * Ensure block capacity for the next @p count token positions of
     * @p seq, copy-on-write cloning a shared tail block. Returns the
     * first reserved position, or -1 if the pool cannot satisfy the
     * reservation (no sequence state is changed in that case).
     */
    std::int64_t reserve(std::int64_t seq, std::int64_t count);

    /**
     * Write one layer's K and V vectors (d_kv floats each) at
     * reserved position @p pos. @p pos must lie in
     * [seqLen(seq), reserved capacity).
     */
    void writeToken(std::int64_t seq, std::int64_t layer,
                    std::int64_t pos, const float* k, const float* v);

    /** Publish @p count reserved tokens as valid. */
    void commit(std::int64_t seq, std::int64_t count);
    /// @}

    /** Read one cached K vector of @p layer at @p pos into @p out. */
    void readK(std::int64_t seq, std::int64_t layer, std::int64_t pos,
               float* out) const;

    /** Read one cached V vector. */
    void readV(std::int64_t seq, std::int64_t layer, std::int64_t pos,
               float* out) const;

    /**
     * Span chunks covering the K rows [0, len) of @p layer in
     * position order: one chunk per assigned block, each at most
     * blockSize rows, matching readK element for element. @p len = -1
     * means the current seqLen(seq); pass an explicit length mid-step
     * to cover reserved-but-uncommitted rows. Chunks alias pool
     * storage (no copy); they stay valid until the sequence's blocks
     * are released back to the pool.
     */
    std::vector<KvSpan> kSpans(std::int64_t seq, std::int64_t layer,
                               std::int64_t len = -1) const;

    /** Same chunk list over the V rows. */
    std::vector<KvSpan> vSpans(std::int64_t seq, std::int64_t layer,
                               std::int64_t len = -1) const;
    /// @}

    /** @name Accounting (the PagedAttention argument) */
    /// @{
    /** Bytes of the whole pool allocation. */
    std::uint64_t poolBytes() const;

    /** Bytes of blocks currently assigned to sequences. */
    std::uint64_t allocatedBytes() const;

    /** Bytes of valid token entries (excludes in-block slack). */
    std::uint64_t usedBytes() const;

    /**
     * Internal fragmentation: allocated-but-unused fraction of the
     * assigned blocks. Contiguous per-sequence reservations of
     * max_seq tokens would instead waste (max_seq - len)/max_seq.
     */
    double fragmentation() const;

    /** Lifetime pool counters (allocs, CoW, low watermark). */
    const PagedPoolStats& stats() const { return stats_; }
    /// @}

  private:
    struct Sequence
    {
        bool live = false;
        std::int64_t length = 0;
        std::vector<std::int64_t> blockTable;
    };

    /** Bytes of one block (all layers, K and V). */
    std::uint64_t blockBytes() const;

    const Sequence& seqRef(std::int64_t seq) const;

    /** Linear element offset of (layer, slot, i) inside a block. */
    std::int64_t elemOffset(std::int64_t block, std::int64_t layer,
                            std::int64_t slot) const;

    std::vector<KvSpan> spans(const Tensor& pool, std::int64_t seq,
                              std::int64_t layer,
                              std::int64_t len) const;

    /** Pop a free block (caller checked availability). */
    std::int64_t allocBlock();

    /** Drop one reference; return the block to the pool at zero. */
    void unrefBlock(std::int64_t block);

    /**
     * Clone table slot @p idx of @p s into a fresh block if it is
     * shared, so subsequent writes stay private. Returns false when
     * the pool has no block for the copy.
     */
    bool cowBlock(Sequence& s, std::size_t idx);

    std::int64_t layers_;
    std::int64_t d_kv_;
    std::int64_t block_size_;
    std::int64_t num_blocks_;
    DType dtype_;
    Tensor k_pool_; ///< [num_blocks, layers, block_size, d_kv]
    Tensor v_pool_;
    std::vector<std::int64_t> free_;
    std::vector<std::int64_t> refcount_; ///< per-block references
    std::vector<Sequence> seqs_;
    PagedPoolStats stats_;
};

} // namespace kv
} // namespace cpullm

#endif // CPULLM_KV_PAGED_KV_CACHE_H
