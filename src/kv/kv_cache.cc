#include "kv/kv_cache.h"

#include <algorithm>

#include "util/logging.h"

namespace cpullm {
namespace kv {

KvCache::KvCache(std::int64_t layers, std::int64_t batch, std::int64_t d_kv,
                 std::int64_t max_seq, DType dtype)
    : layers_(layers), batch_(batch), d_kv_(d_kv), max_seq_(max_seq),
      dtype_(dtype)
{
    CPULLM_ASSERT(layers > 0 && batch > 0 && d_kv > 0 && max_seq > 0,
                  "invalid KvCache geometry");
    seq_lens_.assign(static_cast<std::size_t>(batch), 0);
    k_.reserve(static_cast<size_t>(layers));
    v_.reserve(static_cast<size_t>(layers));
    for (std::int64_t l = 0; l < layers; ++l) {
        k_.emplace_back(Shape{batch, max_seq, d_kv}, dtype);
        v_.emplace_back(Shape{batch, max_seq, d_kv}, dtype);
    }
}

std::int64_t
KvCache::offset(std::int64_t b, std::int64_t pos) const
{
    CPULLM_ASSERT(b >= 0 && b < batch_, "batch index out of range");
    CPULLM_ASSERT(pos >= 0 && pos < max_seq_,
                  "KV position ", pos, " out of capacity ", max_seq_);
    return (b * max_seq_ + pos) * d_kv_;
}

void
KvCache::write(std::int64_t layer, std::int64_t b, std::int64_t pos,
               const float* k, const float* v)
{
    CPULLM_ASSERT(layer >= 0 && layer < layers_, "layer out of range");
    const std::int64_t base = offset(b, pos);
    Tensor& kt = k_[static_cast<size_t>(layer)];
    Tensor& vt = v_[static_cast<size_t>(layer)];
    for (std::int64_t i = 0; i < d_kv_; ++i) {
        kt.setAt(base + i, k[i]);
        vt.setAt(base + i, v[i]);
    }
}

std::int64_t
KvCache::seqLen() const
{
    std::int64_t longest = 0;
    for (const std::int64_t len : seq_lens_)
        longest = std::max(longest, len);
    return longest;
}

std::int64_t
KvCache::seqLen(std::int64_t b) const
{
    CPULLM_ASSERT(b >= 0 && b < batch_, "batch index out of range");
    return seq_lens_[static_cast<std::size_t>(b)];
}

void
KvCache::setSeqLen(std::int64_t n)
{
    CPULLM_ASSERT(n >= 0 && n <= max_seq_, "bad seq len ", n);
    for (auto& len : seq_lens_)
        len = n;
}

void
KvCache::setSeqLen(std::int64_t b, std::int64_t n)
{
    CPULLM_ASSERT(b >= 0 && b < batch_, "batch index out of range");
    CPULLM_ASSERT(n >= 0 && n <= max_seq_, "bad seq len ", n);
    seq_lens_[static_cast<std::size_t>(b)] = n;
}

void
KvCache::readK(std::int64_t layer, std::int64_t b, std::int64_t pos,
               float* out) const
{
    CPULLM_ASSERT(layer >= 0 && layer < layers_, "layer out of range");
    const std::int64_t base = offset(b, pos);
    const Tensor& kt = k_[static_cast<size_t>(layer)];
    for (std::int64_t i = 0; i < d_kv_; ++i)
        out[i] = kt.at(base + i);
}

void
KvCache::readV(std::int64_t layer, std::int64_t b, std::int64_t pos,
               float* out) const
{
    CPULLM_ASSERT(layer >= 0 && layer < layers_, "layer out of range");
    const std::int64_t base = offset(b, pos);
    const Tensor& vt = v_[static_cast<size_t>(layer)];
    for (std::int64_t i = 0; i < d_kv_; ++i)
        out[i] = vt.at(base + i);
}

KvSpan
KvCache::span(const Tensor& t, std::int64_t b, std::int64_t len) const
{
    if (len < 0)
        len = seq_lens_[static_cast<std::size_t>(b)];
    CPULLM_ASSERT(len >= 0 && len <= max_seq_,
                  "span length ", len, " out of capacity ", max_seq_);
    const std::int64_t base = offset(b, 0);
    KvSpan s;
    s.data = static_cast<const std::uint8_t*>(t.raw()) +
             static_cast<std::uint64_t>(base) * dtypeSize(dtype_);
    s.dtype = dtype_;
    s.len = len;
    s.rowElems = d_kv_;
    s.stride = d_kv_;
    return s;
}

KvSpan
KvCache::kSpan(std::int64_t layer, std::int64_t b,
               std::int64_t len) const
{
    CPULLM_ASSERT(layer >= 0 && layer < layers_, "layer out of range");
    return span(k_[static_cast<size_t>(layer)], b, len);
}

KvSpan
KvCache::vSpan(std::int64_t layer, std::int64_t b,
               std::int64_t len) const
{
    CPULLM_ASSERT(layer >= 0 && layer < layers_, "layer out of range");
    return span(v_[static_cast<size_t>(layer)], b, len);
}

std::uint64_t
KvCache::capacityBytes() const
{
    return 2ULL * static_cast<std::uint64_t>(layers_) *
           static_cast<std::uint64_t>(batch_) *
           static_cast<std::uint64_t>(max_seq_) *
           static_cast<std::uint64_t>(d_kv_) * dtypeSize(dtype_);
}

std::uint64_t
KvCache::usedBytes() const
{
    std::uint64_t tokens = 0;
    for (const std::int64_t len : seq_lens_)
        tokens += static_cast<std::uint64_t>(len);
    return 2ULL * static_cast<std::uint64_t>(layers_) * tokens *
           static_cast<std::uint64_t>(d_kv_) * dtypeSize(dtype_);
}

} // namespace kv
} // namespace cpullm
