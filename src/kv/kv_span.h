#ifndef CPULLM_KV_KV_SPAN_H
#define CPULLM_KV_KV_SPAN_H

/**
 * @file
 * Typed strided views over contiguous runs of KV-cache rows.
 *
 * The decode-attention hot loop is bandwidth bound (paper Figs 6/7):
 * it streams every cached K and V vector of the span once per step.
 * readK/readV serve that loop one position at a time through a
 * per-element dtype conversion and a d_kv-float copy; a KvSpan
 * instead hands the kernel a raw pointer into the cache storage so
 * it can stream rows in the storage dtype with no intermediate copy.
 *
 * A span covers rows [0, len) of one (layer, sequence) at a fixed
 * element stride. Contiguous caches (KvCache) produce one span per
 * (layer, sequence); paged caches produce one span per block, in
 * position order (a chunk list). Spans are non-owning and are
 * invalidated by whatever invalidates the cache storage itself.
 */

#include <cstdint>

#include "numerics/bf16.h"
#include "numerics/dtype.h"
#include "util/logging.h"

namespace cpullm {
namespace kv {

/** Non-owning view over @p len cache rows of @p rowElems elements. */
struct KvSpan
{
    const void* data = nullptr; ///< first row (storage dtype)
    DType dtype = DType::F32;   ///< storage dtype of the rows
    std::int64_t len = 0;       ///< rows (token positions) in view
    std::int64_t rowElems = 0;  ///< valid elements per row (d_kv)
    std::int64_t stride = 0;    ///< elements between consecutive rows

    bool empty() const { return len == 0; }

    /** Typed row pointers; panic on dtype mismatch. */
    const BFloat16*
    rowBf16(std::int64_t pos) const
    {
        CPULLM_ASSERT(dtype == DType::BF16,
                      "KvSpan holds ", dtypeName(dtype), ", not bf16");
        return static_cast<const BFloat16*>(data) + pos * stride;
    }

    const float*
    rowF32(std::int64_t pos) const
    {
        CPULLM_ASSERT(dtype == DType::F32,
                      "KvSpan holds ", dtypeName(dtype), ", not f32");
        return static_cast<const float*>(data) + pos * stride;
    }

    /** Element (pos, i) widened to FP32 regardless of storage dtype. */
    float
    at(std::int64_t pos, std::int64_t i) const
    {
        CPULLM_ASSERT(pos >= 0 && pos < len && i >= 0 && i < rowElems,
                      "KvSpan index (", pos, ", ", i, ") out of view");
        if (dtype == DType::BF16)
            return rowBf16(pos)[i].toFloat();
        return rowF32(pos)[i];
    }
};

} // namespace kv
} // namespace cpullm

#endif // CPULLM_KV_KV_SPAN_H
