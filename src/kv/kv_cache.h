#ifndef CPULLM_KV_KV_CACHE_H
#define CPULLM_KV_KV_CACHE_H

/**
 * @file
 * The KV cache: stored key/value vectors of already-processed tokens,
 * the de-facto decode-phase optimization whose footprint growth
 * (linear in sequence length and batch size) drives the paper's
 * memory-capacity argument (Fig 7).
 */

#include <cstdint>
#include <vector>

#include "kv/kv_span.h"
#include "tensor/tensor.h"

namespace cpullm {
namespace kv {

/**
 * Functional KV cache for a whole model: per layer, K and V tensors of
 * shape [batch, max_seq, numKvHeads * headDim]. Values are stored in
 * the cache dtype (BF16 in the paper's setup) and read back as FP32.
 */
class KvCache
{
  public:
    /**
     * Allocate a cache.
     * @param layers   decoder block count
     * @param batch    sequences in the batch
     * @param d_kv     numKvHeads * headDim
     * @param max_seq  capacity in tokens per sequence
     * @param dtype    storage dtype
     */
    KvCache(std::int64_t layers, std::int64_t batch, std::int64_t d_kv,
            std::int64_t max_seq, DType dtype);

    std::int64_t layers() const { return layers_; }
    std::int64_t batch() const { return batch_; }
    std::int64_t dKv() const { return d_kv_; }
    std::int64_t maxSeq() const { return max_seq_; }
    DType dtype() const { return dtype_; }

    /**
     * Tokens currently cached across the batch: the maximum of the
     * per-sequence lengths. In the lockstep decode path every
     * sequence advances together so this is also each sequence's
     * length; ragged callers must use seqLen(b).
     */
    std::int64_t seqLen() const;

    /** Tokens currently cached for sequence @p b. */
    std::int64_t seqLen(std::int64_t b) const;

    /**
     * Store the K and V vectors (d_kv floats each) of token @p pos of
     * sequence @p b at layer @p layer. @p pos must be < maxSeq.
     */
    void write(std::int64_t layer, std::int64_t b, std::int64_t pos,
               const float* k, const float* v);

    /** Mark @p n tokens as valid on every sequence (lockstep step). */
    void setSeqLen(std::int64_t n);

    /** Mark @p n tokens of sequence @p b as valid (ragged step). */
    void setSeqLen(std::int64_t b, std::int64_t n);

    /** Read one cached K vector into @p out (d_kv floats). */
    void readK(std::int64_t layer, std::int64_t b, std::int64_t pos,
               float* out) const;

    /** Read one cached V vector into @p out (d_kv floats). */
    void readV(std::int64_t layer, std::int64_t b, std::int64_t pos,
               float* out) const;

    /** @name Contiguous span views (the fused-attention fast path) */
    /// @{
    /**
     * View over the first @p len cached K rows of (layer, b) in the
     * storage dtype: row @p pos starts at data + pos * stride and the
     * rows match readK element for element. @p len = -1 means the
     * current seqLen(); pass an explicit length mid-step, before
     * setSeqLen() publishes the new count. The view aliases cache
     * storage (no copy) and stays valid until the cache is destroyed;
     * write() and reset() do not invalidate it.
     */
    KvSpan kSpan(std::int64_t layer, std::int64_t b,
                 std::int64_t len = -1) const;

    /** Same view over the V rows. */
    KvSpan vSpan(std::int64_t layer, std::int64_t b,
                 std::int64_t len = -1) const;
    /// @}

    /** Bytes held by the cache allocation (full capacity). */
    std::uint64_t capacityBytes() const;

    /** Bytes of currently valid entries (seqLen tokens). */
    std::uint64_t usedBytes() const;

    /** Drop all cached tokens (new request), keeping the allocation. */
    void reset()
    {
        for (auto& len : seq_lens_)
            len = 0;
    }

  private:
    std::int64_t offset(std::int64_t b, std::int64_t pos) const;

    KvSpan span(const Tensor& t, std::int64_t b,
                std::int64_t len) const;

    std::int64_t layers_;
    std::int64_t batch_;
    std::int64_t d_kv_;
    std::int64_t max_seq_;
    DType dtype_;
    std::vector<std::int64_t> seq_lens_; ///< valid tokens per sequence
    std::vector<Tensor> k_; ///< one [batch, max_seq, d_kv] per layer
    std::vector<Tensor> v_;
};

} // namespace kv
} // namespace cpullm

#endif // CPULLM_KV_KV_CACHE_H
