#include "kv/paged_kv_cache.h"

#include <algorithm>

#include "util/logging.h"

namespace cpullm {
namespace kv {

PagedKvCache::PagedKvCache(std::int64_t layers, std::int64_t d_kv,
                           std::int64_t block_size,
                           std::int64_t num_blocks, DType dtype)
    : layers_(layers), d_kv_(d_kv), block_size_(block_size),
      num_blocks_(num_blocks), dtype_(dtype),
      k_pool_(Shape{num_blocks, layers, block_size, d_kv}, dtype),
      v_pool_(Shape{num_blocks, layers, block_size, d_kv}, dtype)
{
    CPULLM_ASSERT(layers > 0 && d_kv > 0 && block_size > 0 &&
                      num_blocks > 0,
                  "invalid PagedKvCache geometry");
    free_.reserve(static_cast<std::size_t>(num_blocks));
    // LIFO free list; push in reverse so block 0 allocates first.
    for (std::int64_t b = num_blocks - 1; b >= 0; --b)
        free_.push_back(b);
}

std::int64_t
PagedKvCache::addSequence()
{
    Sequence s;
    s.live = true;
    seqs_.push_back(std::move(s));
    return static_cast<std::int64_t>(seqs_.size()) - 1;
}

const PagedKvCache::Sequence&
PagedKvCache::seqRef(std::int64_t seq) const
{
    CPULLM_ASSERT(seq >= 0 &&
                      seq < static_cast<std::int64_t>(seqs_.size()),
                  "sequence id out of range");
    const Sequence& s = seqs_[static_cast<std::size_t>(seq)];
    CPULLM_ASSERT(s.live, "sequence ", seq, " was released");
    return s;
}

std::int64_t
PagedKvCache::seqLen(std::int64_t seq) const
{
    return seqRef(seq).length;
}

bool
PagedKvCache::canAppend(std::int64_t seq) const
{
    const Sequence& s = seqRef(seq);
    if (s.length % block_size_ != 0)
        return true; // room in the tail block
    return !free_.empty();
}

void
PagedKvCache::releaseSequence(std::int64_t seq)
{
    Sequence& s = seqs_[static_cast<std::size_t>(seq)];
    CPULLM_ASSERT(seq >= 0 &&
                      seq < static_cast<std::int64_t>(seqs_.size()) &&
                      s.live,
                  "releasing an invalid sequence");
    for (std::int64_t b : s.blockTable)
        free_.push_back(b);
    s.blockTable.clear();
    s.length = 0;
    s.live = false;
}

std::int64_t
PagedKvCache::elemOffset(std::int64_t block, std::int64_t layer,
                         std::int64_t slot) const
{
    return ((block * layers_ + layer) * block_size_ + slot) * d_kv_;
}

bool
PagedKvCache::appendToken(std::int64_t seq, const float* k,
                          const float* v)
{
    Sequence& s = seqs_[static_cast<std::size_t>(seq)];
    CPULLM_ASSERT(s.live, "append to released sequence");
    const std::int64_t slot = s.length % block_size_;
    if (slot == 0) {
        if (free_.empty())
            return false;
        s.blockTable.push_back(free_.back());
        free_.pop_back();
    }
    const std::int64_t block = s.blockTable.back();
    for (std::int64_t l = 0; l < layers_; ++l) {
        const std::int64_t base = elemOffset(block, l, slot);
        for (std::int64_t i = 0; i < d_kv_; ++i) {
            k_pool_.setAt(base + i, k[l * d_kv_ + i]);
            v_pool_.setAt(base + i, v[l * d_kv_ + i]);
        }
    }
    ++s.length;
    return true;
}

void
PagedKvCache::readK(std::int64_t seq, std::int64_t layer,
                    std::int64_t pos, float* out) const
{
    const Sequence& s = seqRef(seq);
    CPULLM_ASSERT(layer >= 0 && layer < layers_, "layer out of range");
    CPULLM_ASSERT(pos >= 0 && pos < s.length, "position ", pos,
                  " beyond sequence length ", s.length);
    const std::int64_t block =
        s.blockTable[static_cast<std::size_t>(pos / block_size_)];
    const std::int64_t base =
        elemOffset(block, layer, pos % block_size_);
    for (std::int64_t i = 0; i < d_kv_; ++i)
        out[i] = k_pool_.at(base + i);
}

void
PagedKvCache::readV(std::int64_t seq, std::int64_t layer,
                    std::int64_t pos, float* out) const
{
    const Sequence& s = seqRef(seq);
    CPULLM_ASSERT(layer >= 0 && layer < layers_, "layer out of range");
    CPULLM_ASSERT(pos >= 0 && pos < s.length, "position ", pos,
                  " beyond sequence length ", s.length);
    const std::int64_t block =
        s.blockTable[static_cast<std::size_t>(pos / block_size_)];
    const std::int64_t base =
        elemOffset(block, layer, pos % block_size_);
    for (std::int64_t i = 0; i < d_kv_; ++i)
        out[i] = v_pool_.at(base + i);
}

std::vector<KvSpan>
PagedKvCache::spans(const Tensor& pool, std::int64_t seq,
                    std::int64_t layer) const
{
    const Sequence& s = seqRef(seq);
    CPULLM_ASSERT(layer >= 0 && layer < layers_, "layer out of range");
    std::vector<KvSpan> out;
    out.reserve(s.blockTable.size());
    const auto* base = static_cast<const std::uint8_t*>(pool.raw());
    std::int64_t remaining = s.length;
    for (const std::int64_t block : s.blockTable) {
        KvSpan sp;
        sp.data = base + static_cast<std::uint64_t>(
                             elemOffset(block, layer, 0)) *
                             dtypeSize(dtype_);
        sp.dtype = dtype_;
        sp.len = std::min(remaining, block_size_);
        sp.rowElems = d_kv_;
        sp.stride = d_kv_;
        out.push_back(sp);
        remaining -= sp.len;
    }
    return out;
}

std::vector<KvSpan>
PagedKvCache::kSpans(std::int64_t seq, std::int64_t layer) const
{
    return spans(k_pool_, seq, layer);
}

std::vector<KvSpan>
PagedKvCache::vSpans(std::int64_t seq, std::int64_t layer) const
{
    return spans(v_pool_, seq, layer);
}

std::uint64_t
PagedKvCache::blockBytes() const
{
    return 2ULL * static_cast<std::uint64_t>(layers_) *
           static_cast<std::uint64_t>(block_size_) *
           static_cast<std::uint64_t>(d_kv_) * dtypeSize(dtype_);
}

std::uint64_t
PagedKvCache::poolBytes() const
{
    return blockBytes() * static_cast<std::uint64_t>(num_blocks_);
}

std::uint64_t
PagedKvCache::allocatedBytes() const
{
    std::uint64_t blocks = 0;
    for (const auto& s : seqs_)
        if (s.live)
            blocks += s.blockTable.size();
    return blocks * blockBytes();
}

std::uint64_t
PagedKvCache::usedBytes() const
{
    std::uint64_t tokens = 0;
    for (const auto& s : seqs_)
        if (s.live)
            tokens += static_cast<std::uint64_t>(s.length);
    return tokens * 2ULL * static_cast<std::uint64_t>(layers_) *
           static_cast<std::uint64_t>(d_kv_) * dtypeSize(dtype_);
}

double
PagedKvCache::fragmentation() const
{
    const std::uint64_t alloc = allocatedBytes();
    if (alloc == 0)
        return 0.0;
    return 1.0 - static_cast<double>(usedBytes()) /
                     static_cast<double>(alloc);
}

} // namespace kv
} // namespace cpullm
