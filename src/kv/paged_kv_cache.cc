#include "kv/paged_kv_cache.h"

#include <algorithm>
#include <cstring>

#include "util/logging.h"

namespace cpullm {
namespace kv {

PagedKvCache::PagedKvCache(std::int64_t layers, std::int64_t d_kv,
                           std::int64_t block_size,
                           std::int64_t num_blocks, DType dtype)
    : layers_(layers), d_kv_(d_kv), block_size_(block_size),
      num_blocks_(num_blocks), dtype_(dtype),
      k_pool_(Shape{num_blocks, layers, block_size, d_kv}, dtype),
      v_pool_(Shape{num_blocks, layers, block_size, d_kv}, dtype)
{
    CPULLM_ASSERT(layers > 0 && d_kv > 0 && block_size > 0 &&
                      num_blocks > 0,
                  "invalid PagedKvCache geometry");
    free_.reserve(static_cast<std::size_t>(num_blocks));
    // LIFO free list; push in reverse so block 0 allocates first.
    for (std::int64_t b = num_blocks - 1; b >= 0; --b)
        free_.push_back(b);
    refcount_.assign(static_cast<std::size_t>(num_blocks), 0);
    stats_.minFreeBlocks = num_blocks;
}

std::int64_t
PagedKvCache::allocBlock()
{
    CPULLM_ASSERT(!free_.empty(), "allocBlock on exhausted pool");
    const std::int64_t block = free_.back();
    free_.pop_back();
    refcount_[static_cast<std::size_t>(block)] = 1;
    ++stats_.blockAllocs;
    stats_.minFreeBlocks =
        std::min(stats_.minFreeBlocks,
                 static_cast<std::int64_t>(free_.size()));
    return block;
}

void
PagedKvCache::unrefBlock(std::int64_t block)
{
    std::int64_t& rc = refcount_[static_cast<std::size_t>(block)];
    CPULLM_ASSERT(rc > 0, "unref of free block ", block);
    if (--rc == 0) {
        free_.push_back(block);
        ++stats_.blockFrees;
    }
}

bool
PagedKvCache::cowBlock(Sequence& s, std::size_t idx)
{
    const std::int64_t old = s.blockTable[idx];
    if (refcount_[static_cast<std::size_t>(old)] == 1)
        return true; // already private
    if (free_.empty())
        return false;
    const std::int64_t fresh = allocBlock();
    const std::uint64_t elems =
        static_cast<std::uint64_t>(layers_) *
        static_cast<std::uint64_t>(block_size_) *
        static_cast<std::uint64_t>(d_kv_);
    const std::uint64_t bytes = elems * dtypeSize(dtype_);
    const std::uint64_t src_off =
        static_cast<std::uint64_t>(elemOffset(old, 0, 0)) *
        dtypeSize(dtype_);
    const std::uint64_t dst_off =
        static_cast<std::uint64_t>(elemOffset(fresh, 0, 0)) *
        dtypeSize(dtype_);
    std::memcpy(static_cast<std::uint8_t*>(k_pool_.raw()) + dst_off,
                static_cast<const std::uint8_t*>(k_pool_.raw()) +
                    src_off,
                bytes);
    std::memcpy(static_cast<std::uint8_t*>(v_pool_.raw()) + dst_off,
                static_cast<const std::uint8_t*>(v_pool_.raw()) +
                    src_off,
                bytes);
    s.blockTable[idx] = fresh;
    unrefBlock(old); // cannot hit zero: it was shared
    ++stats_.cowCopies;
    return true;
}

std::int64_t
PagedKvCache::addSequence()
{
    Sequence s;
    s.live = true;
    seqs_.push_back(std::move(s));
    return static_cast<std::int64_t>(seqs_.size()) - 1;
}

std::int64_t
PagedKvCache::addSequenceWithPrefix(std::int64_t src,
                                    std::int64_t prefix_len)
{
    const Sequence& donor = seqRef(src);
    CPULLM_ASSERT(prefix_len >= 0 && prefix_len <= donor.length,
                  "prefix length ", prefix_len,
                  " beyond donor length ", donor.length);
    const std::int64_t nblocks =
        (prefix_len + block_size_ - 1) / block_size_;
    Sequence s;
    s.live = true;
    s.length = prefix_len;
    s.blockTable.reserve(static_cast<std::size_t>(nblocks));
    for (std::int64_t i = 0; i < nblocks; ++i) {
        const std::int64_t block =
            donor.blockTable[static_cast<std::size_t>(i)];
        ++refcount_[static_cast<std::size_t>(block)];
        s.blockTable.push_back(block);
    }
    stats_.prefixSharedBlocks += nblocks;
    seqs_.push_back(std::move(s));
    return static_cast<std::int64_t>(seqs_.size()) - 1;
}

const PagedKvCache::Sequence&
PagedKvCache::seqRef(std::int64_t seq) const
{
    CPULLM_ASSERT(seq >= 0 &&
                      seq < static_cast<std::int64_t>(seqs_.size()),
                  "sequence id out of range");
    const Sequence& s = seqs_[static_cast<std::size_t>(seq)];
    CPULLM_ASSERT(s.live, "sequence ", seq, " was released");
    return s;
}

std::int64_t
PagedKvCache::seqLen(std::int64_t seq) const
{
    return seqRef(seq).length;
}

bool
PagedKvCache::canAppend(std::int64_t seq) const
{
    const Sequence& s = seqRef(seq);
    if (s.length % block_size_ != 0) {
        // Room in the tail block — but a shared tail still needs a
        // fresh block for the copy-on-write clone.
        const std::int64_t tail = s.blockTable.back();
        if (refcount_[static_cast<std::size_t>(tail)] > 1)
            return !free_.empty();
        return true;
    }
    return !free_.empty();
}

void
PagedKvCache::releaseSequence(std::int64_t seq)
{
    Sequence& s = seqs_[static_cast<std::size_t>(seq)];
    CPULLM_ASSERT(seq >= 0 &&
                      seq < static_cast<std::int64_t>(seqs_.size()) &&
                      s.live,
                  "releasing an invalid sequence");
    for (std::int64_t b : s.blockTable)
        unrefBlock(b);
    s.blockTable.clear();
    s.length = 0;
    s.live = false;
}

void
PagedKvCache::reset()
{
    for (auto& s : seqs_) {
        if (!s.live)
            continue;
        for (std::int64_t b : s.blockTable)
            unrefBlock(b);
        s.blockTable.clear();
        s.length = 0;
        s.live = false;
    }
    seqs_.clear();
    CPULLM_ASSERT(static_cast<std::int64_t>(free_.size()) ==
                      num_blocks_,
                  "pool leak across reset");
}

std::int64_t
PagedKvCache::elemOffset(std::int64_t block, std::int64_t layer,
                         std::int64_t slot) const
{
    return ((block * layers_ + layer) * block_size_ + slot) * d_kv_;
}

bool
PagedKvCache::appendToken(std::int64_t seq, const float* k,
                          const float* v)
{
    const std::int64_t pos = reserve(seq, 1);
    if (pos < 0)
        return false;
    for (std::int64_t l = 0; l < layers_; ++l)
        writeToken(seq, l, pos, k + l * d_kv_, v + l * d_kv_);
    commit(seq, 1);
    return true;
}

std::int64_t
PagedKvCache::reserve(std::int64_t seq, std::int64_t count)
{
    CPULLM_ASSERT(count > 0, "reserve of ", count, " tokens");
    seqRef(seq); // liveness check
    Sequence& s = seqs_[static_cast<std::size_t>(seq)];
    const std::int64_t end = s.length + count;
    const std::int64_t need_new =
        std::max<std::int64_t>(0, (end + block_size_ - 1) /
                                          block_size_ -
                                      static_cast<std::int64_t>(
                                          s.blockTable.size()));
    // The first write lands at position length; if that slot sits in
    // an existing shared block (a partial prefix tail), it must be
    // cloned before any write, costing one extra block.
    const bool tail_shared =
        s.length % block_size_ != 0 &&
        refcount_[static_cast<std::size_t>(
            s.blockTable[static_cast<std::size_t>(s.length /
                                                  block_size_)])] > 1;
    const std::int64_t need = need_new + (tail_shared ? 1 : 0);
    if (static_cast<std::int64_t>(free_.size()) < need)
        return -1; // admission failure, nothing changed
    if (tail_shared) {
        const bool ok = cowBlock(
            s, static_cast<std::size_t>(s.length / block_size_));
        CPULLM_ASSERT(ok, "CoW failed after availability check");
    }
    for (std::int64_t i = 0; i < need_new; ++i)
        s.blockTable.push_back(allocBlock());
    return s.length;
}

void
PagedKvCache::writeToken(std::int64_t seq, std::int64_t layer,
                         std::int64_t pos, const float* k,
                         const float* v)
{
    const Sequence& s = seqRef(seq);
    CPULLM_ASSERT(layer >= 0 && layer < layers_, "layer out of range");
    CPULLM_ASSERT(pos >= s.length &&
                      pos < static_cast<std::int64_t>(
                                s.blockTable.size()) *
                                block_size_,
                  "write at ", pos, " outside reserved range [",
                  s.length, ", ",
                  static_cast<std::int64_t>(s.blockTable.size()) *
                      block_size_,
                  ")");
    const std::int64_t block =
        s.blockTable[static_cast<std::size_t>(pos / block_size_)];
    CPULLM_ASSERT(refcount_[static_cast<std::size_t>(block)] == 1,
                  "write into shared block ", block);
    const std::int64_t base =
        elemOffset(block, layer, pos % block_size_);
    for (std::int64_t i = 0; i < d_kv_; ++i) {
        k_pool_.setAt(base + i, k[i]);
        v_pool_.setAt(base + i, v[i]);
    }
}

void
PagedKvCache::commit(std::int64_t seq, std::int64_t count)
{
    seqRef(seq); // liveness check
    Sequence& s = seqs_[static_cast<std::size_t>(seq)];
    const std::int64_t end = s.length + count;
    CPULLM_ASSERT(count >= 0 &&
                      end <= static_cast<std::int64_t>(
                                 s.blockTable.size()) *
                                 block_size_,
                  "commit beyond reserved capacity");
    s.length = end;
}

void
PagedKvCache::readK(std::int64_t seq, std::int64_t layer,
                    std::int64_t pos, float* out) const
{
    const Sequence& s = seqRef(seq);
    CPULLM_ASSERT(layer >= 0 && layer < layers_, "layer out of range");
    CPULLM_ASSERT(pos >= 0 && pos < s.length, "position ", pos,
                  " beyond sequence length ", s.length);
    const std::int64_t block =
        s.blockTable[static_cast<std::size_t>(pos / block_size_)];
    const std::int64_t base =
        elemOffset(block, layer, pos % block_size_);
    for (std::int64_t i = 0; i < d_kv_; ++i)
        out[i] = k_pool_.at(base + i);
}

void
PagedKvCache::readV(std::int64_t seq, std::int64_t layer,
                    std::int64_t pos, float* out) const
{
    const Sequence& s = seqRef(seq);
    CPULLM_ASSERT(layer >= 0 && layer < layers_, "layer out of range");
    CPULLM_ASSERT(pos >= 0 && pos < s.length, "position ", pos,
                  " beyond sequence length ", s.length);
    const std::int64_t block =
        s.blockTable[static_cast<std::size_t>(pos / block_size_)];
    const std::int64_t base =
        elemOffset(block, layer, pos % block_size_);
    for (std::int64_t i = 0; i < d_kv_; ++i)
        out[i] = v_pool_.at(base + i);
}

std::vector<KvSpan>
PagedKvCache::spans(const Tensor& pool, std::int64_t seq,
                    std::int64_t layer, std::int64_t len) const
{
    const Sequence& s = seqRef(seq);
    CPULLM_ASSERT(layer >= 0 && layer < layers_, "layer out of range");
    if (len < 0)
        len = s.length;
    CPULLM_ASSERT(len <= static_cast<std::int64_t>(
                             s.blockTable.size()) *
                             block_size_,
                  "span length ", len, " beyond reserved capacity");
    std::vector<KvSpan> out;
    out.reserve(s.blockTable.size());
    const auto* base = static_cast<const std::uint8_t*>(pool.raw());
    std::int64_t remaining = len;
    for (const std::int64_t block : s.blockTable) {
        if (remaining <= 0)
            break;
        KvSpan sp;
        sp.data = base + static_cast<std::uint64_t>(
                             elemOffset(block, layer, 0)) *
                             dtypeSize(dtype_);
        sp.dtype = dtype_;
        sp.len = std::min(remaining, block_size_);
        sp.rowElems = d_kv_;
        sp.stride = d_kv_;
        out.push_back(sp);
        remaining -= sp.len;
    }
    return out;
}

std::vector<KvSpan>
PagedKvCache::kSpans(std::int64_t seq, std::int64_t layer,
                     std::int64_t len) const
{
    return spans(k_pool_, seq, layer, len);
}

std::vector<KvSpan>
PagedKvCache::vSpans(std::int64_t seq, std::int64_t layer,
                     std::int64_t len) const
{
    return spans(v_pool_, seq, layer, len);
}

std::uint64_t
PagedKvCache::blockBytes() const
{
    return 2ULL * static_cast<std::uint64_t>(layers_) *
           static_cast<std::uint64_t>(block_size_) *
           static_cast<std::uint64_t>(d_kv_) * dtypeSize(dtype_);
}

std::uint64_t
PagedKvCache::poolBytes() const
{
    return blockBytes() * static_cast<std::uint64_t>(num_blocks_);
}

std::uint64_t
PagedKvCache::allocatedBytes() const
{
    std::uint64_t blocks = 0;
    for (const auto& s : seqs_)
        if (s.live)
            blocks += s.blockTable.size();
    return blocks * blockBytes();
}

std::uint64_t
PagedKvCache::usedBytes() const
{
    std::uint64_t tokens = 0;
    for (const auto& s : seqs_)
        if (s.live)
            tokens += static_cast<std::uint64_t>(s.length);
    return tokens * 2ULL * static_cast<std::uint64_t>(layers_) *
           static_cast<std::uint64_t>(d_kv_) * dtypeSize(dtype_);
}

double
PagedKvCache::fragmentation() const
{
    const std::uint64_t alloc = allocatedBytes();
    if (alloc == 0)
        return 0.0;
    return 1.0 - static_cast<double>(usedBytes()) /
                     static_cast<double>(alloc);
}

} // namespace kv
} // namespace cpullm
