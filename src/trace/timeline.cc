#include "trace/timeline.h"

#include <algorithm>
#include <fstream>

#include "util/json.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace cpullm {
namespace trace {

void
Timeline::add(TraceEvent event)
{
    if (!events_.empty()) {
        CPULLM_ASSERT(event.startTime >= events_.back().startTime,
                      "events must be added in start order");
    }
    events_.push_back(std::move(event));
}

double
Timeline::makespan() const
{
    double end = 0.0;
    for (const auto& e : events_)
        end = std::max(end, e.startTime + e.duration);
    return end;
}

double
Timeline::categoryTime(const std::string& category) const
{
    double t = 0.0;
    for (const auto& e : events_)
        if (e.category == category)
            t += e.duration;
    return t;
}

double
Timeline::categoryFraction(const std::string& category) const
{
    const double span = makespan();
    return span > 0.0 ? categoryTime(category) / span : 0.0;
}

std::vector<TraceEvent>
Timeline::topEvents(std::size_t n) const
{
    std::vector<TraceEvent> sorted = events_;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                         return a.duration > b.duration;
                     });
    if (sorted.size() > n)
        sorted.resize(n);
    return sorted;
}

void
Timeline::writeChromeTrace(std::ostream& os) const
{
    os << "{\"traceEvents\":[";
    // Process/thread metadata so Perfetto shows names instead of
    // bare pid/tid numbers.
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
          "\"args\":{\"name\":\"cpullm\"}},"
          "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
          "\"tid\":1,\"args\":{\"name\":\"operators\"}}";
    for (const auto& e : events_) {
        os << ',';
        os << strformat(
            "{\"name\":%s,\"cat\":%s,\"ph\":\"X\","
            "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":1,"
            "\"args\":{\"bound_by\":%s,\"gflops\":%.3f,"
            "\"mbytes\":%.3f}}",
            jsonQuote(e.name).c_str(), jsonQuote(e.category).c_str(),
            e.startTime * 1e6, e.duration * 1e6,
            jsonQuote(e.boundBy).c_str(), e.flops / 1e9,
            static_cast<double>(e.bytes) / 1e6);
    }
    os << "]}";
}

bool
Timeline::writeChromeTraceFile(const std::string& path) const
{
    std::ofstream ofs(path);
    if (!ofs) {
        warn("could not open '", path, "' for writing");
        return false;
    }
    writeChromeTrace(ofs);
    return static_cast<bool>(ofs);
}

std::string
opKindCategory(perf::OpKind kind)
{
    switch (kind) {
      case perf::OpKind::Gemm:
        return "gemm";
      case perf::OpKind::Attention:
        return "attention";
      case perf::OpKind::Elementwise:
        return "elementwise";
      case perf::OpKind::Embedding:
        return "embedding";
    }
    CPULLM_PANIC("unhandled OpKind");
}

namespace {

double
appendPhase(Timeline& tl, const perf::CpuPerfModel& model,
            const model::ModelSpec& spec, perf::Phase phase,
            const perf::Workload& workload, std::int64_t ctx_len,
            double t0, const std::string& prefix)
{
    const auto ops =
        perf::buildPhaseOps(spec, phase, workload, ctx_len);
    const auto costs =
        model.costPhaseOps(spec, phase, workload, ctx_len);
    CPULLM_ASSERT(ops.size() == costs.size(),
                  "op/cost arity mismatch");
    double t = t0;
    for (std::size_t i = 0; i < ops.size(); ++i) {
        TraceEvent e;
        e.name = prefix + ops[i].name;
        e.category = opKindCategory(ops[i].kind);
        e.startTime = t;
        e.duration = costs[i].total;
        e.boundBy = costs[i].memoryBound ? "memory" : "compute";
        e.flops = ops[i].flops;
        e.bytes = ops[i].weightBytes + ops[i].kvBytes +
                  ops[i].actBytes;
        tl.add(std::move(e));
        t += costs[i].total;
    }
    return t;
}

} // namespace

Timeline
tracePhase(const perf::CpuPerfModel& model, const model::ModelSpec& spec,
           perf::Phase phase, const perf::Workload& workload,
           std::int64_t ctx_len)
{
    Timeline tl;
    appendPhase(tl, model, spec, phase, workload, ctx_len, 0.0, "");
    return tl;
}

Timeline
traceRun(const perf::CpuPerfModel& model, const model::ModelSpec& spec,
         const perf::Workload& workload)
{
    Timeline tl;
    double t = appendPhase(tl, model, spec, perf::Phase::Prefill,
                           workload, workload.promptLen, 0.0,
                           "prefill.");
    for (std::int64_t s = 0; s < workload.genLen - 1; ++s) {
        const std::string prefix =
            strformat("decode%lld.", static_cast<long long>(s));
        t = appendPhase(tl, model, spec, perf::Phase::Decode, workload,
                        workload.promptLen + s + 1, t, prefix);
    }
    return tl;
}

} // namespace trace
} // namespace cpullm
