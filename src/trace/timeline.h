#ifndef CPULLM_TRACE_TIMELINE_H
#define CPULLM_TRACE_TIMELINE_H

/**
 * @file
 * Operator-level execution timelines. The timing model produces one
 * event per operator with its cost decomposition; the timeline can be
 * inspected programmatically, summarized per operator class, or
 * exported as Chrome-trace JSON (chrome://tracing, Perfetto).
 */

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "hw/platform.h"
#include "model/spec.h"
#include "perf/cpu_model.h"
#include "perf/ops.h"
#include "perf/workload.h"

namespace cpullm {
namespace trace {

/** One traced operator execution. */
struct TraceEvent
{
    std::string name;       ///< operator name ("layer3.ffn_up")
    std::string category;   ///< "gemm" / "attention" / ...
    double startTime = 0.0; ///< seconds from run start
    double duration = 0.0;  ///< seconds
    /** Which resource bound this op: "compute" or "memory". */
    std::string boundBy;
    double flops = 0.0;
    std::uint64_t bytes = 0;
};

/** A recorded timeline of one simulated phase or run. */
class Timeline
{
  public:
    /** Append an event; events must be added in start order. */
    void add(TraceEvent event);

    const std::vector<TraceEvent>& events() const { return events_; }
    bool empty() const { return events_.empty(); }

    /** End time of the last event (run makespan), seconds. */
    double makespan() const;

    /** Total duration attributed to a category. */
    double categoryTime(const std::string& category) const;

    /** Fraction of makespan the given category occupies. */
    double categoryFraction(const std::string& category) const;

    /** The @p n longest events, longest first. */
    std::vector<TraceEvent> topEvents(std::size_t n) const;

    /**
     * Write Chrome-trace JSON ("traceEvents" array of complete "X"
     * events, microsecond timestamps).
     */
    void writeChromeTrace(std::ostream& os) const;

    /** Write to a file path; false on I/O failure. */
    bool writeChromeTraceFile(const std::string& path) const;

  private:
    std::vector<TraceEvent> events_;
};

/** Human-readable operator-kind category. */
std::string opKindCategory(perf::OpKind kind);

/**
 * Record the operator timeline of one phase step on a CPU platform:
 * each operator gets its modeled duration laid out back to back, the
 * way the (serial inter-op) inference loop executes them.
 */
Timeline tracePhase(const perf::CpuPerfModel& model,
                    const model::ModelSpec& spec, perf::Phase phase,
                    const perf::Workload& workload,
                    std::int64_t ctx_len);

/**
 * Record a whole request: prefill plus every decode step, decode
 * steps labeled by token index.
 */
Timeline traceRun(const perf::CpuPerfModel& model,
                  const model::ModelSpec& spec,
                  const perf::Workload& workload);

} // namespace trace
} // namespace cpullm

#endif // CPULLM_TRACE_TIMELINE_H
