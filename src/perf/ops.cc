#include "perf/ops.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace cpullm {
namespace perf {

OpTotals
sumOps(const std::vector<OpDesc>& ops)
{
    OpTotals t;
    for (const auto& op : ops) {
        t.flops += op.flops;
        t.weightBytes += op.weightBytes;
        t.kvBytes += op.kvBytes;
        t.actBytes += op.actBytes;
    }
    t.count = ops.size();
    return t;
}

namespace {

/** Weight GEMM over t tokens: y[t,n] = x[t,k] * W[k,n]. Weight width
 * is passed in bits so sub-byte dtypes (INT4) account honestly. */
OpDesc
weightGemm(const std::string& name, std::int64_t tokens, std::int64_t k,
           std::int64_t n, std::size_t wbits, std::size_t abytes)
{
    OpDesc op;
    op.name = name;
    op.kind = OpKind::Gemm;
    op.m = tokens;
    op.k = k;
    op.n = n;
    op.flops = 2.0 * static_cast<double>(tokens) *
               static_cast<double>(k) * static_cast<double>(n);
    op.weightBytes = static_cast<std::uint64_t>(k) *
                     static_cast<std::uint64_t>(n) * wbits / 8;
    op.actBytes = static_cast<std::uint64_t>(tokens) *
                  (static_cast<std::uint64_t>(k) +
                   static_cast<std::uint64_t>(n)) *
                  abytes;
    return op;
}

} // namespace

std::vector<OpDesc>
buildPhaseOps(const model::ModelSpec& spec, Phase phase, const Workload& w,
              std::int64_t ctx_len)
{
    CPULLM_ASSERT(ctx_len >= 1, "context length must be >= 1");
    const std::int64_t B = w.batch;
    const std::int64_t t = phase == Phase::Prefill ? w.promptLen : 1;
    const std::int64_t tokens = B * t; // tokens processed this step
    const std::int64_t d = spec.dModel;
    const std::int64_t dkv = spec.dKv();
    const std::int64_t ff = spec.dFf;
    // Weight-only quantization can give weights a narrower dtype
    // than activations/KV; activations stay 16-bit.
    const std::size_t we = dtypeBits(w.dtype);
    const std::size_t kve = dtypeSize(w.kvDtype);
    const std::size_t e = 2;

    std::vector<OpDesc> ops;
    ops.reserve(static_cast<std::size_t>(spec.numLayers) * 12 + 3);

    // Embedding gather (token + positional).
    {
        OpDesc op;
        op.name = "embedding";
        op.kind = OpKind::Embedding;
        op.actBytes = static_cast<std::uint64_t>(tokens) *
                      static_cast<std::uint64_t>(d) * e * 2;
        op.flops = static_cast<double>(tokens) * static_cast<double>(d);
        ops.push_back(op);
    }

    for (std::int64_t l = 0; l < spec.numLayers; ++l) {
        const std::string p = strformat("layer%lld.",
                                        static_cast<long long>(l));
        // Pre-attention norm (+ residual add folded in).
        {
            OpDesc op;
            op.name = p + "attn_norm";
            op.kind = OpKind::Elementwise;
            op.flops = 6.0 * static_cast<double>(tokens * d);
            op.actBytes = static_cast<std::uint64_t>(tokens * d) * e * 3;
            ops.push_back(op);
        }
        ops.push_back(weightGemm(p + "q_proj", tokens, d, d, we, e));
        ops.push_back(weightGemm(p + "k_proj", tokens, d, dkv, we, e));
        ops.push_back(weightGemm(p + "v_proj", tokens, d, dkv, we, e));

        // Attention against the KV cache. For prefill the causal mask
        // halves the score volume; KV traffic covers writing the new
        // entries and reading the visible span once per step.
        {
            OpDesc op;
            op.name = p + "attention";
            op.kind = OpKind::Attention;
            const double span =
                phase == Phase::Prefill
                    ? static_cast<double>(ctx_len + 1) / 2.0
                    : static_cast<double>(ctx_len);
            op.m = tokens;
            op.n = ctx_len;
            op.k = spec.headDim();
            // Scores + context accumulation, all heads.
            op.flops = 4.0 * static_cast<double>(tokens) *
                       static_cast<double>(spec.numHeads) *
                       static_cast<double>(spec.headDim()) * span;
            const auto kv_write = static_cast<std::uint64_t>(tokens) *
                                  static_cast<std::uint64_t>(dkv) *
                                  kve * 2;
            const auto kv_read =
                phase == Phase::Prefill
                    // Quadratic reuse hits cache; DRAM sees ~one pass.
                    ? static_cast<std::uint64_t>(tokens) *
                          static_cast<std::uint64_t>(dkv) * kve * 2
                    : static_cast<std::uint64_t>(B) *
                          static_cast<std::uint64_t>(ctx_len) *
                          static_cast<std::uint64_t>(dkv) * kve * 2;
            op.kvBytes = kv_write + kv_read;
            op.actBytes = static_cast<std::uint64_t>(
                              static_cast<double>(tokens) *
                              static_cast<double>(spec.numHeads) * span) *
                          4 /* fp32 scores */;
            ops.push_back(op);
        }
        {
            OpDesc op;
            op.name = p + "softmax";
            op.kind = OpKind::Elementwise;
            const double span =
                phase == Phase::Prefill
                    ? static_cast<double>(ctx_len + 1) / 2.0
                    : static_cast<double>(ctx_len);
            const double elems = static_cast<double>(tokens) *
                                 static_cast<double>(spec.numHeads) *
                                 span;
            op.flops = 5.0 * elems;
            op.actBytes = static_cast<std::uint64_t>(elems) * 4 * 2;
            ops.push_back(op);
        }
        ops.push_back(weightGemm(p + "out_proj", tokens, d, d, we, e));
        {
            OpDesc op;
            op.name = p + "ffn_norm";
            op.kind = OpKind::Elementwise;
            op.flops = 6.0 * static_cast<double>(tokens * d);
            op.actBytes = static_cast<std::uint64_t>(tokens * d) * e * 3;
            ops.push_back(op);
        }
        if (spec.gatedFfn) {
            ops.push_back(
                weightGemm(p + "ffn_gate", tokens, d, ff, we, e));
        }
        ops.push_back(weightGemm(p + "ffn_up", tokens, d, ff, we, e));
        {
            OpDesc op;
            op.name = p + "ffn_act";
            op.kind = OpKind::Elementwise;
            op.flops = 8.0 * static_cast<double>(tokens * ff);
            op.actBytes = static_cast<std::uint64_t>(tokens * ff) * e * 2;
            ops.push_back(op);
        }
        ops.push_back(weightGemm(p + "ffn_down", tokens, ff, d, we, e));
    }

    // Final norm + LM head. Prefill only needs logits for the last
    // position of each sequence.
    {
        OpDesc op;
        op.name = "final_norm";
        op.kind = OpKind::Elementwise;
        op.flops = 6.0 * static_cast<double>(tokens * d);
        op.actBytes = static_cast<std::uint64_t>(tokens * d) * e * 2;
        ops.push_back(op);
    }
    ops.push_back(weightGemm("lm_head", B, d, spec.vocabSize, we, e));

    return ops;
}

} // namespace perf
} // namespace cpullm
