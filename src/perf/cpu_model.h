#ifndef CPULLM_PERF_CPU_MODEL_H
#define CPULLM_PERF_CPU_MODEL_H

/**
 * @file
 * The analytical CPU timing model (DESIGN.md Section 4). Per
 * operator: compute time from the engine peak and a dimension-
 * dependent efficiency, memory time from the memory-system model's
 * effective bandwidths, op time = max(compute, memory) + dispatch
 * overhead. Phase time sums operators; cross-socket runs add UPI
 * exchange time and lose parallel efficiency.
 */

#include <vector>

#include "hw/platform.h"
#include "mem/memory_system.h"
#include "model/spec.h"
#include "perf/ops.h"
#include "perf/timing.h"
#include "perf/workload.h"

namespace cpullm {
namespace perf {

/**
 * Calibration constants of the CPU model. Defaults reproduce the
 * paper's trend bands; tests pin the bands, not the constants.
 */
struct CpuCalibration
{
    /** Macro-kernel efficiency ceiling of an AMX GEMM. */
    double amxBaseEfficiency = 0.80;
    /** Size at which the AMX blocking ramp reaches half efficiency. */
    double amxRampHalfSize = 384.0;
    /** Macro-kernel efficiency ceiling of an AVX-512 GEMM. */
    double avx512BaseEfficiency = 0.85;
    double avx512RampHalfSize = 48.0;

    /** Kernel dispatch + barrier cost per operator, seconds. */
    double opOverheadBase = 10e-6;
    double opOverheadPerCore = 0.25e-6;
    /** Extra per-op cost when threads span sockets. */
    double crossSocketOpOverhead = 30e-6;

    /** Parallel efficiency of GEMMs spanning two sockets. */
    double crossSocketComputeEfficiency = 0.50;
    /** Fraction of memory traffic crossing UPI when spanning sockets
     *  with NUMA-oblivious allocation. */
    double crossSocketRemoteFraction = 0.25;
    /** Same, under hot/cold-aware placement (Section VI proposal). */
    double crossSocketRemoteFractionAware = 0.08;

    /** NUMA data-placement policy the software layer applies. */
    mem::PlacementPolicy placementPolicy =
        mem::PlacementPolicy::Oblivious;

    /** Activation bandwidth per core (cache-resident traffic). */
    double actBandwidthPerCore = 30.0e9;

    /** Modeled FLOPs retired per dynamic instruction. */
    double amxFlopsPerInstr = 1500.0;
    double avx512FlopsPerInstr = 90.0;
};

/** Analytical performance model of LLM inference on one platform. */
class CpuPerfModel
{
  public:
    explicit CpuPerfModel(const hw::PlatformConfig& platform,
                          CpuCalibration calibration = {});

    const hw::PlatformConfig& platform() const { return platform_; }
    const CpuCalibration& calibration() const { return cal_; }
    const mem::MemorySystem& memorySystem() const { return memsys_; }

    /**
     * Simulate one full request: prefill then genLen-1 decode steps.
     * fatal() if the model does not fit in the machine's memory.
     */
    InferenceTiming run(const model::ModelSpec& spec,
                        const Workload& w) const;

    /** Time one phase step (exposed for tests and ablations). */
    PhaseBreakdown timePhase(const model::ModelSpec& spec, Phase phase,
                             const Workload& w,
                             std::int64_t ctx_len) const;

    /** Cost decomposition of one operator. */
    struct OpCost
    {
        double compute = 0.0;  ///< engine-bound time
        double memory = 0.0;   ///< memory-bound time
        double overhead = 0.0; ///< dispatch/barrier cost
        double total = 0.0;    ///< max(compute, memory) + overhead
        bool memoryBound = false;
    };

    /**
     * Per-operator costs for one phase step, parallel to
     * buildPhaseOps(spec, phase, w, ctx_len). This is the data the
     * trace::Timeline visualizer consumes.
     */
    std::vector<OpCost> costPhaseOps(const model::ModelSpec& spec,
                                     Phase phase, const Workload& w,
                                     std::int64_t ctx_len) const;

    /**
     * The solved resource envelope of a run: the peaks and effective
     * bandwidths every operator cost is computed against. This is the
     * roofline the attribution layer compares achieved rates to.
     */
    struct PhaseResources
    {
        double peakFlops = 0.0;   ///< matrix-engine peak, FLOP/s
        double weightBw = 0.0;    ///< weight-stream bandwidth, B/s
        double kvBw = 0.0;        ///< KV-cache bandwidth, B/s
        double actBw = 0.0;       ///< activation bandwidth, B/s
        double opOverhead = 0.0;  ///< dispatch cost per operator, s
    };

    PhaseResources phaseResources(const model::ModelSpec& spec,
                                  const Workload& w) const;

    /**
     * Achieved GEMM throughput (FLOP/s) for an isolated C=A*B of the
     * given dimensions, including streaming the operands (Fig 1).
     */
    double gemmThroughput(std::int64_t m, std::int64_t n,
                          std::int64_t k, DType dtype) const;

    /**
     * Peak matrix FLOP/s (or INT8 OP/s) available to coresUsed on
     * this platform for GEMMs in @p dtype. INT8 runs at twice the
     * BF16 rate on AMX/VNNI (weight-only quantization extension).
     */
    double peakFlops(DType dtype = DType::BF16) const;

    /** Dimension-dependent GEMM efficiency on this platform. */
    double gemmEfficiency(std::int64_t m, std::int64_t n,
                          std::int64_t k) const;

  private:
    /** Solved per-phase bandwidths and peaks. */
    struct PhaseContext
    {
        double weightBw = 0.0;
        double kvBw = 0.0;
        double actBw = 0.0;
        double peak = 0.0;
        double avxPeak = 0.0;
        double ewPeak = 0.0;
        double overhead = 0.0;
        double upiAgg = 0.0;
        double remoteFrac = 0.0;
    };

    PhaseContext makePhaseContext(const model::ModelSpec& spec,
                                  const Workload& w) const;

    OpCost costOp(const OpDesc& op, const PhaseContext& ctx) const;

    mem::RegionSizes regionSizes(const model::ModelSpec& spec,
                                 const Workload& w) const;

    double opOverhead() const;

    hw::PlatformConfig platform_;
    CpuCalibration cal_;
    mem::MemorySystem memsys_;
};

} // namespace perf
} // namespace cpullm

#endif // CPULLM_PERF_CPU_MODEL_H
