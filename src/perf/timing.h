#ifndef CPULLM_PERF_TIMING_H
#define CPULLM_PERF_TIMING_H

/**
 * @file
 * Timing and counter result types shared by the CPU and GPU models.
 * Times are seconds; throughputs are tokens/second.
 */

#include <cstdint>

namespace cpullm {
namespace perf {

/** Modeled hardware performance counters for one phase or run. */
struct Counters
{
    double instructions = 0.0;
    double llcMisses = 0.0;
    double llcAccesses = 0.0;
    double loads = 0.0;
    double stores = 0.0;
    /** LLC accesses served by a remote sub-NUMA cluster. */
    double remoteLlcAccesses = 0.0;
    /** Bytes moved over the socket interconnect. */
    double upiBytes = 0.0;
    /** Effective core busy fraction, 0-1. */
    double coreUtilization = 0.0;
    /** UPI bandwidth utilization, 0-1. */
    double upiUtilization = 0.0;

    /** LLC misses per kilo-instruction. */
    double
    mpki() const
    {
        return instructions > 0.0 ? llcMisses / (instructions / 1000.0)
                                  : 0.0;
    }

    Counters& operator+=(const Counters& o);
};

/** Time decomposition of one phase step. */
struct PhaseBreakdown
{
    double computeTime = 0.0;  ///< visible compute-bound time
    double memoryTime = 0.0;   ///< visible memory-bound time
    double overheadTime = 0.0; ///< kernel dispatch / sync overhead
    double upiTime = 0.0;      ///< cross-socket activation exchange
    double totalTime = 0.0;
    Counters counters;
};

/** Full-request timing (the paper's metrics, Section II-C). */
struct InferenceTiming
{
    PhaseBreakdown prefill;
    /** Averaged per-step decode breakdown. */
    PhaseBreakdown decodeStep;

    double ttft = 0.0;       ///< time to first token (prefill)
    double tpot = 0.0;       ///< mean time per output token (decode)
    double decodeTime = 0.0; ///< all decode steps
    double e2eLatency = 0.0; ///< ttft + decodeTime

    /** tokens/s over the whole request (paper's system throughput). */
    double totalThroughput = 0.0;
    /** prompt tokens processed per second during prefill. */
    double prefillThroughput = 0.0;
    /** generated tokens per second during decode. */
    double decodeThroughput = 0.0;
};

} // namespace perf
} // namespace cpullm

#endif // CPULLM_PERF_TIMING_H
