#include "perf/cpu_model.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace cpullm {
namespace perf {

namespace {

/** Fraction of a 16-wide tile dimension actually used. */
double
tileUtil(std::int64_t x, std::int64_t tile)
{
    if (x <= 0)
        return 1.0;
    const std::int64_t tiles = (x + tile - 1) / tile;
    return static_cast<double>(x) / static_cast<double>(tiles * tile);
}

double
ramp(double size, double half)
{
    return size / (size + half);
}

} // namespace

Counters&
Counters::operator+=(const Counters& o)
{
    instructions += o.instructions;
    llcMisses += o.llcMisses;
    llcAccesses += o.llcAccesses;
    loads += o.loads;
    stores += o.stores;
    remoteLlcAccesses += o.remoteLlcAccesses;
    upiBytes += o.upiBytes;
    // Utilizations are time-weighted by the callers; adding here keeps
    // plain sums out of them.
    return *this;
}

CpuPerfModel::CpuPerfModel(const hw::PlatformConfig& platform,
                           CpuCalibration calibration)
    : platform_(platform), cal_(calibration),
      memsys_(platform, calibration.placementPolicy)
{
}

double
CpuPerfModel::peakFlops(DType dtype) const
{
    const hw::CpuConfig& cpu = platform_.cpu;
    const double per_socket = cpu.compute.bestFlopsPerSocket(dtype);
    const int cps = cpu.coresPerSocket;
    const int cores = platform_.coresUsed;
    if (cores <= cps) {
        return per_socket * static_cast<double>(cores) /
               static_cast<double>(cps);
    }
    // Beyond one socket, GEMM scaling collapses: OpenMP barriers and
    // coherence over UPI (Key Finding #3).
    const double full = per_socket +
                        per_socket * static_cast<double>(cores - cps) /
                            static_cast<double>(cps);
    return full * cal_.crossSocketComputeEfficiency;
}

double
CpuPerfModel::gemmEfficiency(std::int64_t m, std::int64_t n,
                             std::int64_t k) const
{
    if (platform_.cpu.compute.hasAmx()) {
        return cal_.amxBaseEfficiency * tileUtil(m, 16) *
               tileUtil(n, 16) *
               ramp(static_cast<double>(std::min(n, k)),
                    cal_.amxRampHalfSize);
    }
    return cal_.avx512BaseEfficiency * tileUtil(n, 16) *
           ramp(static_cast<double>(std::min(n, k)),
                cal_.avx512RampHalfSize);
}

double
CpuPerfModel::opOverhead() const
{
    double o = cal_.opOverheadBase +
               cal_.opOverheadPerCore * platform_.coresUsed;
    if (platform_.spansSockets())
        o += cal_.crossSocketOpOverhead;
    return o;
}

mem::RegionSizes
CpuPerfModel::regionSizes(const model::ModelSpec& spec,
                          const Workload& w) const
{
    mem::RegionSizes sizes;
    sizes.weights = spec.weightBytes(w.dtype);
    sizes.kvCache = spec.kvCacheBytes(w.finalSeqLen(), w.batch,
                                     w.kvDtype);
    sizes.activations = spec.activationBytes(
        w.batch * w.promptLen, w.finalSeqLen(), DType::BF16);
    return sizes;
}

CpuPerfModel::PhaseContext
CpuPerfModel::makePhaseContext(const model::ModelSpec& spec,
                               const Workload& w) const
{
    PhaseContext ctx;
    const mem::RegionSizes sizes = regionSizes(spec, w);
    const mem::MemoryPlan plan = memsys_.plan(sizes);

    const int cores = platform_.coresUsed;
    ctx.weightBw =
        memsys_.regionBandwidth(plan, mem::Region::Weights, cores);
    ctx.kvBw =
        memsys_.regionBandwidth(plan, mem::Region::KvCache, cores);
    ctx.actBw = cal_.actBandwidthPerCore * cores;

    // NUMA-oblivious allocation across two sockets routes part of the
    // stream over UPI; hot/cold-aware placement shrinks that share.
    ctx.remoteFrac =
        cal_.placementPolicy == mem::PlacementPolicy::HotColdAware
            ? cal_.crossSocketRemoteFractionAware
            : cal_.crossSocketRemoteFraction;
    if (platform_.spansSockets()) {
        ctx.upiAgg = 2.0 * platform_.cpu.upi.effectiveBandwidth();
        auto derate = [&](double bw) {
            return 1.0 / ((1.0 - ctx.remoteFrac) / bw +
                          ctx.remoteFrac / ctx.upiAgg);
        };
        ctx.weightBw = derate(ctx.weightBw);
        ctx.kvBw = derate(ctx.kvBw);
    }

    ctx.peak = peakFlops(w.dtype);
    ctx.avxPeak =
        platform_.cpu.compute.avx512Bf16FlopsPerSocket *
        std::min<double>(1.0, static_cast<double>(cores) /
                                  platform_.cpu.coresPerSocket) *
        (platform_.spansSockets()
             ? 2.0 * cal_.crossSocketComputeEfficiency
             : 1.0);
    ctx.ewPeak = cores * platform_.cpu.coreFrequency * 16.0;
    ctx.overhead = opOverhead();
    return ctx;
}

CpuPerfModel::OpCost
CpuPerfModel::costOp(const OpDesc& op, const PhaseContext& ctx) const
{
    OpCost cost;
    switch (op.kind) {
      case OpKind::Gemm:
        cost.compute =
            op.flops / (ctx.peak * gemmEfficiency(op.m, op.n, op.k));
        break;
      case OpKind::Attention:
        // Attention kernels run on the vector units (the KV layout
        // defeats AMX tiling in practice).
        cost.compute = op.flops / (ctx.avxPeak * 0.5);
        break;
      case OpKind::Elementwise:
      case OpKind::Embedding:
        cost.compute = op.flops / ctx.ewPeak;
        break;
    }
    cost.memory = static_cast<double>(op.weightBytes) / ctx.weightBw +
                  static_cast<double>(op.kvBytes) / ctx.kvBw +
                  static_cast<double>(op.actBytes) / ctx.actBw;
    cost.overhead = ctx.overhead;
    cost.total = std::max(cost.compute, cost.memory) + cost.overhead;
    cost.memoryBound = cost.memory > cost.compute;
    return cost;
}

std::vector<CpuPerfModel::OpCost>
CpuPerfModel::costPhaseOps(const model::ModelSpec& spec, Phase phase,
                           const Workload& w,
                           std::int64_t ctx_len) const
{
    const PhaseContext ctx = makePhaseContext(spec, w);
    const std::vector<OpDesc> ops =
        buildPhaseOps(spec, phase, w, ctx_len);
    std::vector<OpCost> costs;
    costs.reserve(ops.size());
    for (const OpDesc& op : ops)
        costs.push_back(costOp(op, ctx));
    return costs;
}

CpuPerfModel::PhaseResources
CpuPerfModel::phaseResources(const model::ModelSpec& spec,
                             const Workload& w) const
{
    const PhaseContext ctx = makePhaseContext(spec, w);
    PhaseResources res;
    res.peakFlops = ctx.peak;
    res.weightBw = ctx.weightBw;
    res.kvBw = ctx.kvBw;
    res.actBw = ctx.actBw;
    res.opOverhead = ctx.overhead;
    return res;
}

PhaseBreakdown
CpuPerfModel::timePhase(const model::ModelSpec& spec, Phase phase,
                        const Workload& w, std::int64_t ctx_len) const
{
    const std::vector<OpDesc> ops = buildPhaseOps(spec, phase, w,
                                                  ctx_len);
    const PhaseContext pctx = makePhaseContext(spec, w);
    const double upi_agg = pctx.upiAgg;
    const double remote_frac = pctx.remoteFrac;
    const bool has_amx = platform_.cpu.compute.hasAmx();

    PhaseBreakdown out;
    Counters& cnt = out.counters;

    for (const OpDesc& op : ops) {
        const OpCost cost = costOp(op, pctx);
        out.computeTime += cost.compute;
        out.memoryTime += std::max(0.0, cost.memory - cost.compute);
        out.overheadTime += cost.overhead;
        out.totalTime += cost.total;

        // --- Counter estimation -------------------------------------
        const double mem_lines =
            static_cast<double>(op.weightBytes + op.kvBytes) / 64.0;
        const double act_lines = static_cast<double>(op.actBytes) / 64.0;
        const double flops_per_instr =
            op.kind == OpKind::Gemm
                ? (has_amx ? cal_.amxFlopsPerInstr
                           : cal_.avx512FlopsPerInstr)
                : 16.0;
        cnt.instructions += op.flops / flops_per_instr +
                            3.0 * (mem_lines + act_lines) + 5e3;
        cnt.loads += mem_lines + 0.7 * act_lines;
        cnt.stores += 0.3 * act_lines;
        cnt.llcAccesses += mem_lines + 0.5 * act_lines;
        cnt.llcMisses += mem_lines;
    }

    // Cross-socket activation exchange (allreduce-style), not
    // overlapped with compute.
    if (platform_.spansSockets()) {
        const OpTotals totals = sumOps(ops);
        const double upi_bytes =
            0.5 * static_cast<double>(totals.actBytes);
        out.upiTime = upi_bytes / upi_agg;
        out.totalTime += out.upiTime;
        cnt.upiBytes += upi_bytes +
                        remote_frac *
                            static_cast<double>(totals.weightBytes +
                                                totals.kvBytes);
        cnt.upiUtilization = std::min(
            1.0, cnt.upiBytes / (out.totalTime * upi_agg));
    }

    cnt.remoteLlcAccesses =
        cnt.llcAccesses * memsys_.remoteClusterFraction();
    cnt.coreUtilization =
        std::min(1.0, out.computeTime / std::max(1e-12, out.totalTime));
    return out;
}

InferenceTiming
CpuPerfModel::run(const model::ModelSpec& spec, const Workload& w) const
{
    CPULLM_ASSERT(w.batch >= 1 && w.promptLen >= 1 && w.genLen >= 1,
                  "degenerate workload");

    InferenceTiming t;
    t.prefill = timePhase(spec, Phase::Prefill, w, w.promptLen);
    t.ttft = t.prefill.totalTime;

    const std::int64_t steps = w.genLen - 1;
    PhaseBreakdown decode_sum;
    for (std::int64_t s = 0; s < steps; ++s) {
        const std::int64_t ctx = w.promptLen + s + 1;
        const PhaseBreakdown step =
            timePhase(spec, Phase::Decode, w, ctx);
        decode_sum.computeTime += step.computeTime;
        decode_sum.memoryTime += step.memoryTime;
        decode_sum.overheadTime += step.overheadTime;
        decode_sum.upiTime += step.upiTime;
        decode_sum.totalTime += step.totalTime;
        decode_sum.counters += step.counters;
    }
    t.decodeTime = decode_sum.totalTime;
    t.tpot = steps > 0 ? t.decodeTime / static_cast<double>(steps) : 0.0;

    // Average per-step view.
    t.decodeStep = decode_sum;
    if (steps > 0) {
        const auto inv = 1.0 / static_cast<double>(steps);
        t.decodeStep.computeTime *= inv;
        t.decodeStep.memoryTime *= inv;
        t.decodeStep.overheadTime *= inv;
        t.decodeStep.upiTime *= inv;
        t.decodeStep.totalTime *= inv;
    }
    t.decodeStep.counters.coreUtilization =
        std::min(1.0, decode_sum.computeTime /
                          std::max(1e-12, decode_sum.totalTime));
    if (platform_.spansSockets() && decode_sum.totalTime > 0.0) {
        const double upi_agg =
            2.0 * platform_.cpu.upi.effectiveBandwidth();
        t.decodeStep.counters.upiUtilization = std::min(
            1.0, decode_sum.counters.upiBytes /
                     (decode_sum.totalTime * upi_agg));
    }

    t.e2eLatency = t.ttft + t.decodeTime;
    t.totalThroughput =
        static_cast<double>(w.generatedTokens()) / t.e2eLatency;
    t.prefillThroughput =
        static_cast<double>(w.batch * w.promptLen) / t.ttft;
    t.decodeThroughput =
        steps > 0 ? static_cast<double>(w.batch * steps) / t.decodeTime
                  : 0.0;
    return t;
}

double
CpuPerfModel::gemmThroughput(std::int64_t m, std::int64_t n,
                             std::int64_t k, DType dtype) const
{
    const double flops = 2.0 * static_cast<double>(m) *
                         static_cast<double>(n) *
                         static_cast<double>(k);
    // The k*n operand is the streamed weight matrix; size it in bits
    // so sub-byte weight dtypes (INT4) see their bandwidth saving.
    // The m*k / m*n operands are activations, which never go below
    // one byte per element.
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(k) * n * dtypeBits(dtype) / 8 +
        (static_cast<std::uint64_t>(m) * k +
         static_cast<std::uint64_t>(m) * n) *
            dtypeSize(dtype);

    // Operands stream from the fastest local memory.
    mem::RegionSizes sizes;
    sizes.weights = bytes;
    const mem::MemoryPlan plan = memsys_.plan(sizes);
    const double bw = memsys_.regionBandwidth(
        plan, mem::Region::Weights, platform_.coresUsed);

    const double compute =
        flops / (peakFlops(dtype) * gemmEfficiency(m, n, k));
    const double memory = static_cast<double>(bytes) / bw;
    const double time = std::max(compute, memory) + opOverhead();
    return flops / time;
}

} // namespace perf
} // namespace cpullm
