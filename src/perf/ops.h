#ifndef CPULLM_PERF_OPS_H
#define CPULLM_PERF_OPS_H

/**
 * @file
 * Operator-level cost descriptors. Both the CPU and GPU timing models
 * consume the same operator graph, built from a ModelSpec and a
 * workload; the graph mirrors the functional TransformerModel
 * structure operator for operator.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "model/spec.h"
#include "perf/workload.h"

namespace cpullm {
namespace perf {

/** Coarse operator classes with distinct cost behaviour. */
enum class OpKind {
    Gemm,        ///< weight GEMM (projections, FFN, LM head)
    Attention,   ///< score + context GEMMs against the KV cache
    Elementwise, ///< norms, softmax, residual adds, activations
    Embedding,   ///< token + positional embedding gather
};

/** Cost descriptor for one operator (already scaled by batch). */
struct OpDesc
{
    std::string name;
    OpKind kind = OpKind::Gemm;

    /** GEMM-equivalent dimensions (m = tokens processed). */
    std::int64_t m = 0, n = 0, k = 0;

    double flops = 0.0;
    /** Streamed weight bytes (read once per phase step). */
    std::uint64_t weightBytes = 0;
    /** KV-cache bytes read from / written to memory. */
    std::uint64_t kvBytes = 0;
    /** Activation bytes (read + write), mostly cache-resident. */
    std::uint64_t actBytes = 0;
};

/** Totals over an operator list. */
struct OpTotals
{
    double flops = 0.0;
    std::uint64_t weightBytes = 0;
    std::uint64_t kvBytes = 0;
    std::uint64_t actBytes = 0;
    std::size_t count = 0;
};

OpTotals sumOps(const std::vector<OpDesc>& ops);

/**
 * Build the operator list for one phase step.
 *
 * For Prefill, the step processes all promptLen tokens of every
 * sequence (context grows 0 -> promptLen). For Decode, the step
 * processes one token per sequence against @p ctx_len cached tokens.
 *
 * @param ctx_len KV entries visible to attention in this step
 *                (prefill: promptLen; decode: current sequence length)
 */
std::vector<OpDesc> buildPhaseOps(const model::ModelSpec& spec,
                                  Phase phase, const Workload& w,
                                  std::int64_t ctx_len);

} // namespace perf
} // namespace cpullm

#endif // CPULLM_PERF_OPS_H
