#ifndef CPULLM_PERF_WORKLOAD_H
#define CPULLM_PERF_WORKLOAD_H

/**
 * @file
 * Inference workload description. The paper's default workload is
 * input length 128, output length 32, batch 1-32, BF16 weights and
 * activations (Section IV-A).
 */

#include <cstdint>

#include "numerics/dtype.h"

namespace cpullm {
namespace perf {

/** The two phases of autoregressive LLM inference. */
enum class Phase { Prefill, Decode };

/** One batched generation request. */
struct Workload
{
    std::int64_t batch = 1;
    std::int64_t promptLen = 128;
    std::int64_t genLen = 32;
    /** Weight storage dtype (paper: BF16; I8 = weight-only quant). */
    DType dtype = DType::BF16;
    /**
     * KV-cache dtype. Weight-only quantization (related work [48])
     * keeps activations and KV in BF16 while weights are INT8.
     */
    DType kvDtype = DType::BF16;

    /** Final context length after generation completes. */
    std::int64_t
    finalSeqLen() const
    {
        return promptLen + genLen;
    }

    /** Total generated tokens across the batch. */
    std::int64_t
    generatedTokens() const
    {
        return batch * genLen;
    }
};

/** The paper's default workload at a given batch size. */
inline Workload
paperWorkload(std::int64_t batch)
{
    Workload w;
    w.batch = batch;
    w.promptLen = 128;
    w.genLen = 32;
    return w;
}

} // namespace perf
} // namespace cpullm

#endif // CPULLM_PERF_WORKLOAD_H
