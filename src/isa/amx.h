#ifndef CPULLM_ISA_AMX_H
#define CPULLM_ISA_AMX_H

/**
 * @file
 * Functional model of Intel Advanced Matrix Extensions (AMX) as
 * introduced on Sapphire Rapids: a tile configuration register, eight
 * 1 KiB two-dimensional tile registers (TMM0-TMM7, 16 rows x 64 bytes),
 * and the TMUL dot-product instructions TDPBF16PS (BF16 pairs, FP32
 * accumulate) and TDPBSSD (signed INT8 quads, INT32 accumulate).
 *
 * The model executes the real arithmetic the instructions define, so
 * GEMMs built on it are numerically faithful to hardware; architectural
 * fault conditions (bad palette, out-of-range shapes, unconfigured
 * tiles, operand shape mismatches) raise AmxFault so tests can observe
 * them.
 */

#include <array>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace cpullm {
namespace isa {

/** Architectural tile limits for palette 1 (Sapphire Rapids). */
inline constexpr int kNumTiles = 8;
inline constexpr int kMaxRows = 16;
inline constexpr int kMaxColsb = 64;
inline constexpr int kTileBytes = kMaxRows * kMaxColsb;

/**
 * Raised on AMX architectural fault conditions (the hardware would
 * raise #GP or #UD).
 */
class AmxFault : public std::runtime_error
{
  public:
    explicit AmxFault(const std::string& what)
        : std::runtime_error(what)
    {
    }
};

/**
 * In-memory image of the 64-byte tile configuration data consumed by
 * LDTILECFG. Palette 0 releases the tiles; palette 1 is the only
 * supported operating palette.
 */
struct TileConfig
{
    std::uint8_t palette = 1;
    std::uint8_t startRow = 0;
    /** Bytes per row for each tile (0 = tile unused). */
    std::array<std::uint16_t, kNumTiles> colsb{};
    /** Rows for each tile (0 = tile unused). */
    std::array<std::uint8_t, kNumTiles> rows{};

    /** Configure tile @p t as rows x colsb. */
    void
    setTile(int t, int r, int cb)
    {
        rows[static_cast<size_t>(t)] = static_cast<std::uint8_t>(r);
        colsb[static_cast<size_t>(t)] = static_cast<std::uint16_t>(cb);
    }
};

/**
 * One AMX execution context: TILECFG plus TMM0-TMM7. A real core has
 * exactly one; the emulated GEMM creates one per worker thread.
 */
class AmxUnit
{
  public:
    AmxUnit() = default;

    /** @name Configuration instructions */
    /// @{
    /**
     * LDTILECFG: validate and install a tile configuration; zeroes all
     * tile data. Palette 0 behaves as TILERELEASE.
     * @throws AmxFault on invalid palette or shape limits.
     */
    void ldtilecfg(const TileConfig& cfg);

    /** TILERELEASE: return to the init state (tiles unconfigured). */
    void tilerelease();

    /** True once a palette-1 configuration is installed. */
    bool configured() const { return configured_; }
    /// @}

    /** @name Data movement */
    /// @{
    /**
     * TILELOADD: load rows(t) rows of colsb(t) bytes from
     * base + r*stride into tile @p t.
     */
    void tileloadd(int t, const void* base, std::size_t stride_bytes);

    /** TILESTORED: store tile @p t to memory with a row stride. */
    void tilestored(int t, void* base, std::size_t stride_bytes) const;

    /** TILEZERO: zero all data of tile @p t. */
    void tilezero(int t);
    /// @}

    /** @name TMUL compute */
    /// @{
    /**
     * TDPBF16PS dst, a, b: for every dst element (m, n), accumulate
     * sum over k of a[m][2k]*b[k][2n] + a[m][2k+1]*b[k][2n+1] in FP32,
     * where a holds BF16 pairs along rows and b holds the VNNI-packed
     * (pair-interleaved) operand.
     * @throws AmxFault on shape constraint violations.
     */
    void tdpbf16ps(int dst, int a, int b);

    /**
     * TDPBSSD dst, a, b: signed INT8 quads with INT32 accumulation:
     * dst[m][n] += sum_k sum_{i<4} a[m][4k+i] * b[k][4n+i].
     */
    void tdpbssd(int dst, int a, int b);
    /// @}

    /** @name Introspection (for tests and debugging) */
    /// @{
    int rows(int t) const;
    int colsb(int t) const;
    const std::uint8_t* tileData(int t) const;

    /** Instruction issue counters, by mnemonic. */
    std::uint64_t loadCount() const { return loads_; }
    std::uint64_t storeCount() const { return stores_; }
    std::uint64_t tmulCount() const { return tmuls_; }
    /// @}

  private:
    void checkTileIndex(int t) const;
    void checkTileConfigured(int t) const;

    bool configured_ = false;
    TileConfig cfg_{};
    std::array<std::array<std::uint8_t, kTileBytes>, kNumTiles> tiles_{};
    std::uint64_t loads_ = 0;
    std::uint64_t stores_ = 0;
    std::uint64_t tmuls_ = 0;
};

} // namespace isa
} // namespace cpullm

#endif // CPULLM_ISA_AMX_H
