#ifndef CPULLM_ISA_AVX512_H
#define CPULLM_ISA_AVX512_H

/**
 * @file
 * Functional model of the AVX-512 operations the IceLake GEMM path
 * uses: 512-bit registers holding 16 FP32 lanes or 32 BF16 lanes, FMA,
 * and VDPBF16PS (BF16 pair dot product with FP32 accumulation, the
 * avx512_bf16 extension). The emulation computes the exact lane
 * arithmetic so the AVX-512 GEMM is numerically faithful.
 */

#include <array>
#include <cstdint>

#include "numerics/bf16.h"

namespace cpullm {
namespace isa {

/** A 512-bit vector register viewed as FP32 or BF16 lanes. */
struct Vec512
{
    static constexpr int kF32Lanes = 16;
    static constexpr int kBf16Lanes = 32;

    alignas(64) std::array<float, kF32Lanes> f32{};

    /** All-zero register. */
    static Vec512
    zero()
    {
        return Vec512{};
    }

    /** Broadcast a scalar into all FP32 lanes (VBROADCASTSS). */
    static Vec512 broadcast(float v);

    /** Load 16 FP32 lanes from memory (VMOVUPS). */
    static Vec512 loadF32(const float* p);

    /** Store 16 FP32 lanes (VMOVUPS). */
    void storeF32(float* p) const;
};

/** A 512-bit register holding 32 BF16 lanes. */
struct Vec512Bf16
{
    alignas(64) std::array<BFloat16, Vec512::kBf16Lanes> lanes{};

    /** Load 32 BF16 values. */
    static Vec512Bf16 load(const BFloat16* p);

    /**
     * Broadcast one BF16 *pair* into all 16 pair positions
     * (VPBROADCASTD of a 32-bit pair, the idiom BF16 GEMMs use for the
     * A operand).
     */
    static Vec512Bf16 broadcastPair(BFloat16 lo, BFloat16 hi);
};

/** VFMADD231PS: acc + a*b per FP32 lane. */
Vec512 fma(const Vec512& acc, const Vec512& a, const Vec512& b);

/** VADDPS. */
Vec512 add(const Vec512& a, const Vec512& b);

/** VMULPS. */
Vec512 mul(const Vec512& a, const Vec512& b);

/**
 * VDPBF16PS: per FP32 lane i, acc[i] + a[2i]*b[2i] + a[2i+1]*b[2i+1]
 * with BF16 inputs widened to FP32 (no intermediate rounding).
 */
Vec512 dpbf16ps(const Vec512& acc, const Vec512Bf16& a,
                const Vec512Bf16& b);

/** VCVTNEPS2BF16: round 16 FP32 lanes to BF16 (nearest-even). */
std::array<BFloat16, Vec512::kF32Lanes> cvtneps2bf16(const Vec512& v);

/** Horizontal sum of all FP32 lanes (reduction idiom). */
float horizontalSum(const Vec512& v);

} // namespace isa
} // namespace cpullm

#endif // CPULLM_ISA_AVX512_H
