#include "isa/amx.h"

#include <cstring>

#include "numerics/bf16.h"
#include "util/string_util.h"

namespace cpullm {
namespace isa {

void
AmxUnit::ldtilecfg(const TileConfig& cfg)
{
    if (cfg.palette == 0) {
        tilerelease();
        return;
    }
    if (cfg.palette != 1) {
        throw AmxFault(strformat("ldtilecfg: unsupported palette %u",
                                 cfg.palette));
    }
    for (int t = 0; t < kNumTiles; ++t) {
        const int r = cfg.rows[static_cast<size_t>(t)];
        const int cb = cfg.colsb[static_cast<size_t>(t)];
        // A tile may be unused (0x0) but a partially-zero shape is a
        // configuration error on hardware.
        if ((r == 0) != (cb == 0)) {
            throw AmxFault(strformat(
                "ldtilecfg: tile %d has rows=%d colsb=%d (must be both "
                "zero or both non-zero)", t, r, cb));
        }
        if (r > kMaxRows || cb > kMaxColsb) {
            throw AmxFault(strformat(
                "ldtilecfg: tile %d shape %dx%d exceeds palette-1 "
                "limits %dx%d", t, r, cb, kMaxRows, kMaxColsb));
        }
    }
    cfg_ = cfg;
    configured_ = true;
    for (auto& tile : tiles_)
        tile.fill(0);
}

void
AmxUnit::tilerelease()
{
    configured_ = false;
    cfg_ = TileConfig{};
    cfg_.palette = 0;
    for (auto& tile : tiles_)
        tile.fill(0);
}

void
AmxUnit::checkTileIndex(int t) const
{
    if (t < 0 || t >= kNumTiles)
        throw AmxFault(strformat("tile index %d out of range", t));
}

void
AmxUnit::checkTileConfigured(int t) const
{
    checkTileIndex(t);
    if (!configured_)
        throw AmxFault("tile access with no tile configuration loaded");
    if (cfg_.rows[static_cast<size_t>(t)] == 0)
        throw AmxFault(strformat("tile %d is not configured", t));
}

int
AmxUnit::rows(int t) const
{
    checkTileIndex(t);
    return cfg_.rows[static_cast<size_t>(t)];
}

int
AmxUnit::colsb(int t) const
{
    checkTileIndex(t);
    return cfg_.colsb[static_cast<size_t>(t)];
}

const std::uint8_t*
AmxUnit::tileData(int t) const
{
    checkTileIndex(t);
    return tiles_[static_cast<size_t>(t)].data();
}

void
AmxUnit::tileloadd(int t, const void* base, std::size_t stride_bytes)
{
    checkTileConfigured(t);
    const int r = rows(t);
    const int cb = colsb(t);
    const auto* src = static_cast<const std::uint8_t*>(base);
    auto& tile = tiles_[static_cast<size_t>(t)];
    // Rows beyond the configured count are architecturally zeroed.
    tile.fill(0);
    for (int row = 0; row < r; ++row) {
        std::memcpy(tile.data() + row * kMaxColsb,
                    src + static_cast<std::size_t>(row) * stride_bytes,
                    static_cast<std::size_t>(cb));
    }
    ++loads_;
}

void
AmxUnit::tilestored(int t, void* base, std::size_t stride_bytes) const
{
    checkTileConfigured(t);
    const int r = rows(t);
    const int cb = colsb(t);
    auto* dst = static_cast<std::uint8_t*>(base);
    const auto& tile = tiles_[static_cast<size_t>(t)];
    for (int row = 0; row < r; ++row) {
        std::memcpy(dst + static_cast<std::size_t>(row) * stride_bytes,
                    tile.data() + row * kMaxColsb,
                    static_cast<std::size_t>(cb));
    }
    ++const_cast<AmxUnit*>(this)->stores_;
}

void
AmxUnit::tilezero(int t)
{
    checkTileConfigured(t);
    tiles_[static_cast<size_t>(t)].fill(0);
}

void
AmxUnit::tdpbf16ps(int dst, int a, int b)
{
    checkTileConfigured(dst);
    checkTileConfigured(a);
    checkTileConfigured(b);

    const int m = rows(dst);
    const int n = colsb(dst) / 4; // FP32 elements per dst row
    const int a_pairs = colsb(a) / 4; // BF16 pairs per a row
    if (colsb(dst) % 4 || colsb(a) % 4 || colsb(b) % 4) {
        throw AmxFault("tdpbf16ps: colsb must be multiples of 4");
    }
    if (rows(a) != m) {
        throw AmxFault(strformat(
            "tdpbf16ps: rows(a)=%d != rows(dst)=%d", rows(a), m));
    }
    if (rows(b) != a_pairs) {
        throw AmxFault(strformat(
            "tdpbf16ps: rows(b)=%d != colsb(a)/4=%d", rows(b), a_pairs));
    }
    if (colsb(b) != colsb(dst)) {
        throw AmxFault(strformat(
            "tdpbf16ps: colsb(b)=%d != colsb(dst)=%d", colsb(b),
            colsb(dst)));
    }

    auto& dtile = tiles_[static_cast<size_t>(dst)];
    const auto& atile = tiles_[static_cast<size_t>(a)];
    const auto& btile = tiles_[static_cast<size_t>(b)];

    for (int mi = 0; mi < m; ++mi) {
        auto* drow = reinterpret_cast<float*>(
            dtile.data() + mi * kMaxColsb);
        const auto* arow = reinterpret_cast<const BFloat16*>(
            atile.data() + mi * kMaxColsb);
        for (int k = 0; k < a_pairs; ++k) {
            const float a0 = arow[2 * k].toFloat();
            const float a1 = arow[2 * k + 1].toFloat();
            const auto* brow = reinterpret_cast<const BFloat16*>(
                btile.data() + k * kMaxColsb);
            for (int ni = 0; ni < n; ++ni) {
                drow[ni] += a0 * brow[2 * ni].toFloat() +
                            a1 * brow[2 * ni + 1].toFloat();
            }
        }
    }
    ++tmuls_;
}

void
AmxUnit::tdpbssd(int dst, int a, int b)
{
    checkTileConfigured(dst);
    checkTileConfigured(a);
    checkTileConfigured(b);

    const int m = rows(dst);
    const int n = colsb(dst) / 4; // INT32 elements per dst row
    const int a_quads = colsb(a) / 4; // INT8 quads per a row
    if (colsb(dst) % 4 || colsb(a) % 4 || colsb(b) % 4) {
        throw AmxFault("tdpbssd: colsb must be multiples of 4");
    }
    if (rows(a) != m) {
        throw AmxFault(strformat(
            "tdpbssd: rows(a)=%d != rows(dst)=%d", rows(a), m));
    }
    if (rows(b) != a_quads) {
        throw AmxFault(strformat(
            "tdpbssd: rows(b)=%d != colsb(a)/4=%d", rows(b), a_quads));
    }
    if (colsb(b) != colsb(dst)) {
        throw AmxFault("tdpbssd: colsb(b) != colsb(dst)");
    }

    auto& dtile = tiles_[static_cast<size_t>(dst)];
    const auto& atile = tiles_[static_cast<size_t>(a)];
    const auto& btile = tiles_[static_cast<size_t>(b)];

    for (int mi = 0; mi < m; ++mi) {
        auto* drow = reinterpret_cast<std::int32_t*>(
            dtile.data() + mi * kMaxColsb);
        const auto* arow = reinterpret_cast<const std::int8_t*>(
            atile.data() + mi * kMaxColsb);
        for (int k = 0; k < a_quads; ++k) {
            const auto* brow = reinterpret_cast<const std::int8_t*>(
                btile.data() + k * kMaxColsb);
            for (int ni = 0; ni < n; ++ni) {
                std::int32_t acc = drow[ni];
                for (int i = 0; i < 4; ++i) {
                    acc += static_cast<std::int32_t>(arow[4 * k + i]) *
                           static_cast<std::int32_t>(brow[4 * ni + i]);
                }
                drow[ni] = acc;
            }
        }
    }
    ++tmuls_;
}

} // namespace isa
} // namespace cpullm
