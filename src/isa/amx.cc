#include "isa/amx.h"

#include <cstring>

#include "numerics/bf16.h"
#include "util/string_util.h"

namespace cpullm {
namespace isa {

namespace {

/**
 * TMUL compute cores, extracted so the hot loops can be cloned per
 * ISA level with runtime ifunc dispatch (the packed_weights.cc
 * convention). The B tile is widened and pair-deinterleaved ONCE per
 * TMUL issue into lane-parallel planes, then every dst row streams
 * those planes with independent 16-lane accumulation chains — the
 * per-element expression and k-order match the naive emulation
 * exactly, so results are unchanged; only the per-row re-conversion
 * of B (which real TMUL hardware never pays) is gone. This is what
 * gives the emulated unit a hardware-like compute/load cost ratio:
 * one B-tile conversion amortizes over all dst rows, so decode
 * batches scale the way Figs 8-11 measure.
 */
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
#define CPULLM_AMX_CLONES \
    __attribute__((target_clones("arch=x86-64-v4", "arch=x86-64-v3", \
                                 "default")))
#else
#define CPULLM_AMX_CLONES
#endif

#if defined(__x86_64__) && defined(__GNUC__)
#define CPULLM_AMX_X86_DISPATCH 1
#include <immintrin.h>
#endif

CPULLM_AMX_CLONES void
tdpCoreBf16(std::uint8_t* dtile, const std::uint8_t* atile,
            const std::uint8_t* btile, int m, int n, int a_pairs)
{
    // Widen + deinterleave B once: lane ni of pair-row k contributes
    // (even[k][ni], odd[k][ni]).
    alignas(64) float even[kMaxRows][kMaxColsb / 4];
    alignas(64) float odd[kMaxRows][kMaxColsb / 4];
    for (int k = 0; k < a_pairs; ++k) {
        const auto* brow = reinterpret_cast<const BFloat16*>(
            btile + k * kMaxColsb);
        for (int ni = 0; ni < n; ++ni) {
            even[k][ni] = brow[2 * ni].toFloat();
            odd[k][ni] = brow[2 * ni + 1].toFloat();
        }
    }
    for (int mi = 0; mi < m; ++mi) {
        auto* drow = reinterpret_cast<float*>(dtile + mi * kMaxColsb);
        const auto* arow = reinterpret_cast<const BFloat16*>(
            atile + mi * kMaxColsb);
        for (int k = 0; k < a_pairs; ++k) {
            const float a0 = arow[2 * k].toFloat();
            const float a1 = arow[2 * k + 1].toFloat();
            const float* e = even[k];
            const float* o = odd[k];
            for (int ni = 0; ni < n; ++ni)
                drow[ni] += a0 * e[ni] + a1 * o[ni];
        }
    }
}

CPULLM_AMX_CLONES void
tdpCoreI8(std::uint8_t* dtile, const std::uint8_t* atile,
          const std::uint8_t* btile, int m, int n, int a_quads)
{
    // Sign-extend + deinterleave the INT8 quads once per issue; the
    // integer accumulation is exact, so plane order is free.
    alignas(64) std::int32_t plane[4][kMaxRows][kMaxColsb / 4];
    for (int k = 0; k < a_quads; ++k) {
        const auto* brow = reinterpret_cast<const std::int8_t*>(
            btile + k * kMaxColsb);
        for (int ni = 0; ni < n; ++ni)
            for (int i = 0; i < 4; ++i)
                plane[i][k][ni] =
                    static_cast<std::int32_t>(brow[4 * ni + i]);
    }
    for (int mi = 0; mi < m; ++mi) {
        auto* drow = reinterpret_cast<std::int32_t*>(
            dtile + mi * kMaxColsb);
        const auto* arow = reinterpret_cast<const std::int8_t*>(
            atile + mi * kMaxColsb);
        for (int k = 0; k < a_quads; ++k) {
            const std::int32_t a0 = arow[4 * k];
            const std::int32_t a1 = arow[4 * k + 1];
            const std::int32_t a2 = arow[4 * k + 2];
            const std::int32_t a3 = arow[4 * k + 3];
            const std::int32_t* p0 = plane[0][k];
            const std::int32_t* p1 = plane[1][k];
            const std::int32_t* p2 = plane[2][k];
            const std::int32_t* p3 = plane[3][k];
            for (int ni = 0; ni < n; ++ni)
                drow[ni] += a0 * p0[ni] + a1 * p1[ni] + a2 * p2[ni] +
                            a3 * p3[ni];
        }
    }
}

#if CPULLM_AMX_X86_DISPATCH

/**
 * Explicit AVX-512F cores for the TMUL emulation. A raw 32-bit lane
 * of a VNNI B row holds (even bf16, odd bf16), and BF16 -> F32
 * widening is bits<<16, so one shift and one mask produce the two
 * column planes per row; the FMA phase is then one 16-lane chain per
 * dst row. Tile pad regions are architecturally zero (tileloadd /
 * tilezero / ldtilecfg all clear them), so full-width lanes past the
 * configured colsb only ever add 0*0 and the stores are safe.
 * Dispatch between this and the cloned portable core is decided once
 * per process, so every GEMM in a run uses identical arithmetic and
 * the thread/backend bitwise-invariance contracts hold.
 */
// GCC's avx512fintrin.h trips -Wmaybe-uninitialized through the
// maskless intrinsic wrappers (GCC PR105593); suppressed around the
// intrinsic bodies exactly as packed_weights.cc does.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

__attribute__((target("avx512f"))) void
tdpCoreBf16Avx512(std::uint8_t* dtile, const std::uint8_t* atile,
                  const std::uint8_t* btile, int m, int a_pairs)
{
    alignas(64) float even[kMaxRows][kMaxColsb / 4];
    alignas(64) float odd[kMaxRows][kMaxColsb / 4];
    const __m512i himask =
        _mm512_set1_epi32(static_cast<int>(0xFFFF0000u));
    for (int kk = 0; kk < a_pairs; ++kk) {
        const __m512i raw = _mm512_loadu_si512(btile + kk * kMaxColsb);
        _mm512_store_ps(even[kk], _mm512_castsi512_ps(
                                      _mm512_slli_epi32(raw, 16)));
        _mm512_store_ps(odd[kk], _mm512_castsi512_ps(
                                     _mm512_and_si512(raw, himask)));
    }
    // Two independent accumulator chains per dst row (even pairs, odd
    // pairs) so the FMA latency chain halves; each A pair is one
    // 32-bit broadcast split with the same shift/mask as the B widen.
    // The deterministic per-process dispatch keeps this reassociation
    // internally consistent everywhere it matters.
    for (int mi = 0; mi < m; ++mi) {
        auto* drow = reinterpret_cast<float*>(dtile + mi * kMaxColsb);
        const auto* arow = reinterpret_cast<const std::uint32_t*>(
            atile + mi * kMaxColsb);
        __m512 acc_e = _mm512_loadu_ps(drow);
        __m512 acc_o = _mm512_setzero_ps();
        for (int kk = 0; kk < a_pairs; ++kk) {
            const __m512i apair =
                _mm512_set1_epi32(static_cast<int>(arow[kk]));
            const __m512 a0 =
                _mm512_castsi512_ps(_mm512_slli_epi32(apair, 16));
            const __m512 a1 =
                _mm512_castsi512_ps(_mm512_and_si512(apair, himask));
            acc_e =
                _mm512_fmadd_ps(a0, _mm512_load_ps(even[kk]), acc_e);
            acc_o =
                _mm512_fmadd_ps(a1, _mm512_load_ps(odd[kk]), acc_o);
        }
        _mm512_storeu_ps(drow, _mm512_add_ps(acc_e, acc_o));
    }
}

__attribute__((target("avx512f"))) void
tdpCoreI8Avx512(std::uint8_t* dtile, const std::uint8_t* atile,
                const std::uint8_t* btile, int m, int a_quads)
{
    alignas(64) std::int32_t plane[4][kMaxRows][kMaxColsb / 4];
    for (int kk = 0; kk < a_quads; ++kk) {
        const __m512i raw = _mm512_loadu_si512(btile + kk * kMaxColsb);
        _mm512_store_si512(
            plane[0][kk],
            _mm512_srai_epi32(_mm512_slli_epi32(raw, 24), 24));
        _mm512_store_si512(
            plane[1][kk],
            _mm512_srai_epi32(_mm512_slli_epi32(raw, 16), 24));
        _mm512_store_si512(
            plane[2][kk],
            _mm512_srai_epi32(_mm512_slli_epi32(raw, 8), 24));
        _mm512_store_si512(plane[3][kk], _mm512_srai_epi32(raw, 24));
    }
    // Integer accumulation is exact, so the four byte planes run as
    // independent chains (summed at the end) and each A quad is one
    // 32-bit broadcast split with the same shift pair as the planes.
    for (int mi = 0; mi < m; ++mi) {
        auto* drow = reinterpret_cast<std::int32_t*>(
            dtile + mi * kMaxColsb);
        const auto* arow = reinterpret_cast<const std::uint32_t*>(
            atile + mi * kMaxColsb);
        __m512i acc0 = _mm512_loadu_si512(drow);
        __m512i acc1 = _mm512_setzero_si512();
        __m512i acc2 = _mm512_setzero_si512();
        __m512i acc3 = _mm512_setzero_si512();
        for (int kk = 0; kk < a_quads; ++kk) {
            const __m512i aq =
                _mm512_set1_epi32(static_cast<int>(arow[kk]));
            const __m512i a0 =
                _mm512_srai_epi32(_mm512_slli_epi32(aq, 24), 24);
            const __m512i a1 =
                _mm512_srai_epi32(_mm512_slli_epi32(aq, 16), 24);
            const __m512i a2 =
                _mm512_srai_epi32(_mm512_slli_epi32(aq, 8), 24);
            const __m512i a3 = _mm512_srai_epi32(aq, 24);
            acc0 = _mm512_add_epi32(
                acc0, _mm512_mullo_epi32(
                          a0, _mm512_load_si512(plane[0][kk])));
            acc1 = _mm512_add_epi32(
                acc1, _mm512_mullo_epi32(
                          a1, _mm512_load_si512(plane[1][kk])));
            acc2 = _mm512_add_epi32(
                acc2, _mm512_mullo_epi32(
                          a2, _mm512_load_si512(plane[2][kk])));
            acc3 = _mm512_add_epi32(
                acc3, _mm512_mullo_epi32(
                          a3, _mm512_load_si512(plane[3][kk])));
        }
        acc0 = _mm512_add_epi32(acc0, acc1);
        acc2 = _mm512_add_epi32(acc2, acc3);
        _mm512_storeu_si512(drow, _mm512_add_epi32(acc0, acc2));
    }
}

#pragma GCC diagnostic pop

#endif // CPULLM_AMX_X86_DISPATCH

void
tdpBf16Dispatch(std::uint8_t* dtile, const std::uint8_t* atile,
                const std::uint8_t* btile, int m, int n, int a_pairs)
{
#if CPULLM_AMX_X86_DISPATCH
    static const bool use_avx512 =
        __builtin_cpu_supports("avx512f") != 0;
    if (use_avx512) {
        tdpCoreBf16Avx512(dtile, atile, btile, m, a_pairs);
        return;
    }
#endif
    tdpCoreBf16(dtile, atile, btile, m, n, a_pairs);
}

void
tdpI8Dispatch(std::uint8_t* dtile, const std::uint8_t* atile,
              const std::uint8_t* btile, int m, int n, int a_quads)
{
#if CPULLM_AMX_X86_DISPATCH
    static const bool use_avx512 =
        __builtin_cpu_supports("avx512f") != 0;
    if (use_avx512) {
        tdpCoreI8Avx512(dtile, atile, btile, m, a_quads);
        return;
    }
#endif
    tdpCoreI8(dtile, atile, btile, m, n, a_quads);
}

} // namespace

void
AmxUnit::ldtilecfg(const TileConfig& cfg)
{
    if (cfg.palette == 0) {
        tilerelease();
        return;
    }
    if (cfg.palette != 1) {
        throw AmxFault(strformat("ldtilecfg: unsupported palette %u",
                                 cfg.palette));
    }
    for (int t = 0; t < kNumTiles; ++t) {
        const int r = cfg.rows[static_cast<size_t>(t)];
        const int cb = cfg.colsb[static_cast<size_t>(t)];
        // A tile may be unused (0x0) but a partially-zero shape is a
        // configuration error on hardware.
        if ((r == 0) != (cb == 0)) {
            throw AmxFault(strformat(
                "ldtilecfg: tile %d has rows=%d colsb=%d (must be both "
                "zero or both non-zero)", t, r, cb));
        }
        if (r > kMaxRows || cb > kMaxColsb) {
            throw AmxFault(strformat(
                "ldtilecfg: tile %d shape %dx%d exceeds palette-1 "
                "limits %dx%d", t, r, cb, kMaxRows, kMaxColsb));
        }
    }
    cfg_ = cfg;
    configured_ = true;
    for (auto& tile : tiles_)
        tile.fill(0);
}

void
AmxUnit::tilerelease()
{
    configured_ = false;
    cfg_ = TileConfig{};
    cfg_.palette = 0;
    for (auto& tile : tiles_)
        tile.fill(0);
}

void
AmxUnit::checkTileIndex(int t) const
{
    if (t < 0 || t >= kNumTiles)
        throw AmxFault(strformat("tile index %d out of range", t));
}

void
AmxUnit::checkTileConfigured(int t) const
{
    checkTileIndex(t);
    if (!configured_)
        throw AmxFault("tile access with no tile configuration loaded");
    if (cfg_.rows[static_cast<size_t>(t)] == 0)
        throw AmxFault(strformat("tile %d is not configured", t));
}

int
AmxUnit::rows(int t) const
{
    checkTileIndex(t);
    return cfg_.rows[static_cast<size_t>(t)];
}

int
AmxUnit::colsb(int t) const
{
    checkTileIndex(t);
    return cfg_.colsb[static_cast<size_t>(t)];
}

const std::uint8_t*
AmxUnit::tileData(int t) const
{
    checkTileIndex(t);
    return tiles_[static_cast<size_t>(t)].data();
}

void
AmxUnit::tileloadd(int t, const void* base, std::size_t stride_bytes)
{
    checkTileConfigured(t);
    const int r = rows(t);
    const int cb = colsb(t);
    const auto* src = static_cast<const std::uint8_t*>(base);
    auto& tile = tiles_[static_cast<size_t>(t)];
    // Rows beyond the configured count and row bytes beyond colsb are
    // architecturally zeroed; zero exactly those regions instead of
    // pre-filling the whole 1 KiB tile, so a full 16x64 load (the
    // packed-B streaming path) is a pure copy.
    for (int row = 0; row < r; ++row) {
        std::memcpy(tile.data() + row * kMaxColsb,
                    src + static_cast<std::size_t>(row) * stride_bytes,
                    static_cast<std::size_t>(cb));
        if (cb < kMaxColsb)
            std::memset(tile.data() + row * kMaxColsb + cb, 0,
                        static_cast<std::size_t>(kMaxColsb - cb));
    }
    if (r < kMaxRows)
        std::memset(tile.data() + r * kMaxColsb, 0,
                    static_cast<std::size_t>((kMaxRows - r) *
                                             kMaxColsb));
    ++loads_;
}

void
AmxUnit::tilestored(int t, void* base, std::size_t stride_bytes) const
{
    checkTileConfigured(t);
    const int r = rows(t);
    const int cb = colsb(t);
    auto* dst = static_cast<std::uint8_t*>(base);
    const auto& tile = tiles_[static_cast<size_t>(t)];
    for (int row = 0; row < r; ++row) {
        std::memcpy(dst + static_cast<std::size_t>(row) * stride_bytes,
                    tile.data() + row * kMaxColsb,
                    static_cast<std::size_t>(cb));
    }
    ++const_cast<AmxUnit*>(this)->stores_;
}

void
AmxUnit::tilezero(int t)
{
    checkTileConfigured(t);
    tiles_[static_cast<size_t>(t)].fill(0);
}

void
AmxUnit::tdpbf16ps(int dst, int a, int b)
{
    checkTileConfigured(dst);
    checkTileConfigured(a);
    checkTileConfigured(b);

    const int m = rows(dst);
    const int n = colsb(dst) / 4; // FP32 elements per dst row
    const int a_pairs = colsb(a) / 4; // BF16 pairs per a row
    if (colsb(dst) % 4 || colsb(a) % 4 || colsb(b) % 4) {
        throw AmxFault("tdpbf16ps: colsb must be multiples of 4");
    }
    if (rows(a) != m) {
        throw AmxFault(strformat(
            "tdpbf16ps: rows(a)=%d != rows(dst)=%d", rows(a), m));
    }
    if (rows(b) != a_pairs) {
        throw AmxFault(strformat(
            "tdpbf16ps: rows(b)=%d != colsb(a)/4=%d", rows(b), a_pairs));
    }
    if (colsb(b) != colsb(dst)) {
        throw AmxFault(strformat(
            "tdpbf16ps: colsb(b)=%d != colsb(dst)=%d", colsb(b),
            colsb(dst)));
    }

    tdpBf16Dispatch(tiles_[static_cast<size_t>(dst)].data(),
                    tiles_[static_cast<size_t>(a)].data(),
                    tiles_[static_cast<size_t>(b)].data(), m, n,
                    a_pairs);
    ++tmuls_;
}

void
AmxUnit::tdpbssd(int dst, int a, int b)
{
    checkTileConfigured(dst);
    checkTileConfigured(a);
    checkTileConfigured(b);

    const int m = rows(dst);
    const int n = colsb(dst) / 4; // INT32 elements per dst row
    const int a_quads = colsb(a) / 4; // INT8 quads per a row
    if (colsb(dst) % 4 || colsb(a) % 4 || colsb(b) % 4) {
        throw AmxFault("tdpbssd: colsb must be multiples of 4");
    }
    if (rows(a) != m) {
        throw AmxFault(strformat(
            "tdpbssd: rows(a)=%d != rows(dst)=%d", rows(a), m));
    }
    if (rows(b) != a_quads) {
        throw AmxFault(strformat(
            "tdpbssd: rows(b)=%d != colsb(a)/4=%d", rows(b), a_quads));
    }
    if (colsb(b) != colsb(dst)) {
        throw AmxFault("tdpbssd: colsb(b) != colsb(dst)");
    }

    tdpI8Dispatch(tiles_[static_cast<size_t>(dst)].data(),
                  tiles_[static_cast<size_t>(a)].data(),
                  tiles_[static_cast<size_t>(b)].data(), m, n,
                  a_quads);
    ++tmuls_;
}

} // namespace isa
} // namespace cpullm
