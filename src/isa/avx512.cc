#include "isa/avx512.h"

namespace cpullm {
namespace isa {

Vec512
Vec512::broadcast(float v)
{
    Vec512 r;
    r.f32.fill(v);
    return r;
}

Vec512
Vec512::loadF32(const float* p)
{
    Vec512 r;
    for (int i = 0; i < kF32Lanes; ++i)
        r.f32[static_cast<size_t>(i)] = p[i];
    return r;
}

void
Vec512::storeF32(float* p) const
{
    for (int i = 0; i < kF32Lanes; ++i)
        p[i] = f32[static_cast<size_t>(i)];
}

Vec512Bf16
Vec512Bf16::load(const BFloat16* p)
{
    Vec512Bf16 r;
    for (int i = 0; i < Vec512::kBf16Lanes; ++i)
        r.lanes[static_cast<size_t>(i)] = p[i];
    return r;
}

Vec512Bf16
Vec512Bf16::broadcastPair(BFloat16 lo, BFloat16 hi)
{
    Vec512Bf16 r;
    for (int i = 0; i < Vec512::kF32Lanes; ++i) {
        r.lanes[static_cast<size_t>(2 * i)] = lo;
        r.lanes[static_cast<size_t>(2 * i + 1)] = hi;
    }
    return r;
}

Vec512
fma(const Vec512& acc, const Vec512& a, const Vec512& b)
{
    Vec512 r;
    for (int i = 0; i < Vec512::kF32Lanes; ++i) {
        const auto s = static_cast<size_t>(i);
        r.f32[s] = acc.f32[s] + a.f32[s] * b.f32[s];
    }
    return r;
}

Vec512
add(const Vec512& a, const Vec512& b)
{
    Vec512 r;
    for (int i = 0; i < Vec512::kF32Lanes; ++i) {
        const auto s = static_cast<size_t>(i);
        r.f32[s] = a.f32[s] + b.f32[s];
    }
    return r;
}

Vec512
mul(const Vec512& a, const Vec512& b)
{
    Vec512 r;
    for (int i = 0; i < Vec512::kF32Lanes; ++i) {
        const auto s = static_cast<size_t>(i);
        r.f32[s] = a.f32[s] * b.f32[s];
    }
    return r;
}

Vec512
dpbf16ps(const Vec512& acc, const Vec512Bf16& a, const Vec512Bf16& b)
{
    Vec512 r;
    for (int i = 0; i < Vec512::kF32Lanes; ++i) {
        const auto s = static_cast<size_t>(i);
        const float p0 = a.lanes[2 * s].toFloat() *
                         b.lanes[2 * s].toFloat();
        const float p1 = a.lanes[2 * s + 1].toFloat() *
                         b.lanes[2 * s + 1].toFloat();
        r.f32[s] = acc.f32[s] + p0 + p1;
    }
    return r;
}

std::array<BFloat16, Vec512::kF32Lanes>
cvtneps2bf16(const Vec512& v)
{
    std::array<BFloat16, Vec512::kF32Lanes> out;
    for (int i = 0; i < Vec512::kF32Lanes; ++i)
        out[static_cast<size_t>(i)] =
            BFloat16(v.f32[static_cast<size_t>(i)]);
    return out;
}

float
horizontalSum(const Vec512& v)
{
    float s = 0.0f;
    for (float f : v.f32)
        s += f;
    return s;
}

} // namespace isa
} // namespace cpullm
