#include "model/transformer.h"

#include <algorithm>
#include <cmath>

#include "gemm/attention.h"
#include "model/layers.h"
#include "util/logging.h"
#include "util/thread_registry.h"

namespace cpullm {
namespace model {

namespace {

/** Scaled init keeps activations O(1) through deep stacks. */
Tensor
initWeight(Shape shape, Rng& rng, float fan_in)
{
    const float stddev = 1.0f / std::sqrt(fan_in);
    return Tensor::randomNormal(std::move(shape), DType::F32, rng,
                                stddev);
}

} // namespace

TransformerModel::TransformerModel(ModelSpec spec, gemm::Engine engine,
                                   std::uint64_t seed,
                                   gemm::WeightDtype wquant)
    : spec_(std::move(spec)), engine_(engine), wquant_(wquant)
{
    spec_.validate();
    Rng rng(seed);
    const std::int64_t d = spec_.dModel;
    const std::int64_t dkv = spec_.dKv();
    const std::int64_t ff = spec_.dFf;

    tokenEmbedding_ = initWeight({spec_.vocabSize, d}, rng,
                                 static_cast<float>(d));
    if (spec_.posEmbedding == PosEmbedding::Learned) {
        posEmbedding_ = initWeight({spec_.maxSeqLen, d}, rng,
                                   static_cast<float>(d));
    }
    finalNormW_ = Tensor({d}, DType::F32);
    finalNormW_.fill(1.0f);
    if (spec_.norm == NormKind::LayerNorm)
        finalNormB_ = Tensor({d}, DType::F32);
    if (!spec_.tiedEmbedding) {
        lmHead_ = initWeight({d, spec_.vocabSize}, rng,
                             static_cast<float>(d));
    }

    layers_.reserve(static_cast<size_t>(spec_.numLayers));
    for (std::int64_t l = 0; l < spec_.numLayers; ++l) {
        LayerWeights w;
        w.attnNormW = Tensor({d}, DType::F32);
        w.attnNormW.fill(1.0f);
        w.ffnNormW = Tensor({d}, DType::F32);
        w.ffnNormW.fill(1.0f);
        if (spec_.norm == NormKind::LayerNorm) {
            w.attnNormB = Tensor({d}, DType::F32);
            w.ffnNormB = Tensor({d}, DType::F32);
        }
        w.wq = initWeight({d, d}, rng, static_cast<float>(d));
        w.wk = initWeight({d, dkv}, rng, static_cast<float>(d));
        w.wv = initWeight({d, dkv}, rng, static_cast<float>(d));
        w.wo = initWeight({d, d}, rng, static_cast<float>(d));
        if (spec_.gatedFfn)
            w.wGate = initWeight({d, ff}, rng, static_cast<float>(d));
        w.wUp = initWeight({d, ff}, rng, static_cast<float>(d));
        w.wDown = initWeight({ff, d}, rng, static_cast<float>(ff));
        if (spec_.linearBias) {
            w.bq = Tensor({d}, DType::F32);
            w.bk = Tensor({dkv}, DType::F32);
            w.bv = Tensor({dkv}, DType::F32);
            w.bo = Tensor({d}, DType::F32);
            w.bUp = Tensor({ff}, DType::F32);
            w.bDown = Tensor({d}, DType::F32);
        }
        layers_.push_back(std::move(w));
    }

    // Prepare every projection weight for the engine once: dtype
    // conversion, quantization (engine-native INT8 or the grouped
    // INT8/INT4 weight-only formats), and AMX tile packing move from
    // per-matmul to construction time.
    prepared_.reserve(static_cast<size_t>(spec_.numLayers));
    for (const LayerWeights& w : layers_) {
        PreparedLayerWeights p;
        p.wq = gemm::PreparedB(engine_, w.wq, wquant_);
        p.wk = gemm::PreparedB(engine_, w.wk, wquant_);
        p.wv = gemm::PreparedB(engine_, w.wv, wquant_);
        p.wo = gemm::PreparedB(engine_, w.wo, wquant_);
        if (spec_.gatedFfn)
            p.wGate = gemm::PreparedB(engine_, w.wGate, wquant_);
        p.wUp = gemm::PreparedB(engine_, w.wUp, wquant_);
        p.wDown = gemm::PreparedB(engine_, w.wDown, wquant_);
        prepared_.push_back(std::move(p));
    }
    if (spec_.posEmbedding == PosEmbedding::Rotary)
        rope_ = RopeTable(spec_.headDim(), spec_.maxSeqLen);
    if (spec_.tiedEmbedding) {
        // logits = x * E^T; prepare the explicit [d, vocab] transpose
        // once instead of rebuilding it for every forward call.
        Tensor et({d, spec_.vocabSize}, DType::F32);
        float* ep = et.data<float>();
        const float* emb = tokenEmbedding_.data<float>();
        for (std::int64_t vtok = 0; vtok < spec_.vocabSize; ++vtok)
            for (std::int64_t c = 0; c < d; ++c)
                ep[c * spec_.vocabSize + vtok] = emb[vtok * d + c];
        preparedHead_ = gemm::PreparedB(engine_, et, wquant_);
    } else {
        preparedHead_ = gemm::PreparedB(engine_, lmHead_, wquant_);
    }
}

std::vector<TransformerModel::LayerQuantError>
TransformerModel::layerQuantErrors() const
{
    std::vector<LayerQuantError> errs;
    errs.reserve(prepared_.size());
    for (const PreparedLayerWeights& p : prepared_) {
        LayerQuantError e;
        double sum_sq = 0.0;
        std::int64_t elems = 0;
        const gemm::PreparedB* ws[] = {&p.wq, &p.wk,   &p.wv,  &p.wo,
                                       &p.wGate, &p.wUp, &p.wDown};
        for (const gemm::PreparedB* w : ws) {
            if (w->empty())
                continue;
            e.maxAbsErr = std::max(e.maxAbsErr, w->quantMaxAbsErr());
            sum_sq += w->quantErrSumSq();
            elems += w->quantErrElems();
        }
        if (elems > 0)
            e.rmsErr = std::sqrt(sum_sq / static_cast<double>(elems));
        errs.push_back(e);
    }
    return errs;
}

kv::KvCache
TransformerModel::makeKvCache(std::int64_t batch,
                              std::int64_t max_seq) const
{
    return kv::KvCache(spec_.numLayers, batch, spec_.dKv(), max_seq,
                       DType::BF16);
}

kv::PagedKvCache
TransformerModel::makePagedKvCache(std::int64_t block_size,
                                   std::int64_t num_blocks) const
{
    return kv::PagedKvCache(spec_.numLayers, spec_.dKv(), block_size,
                            num_blocks, DType::BF16);
}

Tensor
TransformerModel::embed(const std::vector<std::int64_t>& tokens,
                        std::int64_t pos0, std::int64_t m) const
{
    const auto rows = static_cast<std::int64_t>(tokens.size());
    std::vector<std::int64_t> positions(static_cast<size_t>(rows));
    for (std::int64_t r = 0; r < rows; ++r)
        positions[static_cast<size_t>(r)] = pos0 + r % m;
    return embedRows(tokens, positions);
}

Tensor
TransformerModel::embedRows(
    const std::vector<std::int64_t>& tokens,
    const std::vector<std::int64_t>& positions) const
{
    CPULLM_ASSERT(tokens.size() == positions.size(),
                  "token/position row count mismatch");
    const std::int64_t d = spec_.dModel;
    const auto rows = static_cast<std::int64_t>(tokens.size());
    Tensor x({rows, d}, DType::F32);
    float* xp = x.data<float>();
    const float* emb = tokenEmbedding_.data<float>();
    for (std::int64_t r = 0; r < rows; ++r) {
        const std::int64_t tok = tokens[static_cast<size_t>(r)];
        CPULLM_ASSERT(tok >= 0 && tok < spec_.vocabSize,
                      "token id ", tok, " out of vocab");
        for (std::int64_t c = 0; c < d; ++c)
            xp[r * d + c] = emb[tok * d + c];
        if (spec_.posEmbedding == PosEmbedding::Learned) {
            const float* pos = posEmbedding_.data<float>() +
                               positions[static_cast<size_t>(r)] * d;
            for (std::int64_t c = 0; c < d; ++c)
                xp[r * d + c] += pos[c];
        }
    }
    return x;
}

Tensor
TransformerModel::attention(std::int64_t layer, const Tensor& x,
                            std::int64_t pos0, std::int64_t m,
                            kv::KvCache& cache)
{
    const LayerWeights& w = layers_[static_cast<size_t>(layer)];
    const PreparedLayerWeights& pw =
        prepared_[static_cast<size_t>(layer)];
    const std::int64_t rows = x.dim(0);
    const std::int64_t batch = rows / m;
    const std::int64_t d = spec_.dModel;
    const std::int64_t heads = spec_.numHeads;
    const std::int64_t hd = spec_.headDim();
    const std::int64_t kv_heads = spec_.numKvHeads;

    Tensor q = [&] {
        threadreg::ScopedFrame frame("q_proj");
        return linear(engine_, x, pw.wq,
                      spec_.linearBias ? &w.bq : nullptr);
    }();
    Tensor k = [&] {
        threadreg::ScopedFrame frame("k_proj");
        return linear(engine_, x, pw.wk,
                      spec_.linearBias ? &w.bk : nullptr);
    }();
    Tensor v = [&] {
        threadreg::ScopedFrame frame("v_proj");
        return linear(engine_, x, pw.wv,
                      spec_.linearBias ? &w.bv : nullptr);
    }();

    Tensor ctx({rows, d}, DType::F32);
    {
        threadreg::ScopedFrame frame("attention");
        float* qp = q.data<float>();
        float* kp = k.data<float>();
        const float* vp = v.data<float>();

        for (std::int64_t b = 0; b < batch; ++b) {
            for (std::int64_t i = 0; i < m; ++i) {
                const std::int64_t r = b * m + i;
                if (spec_.posEmbedding == PosEmbedding::Rotary) {
                    rope_.apply(qp + r * d, heads, pos0 + i);
                    rope_.apply(kp + r * spec_.dKv(), kv_heads,
                                pos0 + i);
                }
                cache.write(layer, b, pos0 + i, kp + r * spec_.dKv(),
                            vp + r * spec_.dKv());
            }
        }

        // Attend over the cached span through contiguous views;
        // seqLen is published by the caller after all layers, so pass
        // the explicit span length pos0 + m.
        float* cp = ctx.data<float>();
        std::vector<kv::KvSpan> kspans(static_cast<size_t>(batch));
        std::vector<kv::KvSpan> vspans(static_cast<size_t>(batch));
        std::vector<gemm::AttnSeqView> seqs(
            static_cast<size_t>(batch));
        for (std::int64_t b = 0; b < batch; ++b) {
            const auto sb = static_cast<size_t>(b);
            kspans[sb] = cache.kSpan(layer, b, pos0 + m);
            vspans[sb] = cache.vSpan(layer, b, pos0 + m);
            seqs[sb].q = qp + b * m * d;
            seqs[sb].out = cp + b * m * d;
            seqs[sb].k = &kspans[sb];
            seqs[sb].v = &vspans[sb];
            seqs[sb].chunks = 1;
        }
        gemm::attnFused({heads, kv_heads, hd}, m, pos0, seqs.data(),
                        static_cast<size_t>(batch));
    }

    threadreg::ScopedFrame frame("out_proj");
    return linear(engine_, ctx, pw.wo,
                  spec_.linearBias ? &w.bo : nullptr);
}

Tensor
TransformerModel::attentionRagged(
    std::int64_t layer, const Tensor& x,
    const std::vector<RaggedSeqSpan>& spans, kv::PagedKvCache& cache)
{
    const LayerWeights& w = layers_[static_cast<size_t>(layer)];
    const PreparedLayerWeights& pw =
        prepared_[static_cast<size_t>(layer)];
    const std::int64_t rows = x.dim(0);
    const std::int64_t d = spec_.dModel;
    const std::int64_t heads = spec_.numHeads;
    const std::int64_t hd = spec_.headDim();
    const std::int64_t kv_heads = spec_.numKvHeads;

    // All spans' rows fuse into one m = rows GEMM per projection —
    // the continuous-batching weight-reuse win.
    Tensor q = [&] {
        threadreg::ScopedFrame frame("q_proj");
        return linear(engine_, x, pw.wq,
                      spec_.linearBias ? &w.bq : nullptr);
    }();
    Tensor k = [&] {
        threadreg::ScopedFrame frame("k_proj");
        return linear(engine_, x, pw.wk,
                      spec_.linearBias ? &w.bk : nullptr);
    }();
    Tensor v = [&] {
        threadreg::ScopedFrame frame("v_proj");
        return linear(engine_, x, pw.wv,
                      spec_.linearBias ? &w.bv : nullptr);
    }();

    Tensor ctx({rows, d}, DType::F32);
    {
        threadreg::ScopedFrame frame("attention");
        float* qp = q.data<float>();
        float* kp = k.data<float>();
        const float* vp = v.data<float>();

        // RoPE at each row's own absolute position, then write into
        // the slots reserved by forwardRagged (committed there after
        // all layers).
        std::int64_t base = 0;
        for (const RaggedSeqSpan& sp : spans) {
            for (std::int64_t i = 0; i < sp.m; ++i) {
                const std::int64_t r = base + i;
                if (spec_.posEmbedding == PosEmbedding::Rotary) {
                    rope_.apply(qp + r * d, heads, sp.pos0 + i);
                    rope_.apply(kp + r * spec_.dKv(), kv_heads,
                                sp.pos0 + i);
                }
                cache.writeToken(sp.seq, layer, sp.pos0 + i,
                                 kp + r * spec_.dKv(),
                                 vp + r * spec_.dKv());
            }
            base += sp.m;
        }

        // Per-sequence paged span chunks covering the reserved rows
        // (explicit length: commit() hasn't published them yet).
        float* cp = ctx.data<float>();
        const std::size_t n = spans.size();
        std::vector<std::vector<kv::KvSpan>> kchunks(n), vchunks(n);
        std::vector<gemm::AttnRaggedSeq> slots(n);
        base = 0;
        for (std::size_t s = 0; s < n; ++s) {
            const RaggedSeqSpan& sp = spans[s];
            kchunks[s] = cache.kSpans(sp.seq, layer, sp.pos0 + sp.m);
            vchunks[s] = cache.vSpans(sp.seq, layer, sp.pos0 + sp.m);
            slots[s].view.q = qp + base * d;
            slots[s].view.out = cp + base * d;
            slots[s].view.k = kchunks[s].data();
            slots[s].view.v = vchunks[s].data();
            slots[s].view.chunks = kchunks[s].size();
            slots[s].pos0 = sp.pos0;
            slots[s].m = sp.m;
            base += sp.m;
        }
        gemm::attnFusedRagged({heads, kv_heads, hd}, slots.data(), n);
    }

    threadreg::ScopedFrame frame("out_proj");
    return linear(engine_, ctx, pw.wo,
                  spec_.linearBias ? &w.bo : nullptr);
}

Tensor
TransformerModel::ffn(std::int64_t layer, const Tensor& x)
{
    const LayerWeights& w = layers_[static_cast<size_t>(layer)];
    const PreparedLayerWeights& pw =
        prepared_[static_cast<size_t>(layer)];
    Tensor up = [&] {
        threadreg::ScopedFrame frame("ffn_up");
        return linear(engine_, x, pw.wUp,
                      spec_.linearBias ? &w.bUp : nullptr);
    }();
    if (spec_.gatedFfn) {
        Tensor gate = [&] {
            threadreg::ScopedFrame frame("ffn_gate");
            return linear(engine_, x, pw.wGate, nullptr);
        }();
        threadreg::ScopedFrame frame("ffn_act");
        activationInPlace(gate, spec_.activation);
        float* up_p = up.data<float>();
        const float* g_p = gate.data<float>();
        for (std::int64_t i = 0; i < up.size(); ++i)
            up_p[i] *= g_p[i];
    } else {
        threadreg::ScopedFrame frame("ffn_act");
        activationInPlace(up, spec_.activation);
    }
    threadreg::ScopedFrame frame("ffn_down");
    return linear(engine_, up, pw.wDown,
                  spec_.linearBias ? &w.bDown : nullptr);
}

Tensor
TransformerModel::forwardSpan(const std::vector<std::int64_t>& tokens,
                              std::int64_t pos0, std::int64_t m,
                              kv::KvCache& cache)
{
    CPULLM_ASSERT(m >= 1, "forwardSpan needs m >= 1");
    CPULLM_ASSERT(static_cast<std::int64_t>(tokens.size()) ==
                      cache.batch() * m,
                  "token count mismatches cache batch x span");
    CPULLM_ASSERT(pos0 + m <= cache.maxSeq(), "span [", pos0, ", ",
                  pos0 + m, ") beyond cache capacity");
    const std::int64_t batch = cache.batch();
    Tensor x = [&] {
        threadreg::ScopedFrame frame("embedding");
        return embed(tokens, pos0, m);
    }();

    for (std::int64_t l = 0; l < spec_.numLayers; ++l) {
        const LayerWeights& w = layers_[static_cast<size_t>(l)];
        // Pre-norm residual block: x += Attn(Norm(x)).
        Tensor normed = [&] {
            threadreg::ScopedFrame frame("attn_norm");
            Tensor n = x.cast(DType::F32);
            if (spec_.norm == NormKind::LayerNorm)
                layerNormInPlace(n, w.attnNormW, w.attnNormB);
            else
                rmsNormInPlace(n, w.attnNormW);
            return n;
        }();
        Tensor attn = attention(l, normed, pos0, m, cache);
        float* xp = x.data<float>();
        const float* ap = attn.data<float>();
        for (std::int64_t i = 0; i < x.size(); ++i)
            xp[i] += ap[i];

        Tensor normed2 = [&] {
            threadreg::ScopedFrame frame("ffn_norm");
            Tensor n = x.cast(DType::F32);
            if (spec_.norm == NormKind::LayerNorm)
                layerNormInPlace(n, w.ffnNormW, w.ffnNormB);
            else
                rmsNormInPlace(n, w.ffnNormW);
            return n;
        }();
        Tensor f = ffn(l, normed2);
        const float* fp = f.data<float>();
        for (std::int64_t i = 0; i < x.size(); ++i)
            xp[i] += fp[i];
    }

    cache.setSeqLen(pos0 + m);

    // Only the last position's logits are ever consumed (greedy
    // sampling), so run the final norm and the vocab-wide head GEMM
    // over one row per sequence instead of the whole span.
    Tensor last({batch, spec_.dModel}, DType::F32);
    float* lp = last.data<float>();
    const float* xp = x.data<float>();
    for (std::int64_t b = 0; b < batch; ++b) {
        const float* row = xp + (b * m + m - 1) * spec_.dModel;
        for (std::int64_t c = 0; c < spec_.dModel; ++c)
            lp[b * spec_.dModel + c] = row[c];
    }
    {
        threadreg::ScopedFrame frame("final_norm");
        if (spec_.norm == NormKind::LayerNorm)
            layerNormInPlace(last, finalNormW_, finalNormB_);
        else
            rmsNormInPlace(last, finalNormW_);
    }

    // Output head (tied-embedding transpose or lmHead), prepared once
    // in the constructor.
    threadreg::ScopedFrame frame("lm_head");
    return linear(engine_, last, preparedHead_, nullptr);
}

Tensor
TransformerModel::forwardTokens(const std::vector<std::int64_t>& tokens,
                                std::int64_t position,
                                kv::KvCache& cache)
{
    return forwardSpan(tokens, position, 1, cache);
}

Tensor
TransformerModel::forwardRagged(
    const std::vector<std::int64_t>& tokens,
    const std::vector<RaggedSeqSpan>& spans, kv::PagedKvCache& cache)
{
    CPULLM_ASSERT(!spans.empty(), "empty ragged span list");
    std::int64_t rows = 0;
    for (const RaggedSeqSpan& sp : spans) {
        CPULLM_ASSERT(sp.m >= 1, "ragged span needs m >= 1");
        CPULLM_ASSERT(sp.pos0 == cache.seqLen(sp.seq),
                      "span pos0 ", sp.pos0,
                      " is not the sequence length ",
                      cache.seqLen(sp.seq));
        rows += sp.m;
    }
    CPULLM_ASSERT(static_cast<std::int64_t>(tokens.size()) == rows,
                  "token count mismatches the span rows");

    // Reserve every span's slots before touching activations.
    // Abandoned reservations (a later span failing admission) are
    // harmless: the blocks stay with their sequence and the next
    // reserve() call reuses them without allocating.
    for (const RaggedSeqSpan& sp : spans) {
        if (cache.reserve(sp.seq, sp.m) < 0)
            return Tensor();
    }

    std::vector<std::int64_t> positions;
    positions.reserve(static_cast<size_t>(rows));
    for (const RaggedSeqSpan& sp : spans)
        for (std::int64_t i = 0; i < sp.m; ++i)
            positions.push_back(sp.pos0 + i);
    Tensor x = [&] {
        threadreg::ScopedFrame frame("embedding");
        return embedRows(tokens, positions);
    }();

    for (std::int64_t l = 0; l < spec_.numLayers; ++l) {
        const LayerWeights& w = layers_[static_cast<size_t>(l)];
        Tensor normed = [&] {
            threadreg::ScopedFrame frame("attn_norm");
            Tensor n = x.cast(DType::F32);
            if (spec_.norm == NormKind::LayerNorm)
                layerNormInPlace(n, w.attnNormW, w.attnNormB);
            else
                rmsNormInPlace(n, w.attnNormW);
            return n;
        }();
        Tensor attn = attentionRagged(l, normed, spans, cache);
        float* xp = x.data<float>();
        const float* ap = attn.data<float>();
        for (std::int64_t i = 0; i < x.size(); ++i)
            xp[i] += ap[i];

        Tensor normed2 = [&] {
            threadreg::ScopedFrame frame("ffn_norm");
            Tensor n = x.cast(DType::F32);
            if (spec_.norm == NormKind::LayerNorm)
                layerNormInPlace(n, w.ffnNormW, w.ffnNormB);
            else
                rmsNormInPlace(n, w.ffnNormW);
            return n;
        }();
        Tensor f = ffn(l, normed2);
        const float* fp = f.data<float>();
        for (std::int64_t i = 0; i < x.size(); ++i)
            xp[i] += fp[i];
    }

    for (const RaggedSeqSpan& sp : spans)
        cache.commit(sp.seq, sp.m);

    // Each span's last row feeds the head; the rest are cache-only.
    const std::int64_t n_spans =
        static_cast<std::int64_t>(spans.size());
    Tensor last({n_spans, spec_.dModel}, DType::F32);
    float* lp = last.data<float>();
    const float* xp = x.data<float>();
    std::int64_t base = 0;
    for (std::int64_t s = 0; s < n_spans; ++s) {
        const RaggedSeqSpan& sp = spans[static_cast<size_t>(s)];
        const float* row = xp + (base + sp.m - 1) * spec_.dModel;
        for (std::int64_t c = 0; c < spec_.dModel; ++c)
            lp[s * spec_.dModel + c] = row[c];
        base += sp.m;
    }
    {
        threadreg::ScopedFrame frame("final_norm");
        if (spec_.norm == NormKind::LayerNorm)
            layerNormInPlace(last, finalNormW_, finalNormB_);
        else
            rmsNormInPlace(last, finalNormW_);
    }

    threadreg::ScopedFrame frame("lm_head");
    return linear(engine_, last, preparedHead_, nullptr);
}

std::int64_t
TransformerModel::prefillPaged(const std::vector<std::int64_t>& prompt,
                               std::int64_t seq,
                               kv::PagedKvCache& cache)
{
    CPULLM_ASSERT(!prompt.empty(), "empty prompt");
    RaggedSeqSpan sp;
    sp.seq = seq;
    sp.pos0 = cache.seqLen(seq);
    sp.m = static_cast<std::int64_t>(prompt.size());
    Tensor logits = forwardRagged(prompt, {sp}, cache);
    if (logits.empty())
        return -1;
    return argmaxRow(logits, 0);
}

std::vector<std::int64_t>
TransformerModel::decodeStepRagged(const std::vector<RaggedSlot>& slots,
                                   kv::PagedKvCache& cache)
{
    CPULLM_ASSERT(!slots.empty(), "empty ragged decode batch");
    std::vector<std::int64_t> tokens;
    std::vector<RaggedSeqSpan> spans;
    tokens.reserve(slots.size());
    spans.reserve(slots.size());
    for (const RaggedSlot& s : slots) {
        tokens.push_back(s.token);
        RaggedSeqSpan sp;
        sp.seq = s.seq;
        sp.pos0 = cache.seqLen(s.seq);
        sp.m = 1;
        spans.push_back(sp);
    }
    Tensor logits = forwardRagged(tokens, spans, cache);
    if (logits.empty())
        return {};
    std::vector<std::int64_t> next(slots.size());
    for (std::size_t s = 0; s < slots.size(); ++s)
        next[s] = argmaxRow(logits, static_cast<std::int64_t>(s));
    return next;
}

std::vector<std::int64_t>
TransformerModel::prefill(
    const std::vector<std::vector<std::int64_t>>& prompts,
    kv::KvCache& cache)
{
    CPULLM_ASSERT(!prompts.empty(), "empty prompt batch");
    const std::size_t plen = prompts[0].size();
    for (const auto& p : prompts) {
        CPULLM_ASSERT(p.size() == plen,
                      "all prompts must have equal length");
    }
    // One batched forward pass over all prompt positions: the fused
    // kernel attends causally within the span, so this matches the
    // old position-at-a-time loop token for token.
    std::vector<std::int64_t> flat;
    flat.reserve(prompts.size() * plen);
    for (const auto& p : prompts)
        flat.insert(flat.end(), p.begin(), p.end());
    Tensor logits = forwardSpan(flat, 0,
                                static_cast<std::int64_t>(plen), cache);
    std::vector<std::int64_t> next(prompts.size());
    for (std::size_t b = 0; b < prompts.size(); ++b)
        next[b] = argmaxRow(logits, static_cast<std::int64_t>(b));
    return next;
}

std::vector<std::int64_t>
TransformerModel::decodeStep(const std::vector<std::int64_t>& last_tokens,
                             kv::KvCache& cache)
{
    Tensor logits = forwardTokens(last_tokens, cache.seqLen(), cache);
    std::vector<std::int64_t> next(last_tokens.size());
    for (std::size_t b = 0; b < last_tokens.size(); ++b)
        next[b] = argmaxRow(logits, static_cast<std::int64_t>(b));
    return next;
}

std::vector<std::vector<std::int64_t>>
TransformerModel::generate(
    const std::vector<std::vector<std::int64_t>>& prompts,
    std::int64_t gen_len, kv::KvCache& cache)
{
    CPULLM_ASSERT(gen_len >= 1, "gen_len must be >= 1");
    std::vector<std::vector<std::int64_t>> out(prompts.size());
    std::vector<std::int64_t> last = prefill(prompts, cache);
    for (std::size_t b = 0; b < prompts.size(); ++b)
        out[b].push_back(last[b]);
    for (std::int64_t step = 1; step < gen_len; ++step) {
        last = decodeStep(last, cache);
        for (std::size_t b = 0; b < prompts.size(); ++b)
            out[b].push_back(last[b]);
    }
    return out;
}

} // namespace model
} // namespace cpullm
