#include "model/layers.h"

#include <cmath>

#include "util/logging.h"

namespace cpullm {
namespace model {

namespace {

Tensor
addBias(Tensor y, const Tensor* bias)
{
    if (bias) {
        CPULLM_ASSERT(bias->size() == y.dim(1),
                      "bias size mismatches output width");
        float* yp = y.data<float>();
        const std::int64_t rows = y.dim(0);
        const std::int64_t cols = y.dim(1);
        for (std::int64_t r = 0; r < rows; ++r)
            for (std::int64_t c = 0; c < cols; ++c)
                yp[r * cols + c] += bias->at(c);
    }
    return y;
}

} // namespace

Tensor
linear(gemm::Engine engine, const Tensor& x, const Tensor& w,
       const Tensor* bias)
{
    return addBias(gemm::matmul(engine, x, w), bias);
}

Tensor
linear(gemm::Engine engine, const Tensor& x, const gemm::PreparedB& w,
       const Tensor* bias)
{
    return addBias(gemm::matmul(engine, x, w), bias);
}

void
layerNormInPlace(Tensor& x, const Tensor& gamma, const Tensor& beta,
                 float eps)
{
    const std::int64_t cols = x.dim(x.rank() - 1);
    const std::int64_t rows = x.size() / cols;
    CPULLM_ASSERT(gamma.size() == cols && beta.size() == cols,
                  "norm parameter width mismatch");
    float* p = x.data<float>();
    for (std::int64_t r = 0; r < rows; ++r) {
        float* row = p + r * cols;
        float mean = 0.0f;
        for (std::int64_t c = 0; c < cols; ++c)
            mean += row[c];
        mean /= static_cast<float>(cols);
        float var = 0.0f;
        for (std::int64_t c = 0; c < cols; ++c) {
            const float d = row[c] - mean;
            var += d * d;
        }
        var /= static_cast<float>(cols);
        const float inv = 1.0f / std::sqrt(var + eps);
        for (std::int64_t c = 0; c < cols; ++c) {
            row[c] = (row[c] - mean) * inv * gamma.at(c) + beta.at(c);
        }
    }
}

void
rmsNormInPlace(Tensor& x, const Tensor& gamma, float eps)
{
    const std::int64_t cols = x.dim(x.rank() - 1);
    const std::int64_t rows = x.size() / cols;
    CPULLM_ASSERT(gamma.size() == cols, "norm parameter width mismatch");
    float* p = x.data<float>();
    for (std::int64_t r = 0; r < rows; ++r) {
        float* row = p + r * cols;
        float ms = 0.0f;
        for (std::int64_t c = 0; c < cols; ++c)
            ms += row[c] * row[c];
        ms /= static_cast<float>(cols);
        const float inv = 1.0f / std::sqrt(ms + eps);
        for (std::int64_t c = 0; c < cols; ++c)
            row[c] = row[c] * inv * gamma.at(c);
    }
}

void
softmaxRowsInPlace(Tensor& x)
{
    const std::int64_t cols = x.dim(x.rank() - 1);
    const std::int64_t rows = x.size() / cols;
    float* p = x.data<float>();
    for (std::int64_t r = 0; r < rows; ++r) {
        float* row = p + r * cols;
        float mx = row[0];
        for (std::int64_t c = 1; c < cols; ++c)
            mx = std::max(mx, row[c]);
        float sum = 0.0f;
        for (std::int64_t c = 0; c < cols; ++c) {
            row[c] = std::exp(row[c] - mx);
            sum += row[c];
        }
        const float inv = 1.0f / sum;
        for (std::int64_t c = 0; c < cols; ++c)
            row[c] *= inv;
    }
}

void
activationInPlace(Tensor& x, Activation act)
{
    float* p = x.data<float>();
    const std::int64_t n = x.size();
    switch (act) {
      case Activation::ReLU:
        for (std::int64_t i = 0; i < n; ++i)
            p[i] = p[i] > 0.0f ? p[i] : 0.0f;
        return;
      case Activation::GELU:
        for (std::int64_t i = 0; i < n; ++i) {
            const float v = p[i];
            p[i] = 0.5f * v *
                   (1.0f + std::tanh(0.7978845608f *
                                     (v + 0.044715f * v * v * v)));
        }
        return;
      case Activation::SiLU:
        for (std::int64_t i = 0; i < n; ++i) {
            const float v = p[i];
            p[i] = v / (1.0f + std::exp(-v));
        }
        return;
    }
    CPULLM_PANIC("unhandled activation");
}

void
applyRope(float* vec, std::int64_t heads, std::int64_t head_dim,
          std::int64_t position)
{
    CPULLM_ASSERT(head_dim % 2 == 0, "RoPE needs even head_dim");
    const std::int64_t half = head_dim / 2;
    for (std::int64_t h = 0; h < heads; ++h) {
        float* v = vec + h * head_dim;
        for (std::int64_t i = 0; i < half; ++i) {
            const double freq = std::pow(
                10000.0, -2.0 * static_cast<double>(i) /
                             static_cast<double>(head_dim));
            const double angle = static_cast<double>(position) * freq;
            const float c = static_cast<float>(std::cos(angle));
            const float s = static_cast<float>(std::sin(angle));
            const float x0 = v[i];
            const float x1 = v[i + half];
            v[i] = x0 * c - x1 * s;
            v[i + half] = x0 * s + x1 * c;
        }
    }
}

RopeTable::RopeTable(std::int64_t head_dim, std::int64_t max_pos)
    : head_dim_(head_dim), max_pos_(max_pos)
{
    CPULLM_ASSERT(head_dim > 0 && head_dim % 2 == 0,
                  "RoPE needs even head_dim");
    CPULLM_ASSERT(max_pos > 0, "RoPE table needs max_pos > 0");
    const std::int64_t half = head_dim / 2;
    cos_.resize(static_cast<std::size_t>(max_pos * half));
    sin_.resize(static_cast<std::size_t>(max_pos * half));
    // Same double-precision expression as applyRope, evaluated once
    // per (position, element) instead of per (head, token, layer).
    for (std::int64_t pos = 0; pos < max_pos; ++pos) {
        for (std::int64_t i = 0; i < half; ++i) {
            const double freq = std::pow(
                10000.0, -2.0 * static_cast<double>(i) /
                             static_cast<double>(head_dim));
            const double angle = static_cast<double>(pos) * freq;
            const std::size_t at =
                static_cast<std::size_t>(pos * half + i);
            cos_[at] = static_cast<float>(std::cos(angle));
            sin_[at] = static_cast<float>(std::sin(angle));
        }
    }
}

void
RopeTable::apply(float* vec, std::int64_t heads,
                 std::int64_t position) const
{
    CPULLM_ASSERT(valid(), "apply on a default RopeTable");
    if (position >= max_pos_) {
        applyRope(vec, heads, head_dim_, position);
        return;
    }
    const std::int64_t half = head_dim_ / 2;
    const float* c = cos_.data() + position * half;
    const float* s = sin_.data() + position * half;
    for (std::int64_t h = 0; h < heads; ++h) {
        float* v = vec + h * head_dim_;
        for (std::int64_t i = 0; i < half; ++i) {
            const float x0 = v[i];
            const float x1 = v[i + half];
            v[i] = x0 * c[i] - x1 * s[i];
            v[i + half] = x0 * s[i] + x1 * c[i];
        }
    }
}

std::int64_t
argmaxRow(const Tensor& logits, std::int64_t row)
{
    const std::int64_t cols = logits.dim(logits.rank() - 1);
    std::int64_t best = 0;
    float best_v = logits.at(row * cols);
    for (std::int64_t c = 1; c < cols; ++c) {
        const float v = logits.at(row * cols + c);
        if (v > best_v) {
            best_v = v;
            best = c;
        }
    }
    return best;
}

} // namespace model
} // namespace cpullm
