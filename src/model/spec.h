#ifndef CPULLM_MODEL_SPEC_H
#define CPULLM_MODEL_SPEC_H

/**
 * @file
 * Architecture descriptions of the decoder-only LLM families the
 * paper evaluates (OPT and LLaMA-2), with exact parameter/footprint
 * accounting used by Figures 6 and 7.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "numerics/dtype.h"

namespace cpullm {
namespace model {

/** FFN activation function. */
enum class Activation { ReLU, GELU, SiLU };

/** Normalization layer type. */
enum class NormKind { LayerNorm, RMSNorm };

/** Positional embedding scheme. */
enum class PosEmbedding { Learned, Rotary };

/** A decoder-only transformer architecture. */
struct ModelSpec
{
    std::string name;   ///< e.g. "LLaMA2-13B"
    std::string family; ///< "opt" or "llama2"

    std::int64_t numLayers = 0;
    std::int64_t dModel = 0;
    std::int64_t numHeads = 0;
    /** KV heads (grouped-query attention); == numHeads for MHA. */
    std::int64_t numKvHeads = 0;
    std::int64_t dFf = 0;
    std::int64_t vocabSize = 0;
    std::int64_t maxSeqLen = 0;

    Activation activation = Activation::ReLU;
    NormKind norm = NormKind::LayerNorm;
    PosEmbedding posEmbedding = PosEmbedding::Learned;
    /** Gated FFN (SwiGLU): three FFN matrices instead of two. */
    bool gatedFfn = false;
    /** Linear layers carry bias terms (OPT yes, LLaMA no). */
    bool linearBias = false;
    /** Output head shares the token embedding matrix. */
    bool tiedEmbedding = false;

    std::int64_t headDim() const { return dModel / numHeads; }
    /** KV projection width: numKvHeads * headDim. */
    std::int64_t dKv() const { return numKvHeads * headDim(); }

    /** Exact parameter count from the architecture. */
    std::uint64_t numParameters() const;

    /** Bytes to store the weights in @p dtype (Fig 6 uses F16). */
    std::uint64_t weightBytes(DType dtype) const;

    /**
     * KV-cache bytes for one token of one sequence:
     * 2 (K and V) * numLayers * dKv * dtypeSize. The paper's formula
     * (Section II-B) is the numKvHeads == numHeads case.
     */
    std::uint64_t kvBytesPerToken(DType dtype) const;

    /** KV-cache bytes for @p batch sequences of @p seq_len tokens. */
    std::uint64_t kvCacheBytes(std::int64_t seq_len, std::int64_t batch,
                               DType dtype) const;

    /**
     * Peak activation working-set bytes for a step over @p tokens
     * tokens (batch * step length): the widest intermediate is the
     * FFN hidden plus attention scores.
     */
    std::uint64_t activationBytes(std::int64_t tokens,
                                  std::int64_t seq_len,
                                  DType dtype) const;

    /** Sanity checks (head divisibility etc.); fatal on user error. */
    void validate() const;
};

/** @name Model zoo (paper Section IV-A) */
/// @{
ModelSpec opt1p3b();
ModelSpec opt6p7b();
ModelSpec opt13b();
ModelSpec opt30b();
ModelSpec opt66b();
ModelSpec opt175b(); ///< GPT-3 scale, used in Fig 6 commentary
ModelSpec llama2_7b();
ModelSpec llama2_13b();
ModelSpec llama2_70b();
/// @}

/**
 * A miniature spec for functional tests and examples: real math at
 * interactive speed.
 */
ModelSpec tinyTestModel();

/** The eight evaluated models in the paper's plotting order. */
std::vector<ModelSpec> evaluatedModels();

/** Look up by case-insensitive name ("opt-13b", "llama2-7b"). */
ModelSpec modelByName(const std::string& name);

} // namespace model
} // namespace cpullm

#endif // CPULLM_MODEL_SPEC_H
