#include "model/spec.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace cpullm {
namespace model {

std::uint64_t
ModelSpec::numParameters() const
{
    const auto d = static_cast<std::uint64_t>(dModel);
    const auto dkv = static_cast<std::uint64_t>(dKv());
    const auto ff = static_cast<std::uint64_t>(dFf);
    const auto v = static_cast<std::uint64_t>(vocabSize);
    const auto L = static_cast<std::uint64_t>(numLayers);

    // Attention: Q and O are d x d; K and V are d x dKv.
    std::uint64_t attn = 2 * d * d + 2 * d * dkv;
    if (linearBias)
        attn += 2 * d + 2 * dkv;

    // FFN: two matrices (up d x ff, down ff x d), plus a gate matrix
    // for SwiGLU.
    std::uint64_t ffn = 2 * d * ff + (gatedFfn ? d * ff : 0);
    if (linearBias)
        ffn += ff + d;

    // Norms: LayerNorm has weight+bias, RMSNorm weight only; two per
    // decoder block plus one final.
    const std::uint64_t norm_params =
        (norm == NormKind::LayerNorm ? 2 : 1) * d;
    const std::uint64_t per_layer = attn + ffn + 2 * norm_params;

    std::uint64_t emb = v * d;
    if (posEmbedding == PosEmbedding::Learned)
        emb += static_cast<std::uint64_t>(maxSeqLen) * d;
    if (!tiedEmbedding)
        emb += v * d; // separate LM head

    return L * per_layer + emb + norm_params;
}

std::uint64_t
ModelSpec::weightBytes(DType dtype) const
{
    // Bit-based so sub-byte weight dtypes (INT4) report true footprint.
    return numParameters() * dtypeBits(dtype) / 8;
}

std::uint64_t
ModelSpec::kvBytesPerToken(DType dtype) const
{
    return 2ULL * static_cast<std::uint64_t>(numLayers) *
           static_cast<std::uint64_t>(dKv()) * dtypeSize(dtype);
}

std::uint64_t
ModelSpec::kvCacheBytes(std::int64_t seq_len, std::int64_t batch,
                        DType dtype) const
{
    return kvBytesPerToken(dtype) * static_cast<std::uint64_t>(seq_len) *
           static_cast<std::uint64_t>(batch);
}

std::uint64_t
ModelSpec::activationBytes(std::int64_t tokens, std::int64_t seq_len,
                           DType dtype) const
{
    const auto t = static_cast<std::uint64_t>(tokens);
    // Residual stream + FFN hidden + attention scores for one layer
    // (layers reuse the same buffers).
    const std::uint64_t stream = t * static_cast<std::uint64_t>(dModel);
    const std::uint64_t hidden = t * static_cast<std::uint64_t>(dFf);
    const std::uint64_t scores = t *
        static_cast<std::uint64_t>(numHeads) *
        static_cast<std::uint64_t>(seq_len);
    return (3 * stream + hidden + scores) * dtypeSize(dtype);
}

void
ModelSpec::validate() const
{
    if (dModel % numHeads != 0) {
        CPULLM_FATAL(name, ": dModel ", dModel,
                     " not divisible by numHeads ", numHeads);
    }
    if (numHeads % numKvHeads != 0) {
        CPULLM_FATAL(name, ": numHeads ", numHeads,
                     " not divisible by numKvHeads ", numKvHeads);
    }
    if (numLayers <= 0 || dModel <= 0 || dFf <= 0 || vocabSize <= 0) {
        CPULLM_FATAL(name, ": non-positive architecture dimension");
    }
}

namespace {

ModelSpec
optBase(const std::string& name, std::int64_t layers, std::int64_t d,
        std::int64_t heads, std::int64_t ff)
{
    ModelSpec s;
    s.name = name;
    s.family = "opt";
    s.numLayers = layers;
    s.dModel = d;
    s.numHeads = heads;
    s.numKvHeads = heads;
    s.dFf = ff;
    s.vocabSize = 50272;
    s.maxSeqLen = 2048;
    s.activation = Activation::ReLU;
    s.norm = NormKind::LayerNorm;
    s.posEmbedding = PosEmbedding::Learned;
    s.gatedFfn = false;
    s.linearBias = true;
    s.tiedEmbedding = true;
    s.validate();
    return s;
}

ModelSpec
llamaBase(const std::string& name, std::int64_t layers, std::int64_t d,
          std::int64_t heads, std::int64_t kv_heads, std::int64_t ff)
{
    ModelSpec s;
    s.name = name;
    s.family = "llama2";
    s.numLayers = layers;
    s.dModel = d;
    s.numHeads = heads;
    s.numKvHeads = kv_heads;
    s.dFf = ff;
    s.vocabSize = 32000;
    s.maxSeqLen = 4096;
    s.activation = Activation::SiLU;
    s.norm = NormKind::RMSNorm;
    s.posEmbedding = PosEmbedding::Rotary;
    s.gatedFfn = true;
    s.linearBias = false;
    s.tiedEmbedding = false;
    s.validate();
    return s;
}

} // namespace

ModelSpec
opt1p3b()
{
    return optBase("OPT-1.3B", 24, 2048, 32, 8192);
}

ModelSpec
opt6p7b()
{
    return optBase("OPT-6.7B", 32, 4096, 32, 16384);
}

ModelSpec
opt13b()
{
    return optBase("OPT-13B", 40, 5120, 40, 20480);
}

ModelSpec
opt30b()
{
    return optBase("OPT-30B", 48, 7168, 56, 28672);
}

ModelSpec
opt66b()
{
    return optBase("OPT-66B", 64, 9216, 72, 36864);
}

ModelSpec
opt175b()
{
    return optBase("OPT-175B", 96, 12288, 96, 49152);
}

ModelSpec
llama2_7b()
{
    return llamaBase("LLaMA2-7B", 32, 4096, 32, 32, 11008);
}

ModelSpec
llama2_13b()
{
    return llamaBase("LLaMA2-13B", 40, 5120, 40, 40, 13824);
}

ModelSpec
llama2_70b()
{
    return llamaBase("LLaMA2-70B", 80, 8192, 64, 8, 28672);
}

ModelSpec
tinyTestModel()
{
    ModelSpec s;
    s.name = "Tiny-Test";
    s.family = "test";
    s.numLayers = 2;
    s.dModel = 64;
    s.numHeads = 4;
    s.numKvHeads = 4;
    s.dFf = 128;
    s.vocabSize = 97;
    s.maxSeqLen = 64;
    s.activation = Activation::SiLU;
    s.norm = NormKind::RMSNorm;
    s.posEmbedding = PosEmbedding::Rotary;
    s.gatedFfn = true;
    s.linearBias = false;
    s.tiedEmbedding = false;
    s.validate();
    return s;
}

std::vector<ModelSpec>
evaluatedModels()
{
    return {opt1p3b(),     opt6p7b(),   llama2_7b(),
            opt13b(),      llama2_13b(), opt30b(),
            opt66b(),      llama2_70b()};
}

ModelSpec
modelByName(const std::string& name)
{
    std::string n = toLower(name);
    for (char& c : n)
        if (c == '_' || c == ' ')
            c = '-';
    if (n == "opt-1.3b")
        return opt1p3b();
    if (n == "opt-6.7b")
        return opt6p7b();
    if (n == "opt-13b")
        return opt13b();
    if (n == "opt-30b")
        return opt30b();
    if (n == "opt-66b")
        return opt66b();
    if (n == "opt-175b")
        return opt175b();
    if (n == "llama2-7b")
        return llama2_7b();
    if (n == "llama2-13b")
        return llama2_13b();
    if (n == "llama2-70b")
        return llama2_70b();
    if (n == "tiny" || n == "tiny-test")
        return tinyTestModel();
    CPULLM_FATAL("unknown model '", name, "'");
}

} // namespace model
} // namespace cpullm
