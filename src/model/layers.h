#ifndef CPULLM_MODEL_LAYERS_H
#define CPULLM_MODEL_LAYERS_H

/**
 * @file
 * Functional transformer building blocks. Activations flow in FP32;
 * linear projections execute on one of the emulated matrix engines
 * (AMX, AVX-512, or the FP32 reference), which is where BF16 rounding
 * enters — exactly as in a BF16 inference stack.
 */

#include "gemm/gemm.h"
#include "gemm/packed_weights.h"
#include "model/spec.h"
#include "tensor/tensor.h"

namespace cpullm {
namespace model {

/**
 * y = x * w (+ bias). x: [tokens, d_in], w: [d_in, d_out] row-major,
 * bias: [d_out] or nullptr. Returns FP32 [tokens, d_out].
 */
Tensor linear(gemm::Engine engine, const Tensor& x, const Tensor& w,
              const Tensor* bias);

/**
 * Same projection over a weight prepared once with gemm::PreparedB —
 * the hot path: no per-call dtype conversion or tile packing.
 * Numerically identical to the Tensor overload.
 */
Tensor linear(gemm::Engine engine, const Tensor& x,
              const gemm::PreparedB& w, const Tensor* bias);

/** In-place LayerNorm over the last dimension. */
void layerNormInPlace(Tensor& x, const Tensor& gamma, const Tensor& beta,
                      float eps = 1e-5f);

/** In-place RMSNorm over the last dimension. */
void rmsNormInPlace(Tensor& x, const Tensor& gamma, float eps = 1e-5f);

/** In-place numerically-stable softmax over the last dimension. */
void softmaxRowsInPlace(Tensor& x);

/** In-place elementwise activation. */
void activationInPlace(Tensor& x, Activation act);

/**
 * Rotary position embedding applied in place to one token's projected
 * vector laid out as [heads, head_dim] (rotate-half convention).
 */
void applyRope(float* vec, std::int64_t heads, std::int64_t head_dim,
               std::int64_t position);

/** Index of the maximum element in row @p row of [rows, cols] logits. */
std::int64_t argmaxRow(const Tensor& logits, std::int64_t row);

} // namespace model
} // namespace cpullm

#endif // CPULLM_MODEL_LAYERS_H
