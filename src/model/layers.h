#ifndef CPULLM_MODEL_LAYERS_H
#define CPULLM_MODEL_LAYERS_H

/**
 * @file
 * Functional transformer building blocks. Activations flow in FP32;
 * linear projections execute on one of the emulated matrix engines
 * (AMX, AVX-512, or the FP32 reference), which is where BF16 rounding
 * enters — exactly as in a BF16 inference stack.
 */

#include <cstdint>
#include <vector>

#include "gemm/gemm.h"
#include "gemm/packed_weights.h"
#include "model/spec.h"
#include "tensor/tensor.h"

namespace cpullm {
namespace model {

/**
 * y = x * w (+ bias). x: [tokens, d_in], w: [d_in, d_out] row-major,
 * bias: [d_out] or nullptr. Returns FP32 [tokens, d_out].
 */
Tensor linear(gemm::Engine engine, const Tensor& x, const Tensor& w,
              const Tensor* bias);

/**
 * Same projection over a weight prepared once with gemm::PreparedB —
 * the hot path: no per-call dtype conversion or tile packing.
 * Numerically identical to the Tensor overload.
 */
Tensor linear(gemm::Engine engine, const Tensor& x,
              const gemm::PreparedB& w, const Tensor* bias);

/** In-place LayerNorm over the last dimension. */
void layerNormInPlace(Tensor& x, const Tensor& gamma, const Tensor& beta,
                      float eps = 1e-5f);

/** In-place RMSNorm over the last dimension. */
void rmsNormInPlace(Tensor& x, const Tensor& gamma, float eps = 1e-5f);

/** In-place numerically-stable softmax over the last dimension. */
void softmaxRowsInPlace(Tensor& x);

/** In-place elementwise activation. */
void activationInPlace(Tensor& x, Activation act);

/**
 * Rotary position embedding applied in place to one token's projected
 * vector laid out as [heads, head_dim] (rotate-half convention).
 */
void applyRope(float* vec, std::int64_t heads, std::int64_t head_dim,
               std::int64_t position);

/**
 * Precomputed RoPE rotation factors. applyRope evaluates pow/cos/sin
 * for every (head, position, element) on every token of every layer;
 * the table computes each (position, element) pair once per model with
 * the same double-precision math, so apply() is bit-identical to
 * applyRope for covered positions and falls back to it beyond the
 * table.
 */
class RopeTable
{
  public:
    RopeTable() = default;

    /** Precompute factors for positions [0, max_pos). */
    RopeTable(std::int64_t head_dim, std::int64_t max_pos);

    bool valid() const { return head_dim_ > 0; }

    /** Rotate one token's [heads, head_dim] vector at @p position. */
    void apply(float* vec, std::int64_t heads,
               std::int64_t position) const;

  private:
    std::int64_t head_dim_ = 0;
    std::int64_t max_pos_ = 0;
    std::vector<float> cos_; ///< [max_pos, head_dim / 2]
    std::vector<float> sin_;
};

/** Index of the maximum element in row @p row of [rows, cols] logits. */
std::int64_t argmaxRow(const Tensor& logits, std::int64_t row);

} // namespace model
} // namespace cpullm

#endif // CPULLM_MODEL_LAYERS_H
