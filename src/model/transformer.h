#ifndef CPULLM_MODEL_TRANSFORMER_H
#define CPULLM_MODEL_TRANSFORMER_H

/**
 * @file
 * The functional decoder-only transformer. Executes real forward
 * passes (through the emulated matrix engines) for specs small enough
 * to hold weights in memory; the timing-only path in src/engine uses
 * the same operator structure with shapes alone.
 */

#include <cstdint>
#include <vector>

#include "gemm/gemm.h"
#include "gemm/packed_weights.h"
#include "kv/kv_cache.h"
#include "kv/paged_kv_cache.h"
#include "model/layers.h"
#include "model/spec.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace cpullm {
namespace model {

/** Weights of one decoder block. */
struct LayerWeights
{
    Tensor attnNormW, attnNormB;
    Tensor wq, wk, wv, wo;
    Tensor bq, bk, bv, bo;
    Tensor ffnNormW, ffnNormB;
    Tensor wGate; ///< SwiGLU gate (empty when !gatedFfn)
    Tensor wUp, wDown;
    Tensor bUp, bDown;
};

/**
 * One decoder block's projection weights prepared for the model's
 * engine (converted/quantized/tile-packed once at construction, see
 * gemm::PreparedB) — what the forward pass actually multiplies by.
 */
struct PreparedLayerWeights
{
    gemm::PreparedB wq, wk, wv, wo;
    gemm::PreparedB wGate; ///< empty when !gatedFfn
    gemm::PreparedB wUp, wDown;
};

/**
 * A decoder-only transformer with synthetic (random) weights.
 *
 * Token values never affect the measured performance quantities, so
 * random weights preserve everything the paper characterizes while
 * keeping the substrate exercised end to end (DESIGN.md Section 1).
 */
class TransformerModel
{
  public:
    /**
     * Build a model with random weights.
     * @param spec   architecture (use tinyTestModel() for tests)
     * @param engine matrix engine for all linear projections
     * @param seed   RNG seed for weight init
     * @param wquant weight-only quantization for the projection and
     *               LM-head caches (Native keeps the engine packing)
     */
    TransformerModel(ModelSpec spec, gemm::Engine engine,
                     std::uint64_t seed = 7,
                     gemm::WeightDtype wquant =
                         gemm::WeightDtype::Native);

    const ModelSpec& spec() const { return spec_; }
    gemm::Engine engine() const { return engine_; }
    gemm::WeightDtype weightQuant() const { return wquant_; }

    /** Weight-quantization error of one decoder block's caches. */
    struct LayerQuantError
    {
        double maxAbsErr = 0.0; ///< worst |dequant - fp32| element
        double rmsErr = 0.0;    ///< RMS over all block weight elements
    };

    /**
     * Per-layer dequantization error across all prepared projection
     * weights of each block (all zeros when wquant is Native).
     */
    std::vector<LayerQuantError> layerQuantErrors() const;

    /** Allocate a KV cache sized for @p batch x @p max_seq. */
    kv::KvCache makeKvCache(std::int64_t batch,
                            std::int64_t max_seq) const;

    /**
     * Prefill: run all prompt tokens through the model, filling the
     * cache, and return the first generated token (greedy) for each
     * sequence. All prompts must have equal length (the paper's
     * workloads do).
     */
    std::vector<std::int64_t>
    prefill(const std::vector<std::vector<std::int64_t>>& prompts,
            kv::KvCache& cache);

    /**
     * One decode step: feed the last generated token of each sequence,
     * append to the cache, and return the next greedy tokens.
     */
    std::vector<std::int64_t>
    decodeStep(const std::vector<std::int64_t>& last_tokens,
               kv::KvCache& cache);

    /**
     * Full greedy generation: prefill then @p gen_len - 1 decode
     * steps; returns [batch][gen_len] generated tokens.
     */
    std::vector<std::vector<std::int64_t>>
    generate(const std::vector<std::vector<std::int64_t>>& prompts,
             std::int64_t gen_len, kv::KvCache& cache);

    /**
     * Logits for the tokens at one position (all sequences), also
     * appending K/V to the cache. Exposed for tests.
     * @param tokens    one token id per sequence
     * @param position  absolute position of these tokens
     * @return [batch, vocab] FP32 logits
     */
    Tensor forwardTokens(const std::vector<std::int64_t>& tokens,
                         std::int64_t position, kv::KvCache& cache);

    /**
     * Run @p m tokens per sequence at absolute positions
     * [pos0, pos0 + m) through the model in one pass (batched
     * prefill; m == 1 is a decode step), appending K/V to the cache
     * and advancing seqLen to pos0 + m. Attention is causal within
     * the span via the fused kernel. Numerically equivalent to m
     * stepwise forwardTokens calls: every per-row operator (GEMM
     * rows, norms, RoPE, per-query attention sweep) sees the same
     * inputs in the same order either way.
     * @param tokens  batch x m ids, sequence-major: tokens[b * m + i]
     *                is sequence b's token at position pos0 + i
     * @return [batch, vocab] FP32 logits of the last position only
     */
    Tensor forwardSpan(const std::vector<std::int64_t>& tokens,
                       std::int64_t pos0, std::int64_t m,
                       kv::KvCache& cache);

    /** @name Ragged (continuous-batching) paged-cache path */
    /// @{
    /** One in-flight sequence's slot in a ragged decode step. */
    struct RaggedSlot
    {
        std::int64_t seq = 0;   ///< paged-cache sequence id
        std::int64_t token = 0; ///< last generated token to feed
    };

    /** One sequence's query span inside a ragged forward pass. */
    struct RaggedSeqSpan
    {
        std::int64_t seq = 0;  ///< paged-cache sequence id
        std::int64_t pos0 = 0; ///< must equal cache.seqLen(seq)
        std::int64_t m = 1;    ///< query rows (prompt span, or 1)
    };

    /** Allocate a paged KV pool matched to this model's geometry. */
    kv::PagedKvCache makePagedKvCache(std::int64_t block_size,
                                      std::int64_t num_blocks) const;

    /**
     * One forward pass over heterogeneous per-sequence query spans —
     * the continuous-batching iteration. All spans' rows fuse into
     * single m = sum(m_s) GEMM passes per projection while attention
     * runs per sequence at its own (pos0, m) over paged span chunks.
     * K/V slots are reserved up front, written layer by layer, and
     * committed at the end (reserve/writeToken/commit protocol), so
     * on success every span's seqLen advances by its m.
     *
     * Row-wise numerics match the contiguous path bit for bit: every
     * per-row operator (embedding, norms, RoPE, GEMM rows, the fused
     * attention sweep) sees the same inputs in the same order as a
     * per-sequence forwardSpan call, so logits are bitwise identical
     * to running each sequence alone.
     *
     * @param tokens span-major ids: spans[s]'s rows are consecutive,
     *               tokens[base_s + i] at position spans[s].pos0 + i
     * @return [n_spans, vocab] FP32 logits of each span's last row,
     *         or an empty tensor if the pool cannot admit the step
     *         (no sequence length changes; the caller must evict or
     *         release sequences and retry)
     */
    Tensor forwardRagged(const std::vector<std::int64_t>& tokens,
                         const std::vector<RaggedSeqSpan>& spans,
                         kv::PagedKvCache& cache);

    /**
     * Prefill one sequence's prompt into the paged cache; positions
     * continue from cache.seqLen(seq), so a sequence created with
     * addSequenceWithPrefix only runs its non-shared suffix.
     * @return the first generated token (greedy), or -1 if the pool
     *         cannot hold the prompt (cache state unchanged)
     */
    std::int64_t prefillPaged(const std::vector<std::int64_t>& prompt,
                              std::int64_t seq,
                              kv::PagedKvCache& cache);

    /**
     * One fused decode step over in-flight sequences at heterogeneous
     * positions: each slot feeds its last token at its own position.
     * @return next greedy token per slot, or an empty vector if the
     *         pool cannot admit the step (no state published; evict
     *         a sequence and retry)
     */
    std::vector<std::int64_t>
    decodeStepRagged(const std::vector<RaggedSlot>& slots,
                     kv::PagedKvCache& cache);
    /// @}

  private:
    Tensor embed(const std::vector<std::int64_t>& tokens,
                 std::int64_t pos0, std::int64_t m) const;

    /** Embedding lookup with an explicit position per row. */
    Tensor embedRows(const std::vector<std::int64_t>& tokens,
                     const std::vector<std::int64_t>& positions) const;

    /** The ragged analogue of attention(): per-span (pos0, m). */
    Tensor attentionRagged(std::int64_t layer, const Tensor& x,
                           const std::vector<RaggedSeqSpan>& spans,
                           kv::PagedKvCache& cache);

    /**
     * Fused attention over the cached span for @p m query positions
     * per sequence. @p x holds batch x m rows, sequence-major.
     */
    Tensor attention(std::int64_t layer, const Tensor& x,
                     std::int64_t pos0, std::int64_t m,
                     kv::KvCache& cache);

    Tensor ffn(std::int64_t layer, const Tensor& x);

    ModelSpec spec_;
    gemm::Engine engine_;
    gemm::WeightDtype wquant_ = gemm::WeightDtype::Native;
    Tensor tokenEmbedding_; ///< [vocab, d]
    Tensor posEmbedding_;   ///< [max_seq, d] (learned only)
    Tensor finalNormW_, finalNormB_;
    Tensor lmHead_; ///< [d, vocab] (empty when tied)
    std::vector<LayerWeights> layers_;
    std::vector<PreparedLayerWeights> prepared_;
    /** The output head prepared for the engine: lmHead_, or for tied
     *  embeddings the [d, vocab] transpose of tokenEmbedding_ that
     *  forwardTokens previously rebuilt on every call. */
    gemm::PreparedB preparedHead_;
    /** Precomputed RoPE factors (valid only for Rotary specs). */
    RopeTable rope_;
};

} // namespace model
} // namespace cpullm

#endif // CPULLM_MODEL_TRANSFORMER_H
