#ifndef CPULLM_MEM_MEMORY_SYSTEM_H
#define CPULLM_MEM_MEMORY_SYSTEM_H

/**
 * @file
 * The CPU memory-system model: where inference state lives under each
 * memory/clustering mode, and what streaming bandwidth each region
 * sees. This is the substrate behind the paper's NUMA findings
 * (Key Finding #2) and core-count findings (Key Finding #3).
 *
 * Model summary:
 *  - Placement. Flat mode allocates HBM-first with DDR spill (the
 *    paper's numactl policy, Section IV-B); HBM-only refuses DDR;
 *    Cache/DDR modes allocate DDR. Capacity overflow spills to the
 *    remote socket before failing.
 *  - Effective bandwidth. A region spread over several devices streams
 *    at the harmonic composite of the device bandwidths; cross-socket
 *    shares are capped by UPI. Demand is limited by the cores driving
 *    it (per-core demand cap), which is what makes 12 cores unable to
 *    saturate HBM.
 *  - Mode deratings. SNC-4 without NUMA-aware placement sends ~3/4 of
 *    accesses to remote sub-NUMA domains (latency + mesh penalty);
 *    Cache mode serves a working-set-dependent fraction of traffic at
 *    HBM speed and pays a metadata/fill overhead.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "hw/platform.h"

namespace cpullm {
namespace mem {

/** Logical regions of LLM inference state. */
enum class Region { Weights, KvCache, Activations };

/**
 * How software assigns data to NUMA domains.
 *
 * Oblivious matches the paper's measurements: default page placement,
 * no binding, so SNC-4 sends ~3/4 of accesses to remote sub-NUMA
 * domains and cross-socket runs pay heavy UPI traffic. HotColdAware
 * models the paper's Section VI proposal: hot activations/weights are
 * bound to HBM and the local domain, cold data to remote DDR, so only
 * the cold tail of accesses leaves the local domain.
 */
enum class PlacementPolicy { Oblivious, HotColdAware };

std::string regionName(Region r);

/** Bytes of one region resident on one memory device. */
struct NodeShare
{
    hw::MemKind kind;
    std::uint64_t bytes = 0;
    /** Peak device bandwidth for this share (per socket), bytes/s. */
    double peakBandwidth = 0.0;
    double latency = 0.0;
    /** Share lives on the other socket (UPI in the path). */
    bool crossSocket = false;
};

/** Placement of one region across devices. */
struct RegionPlacement
{
    Region region = Region::Weights;
    std::uint64_t totalBytes = 0;
    std::vector<NodeShare> shares;

    /** Fraction of the region on HBM (0 if none). */
    double hbmFraction() const;
    /** Fraction of the region on the remote socket. */
    double remoteSocketFraction() const;
};

/** Sizes of the three regions, bytes. */
struct RegionSizes
{
    std::uint64_t weights = 0;
    std::uint64_t kvCache = 0;
    std::uint64_t activations = 0;

    std::uint64_t
    total() const
    {
        return weights + kvCache + activations;
    }
};

/** A solved memory plan for one platform + workload. */
struct MemoryPlan
{
    RegionPlacement weights;
    RegionPlacement kvCache;
    RegionPlacement activations;

    const RegionPlacement& placement(Region r) const;
};

/**
 * Memory-system model for one platform. Construction validates the
 * platform; plan() solves placement, and the bandwidth queries give
 * effective streaming rates used by the timing model.
 */
class MemorySystem
{
  public:
    explicit MemorySystem(
        const hw::PlatformConfig& platform,
        PlacementPolicy policy = PlacementPolicy::Oblivious);

    const hw::PlatformConfig& platform() const { return platform_; }
    PlacementPolicy policy() const { return policy_; }

    /**
     * Place the three regions under the platform's memory mode.
     * fatal() if the state cannot fit in the machine at all.
     */
    MemoryPlan plan(const RegionSizes& sizes) const;

    /**
     * Effective bandwidth for streaming one region of @p plan once,
     * driven by @p cores. Accounts for device mix, UPI caps, SNC and
     * cache-mode deratings, and the per-core demand limit.
     */
    double regionBandwidth(const MemoryPlan& plan, Region region,
                           int cores) const;

    /** Demand bandwidth cap of @p cores, bytes/s. */
    double coreDemandBandwidth(int cores) const;

    /**
     * HBM hit fraction in Cache mode for a given total working set
     * (1.0 outside Cache mode when HBM holds the data, 0 without HBM).
     */
    double hbmCacheHitRate(std::uint64_t working_set) const;

    /**
     * Fraction of memory/LLC accesses that land in a remote sub-NUMA
     * cluster (SNC-4 without NUMA-aware data placement -> ~0.75).
     */
    double remoteClusterFraction() const;

    /** Capacity of the local socket's devices under the memory mode. */
    std::uint64_t localCapacity() const;

    /** Capacity of the whole machine under the memory mode. */
    std::uint64_t machineCapacity() const;

  private:
    struct Device
    {
        hw::MemKind kind;
        std::uint64_t capacity;
        double bandwidth;
        double latency;
        bool crossSocket;
    };

    /** Allocation order for the platform's memory mode. */
    std::vector<Device> allocationOrder() const;

    /** Derating applied to device bandwidth by the clustering mode. */
    double clusteringDerate() const;

    hw::PlatformConfig platform_;
    PlacementPolicy policy_;
};

} // namespace mem
} // namespace cpullm

#endif // CPULLM_MEM_MEMORY_SYSTEM_H
