#include "mem/memory_system.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"
#include "util/units.h"

namespace cpullm {
namespace mem {

namespace {

/**
 * Per-core streaming demand, bytes/s. Limited by the number of
 * outstanding misses a core sustains; HBM-attached SPR cores prefetch
 * more aggressively than ICL's DDR4 pipeline.
 */
double
perCoreDemand(const hw::CpuConfig& cpu)
{
    return cpu.hasHbm() ? 16.0 * GB : 10.0 * GB;
}

/** Bandwidth efficiency of SNC-4 when placement is NUMA-oblivious. */
constexpr double kSncDerate = 0.80;

/** Extra latency-driven derate applied to remote-cluster traffic. */
constexpr double kHbmCacheOverhead = 0.93;

} // namespace

std::string
regionName(Region r)
{
    switch (r) {
      case Region::Weights:
        return "weights";
      case Region::KvCache:
        return "kv_cache";
      case Region::Activations:
        return "activations";
    }
    CPULLM_PANIC("unhandled Region");
}

double
RegionPlacement::hbmFraction() const
{
    if (totalBytes == 0)
        return 0.0;
    std::uint64_t hbm = 0;
    for (const auto& s : shares)
        if (s.kind == hw::MemKind::HBM2e)
            hbm += s.bytes;
    return static_cast<double>(hbm) / static_cast<double>(totalBytes);
}

double
RegionPlacement::remoteSocketFraction() const
{
    if (totalBytes == 0)
        return 0.0;
    std::uint64_t remote = 0;
    for (const auto& s : shares)
        if (s.crossSocket)
            remote += s.bytes;
    return static_cast<double>(remote) / static_cast<double>(totalBytes);
}

const RegionPlacement&
MemoryPlan::placement(Region r) const
{
    switch (r) {
      case Region::Weights:
        return weights;
      case Region::KvCache:
        return kvCache;
      case Region::Activations:
        return activations;
    }
    CPULLM_PANIC("unhandled Region");
}

MemorySystem::MemorySystem(const hw::PlatformConfig& platform,
                           PlacementPolicy policy)
    : platform_(platform), policy_(policy)
{
    hw::validatePlatform(platform_);
}

std::vector<MemorySystem::Device>
MemorySystem::allocationOrder() const
{
    const hw::CpuConfig& cpu = platform_.cpu;
    const int local_sockets = std::max(1, platform_.socketsUsed());
    const int remote_sockets = cpu.sockets - local_sockets;
    std::vector<Device> order;

    auto push = [&](const hw::MemoryDeviceConfig& dev, int nsockets,
                    bool cross, double extra_latency) {
        if (nsockets <= 0 || dev.capacityBytes == 0)
            return;
        order.push_back(Device{
            dev.kind,
            dev.capacityBytes * static_cast<std::uint64_t>(nsockets),
            dev.bandwidth * dev.streamEfficiency * nsockets,
            dev.latency + extra_latency, cross});
    };

    const bool use_hbm = platform_.memoryMode == hw::MemoryMode::Flat ||
                         platform_.memoryMode == hw::MemoryMode::HbmOnly;
    const bool use_ddr = platform_.memoryMode != hw::MemoryMode::HbmOnly;

    if (use_hbm && cpu.hbm)
        push(*cpu.hbm, local_sockets, false, 0.0);
    if (use_ddr)
        push(cpu.ddr, local_sockets, false, 0.0);
    // CXL expansion fills after local DRAM: slower than DDR but does
    // not share the UPI with remote-socket traffic.
    if (use_ddr && cpu.cxl)
        push(*cpu.cxl, local_sockets, false, 0.0);
    // Remote-socket spill, reached over UPI.
    if (use_hbm && cpu.hbm)
        push(*cpu.hbm, remote_sockets, true, cpu.upi.latency);
    if (use_ddr)
        push(cpu.ddr, remote_sockets, true, cpu.upi.latency);
    if (use_ddr && cpu.cxl)
        push(*cpu.cxl, remote_sockets, true, cpu.upi.latency);
    return order;
}

MemoryPlan
MemorySystem::plan(const RegionSizes& sizes) const
{
    std::vector<Device> order = allocationOrder();
    std::vector<std::uint64_t> remaining;
    remaining.reserve(order.size());
    for (const auto& d : order)
        remaining.push_back(d.capacity);

    auto place = [&](Region region, std::uint64_t bytes) {
        RegionPlacement p;
        p.region = region;
        p.totalBytes = bytes;
        std::uint64_t left = bytes;
        for (std::size_t i = 0; i < order.size() && left > 0; ++i) {
            if (remaining[i] == 0)
                continue;
            const std::uint64_t take = std::min(left, remaining[i]);
            remaining[i] -= take;
            left -= take;
            p.shares.push_back(NodeShare{order[i].kind, take,
                                         order[i].bandwidth,
                                         order[i].latency,
                                         order[i].crossSocket});
        }
        if (left > 0) {
            CPULLM_FATAL("out of memory on ", platform_.label(), ": ",
                         regionName(region), " needs ",
                         formatBytes(bytes), ", machine capacity is ",
                         formatBytes(machineCapacity()));
        }
        return p;
    };

    MemoryPlan plan;
    // Allocation priority mirrors inference stacks: weights are placed
    // first (they are hottest per token), then KV, then activations.
    plan.weights = place(Region::Weights, sizes.weights);
    plan.kvCache = place(Region::KvCache, sizes.kvCache);
    plan.activations = place(Region::Activations, sizes.activations);
    return plan;
}

double
MemorySystem::coreDemandBandwidth(int cores) const
{
    return perCoreDemand(platform_.cpu) * std::max(0, cores);
}

double
MemorySystem::hbmCacheHitRate(std::uint64_t working_set) const
{
    if (platform_.memoryMode != hw::MemoryMode::Cache)
        return platform_.cpu.hasHbm() ? 1.0 : 0.0;
    const auto& hbm = *platform_.cpu.hbm;
    const double cap = static_cast<double>(hbm.capacityBytes) *
                       platform_.socketsUsed();
    const double ws = static_cast<double>(std::max<std::uint64_t>(
        working_set, 1));
    if (ws <= cap) {
        // Fits: only cold/conflict misses remain.
        return 0.95;
    }
    // Streaming working set larger than the cache: hits bounded by the
    // resident fraction, with a derate for LRU thrash on a stream.
    return std::min(0.95, 0.85 * cap / ws);
}

double
MemorySystem::remoteClusterFraction() const
{
    if (platform_.clusteringMode == hw::ClusteringMode::Snc4) {
        if (policy_ == PlacementPolicy::HotColdAware) {
            // Hot data bound to the local sub-NUMA domain; only the
            // cold access tail crosses domains.
            return 0.15;
        }
        // Interleaved pages across 4 sub-NUMA domains, placement
        // NUMA-oblivious: 3 of 4 accesses land remote.
        return 0.75;
    }
    return 0.05; // quadrant: mesh-interleaved, effectively uniform
}

double
MemorySystem::clusteringDerate() const
{
    if (platform_.clusteringMode == hw::ClusteringMode::Snc4) {
        if (policy_ == PlacementPolicy::HotColdAware) {
            // Localized SNC traffic realizes the mode's latency
            // advantage (Section II-E: "higher bandwidth and lower
            // latency" when managed properly).
            return 1.02;
        }
        return kSncDerate;
    }
    return 1.0;
}

double
MemorySystem::regionBandwidth(const MemoryPlan& plan, Region region,
                              int cores) const
{
    const RegionPlacement& p = plan.placement(region);
    if (p.totalBytes == 0)
        return coreDemandBandwidth(cores);

    const hw::CpuConfig& cpu = platform_.cpu;
    const double upi_bw = cpu.upi.effectiveBandwidth();
    const double hit = hbmCacheHitRate(RegionSizes{
        plan.weights.totalBytes, plan.kvCache.totalBytes,
        plan.activations.totalBytes}.total());

    // Harmonic composition over the shares: total stream time is the
    // sum of per-share times at each share's service bandwidth.
    double time = 0.0;
    for (const auto& s : p.shares) {
        double bw = s.peakBandwidth;
        if (platform_.memoryMode == hw::MemoryMode::Cache &&
            s.kind != hw::MemKind::HBM2e) {
            // A hit fraction is served from the HBM-side cache.
            const double hbm_bw = cpu.hbm->bandwidth *
                                  cpu.hbm->streamEfficiency *
                                  platform_.socketsUsed() *
                                  kHbmCacheOverhead;
            bw = 1.0 / (hit / hbm_bw + (1.0 - hit) / s.peakBandwidth);
        }
        if (s.crossSocket)
            bw = std::min(bw, upi_bw);
        time += static_cast<double>(s.bytes) / bw;
    }
    double composite = static_cast<double>(p.totalBytes) / time;
    composite *= clusteringDerate();
    return std::min(composite, coreDemandBandwidth(cores));
}

std::uint64_t
MemorySystem::localCapacity() const
{
    std::uint64_t cap = 0;
    for (const auto& d : allocationOrder())
        if (!d.crossSocket)
            cap += d.capacity;
    return cap;
}

std::uint64_t
MemorySystem::machineCapacity() const
{
    std::uint64_t cap = 0;
    for (const auto& d : allocationOrder())
        cap += d.capacity;
    return cap;
}

} // namespace mem
} // namespace cpullm
