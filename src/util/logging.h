#ifndef CPULLM_UTIL_LOGGING_H
#define CPULLM_UTIL_LOGGING_H

/**
 * @file
 * Status/error reporting in the gem5 tradition.
 *
 * - inform(): normal operating message, no connotation of error.
 * - warn():   something is suboptimal or approximated but execution can
 *             continue meaningfully.
 * - fatal():  the simulation cannot continue because of a *user* error
 *             (bad configuration, invalid arguments); exits with code 1.
 * - panic():  an internal invariant was violated (a bug in cpullm);
 *             aborts so a debugger/core dump can capture state.
 */

#include <cstdlib>
#include <sstream>
#include <string>

namespace cpullm {

/** Verbosity levels for the global logger. */
enum class LogLevel { Silent = 0, Warn = 1, Info = 2, Debug = 3 };

/** Set the global verbosity (default: Info). */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/**
 * Parse a user-facing level name ("silent", "warn", "info", "debug",
 * case-sensitive); false when @p s is not one of them.
 */
bool logLevelFromString(const std::string& s, LogLevel* out);

/** Inverse of logLevelFromString. */
const char* logLevelName(LogLevel level);

/**
 * Apply the CPULLM_LOG_LEVEL environment variable, mirroring
 * setLogLevel. Unset/empty leaves the level untouched. A malformed
 * value follows the usual env contract (CPULLM_THREADS,
 * CPULLM_COUNTERS): print a usage error and exit 2.
 */
void applyLogLevelEnv();

/**
 * Crash hook: invoked exactly once from CPULLM_FATAL / CPULLM_PANIC
 * (after the message is printed, before exit/abort) so the flight
 * recorder can dump its ring for post-mortem triage. The hook must be
 * reentrancy-safe: a hook that itself crashes must not recurse.
 * Returns the previously installed hook (nullptr initially).
 */
using CrashHook = void (*)(const char* what);
CrashHook setCrashHook(CrashHook hook) noexcept;

namespace detail {

/** Emit one formatted log line to stderr if @p level is enabled. */
void logLine(LogLevel level, const std::string& tag, const std::string& msg);

[[noreturn]] void fatalImpl(const char* file, int line,
                            const std::string& msg);
[[noreturn]] void panicImpl(const char* file, int line,
                            const std::string& msg);

/** Stream-compose arbitrary arguments into a string. */
template <typename... Args>
std::string
composeMessage(Args&&... args)
{
    std::ostringstream os;
    ((os << std::forward<Args>(args)), ...);
    return os.str();
}

} // namespace detail

/** Informative message for the user (level Info). */
template <typename... Args>
void
inform(Args&&... args)
{
    detail::logLine(LogLevel::Info, "info",
                    detail::composeMessage(std::forward<Args>(args)...));
}

/** Debug-level message. */
template <typename... Args>
void
debugLog(Args&&... args)
{
    detail::logLine(LogLevel::Debug, "debug",
                    detail::composeMessage(std::forward<Args>(args)...));
}

/** Warning: functionality is approximate or degraded but usable. */
template <typename... Args>
void
warn(Args&&... args)
{
    detail::logLine(LogLevel::Warn, "warn",
                    detail::composeMessage(std::forward<Args>(args)...));
}

/**
 * Terminate due to a user error (bad config/arguments).
 * Calls std::exit(1).
 */
#define CPULLM_FATAL(...)                                                    \
    ::cpullm::detail::fatalImpl(                                             \
        __FILE__, __LINE__,                                                  \
        ::cpullm::detail::composeMessage(__VA_ARGS__))

/**
 * Terminate due to an internal bug (invariant violation).
 * Calls std::abort().
 */
#define CPULLM_PANIC(...)                                                    \
    ::cpullm::detail::panicImpl(                                             \
        __FILE__, __LINE__,                                                  \
        ::cpullm::detail::composeMessage(__VA_ARGS__))

/** Panic unless @p cond holds. */
#define CPULLM_ASSERT(cond, ...)                                             \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::cpullm::detail::panicImpl(                                     \
                __FILE__, __LINE__,                                          \
                ::cpullm::detail::composeMessage(                            \
                    "assertion failed: " #cond " ", ##__VA_ARGS__));         \
        }                                                                    \
    } while (0)

} // namespace cpullm

#endif // CPULLM_UTIL_LOGGING_H
