#ifndef CPULLM_UTIL_JSON_H
#define CPULLM_UTIL_JSON_H

/**
 * @file
 * Minimal JSON helpers: string escaping for the writers (trace export,
 * run reports) and a dependency-free syntax validator used by the
 * self-check tests so exported traces are guaranteed loadable by
 * Perfetto / chrome://tracing without a Python toolchain.
 */

#include <string>

namespace cpullm {

/** Escape @p s for embedding inside a JSON string literal. */
std::string jsonEscape(const std::string& s);

/** Quote and escape: returns "\"...\"". */
std::string jsonQuote(const std::string& s);

/**
 * True if @p text is one syntactically valid JSON value (object,
 * array, string, number, true/false/null) with nothing but
 * whitespace after it. Accepts strict RFC 8259 JSON only.
 */
bool jsonValid(const std::string& text);

} // namespace cpullm

#endif // CPULLM_UTIL_JSON_H
