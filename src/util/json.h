#ifndef CPULLM_UTIL_JSON_H
#define CPULLM_UTIL_JSON_H

/**
 * @file
 * Minimal JSON helpers: string escaping for the writers (trace export,
 * run reports), a dependency-free syntax validator used by the
 * self-check tests so exported traces are guaranteed loadable by
 * Perfetto / chrome://tracing without a Python toolchain, and a small
 * DOM parser (JsonValue) for the readers — the bench_diff baseline
 * comparator consumes BENCH_*.json through it.
 */

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace cpullm {

/** Escape @p s for embedding inside a JSON string literal. */
std::string jsonEscape(const std::string& s);

/** Quote and escape: returns "\"...\"". */
std::string jsonQuote(const std::string& s);

/**
 * Serialize a double as a JSON number token. JSON has no NaN or
 * Infinity literal, so non-finite values (empty-histogram quantiles,
 * division-by-zero rates) become "null" — parsers see a typed
 * absent-value instead of a syntax error.
 */
std::string jsonNumber(double v);

/**
 * True if @p text is one syntactically valid JSON value (object,
 * array, string, number, true/false/null) with nothing but
 * whitespace after it. Accepts strict RFC 8259 JSON only.
 */
bool jsonValid(const std::string& text);

/**
 * A parsed JSON value. Objects keep their members in document order
 * (std::vector, which unlike std::map supports the recursive member
 * type); lookup is linear, fine for the small documents we read.
 */
class JsonValue
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    /**
     * Parse one strict (RFC 8259) JSON value; trailing non-space
     * input or any syntax error yields false and leaves @p out null.
     */
    static bool parse(const std::string& text, JsonValue* out);

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Typed accessors; panic on kind mismatch (internal error). */
    bool asBool() const;
    double asNumber() const;
    const std::string& asString() const;
    const std::vector<JsonValue>& asArray() const;
    const std::vector<std::pair<std::string, JsonValue>>&
    asObject() const;

    /** Object member by key; nullptr if absent or not an object. */
    const JsonValue* find(const std::string& key) const;

    /** Member as a number/string with a fallback. */
    double numberOr(const std::string& key, double fallback) const;
    std::string stringOr(const std::string& key,
                         const std::string& fallback) const;

  private:
    friend class JsonParser;

    Type type_ = Type::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::vector<std::pair<std::string, JsonValue>> object_;
};

} // namespace cpullm

#endif // CPULLM_UTIL_JSON_H
