#include "util/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <sstream>

#include "util/units.h"

namespace cpullm {

std::string
strformat(const char* fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<size_t>(needed) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, args_copy);
        out.resize(static_cast<size_t>(needed));
    }
    va_end(args_copy);
    return out;
}

std::vector<std::string>
split(const std::string& s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    return out;
}

std::string
join(const std::vector<std::string>& parts, const std::string& sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i) out += sep;
        out += parts[i];
    }
    return out;
}

std::string
toLower(std::string s)
{
    for (char& c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

bool
startsWith(const std::string& s, const std::string& prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

std::string
formatNumber(double v, int digits)
{
    std::string s = strformat("%.*f", digits, v);
    // Trim trailing zeros but keep at least one decimal digit removed
    // cleanly (e.g. "3.00" -> "3", "3.20" -> "3.2").
    if (s.find('.') != std::string::npos) {
        while (!s.empty() && s.back() == '0')
            s.pop_back();
        if (!s.empty() && s.back() == '.')
            s.pop_back();
    }
    return s;
}

std::string
formatBytes(std::uint64_t bytes)
{
    const double b = static_cast<double>(bytes);
    if (bytes >= TiB)
        return strformat("%.2f TiB", b / static_cast<double>(TiB));
    if (bytes >= GiB)
        return strformat("%.2f GiB", b / static_cast<double>(GiB));
    if (bytes >= MiB)
        return strformat("%.2f MiB", b / static_cast<double>(MiB));
    if (bytes >= KiB)
        return strformat("%.2f KiB", b / static_cast<double>(KiB));
    return strformat("%llu B", static_cast<unsigned long long>(bytes));
}

std::string
formatBandwidth(double bytes_per_sec)
{
    if (bytes_per_sec >= TB)
        return strformat("%.1f TB/s", bytes_per_sec / TB);
    if (bytes_per_sec >= GB)
        return strformat("%.1f GB/s", bytes_per_sec / GB);
    if (bytes_per_sec >= MB)
        return strformat("%.1f MB/s", bytes_per_sec / MB);
    return strformat("%.1f B/s", bytes_per_sec);
}

std::string
formatTime(double seconds)
{
    if (seconds >= 1.0)
        return strformat("%.3f s", seconds);
    if (seconds >= MSEC)
        return strformat("%.3f ms", seconds / MSEC);
    if (seconds >= USEC)
        return strformat("%.3f us", seconds / USEC);
    return strformat("%.1f ns", seconds * 1e9);
}

std::string
formatFlops(double flops_per_sec)
{
    if (flops_per_sec >= TFLOPS)
        return strformat("%.1f TFLOPS", flops_per_sec / TFLOPS);
    if (flops_per_sec >= GFLOPS)
        return strformat("%.1f GFLOPS", flops_per_sec / GFLOPS);
    return strformat("%.1f MFLOPS", flops_per_sec / MFLOPS);
}

} // namespace cpullm
