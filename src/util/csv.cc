#include "util/csv.h"

#include <fstream>

#include "util/logging.h"

namespace cpullm {

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    CPULLM_ASSERT(!headers_.empty(), "csv needs at least one column");
}

void
CsvWriter::addRow(std::vector<std::string> cells)
{
    CPULLM_ASSERT(cells.size() == headers_.size(),
                  "csv row arity mismatch");
    rows_.push_back(std::move(cells));
}

std::string
CsvWriter::escape(const std::string& field)
{
    bool needs_quote = false;
    for (char c : field) {
        if (c == ',' || c == '"' || c == '\n' || c == '\r') {
            needs_quote = true;
            break;
        }
    }
    if (!needs_quote)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += '"';
    return out;
}

void
CsvWriter::write(std::ostream& os) const
{
    auto emit = [&](const std::vector<std::string>& row) {
        for (size_t i = 0; i < row.size(); ++i) {
            if (i) os << ',';
            os << escape(row[i]);
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto& row : rows_)
        emit(row);
}

bool
CsvWriter::writeFile(const std::string& path) const
{
    std::ofstream ofs(path);
    if (!ofs) {
        warn("could not open '", path, "' for writing");
        return false;
    }
    write(ofs);
    return static_cast<bool>(ofs);
}

} // namespace cpullm
