#ifndef CPULLM_UTIL_HTTP_SERVER_H
#define CPULLM_UTIL_HTTP_SERVER_H

/**
 * @file
 * Minimal dependency-free HTTP/1.1 server over POSIX sockets, in the
 * spirit of ScaleLLM's embedded /metrics endpoint: GET-only, exact
 * path routing, a small worker-thread pool, Connection: close per
 * request. Built for the serving simulator's telemetry endpoints
 * (/metrics, /health, /stats.json) — not a general web server.
 *
 * `/healthz` is built in: every server answers it with "ok" as a pure
 * liveness probe (the process accepts connections), unlike the
 * application-level /health routes which may carry readiness
 * semantics. An explicit route("/healthz", ...) overrides it.
 * Unknown paths get 404, non-GET methods 405, garbage 400.
 *
 * A matching one-shot client (httpGet) backs `cpullm serve --probe`
 * and the http-server tests, so the whole socket path is exercised
 * without curl.
 */

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace cpullm {

/** One HTTP response; handlers fill status/type/body. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "text/plain; charset=utf-8";
    std::string body;
};

/**
 * GET-only HTTP server bound to 127.0.0.1. Handlers run on the
 * worker threads — they must be thread-safe against the simulation
 * thread (the telemetry layer snapshots under a mutex).
 */
class HttpServer
{
  public:
    using Handler = std::function<HttpResponse()>;

    HttpServer() = default;
    ~HttpServer();

    HttpServer(const HttpServer&) = delete;
    HttpServer& operator=(const HttpServer&) = delete;

    /** Register @p handler for exact path @p path (query ignored). */
    void route(const std::string& path, Handler handler);

    /**
     * Bind 127.0.0.1:@p port (0 = ephemeral, see port()) and start
     * the accept loop plus @p threads workers. False if the socket
     * can't be bound.
     */
    bool start(int port, int threads = 2);

    /** Bound port after a successful start(). */
    int port() const { return port_; }

    bool running() const { return running_.load(); }

    /** Stop accepting, drain workers, join all threads. Idempotent. */
    void stop();

  private:
    void acceptLoop();
    void workerLoop();
    void handleConnection(int fd);

    std::map<std::string, Handler> routes_;
    int listenFd_ = -1;
    int port_ = 0;
    std::atomic<bool> running_{false};
    std::thread acceptThread_;
    std::vector<std::thread> workers_;

    std::mutex queueMu_;
    std::condition_variable queueCv_;
    std::vector<int> pending_; // accepted fds awaiting a worker
};

/**
 * Blocking one-shot GET http://@p host:@p port@p path. Returns the
 * response body; @p status receives the HTTP status (0 on transport
 * failure). @p timeout_ms bounds connect+read.
 */
std::string httpGet(const std::string& host, int port,
                    const std::string& path, int* status = nullptr,
                    int timeout_ms = 5000);

} // namespace cpullm

#endif // CPULLM_UTIL_HTTP_SERVER_H
