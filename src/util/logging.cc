#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <exception>
#include <mutex>

namespace cpullm {

namespace {

std::atomic<LogLevel> global_level{LogLevel::Info};
std::mutex log_mutex;

std::atomic<CrashHook> g_crash_hook{nullptr};
std::atomic<bool> g_in_crash_hook{false};

void
runCrashHook(const char* what)
{
    CrashHook hook = g_crash_hook.load(std::memory_order_acquire);
    if (hook != nullptr && !g_in_crash_hook.exchange(true)) {
        hook(what);
    }
}

} // namespace

void
setLogLevel(LogLevel level)
{
    global_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return global_level.load(std::memory_order_relaxed);
}

bool
logLevelFromString(const std::string& s, LogLevel* out)
{
    if (s == "silent") {
        *out = LogLevel::Silent;
    } else if (s == "warn") {
        *out = LogLevel::Warn;
    } else if (s == "info") {
        *out = LogLevel::Info;
    } else if (s == "debug") {
        *out = LogLevel::Debug;
    } else {
        return false;
    }
    return true;
}

const char*
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Silent: return "silent";
      case LogLevel::Warn: return "warn";
      case LogLevel::Info: return "info";
      case LogLevel::Debug: return "debug";
    }
    return "info";
}

void
applyLogLevelEnv()
{
    const char* env = std::getenv("CPULLM_LOG_LEVEL");
    if (env == nullptr || env[0] == '\0') {
        return;
    }
    LogLevel level;
    if (!logLevelFromString(env, &level)) {
        std::fprintf(stderr,
                     "[cpullm:usage] CPULLM_LOG_LEVEL must be one of "
                     "silent|warn|info|debug, got '%s'\n",
                     env);
        std::exit(2);
    }
    setLogLevel(level);
}

CrashHook
setCrashHook(CrashHook hook) noexcept
{
    return g_crash_hook.exchange(hook, std::memory_order_acq_rel);
}

namespace detail {

void
logLine(LogLevel level, const std::string& tag, const std::string& msg)
{
    if (static_cast<int>(level) >
        static_cast<int>(global_level.load(std::memory_order_relaxed))) {
        return;
    }
    std::lock_guard<std::mutex> lock(log_mutex);
    std::fprintf(stderr, "[cpullm:%s] %s\n", tag.c_str(), msg.c_str());
}

void
fatalImpl(const char* file, int line, const std::string& msg)
{
    std::fprintf(stderr, "[cpullm:fatal] %s (%s:%d)\n", msg.c_str(), file,
                 line);
    runCrashHook("fatal");
    std::exit(1);
}

void
panicImpl(const char* file, int line, const std::string& msg)
{
    std::fprintf(stderr, "[cpullm:panic] %s (%s:%d)\n", msg.c_str(), file,
                 line);
    runCrashHook("panic");
    std::abort();
}

} // namespace detail

} // namespace cpullm
