#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <exception>
#include <mutex>

namespace cpullm {

namespace {

std::atomic<LogLevel> global_level{LogLevel::Info};
std::mutex log_mutex;

} // namespace

void
setLogLevel(LogLevel level)
{
    global_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return global_level.load(std::memory_order_relaxed);
}

namespace detail {

void
logLine(LogLevel level, const std::string& tag, const std::string& msg)
{
    if (static_cast<int>(level) >
        static_cast<int>(global_level.load(std::memory_order_relaxed))) {
        return;
    }
    std::lock_guard<std::mutex> lock(log_mutex);
    std::fprintf(stderr, "[cpullm:%s] %s\n", tag.c_str(), msg.c_str());
}

void
fatalImpl(const char* file, int line, const std::string& msg)
{
    std::fprintf(stderr, "[cpullm:fatal] %s (%s:%d)\n", msg.c_str(), file,
                 line);
    std::exit(1);
}

void
panicImpl(const char* file, int line, const std::string& msg)
{
    std::fprintf(stderr, "[cpullm:panic] %s (%s:%d)\n", msg.c_str(), file,
                 line);
    std::abort();
}

} // namespace detail

} // namespace cpullm
