#ifndef CPULLM_UTIL_THREAD_REGISTRY_H
#define CPULLM_UTIL_THREAD_REGISTRY_H

/**
 * @file
 * Process-wide thread registry with per-thread *logical stacks* — the
 * substrate under the sampling profiler (obs/profiler.h) and the
 * flight recorder (obs/flight_recorder.h).
 *
 * Every participating thread (the main thread, the persistent thread
 * pool's workers, test threads) claims one fixed slot holding a small
 * name, a flight-recorder sequence counter, and a bounded stack of
 * fixed-width frame names that instrumented code pushes and pops via
 * ScopedFrame ("prefill", "q_proj", "attention", ...). The SIGPROF
 * sampling handler reads the *current thread's own* stack, so the
 * only concurrency between mutator and sampler is a signal
 * interrupting its own thread: plain-compiler ordering via relaxed
 * atomics plus signal fences is sufficient, and every operation here
 * is async-signal-safe and allocation-free once the thread is
 * registered.
 *
 * The registry lives in util (below obs) so the thread pool and the
 * functional model can instrument themselves without a dependency on
 * the observability stack; obs subscribes through the frame/register
 * sinks instead.
 *
 * Slots are never reclaimed: registration is for long-lived threads
 * (pool workers are persistent). Short-lived threads may register in
 * tests; the fixed budget (kMaxThreads) is generous and exhaustion
 * degrades to "unregistered" (push/pop become no-ops) rather than
 * failing.
 */

#include <atomic>
#include <cstdint>
#include <cstddef>

namespace cpullm {
namespace threadreg {

/** Fixed slot budget; registration beyond it is refused (nullptr). */
constexpr std::size_t kMaxThreads = 256;
/** Logical-stack depth bound; deeper pushes count as truncated. */
constexpr int kMaxDepth = 16;
/** Frame name storage (including NUL); longer names are clipped. */
constexpr int kFrameChars = 24;
/** Thread name storage (including NUL). */
constexpr int kNameChars = 16;

/** One registered thread's slot. POD-ish; all fields fixed-size. */
struct ThreadState
{
    std::uint32_t id = 0;     ///< slot index (dump "tid")
    char name[kNameChars] = {};

    /** Flight-recorder per-thread sequence number (fetch_add). */
    std::atomic<std::uint64_t> seq{0};

    /** @name Logical stack (same-thread mutator + signal reader) */
    /// @{
    std::atomic<int> depth{0};
    char frames[kMaxDepth][kFrameChars] = {};
    /** Pushes rejected because the stack was full (paired by pop). */
    std::atomic<int> overflow{0};
    /// @}
};

/**
 * Register the calling thread under @p name (clipped to fit) and
 * return its slot; idempotent — a second call returns the existing
 * slot without renaming it. Returns nullptr when the slot budget is
 * exhausted. Not async-signal-safe (first call may notify sinks).
 */
ThreadState* registerCurrentThread(const char* name);

/**
 * The calling thread's slot, or nullptr when it never registered.
 * Async-signal-safe (one TLS pointer load).
 */
ThreadState* current() noexcept;

/** Registered slots so far (slots [0, count) are valid forever). */
std::size_t threadCount() noexcept;

/** Slot @p i (< threadCount()); async-signal-safe. */
ThreadState* threadAt(std::size_t i) noexcept;

/**
 * Frame sink: called (outside signal context) after every push (begin
 * = true) and before every pop. The flight recorder installs one to
 * turn scopes into span begin/end records. A single slot; installing
 * replaces. Pass nullptr to clear.
 */
using FrameSink = void (*)(bool begin, const char* name);
void setFrameSink(FrameSink sink) noexcept;

/**
 * Register sink: called on the *registering thread* right after a new
 * slot is claimed. Multiple subscribers are supported (bounded,
 * add-only): the flight recorder marks thread starts, the profiler
 * allocates sample buffers for late-registered threads.
 */
using RegisterSink = void (*)(ThreadState& ts);
void addRegisterSink(RegisterSink sink);

/**
 * Push @p name onto the calling thread's logical stack. No-op for
 * unregistered threads. Beyond kMaxDepth the push is counted in
 * ThreadState::overflow and the stack is left untouched (the
 * matching pop unwinds the overflow count first).
 */
void pushFrame(const char* name) noexcept;

/** Pop the top logical-stack frame (or one overflow level). */
void popFrame() noexcept;

/**
 * RAII logical-stack frame. Cheap enough for per-operator use on the
 * host path (a bounded copy plus two relaxed atomic stores); inert on
 * unregistered threads.
 */
class ScopedFrame
{
  public:
    explicit ScopedFrame(const char* name) { pushFrame(name); }
    ~ScopedFrame() { popFrame(); }

    ScopedFrame(const ScopedFrame&) = delete;
    ScopedFrame& operator=(const ScopedFrame&) = delete;
};

} // namespace threadreg
} // namespace cpullm

#endif // CPULLM_UTIL_THREAD_REGISTRY_H
