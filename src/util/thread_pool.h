#ifndef CPULLM_UTIL_THREAD_POOL_H
#define CPULLM_UTIL_THREAD_POOL_H

/**
 * @file
 * Persistent work-stealing thread pool backing parallelFor. The pool
 * spawns its long-lived workers lazily on first use and keeps them
 * parked on a condition variable between loops, so the per-GEMM cost
 * of host parallelism drops from thread spawn/join to a wakeup.
 *
 * Execution model per loop: the iteration range is split into grain-
 * sized chunks dealt round-robin onto per-lane deques (lane 0 is the
 * submitting thread, lanes 1..L-1 are workers). Each participant pops
 * its own lane from the front and steals from other lanes' backs when
 * it runs dry. Exceptions thrown by the body are captured (first one
 * wins) and rethrown on the submitting thread. Nested parallelFor
 * calls from inside a loop body run inline on the calling thread, so
 * code running on pool workers can never deadlock the pool.
 *
 * Like parallelFor itself, this is purely about host execution speed
 * of the functional kernels; simulated timing (src/perf) is unaffected.
 */

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cpullm {

class ThreadPool
{
  public:
    /** Monotonic process-wide counters (snapshot via stats()). */
    struct Stats
    {
        std::size_t poolSize = 0;      ///< long-lived worker threads
        std::uint64_t parallelOps = 0; ///< loops run on the pool
        std::uint64_t serialOps = 0;   ///< loops degraded to serial
        std::uint64_t inlineOps = 0;   ///< nested loops run inline
        std::uint64_t tasks = 0;       ///< iterations run on the pool
        std::uint64_t chunks = 0;      ///< chunks dealt to lanes
        std::uint64_t steals = 0;      ///< chunks taken from other lanes
    };

    /** The process-wide pool; workers start on the first call. */
    static ThreadPool& instance();

    /** Long-lived worker threads (hardware_concurrency - 1; may be 0). */
    std::size_t workerCount() const { return workers_.size(); }

    /**
     * Run fn(i) for i in [begin, end) across the pool, blocking until
     * all iterations complete. Honors the setMaxThreads() cap, falls
     * back to serial execution for small ranges or when called from
     * inside another parallel loop, and rethrows the first exception
     * a loop body throws.
     */
    void parallelFor(std::size_t begin, std::size_t end,
                     const std::function<void(std::size_t)>& fn,
                     std::size_t grain = 1);

    /** Copy of the counters (atomic reads; no lock). */
    Stats stats() const;

    /** True on a thread currently inside a parallelFor body. */
    static bool inParallelRegion();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

  private:
    ThreadPool();
    ~ThreadPool();

    struct Job;

    void workerLoop(std::size_t id);
    void runJob(Job& job, std::size_t lane);
    bool takeChunk(Job& job, std::size_t lane, std::size_t* begin,
                   std::size_t* end);
    void serialRun(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& fn);

    /** Guards job publication and stop; cv_ wakes workers. */
    std::mutex mu_;
    std::condition_variable cv_;
    /** Signals job completion (workers leaving a job) to submitters. */
    std::condition_variable doneCv_;
    Job* job_ = nullptr;
    std::uint64_t generation_ = 0;
    bool stop_ = false;
    std::vector<std::thread> workers_;
    /** Serializes top-level submissions; a busy pool runs the second
     *  concurrent caller serially instead of blocking it. */
    std::mutex submitMu_;

    std::atomic<std::uint64_t> parallelOps_{0};
    std::atomic<std::uint64_t> serialOps_{0};
    std::atomic<std::uint64_t> inlineOps_{0};
    std::atomic<std::uint64_t> tasks_{0};
    std::atomic<std::uint64_t> chunks_{0};
    std::atomic<std::uint64_t> steals_{0};
};

} // namespace cpullm

#endif // CPULLM_UTIL_THREAD_POOL_H
