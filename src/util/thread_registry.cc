#include "util/thread_registry.h"

#include <cstring>

namespace cpullm {
namespace threadreg {

namespace {

ThreadState g_threads[kMaxThreads];
std::atomic<std::size_t> g_count{0};
std::atomic<FrameSink> g_frame_sink{nullptr};

constexpr int kMaxRegisterSinks = 4;
std::atomic<RegisterSink> g_register_sinks[kMaxRegisterSinks];
std::atomic<int> g_register_sink_count{0};

thread_local ThreadState* t_state = nullptr;

void copyClipped(char* dst, std::size_t cap, const char* src)
{
    std::size_t i = 0;
    if (src != nullptr) {
        for (; i + 1 < cap && src[i] != '\0'; ++i) {
            dst[i] = src[i];
        }
    }
    dst[i] = '\0';
}

} // namespace

ThreadState* registerCurrentThread(const char* name)
{
    if (t_state != nullptr) {
        return t_state;
    }
    const std::size_t slot =
        g_count.fetch_add(1, std::memory_order_acq_rel);
    if (slot >= kMaxThreads) {
        // Over budget: park the counter at the cap so threadCount()
        // stays meaningful, and leave the thread unregistered.
        g_count.store(kMaxThreads, std::memory_order_release);
        return nullptr;
    }
    ThreadState& ts = g_threads[slot];
    ts.id = static_cast<std::uint32_t>(slot);
    copyClipped(ts.name, sizeof(ts.name),
                (name != nullptr && name[0] != '\0') ? name : "thread");
    t_state = &ts;
    const int sinks = g_register_sink_count.load(std::memory_order_acquire);
    for (int i = 0; i < sinks; ++i) {
        RegisterSink sink =
            g_register_sinks[i].load(std::memory_order_acquire);
        if (sink != nullptr) {
            sink(ts);
        }
    }
    return &ts;
}

ThreadState* current() noexcept
{
    return t_state;
}

std::size_t threadCount() noexcept
{
    const std::size_t n = g_count.load(std::memory_order_acquire);
    return n < kMaxThreads ? n : kMaxThreads;
}

ThreadState* threadAt(std::size_t i) noexcept
{
    return i < threadCount() ? &g_threads[i] : nullptr;
}

void setFrameSink(FrameSink sink) noexcept
{
    g_frame_sink.store(sink, std::memory_order_release);
}

void addRegisterSink(RegisterSink sink)
{
    if (sink == nullptr) {
        return;
    }
    const int i = g_register_sink_count.load(std::memory_order_acquire);
    // Duplicate installs are idempotent (enable() may run twice).
    for (int k = 0; k < i; ++k) {
        if (g_register_sinks[k].load(std::memory_order_acquire) == sink) {
            return;
        }
    }
    if (i < kMaxRegisterSinks) {
        g_register_sinks[i].store(sink, std::memory_order_release);
        g_register_sink_count.store(i + 1, std::memory_order_release);
    }
}

void pushFrame(const char* name) noexcept
{
    ThreadState* ts = t_state;
    if (ts == nullptr) {
        return;
    }
    const int d = ts->depth.load(std::memory_order_relaxed);
    if (d >= kMaxDepth) {
        ts->overflow.fetch_add(1, std::memory_order_relaxed);
    } else {
        copyClipped(ts->frames[d], kFrameChars, name);
        // The SIGPROF handler samples this thread's own stack: a
        // signal fence is all that is needed to make sure the frame
        // bytes land before the published depth.
        std::atomic_signal_fence(std::memory_order_release);
        ts->depth.store(d + 1, std::memory_order_relaxed);
    }
    FrameSink sink = g_frame_sink.load(std::memory_order_acquire);
    if (sink != nullptr) {
        sink(true, name);
    }
}

void popFrame() noexcept
{
    ThreadState* ts = t_state;
    if (ts == nullptr) {
        return;
    }
    const char* name = "";
    if (ts->overflow.load(std::memory_order_relaxed) > 0) {
        ts->overflow.fetch_sub(1, std::memory_order_relaxed);
    } else {
        const int d = ts->depth.load(std::memory_order_relaxed);
        if (d > 0) {
            name = ts->frames[d - 1];
            ts->depth.store(d - 1, std::memory_order_relaxed);
            std::atomic_signal_fence(std::memory_order_release);
        }
    }
    FrameSink sink = g_frame_sink.load(std::memory_order_acquire);
    if (sink != nullptr) {
        sink(false, name);
    }
}

} // namespace threadreg
} // namespace cpullm
