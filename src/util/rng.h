#ifndef CPULLM_UTIL_RNG_H
#define CPULLM_UTIL_RNG_H

/**
 * @file
 * Deterministic random number generation. All stochastic behaviour in
 * the framework (synthetic weights, token streams) flows through Rng so
 * experiments are exactly reproducible from a seed.
 */

#include <cstdint>

namespace cpullm {

/**
 * xoshiro256** generator; small, fast, and deterministic across
 * platforms (unlike std::default_random_engine).
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL)
    {
        // SplitMix64 seeding to fill the state from a single word.
        std::uint64_t x = seed;
        for (auto& word : state_) {
            x += 0x9E3779B97F4A7C15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). @p n must be > 0. */
    std::uint64_t
    uniformInt(std::uint64_t n)
    {
        // Lemire's nearly-divisionless bounded sampling, simplified:
        // modulo bias is negligible for the n used here (vocab sizes).
        return next() % n;
    }

    /** Standard normal via Box-Muller (one value per call). */
    double
    normal()
    {
        double u1 = uniform();
        double u2 = uniform();
        if (u1 < 1e-300)
            u1 = 1e-300;
        return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
               __builtin_cos(6.283185307179586 * u2);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace cpullm

#endif // CPULLM_UTIL_RNG_H
