#include "util/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "util/logging.h"
#include "util/string_util.h"

namespace cpullm {

namespace {

/** Largest request head we accept (we only route on the GET line). */
constexpr std::size_t kMaxRequestBytes = 16 * 1024;

const char*
statusText(int status)
{
    switch (status) {
      case 200:
        return "OK";
      case 400:
        return "Bad Request";
      case 404:
        return "Not Found";
      case 405:
        return "Method Not Allowed";
      default:
        return "Error";
    }
}

void
sendAll(int fd, const std::string& data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::send(fd, data.data() + off, data.size() - off,
                   MSG_NOSIGNAL);
        if (n <= 0)
            return;
        off += static_cast<std::size_t>(n);
    }
}

std::string
serialize(const HttpResponse& r)
{
    std::ostringstream os;
    os << "HTTP/1.1 " << r.status << ' ' << statusText(r.status)
       << "\r\nContent-Type: " << r.contentType
       << "\r\nContent-Length: " << r.body.size()
       << "\r\nConnection: close\r\n\r\n"
       << r.body;
    return os.str();
}

} // namespace

HttpServer::~HttpServer()
{
    stop();
}

void
HttpServer::route(const std::string& path, Handler handler)
{
    CPULLM_ASSERT(!running_.load(),
                  "routes must be registered before start()");
    routes_[path] = std::move(handler);
}

bool
HttpServer::start(int port, int threads)
{
    CPULLM_ASSERT(!running_.load(), "server already started");
    CPULLM_ASSERT(threads >= 1, "need at least one worker");

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        warn("http: socket() failed: ", std::strerror(errno));
        return false;
    }
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd_, 16) != 0) {
        warn("http: cannot bind 127.0.0.1:", port, ": ",
             std::strerror(errno));
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&addr),
                  &len);
    port_ = ntohs(addr.sin_port);

    running_.store(true);
    acceptThread_ = std::thread([this] { acceptLoop(); });
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    return true;
}

void
HttpServer::stop()
{
    if (!running_.exchange(false)) {
        return;
    }
    // Unblock the accept loop, then the workers.
    ::shutdown(listenFd_, SHUT_RDWR);
    ::close(listenFd_);
    listenFd_ = -1;
    queueCv_.notify_all();
    if (acceptThread_.joinable())
        acceptThread_.join();
    for (auto& w : workers_) {
        if (w.joinable())
            w.join();
    }
    workers_.clear();
    // Close connections accepted but never served.
    std::lock_guard<std::mutex> lock(queueMu_);
    for (int fd : pending_)
        ::close(fd);
    pending_.clear();
}

void
HttpServer::acceptLoop()
{
    while (running_.load()) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (running_.load() && errno == EINTR)
                continue;
            break; // stop() closed the listen socket
        }
        {
            std::lock_guard<std::mutex> lock(queueMu_);
            pending_.push_back(fd);
        }
        queueCv_.notify_one();
    }
}

void
HttpServer::workerLoop()
{
    for (;;) {
        int fd = -1;
        {
            std::unique_lock<std::mutex> lock(queueMu_);
            queueCv_.wait(lock, [this] {
                return !pending_.empty() || !running_.load();
            });
            if (pending_.empty())
                return; // shutting down
            fd = pending_.back();
            pending_.pop_back();
        }
        handleConnection(fd);
        ::close(fd);
    }
}

void
HttpServer::handleConnection(int fd)
{
    // Read until the end of the request head (or limits hit).
    std::string req;
    char buf[2048];
    while (req.size() < kMaxRequestBytes &&
           req.find("\r\n\r\n") == std::string::npos) {
        pollfd pfd{fd, POLLIN, 0};
        if (::poll(&pfd, 1, 2000) <= 0)
            break;
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        req.append(buf, static_cast<std::size_t>(n));
    }

    const std::size_t eol = req.find("\r\n");
    if (eol == std::string::npos) {
        sendAll(fd, serialize({400, "text/plain; charset=utf-8",
                               "bad request\n"}));
        return;
    }
    const std::vector<std::string> parts =
        split(req.substr(0, eol), ' ');
    if (parts.size() != 3) {
        sendAll(fd, serialize({400, "text/plain; charset=utf-8",
                               "bad request\n"}));
        return;
    }
    if (parts[0] != "GET") {
        sendAll(fd, serialize({405, "text/plain; charset=utf-8",
                               "GET only\n"}));
        return;
    }
    std::string path = parts[1];
    const std::size_t query = path.find('?');
    if (query != std::string::npos)
        path.resize(query);

    const auto it = routes_.find(path);
    if (it == routes_.end()) {
        // Built-in liveness endpoint: answers as soon as the socket
        // machinery is up, independent of what the application
        // routed. An explicit route("/healthz", ...) overrides it.
        if (path == "/healthz") {
            sendAll(fd, serialize({200, "text/plain; charset=utf-8",
                                   "ok\n"}));
            return;
        }
        sendAll(fd, serialize({404, "text/plain; charset=utf-8",
                               "not found\n"}));
        return;
    }
    sendAll(fd, serialize(it->second()));
}

std::string
httpGet(const std::string& host, int port, const std::string& path,
        int* status, int timeout_ms)
{
    if (status)
        *status = 0;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "";

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        return "";
    }
    timeval tv{timeout_ms / 1000, (timeout_ms % 1000) * 1000};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return "";
    }

    sendAll(fd, "GET " + path + " HTTP/1.1\r\nHost: " + host +
                    "\r\nConnection: close\r\n\r\n");

    std::string resp;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        resp.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);

    // Parse "HTTP/1.1 NNN ..." + headers; body follows the blank line.
    if (!startsWith(resp, "HTTP/"))
        return "";
    const std::size_t sp = resp.find(' ');
    if (status && sp != std::string::npos)
        *status = std::atoi(resp.c_str() + sp + 1);
    const std::size_t body = resp.find("\r\n\r\n");
    return body == std::string::npos ? "" : resp.substr(body + 4);
}

} // namespace cpullm
