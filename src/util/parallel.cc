#include "util/parallel.h"

#include <atomic>
#include <thread>
#include <vector>

namespace cpullm {

namespace {

std::atomic<std::size_t> max_threads{0};

} // namespace

std::size_t
hardwareThreads()
{
    const std::size_t cap = max_threads.load(std::memory_order_relaxed);
    std::size_t hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    if (cap != 0 && cap < hw)
        hw = cap;
    return hw;
}

void
setMaxThreads(std::size_t n)
{
    max_threads.store(n, std::memory_order_relaxed);
}

void
parallelFor(std::size_t begin, std::size_t end,
            const std::function<void(std::size_t)>& fn, std::size_t grain)
{
    if (end <= begin)
        return;
    const std::size_t total = end - begin;
    const std::size_t workers = hardwareThreads();
    if (workers <= 1 || total <= grain) {
        for (std::size_t i = begin; i < end; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{begin};
    auto worker = [&] {
        for (;;) {
            const std::size_t start =
                next.fetch_add(grain, std::memory_order_relaxed);
            if (start >= end)
                return;
            const std::size_t stop = std::min(start + grain, end);
            for (std::size_t i = start; i < stop; ++i)
                fn(i);
        }
    };

    std::vector<std::thread> threads;
    const std::size_t spawn = std::min(workers - 1, total / grain);
    threads.reserve(spawn);
    for (std::size_t t = 0; t < spawn; ++t)
        threads.emplace_back(worker);
    worker();
    for (auto& t : threads)
        t.join();
}

} // namespace cpullm
