#include "util/parallel.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace cpullm {

namespace {

std::atomic<std::size_t> max_threads{0};
std::atomic<int> backend{static_cast<int>(ParallelBackend::Pool)};

} // namespace

std::size_t
hardwareThreads()
{
    const std::size_t cap = max_threads.load(std::memory_order_relaxed);
    std::size_t hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    if (cap != 0 && cap < hw)
        hw = cap;
    return hw;
}

void
setMaxThreads(std::size_t n)
{
    max_threads.store(n, std::memory_order_relaxed);
}

void
setParallelBackend(ParallelBackend b)
{
    backend.store(static_cast<int>(b), std::memory_order_relaxed);
}

ParallelBackend
parallelBackend()
{
    return static_cast<ParallelBackend>(
        backend.load(std::memory_order_relaxed));
}

bool
applyThreadsEnv(std::string* err_value)
{
    const char* v = std::getenv("CPULLM_THREADS");
    if (v == nullptr || *v == '\0')
        return true;
    char* end = nullptr;
    const long n = std::strtol(v, &end, 10);
    if (end == v || *end != '\0' || n < 0) {
        if (err_value != nullptr)
            *err_value = v;
        return false;
    }
    setMaxThreads(static_cast<std::size_t>(n));
    return true;
}

void
parallelForSpawn(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn,
                 std::size_t grain)
{
    if (end <= begin)
        return;
    if (grain == 0)
        grain = 1;
    const std::size_t total = end - begin;
    const std::size_t workers = hardwareThreads();
    if (workers <= 1 || total <= grain) {
        for (std::size_t i = begin; i < end; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{begin};
    std::atomic<bool> failed{false};
    std::mutex err_mu;
    std::exception_ptr error;
    auto worker = [&] {
        for (;;) {
            const std::size_t start =
                next.fetch_add(grain, std::memory_order_relaxed);
            if (start >= end)
                return;
            const std::size_t stop = std::min(start + grain, end);
            if (failed.load(std::memory_order_relaxed))
                continue; // drain the range without running the body
            try {
                for (std::size_t i = start; i < stop; ++i)
                    fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lk(err_mu);
                if (!failed.exchange(true))
                    error = std::current_exception();
            }
        }
    };

    std::vector<std::thread> threads;
    const std::size_t spawn = std::min(workers - 1, total / grain);
    threads.reserve(spawn);
    for (std::size_t t = 0; t < spawn; ++t)
        threads.emplace_back(worker);
    worker();
    for (auto& t : threads)
        t.join();
    if (failed.load(std::memory_order_acquire))
        std::rethrow_exception(error);
}

void
parallelFor(std::size_t begin, std::size_t end,
            const std::function<void(std::size_t)>& fn, std::size_t grain)
{
    if (parallelBackend() == ParallelBackend::Spawn) {
        parallelForSpawn(begin, end, fn, grain);
        return;
    }
    ThreadPool::instance().parallelFor(begin, end, fn, grain);
}

} // namespace cpullm
