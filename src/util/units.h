#ifndef CPULLM_UTIL_UNITS_H
#define CPULLM_UTIL_UNITS_H

/**
 * @file
 * Unit helpers: byte sizes, rates, and times used throughout the
 * hardware models. Conventions:
 *  - byte capacities are std::uint64_t in bytes,
 *  - bandwidths are double in bytes/second,
 *  - compute rates are double in FLOP/s,
 *  - times are double in seconds.
 */

#include <cstdint>
#include <string>

namespace cpullm {

inline constexpr std::uint64_t KiB = 1024ULL;
inline constexpr std::uint64_t MiB = 1024ULL * KiB;
inline constexpr std::uint64_t GiB = 1024ULL * MiB;
inline constexpr std::uint64_t TiB = 1024ULL * GiB;

/** Decimal units, used for bandwidths and FLOP rates as vendors quote. */
inline constexpr double KB = 1e3;
inline constexpr double MB = 1e6;
inline constexpr double GB = 1e9;
inline constexpr double TB = 1e12;

inline constexpr double KFLOPS = 1e3;
inline constexpr double MFLOPS = 1e6;
inline constexpr double GFLOPS = 1e9;
inline constexpr double TFLOPS = 1e12;

inline constexpr double GHz = 1e9;
inline constexpr double MHz = 1e6;

inline constexpr double USEC = 1e-6;
inline constexpr double MSEC = 1e-3;

/** Render a byte count as a human-friendly string, e.g. "12.6 GiB". */
std::string formatBytes(std::uint64_t bytes);

/** Render a bandwidth (bytes/s) as e.g. "588.0 GB/s". */
std::string formatBandwidth(double bytes_per_sec);

/** Render a time in seconds as e.g. "12.5 ms". */
std::string formatTime(double seconds);

/** Render a FLOP rate as e.g. "206.4 TFLOPS". */
std::string formatFlops(double flops_per_sec);

} // namespace cpullm

#endif // CPULLM_UTIL_UNITS_H
