#ifndef CPULLM_UTIL_PARALLEL_H
#define CPULLM_UTIL_PARALLEL_H

/**
 * @file
 * Host-side parallelism for the *functional* kernels (the emulated AMX
 * and AVX-512 GEMMs). This is about making the emulator usable on the
 * development machine; it has no bearing on simulated timing, which the
 * perf models compute analytically.
 */

#include <cstddef>
#include <functional>

namespace cpullm {

/** Number of worker threads parallelFor will use (>= 1). */
std::size_t hardwareThreads();

/** Cap the number of threads parallelFor uses (0 = hardware default). */
void setMaxThreads(std::size_t n);

/**
 * Run fn(i) for i in [begin, end) across worker threads, blocking
 * until all iterations complete. Falls back to serial execution for
 * small ranges.
 *
 * @param grain minimum iterations per task before splitting further.
 */
void parallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn,
                 std::size_t grain = 1);

} // namespace cpullm

#endif // CPULLM_UTIL_PARALLEL_H
