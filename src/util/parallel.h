#ifndef CPULLM_UTIL_PARALLEL_H
#define CPULLM_UTIL_PARALLEL_H

/**
 * @file
 * Host-side parallelism for the *functional* kernels (the emulated AMX
 * and AVX-512 GEMMs). This is about making the emulator usable on the
 * development machine; it has no bearing on simulated timing, which the
 * perf models compute analytically.
 *
 * parallelFor dispatches to one of two backends:
 *  - Pool (default): the persistent work-stealing ThreadPool — loops
 *    reuse long-lived workers instead of spawning threads.
 *  - Spawn: the original spawn-per-call implementation, kept so the
 *    host benchmarks can measure exactly what the pool buys.
 *
 * Both backends capture the first exception a loop body throws and
 * rethrow it on the calling thread.
 */

#include <cstddef>
#include <functional>
#include <string>

namespace cpullm {

/** Number of worker threads parallelFor will use (>= 1). */
std::size_t hardwareThreads();

/** Cap the number of threads parallelFor uses (0 = hardware default). */
void setMaxThreads(std::size_t n);

/** Which implementation executes parallelFor. */
enum class ParallelBackend {
    Pool,  ///< persistent work-stealing ThreadPool (default)
    Spawn, ///< spawn-and-join threads per call (A/B baseline)
};

/** Select the parallelFor backend (process-wide, takes effect on the
 *  next call). */
void setParallelBackend(ParallelBackend backend);

/** Currently selected backend. */
ParallelBackend parallelBackend();

/**
 * Run fn(i) for i in [begin, end) across worker threads, blocking
 * until all iterations complete. Falls back to serial execution for
 * small ranges. If the body throws, the first exception is rethrown
 * on the calling thread once the loop has drained.
 *
 * @param grain minimum iterations per task before splitting further.
 */
void parallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn,
                 std::size_t grain = 1);

/**
 * The Spawn backend, callable directly (the host GEMM benchmark uses
 * it as the pre-pool baseline regardless of the selected backend).
 */
void parallelForSpawn(std::size_t begin, std::size_t end,
                      const std::function<void(std::size_t)>& fn,
                      std::size_t grain = 1);

/**
 * Apply the CPULLM_THREADS environment variable (if set and non-empty)
 * to setMaxThreads. Returns false without side effects when the value
 * is not a non-negative integer, storing the offending text in
 * @p err_value (if non-null) so CLIs can hard-error (exit 2) on it.
 */
bool applyThreadsEnv(std::string* err_value = nullptr);

} // namespace cpullm

#endif // CPULLM_UTIL_PARALLEL_H
