#include "util/table.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "util/logging.h"

namespace cpullm {

namespace {

bool
looksNumeric(const std::string& s)
{
    if (s.empty())
        return false;
    bool digit = false;
    for (char c : s) {
        if (std::isdigit(static_cast<unsigned char>(c))) {
            digit = true;
        } else if (c != '.' && c != '-' && c != '+' && c != 'e' &&
                   c != 'E' && c != '%' && c != 'x') {
            return false;
        }
    }
    return digit;
}

} // namespace

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    CPULLM_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    CPULLM_ASSERT(cells.size() == headers_.size(),
                  "row arity ", cells.size(), " != header arity ",
                  headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream& os) const
{
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto rule = [&] {
        os << '+';
        for (size_t c = 0; c < width.size(); ++c)
            os << std::string(width[c] + 2, '-') << '+';
        os << '\n';
    };
    auto emit = [&](const std::vector<std::string>& row, bool header) {
        os << '|';
        for (size_t c = 0; c < row.size(); ++c) {
            const bool right = !header && looksNumeric(row[c]);
            const size_t pad = width[c] - row[c].size();
            os << ' ';
            if (right)
                os << std::string(pad, ' ') << row[c];
            else
                os << row[c] << std::string(pad, ' ');
            os << " |";
        }
        os << '\n';
    };

    if (!caption_.empty())
        os << caption_ << '\n';
    rule();
    emit(headers_, true);
    rule();
    for (const auto& row : rows_)
        emit(row, false);
    rule();
}

std::string
Table::str() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

} // namespace cpullm
