#include "util/thread_pool.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <deque>
#include <exception>
#include <memory>

#include "util/parallel.h"
#include "util/thread_registry.h"

namespace cpullm {

namespace {

/** Set while a thread executes a parallelFor body (the submitter
 *  during its participation, workers while running a job), so nested
 *  loops run inline instead of deadlocking the pool. */
thread_local bool tls_in_parallel = false;

/** RAII toggle for tls_in_parallel. */
struct ParallelRegionMark
{
    ParallelRegionMark() { tls_in_parallel = true; }
    ~ParallelRegionMark() { tls_in_parallel = false; }
};

} // namespace

/** One parallelFor invocation: chunk deques plus completion state. */
struct ThreadPool::Job
{
    struct Chunk
    {
        std::size_t begin;
        std::size_t end;
    };

    struct Lane
    {
        std::mutex mu;
        std::deque<Chunk> chunks;
    };

    const std::function<void(std::size_t)>* fn = nullptr;
    std::unique_ptr<Lane[]> lanes;
    std::size_t laneCount = 0;
    /** Submitter's logical stack, re-pushed on each worker for the
     *  job's duration so profiler samples on pool threads attribute
     *  to the op that spawned the loop. */
    int frameDepth = 0;
    char frames[threadreg::kMaxDepth][threadreg::kFrameChars];
    /** Chunks not yet fully executed. */
    std::atomic<std::size_t> pending{0};
    /** Participants currently inside runJob (guards Job lifetime). */
    std::atomic<std::size_t> active{0};
    std::atomic<bool> failed{false};
    std::mutex errMu;
    std::exception_ptr error;
};

ThreadPool&
ThreadPool::instance()
{
    static ThreadPool pool;
    return pool;
}

ThreadPool::ThreadPool()
{
    std::size_t hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    workers_.reserve(hw - 1);
    for (std::size_t id = 0; id + 1 < hw; ++id)
        workers_.emplace_back([this, id] { workerLoop(id); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_)
        t.join();
}

bool
ThreadPool::inParallelRegion()
{
    return tls_in_parallel;
}

ThreadPool::Stats
ThreadPool::stats() const
{
    Stats s;
    s.poolSize = workers_.size();
    s.parallelOps = parallelOps_.load(std::memory_order_relaxed);
    s.serialOps = serialOps_.load(std::memory_order_relaxed);
    s.inlineOps = inlineOps_.load(std::memory_order_relaxed);
    s.tasks = tasks_.load(std::memory_order_relaxed);
    s.chunks = chunks_.load(std::memory_order_relaxed);
    s.steals = steals_.load(std::memory_order_relaxed);
    return s;
}

void
ThreadPool::serialRun(std::size_t begin, std::size_t end,
                      const std::function<void(std::size_t)>& fn)
{
    for (std::size_t i = begin; i < end; ++i)
        fn(i);
}

bool
ThreadPool::takeChunk(Job& job, std::size_t lane, std::size_t* begin,
                      std::size_t* end)
{
    {
        Job::Lane& own = job.lanes[lane];
        std::lock_guard<std::mutex> lk(own.mu);
        if (!own.chunks.empty()) {
            *begin = own.chunks.front().begin;
            *end = own.chunks.front().end;
            own.chunks.pop_front();
            return true;
        }
    }
    for (std::size_t off = 1; off < job.laneCount; ++off) {
        Job::Lane& victim = job.lanes[(lane + off) % job.laneCount];
        std::lock_guard<std::mutex> lk(victim.mu);
        if (!victim.chunks.empty()) {
            *begin = victim.chunks.back().begin;
            *end = victim.chunks.back().end;
            victim.chunks.pop_back();
            steals_.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
    }
    return false;
}

void
ThreadPool::runJob(Job& job, std::size_t lane)
{
    ParallelRegionMark mark;
    std::size_t begin = 0, end = 0;
    while (takeChunk(job, lane, &begin, &end)) {
        // After a failure remaining chunks are drained without
        // executing the body so the loop still terminates promptly.
        if (!job.failed.load(std::memory_order_relaxed)) {
            try {
                for (std::size_t i = begin; i < end; ++i)
                    (*job.fn)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lk(job.errMu);
                if (!job.failed.exchange(true))
                    job.error = std::current_exception();
            }
        }
        job.pending.fetch_sub(1, std::memory_order_acq_rel);
    }
}

void
ThreadPool::workerLoop(std::size_t id)
{
    // Lane 0 is the calling thread; workers are lanes id + 1. The
    // registry name shows up in profiler collapsed stacks and
    // flight-recorder dumps.
    char name[16];
    std::snprintf(name, sizeof(name), "pool%zu", id + 1);
    threadreg::registerCurrentThread(name);
    std::uint64_t seen = 0;
    for (;;) {
        Job* job = nullptr;
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_.wait(lk, [&] {
                return stop_ || (job_ != nullptr && generation_ != seen);
            });
            if (stop_)
                return;
            seen = generation_;
            // Lanes beyond the job's width sit this one out, which is
            // how setMaxThreads() keeps pooled loops within its cap.
            if (id + 1 < job_->laneCount) {
                job = job_;
                job->active.fetch_add(1, std::memory_order_relaxed);
            }
        }
        if (job == nullptr)
            continue;
        for (int i = 0; i < job->frameDepth; ++i)
            threadreg::pushFrame(job->frames[i]);
        runJob(*job, id + 1);
        for (int i = 0; i < job->frameDepth; ++i)
            threadreg::popFrame();
        {
            std::lock_guard<std::mutex> lk(mu_);
            job->active.fetch_sub(1, std::memory_order_acq_rel);
        }
        doneCv_.notify_all();
    }
}

void
ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                        const std::function<void(std::size_t)>& fn,
                        std::size_t grain)
{
    if (end <= begin)
        return;
    if (grain == 0)
        grain = 1;
    const std::size_t total = end - begin;

    if (tls_in_parallel) {
        inlineOps_.fetch_add(1, std::memory_order_relaxed);
        serialRun(begin, end, fn);
        return;
    }

    const std::size_t width = hardwareThreads();
    if (width <= 1 || total <= grain || workers_.empty()) {
        serialOps_.fetch_add(1, std::memory_order_relaxed);
        serialRun(begin, end, fn);
        return;
    }

    // One pooled loop at a time; a second concurrent top-level caller
    // degrades to serial rather than queueing behind the first.
    if (!submitMu_.try_lock()) {
        serialOps_.fetch_add(1, std::memory_order_relaxed);
        serialRun(begin, end, fn);
        return;
    }
    std::lock_guard<std::mutex> submitGuard(submitMu_, std::adopt_lock);

    const std::size_t nchunks = (total + grain - 1) / grain;
    const std::size_t lanes =
        std::min({width, workers_.size() + 1, nchunks});

    Job job;
    job.fn = &fn;
    job.laneCount = lanes;
    if (threadreg::ThreadState* ts = threadreg::current()) {
        int d = ts->depth.load(std::memory_order_relaxed);
        if (d > threadreg::kMaxDepth)
            d = threadreg::kMaxDepth;
        job.frameDepth = d;
        for (int i = 0; i < d; ++i)
            std::memcpy(job.frames[i], ts->frames[i],
                        threadreg::kFrameChars);
    }
    job.lanes = std::make_unique<Job::Lane[]>(lanes);
    std::size_t chunk_begin = begin;
    for (std::size_t c = 0; c < nchunks; ++c) {
        const std::size_t chunk_end =
            std::min(chunk_begin + grain, end);
        job.lanes[c % lanes].chunks.push_back({chunk_begin, chunk_end});
        chunk_begin = chunk_end;
    }
    job.pending.store(nchunks, std::memory_order_relaxed);

    parallelOps_.fetch_add(1, std::memory_order_relaxed);
    tasks_.fetch_add(total, std::memory_order_relaxed);
    chunks_.fetch_add(nchunks, std::memory_order_relaxed);

    {
        std::lock_guard<std::mutex> lk(mu_);
        job_ = &job;
        ++generation_;
    }
    cv_.notify_all();

    runJob(job, 0);

    // Unpublish, then wait until every registered worker has left the
    // job before the stack frame (and Job) goes away. Workers register
    // under mu_ while job_ still points here, so after the unpublish
    // the active count can only fall.
    {
        std::unique_lock<std::mutex> lk(mu_);
        job_ = nullptr;
        doneCv_.wait(lk, [&] {
            return job.active.load(std::memory_order_acquire) == 0 &&
                   job.pending.load(std::memory_order_acquire) == 0;
        });
    }

    if (job.failed.load(std::memory_order_acquire))
        std::rethrow_exception(job.error);
}

} // namespace cpullm
