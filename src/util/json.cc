#include "util/json.h"

#include <cctype>
#include <cstdio>

namespace cpullm {

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
jsonQuote(const std::string& s)
{
    return "\"" + jsonEscape(s) + "\"";
}

namespace {

/** Recursive-descent JSON syntax checker over a string view. */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string& text) : s_(text) {}

    bool
    check()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool
    value()
    {
        if (depth_ > kMaxDepth || pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool
    object()
    {
        ++depth_;
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            --depth_;
            return true;
        }
        while (true) {
            skipWs();
            if (peek() != '"' || !string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                --depth_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++depth_;
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            --depth_;
            return true;
        }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                --depth_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        ++pos_; // '"'
        while (pos_ < s_.size()) {
            const unsigned char c =
                static_cast<unsigned char>(s_[pos_]);
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c < 0x20)
                return false; // raw control char
            if (c == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
                const char e = s_[pos_];
                if (e == 'u') {
                    for (int i = 1; i <= 4; ++i) {
                        if (pos_ + i >= s_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                s_[pos_ + i])))
                            return false;
                    }
                    pos_ += 4;
                } else if (e != '"' && e != '\\' && e != '/' &&
                           e != 'b' && e != 'f' && e != 'n' &&
                           e != 'r' && e != 't') {
                    return false;
                }
            }
            ++pos_;
        }
        return false; // unterminated
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (!digit())
            return false;
        if (s_[pos_] == '0') {
            ++pos_;
        } else {
            while (digit())
                ++pos_;
        }
        if (peek() == '.') {
            ++pos_;
            if (!digit())
                return false;
            while (digit())
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!digit())
                return false;
            while (digit())
                ++pos_;
        }
        return pos_ > start;
    }

    bool
    literal(const char* word)
    {
        for (const char* p = word; *p; ++p, ++pos_) {
            if (pos_ >= s_.size() || s_[pos_] != *p)
                return false;
        }
        return true;
    }

    bool
    digit() const
    {
        return pos_ < s_.size() &&
               std::isdigit(static_cast<unsigned char>(s_[pos_]));
    }

    char
    peek() const
    {
        return pos_ < s_.size() ? s_[pos_] : '\0';
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    static constexpr int kMaxDepth = 512;

    const std::string& s_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

bool
jsonValid(const std::string& text)
{
    return JsonChecker(text).check();
}

} // namespace cpullm
