#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/logging.h"

namespace cpullm {

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
jsonQuote(const std::string& s)
{
    return "\"" + jsonEscape(s) + "\"";
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

namespace {

/** Recursive-descent JSON syntax checker over a string view. */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string& text) : s_(text) {}

    bool
    check()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool
    value()
    {
        if (depth_ > kMaxDepth || pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool
    object()
    {
        ++depth_;
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            --depth_;
            return true;
        }
        while (true) {
            skipWs();
            if (peek() != '"' || !string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                --depth_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++depth_;
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            --depth_;
            return true;
        }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                --depth_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        ++pos_; // '"'
        while (pos_ < s_.size()) {
            const unsigned char c =
                static_cast<unsigned char>(s_[pos_]);
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c < 0x20)
                return false; // raw control char
            if (c == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
                const char e = s_[pos_];
                if (e == 'u') {
                    for (int i = 1; i <= 4; ++i) {
                        if (pos_ + i >= s_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                s_[pos_ + i])))
                            return false;
                    }
                    pos_ += 4;
                } else if (e != '"' && e != '\\' && e != '/' &&
                           e != 'b' && e != 'f' && e != 'n' &&
                           e != 'r' && e != 't') {
                    return false;
                }
            }
            ++pos_;
        }
        return false; // unterminated
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (!digit())
            return false;
        if (s_[pos_] == '0') {
            ++pos_;
        } else {
            while (digit())
                ++pos_;
        }
        if (peek() == '.') {
            ++pos_;
            if (!digit())
                return false;
            while (digit())
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!digit())
                return false;
            while (digit())
                ++pos_;
        }
        return pos_ > start;
    }

    bool
    literal(const char* word)
    {
        for (const char* p = word; *p; ++p, ++pos_) {
            if (pos_ >= s_.size() || s_[pos_] != *p)
                return false;
        }
        return true;
    }

    bool
    digit() const
    {
        return pos_ < s_.size() &&
               std::isdigit(static_cast<unsigned char>(s_[pos_]));
    }

    char
    peek() const
    {
        return pos_ < s_.size() ? s_[pos_] : '\0';
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    static constexpr int kMaxDepth = 512;

    const std::string& s_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

bool
jsonValid(const std::string& text)
{
    return JsonChecker(text).check();
}

bool
JsonValue::asBool() const
{
    CPULLM_ASSERT(type_ == Type::Bool, "JSON value is not a bool");
    return bool_;
}

double
JsonValue::asNumber() const
{
    CPULLM_ASSERT(type_ == Type::Number, "JSON value is not a number");
    return number_;
}

const std::string&
JsonValue::asString() const
{
    CPULLM_ASSERT(type_ == Type::String, "JSON value is not a string");
    return string_;
}

const std::vector<JsonValue>&
JsonValue::asArray() const
{
    CPULLM_ASSERT(type_ == Type::Array, "JSON value is not an array");
    return array_;
}

const std::vector<std::pair<std::string, JsonValue>>&
JsonValue::asObject() const
{
    CPULLM_ASSERT(type_ == Type::Object, "JSON value is not an object");
    return object_;
}

const JsonValue*
JsonValue::find(const std::string& key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto& [k, v] : object_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

double
JsonValue::numberOr(const std::string& key, double fallback) const
{
    const JsonValue* v = find(key);
    return v && v->isNumber() ? v->number_ : fallback;
}

std::string
JsonValue::stringOr(const std::string& key,
                    const std::string& fallback) const
{
    const JsonValue* v = find(key);
    return v && v->isString() ? v->string_ : fallback;
}

/**
 * Recursive-descent parser building a JsonValue tree. Mirrors the
 * checker's grammar; \uXXXX escapes decode to UTF-8 (surrogate pairs
 * included).
 */
class JsonParser
{
  public:
    explicit JsonParser(const std::string& text) : s_(text) {}

    bool
    parse(JsonValue* out)
    {
        skipWs();
        if (!value(out))
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool
    value(JsonValue* out)
    {
        if (depth_ > kMaxDepth || pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{':
            return object(out);
          case '[':
            return array(out);
          case '"':
            out->type_ = JsonValue::Type::String;
            return string(&out->string_);
          case 't':
            out->type_ = JsonValue::Type::Bool;
            out->bool_ = true;
            return literal("true");
          case 'f':
            out->type_ = JsonValue::Type::Bool;
            out->bool_ = false;
            return literal("false");
          case 'n':
            out->type_ = JsonValue::Type::Null;
            return literal("null");
          default:
            out->type_ = JsonValue::Type::Number;
            return number(&out->number_);
        }
    }

    bool
    object(JsonValue* out)
    {
        out->type_ = JsonValue::Type::Object;
        ++depth_;
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            --depth_;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (peek() != '"' || !string(&key))
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            JsonValue member;
            if (!value(&member))
                return false;
            out->object_.emplace_back(std::move(key),
                                      std::move(member));
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                --depth_;
                return true;
            }
            return false;
        }
    }

    bool
    array(JsonValue* out)
    {
        out->type_ = JsonValue::Type::Array;
        ++depth_;
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            --depth_;
            return true;
        }
        while (true) {
            skipWs();
            JsonValue element;
            if (!value(&element))
                return false;
            out->array_.push_back(std::move(element));
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                --depth_;
                return true;
            }
            return false;
        }
    }

    bool
    hex4(unsigned* out)
    {
        unsigned v = 0;
        for (int i = 0; i < 4; ++i) {
            if (pos_ >= s_.size())
                return false;
            const char c = s_[pos_++];
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= static_cast<unsigned>(c - 'A' + 10);
            else
                return false;
        }
        *out = v;
        return true;
    }

    static void
    appendUtf8(std::string* out, unsigned cp)
    {
        if (cp < 0x80) {
            *out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            *out += static_cast<char>(0xC0 | (cp >> 6));
            *out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            *out += static_cast<char>(0xE0 | (cp >> 12));
            *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            *out += static_cast<char>(0xF0 | (cp >> 18));
            *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    bool
    string(std::string* out)
    {
        ++pos_; // '"'
        while (pos_ < s_.size()) {
            const unsigned char c =
                static_cast<unsigned char>(s_[pos_]);
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c < 0x20)
                return false;
            if (c != '\\') {
                *out += static_cast<char>(c);
                ++pos_;
                continue;
            }
            ++pos_;
            if (pos_ >= s_.size())
                return false;
            const char e = s_[pos_++];
            switch (e) {
              case '"':
              case '\\':
              case '/':
                *out += e;
                break;
              case 'b':
                *out += '\b';
                break;
              case 'f':
                *out += '\f';
                break;
              case 'n':
                *out += '\n';
                break;
              case 'r':
                *out += '\r';
                break;
              case 't':
                *out += '\t';
                break;
              case 'u': {
                unsigned cp = 0;
                if (!hex4(&cp))
                    return false;
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    // High surrogate; require the low half.
                    if (pos_ + 1 >= s_.size() || s_[pos_] != '\\' ||
                        s_[pos_ + 1] != 'u')
                        return false;
                    pos_ += 2;
                    unsigned lo = 0;
                    if (!hex4(&lo) || lo < 0xDC00 || lo > 0xDFFF)
                        return false;
                    cp = 0x10000 + ((cp - 0xD800) << 10) +
                         (lo - 0xDC00);
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                return false;
            }
        }
        return false; // unterminated
    }

    bool
    number(double* out)
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (!digit())
            return false;
        if (s_[pos_] == '0') {
            ++pos_;
        } else {
            while (digit())
                ++pos_;
        }
        if (peek() == '.') {
            ++pos_;
            if (!digit())
                return false;
            while (digit())
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!digit())
                return false;
            while (digit())
                ++pos_;
        }
        *out = std::strtod(s_.c_str() + start, nullptr);
        return pos_ > start;
    }

    bool
    literal(const char* word)
    {
        for (const char* p = word; *p; ++p, ++pos_) {
            if (pos_ >= s_.size() || s_[pos_] != *p)
                return false;
        }
        return true;
    }

    bool
    digit() const
    {
        return pos_ < s_.size() &&
               std::isdigit(static_cast<unsigned char>(s_[pos_]));
    }

    char
    peek() const
    {
        return pos_ < s_.size() ? s_[pos_] : '\0';
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    static constexpr int kMaxDepth = 512;

    const std::string& s_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

bool
JsonValue::parse(const std::string& text, JsonValue* out)
{
    JsonValue parsed;
    if (!JsonParser(text).parse(&parsed)) {
        *out = JsonValue();
        return false;
    }
    *out = std::move(parsed);
    return true;
}

} // namespace cpullm
