#ifndef CPULLM_UTIL_STRING_UTIL_H
#define CPULLM_UTIL_STRING_UTIL_H

/**
 * @file
 * Small string helpers shared across the framework.
 */

#include <string>
#include <vector>

namespace cpullm {

/** printf-style formatting into a std::string. */
std::string strformat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Split @p s on @p sep (single char), keeping empty fields. */
std::vector<std::string> split(const std::string& s, char sep);

/** Join @p parts with @p sep. */
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

/** Lower-case ASCII copy. */
std::string toLower(std::string s);

/** True if @p s starts with @p prefix. */
bool startsWith(const std::string& s, const std::string& prefix);

/** Format a double with @p digits significant decimals, trimming zeros. */
std::string formatNumber(double v, int digits = 3);

} // namespace cpullm

#endif // CPULLM_UTIL_STRING_UTIL_H
