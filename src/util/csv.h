#ifndef CPULLM_UTIL_CSV_H
#define CPULLM_UTIL_CSV_H

/**
 * @file
 * Minimal CSV emission so benchmark harnesses can dump figure data for
 * external plotting. Fields containing separators/quotes are quoted per
 * RFC 4180.
 */

#include <ostream>
#include <string>
#include <vector>

namespace cpullm {

/** Accumulates rows and writes RFC-4180 CSV. */
class CsvWriter
{
  public:
    explicit CsvWriter(std::vector<std::string> headers);

    /** Append a row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Write all rows (with header) to the stream. */
    void write(std::ostream& os) const;

    /** Write to a file path; returns false on I/O failure. */
    bool writeFile(const std::string& path) const;

    size_t rowCount() const { return rows_.size(); }

    /** Quote a single field per RFC 4180 if needed. */
    static std::string escape(const std::string& field);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace cpullm

#endif // CPULLM_UTIL_CSV_H
