#ifndef CPULLM_UTIL_TABLE_H
#define CPULLM_UTIL_TABLE_H

/**
 * @file
 * Console table rendering used by the benchmark harness to print
 * paper-style rows/series.
 */

#include <ostream>
#include <string>
#include <vector>

namespace cpullm {

/**
 * A simple aligned console table. Columns are sized to the widest
 * cell; numeric-looking cells are right-aligned, text left-aligned.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Optional caption printed above the table. */
    void setCaption(std::string caption) { caption_ = std::move(caption); }

    /** Append a row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Render to a stream. */
    void print(std::ostream& os) const;

    /** Render to a string. */
    std::string str() const;

    size_t rowCount() const { return rows_.size(); }
    size_t columnCount() const { return headers_.size(); }

  private:
    std::string caption_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace cpullm

#endif // CPULLM_UTIL_TABLE_H
