#include "obs/counters.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cpullm {
namespace obs {

namespace {

/** num/den with NaN on zero or non-finite denominators. */
double
safeRatio(double num, double den)
{
    if (!std::isfinite(num) || !std::isfinite(den) || den == 0.0)
        return std::numeric_limits<double>::quiet_NaN();
    return num / den;
}

} // namespace

CounterMetrics
deriveCounterMetrics(double instructions, double cycles,
                     double llc_misses, double llc_references,
                     double bytes, double seconds, double tokens)
{
    CounterMetrics m;
    m.ipc = safeRatio(instructions, cycles);
    m.llcMpki = safeRatio(llc_misses * 1000.0, instructions);
    m.llcMissRate = safeRatio(llc_misses, llc_references);
    m.gbps = safeRatio(bytes, seconds * 1e9);
    m.instructionsPerToken = safeRatio(instructions, tokens);
    m.bytesPerToken = safeRatio(bytes, tokens);
    return m;
}

double
estimateDramBytes(const pmu::PmuCounts& counts)
{
    const double imc = counts.imcReadBytes + counts.imcWriteBytes;
    if (std::isfinite(imc))
        return imc;
    return counts.llcMisses * kCacheLineBytes;
}

CounterMetrics
deriveCounterMetrics(const pmu::PmuCounts& counts, double tokens)
{
    return deriveCounterMetrics(
        counts.instructions, counts.cycles, counts.llcMisses,
        counts.llcReferences, estimateDramBytes(counts),
        counts.wallNs / 1e9, tokens);
}

double
modeledCycles(double core_utilization, double cores_used,
              double core_frequency_hz, double seconds)
{
    return core_utilization * cores_used * core_frequency_hz *
           seconds;
}

CounterRates
ratesFromCounters(const perf::Counters& counters, double flops,
                  double dram_bytes, double act_bytes, double seconds)
{
    CounterRates r;
    const double dt = std::max(seconds, 1e-12);
    r.dramGBps = dram_bytes / dt / 1e9;
    r.actGBps = act_bytes / dt / 1e9;
    r.gflops = flops / dt / 1e9;
    r.llcMpki = counters.mpki();
    r.coreUtil = counters.coreUtilization;
    r.upiUtil = counters.upiUtilization;
    r.upiGBps = counters.upiBytes / dt / 1e9;
    return r;
}

void
emitCounterRates(Tracer& tracer, std::int64_t pid, double time,
                 const CounterRates& rates)
{
    tracer.counter("bandwidth_GBps", pid, time,
                   {{"dram", rates.dramGBps},
                    {"activations", rates.actGBps},
                    {"upi", rates.upiGBps}});
    tracer.counter("compute_GFLOPs", pid, time,
                   {{"achieved", rates.gflops}});
    tracer.counter("llc_mpki", pid, time, {{"mpki", rates.llcMpki}});
    tracer.counter("utilization", pid, time,
                   {{"core", rates.coreUtil},
                    {"upi", rates.upiUtil}});
}

void
emitPhaseCounters(Tracer& tracer, std::int64_t pid, double start,
                  double end, const perf::Counters& counters,
                  double flops, double dram_bytes, double act_bytes)
{
    emitCounterRates(tracer, pid, start,
                     ratesFromCounters(counters, flops, dram_bytes,
                                       act_bytes, end - start));
}

void
closeCounters(Tracer& tracer, std::int64_t pid, double time)
{
    emitCounterRates(tracer, pid, time, CounterRates{});
}

} // namespace obs
} // namespace cpullm
