#include "obs/counters.h"

#include <algorithm>

namespace cpullm {
namespace obs {

CounterRates
ratesFromCounters(const perf::Counters& counters, double flops,
                  double dram_bytes, double act_bytes, double seconds)
{
    CounterRates r;
    const double dt = std::max(seconds, 1e-12);
    r.dramGBps = dram_bytes / dt / 1e9;
    r.actGBps = act_bytes / dt / 1e9;
    r.gflops = flops / dt / 1e9;
    r.llcMpki = counters.mpki();
    r.coreUtil = counters.coreUtilization;
    r.upiUtil = counters.upiUtilization;
    r.upiGBps = counters.upiBytes / dt / 1e9;
    return r;
}

void
emitCounterRates(Tracer& tracer, std::int64_t pid, double time,
                 const CounterRates& rates)
{
    tracer.counter("bandwidth_GBps", pid, time,
                   {{"dram", rates.dramGBps},
                    {"activations", rates.actGBps},
                    {"upi", rates.upiGBps}});
    tracer.counter("compute_GFLOPs", pid, time,
                   {{"achieved", rates.gflops}});
    tracer.counter("llc_mpki", pid, time, {{"mpki", rates.llcMpki}});
    tracer.counter("utilization", pid, time,
                   {{"core", rates.coreUtil},
                    {"upi", rates.upiUtil}});
}

void
emitPhaseCounters(Tracer& tracer, std::int64_t pid, double start,
                  double end, const perf::Counters& counters,
                  double flops, double dram_bytes, double act_bytes)
{
    emitCounterRates(tracer, pid, start,
                     ratesFromCounters(counters, flops, dram_bytes,
                                       act_bytes, end - start));
}

void
closeCounters(Tracer& tracer, std::int64_t pid, double time)
{
    emitCounterRates(tracer, pid, time, CounterRates{});
}

} // namespace obs
} // namespace cpullm
