#ifndef CPULLM_OBS_PROFILER_H
#define CPULLM_OBS_PROFILER_H

/**
 * @file
 * Continuous sampling profiler over *logical stacks*.
 *
 * A POSIX interval timer (ITIMER_PROF) delivers SIGPROF to whichever
 * thread is currently burning CPU; the handler copies that thread's
 * own threadreg logical stack ("prefill; layer op frames" pushed by
 * the instrumented engine/model/pool code) into a per-thread
 * lock-free sample ring. Because the handler only ever reads the
 * interrupted thread's *own* stack there is no cross-thread race to
 * reason about — just a signal interrupting its thread, handled with
 * relaxed atomics + signal fences in threadreg. The handler is
 * async-signal-safe and allocation-free: a bounded memcpy of at most
 * kMaxDepth fixed-width frames.
 *
 * ITIMER_PROF counts CPU time (user+system) consumed by the process,
 * so each retired sample represents 1/hz CPU-seconds on the sampled
 * thread — idle threads are never sampled and never pay. collect()
 * drains the rings off the hot path and folds samples into
 * - collapsed-stack lines ("thread;frame0;frame1 count") loadable by
 *   any flamegraph viewer,
 * - per-op self/total sample counts (self = op on top of the stack),
 * - `cpullm_prof_*` Prometheus gauges for the serve /metrics page.
 *
 * The measured profile is comparable against the *analytical*
 * attribution tree (obs/attribution.h): frameKind() buckets frame
 * names into the same op kinds (gemm/attention/elementwise/
 * embedding), and `cpullm run --profile-hz` asserts the two agree on
 * the #1 op kind.
 */

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

namespace cpullm {
namespace obs {
namespace prof {

/** Profiler configuration. */
struct Options
{
    /** Sampling frequency. 97 Hz default: prime, so periodic program
     *  phases do not alias with the sampling clock. */
    double hz = 97.0;
    /** Per-thread sample-ring capacity (rounded up to a power of 2);
     *  sized so collect() at ~1 Hz never loses samples at 1 kHz. */
    std::size_t ringSlots = 1 << 13;
};

/** Per-op sample counts folded out of the rings. */
struct OpStat
{
    std::uint64_t self = 0;  ///< samples with this op on top
    std::uint64_t total = 0; ///< samples with this op anywhere on stack
};

/** Cumulative folded profile returned by Profiler::collect(). */
struct FoldedProfile
{
    double hz = 0.0;
    std::uint64_t samples = 0;      ///< folded samples
    std::uint64_t dropped = 0;      ///< lost to ring wraparound / tears
    std::uint64_t unregistered = 0; ///< ticks on unregistered threads

    /** "thread;frame0;frame1" -> sample count (collapsed stacks). */
    std::map<std::string, std::uint64_t> stacks;
    /** frame name -> self/total sample counts. */
    std::map<std::string, OpStat> ops;

    /** Self CPU-seconds attributed to @p op (self / hz). */
    double selfSeconds(const std::string& op) const;
    /** Frame with the most self samples, or "" when empty. */
    std::string topOpBySelf() const;
    /** Op kind (per frameKind) with the most self samples, or "". */
    std::string topKindBySelf() const;
};

/**
 * The process-wide profiler. One instance: SIGPROF and ITIMER_PROF
 * are process-level resources.
 */
class Profiler
{
  public:
    static Profiler& instance();

    /**
     * Install the SIGPROF handler, allocate sample rings for all
     * currently registered threads (late registrants get theirs via
     * the threadreg register sink), and arm the interval timer.
     * Returns false if already running or the timer cannot be armed.
     */
    bool start(const Options& opt);

    /**
     * Disarm the timer and stop sampling. The handler stays installed
     * but inert (a late-delivered SIGPROF must not kill the process,
     * which is the default disposition). Pending samples remain
     * collectable.
     */
    void stop();

    bool running() const noexcept;
    double hz() const noexcept;

    /**
     * Drain all per-thread rings and fold the new samples into the
     * cumulative profile, a copy of which is returned. Callable while
     * running (continuous mode) or after stop(). Not signal-safe;
     * serialized internally.
     */
    FoldedProfile collect();

    /** Forget the cumulative profile (rings keep their backlog). */
    void reset();

  private:
    Profiler() = default;
};

/**
 * Write the profile as collapsed-stack lines ("stack count\n"),
 * ready for inferno/flamegraph.pl or speedscope. False on I/O error.
 */
bool writeCollapsedFile(const std::string& path, const FoldedProfile& p);

/** Parse a collapsed-stack file back (hz is unknown: left 0). */
bool parseCollapsedFile(const std::string& path, FoldedProfile* out,
                        std::string* err = nullptr);
bool parseCollapsed(const std::string& text, FoldedProfile* out,
                    std::string* err = nullptr);

/**
 * Append `cpullm_prof_*` gauges (samples/dropped/hz plus per-op self
 * seconds for the top @p top_ops ops) in Prometheus exposition format.
 */
void writePromGauges(std::ostream& os, const FoldedProfile& p,
                     std::size_t top_ops = 10);

/**
 * Bucket an instrumented frame name into the attribution tree's op
 * kind: "gemm", "attention", "elementwise", "embedding" — or "" for
 * frames outside the model's op vocabulary (phases, pool scopes).
 */
const char* frameKind(const std::string& frame);

} // namespace prof
} // namespace obs
} // namespace cpullm

#endif // CPULLM_OBS_PROFILER_H
