#ifndef CPULLM_OBS_RUN_REPORT_H
#define CPULLM_OBS_RUN_REPORT_H

/**
 * @file
 * Machine-readable experiment reports. One RunReport serializes to a
 * single JSON line (JSONL: one experiment per line, append-friendly)
 * capturing what ran (platform, model, workload), what was measured
 * (flat numeric metrics: timings, throughputs, counters, latency
 * percentiles) and free-form string context. Downstream analysis —
 * the analytical-forecasting direction of PAPERS.md arXiv:2508.00904
 * — consumes these instead of scraping console tables.
 */

#include <map>
#include <ostream>
#include <string>

#include "perf/timing.h"
#include "perf/workload.h"

namespace cpullm {
namespace obs {

struct Attribution;

/** One experiment's machine-readable summary. See file docs. */
struct RunReport
{
    /** Report schema version (bump on incompatible change). */
    static constexpr int kSchemaVersion = 1;

    std::string kind;     ///< "single_request" / "serving" / ...
    std::string platform; ///< device label ("SPR Max9468 ...")
    std::string model;    ///< model spec name ("opt-13b")

    /** Workload knobs (batch/prompt/gen lengths, dtype names). */
    std::int64_t batch = 0;
    std::int64_t promptLen = 0;
    std::int64_t genLen = 0;
    std::string dtype;

    /** Flat numeric metrics ("ttft_p99_s", "dram_gb", ...). */
    std::map<std::string, double> metrics;
    /** Extra string-valued context ("scheduler", "placement", ...). */
    std::map<std::string, std::string> info;
    /**
     * Pre-serialized bottleneck-attribution JSON object (see
     * obs/attribution.h), embedded verbatim as the "attribution"
     * field when non-empty.
     */
    std::string attribution;

    /** Record the workload knobs. */
    void setWorkload(const perf::Workload& w);

    /** Embed @p a as the report's attribution object. */
    void setAttribution(const Attribution& a);

    /** Record the standard single-request timing metrics. */
    void addTiming(const perf::InferenceTiming& t);

    /** Record the modeled hardware counters. */
    void addCounters(const perf::Counters& c);

    /** Serialize as one JSON line (no trailing newline). */
    std::string toJson() const;

    /** Append toJson() + '\n' to @p path; false on I/O failure. */
    bool appendJsonlFile(const std::string& path) const;
};

/**
 * Single-request report from the standard timing outputs, with the
 * run's bottleneck attribution embedded when provided.
 */
RunReport makeInferenceReport(const std::string& platform_label,
                              const std::string& model_name,
                              const perf::Workload& w,
                              const perf::InferenceTiming& timing,
                              const perf::Counters& counters,
                              const Attribution* attribution = nullptr);

} // namespace obs
} // namespace cpullm

#endif // CPULLM_OBS_RUN_REPORT_H
