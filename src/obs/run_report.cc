#include "obs/run_report.h"

#include <fstream>

#include "obs/attribution.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace cpullm {
namespace obs {

void
RunReport::setWorkload(const perf::Workload& w)
{
    batch = w.batch;
    promptLen = w.promptLen;
    genLen = w.genLen;
    dtype = dtypeName(w.dtype);
}

void
RunReport::addTiming(const perf::InferenceTiming& t)
{
    metrics["ttft_s"] = t.ttft;
    metrics["tpot_s"] = t.tpot;
    metrics["e2e_s"] = t.e2eLatency;
    metrics["tokens_per_s"] = t.totalThroughput;
    metrics["prefill_tokens_per_s"] = t.prefillThroughput;
    metrics["decode_tokens_per_s"] = t.decodeThroughput;
}

void
RunReport::setAttribution(const Attribution& a)
{
    attribution = a.toJson();
}

void
RunReport::addCounters(const perf::Counters& c)
{
    metrics["llc_mpki"] = c.mpki();
    metrics["core_utilization"] = c.coreUtilization;
    metrics["upi_utilization"] = c.upiUtilization;
    metrics["upi_gb"] = c.upiBytes / 1e9;
    metrics["instructions_g"] = c.instructions / 1e9;
}

std::string
RunReport::toJson() const
{
    std::string out = strformat(
        "{\"schema\":%d,\"kind\":%s,\"platform\":%s,\"model\":%s,"
        "\"batch\":%lld,\"prompt\":%lld,\"gen\":%lld,\"dtype\":%s",
        kSchemaVersion, jsonQuote(kind).c_str(),
        jsonQuote(platform).c_str(), jsonQuote(model).c_str(),
        static_cast<long long>(batch),
        static_cast<long long>(promptLen),
        static_cast<long long>(genLen), jsonQuote(dtype).c_str());
    if (!metrics.empty()) {
        out += ",\"metrics\":{";
        bool first = true;
        for (const auto& [k, v] : metrics) {
            if (!first)
                out += ',';
            first = false;
            out += jsonQuote(k) + ":" + jsonNumber(v);
        }
        out += '}';
    }
    if (!info.empty()) {
        out += ",\"info\":{";
        bool first = true;
        for (const auto& [k, v] : info) {
            if (!first)
                out += ',';
            first = false;
            out += jsonQuote(k) + ":" + jsonQuote(v);
        }
        out += '}';
    }
    if (!attribution.empty())
        out += ",\"attribution\":" + attribution;
    out += '}';
    return out;
}

bool
RunReport::appendJsonlFile(const std::string& path) const
{
    std::ofstream ofs(path, std::ios::app);
    if (!ofs) {
        warn("could not open '", path, "' for appending");
        return false;
    }
    ofs << toJson() << '\n';
    return static_cast<bool>(ofs);
}

RunReport
makeInferenceReport(const std::string& platform_label,
                    const std::string& model_name,
                    const perf::Workload& w,
                    const perf::InferenceTiming& timing,
                    const perf::Counters& counters,
                    const Attribution* attribution)
{
    RunReport r;
    r.kind = "single_request";
    r.platform = platform_label;
    r.model = model_name;
    r.setWorkload(w);
    r.addTiming(timing);
    r.addCounters(counters);
    if (attribution)
        r.setAttribution(*attribution);
    return r;
}

} // namespace obs
} // namespace cpullm
