#include "obs/prometheus.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <set>

#include "util/logging.h"
#include "util/string_util.h"

namespace cpullm {
namespace obs {

const char* const kPromContentType =
    "text/plain; version=0.0.4; charset=utf-8";

namespace {

bool
nameStartChar(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':';
}

bool
nameChar(char c)
{
    return nameStartChar(c) ||
           std::isdigit(static_cast<unsigned char>(c));
}

bool
labelStartChar(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
labelChar(char c)
{
    return labelStartChar(c) ||
           std::isdigit(static_cast<unsigned char>(c));
}

std::string
promValue(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    return strformat("%.9g", v);
}

/** Escape HELP text (backslash and line-feed, per the format spec). */
std::string
escapeHelp(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

} // namespace

std::string
promMetricName(const std::string& raw, const std::string& prefix)
{
    std::string name;
    name.reserve(raw.size());
    for (char c : raw)
        name += nameChar(c) ? c : '_';
    if (name.empty())
        name = "_";
    if (!nameStartChar(name[0]))
        name.insert(name.begin(), '_');
    if (prefix.empty())
        return name;
    return prefix + "_" + name;
}

std::string
promEscapeLabel(const std::string& value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

void
writePromHeader(std::ostream& os, const std::string& name,
                const std::string& help, const std::string& type)
{
    if (!help.empty())
        os << "# HELP " << name << ' ' << escapeHelp(help) << '\n';
    os << "# TYPE " << name << ' ' << type << '\n';
}

void
writePromSample(
    std::ostream& os, const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& labels,
    double value)
{
    os << name;
    if (!labels.empty()) {
        os << '{';
        bool first = true;
        for (const auto& [k, v] : labels) {
            if (!first)
                os << ',';
            first = false;
            os << k << "=\"" << promEscapeLabel(v) << '"';
        }
        os << '}';
    }
    os << ' ' << promValue(value) << '\n';
}

void
writePrometheus(std::ostream& os, const stats::Registry& reg,
                const PromWriteOptions& opt)
{
    for (const auto& name : reg.names()) {
        const std::string base = promMetricName(name, opt.prefix);
        const std::string& desc = reg.description(name);
        switch (reg.kind(name)) {
          case stats::StatKind::Scalar: {
            writePromHeader(os, base, desc, "gauge");
            writePromSample(os, base, {}, reg.getScalar(name).value());
            break;
          }
          case stats::StatKind::Distribution: {
            const auto& d = reg.getDistribution(name);
            const std::pair<const char*, double> parts[] = {
                {"_mean", d.mean()},
                {"_min", d.min()},
                {"_max", d.max()},
                {"_stddev", d.stddev()},
                {"_count", static_cast<double>(d.count())},
            };
            for (const auto& [suffix, value] : parts) {
                writePromHeader(os, base + suffix,
                                suffix == std::string("_mean")
                                    ? desc
                                    : std::string(),
                                "gauge");
                writePromSample(os, base + suffix, {}, value);
            }
            break;
          }
          case stats::StatKind::Histogram: {
            const auto& h = reg.getHistogram(name);
            writePromHeader(os, base, desc, "histogram");
            const std::size_t nb = h.buckets().size();
            const std::size_t step =
                std::max<std::size_t>(
                    1, (nb + opt.maxHistogramBuckets - 1) /
                           opt.maxHistogramBuckets);
            // `le` is inclusive-cumulative; underflow samples (< lo)
            // are below every emitted boundary, overflow samples only
            // land in +Inf.
            std::uint64_t cum = h.underflow();
            for (std::size_t i = 0; i < nb; ++i) {
                cum += h.buckets()[i];
                if ((i + 1) % step == 0 || i + 1 == nb) {
                    writePromSample(
                        os, base + "_bucket",
                        {{"le", strformat("%.9g", h.bucketHigh(i))}},
                        static_cast<double>(cum));
                }
            }
            writePromSample(os, base + "_bucket", {{"le", "+Inf"}},
                            static_cast<double>(h.count()));
            writePromSample(os, base + "_sum", {}, h.sum());
            writePromSample(os, base + "_count", {},
                            static_cast<double>(h.count()));
            break;
          }
        }
    }
}

bool
writePrometheusFile(const std::string& path,
                    const stats::Registry& reg,
                    const PromWriteOptions& opt)
{
    std::ofstream ofs(path);
    if (!ofs) {
        warn("could not open '", path, "' for writing");
        return false;
    }
    writePrometheus(ofs, reg, opt);
    return static_cast<bool>(ofs);
}

std::string
PromSample::label(const std::string& key) const
{
    for (const auto& [k, v] : labels) {
        if (k == key)
            return v;
    }
    return "";
}

const PromSample*
PromDoc::find(const std::string& name, const std::string& key,
              const std::string& value) const
{
    for (const auto& s : samples) {
        if (s.name != name)
            continue;
        if (!key.empty() && s.label(key) != value)
            continue;
        return &s;
    }
    return nullptr;
}

namespace {

/** Line-level recursive-descent parser state. */
struct LineParser
{
    const std::string& line;
    std::size_t pos = 0;

    explicit LineParser(const std::string& l) : line(l) {}

    bool done() const { return pos >= line.size(); }
    char peek() const { return done() ? '\0' : line[pos]; }

    void
    skipSpace()
    {
        while (!done() && (line[pos] == ' ' || line[pos] == '\t'))
            ++pos;
    }

    bool
    readName(std::string* out, bool label_grammar)
    {
        const std::size_t start = pos;
        auto first = label_grammar ? labelStartChar : nameStartChar;
        auto rest = label_grammar ? labelChar : nameChar;
        if (done() || !first(line[pos]))
            return false;
        ++pos;
        while (!done() && rest(line[pos]))
            ++pos;
        *out = line.substr(start, pos - start);
        return true;
    }

    /** Quoted, escaped label value. */
    bool
    readLabelValue(std::string* out)
    {
        if (peek() != '"')
            return false;
        ++pos;
        out->clear();
        while (!done() && line[pos] != '"') {
            char c = line[pos];
            if (c == '\\') {
                ++pos;
                if (done())
                    return false;
                const char e = line[pos];
                if (e == '\\')
                    c = '\\';
                else if (e == '"')
                    c = '"';
                else if (e == 'n')
                    c = '\n';
                else
                    return false; // unknown escape
            }
            *out += c;
            ++pos;
        }
        if (done())
            return false; // unterminated
        ++pos;            // closing quote
        return true;
    }

    bool
    readValue(double* out)
    {
        const std::size_t start = pos;
        while (!done() && line[pos] != ' ' && line[pos] != '\t')
            ++pos;
        const std::string tok = line.substr(start, pos - start);
        if (tok.empty())
            return false;
        if (tok == "NaN") {
            *out = std::numeric_limits<double>::quiet_NaN();
            return true;
        }
        if (tok == "+Inf" || tok == "Inf") {
            *out = std::numeric_limits<double>::infinity();
            return true;
        }
        if (tok == "-Inf") {
            *out = -std::numeric_limits<double>::infinity();
            return true;
        }
        char* end = nullptr;
        *out = std::strtod(tok.c_str(), &end);
        return end && *end == '\0';
    }
};

void
addError(std::vector<std::string>* errors, std::size_t lineno,
         const std::string& msg)
{
    if (errors)
        errors->push_back(strformat("line %zu: %s", lineno,
                                    msg.c_str()));
}

/** Label set minus `le`, serialized as a histogram-series group key. */
std::string
groupKey(const PromSample& s)
{
    std::string key;
    for (const auto& [k, v] : s.labels) {
        if (k != "le")
            key += k + "=" + v + ";";
    }
    return key;
}

} // namespace

bool
promParse(const std::string& text, PromDoc* doc,
          std::vector<std::string>* errors)
{
    bool ok = true;
    std::set<std::string> sampled; // metric names with samples seen
    std::size_t lineno = 0;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t end = text.find('\n', start);
        if (end == std::string::npos) {
            if (start == text.size())
                break;
            end = text.size();
        }
        std::string line = text.substr(start, end - start);
        start = end + 1;
        ++lineno;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;

        if (line[0] == '#') {
            const bool is_help = startsWith(line, "# HELP ");
            const bool is_type = startsWith(line, "# TYPE ");
            if (!is_help && !is_type)
                continue; // plain comment
            LineParser p(line);
            p.pos = 7;
            std::string name;
            if (!p.readName(&name, /*label_grammar=*/false)) {
                addError(errors, lineno, "bad metric name in " +
                                             line.substr(0, 6));
                ok = false;
                continue;
            }
            if (is_help) {
                p.skipSpace();
                doc->helps[name] = line.substr(p.pos);
                continue;
            }
            p.skipSpace();
            std::string type;
            p.readName(&type, /*label_grammar=*/true);
            static const std::set<std::string> kTypes = {
                "counter", "gauge", "histogram", "summary",
                "untyped"};
            if (!kTypes.count(type) || !p.done()) {
                addError(errors, lineno,
                         "bad TYPE '" + type + "' for " + name);
                ok = false;
                continue;
            }
            if (doc->types.count(name)) {
                addError(errors, lineno,
                         "duplicate TYPE for " + name);
                ok = false;
                continue;
            }
            // TYPE must precede every sample of its family
            // (including the _bucket/_sum/_count series).
            for (const char* suffix :
                 {"", "_bucket", "_sum", "_count"}) {
                if (sampled.count(name + suffix)) {
                    addError(errors, lineno,
                             "TYPE for " + name +
                                 " after its samples");
                    ok = false;
                }
            }
            doc->types[name] = type;
            continue;
        }

        // Sample line: name[{labels}] value [timestamp]
        LineParser p(line);
        PromSample s;
        if (!p.readName(&s.name, /*label_grammar=*/false)) {
            addError(errors, lineno, "bad metric name");
            ok = false;
            continue;
        }
        if (p.peek() == '{') {
            ++p.pos;
            bool bad = false;
            while (p.peek() != '}') {
                std::string k, v;
                if (!p.readName(&k, /*label_grammar=*/true) ||
                    p.peek() != '=') {
                    bad = true;
                    break;
                }
                ++p.pos;
                if (!p.readLabelValue(&v)) {
                    bad = true;
                    break;
                }
                s.labels.emplace_back(std::move(k), std::move(v));
                if (p.peek() == ',')
                    ++p.pos; // trailing comma is legal
                else if (p.peek() != '}') {
                    bad = true;
                    break;
                }
            }
            if (bad || p.peek() != '}') {
                addError(errors, lineno, "bad label set");
                ok = false;
                continue;
            }
            ++p.pos;
        }
        p.skipSpace();
        if (!p.readValue(&s.value)) {
            addError(errors, lineno, "bad sample value");
            ok = false;
            continue;
        }
        p.skipSpace();
        if (!p.done()) {
            // Optional timestamp: integer milliseconds.
            std::size_t ts_start = p.pos;
            if (p.peek() == '-')
                ++p.pos;
            while (!p.done() &&
                   std::isdigit(static_cast<unsigned char>(p.peek())))
                ++p.pos;
            p.skipSpace();
            if (p.pos == ts_start || !p.done()) {
                addError(errors, lineno, "trailing garbage");
                ok = false;
                continue;
            }
        }
        sampled.insert(s.name);
        doc->samples.push_back(std::move(s));
    }

    // Histogram-family invariants.
    for (const auto& [name, type] : doc->types) {
        if (type != "histogram")
            continue;
        // series group (labels minus le) -> le-sorted buckets
        std::map<std::string,
                 std::vector<std::pair<double, double>>> groups;
        for (const auto& s : doc->samples) {
            if (s.name != name + "_bucket")
                continue;
            const std::string le = s.label("le");
            double bound;
            if (le == "+Inf") {
                bound = std::numeric_limits<double>::infinity();
            } else {
                char* end = nullptr;
                bound = std::strtod(le.c_str(), &end);
                if (le.empty() || !end || *end != '\0') {
                    addError(errors, 0,
                             name + "_bucket has bad le '" + le +
                                 "'");
                    ok = false;
                    continue;
                }
            }
            groups[groupKey(s)].emplace_back(bound, s.value);
        }
        if (groups.empty()) {
            addError(errors, 0,
                     "histogram " + name + " has no _bucket series");
            ok = false;
            continue;
        }
        for (auto& [key, buckets] : groups) {
            std::sort(buckets.begin(), buckets.end());
            bool has_inf = false;
            double prev = -1.0;
            for (const auto& [bound, cum] : buckets) {
                if (std::isinf(bound))
                    has_inf = true;
                if (cum < prev) {
                    addError(errors, 0,
                             "histogram " + name +
                                 " buckets not monotone");
                    ok = false;
                    break;
                }
                prev = cum;
            }
            if (!has_inf) {
                addError(errors, 0,
                         "histogram " + name +
                             " missing le=\"+Inf\" bucket");
                ok = false;
            } else {
                const PromSample* count =
                    doc->find(name + "_count");
                if (count &&
                    count->value != buckets.back().second) {
                    addError(errors, 0,
                             "histogram " + name +
                                 " _count != +Inf bucket");
                    ok = false;
                }
            }
        }
    }
    return ok;
}

bool
promValid(const std::string& text, std::vector<std::string>* errors)
{
    PromDoc doc;
    return promParse(text, &doc, errors);
}

} // namespace obs
} // namespace cpullm
