#ifndef CPULLM_OBS_SPAN_H
#define CPULLM_OBS_SPAN_H

/**
 * @file
 * Span-scoped tracing for the simulation stack.
 *
 * A Tracer collects spans (named, categorized time ranges on named
 * tracks), instant markers, and counter samples, and exports the lot
 * as Chrome-trace JSON loadable in Perfetto / chrome://tracing. All
 * timestamps are *simulated* seconds: components pass the virtual
 * times their timing models produce, so one trace can interleave the
 * serving simulator, the engine's operator timeline, and the GPU
 * offload model on a common clock. Nested spans on the same track
 * render stacked in Perfetto as long as children lie inside their
 * parent's time range.
 *
 * Span is an RAII handle: annotate it while open, close it with an
 * explicit end time, or let the destructor close it at the tracer's
 * current clock. Collection is thread-safe; handles stay valid while
 * other threads append.
 */

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace cpullm {
namespace obs {

/** One horizontal track (Perfetto: process/thread pair). */
struct TrackId
{
    std::int64_t pid = 1;
    std::int64_t tid = 1;
};

/** A closed (or still-open) span as stored by the tracer. */
struct SpanRecord
{
    std::string name;
    std::string category;
    TrackId track;
    double start = 0.0; ///< seconds
    double end = 0.0;   ///< seconds; == start while open
    bool open = false;
    /** Key/value annotations, exported into the event's "args". */
    std::vector<std::pair<std::string, std::string>> args;
};

/** One sample of a (possibly multi-series) counter track. */
struct CounterSample
{
    std::string name; ///< counter track name ("dram_bandwidth")
    std::int64_t pid = 1;
    double time = 0.0;
    std::vector<std::pair<std::string, double>> series;
};

/** A zero-duration marker. */
struct InstantRecord
{
    std::string name;
    TrackId track;
    double time = 0.0;
};

class Tracer;

/**
 * Move-only RAII handle to an open span. A default-constructed Span
 * is inert (safe to annotate/close: no-ops), so call sites can trace
 * unconditionally against an optional tracer.
 */
class Span
{
  public:
    Span() = default;
    Span(Span&& o) noexcept;
    Span& operator=(Span&& o) noexcept;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span();

    /** Attach a string/numeric annotation (exported via "args"). */
    void annotate(const std::string& key, const std::string& value);
    void annotate(const std::string& key, double value);

    /** Close at @p end_time (must be >= the span's start). */
    void close(double end_time);

    /** Close at the tracer's current clock. */
    void close();

    bool active() const { return tracer_ != nullptr; }

  private:
    friend class Tracer;
    Span(Tracer* tracer, std::size_t index)
        : tracer_(tracer), index_(index)
    {
    }

    Tracer* tracer_ = nullptr;
    std::size_t index_ = 0;
};

/** Thread-safe collector of spans/instants/counters; see file docs. */
class Tracer
{
  public:
    Tracer() = default;
    Tracer(const Tracer&) = delete;
    Tracer& operator=(const Tracer&) = delete;

    /**
     * Register (or fetch) the track named @p process / @p thread.
     * Tracks are created on first use; the pid/tid numbering is an
     * implementation detail, the names are what Perfetto shows.
     */
    TrackId track(const std::string& process,
                  const std::string& thread);

    /** @name Simulated clock (used when spans close implicitly) */
    /// @{
    void setTime(double t);
    double time() const;
    /// @}

    /** Open a span starting at @p start_time. */
    Span begin(const std::string& name, const std::string& category,
               TrackId track, double start_time);

    /** Open a span starting at the current clock. */
    Span begin(const std::string& name, const std::string& category,
               TrackId track);

    /** Record an already-closed span. */
    void complete(const std::string& name, const std::string& category,
                  TrackId track, double start, double duration);

    /** Record a zero-duration marker. */
    void instant(const std::string& name, TrackId track, double time);

    /** Record one sample of a single-series counter track. */
    void counter(const std::string& name, std::int64_t pid,
                 double time, double value);

    /** Record one sample of a multi-series counter track. */
    void counter(const std::string& name, std::int64_t pid,
                 double time,
                 std::vector<std::pair<std::string, double>> series);

    /** @name Introspection (tests, report generation) */
    /// @{
    std::size_t spanCount() const;
    std::size_t openSpanCount() const;
    /** Snapshot of the recorded spans (copies under the lock). */
    std::vector<SpanRecord> spans() const;
    std::vector<CounterSample> counterSamples() const;
    std::vector<InstantRecord> instants() const;
    /** Spans recorded on @p track, in recording order. */
    std::vector<SpanRecord> spansOnTrack(TrackId track) const;
    /** Number of distinct (pid, tid) tracks registered. */
    std::size_t trackCount() const;
    /// @}

    /**
     * Write the whole trace as Chrome-trace JSON: process/thread
     * metadata ("M") first, then complete ("X"), instant ("i") and
     * counter ("C") events sorted by timestamp. Open spans are
     * exported as if closed at the tracer clock.
     */
    void writeChromeTrace(std::ostream& os) const;

    /** Write to a file path; false on I/O failure. */
    bool writeChromeTraceFile(const std::string& path) const;

  private:
    friend class Span;

    void annotateSpan(std::size_t index, const std::string& key,
                      const std::string& value);
    void closeSpan(std::size_t index, double end_time);
    void closeSpanAtClock(std::size_t index);

    mutable std::mutex mu_;
    double now_ = 0.0;
    std::vector<SpanRecord> spans_;
    std::vector<CounterSample> counters_;
    std::vector<InstantRecord> instants_;
    /** process name -> pid (1-based, creation order). */
    std::map<std::string, std::int64_t> processes_;
    /** (pid, thread name) -> tid (1-based per process). */
    std::map<std::pair<std::int64_t, std::string>, std::int64_t>
        threads_;
};

} // namespace obs
} // namespace cpullm

#endif // CPULLM_OBS_SPAN_H
