#ifndef CPULLM_OBS_METRICS_H
#define CPULLM_OBS_METRICS_H

/**
 * @file
 * Machine-readable export of a stats::Registry: JSON (one object,
 * keyed by statistic name) and CSV (one row per statistic). Scalars
 * export value/samples, distributions mean/min/max/stddev/n, and
 * histograms interpolated p50/p95/p99 quantiles plus bucket counts —
 * the serving-simulator tail-latency surface.
 */

#include <ostream>
#include <string>

#include "stats/stats.h"

namespace cpullm {
namespace obs {

/** Write @p reg as a single JSON object. */
void writeRegistryJson(std::ostream& os, const stats::Registry& reg);

/** Write @p reg as CSV (header + one row per statistic). */
void writeRegistryCsv(std::ostream& os, const stats::Registry& reg);

/** File variants; false on I/O failure. */
bool writeRegistryJsonFile(const std::string& path,
                           const stats::Registry& reg);
bool writeRegistryCsvFile(const std::string& path,
                          const stats::Registry& reg);

/**
 * Snapshot the process-wide host thread-pool counters (util's
 * ThreadPool) into @p reg as host.pool.* scalars. Lives here rather
 * than in util because the stats library sits above util in the
 * dependency order.
 */
void recordHostPoolStats(stats::Registry& reg);

/**
 * Snapshot the process-wide fused-attention kernel counters
 * (gemm::attnStats) into @p reg as host.attn.* scalars.
 */
void recordHostAttnStats(stats::Registry& reg);

} // namespace obs
} // namespace cpullm

#endif // CPULLM_OBS_METRICS_H
