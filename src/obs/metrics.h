#ifndef CPULLM_OBS_METRICS_H
#define CPULLM_OBS_METRICS_H

/**
 * @file
 * Machine-readable export of a stats::Registry: JSON (one object,
 * keyed by statistic name) and CSV (one row per statistic). Scalars
 * export value/samples, distributions mean/min/max/stddev/n, and
 * histograms interpolated p50/p95/p99 quantiles plus bucket counts —
 * the serving-simulator tail-latency surface.
 */

#include <ostream>
#include <string>

#include "stats/stats.h"

namespace cpullm {
namespace obs {

/** Write @p reg as a single JSON object. */
void writeRegistryJson(std::ostream& os, const stats::Registry& reg);

/** Write @p reg as CSV (header + one row per statistic). */
void writeRegistryCsv(std::ostream& os, const stats::Registry& reg);

/** File variants; false on I/O failure. */
bool writeRegistryJsonFile(const std::string& path,
                           const stats::Registry& reg);
bool writeRegistryCsvFile(const std::string& path,
                          const stats::Registry& reg);

/**
 * Snapshot the process-wide host thread-pool counters (util's
 * ThreadPool) into @p reg as host.pool.* scalars. Lives here rather
 * than in util because the stats library sits above util in the
 * dependency order.
 */
void recordHostPoolStats(stats::Registry& reg);

/**
 * Snapshot the process-wide fused-attention kernel counters
 * (gemm::attnStats) into @p reg as host.attn.* scalars.
 */
void recordHostAttnStats(stats::Registry& reg);

/**
 * Snapshot the measured hardware-counter session (obs::pmu::Session)
 * into @p reg as host.pmu.* scalars. Non-destructive: slots stay
 * accumulated. Emitted keys:
 *
 *  - host.pmu.backend_perf    1 when the perf_event backend is live,
 *                             0 under the software fallback
 *  - host.pmu.hw_events       hardware events open per thread group
 *                             (0 in PMU-less VMs and under soft)
 *  - host.pmu.thread_groups   per-thread counter groups open
 *  - host.pmu.<slot>.*        per accumulated scope slot (prefill,
 *                             decode, ...): wall_ms, task_clock_ms,
 *                             cycles, instructions, llc_misses,
 *                             llc_references, branch_misses,
 *                             page_faults, context_switches, and the
 *                             derived ipc / llc_mpki / gbps.
 *
 * Fields the active backend cannot measure are stored as NaN and
 * export as JSON null / empty CSV cells. No-op when the session is
 * inactive and no slots were accumulated.
 */
void recordHostPmuStats(stats::Registry& reg);

/**
 * Snapshot the process-wide quantized-weight counters
 * (gemm::quantStats) into @p reg as host.quant.* scalars: prepared
 * tensor counts and footprints (packed vs the BF16 tiles they
 * replace, plus the derived bytes_ratio), fused-kernel call/byte
 * counts, and the dequantization error aggregates (max_abs_err,
 * rms_err). No-op when no quantized weights were prepared.
 */
void recordHostQuantStats(stats::Registry& reg);

} // namespace obs
} // namespace cpullm

#endif // CPULLM_OBS_METRICS_H
