#include "obs/attribution.h"

#include <algorithm>
#include <cmath>

#include "util/json.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/units.h"

namespace cpullm {
namespace obs {

namespace {

/** Category label of an operator kind (attribution-local copy). */
const char*
opKindName(perf::OpKind kind)
{
    switch (kind) {
      case perf::OpKind::Gemm:
        return "gemm";
      case perf::OpKind::Attention:
        return "attention";
      case perf::OpKind::Elementwise:
        return "elementwise";
      case perf::OpKind::Embedding:
        return "embedding";
    }
    return "unknown";
}

/** Layer-group name of an operator ("layer3", else "model"). */
std::string
layerGroup(const std::string& op_name)
{
    if (op_name.rfind("layer", 0) == 0) {
        const auto dot = op_name.find('.');
        if (dot != std::string::npos)
            return op_name.substr(0, dot);
    }
    return "model";
}

/** Child named @p name, appended with @p kind if absent. */
AttributionNode&
childOrAdd(AttributionNode& parent, const std::string& name,
           const std::string& kind)
{
    for (auto& c : parent.children) {
        if (c.name == name)
            return c;
    }
    AttributionNode node;
    node.name = name;
    node.kind = kind;
    parent.children.push_back(std::move(node));
    return parent.children.back();
}

} // namespace

const char*
boundByName(BoundBy b)
{
    switch (b) {
      case BoundBy::Compute:
        return "compute";
      case BoundBy::Memory:
        return "memory";
      case BoundBy::Overhead:
        return "overhead";
      case BoundBy::Transfer:
        return "transfer";
    }
    return "unknown";
}

const AttributionNode*
AttributionNode::child(const std::string& child_name) const
{
    for (const auto& c : children) {
        if (c.name == child_name)
            return &c;
    }
    return nullptr;
}

void
AttributionNode::accumulateOp(const perf::OpDesc& op,
                              const perf::CpuPerfModel::OpCost& cost)
{
    computeTime += cost.compute;
    memoryTime += cost.memory;
    overheadTime += cost.overhead;

    // The op's visible time is max(compute, memory) + overhead; the
    // max part belongs to whichever resource bounded it.
    const double visible = cost.total - cost.overhead;
    if (cost.memoryBound)
        boundMemory += visible;
    else
        boundCompute += visible;
    boundOverhead += cost.overhead;
    time += cost.total;

    flops += op.flops;
    dramBytes += static_cast<double>(op.weightBytes + op.kvBytes);
    actBytes += static_cast<double>(op.actBytes);
}

void
AttributionNode::finalize()
{
    if (!children.empty()) {
        time = computeTime = memoryTime = overheadTime = 0.0;
        boundCompute = boundMemory = boundOverhead = boundTransfer =
            0.0;
        flops = dramBytes = actBytes = 0.0;
        for (auto& c : children) {
            c.finalize();
            time += c.time;
            computeTime += c.computeTime;
            memoryTime += c.memoryTime;
            overheadTime += c.overheadTime;
            boundCompute += c.boundCompute;
            boundMemory += c.boundMemory;
            boundOverhead += c.boundOverhead;
            boundTransfer += c.boundTransfer;
            flops += c.flops;
            dramBytes += c.dramBytes;
            actBytes += c.actBytes;
        }
        for (auto& c : children)
            c.share = time > 0.0 ? c.time / time : 0.0;
    }

    boundBy = BoundBy::Compute;
    double best = boundCompute;
    if (boundMemory > best) {
        best = boundMemory;
        boundBy = BoundBy::Memory;
    }
    if (boundOverhead > best) {
        best = boundOverhead;
        boundBy = BoundBy::Overhead;
    }
    if (boundTransfer > best)
        boundBy = BoundBy::Transfer;
}

const AttributionNode*
Attribution::phase(const std::string& name) const
{
    return root.child(name);
}

namespace {

std::string
nodeJson(const AttributionNode& n)
{
    std::string out = strformat(
        "{\"name\":%s,\"kind\":%s,\"time_s\":%.9g,\"share\":%.9g,"
        "\"bound_by\":%s,\"compute_s\":%.9g,\"memory_s\":%.9g,"
        "\"overhead_s\":%.9g,\"bound\":{\"compute\":%.9g,"
        "\"memory\":%.9g,\"overhead\":%.9g,\"transfer\":%.9g},"
        "\"flops\":%.9g,\"dram_bytes\":%.9g,\"gflops\":%.9g,"
        "\"dram_gbps\":%.9g",
        jsonQuote(n.name).c_str(), jsonQuote(n.kind).c_str(), n.time,
        n.share, jsonQuote(boundByName(n.boundBy)).c_str(),
        n.computeTime, n.memoryTime, n.overheadTime, n.boundCompute,
        n.boundMemory, n.boundOverhead, n.boundTransfer, n.flops,
        n.dramBytes, n.achievedGflops(), n.achievedDramGBps());
    if (!n.children.empty()) {
        out += ",\"children\":[";
        for (std::size_t i = 0; i < n.children.size(); ++i) {
            if (i)
                out += ',';
            out += nodeJson(n.children[i]);
        }
        out += ']';
    }
    out += '}';
    return out;
}

} // namespace

std::string
Attribution::toJson() const
{
    return strformat("{\"schema\":%d,\"device\":%s,"
                     "\"peak_gflops\":%.9g,\"peak_dram_gbps\":%.9g,"
                     "\"run\":%s}",
                     kSchemaVersion, jsonQuote(device).c_str(),
                     peakGflops, peakDramGBps,
                     nodeJson(root).c_str());
}

void
Attribution::summaryMetrics(std::map<std::string, double>& out) const
{
    for (const auto& p : root.children) {
        const std::string pre = "attr_" + p.name + "_";
        out[pre + "share"] = p.share;
        if (p.time > 0.0) {
            out[pre + "compute_share"] = p.boundCompute / p.time;
            out[pre + "memory_share"] = p.boundMemory / p.time;
            out[pre + "overhead_share"] = p.boundOverhead / p.time;
            out[pre + "transfer_share"] = p.boundTransfer / p.time;
        }
        out[pre + "gflops"] = p.achievedGflops();
        out[pre + "dram_gbps"] = p.achievedDramGBps();
        out[pre + "bound_" + boundByName(p.boundBy)] = 1.0;
    }
}

Attribution
attributeCpuRun(const perf::CpuPerfModel& model,
                const model::ModelSpec& spec, const perf::Workload& w)
{
    CPULLM_ASSERT(w.batch >= 1 && w.promptLen >= 1 && w.genLen >= 1,
                  "degenerate workload");

    Attribution a;
    a.device = model.platform().label();
    const perf::CpuPerfModel::PhaseResources res =
        model.phaseResources(spec, w);
    a.peakGflops = res.peakFlops / 1e9;
    a.peakDramGBps = res.weightBw / 1e9;

    a.root.name = "run";
    a.root.kind = "run";

    auto build_phase = [&](const std::string& name, perf::Phase phase,
                           std::int64_t ctx_begin,
                           std::int64_t ctx_end) {
        AttributionNode& pn = childOrAdd(a.root, name, "phase");
        double upi_time = 0.0;
        for (std::int64_t ctx = ctx_begin; ctx < ctx_end; ++ctx) {
            const auto ops =
                perf::buildPhaseOps(spec, phase, w, ctx);
            const auto costs =
                model.costPhaseOps(spec, phase, w, ctx);
            CPULLM_ASSERT(ops.size() == costs.size(),
                          "op/cost arity mismatch");
            for (std::size_t i = 0; i < ops.size(); ++i) {
                AttributionNode& layer = childOrAdd(
                    pn, layerGroup(ops[i].name), "layer");
                AttributionNode& kind_node = childOrAdd(
                    layer, opKindName(ops[i].kind), "op_kind");
                kind_node.accumulateOp(ops[i], costs[i]);
            }
            upi_time +=
                model.timePhase(spec, phase, w, ctx).upiTime;
        }
        if (upi_time > 0.0) {
            AttributionNode& upi =
                childOrAdd(pn, "upi_exchange", "component");
            upi.time = upi.boundTransfer = upi_time;
        }
    };

    build_phase("prefill", perf::Phase::Prefill, w.promptLen,
                w.promptLen + 1);
    build_phase("decode", perf::Phase::Decode, w.promptLen + 1,
                w.promptLen + w.genLen);
    a.root.finalize();
    a.root.share = 1.0;
    return a;
}

namespace {

std::string
shareBar(double share, int width = 20)
{
    const int fill = static_cast<int>(
        std::lround(std::clamp(share, 0.0, 1.0) * width));
    return std::string(static_cast<std::size_t>(fill), '#') +
           std::string(static_cast<std::size_t>(width - fill), '.');
}

void
renderNode(std::ostream& os, const AttributionNode& n, int depth,
           int max_depth, double peak_gflops, double peak_dram_gbps)
{
    os << strformat("%-*s%-14s %10s %6.1f%% [%s] %s",
                    2 * depth, "", n.name.c_str(),
                    formatTime(n.time).c_str(), 100.0 * n.share,
                    shareBar(n.share).c_str(),
                    boundByName(n.boundBy));
    if (n.kind == "phase") {
        // Roofline verdict: how close the phase runs to the binding
        // resource's peak.
        if (n.boundBy == BoundBy::Compute && peak_gflops > 0.0) {
            os << strformat("  %.1f%% of %.0f GFLOP/s peak",
                            100.0 * n.achievedGflops() / peak_gflops,
                            peak_gflops);
        } else if (n.boundBy == BoundBy::Memory &&
                   peak_dram_gbps > 0.0) {
            os << strformat("  %.1f%% of %.0f GB/s peak",
                            100.0 * n.achievedDramGBps() /
                                peak_dram_gbps,
                            peak_dram_gbps);
        }
    }
    os << '\n';

    if (depth >= max_depth || n.children.empty())
        return;
    // Largest children first; elide the long tail of layers.
    std::vector<const AttributionNode*> order;
    order.reserve(n.children.size());
    for (const auto& c : n.children)
        order.push_back(&c);
    std::stable_sort(order.begin(), order.end(),
                     [](const AttributionNode* x,
                        const AttributionNode* y) {
                         return x->time > y->time;
                     });
    const std::size_t show =
        n.kind == "phase" ? std::min<std::size_t>(order.size(), 6)
                          : order.size();
    for (std::size_t i = 0; i < show; ++i) {
        renderNode(os, *order[i], depth + 1, max_depth, peak_gflops,
                   peak_dram_gbps);
    }
    if (show < order.size()) {
        double rest = 0.0;
        for (std::size_t i = show; i < order.size(); ++i)
            rest += order[i]->share;
        os << strformat("%-*s... (+%zu more, %.1f%%)\n",
                        2 * (depth + 1), "", order.size() - show,
                        100.0 * rest);
    }
}

} // namespace

void
renderAttributionReport(std::ostream& os, const Attribution& a,
                        int max_depth)
{
    os << "bottleneck attribution: " << a.device << '\n'
       << strformat("roofline peak: %.0f GFLOP/s, %.0f GB/s weight "
                    "stream\n",
                    a.peakGflops, a.peakDramGBps);
    renderNode(os, a.root, 0, max_depth, a.peakGflops,
               a.peakDramGBps);
}

void
emitAttributionShares(Tracer& tracer, std::int64_t pid, double time,
                      const AttributionNode& node)
{
    if (node.time <= 0.0)
        return;
    tracer.counter(
        "attribution_share", pid, time,
        {{"compute", node.boundCompute / node.time},
         {"memory", node.boundMemory / node.time},
         {"overhead", node.boundOverhead / node.time},
         {"transfer", node.boundTransfer / node.time}});
}

void
closeAttributionShares(Tracer& tracer, std::int64_t pid, double time)
{
    tracer.counter("attribution_share", pid, time,
                   {{"compute", 0.0},
                    {"memory", 0.0},
                    {"overhead", 0.0},
                    {"transfer", 0.0}});
}

} // namespace obs
} // namespace cpullm
