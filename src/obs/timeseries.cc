#include "obs/timeseries.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace cpullm {
namespace obs {

namespace detail {

BucketRing::BucketRing(double window_s, std::size_t slots)
    : width_(window_s / static_cast<double>(slots)),
      epochs_(slots, -1)
{
    CPULLM_ASSERT(window_s > 0.0 && slots > 0,
                  "invalid time-series window");
}

std::int64_t
BucketRing::epochOf(double t) const
{
    return static_cast<std::int64_t>(std::floor(t / width_));
}

std::size_t
BucketRing::touch(double t, bool* reused)
{
    if (t < 0.0)
        return kDropped;
    const std::int64_t e = epochOf(t);
    const std::size_t s =
        static_cast<std::size_t>(e) % epochs_.size();
    if (epochs_[s] == e) {
        *reused = false;
        return s;
    }
    if (epochs_[s] > e) {
        // The slot already wrapped past this epoch: the sample is
        // older than one full window. Drop it.
        return kDropped;
    }
    epochs_[s] = e;
    *reused = true;
    return s;
}

bool
BucketRing::live(std::size_t i, double now) const
{
    if (epochs_[i] < 0)
        return false;
    const std::int64_t e = epochOf(now);
    return epochs_[i] <= e &&
           epochs_[i] > e - static_cast<std::int64_t>(epochs_.size());
}

} // namespace detail

WindowedCounter::WindowedCounter(double window_s, std::size_t slots)
    : ring_(window_s, slots), slots_(slots)
{
}

void
WindowedCounter::record(double t, double amount)
{
    bool reused = false;
    const std::size_t s = ring_.touch(t, &reused);
    if (s == detail::BucketRing::kDropped)
        return;
    if (reused)
        slots_[s] = Slot{};
    slots_[s].sum += amount;
    ++slots_[s].count;
    if (first_ < 0.0 || t < first_)
        first_ = t;
}

double
WindowedCounter::count(double now) const
{
    double n = 0.0;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (ring_.live(i, now))
            n += static_cast<double>(slots_[i].count);
    }
    return n;
}

double
WindowedCounter::sum(double now) const
{
    double s = 0.0;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (ring_.live(i, now))
            s += slots_[i].sum;
    }
    return s;
}

double
WindowedCounter::rate(double now) const
{
    // While the first window is filling, divide by the elapsed span
    // instead of the full window so early readings aren't biased low.
    double span = ring_.window();
    if (first_ >= 0.0 && now - first_ < span)
        span = std::max(now - first_, ring_.slotWidth());
    return span > 0.0 ? sum(now) / span : 0.0;
}

WindowedGauge::WindowedGauge(double window_s, std::size_t slots)
    : ring_(window_s, slots), slots_(slots)
{
}

void
WindowedGauge::record(double t, double v)
{
    bool reused = false;
    const std::size_t s = ring_.touch(t, &reused);
    if (s != detail::BucketRing::kDropped) {
        if (reused)
            slots_[s] = Slot{};
        Slot& slot = slots_[s];
        if (slot.count == 0) {
            slot.min = slot.max = v;
        } else {
            slot.min = std::min(slot.min, v);
            slot.max = std::max(slot.max, v);
        }
        slot.sum += v;
        ++slot.count;
    }
    last_ = v;
    has_last_ = true;
}

double
WindowedGauge::min(double now) const
{
    double m = std::numeric_limits<double>::quiet_NaN();
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (ring_.live(i, now) && slots_[i].count > 0)
            m = std::isnan(m) ? slots_[i].min
                              : std::min(m, slots_[i].min);
    }
    return m;
}

double
WindowedGauge::max(double now) const
{
    double m = std::numeric_limits<double>::quiet_NaN();
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (ring_.live(i, now) && slots_[i].count > 0)
            m = std::isnan(m) ? slots_[i].max
                              : std::max(m, slots_[i].max);
    }
    return m;
}

double
WindowedGauge::mean(double now) const
{
    double sum = 0.0;
    std::uint64_t n = 0;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (ring_.live(i, now)) {
            sum += slots_[i].sum;
            n += slots_[i].count;
        }
    }
    return n ? sum / static_cast<double>(n)
             : std::numeric_limits<double>::quiet_NaN();
}

RollingHistogram::RollingHistogram(double window_s,
                                   std::size_t slices, double lo,
                                   double hi, std::size_t buckets)
    : ring_(window_s, slices),
      slices_(slices, stats::Histogram(lo, hi, buckets))
{
}

void
RollingHistogram::record(double t, double v)
{
    bool reused = false;
    const std::size_t s = ring_.touch(t, &reused);
    if (s == detail::BucketRing::kDropped)
        return;
    if (reused)
        slices_[s].reset();
    slices_[s].sample(v);
}

std::uint64_t
RollingHistogram::count(double now) const
{
    std::uint64_t n = 0;
    for (std::size_t i = 0; i < slices_.size(); ++i) {
        if (ring_.live(i, now))
            n += slices_[i].count();
    }
    return n;
}

stats::Histogram
RollingHistogram::merged(double now) const
{
    stats::Histogram out(slices_[0].lo(), slices_[0].hi(),
                         slices_[0].buckets().size());
    for (std::size_t i = 0; i < slices_.size(); ++i) {
        if (ring_.live(i, now))
            out.merge(slices_[i]);
    }
    return out;
}

double
RollingHistogram::quantile(double now, double p) const
{
    return merged(now).quantile(p);
}

} // namespace obs
} // namespace cpullm
