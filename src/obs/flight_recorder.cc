#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <time.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include "util/json.h"
#include "util/logging.h"
#include "util/thread_registry.h"

namespace cpullm {
namespace obs {
namespace flightrec {

namespace {

std::uint64_t
monotonicNs() noexcept
{
    struct timespec ts;
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
}

void
copyClipped(char* dst, std::size_t cap, const char* src) noexcept
{
    std::size_t i = 0;
    if (src != nullptr) {
        for (; i + 1 < cap && src[i] != '\0'; ++i) {
            dst[i] = src[i];
        }
    }
    dst[i] = '\0';
}

/**
 * Byte sink behind the dump formatter: an fd (async-signal-safe) or a
 * string (convenience paths). Virtual dispatch is fine in a signal
 * handler; what matters is that FdSink never allocates.
 */
struct Sink
{
    virtual ~Sink() = default;
    virtual void write(const char* p, std::size_t n) noexcept = 0;
};

struct FdSink : Sink
{
    int fd;
    explicit FdSink(int f) : fd(f) {}
    void write(const char* p, std::size_t n) noexcept override
    {
        while (n > 0) {
            const ::ssize_t w = ::write(fd, p, n);
            if (w <= 0) {
                return; // best effort: we may be crashing
            }
            p += w;
            n -= static_cast<std::size_t>(w);
        }
    }
};

struct StringSink : Sink
{
    std::string* out;
    explicit StringSink(std::string* s) : out(s) {}
    void write(const char* p, std::size_t n) noexcept override
    {
        out->append(p, n);
    }
};

/**
 * Fixed-capacity line composer: allocation-free JSON fragments. A
 * record line is < 250 bytes by construction (fixed keys, clipped
 * names, 20-digit integer bound), so 320 never truncates; if it ever
 * would, bytes are dropped rather than overflowing.
 */
struct LineBuf
{
    char b[320];
    std::size_t n = 0;

    void reset() noexcept { n = 0; }
    void ch(char c) noexcept
    {
        if (n < sizeof(b)) {
            b[n++] = c;
        }
    }
    void lit(const char* s) noexcept
    {
        for (; *s != '\0'; ++s) {
            ch(*s);
        }
    }
    void u64(std::uint64_t v) noexcept
    {
        char tmp[20];
        int k = 0;
        do {
            tmp[k++] = static_cast<char>('0' + v % 10);
            v /= 10;
        } while (v != 0);
        while (k > 0) {
            ch(tmp[--k]);
        }
    }
    void i64(std::int64_t v) noexcept
    {
        if (v < 0) {
            ch('-');
            // Negate via unsigned to survive INT64_MIN.
            u64(~static_cast<std::uint64_t>(v) + 1);
        } else {
            u64(static_cast<std::uint64_t>(v));
        }
    }
    /** Emit a name as a JSON string body: non-printables, quotes and
     *  backslashes become '_' so no escaping is ever needed. */
    void name(const char* s) noexcept
    {
        for (; *s != '\0'; ++s) {
            const char c = *s;
            ch((c >= 0x20 && c < 0x7f && c != '"' && c != '\\') ? c : '_');
        }
    }
    void flushTo(Sink& out) noexcept
    {
        out.write(b, n);
        n = 0;
    }
};

void
emitRecordLine(Sink& out, const Record& r) noexcept
{
    LineBuf lb;
    lb.lit("{\"type\":\"");
    lb.lit(eventTypeName(static_cast<EventType>(r.type)));
    lb.lit("\",\"tid\":");
    lb.u64(r.tid);
    lb.lit(",\"seq\":");
    lb.u64(r.seq);
    lb.lit(",\"t_ns\":");
    lb.u64(r.t_ns);
    lb.lit(",\"name\":\"");
    lb.name(r.name);
    lb.lit("\",\"a\":");
    lb.i64(r.a);
    lb.lit(",\"b\":");
    lb.i64(r.b);
    lb.lit("}\n");
    lb.flushTo(out);
}

/** @name Process-wide recorder state */
/// @{
std::atomic<bool> g_enabled{false};
std::atomic<Ring*> g_ring{nullptr};
std::atomic<std::uint64_t> g_unknown_seq{0};

struct CrashState
{
    std::atomic<bool> installed{false};
    std::atomic<bool> dumped{false};
    char path[512] = {};
};
CrashState g_crash;
/// @}

void emitHeaderLine(Sink& out, const Ring& ring) noexcept
{
    LineBuf lb;
    lb.lit("{\"flightrec_version\":");
    lb.u64(kDumpVersion);
    lb.lit(",\"pushed\":");
    lb.u64(ring.pushed());
    lb.lit(",\"overwritten\":");
    lb.u64(ring.overwritten());
    lb.lit(",\"capacity\":");
    lb.u64(ring.capacity());
    lb.lit(",\"threads\":[");
    lb.flushTo(out);
    const std::size_t n = threadreg::threadCount();
    for (std::size_t i = 0; i < n; ++i) {
        const threadreg::ThreadState* ts = threadreg::threadAt(i);
        if (i > 0) {
            lb.ch(',');
        }
        lb.lit("{\"tid\":");
        lb.u64(ts->id);
        lb.lit(",\"name\":\"");
        lb.name(ts->name);
        lb.lit("\"}");
        lb.flushTo(out);
    }
    lb.lit("]}\n");
    lb.flushTo(out);
}

/** Record a per-thread event on behalf of @p ts (cross-thread OK). */
void recordFor(threadreg::ThreadState* ts, EventType type, const char* name,
               std::int64_t a, std::int64_t b) noexcept
{
    if (!g_enabled.load(std::memory_order_acquire)) {
        return;
    }
    Ring* ring = g_ring.load(std::memory_order_acquire);
    if (ring == nullptr) {
        return;
    }
    Record r;
    r.type = static_cast<std::uint32_t>(type);
    if (ts != nullptr) {
        r.tid = ts->id;
        r.seq = ts->seq.fetch_add(1, std::memory_order_relaxed);
    } else {
        r.tid = kUnknownTid;
        r.seq = g_unknown_seq.fetch_add(1, std::memory_order_relaxed);
    }
    r.t_ns = monotonicNs();
    copyClipped(r.name, sizeof(r.name), name);
    r.a = a;
    r.b = b;
    ring->push(r);
}

void frameSink(bool begin, const char* name)
{
    const threadreg::ThreadState* ts = threadreg::current();
    const std::int64_t depth =
        ts != nullptr ? ts->depth.load(std::memory_order_relaxed) : 0;
    record(begin ? EventType::SpanBegin : EventType::SpanEnd, name, depth, 0);
}

void registerSink(threadreg::ThreadState& ts)
{
    recordFor(&ts, EventType::Marker, "thread_start", 0, 0);
}

const char*
signalName(int sig) noexcept
{
    switch (sig) {
      case SIGSEGV: return "SIGSEGV";
      case SIGABRT: return "SIGABRT";
      case SIGTERM: return "SIGTERM";
      case SIGBUS: return "SIGBUS";
      case SIGILL: return "SIGILL";
      case SIGFPE: return "SIGFPE";
      default: return "signal";
    }
}

/** Dump to the crash path exactly once per process. Signal-safe. */
void dumpOnceToCrashPath() noexcept
{
    if (g_crash.path[0] == '\0' || g_crash.dumped.exchange(true)) {
        return;
    }
    const int fd =
        ::open(g_crash.path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        return;
    }
    signalSafeDump(fd);
    ::close(fd);
    LineBuf lb;
    lb.lit("[cpullm:flightrec] dumped ring to ");
    lb.lit(g_crash.path);
    lb.ch('\n');
    FdSink err(2);
    lb.flushTo(err);
}

void crashSignalHandler(int sig)
{
    record(EventType::Crash, signalName(sig), sig, 0);
    dumpOnceToCrashPath();
    // Restore the default disposition and re-raise so the process
    // still dies *by the signal* (wait status, core dumps, sanitizer
    // reports all keep working).
    ::signal(sig, SIG_DFL);
    ::raise(sig);
}

void loggingCrashHook(const char* what)
{
    record(EventType::Marker, what, 0, 0);
    dumpOnceToCrashPath();
}

} // namespace

const char*
eventTypeName(EventType t) noexcept
{
    switch (t) {
      case EventType::Marker: return "marker";
      case EventType::SpanBegin: return "span_begin";
      case EventType::SpanEnd: return "span_end";
      case EventType::Pmu: return "pmu";
      case EventType::Telemetry: return "telemetry";
      case EventType::Crash: return "crash";
    }
    return "unknown";
}

bool
eventTypeFromName(const std::string& s, EventType* out)
{
    static const struct { const char* name; EventType t; } kMap[] = {
        {"marker", EventType::Marker},
        {"span_begin", EventType::SpanBegin},
        {"span_end", EventType::SpanEnd},
        {"pmu", EventType::Pmu},
        {"telemetry", EventType::Telemetry},
        {"crash", EventType::Crash},
    };
    for (const auto& m : kMap) {
        if (s == m.name) {
            *out = m.t;
            return true;
        }
    }
    return false;
}

Ring::Ring(std::size_t min_capacity)
{
    std::size_t cap = 8;
    while (cap < min_capacity) {
        cap <<= 1;
    }
    slots_ = new Slot[cap];
    mask_ = cap - 1;
}

Ring::~Ring()
{
    delete[] slots_;
}

std::uint64_t
Ring::pushed() const noexcept
{
    return head_.load(std::memory_order_acquire);
}

std::uint64_t
Ring::overwritten() const noexcept
{
    const std::uint64_t head = pushed();
    const std::uint64_t cap = mask_ + 1;
    return head > cap ? head - cap : 0;
}

void
Ring::push(const Record& r) noexcept
{
    const std::uint64_t idx = head_.fetch_add(1, std::memory_order_relaxed);
    Slot& s = slots_[idx & mask_];
    // Seqlock publish: odd stamp while the bytes are in flux, even
    // stamp (encoding the claim index) once the record is whole.
    s.stamp.store(idx * 2 + 1, std::memory_order_release);
    s.rec = r;
    s.stamp.store(idx * 2 + 2, std::memory_order_release);
}

namespace {

/** Seqlock-validated iteration over the live window, oldest first.
 *  SlotT is deduced as Ring::Slot from the member-function call sites
 *  (it is private, so it cannot be named here). */
template <typename SlotT, typename Fn>
void
forEachValid(const std::atomic<std::uint64_t>& head_atomic,
             const SlotT* slots, std::size_t mask, Fn&& fn) noexcept
{
    const std::uint64_t head = head_atomic.load(std::memory_order_acquire);
    const std::uint64_t cap = mask + 1;
    const std::uint64_t begin = head > cap ? head - cap : 0;
    for (std::uint64_t idx = begin; idx < head; ++idx) {
        const SlotT& s = slots[idx & mask];
        const std::uint64_t want = idx * 2 + 2;
        if (s.stamp.load(std::memory_order_acquire) != want) {
            continue; // mid-write or already overwritten: skip
        }
        Record r = s.rec;
        std::atomic_thread_fence(std::memory_order_acquire);
        if (s.stamp.load(std::memory_order_relaxed) != want) {
            continue; // torn: a writer lapped us during the copy
        }
        fn(r);
    }
}

} // namespace

std::size_t
Ring::snapshot(std::vector<Record>* out) const
{
    std::size_t n = 0;
    forEachValid(head_, slots_, mask_, [&](const Record& r) {
        out->push_back(r);
        ++n;
    });
    return n;
}

void
Ring::dumpRecordsToFd(int fd) const noexcept
{
    if (fd < 0) {
        return;
    }
    FdSink sink(fd);
    forEachValid(head_, slots_, mask_,
                 [&](const Record& r) { emitRecordLine(sink, r); });
}

void
enable(std::size_t min_capacity)
{
    Ring* cur = g_ring.load(std::memory_order_acquire);
    if (cur == nullptr || cur->capacity() < min_capacity) {
        // The old ring is intentionally leaked: a concurrent writer or
        // a crash handler may still hold a pointer to it, and enable()
        // is a handful of calls per process.
        g_ring.store(new Ring(min_capacity), std::memory_order_release);
    }
    g_enabled.store(true, std::memory_order_release);
    threadreg::setFrameSink(frameSink);
    threadreg::addRegisterSink(registerSink);
    // Threads registered before enable() still get their thread_start
    // marker, so every registered thread has >= 1 record in any dump.
    const std::size_t n = threadreg::threadCount();
    for (std::size_t i = 0; i < n; ++i) {
        recordFor(threadreg::threadAt(i), EventType::Marker, "thread_start",
                  0, 0);
    }
}

bool
enabled() noexcept
{
    return g_enabled.load(std::memory_order_acquire);
}

void
disable() noexcept
{
    threadreg::setFrameSink(nullptr);
    g_enabled.store(false, std::memory_order_release);
}

std::uint64_t
pushedCount() noexcept
{
    Ring* ring = g_ring.load(std::memory_order_acquire);
    return ring != nullptr ? ring->pushed() : 0;
}

std::size_t
ringCapacity() noexcept
{
    Ring* ring = g_ring.load(std::memory_order_acquire);
    return ring != nullptr ? ring->capacity() : 0;
}

void
record(EventType type, const char* name, std::int64_t a,
       std::int64_t b) noexcept
{
    recordFor(threadreg::current(), type, name, a, b);
}

void
signalSafeDump(int fd) noexcept
{
    FdSink sink(fd);
    Ring* ring = g_ring.load(std::memory_order_acquire);
    if (ring == nullptr) {
        LineBuf lb;
        lb.lit("{\"flightrec_version\":");
        lb.u64(kDumpVersion);
        lb.lit(",\"pushed\":0,\"overwritten\":0,\"capacity\":0,"
               "\"threads\":[]}\n");
        lb.flushTo(sink);
        return;
    }
    emitHeaderLine(sink, *ring);
    ring->dumpRecordsToFd(fd);
}

bool
dumpToFile(const std::string& path)
{
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        return false;
    }
    signalSafeDump(fd);
    ::close(fd);
    return true;
}

std::string
dumpToString()
{
    std::string out;
    StringSink sink(&out);
    Ring* ring = g_ring.load(std::memory_order_acquire);
    if (ring == nullptr) {
        LineBuf lb;
        lb.lit("{\"flightrec_version\":");
        lb.u64(kDumpVersion);
        lb.lit(",\"pushed\":0,\"overwritten\":0,\"capacity\":0,"
               "\"threads\":[]}\n");
        lb.flushTo(sink);
        return out;
    }
    emitHeaderLine(sink, *ring);
    std::vector<Record> records;
    ring->snapshot(&records);
    for (const Record& r : records) {
        emitRecordLine(sink, r);
    }
    return out;
}

void
installCrashHandler(const std::string& dump_path)
{
    copyClipped(g_crash.path, sizeof(g_crash.path), dump_path.c_str());
    if (g_crash.installed.exchange(true)) {
        return;
    }
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = crashSignalHandler;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGSEGV, &sa, nullptr);
    ::sigaction(SIGABRT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
    setCrashHook(loggingCrashHook);
}

const char*
crashDumpPath() noexcept
{
    return g_crash.installed.load(std::memory_order_acquire) ? g_crash.path
                                                             : "";
}

namespace {

bool
fail(std::string* err, const std::string& why)
{
    if (err != nullptr) {
        *err = why;
    }
    return false;
}

} // namespace

bool
parseDump(const std::string& text, ParsedDump* out, std::string* err)
{
    *out = ParsedDump();
    std::istringstream in(text);
    std::string line;
    bool saw_header = false;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty()) {
            continue;
        }
        JsonValue v;
        if (!JsonValue::parse(line, &v) || !v.isObject()) {
            return fail(err, "line " + std::to_string(lineno) +
                                 ": not a JSON object");
        }
        if (!saw_header) {
            const JsonValue* ver = v.find("flightrec_version");
            if (ver == nullptr || !ver->isNumber()) {
                return fail(err, "header: missing flightrec_version");
            }
            out->version = static_cast<int>(ver->asNumber());
            if (out->version != kDumpVersion) {
                return fail(err, "header: unsupported flightrec_version " +
                                     std::to_string(out->version));
            }
            for (const char* key : {"pushed", "overwritten", "capacity"}) {
                const JsonValue* f = v.find(key);
                if (f == nullptr || !f->isNumber()) {
                    return fail(err, std::string("header: missing ") + key);
                }
            }
            out->pushed = static_cast<std::uint64_t>(v.numberOr("pushed", 0));
            out->overwritten =
                static_cast<std::uint64_t>(v.numberOr("overwritten", 0));
            out->capacity =
                static_cast<std::size_t>(v.numberOr("capacity", 0));
            const JsonValue* threads = v.find("threads");
            if (threads == nullptr || !threads->isArray()) {
                return fail(err, "header: missing threads array");
            }
            for (const JsonValue& t : threads->asArray()) {
                if (!t.isObject() || t.find("tid") == nullptr ||
                    t.find("name") == nullptr) {
                    return fail(err, "header: malformed thread entry");
                }
                DumpThread dt;
                dt.tid = static_cast<std::uint32_t>(t.numberOr("tid", 0));
                dt.name = t.stringOr("name", "");
                out->threads.push_back(dt);
            }
            saw_header = true;
            continue;
        }
        const JsonValue* type = v.find("type");
        if (type == nullptr || !type->isString()) {
            return fail(err, "line " + std::to_string(lineno) +
                                 ": missing type");
        }
        EventType et;
        if (!eventTypeFromName(type->asString(), &et)) {
            return fail(err, "line " + std::to_string(lineno) +
                                 ": unknown event type '" +
                                 type->asString() + "'");
        }
        for (const char* key : {"tid", "seq", "t_ns", "a", "b"}) {
            const JsonValue* f = v.find(key);
            if (f == nullptr || !f->isNumber()) {
                return fail(err, "line " + std::to_string(lineno) +
                                     ": missing numeric field '" + key + "'");
            }
        }
        const JsonValue* name = v.find("name");
        if (name == nullptr || !name->isString()) {
            return fail(err, "line " + std::to_string(lineno) +
                                 ": missing name");
        }
        Record r;
        r.type = static_cast<std::uint32_t>(et);
        r.tid = static_cast<std::uint32_t>(v.numberOr("tid", 0));
        r.seq = static_cast<std::uint64_t>(v.numberOr("seq", 0));
        r.t_ns = static_cast<std::uint64_t>(v.numberOr("t_ns", 0));
        copyClipped(r.name, sizeof(r.name), name->asString().c_str());
        r.a = static_cast<std::int64_t>(v.numberOr("a", 0));
        r.b = static_cast<std::int64_t>(v.numberOr("b", 0));
        out->records.push_back(r);
    }
    if (!saw_header) {
        return fail(err, "empty dump: no header line");
    }
    return true;
}

bool
parseDumpFile(const std::string& path, ParsedDump* out, std::string* err)
{
    std::ifstream in(path);
    if (!in) {
        return fail(err, "cannot open " + path);
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return parseDump(ss.str(), out, err);
}

bool
writePerfettoFile(const std::string& path, const ParsedDump& dump)
{
    std::ofstream out(path);
    if (!out) {
        return false;
    }
    out << "{\"traceEvents\":[";
    bool first = true;
    auto emit = [&](const std::string& body) {
        if (!first) {
            out << ",";
        }
        first = false;
        out << body;
    };
    for (const DumpThread& t : dump.threads) {
        emit("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":" +
             std::to_string(t.tid) + ",\"args\":{\"name\":" +
             jsonQuote(t.name) + "}}");
    }
    // Depth per tid so dangling begin/end at the ring boundaries
    // still produce balanced (viewer-loadable) slices.
    std::map<std::uint32_t, std::vector<std::uint64_t>> open;
    std::uint64_t last_ns = 0;
    auto us = [](std::uint64_t ns) { return jsonNumber(ns / 1e3); };
    for (const Record& r : dump.records) {
        last_ns = r.t_ns > last_ns ? r.t_ns : last_ns;
        const std::string tid = std::to_string(r.tid);
        const EventType t = static_cast<EventType>(r.type);
        if (t == EventType::SpanBegin) {
            open[r.tid].push_back(r.t_ns);
            emit("{\"ph\":\"B\",\"name\":" + jsonQuote(r.name) +
                 ",\"pid\":1,\"tid\":" + tid + ",\"ts\":" + us(r.t_ns) + "}");
        } else if (t == EventType::SpanEnd) {
            auto it = open.find(r.tid);
            if (it != open.end() && !it->second.empty()) {
                it->second.pop_back();
                emit("{\"ph\":\"E\",\"pid\":1,\"tid\":" + tid +
                     ",\"ts\":" + us(r.t_ns) + "}");
            }
            // An end without a begin fell off the ring: drop it.
        } else {
            emit("{\"ph\":\"i\",\"s\":\"t\",\"name\":" + jsonQuote(r.name) +
                 ",\"pid\":1,\"tid\":" + tid + ",\"ts\":" + us(r.t_ns) +
                 ",\"args\":{\"a\":" + std::to_string(r.a) +
                 ",\"b\":" + std::to_string(r.b) + "}}");
        }
    }
    for (const auto& kv : open) {
        for (std::size_t i = 0; i < kv.second.size(); ++i) {
            emit("{\"ph\":\"E\",\"pid\":1,\"tid\":" +
                 std::to_string(kv.first) + ",\"ts\":" + us(last_ns) + "}");
        }
    }
    out << "]}\n";
    return static_cast<bool>(out);
}

} // namespace flightrec
} // namespace obs
} // namespace cpullm
