#include "obs/profiler.h"

#include <signal.h>
#include <sys/time.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <vector>

#include "obs/prometheus.h"
#include "util/logging.h"
#include "util/thread_registry.h"

namespace cpullm {
namespace obs {
namespace prof {

namespace {

/** One retired SIGPROF tick: a bounded copy of the logical stack. */
struct Sample
{
    std::int32_t depth = 0;
    char frames[threadreg::kMaxDepth][threadreg::kFrameChars];
};

/**
 * Per-thread SPSC sample ring. Writer = the owning thread's SIGPROF
 * handler (signals do not nest themselves, so single writer); reader
 * = whichever thread runs collect(). Same seqlock slot protocol as
 * the flight-recorder ring so a lapped reader skips torn slots.
 */
struct SampleRing
{
    struct Slot
    {
        std::atomic<std::uint64_t> stamp{0};
        Sample sample;
    };

    explicit SampleRing(std::size_t min_capacity)
    {
        std::size_t cap = 64;
        while (cap < min_capacity) {
            cap <<= 1;
        }
        slots = new Slot[cap];
        mask = cap - 1;
    }
    ~SampleRing() { delete[] slots; }

    Slot* slots = nullptr;
    std::size_t mask = 0;
    std::atomic<std::uint64_t> head{0};
    std::uint64_t lastRead = 0; ///< consumer-side cursor (under g_mu)
};

std::atomic<SampleRing*> g_rings[threadreg::kMaxThreads];
std::atomic<bool> g_running{false};
std::atomic<bool> g_handler_installed{false};
std::atomic<std::uint64_t> g_unregistered{0};

std::mutex g_mu; // guards everything below
Options g_opt;
FoldedProfile g_fold;

void
onSigprof(int)
{
    if (!g_running.load(std::memory_order_relaxed)) {
        return;
    }
    threadreg::ThreadState* ts = threadreg::current();
    SampleRing* ring =
        ts != nullptr ? g_rings[ts->id].load(std::memory_order_acquire)
                      : nullptr;
    if (ring == nullptr) {
        g_unregistered.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    const std::uint64_t idx = ring->head.load(std::memory_order_relaxed);
    SampleRing::Slot& s = ring->slots[idx & ring->mask];
    s.stamp.store(idx * 2 + 1, std::memory_order_release);
    int d = ts->depth.load(std::memory_order_relaxed);
    // Pairs with the signal fence in threadreg::pushFrame: the frame
    // bytes for every published depth level are already in place.
    std::atomic_signal_fence(std::memory_order_acquire);
    if (d > threadreg::kMaxDepth) {
        d = threadreg::kMaxDepth;
    }
    s.sample.depth = d;
    for (int i = 0; i < d; ++i) {
        std::memcpy(s.sample.frames[i], ts->frames[i],
                    threadreg::kFrameChars);
    }
    s.stamp.store(idx * 2 + 2, std::memory_order_release);
    ring->head.store(idx + 1, std::memory_order_release);
}

/** Late-registered threads (pool growth) get a ring on the spot. */
void
profilerRegisterSink(threadreg::ThreadState& ts)
{
    if (!g_running.load(std::memory_order_acquire)) {
        return;
    }
    std::lock_guard<std::mutex> lock(g_mu);
    if (g_rings[ts.id].load(std::memory_order_acquire) == nullptr) {
        g_rings[ts.id].store(new SampleRing(g_opt.ringSlots),
                             std::memory_order_release);
    }
}

/** Fold one sample under the thread named @p tname into @p fold. */
void
foldSample(FoldedProfile* fold, const char* tname, const Sample& s)
{
    std::string key = tname;
    for (int i = 0; i < s.depth; ++i) {
        key += ';';
        key += s.frames[i];
    }
    ++fold->stacks[key];
    ++fold->samples;
    for (int i = 0; i < s.depth; ++i) {
        // Count each distinct frame once per sample for "total".
        bool repeat = false;
        for (int k = 0; k < i; ++k) {
            if (std::strncmp(s.frames[i], s.frames[k],
                             threadreg::kFrameChars) == 0) {
                repeat = true;
                break;
            }
        }
        if (!repeat) {
            ++fold->ops[s.frames[i]].total;
        }
    }
    if (s.depth > 0) {
        ++fold->ops[s.frames[s.depth - 1]].self;
    }
}

} // namespace

double
FoldedProfile::selfSeconds(const std::string& op) const
{
    if (hz <= 0) {
        return 0.0;
    }
    const auto it = ops.find(op);
    return it == ops.end() ? 0.0
                           : static_cast<double>(it->second.self) / hz;
}

std::string
FoldedProfile::topOpBySelf() const
{
    std::string best;
    std::uint64_t best_n = 0;
    for (const auto& kv : ops) {
        if (kv.second.self > best_n) {
            best = kv.first;
            best_n = kv.second.self;
        }
    }
    return best;
}

std::string
FoldedProfile::topKindBySelf() const
{
    std::map<std::string, std::uint64_t> kinds;
    for (const auto& kv : ops) {
        const char* kind = frameKind(kv.first);
        if (kind[0] != '\0') {
            kinds[kind] += kv.second.self;
        }
    }
    std::string best;
    std::uint64_t best_n = 0;
    for (const auto& kv : kinds) {
        if (kv.second > best_n) {
            best = kv.first;
            best_n = kv.second;
        }
    }
    return best;
}

Profiler&
Profiler::instance()
{
    static Profiler p;
    return p;
}

bool
Profiler::start(const Options& opt)
{
    if (opt.hz <= 0 || opt.hz > 10000) {
        return false;
    }
    std::lock_guard<std::mutex> lock(g_mu);
    if (g_running.load(std::memory_order_acquire)) {
        return false;
    }
    g_opt = opt;
    for (std::size_t i = 0; i < threadreg::threadCount(); ++i) {
        if (g_rings[i].load(std::memory_order_acquire) == nullptr) {
            g_rings[i].store(new SampleRing(opt.ringSlots),
                             std::memory_order_release);
        }
    }
    threadreg::addRegisterSink(profilerRegisterSink);
    if (!g_handler_installed.exchange(true)) {
        struct sigaction sa;
        std::memset(&sa, 0, sizeof(sa));
        sa.sa_handler = onSigprof;
        sa.sa_flags = SA_RESTART;
        sigemptyset(&sa.sa_mask);
        if (::sigaction(SIGPROF, &sa, nullptr) != 0) {
            g_handler_installed.store(false);
            return false;
        }
    }
    g_running.store(true, std::memory_order_release);
    struct itimerval it;
    const long usec = std::max(1L, static_cast<long>(1e6 / opt.hz));
    it.it_interval.tv_sec = usec / 1000000;
    it.it_interval.tv_usec = usec % 1000000;
    it.it_value = it.it_interval;
    if (::setitimer(ITIMER_PROF, &it, nullptr) != 0) {
        g_running.store(false, std::memory_order_release);
        return false;
    }
    return true;
}

void
Profiler::stop()
{
    std::lock_guard<std::mutex> lock(g_mu);
    if (!g_running.load(std::memory_order_acquire)) {
        return;
    }
    struct itimerval it;
    std::memset(&it, 0, sizeof(it));
    ::setitimer(ITIMER_PROF, &it, nullptr);
    // The handler stays installed (and inert): a signal already in
    // flight must not hit SIGPROF's lethal default disposition.
    g_running.store(false, std::memory_order_release);
}

bool
Profiler::running() const noexcept
{
    return g_running.load(std::memory_order_acquire);
}

double
Profiler::hz() const noexcept
{
    return running() ? g_opt.hz : 0.0;
}

FoldedProfile
Profiler::collect()
{
    std::lock_guard<std::mutex> lock(g_mu);
    g_fold.hz = g_opt.hz;
    for (std::size_t tid = 0; tid < threadreg::threadCount(); ++tid) {
        SampleRing* ring = g_rings[tid].load(std::memory_order_acquire);
        if (ring == nullptr) {
            continue;
        }
        const threadreg::ThreadState* ts = threadreg::threadAt(tid);
        const std::uint64_t head =
            ring->head.load(std::memory_order_acquire);
        std::uint64_t from = ring->lastRead;
        const std::uint64_t cap = ring->mask + 1;
        if (head - from > cap) {
            g_fold.dropped += head - from - cap;
            from = head - cap;
        }
        for (std::uint64_t idx = from; idx < head; ++idx) {
            const SampleRing::Slot& s = ring->slots[idx & ring->mask];
            const std::uint64_t want = idx * 2 + 2;
            if (s.stamp.load(std::memory_order_acquire) != want) {
                ++g_fold.dropped;
                continue;
            }
            Sample copy = s.sample;
            std::atomic_thread_fence(std::memory_order_acquire);
            if (s.stamp.load(std::memory_order_relaxed) != want) {
                ++g_fold.dropped;
                continue;
            }
            foldSample(&g_fold, ts->name, copy);
        }
        ring->lastRead = head;
    }
    g_fold.unregistered =
        g_unregistered.load(std::memory_order_relaxed);
    return g_fold;
}

void
Profiler::reset()
{
    std::lock_guard<std::mutex> lock(g_mu);
    g_fold = FoldedProfile();
}

bool
writeCollapsedFile(const std::string& path, const FoldedProfile& p)
{
    std::ofstream out(path);
    if (!out) {
        return false;
    }
    for (const auto& kv : p.stacks) {
        out << kv.first << ' ' << kv.second << '\n';
    }
    return static_cast<bool>(out);
}

bool
parseCollapsed(const std::string& text, FoldedProfile* out,
               std::string* err)
{
    *out = FoldedProfile();
    std::istringstream in(text);
    std::string line;
    std::size_t lineno = 0;
    auto fail = [&](const std::string& why) {
        if (err != nullptr) {
            *err = "line " + std::to_string(lineno) + ": " + why;
        }
        return false;
    };
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty()) {
            continue;
        }
        const std::size_t sp = line.rfind(' ');
        if (sp == std::string::npos || sp == 0 ||
            sp + 1 >= line.size()) {
            return fail("expected 'stack count'");
        }
        const std::string stack = line.substr(0, sp);
        const std::string count_s = line.substr(sp + 1);
        char* end = nullptr;
        const unsigned long long count =
            std::strtoull(count_s.c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || count == 0) {
            return fail("bad sample count '" + count_s + "'");
        }
        out->stacks[stack] += count;
        out->samples += count;
        // Re-derive per-op stats; token 0 is the thread name.
        std::vector<std::string> frames;
        std::size_t pos = stack.find(';');
        while (pos != std::string::npos) {
            const std::size_t next = stack.find(';', pos + 1);
            frames.push_back(
                stack.substr(pos + 1, next == std::string::npos
                                          ? std::string::npos
                                          : next - pos - 1));
            pos = next;
        }
        for (std::size_t i = 0; i < frames.size(); ++i) {
            bool repeat = false;
            for (std::size_t k = 0; k < i; ++k) {
                repeat = repeat || frames[k] == frames[i];
            }
            if (!repeat) {
                out->ops[frames[i]].total += count;
            }
        }
        if (!frames.empty()) {
            out->ops[frames.back()].self += count;
        }
    }
    return true;
}

bool
parseCollapsedFile(const std::string& path, FoldedProfile* out,
                   std::string* err)
{
    std::ifstream in(path);
    if (!in) {
        if (err != nullptr) {
            *err = "cannot open " + path;
        }
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return parseCollapsed(ss.str(), out, err);
}

void
writePromGauges(std::ostream& os, const FoldedProfile& p,
                std::size_t top_ops)
{
    writePromHeader(os, "cpullm_prof_samples_total",
                    "Logical-stack samples folded so far", "gauge");
    writePromSample(os, "cpullm_prof_samples_total", {},
                    static_cast<double>(p.samples));
    writePromHeader(os, "cpullm_prof_dropped_total",
                    "Samples lost to ring wraparound or torn slots",
                    "gauge");
    writePromSample(os, "cpullm_prof_dropped_total", {},
                    static_cast<double>(p.dropped));
    writePromHeader(os, "cpullm_prof_unregistered_total",
                    "SIGPROF ticks on unregistered threads", "gauge");
    writePromSample(os, "cpullm_prof_unregistered_total", {},
                    static_cast<double>(p.unregistered));
    writePromHeader(os, "cpullm_prof_hz", "Sampling frequency", "gauge");
    writePromSample(os, "cpullm_prof_hz", {}, p.hz);

    std::vector<std::pair<std::string, OpStat>> ranked(p.ops.begin(),
                                                       p.ops.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) {
                  return a.second.self != b.second.self
                             ? a.second.self > b.second.self
                             : a.first < b.first;
              });
    if (ranked.size() > top_ops) {
        ranked.resize(top_ops);
    }
    if (!ranked.empty()) {
        writePromHeader(os, "cpullm_prof_op_self_seconds",
                        "Self CPU-seconds per op (samples / hz)",
                        "gauge");
        for (const auto& kv : ranked) {
            writePromSample(
                os, "cpullm_prof_op_self_seconds", {{"op", kv.first}},
                p.hz > 0
                    ? static_cast<double>(kv.second.self) / p.hz
                    : static_cast<double>(kv.second.self));
        }
        writePromHeader(os, "cpullm_prof_op_total_seconds",
                        "Total (inclusive) CPU-seconds per op", "gauge");
        for (const auto& kv : ranked) {
            writePromSample(
                os, "cpullm_prof_op_total_seconds", {{"op", kv.first}},
                p.hz > 0
                    ? static_cast<double>(kv.second.total) / p.hz
                    : static_cast<double>(kv.second.total));
        }
    }
}

const char*
frameKind(const std::string& frame)
{
    // Accept both bare op names ("q_proj") and the analytical model's
    // layer-qualified ones ("layer3.q_proj").
    std::string f = frame;
    const std::size_t dot = f.rfind('.');
    if (dot != std::string::npos && f.rfind("layer", 0) == 0) {
        f = f.substr(dot + 1);
    }
    static const struct { const char* op; const char* kind; } kMap[] = {
        {"q_proj", "gemm"},       {"k_proj", "gemm"},
        {"v_proj", "gemm"},       {"out_proj", "gemm"},
        {"ffn_gate", "gemm"},     {"ffn_up", "gemm"},
        {"ffn_down", "gemm"},     {"lm_head", "gemm"},
        {"attention", "attention"},
        {"attn_norm", "elementwise"}, {"softmax", "elementwise"},
        {"ffn_norm", "elementwise"},  {"ffn_act", "elementwise"},
        {"final_norm", "elementwise"},
        {"embedding", "embedding"},
    };
    for (const auto& m : kMap) {
        if (f == m.op) {
            return m.kind;
        }
    }
    return "";
}

} // namespace prof
} // namespace obs
} // namespace cpullm
