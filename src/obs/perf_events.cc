#include "obs/perf_events.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include "obs/flight_recorder.h"
#include "obs/span.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

#if defined(__linux__)
#include <dirent.h>
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#define CPULLM_HAVE_PERF_EVENTS 1
#else
#define CPULLM_HAVE_PERF_EVENTS 0
#endif

namespace cpullm {
namespace obs {
namespace pmu {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

double
addField(double a, double b)
{
    if (std::isnan(a))
        return b;
    if (std::isnan(b))
        return a;
    return a + b;
}

double
subField(double end, double start)
{
    if (std::isnan(end) || std::isnan(start))
        return kNaN;
    return end - start;
}

std::int64_t
monotonicNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

Mode g_requested_mode = Mode::Off;

} // namespace

const char* const kParanoidPath =
    "/proc/sys/kernel/perf_event_paranoid";

bool
modeFromString(const std::string& s, Mode* out)
{
    if (s == "auto")
        *out = Mode::Auto;
    else if (s == "perf")
        *out = Mode::Perf;
    else if (s == "soft")
        *out = Mode::Soft;
    else if (s == "off")
        *out = Mode::Off;
    else
        return false;
    return true;
}

const char*
modeName(Mode m)
{
    switch (m) {
      case Mode::Auto: return "auto";
      case Mode::Perf: return "perf";
      case Mode::Soft: return "soft";
      case Mode::Off: return "off";
    }
    return "off";
}

void
setRequestedMode(Mode m)
{
    g_requested_mode = m;
}

Mode
requestedMode()
{
    return g_requested_mode;
}

bool
countersEnvPresent()
{
    const char* v = std::getenv("CPULLM_COUNTERS");
    return v && *v;
}

bool
applyCountersEnv(std::string* err_value)
{
    const char* v = std::getenv("CPULLM_COUNTERS");
    if (!v || !*v)
        return true;
    Mode m;
    if (!modeFromString(v, &m)) {
        if (err_value)
            *err_value = v;
        return false;
    }
    setRequestedMode(m);
    return true;
}

const char*
backendName(Backend b)
{
    switch (b) {
      case Backend::Perf: return "perf";
      case Backend::Soft: return "soft";
      case Backend::Disabled: return "disabled";
    }
    return "disabled";
}

PmuCounts
PmuCounts::unavailable()
{
    PmuCounts c;
    c.wallNs = kNaN;
    c.taskClockNs = kNaN;
    c.cycles = kNaN;
    c.instructions = kNaN;
    c.llcMisses = kNaN;
    c.llcReferences = kNaN;
    c.branchMisses = kNaN;
    c.pageFaults = kNaN;
    c.contextSwitches = kNaN;
    c.imcReadBytes = kNaN;
    c.imcWriteBytes = kNaN;
    return c;
}

PmuCounts&
PmuCounts::operator+=(const PmuCounts& o)
{
    wallNs = addField(wallNs, o.wallNs);
    taskClockNs = addField(taskClockNs, o.taskClockNs);
    cycles = addField(cycles, o.cycles);
    instructions = addField(instructions, o.instructions);
    llcMisses = addField(llcMisses, o.llcMisses);
    llcReferences = addField(llcReferences, o.llcReferences);
    branchMisses = addField(branchMisses, o.branchMisses);
    pageFaults = addField(pageFaults, o.pageFaults);
    contextSwitches = addField(contextSwitches, o.contextSwitches);
    imcReadBytes = addField(imcReadBytes, o.imcReadBytes);
    imcWriteBytes = addField(imcWriteBytes, o.imcWriteBytes);
    return *this;
}

PmuCounts
PmuCounts::minus(const PmuCounts& start) const
{
    PmuCounts d;
    d.wallNs = subField(wallNs, start.wallNs);
    d.taskClockNs = subField(taskClockNs, start.taskClockNs);
    d.cycles = subField(cycles, start.cycles);
    d.instructions = subField(instructions, start.instructions);
    d.llcMisses = subField(llcMisses, start.llcMisses);
    d.llcReferences = subField(llcReferences, start.llcReferences);
    d.branchMisses = subField(branchMisses, start.branchMisses);
    d.pageFaults = subField(pageFaults, start.pageFaults);
    d.contextSwitches =
        subField(contextSwitches, start.contextSwitches);
    d.imcReadBytes = subField(imcReadBytes, start.imcReadBytes);
    d.imcWriteBytes = subField(imcWriteBytes, start.imcWriteBytes);
    return d;
}

double
multiplexScale(std::uint64_t value, std::uint64_t time_enabled,
               std::uint64_t time_running)
{
    if (time_running == 0)
        return kNaN;
    if (time_running >= time_enabled)
        return static_cast<double>(value);
    return static_cast<double>(value) *
           (static_cast<double>(time_enabled) /
            static_cast<double>(time_running));
}

bool
parseGroupReadBuffer(const std::uint64_t* words, std::size_t n_words,
                     GroupReading* out)
{
    *out = GroupReading{};
    if (!words || n_words < 3)
        return false;
    const std::uint64_t nr = words[0];
    // Each event contributes {value, id}, so a well-formed read is
    // exactly 3 + 2*nr words. A mismatch either way means a corrupt
    // or foreign buffer, not a counter group we opened.
    if (nr > 1024 || n_words != 3 + 2 * nr)
        return false;
    out->timeEnabled = words[1];
    out->timeRunning = words[2];
    out->values.reserve(nr);
    for (std::uint64_t i = 0; i < nr; ++i)
        out->values.emplace_back(words[3 + 2 * i + 1],
                                 words[3 + 2 * i]);
    return true;
}

// ---------------------------------------------------------------------------
// Probing and backend selection
// ---------------------------------------------------------------------------

namespace {

#if CPULLM_HAVE_PERF_EVENTS

/** perf_event_open wrapper (no glibc stub exists). */
int
perfEventOpen(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
              unsigned long flags)
{
    return static_cast<int>(
        syscall(__NR_perf_event_open, attr, pid, cpu, group_fd,
                flags));
}

perf_event_attr
baseAttr(std::uint32_t type, std::uint64_t config)
{
    perf_event_attr a;
    std::memset(&a, 0, sizeof a);
    a.type = type;
    a.size = sizeof a;
    a.config = config;
    a.exclude_kernel = 1;
    a.exclude_hv = 1;
    a.read_format = PERF_FORMAT_GROUP |
                    PERF_FORMAT_TOTAL_TIME_ENABLED |
                    PERF_FORMAT_TOTAL_TIME_RUNNING | PERF_FORMAT_ID;
    return a;
}

/** True when a throwaway software counter group opens on this
 *  thread: catches seccomp EPERM and CONFIG_PERF_EVENTS=n kernels
 *  that a fine-looking paranoid level would hide. */
bool
trySyscallProbe()
{
    perf_event_attr a =
        baseAttr(PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK);
    a.disabled = 1;
    const int fd = perfEventOpen(&a, 0, -1, -1, 0);
    if (fd < 0)
        return false;
    close(fd);
    return true;
}

#else // !CPULLM_HAVE_PERF_EVENTS

bool
trySyscallProbe()
{
    return false;
}

#endif

} // namespace

PerfProbe
probePerf(const std::string& paranoid_path)
{
    PerfProbe p;
    std::ifstream ifs(paranoid_path);
    int level = 3;
    if (ifs && (ifs >> level))
        p.paranoid = level;
    else
        p.paranoid = 3;
    p.paranoidOk = p.paranoid <= 2;
    p.syscallOk = p.paranoidOk && trySyscallProbe();
    return p;
}

Backend
chooseBackend(Mode mode, const PerfProbe& probe)
{
    switch (mode) {
      case Mode::Off:
        return Backend::Disabled;
      case Mode::Soft:
        return Backend::Soft;
      case Mode::Auto:
        return probe.syscallOk ? Backend::Perf : Backend::Soft;
      case Mode::Perf:
        if (probe.syscallOk)
            return Backend::Perf;
        warn("perf events unavailable (perf_event_paranoid=",
             probe.paranoid,
             "); degrading to the software counter backend");
        return Backend::Soft;
    }
    return Backend::Disabled;
}

// ---------------------------------------------------------------------------
// Counter groups
// ---------------------------------------------------------------------------

/** Which PmuCounts field a group member feeds. */
enum class EventSlot {
    TaskClock,
    Cycles,
    Instructions,
    LlcMisses,
    LlcReferences,
    BranchMisses,
    PageFaults,
    ContextSwitches,
};

struct Session::Impl
{
#if CPULLM_HAVE_PERF_EVENTS
    /** One per-thread counter group: leader fd + member slots. */
    struct Group
    {
        int leaderFd = -1;
        /** Group order -> PmuCounts field. */
        std::vector<EventSlot> slots;
    };

    std::vector<Group> groups;
    int hardwareEvents = 0;

    /** Uncore IMC CAS counters (system-wide; usually privileged). */
    struct ImcEvent
    {
        int fd = -1;
        double bytesPerCount = 64.0;
        bool write = false;
    };
    std::vector<ImcEvent> imc;

    /** rusage baseline for the soft backend. */
    double softBaseTaskClockNs = 0.0;
    double softBaseFaults = 0.0;
    double softBaseCtxSw = 0.0;

    ~Impl() { closeAll(); }

    void
    closeAll()
    {
        for (Group& g : groups)
            if (g.leaderFd >= 0)
                close(g.leaderFd);
        groups.clear();
        for (ImcEvent& e : imc)
            if (e.fd >= 0)
                close(e.fd);
        imc.clear();
    }

    /**
     * Open one counter group for @p tid. The software task-clock
     * leads (it opens wherever the syscall is allowed); hardware
     * members that fail individually (ENOENT without a vPMU) are
     * skipped. Member fds are owned by the leader group: the kernel
     * keeps them alive until the leader closes, and we close every
     * fd through the group list below.
     */
    bool
    openGroup(pid_t tid)
    {
        Group g;
        perf_event_attr lead =
            baseAttr(PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK);
        lead.disabled = 1;
        g.leaderFd = perfEventOpen(&lead, tid, -1, -1, 0);
        if (g.leaderFd < 0)
            return false;
        g.slots.push_back(EventSlot::TaskClock);
        memberFds.clear();

        struct Want
        {
            std::uint32_t type;
            std::uint64_t config;
            EventSlot slot;
            bool hardware;
        };
        const Want wants[] = {
            {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES,
             EventSlot::Cycles, true},
            {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS,
             EventSlot::Instructions, true},
            {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES,
             EventSlot::LlcMisses, true},
            {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES,
             EventSlot::LlcReferences, true},
            {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES,
             EventSlot::BranchMisses, true},
            {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_PAGE_FAULTS,
             EventSlot::PageFaults, false},
            {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_CONTEXT_SWITCHES,
             EventSlot::ContextSwitches, false},
        };
        int hw = 0;
        for (const Want& w : wants) {
            perf_event_attr a = baseAttr(w.type, w.config);
            const int fd =
                perfEventOpen(&a, tid, -1, g.leaderFd, 0);
            if (fd < 0)
                continue;
            memberFds.push_back(fd);
            g.slots.push_back(w.slot);
            if (w.hardware)
                ++hw;
        }
        if (groups.empty())
            hardwareEvents = hw;
        ioctl(g.leaderFd, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
        ioctl(g.leaderFd, PERF_EVENT_IOC_ENABLE,
              PERF_IOC_FLAG_GROUP);
        groups.push_back(std::move(g));
        return true;
    }

    /** Member fds of the group being opened; closed when the session
     *  ends via leader close + these explicit closes. */
    std::vector<int> memberFds;
    std::vector<int> allMemberFds;

    void
    openAllThreadGroups()
    {
        DIR* dir = opendir("/proc/self/task");
        if (!dir) {
            openGroup(0);
            allMemberFds.insert(allMemberFds.end(),
                                memberFds.begin(), memberFds.end());
            return;
        }
        while (dirent* de = readdir(dir)) {
            if (de->d_name[0] == '.')
                continue;
            const pid_t tid =
                static_cast<pid_t>(std::atol(de->d_name));
            if (tid <= 0)
                continue;
            if (openGroup(tid))
                allMemberFds.insert(allMemberFds.end(),
                                    memberFds.begin(),
                                    memberFds.end());
        }
        closedir(dir);
    }

    /**
     * Best-effort uncore IMC CAS read/write counters: scan
     * /sys/bus/event_source/devices/uncore_imc*, parse the event and
     * scale descriptors, and open system-wide per-device counters.
     * Requires CAP_PERFMON or paranoid <= 0; silently absent
     * otherwise.
     */
    void
    openImc()
    {
        DIR* dir = opendir("/sys/bus/event_source/devices");
        if (!dir)
            return;
        while (dirent* de = readdir(dir)) {
            const std::string name = de->d_name;
            if (name.rfind("uncore_imc", 0) != 0)
                continue;
            const std::string base =
                "/sys/bus/event_source/devices/" + name;
            std::uint32_t type = 0;
            {
                std::ifstream ifs(base + "/type");
                if (!(ifs >> type))
                    continue;
            }
            for (const bool is_write : {false, true}) {
                const std::string ev =
                    is_write ? "cas_count_write" : "cas_count_read";
                std::uint64_t config = 0;
                if (!parseSysfsEventConfig(base + "/events/" + ev,
                                           &config))
                    continue;
                double scale_mib = 0.0;
                {
                    std::ifstream ifs(base + "/events/" + ev +
                                      ".scale");
                    ifs >> scale_mib;
                }
                perf_event_attr a = baseAttr(type, config);
                a.exclude_kernel = 0; // uncore has no cpl filter
                a.exclude_hv = 0;
                // System-wide on cpu 0 (CAS counts are per-IMC, not
                // per-cpu; one cpu per device is the convention).
                const int fd = perfEventOpen(&a, -1, 0, -1, 0);
                if (fd < 0)
                    continue;
                ImcEvent e;
                e.fd = fd;
                e.write = is_write;
                e.bytesPerCount = scale_mib > 0.0
                                      ? scale_mib * 1048576.0
                                      : 64.0;
                ioctl(fd, PERF_EVENT_IOC_RESET, 0);
                ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
                imc.push_back(e);
            }
        }
        closedir(dir);
    }

    /** Parse "event=0x04,umask=0x03" sysfs descriptors. */
    static bool
    parseSysfsEventConfig(const std::string& path,
                          std::uint64_t* config)
    {
        std::ifstream ifs(path);
        if (!ifs)
            return false;
        std::string text;
        std::getline(ifs, text);
        std::uint64_t cfg = 0;
        std::stringstream ss(text);
        std::string term;
        bool any = false;
        while (std::getline(ss, term, ',')) {
            const auto eq = term.find('=');
            if (eq == std::string::npos)
                continue;
            const std::string key = term.substr(0, eq);
            const std::uint64_t val =
                std::strtoull(term.substr(eq + 1).c_str(), nullptr,
                              0);
            if (key == "event") {
                cfg |= val;
                any = true;
            } else if (key == "umask") {
                cfg |= val << 8;
            }
        }
        *config = cfg;
        return any;
    }

    PmuCounts
    readPerf() const
    {
        PmuCounts total = PmuCounts::unavailable();
        total.wallNs = 0.0;
        for (const Group& g : groups) {
            std::uint64_t buf[3 + 2 * 16];
            const ssize_t n = read(g.leaderFd, buf, sizeof buf);
            if (n < 0)
                continue;
            GroupReading r;
            if (!parseGroupReadBuffer(
                    buf, static_cast<std::size_t>(n) / 8, &r))
                continue;
            if (r.values.size() != g.slots.size())
                continue;
            for (std::size_t i = 0; i < g.slots.size(); ++i) {
                const double v = multiplexScale(r.values[i].second,
                                                r.timeEnabled,
                                                r.timeRunning);
                double* field = nullptr;
                switch (g.slots[i]) {
                  case EventSlot::TaskClock:
                    field = &total.taskClockNs; break;
                  case EventSlot::Cycles:
                    field = &total.cycles; break;
                  case EventSlot::Instructions:
                    field = &total.instructions; break;
                  case EventSlot::LlcMisses:
                    field = &total.llcMisses; break;
                  case EventSlot::LlcReferences:
                    field = &total.llcReferences; break;
                  case EventSlot::BranchMisses:
                    field = &total.branchMisses; break;
                  case EventSlot::PageFaults:
                    field = &total.pageFaults; break;
                  case EventSlot::ContextSwitches:
                    field = &total.contextSwitches; break;
                }
                if (field)
                    *field = addField(*field, v);
            }
        }
        for (const ImcEvent& e : imc) {
            std::uint64_t buf[3 + 2];
            const ssize_t n = read(e.fd, buf, sizeof buf);
            if (n < 0)
                continue;
            GroupReading r;
            if (!parseGroupReadBuffer(
                    buf, static_cast<std::size_t>(n) / 8, &r) ||
                r.values.empty())
                continue;
            const double v = multiplexScale(r.values[0].second,
                                            r.timeEnabled,
                                            r.timeRunning);
            double* field =
                e.write ? &total.imcWriteBytes : &total.imcReadBytes;
            *field = addField(*field,
                              std::isnan(v) ? v
                                            : v * e.bytesPerCount);
        }
        return total;
    }

    static PmuCounts
    readSoft(double base_task_clock_ns, double base_faults,
             double base_ctxsw)
    {
        PmuCounts c = PmuCounts::unavailable();
        c.wallNs = 0.0;
        rusage ru;
        if (getrusage(RUSAGE_SELF, &ru) != 0)
            return c;
        const double task_ns =
            (static_cast<double>(ru.ru_utime.tv_sec) +
             static_cast<double>(ru.ru_stime.tv_sec)) *
                1e9 +
            (static_cast<double>(ru.ru_utime.tv_usec) +
             static_cast<double>(ru.ru_stime.tv_usec)) *
                1e3;
        c.taskClockNs = task_ns - base_task_clock_ns;
        c.pageFaults = static_cast<double>(ru.ru_minflt + ru.ru_majflt) -
                       base_faults;
        c.contextSwitches =
            static_cast<double>(ru.ru_nvcsw + ru.ru_nivcsw) -
            base_ctxsw;
        return c;
    }
#else
    int hardwareEvents = 0;
    double softBaseTaskClockNs = 0.0;
    double softBaseFaults = 0.0;
    double softBaseCtxSw = 0.0;
    void closeAll() {}
#endif
};

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

Session&
Session::instance()
{
    static Session* session = new Session();
    return *session;
}

Backend
Session::begin(Mode mode)
{
    return begin(mode, probePerf());
}

Backend
Session::begin(Mode mode, const PerfProbe& probe)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (active_)
        return backend_;
    probe_ = probe;
    backend_ = chooseBackend(mode, probe);
    if (backend_ == Backend::Disabled)
        return backend_;
    impl_ = std::make_unique<Impl>();
#if CPULLM_HAVE_PERF_EVENTS
    if (backend_ == Backend::Perf) {
        // The persistent pool's workers must exist before the
        // per-thread enumeration, or the lanes doing the real kernel
        // work would go unmeasured.
        ThreadPool::instance();
        impl_->openAllThreadGroups();
        impl_->openImc();
        if (impl_->groups.empty()) {
            // Probe said yes but every group failed (e.g. the
            // paranoid level changed underneath us): fall through to
            // the software backend rather than report zeros.
            warn("perf counter groups failed to open; degrading to "
                 "the software counter backend");
            backend_ = Backend::Soft;
        }
    }
    if (backend_ == Backend::Soft) {
        rusage ru;
        if (getrusage(RUSAGE_SELF, &ru) == 0) {
            impl_->softBaseTaskClockNs =
                (static_cast<double>(ru.ru_utime.tv_sec) +
                 static_cast<double>(ru.ru_stime.tv_sec)) *
                    1e9 +
                (static_cast<double>(ru.ru_utime.tv_usec) +
                 static_cast<double>(ru.ru_stime.tv_usec)) *
                    1e3;
            impl_->softBaseFaults =
                static_cast<double>(ru.ru_minflt + ru.ru_majflt);
            impl_->softBaseCtxSw =
                static_cast<double>(ru.ru_nvcsw + ru.ru_nivcsw);
        }
    }
#else
    backend_ = Backend::Disabled;
    impl_.reset();
    if (mode != Mode::Off)
        warn("hardware counters are only supported on Linux");
    if (backend_ == Backend::Disabled)
        return backend_;
#endif
    active_ = true;
    return backend_;
}

void
Session::end()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!active_)
        return;
    impl_.reset();
    active_ = false;
    backend_ = Backend::Disabled;
}

bool
Session::active() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return active_;
}

Backend
Session::backend() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return backend_;
}

PerfProbe
Session::probe() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return probe_;
}

int
Session::hardwareEventsOpen() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return impl_ ? impl_->hardwareEvents : 0;
}

std::size_t
Session::threadGroups() const
{
    std::lock_guard<std::mutex> lock(mu_);
#if CPULLM_HAVE_PERF_EVENTS
    return impl_ ? impl_->groups.size() : 0;
#else
    return 0;
#endif
}

bool
Session::imcOpen() const
{
    std::lock_guard<std::mutex> lock(mu_);
#if CPULLM_HAVE_PERF_EVENTS
    return impl_ && !impl_->imc.empty();
#else
    return false;
#endif
}

PmuCounts
Session::readAll() const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!active_ || !impl_)
        return PmuCounts::unavailable();
#if CPULLM_HAVE_PERF_EVENTS
    if (backend_ == Backend::Perf)
        return impl_->readPerf();
    if (backend_ == Backend::Soft)
        return Impl::readSoft(impl_->softBaseTaskClockNs,
                              impl_->softBaseFaults,
                              impl_->softBaseCtxSw);
#endif
    return PmuCounts::unavailable();
}

void
Session::add(const std::string& name, const PmuCounts& delta)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = slots_.find(name);
    if (it == slots_.end())
        slots_.emplace(name, delta);
    else
        it->second += delta;
}

PmuCounts
Session::slot(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = slots_.find(name);
    return it == slots_.end() ? PmuCounts::unavailable()
                              : it->second;
}

std::vector<std::string>
Session::slotNames() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> names;
    names.reserve(slots_.size());
    for (const auto& [name, counts] : slots_)
        names.push_back(name);
    return names;
}

std::map<std::string, PmuCounts>
Session::takeSlots()
{
    std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, PmuCounts> out;
    out.swap(slots_);
    return out;
}

void
Session::clearSlots()
{
    std::lock_guard<std::mutex> lock(mu_);
    slots_.clear();
}

// ---------------------------------------------------------------------------
// CounterScope
// ---------------------------------------------------------------------------

CounterScope::CounterScope(std::string slot, Span* span)
    : slot_(std::move(slot)), span_(span)
{
    Session& s = Session::instance();
    if (!s.active())
        return;
    active_ = true;
    start_ = s.readAll();
    startNs_ = monotonicNs();
}

CounterScope::~CounterScope()
{
    close();
}

void
CounterScope::close()
{
    if (!active_)
        return;
    active_ = false;
    Session& s = Session::instance();
    delta_ = s.readAll().minus(start_);
    delta_.wallNs = static_cast<double>(monotonicNs() - startNs_);
    s.add(slot_, delta_);
    flightrec::record(flightrec::EventType::Pmu, slot_.c_str(),
                      static_cast<std::int64_t>(delta_.cycles),
                      static_cast<std::int64_t>(delta_.instructions));
    if (span_ && span_->active()) {
        auto annotate = [this](const char* key, double v) {
            if (std::isfinite(v))
                span_->annotate(key, v);
        };
        annotate("pmu.task_clock_ms", delta_.taskClockNs / 1e6);
        annotate("pmu.cycles", delta_.cycles);
        annotate("pmu.instructions", delta_.instructions);
        annotate("pmu.llc_misses", delta_.llcMisses);
        annotate("pmu.llc_references", delta_.llcReferences);
        annotate("pmu.branch_misses", delta_.branchMisses);
        annotate("pmu.page_faults", delta_.pageFaults);
        annotate("pmu.context_switches", delta_.contextSwitches);
    }
}

} // namespace pmu
} // namespace obs
} // namespace cpullm
