#ifndef CPULLM_OBS_PERF_EVENTS_H
#define CPULLM_OBS_PERF_EVENTS_H

/**
 * @file
 * Measured hardware performance counters for the *host* execution
 * path (the functional kernels the thread pool actually runs), built
 * on Linux `perf_event_open`. This is the measured twin of the
 * analytical counter model in perf/cpu_model: the paper reads LLC
 * MPKI, IPC and bandwidth off real PMUs, and this subsystem lets the
 * repo do the same on the machine it runs on, so the modeled trends
 * (decode MPKI >> prefill MPKI, MPKI falling with batch) can be
 * checked against real kernels via `cpullm counters`.
 *
 * Design:
 *
 *  - One *counter group* per thread of the process (leader: the
 *    software task-clock event, which opens wherever perf_event_open
 *    is permitted at all; members: cycles, instructions, LLC
 *    misses/references, branch misses, page faults, context
 *    switches). Groups are opened for every tid in /proc/self/task
 *    when a Session begins — the persistent thread pool is spun up
 *    first so its workers are enumerated. Hardware members that the
 *    machine cannot provide (VMs without a vPMU return ENOENT) are
 *    skipped individually; their fields read as NaN.
 *
 *  - Group reads use PERF_FORMAT_GROUP with TOTAL_TIME_ENABLED /
 *    TOTAL_TIME_RUNNING, and every raw value is multiplex-corrected
 *    by enabled/running (see multiplexScale). time_running == 0
 *    means the event never got PMU time: the count is unknown (NaN),
 *    not zero.
 *
 *  - Fallback chain, keyed off /proc/sys/kernel/perf_event_paranoid
 *    probing plus an actual syscall probe: perf events -> software
 *    backend (getrusage: task-clock, faults, context switches) ->
 *    disabled. Forcing Mode::Perf on a machine without perf access
 *    degrades to the software backend with a warning instead of
 *    failing the run, so every build works in unprivileged CI
 *    containers. Fields a backend cannot measure are quiet NaN and
 *    surface as JSON null downstream (obs::writeRegistryJson,
 *    RunReport, `cpullm counters --json`).
 *
 *  - Optional uncore/IMC bandwidth: when the kernel exposes
 *    uncore_imc devices and the process is privileged enough to open
 *    system-wide events, DRAM CAS read/write counters are added and
 *    imcReadBytes/imcWriteBytes become real; otherwise they stay
 *    NaN and achieved GB/s falls back to the LLC-miss-line estimate.
 *
 * Scopes: CounterScope is an RAII window over the whole process
 * (sum of all per-thread groups). It nests inside obs::Span tracing —
 * pass the span and the measured deltas are attached as pmu.* span
 * args — and accumulates its delta into a named Session slot
 * ("prefill", "decode"), which is how run reports and the
 * `host.pmu.*` registry keys are fed. When no Session is active a
 * CounterScope is inert (no syscalls), so instrumented code paths
 * cost nothing by default.
 */

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cpullm {
namespace obs {

class Span;

namespace pmu {

/** Requested counter mode (CLI --counters / CPULLM_COUNTERS). */
enum class Mode {
    Auto, ///< perf events when available, else software fallback
    Perf, ///< prefer perf events; degrade to soft with a warning
    Soft, ///< rusage-based software backend only
    Off,  ///< measurement disabled
};

/** Parse "auto"/"perf"/"soft"/"off"; false on anything else. */
bool modeFromString(const std::string& s, Mode* out);
const char* modeName(Mode m);

/** @name Process-wide requested mode (default Off)
 * The CLI applies CPULLM_COUNTERS / --counters here; Session::begin
 * consumes it. */
/// @{
void setRequestedMode(Mode m);
Mode requestedMode();
/// @}

/**
 * Apply the CPULLM_COUNTERS environment variable (if set and
 * non-empty) to setRequestedMode. Returns false without side effects
 * when the value is not a known mode, storing the offending text in
 * @p err_value so CLIs can hard-error (exit 2) on it — the same
 * contract as applyThreadsEnv / --threads.
 */
bool applyCountersEnv(std::string* err_value = nullptr);

/** True when CPULLM_COUNTERS is set to a non-empty value. */
bool countersEnvPresent();

/** Backend a Session actually selected. */
enum class Backend {
    Perf,     ///< perf_event_open counter groups
    Soft,     ///< getrusage/procfs software counters
    Disabled, ///< no measurement
};

const char* backendName(Backend b);

/**
 * Counts over one measurement interval, summed across all thread
 * groups. NaN means "not measurable on the active backend" (e.g.
 * cycles under the software fallback, IMC bytes unprivileged) and is
 * emitted as JSON null downstream — never as 0, which would fake a
 * perfect IPC or MPKI.
 */
struct PmuCounts
{
    double wallNs = 0.0;         ///< wall-clock interval
    double taskClockNs = 0.0;    ///< CPU time across threads
    double cycles = 0.0;         ///< core cycles (user space)
    double instructions = 0.0;   ///< retired instructions
    double llcMisses = 0.0;      ///< last-level cache misses
    double llcReferences = 0.0;  ///< last-level cache references
    double branchMisses = 0.0;   ///< mispredicted branches
    double pageFaults = 0.0;     ///< minor + major faults
    double contextSwitches = 0.0;
    double imcReadBytes = 0.0;   ///< uncore DRAM read traffic
    double imcWriteBytes = 0.0;  ///< uncore DRAM write traffic

    /** All-NaN counts (the "nothing measured" identity). */
    static PmuCounts unavailable();

    /**
     * NaN-absorbing accumulate: a field stays NaN only when it is
     * NaN on *both* sides, so partial availability (hardware events
     * on some reads) still sums what was measured.
     */
    PmuCounts& operator+=(const PmuCounts& o);

    /** Per-field delta (this - start); NaN where either side is. */
    PmuCounts minus(const PmuCounts& start) const;
};

/**
 * Multiplex-scaling correction: the kernel time-shares PMU slots
 * between groups, so a raw count covers only time_running of
 * time_enabled. Returns value * enabled / running — the standard
 * linear extrapolation — or NaN when running == 0 (the event never
 * counted; the value is unknown, not zero). running == enabled (no
 * multiplexing) returns the value unchanged.
 */
double multiplexScale(std::uint64_t value, std::uint64_t time_enabled,
                      std::uint64_t time_running);

/**
 * One PERF_FORMAT_GROUP read, decoded. Layout on the wire (u64
 * words): nr, time_enabled, time_running, then {value, id} per
 * event.
 */
struct GroupReading
{
    std::uint64_t timeEnabled = 0;
    std::uint64_t timeRunning = 0;
    /** (event id, raw value) in group order. */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> values;
};

/**
 * Decode a group read buffer of @p n_words u64 words. False when the
 * buffer is truncated or inconsistent (nr does not match the size) —
 * callers treat that read as unavailable rather than trusting
 * garbage.
 */
bool parseGroupReadBuffer(const std::uint64_t* words,
                          std::size_t n_words, GroupReading* out);

/** Default path probed for the kernel's perf restriction level. */
extern const char* const kParanoidPath;

/** What probing the host for perf support found. */
struct PerfProbe
{
    /** perf_event_paranoid level; 3 (most restrictive) when the file
     *  is unreadable, matching kernels that lock perf down. */
    int paranoid = 3;
    /** Level permits unprivileged per-thread counting (<= 2). */
    bool paranoidOk = false;
    /** A software counter group actually opened via the syscall. */
    bool syscallOk = false;
};

/**
 * Probe perf availability: read @p paranoid_path (injectable so the
 * fallback chain is testable against a faked level) and, when the
 * level permits it, try opening a disposable software counter group.
 * seccomp filters and missing kernel support are caught by the
 * syscall probe even when the paranoid level looks fine.
 */
PerfProbe probePerf(const std::string& paranoid_path = kParanoidPath);

/**
 * The fallback chain: requested mode + probe -> backend.
 * Off -> Disabled; Soft -> Soft; Auto/Perf -> Perf when the probe
 * succeeded, else Soft (Perf additionally warns: the user asked for
 * hardware counters the machine cannot deliver, but the run must
 * still complete).
 */
Backend chooseBackend(Mode mode, const PerfProbe& probe);

/**
 * Process-wide measurement session. begin() selects a backend via
 * the fallback chain, spins up the host thread pool (so its workers
 * are enumerable) and opens one counter group per thread; end()
 * closes everything. Named slots accumulate CounterScope deltas
 * ("prefill", "decode") for reports. Thread-safe; begin/end are
 * idempotent in the obvious way (re-begin of an active session is a
 * no-op returning the current backend).
 */
class Session
{
  public:
    /** The process-wide session. */
    static Session& instance();

    /** Activate with @p mode (probing the real host). */
    Backend begin(Mode mode);

    /** Activate against an explicit probe result (tests). */
    Backend begin(Mode mode, const PerfProbe& probe);

    /** Deactivate: close all groups, keep accumulated slots. */
    void end();

    bool active() const;
    Backend backend() const;

    /** Probe result begin() acted on (meaningful while active or
     *  after the first begin). */
    PerfProbe probe() const;

    /** Distinct hardware events that opened per thread group (0 on
     *  the software backend and in PMU-less VMs). */
    int hardwareEventsOpen() const;

    /** Per-thread counter groups currently open. */
    std::size_t threadGroups() const;

    /** True when uncore IMC bandwidth counters opened. */
    bool imcOpen() const;

    /**
     * Instantaneous totals since begin(): sum of every thread
     * group's multiplex-corrected counts (Perf) or process rusage
     * (Soft). All-NaN when Disabled/inactive.
     */
    PmuCounts readAll() const;

    /** Fold @p delta into slot @p name (creates it). */
    void add(const std::string& name, const PmuCounts& delta);

    /** Copy of one slot; all-NaN counts when absent. */
    PmuCounts slot(const std::string& name) const;

    /** Slot names in sorted order. */
    std::vector<std::string> slotNames() const;

    /** Return all slots and clear them (per-run harvesting). */
    std::map<std::string, PmuCounts> takeSlots();

    /** Drop all accumulated slots. */
    void clearSlots();

    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

  private:
    Session() = default;
    friend struct SessionTestAccess;

    struct Impl;

    mutable std::mutex mu_;
    bool active_ = false;
    Backend backend_ = Backend::Disabled;
    PerfProbe probe_;
    std::unique_ptr<Impl> impl_;
    std::map<std::string, PmuCounts> slots_;
};

/**
 * RAII measurement window over the whole process. Construction
 * snapshots Session::readAll(); close() (or the destructor) takes
 * the delta, folds it into the named Session slot, and — when a span
 * was attached — annotates the span with the finite fields as
 * "pmu.<field>" args, putting measured counters next to the modeled
 * ones on the same attribution node. Inert (no syscalls at all) when
 * no Session is active.
 */
class CounterScope
{
  public:
    explicit CounterScope(std::string slot, Span* span = nullptr);
    ~CounterScope();

    CounterScope(const CounterScope&) = delete;
    CounterScope& operator=(const CounterScope&) = delete;

    /** Take the delta and record it; further closes are no-ops. */
    void close();

    /** True until closed (and only when a session was active). */
    bool active() const { return active_; }

    /** The measured delta; valid after close(). */
    const PmuCounts& counts() const { return delta_; }

  private:
    std::string slot_;
    Span* span_ = nullptr;
    bool active_ = false;
    PmuCounts start_;
    PmuCounts delta_;
    std::int64_t startNs_ = 0;
};

} // namespace pmu
} // namespace obs
} // namespace cpullm

#endif // CPULLM_OBS_PERF_EVENTS_H
