#ifndef CPULLM_OBS_TIMESERIES_H
#define CPULLM_OBS_TIMESERIES_H

/**
 * @file
 * Sliding-window time-series aggregators for live serving telemetry.
 * The post-hoc observability stack (Perfetto traces, run reports)
 * answers "what happened"; these answer "what is happening now":
 * request rates, queue-depth gauges, and rolling latency quantiles
 * over the trailing window, queryable while the simulation runs.
 *
 * All classes share the same ring-of-time-buckets design: the window
 * is divided into N slots of width window/N, each slot tagged with
 * the epoch (= floor(t / width)) it currently holds. A write lands in
 * slot epoch%N, lazily clearing it when the epoch advanced; a read at
 * time `now` aggregates only slots whose epoch lies within the
 * trailing window. Writes older than one full window are dropped.
 * Timestamps are caller-provided seconds — simulated time in the
 * serving simulator, wall time in a real server.
 *
 * None of these classes lock; serve::ServingTelemetry serializes
 * concurrent access behind its own mutex.
 */

#include <cstdint>
#include <vector>

#include "stats/stats.h"

namespace cpullm {
namespace obs {

namespace detail {

/** Epoch bookkeeping shared by the windowed aggregators. */
class BucketRing
{
  public:
    BucketRing(double window_s, std::size_t slots);

    static constexpr std::size_t kDropped =
        static_cast<std::size_t>(-1);

    /**
     * Slot for a write at time @p t; sets @p reused when the slot
     * held an older epoch (caller must clear its payload first).
     * Returns kDropped for samples older than the ring can hold.
     */
    std::size_t touch(double t, bool* reused);

    /** True if slot @p i holds data within [now - window, now]. */
    bool live(std::size_t i, double now) const;

    std::size_t slots() const { return epochs_.size(); }
    double window() const { return width_ * static_cast<double>(
                                epochs_.size()); }
    double slotWidth() const { return width_; }

  private:
    std::int64_t epochOf(double t) const;

    double width_;
    std::vector<std::int64_t> epochs_; // -1 = never written
};

} // namespace detail

/**
 * Windowed event counter: record(t, amount) accumulates, rate(now)
 * yields amount/second over the trailing window (over the elapsed
 * time instead while the first window is still filling). The live
 * requests-per-second and tokens-per-second series.
 */
class WindowedCounter
{
  public:
    explicit WindowedCounter(double window_s = 60.0,
                             std::size_t slots = 12);

    void record(double t, double amount = 1.0);

    /** Events in the trailing window. */
    double count(double now) const;
    /** Sum of amounts in the trailing window. */
    double sum(double now) const;
    /** sum(now) per second of covered window. */
    double rate(double now) const;

    double window() const { return ring_.window(); }

  private:
    struct Slot
    {
        double sum = 0.0;
        std::uint64_t count = 0;
    };

    detail::BucketRing ring_;
    std::vector<Slot> slots_;
    double first_ = -1.0; // earliest recorded time, for ramp-up rate
};

/**
 * Windowed gauge: tracks the last recorded value plus min/mean/max
 * over the trailing window. Queue depth and batch occupancy.
 */
class WindowedGauge
{
  public:
    explicit WindowedGauge(double window_s = 60.0,
                           std::size_t slots = 12);

    void record(double t, double v);

    /** Most recent value ever recorded (0 before any sample). */
    double last() const { return last_; }
    bool empty() const { return !has_last_; }

    /** Window aggregates; NaN when no sample lies in the window. */
    double min(double now) const;
    double max(double now) const;
    double mean(double now) const;

  private:
    struct Slot
    {
        double min = 0.0;
        double max = 0.0;
        double sum = 0.0;
        std::uint64_t count = 0;
    };

    detail::BucketRing ring_;
    std::vector<Slot> slots_;
    double last_ = 0.0;
    bool has_last_ = false;
};

/**
 * Rolling histogram: one fixed-bucket stats::Histogram per time
 * slice; queries merge the live slices, so quantile(now, p) is the
 * interpolated percentile over the trailing window only. The live
 * TTFT/TPOT/E2E tail-latency series.
 */
class RollingHistogram
{
  public:
    RollingHistogram(double window_s, std::size_t slices, double lo,
                     double hi, std::size_t buckets);

    void record(double t, double v);

    /** Samples in the trailing window. */
    std::uint64_t count(double now) const;

    /** Merged view of the live slices. */
    stats::Histogram merged(double now) const;

    /** Windowed percentile (0-100); NaN when the window is empty. */
    double quantile(double now, double p) const;

    double window() const { return ring_.window(); }

  private:
    detail::BucketRing ring_;
    std::vector<stats::Histogram> slices_;
};

} // namespace obs
} // namespace cpullm

#endif // CPULLM_OBS_TIMESERIES_H
