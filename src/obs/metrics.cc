#include "obs/metrics.h"

#include <cmath>
#include <fstream>

#include "gemm/attention.h"
#include "util/csv.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace cpullm {
namespace obs {

void
writeRegistryJson(std::ostream& os, const stats::Registry& reg)
{
    os << '{';
    bool first = true;
    for (const auto& name : reg.names()) {
        if (!first)
            os << ',';
        first = false;
        os << jsonQuote(name) << ":{";
        switch (reg.kind(name)) {
          case stats::StatKind::Scalar: {
            const auto& s = reg.getScalar(name);
            os << strformat("\"kind\":\"scalar\",\"value\":%.9g,"
                            "\"samples\":%llu",
                            s.value(),
                            static_cast<unsigned long long>(
                                s.samples()));
            break;
          }
          case stats::StatKind::Distribution: {
            const auto& d = reg.getDistribution(name);
            os << strformat(
                "\"kind\":\"distribution\",\"mean\":%.9g,"
                "\"min\":%.9g,\"max\":%.9g,\"stddev\":%.9g,"
                "\"n\":%llu",
                d.mean(), d.min(), d.max(), d.stddev(),
                static_cast<unsigned long long>(d.count()));
            break;
          }
          case stats::StatKind::Histogram: {
            // Quantiles of an empty histogram are NaN; jsonNumber
            // turns them into null so the document stays parseable.
            const auto& h = reg.getHistogram(name);
            os << strformat(
                "\"kind\":\"histogram\",\"p50\":%s,\"p95\":%s,"
                "\"p99\":%s,\"sum\":%s,\"n\":%llu,"
                "\"underflow\":%llu,\"overflow\":%llu",
                jsonNumber(h.quantile(50.0)).c_str(),
                jsonNumber(h.quantile(95.0)).c_str(),
                jsonNumber(h.quantile(99.0)).c_str(),
                jsonNumber(h.sum()).c_str(),
                static_cast<unsigned long long>(h.count()),
                static_cast<unsigned long long>(h.underflow()),
                static_cast<unsigned long long>(h.overflow()));
            break;
          }
        }
        const std::string& desc = reg.description(name);
        if (!desc.empty())
            os << ",\"desc\":" << jsonQuote(desc);
        os << '}';
    }
    os << '}';
}

void
writeRegistryCsv(std::ostream& os, const stats::Registry& reg)
{
    CsvWriter csv({"name", "kind", "value", "mean", "min", "max",
                   "p50", "p95", "p99", "n", "desc"});
    for (const auto& name : reg.names()) {
        std::vector<std::string> row(11);
        row[0] = name;
        row[10] = reg.description(name);
        switch (reg.kind(name)) {
          case stats::StatKind::Scalar: {
            const auto& s = reg.getScalar(name);
            row[1] = "scalar";
            row[2] = formatNumber(s.value(), 9);
            row[9] = strformat(
                "%llu",
                static_cast<unsigned long long>(s.samples()));
            break;
          }
          case stats::StatKind::Distribution: {
            const auto& d = reg.getDistribution(name);
            row[1] = "distribution";
            row[3] = formatNumber(d.mean(), 9);
            row[4] = formatNumber(d.min(), 9);
            row[5] = formatNumber(d.max(), 9);
            row[9] = strformat(
                "%llu",
                static_cast<unsigned long long>(d.count()));
            break;
          }
          case stats::StatKind::Histogram: {
            const auto& h = reg.getHistogram(name);
            // Empty cells, not "nan", for quantiles with no samples.
            auto cell = [](double v) {
                return std::isfinite(v) ? formatNumber(v, 9)
                                        : std::string();
            };
            row[1] = "histogram";
            row[6] = cell(h.quantile(50.0));
            row[7] = cell(h.quantile(95.0));
            row[8] = cell(h.quantile(99.0));
            row[9] = strformat(
                "%llu",
                static_cast<unsigned long long>(h.count()));
            break;
          }
        }
        csv.addRow(std::move(row));
    }
    csv.write(os);
}

namespace {

template <typename WriteFn>
bool
writeFile(const std::string& path, WriteFn&& fn)
{
    std::ofstream ofs(path);
    if (!ofs) {
        warn("could not open '", path, "' for writing");
        return false;
    }
    fn(ofs);
    return static_cast<bool>(ofs);
}

} // namespace

bool
writeRegistryJsonFile(const std::string& path,
                      const stats::Registry& reg)
{
    return writeFile(path,
                     [&](std::ostream& os) {
                         writeRegistryJson(os, reg);
                     });
}

bool
writeRegistryCsvFile(const std::string& path,
                     const stats::Registry& reg)
{
    return writeFile(path,
                     [&](std::ostream& os) {
                         writeRegistryCsv(os, reg);
                     });
}

void
recordHostPoolStats(stats::Registry& reg)
{
    const ThreadPool::Stats s = ThreadPool::instance().stats();
    auto set = [&reg](const char* name, const char* desc,
                      std::uint64_t v) {
        reg.scalar(name, desc).set(static_cast<double>(v));
    };
    set("host.pool.size", "persistent host worker threads",
        s.poolSize);
    set("host.pool.parallel_ops",
        "parallelFor calls executed on the pool", s.parallelOps);
    set("host.pool.serial_ops",
        "parallelFor calls that ran serial (small range or "
        "single-thread cap)",
        s.serialOps);
    set("host.pool.inline_ops",
        "nested parallelFor calls inlined on a pool thread",
        s.inlineOps);
    set("host.pool.tasks", "loop indices executed via the pool",
        s.tasks);
    set("host.pool.chunks", "work chunks dealt to worker deques",
        s.chunks);
    set("host.pool.steals", "chunks stolen from another worker",
        s.steals);
}

void
recordHostAttnStats(stats::Registry& reg)
{
    const gemm::AttnStats s = gemm::attnStats();
    auto set = [&reg](const char* name, const char* desc,
                      std::uint64_t v) {
        reg.scalar(name, desc).set(static_cast<double>(v));
    };
    set("host.attn.decode_calls", "fused attention calls with m == 1",
        s.decodeCalls);
    set("host.attn.prefill_calls", "fused attention calls with m > 1",
        s.prefillCalls);
    set("host.attn.tasks", "(sequence x kv-head) attention grid tasks",
        s.tasks);
    set("host.attn.span_rows", "K/V rows streamed across all tasks",
        s.spanRows);
    set("host.attn.scratch_allocs",
        "per-thread attention scratch growths (0 in steady state)",
        s.scratchAllocs);
}

} // namespace obs
} // namespace cpullm
