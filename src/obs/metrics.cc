#include "obs/metrics.h"

#include <cmath>
#include <fstream>

#include "gemm/attention.h"
#include "gemm/packed_weights.h"
#include "obs/counters.h"
#include "util/csv.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace cpullm {
namespace obs {

void
writeRegistryJson(std::ostream& os, const stats::Registry& reg)
{
    os << '{';
    bool first = true;
    for (const auto& name : reg.names()) {
        if (!first)
            os << ',';
        first = false;
        os << jsonQuote(name) << ":{";
        switch (reg.kind(name)) {
          case stats::StatKind::Scalar: {
            // Counter ratios with a zero denominator (IPC with 0
            // cycles, MPKI with 0 instructions) are stored as NaN;
            // jsonNumber maps non-finite to null so the document
            // stays parseable, matching the histogram-quantile
            // convention below.
            const auto& s = reg.getScalar(name);
            os << strformat("\"kind\":\"scalar\",\"value\":%s,"
                            "\"samples\":%llu",
                            jsonNumber(s.value()).c_str(),
                            static_cast<unsigned long long>(
                                s.samples()));
            break;
          }
          case stats::StatKind::Distribution: {
            const auto& d = reg.getDistribution(name);
            os << strformat(
                "\"kind\":\"distribution\",\"mean\":%s,"
                "\"min\":%s,\"max\":%s,\"stddev\":%s,"
                "\"n\":%llu",
                jsonNumber(d.mean()).c_str(),
                jsonNumber(d.min()).c_str(),
                jsonNumber(d.max()).c_str(),
                jsonNumber(d.stddev()).c_str(),
                static_cast<unsigned long long>(d.count()));
            break;
          }
          case stats::StatKind::Histogram: {
            // Quantiles of an empty histogram are NaN; jsonNumber
            // turns them into null so the document stays parseable.
            const auto& h = reg.getHistogram(name);
            os << strformat(
                "\"kind\":\"histogram\",\"p50\":%s,\"p95\":%s,"
                "\"p99\":%s,\"sum\":%s,\"n\":%llu,"
                "\"underflow\":%llu,\"overflow\":%llu",
                jsonNumber(h.quantile(50.0)).c_str(),
                jsonNumber(h.quantile(95.0)).c_str(),
                jsonNumber(h.quantile(99.0)).c_str(),
                jsonNumber(h.sum()).c_str(),
                static_cast<unsigned long long>(h.count()),
                static_cast<unsigned long long>(h.underflow()),
                static_cast<unsigned long long>(h.overflow()));
            break;
          }
        }
        const std::string& desc = reg.description(name);
        if (!desc.empty())
            os << ",\"desc\":" << jsonQuote(desc);
        os << '}';
    }
    os << '}';
}

void
writeRegistryCsv(std::ostream& os, const stats::Registry& reg)
{
    CsvWriter csv({"name", "kind", "value", "mean", "min", "max",
                   "p50", "p95", "p99", "n", "desc"});
    // Empty cells, not "nan", for unavailable values: empty
    // quantiles, and counter ratios whose denominator was zero.
    auto cell = [](double v) {
        return std::isfinite(v) ? formatNumber(v, 9) : std::string();
    };
    for (const auto& name : reg.names()) {
        std::vector<std::string> row(11);
        row[0] = name;
        row[10] = reg.description(name);
        switch (reg.kind(name)) {
          case stats::StatKind::Scalar: {
            const auto& s = reg.getScalar(name);
            row[1] = "scalar";
            row[2] = cell(s.value());
            row[9] = strformat(
                "%llu",
                static_cast<unsigned long long>(s.samples()));
            break;
          }
          case stats::StatKind::Distribution: {
            const auto& d = reg.getDistribution(name);
            row[1] = "distribution";
            row[3] = cell(d.mean());
            row[4] = cell(d.min());
            row[5] = cell(d.max());
            row[9] = strformat(
                "%llu",
                static_cast<unsigned long long>(d.count()));
            break;
          }
          case stats::StatKind::Histogram: {
            const auto& h = reg.getHistogram(name);
            row[1] = "histogram";
            row[6] = cell(h.quantile(50.0));
            row[7] = cell(h.quantile(95.0));
            row[8] = cell(h.quantile(99.0));
            row[9] = strformat(
                "%llu",
                static_cast<unsigned long long>(h.count()));
            break;
          }
        }
        csv.addRow(std::move(row));
    }
    csv.write(os);
}

namespace {

template <typename WriteFn>
bool
writeFile(const std::string& path, WriteFn&& fn)
{
    std::ofstream ofs(path);
    if (!ofs) {
        warn("could not open '", path, "' for writing");
        return false;
    }
    fn(ofs);
    return static_cast<bool>(ofs);
}

} // namespace

bool
writeRegistryJsonFile(const std::string& path,
                      const stats::Registry& reg)
{
    return writeFile(path,
                     [&](std::ostream& os) {
                         writeRegistryJson(os, reg);
                     });
}

bool
writeRegistryCsvFile(const std::string& path,
                     const stats::Registry& reg)
{
    return writeFile(path,
                     [&](std::ostream& os) {
                         writeRegistryCsv(os, reg);
                     });
}

void
recordHostPoolStats(stats::Registry& reg)
{
    const ThreadPool::Stats s = ThreadPool::instance().stats();
    auto set = [&reg](const char* name, const char* desc,
                      std::uint64_t v) {
        reg.scalar(name, desc).set(static_cast<double>(v));
    };
    set("host.pool.size", "persistent host worker threads",
        s.poolSize);
    set("host.pool.parallel_ops",
        "parallelFor calls executed on the pool", s.parallelOps);
    set("host.pool.serial_ops",
        "parallelFor calls that ran serial (small range or "
        "single-thread cap)",
        s.serialOps);
    set("host.pool.inline_ops",
        "nested parallelFor calls inlined on a pool thread",
        s.inlineOps);
    set("host.pool.tasks", "loop indices executed via the pool",
        s.tasks);
    set("host.pool.chunks", "work chunks dealt to worker deques",
        s.chunks);
    set("host.pool.steals", "chunks stolen from another worker",
        s.steals);
}

void
recordHostAttnStats(stats::Registry& reg)
{
    const gemm::AttnStats s = gemm::attnStats();
    auto set = [&reg](const char* name, const char* desc,
                      std::uint64_t v) {
        reg.scalar(name, desc).set(static_cast<double>(v));
    };
    set("host.attn.decode_calls", "fused attention calls with m == 1",
        s.decodeCalls);
    set("host.attn.prefill_calls", "fused attention calls with m > 1",
        s.prefillCalls);
    set("host.attn.tasks", "(sequence x kv-head) attention grid tasks",
        s.tasks);
    set("host.attn.span_rows", "K/V rows streamed across all tasks",
        s.spanRows);
    set("host.attn.scratch_allocs",
        "per-thread attention scratch growths (0 in steady state)",
        s.scratchAllocs);
}

void
recordHostQuantStats(stats::Registry& reg)
{
    const gemm::QuantStats s = gemm::quantStats();
    if (s.tensors == 0)
        return;
    auto set = [&reg](const char* name, const char* desc, double v) {
        reg.scalar(name, desc).set(v);
    };
    set("host.quant.tensors", "weight tensors quantized group-wise",
        static_cast<double>(s.tensors));
    set("host.quant.tensors_i4",
        "of which nibble-packed INT4 (rest INT8)",
        static_cast<double>(s.tensorsI4));
    set("host.quant.packed_bytes",
        "quantized weight bytes resident (codes + scales)",
        static_cast<double>(s.packedBytes));
    set("host.quant.native_bytes",
        "packed BF16 tile bytes the quantized forms replace",
        static_cast<double>(s.nativeBytes));
    set("host.quant.bytes_ratio",
        "packed_bytes / native_bytes (lower is better)",
        s.nativeBytes > 0 ? static_cast<double>(s.packedBytes) /
                                static_cast<double>(s.nativeBytes)
                          : std::nan(""));
    set("host.quant.gemm_calls",
        "fused-dequant GEMM calls (m > 1 or INT8 grouped)",
        static_cast<double>(s.gemmCalls));
    set("host.quant.gemv_calls",
        "fused decode GEMV calls (m == 1, INT4)",
        static_cast<double>(s.gemvCalls));
    set("host.quant.bytes_streamed",
        "packed weight bytes streamed by the fused kernels",
        static_cast<double>(s.bytesStreamed));
    set("host.quant.max_abs_err",
        "worst per-weight dequantization error",
        s.maxAbsErr);
    set("host.quant.rms_err",
        "RMS dequantization error over all quantized weights",
        s.rmsErr);
}

void
recordHostPmuStats(stats::Registry& reg)
{
    pmu::Session& session = pmu::Session::instance();
    const std::vector<std::string> slots = session.slotNames();
    if (!session.active() && slots.empty())
        return;
    auto set = [&reg](const std::string& name, const char* desc,
                      double v) {
        reg.scalar(name, desc).set(v);
    };
    set("host.pmu.backend_perf",
        "1 when the perf_event backend is live, 0 under soft",
        session.backend() == pmu::Backend::Perf ? 1.0 : 0.0);
    set("host.pmu.hw_events",
        "hardware counter events open per thread group",
        static_cast<double>(session.hardwareEventsOpen()));
    set("host.pmu.thread_groups",
        "per-thread perf counter groups open",
        static_cast<double>(session.threadGroups()));
    for (const std::string& slot : slots) {
        const pmu::PmuCounts c = session.slot(slot);
        const std::string p = "host.pmu." + slot + ".";
        set(p + "wall_ms", "measured scope wall time (ms)",
            c.wallNs / 1e6);
        set(p + "task_clock_ms",
            "measured CPU time across threads (ms)",
            c.taskClockNs / 1e6);
        set(p + "cycles", "measured core cycles", c.cycles);
        set(p + "instructions", "measured retired instructions",
            c.instructions);
        set(p + "llc_misses", "measured last-level cache misses",
            c.llcMisses);
        set(p + "llc_references",
            "measured last-level cache references", c.llcReferences);
        set(p + "branch_misses", "measured mispredicted branches",
            c.branchMisses);
        set(p + "page_faults", "measured minor+major page faults",
            c.pageFaults);
        set(p + "context_switches", "measured context switches",
            c.contextSwitches);
        // Tokens are unknown at this layer; per-token metrics are
        // derived where the workload is in hand (cpullm counters).
        const CounterMetrics m = deriveCounterMetrics(c, 0.0);
        set(p + "ipc", "measured instructions per cycle", m.ipc);
        set(p + "llc_mpki",
            "measured LLC misses per kilo-instruction", m.llcMpki);
        set(p + "gbps",
            "measured DRAM GB/s (IMC when available, else "
            "LLC-miss-line estimate)",
            m.gbps);
    }
}

} // namespace obs
} // namespace cpullm
