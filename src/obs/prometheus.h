#ifndef CPULLM_OBS_PROMETHEUS_H
#define CPULLM_OBS_PROMETHEUS_H

/**
 * @file
 * Prometheus text exposition (format version 0.0.4) of a
 * stats::Registry, plus a strict line-level parse-back validator in
 * the spirit of util/json.h's jsonValid: the telemetry self-checks
 * and the telemetry_check ctest prove every exposition we serve is
 * scrapeable without pulling in a Prometheus client library.
 *
 * Mapping: Scalar -> gauge; Distribution -> a small gauge family
 * (_mean/_min/_max/_stddev/_count); Histogram -> a native Prometheus
 * histogram with cumulative `_bucket{le="..."}` series (downsampled
 * to a bounded number of boundaries), `_sum` and `_count`. Stat
 * names are sanitized ("serve.ttft" -> prefix_serve_ttft, hostile
 * characters -> '_'), HELP text and label values are escaped.
 */

#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "stats/stats.h"

namespace cpullm {
namespace obs {

/** Content-Type an HTTP /metrics endpoint must declare. */
extern const char* const kPromContentType;

/** Exposition options. */
struct PromWriteOptions
{
    /** Prepended (with '_') to every metric name. */
    std::string prefix = "cpullm";
    /** Histogram boundaries emitted per histogram (excl. +Inf). */
    std::size_t maxHistogramBuckets = 16;
};

/**
 * Sanitize @p raw into a legal Prometheus metric name
 * ([a-zA-Z_:][a-zA-Z0-9_:]*): dots and hostile characters become
 * '_', a leading digit gains a '_' prefix. @p prefix, when
 * non-empty, is joined in front with '_'.
 */
std::string promMetricName(const std::string& raw,
                           const std::string& prefix = "");

/** Escape a label value (backslash, double-quote, newline). */
std::string promEscapeLabel(const std::string& value);

/** Emit `# HELP` (when @p help non-empty) and `# TYPE` lines. */
void writePromHeader(std::ostream& os, const std::string& name,
                     const std::string& help, const std::string& type);

/** One sample line: name{labels} value. Non-finite values emit the
 *  format's NaN/+Inf/-Inf literals. */
void writePromSample(
    std::ostream& os, const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& labels,
    double value);

/** Write every statistic of @p reg in exposition format 0.0.4. */
void writePrometheus(std::ostream& os, const stats::Registry& reg,
                     const PromWriteOptions& opt = {});

/** File variant; false on I/O failure. */
bool writePrometheusFile(const std::string& path,
                         const stats::Registry& reg,
                         const PromWriteOptions& opt = {});

/** @name Parse-back validation */
/// @{

/** One parsed sample line. */
struct PromSample
{
    std::string name;
    std::vector<std::pair<std::string, std::string>> labels;
    double value = 0.0;

    /** Label value by name; "" when absent. */
    std::string label(const std::string& key) const;
};

/** A parsed exposition document. */
struct PromDoc
{
    std::vector<PromSample> samples;
    std::map<std::string, std::string> types; ///< name -> TYPE
    std::map<std::string, std::string> helps; ///< name -> HELP text

    /** First sample with @p name (and @p key == @p value when
     *  non-empty); nullptr when absent. */
    const PromSample* find(const std::string& name,
                           const std::string& key = "",
                           const std::string& value = "") const;
};

/**
 * Strict parser for exposition format 0.0.4. Checks metric/label
 * name grammar, label-value escaping, float syntax (incl. NaN/+Inf),
 * TYPE-before-samples ordering, single TYPE per metric, and for
 * every `histogram` family: cumulative bucket monotonicity, the
 * mandatory `le="+Inf"` bucket, and `_count` == the +Inf bucket.
 * On failure appends "line N: why" strings to @p errors.
 */
bool promParse(const std::string& text, PromDoc* doc,
               std::vector<std::string>* errors = nullptr);

/** promParse without keeping the document. */
bool promValid(const std::string& text,
               std::vector<std::string>* errors = nullptr);

/// @}

} // namespace obs
} // namespace cpullm

#endif // CPULLM_OBS_PROMETHEUS_H
