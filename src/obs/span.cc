#include "obs/span.h"

#include <algorithm>
#include <fstream>

#include "util/json.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace cpullm {
namespace obs {

Span::Span(Span&& o) noexcept : tracer_(o.tracer_), index_(o.index_)
{
    o.tracer_ = nullptr;
}

Span&
Span::operator=(Span&& o) noexcept
{
    if (this != &o) {
        if (tracer_)
            tracer_->closeSpanAtClock(index_);
        tracer_ = o.tracer_;
        index_ = o.index_;
        o.tracer_ = nullptr;
    }
    return *this;
}

Span::~Span()
{
    if (tracer_)
        tracer_->closeSpanAtClock(index_);
}

void
Span::annotate(const std::string& key, const std::string& value)
{
    if (tracer_)
        tracer_->annotateSpan(index_, key, value);
}

void
Span::annotate(const std::string& key, double value)
{
    if (tracer_)
        tracer_->annotateSpan(index_, key,
                              formatNumber(value, 6));
}

void
Span::close(double end_time)
{
    if (tracer_) {
        tracer_->closeSpan(index_, end_time);
        tracer_ = nullptr;
    }
}

void
Span::close()
{
    if (tracer_) {
        tracer_->closeSpanAtClock(index_);
        tracer_ = nullptr;
    }
}

TrackId
Tracer::track(const std::string& process, const std::string& thread)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto [pit, p_new] = processes_.try_emplace(
        process,
        static_cast<std::int64_t>(processes_.size()) + 1);
    (void)p_new;
    const std::int64_t pid = pit->second;
    std::int64_t next_tid = 1;
    for (const auto& [key, tid] : threads_) {
        if (key.first == pid)
            next_tid = std::max(next_tid, tid + 1);
    }
    auto [tit, t_new] =
        threads_.try_emplace({pid, thread}, next_tid);
    (void)t_new;
    return TrackId{pid, tit->second};
}

void
Tracer::setTime(double t)
{
    std::lock_guard<std::mutex> lock(mu_);
    now_ = t;
}

double
Tracer::time() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return now_;
}

Span
Tracer::begin(const std::string& name, const std::string& category,
              TrackId track, double start_time)
{
    CPULLM_ASSERT(start_time >= 0.0, "negative span start");
    std::lock_guard<std::mutex> lock(mu_);
    SpanRecord r;
    r.name = name;
    r.category = category;
    r.track = track;
    r.start = start_time;
    r.end = start_time;
    r.open = true;
    spans_.push_back(std::move(r));
    return Span(this, spans_.size() - 1);
}

Span
Tracer::begin(const std::string& name, const std::string& category,
              TrackId track)
{
    return begin(name, category, track, time());
}

void
Tracer::complete(const std::string& name, const std::string& category,
                 TrackId track, double start, double duration)
{
    CPULLM_ASSERT(start >= 0.0 && duration >= 0.0,
                  "negative span time");
    std::lock_guard<std::mutex> lock(mu_);
    SpanRecord r;
    r.name = name;
    r.category = category;
    r.track = track;
    r.start = start;
    r.end = start + duration;
    spans_.push_back(std::move(r));
}

void
Tracer::instant(const std::string& name, TrackId track, double time)
{
    CPULLM_ASSERT(time >= 0.0, "negative instant time");
    std::lock_guard<std::mutex> lock(mu_);
    instants_.push_back(InstantRecord{name, track, time});
}

void
Tracer::counter(const std::string& name, std::int64_t pid, double time,
                double value)
{
    counter(name, pid, time, {{name, value}});
}

void
Tracer::counter(const std::string& name, std::int64_t pid, double time,
                std::vector<std::pair<std::string, double>> series)
{
    CPULLM_ASSERT(time >= 0.0, "negative counter time");
    std::lock_guard<std::mutex> lock(mu_);
    CounterSample s;
    s.name = name;
    s.pid = pid;
    s.time = time;
    s.series = std::move(series);
    counters_.push_back(std::move(s));
}

void
Tracer::annotateSpan(std::size_t index, const std::string& key,
                     const std::string& value)
{
    std::lock_guard<std::mutex> lock(mu_);
    CPULLM_ASSERT(index < spans_.size(), "bad span index");
    spans_[index].args.emplace_back(key, value);
}

void
Tracer::closeSpan(std::size_t index, double end_time)
{
    std::lock_guard<std::mutex> lock(mu_);
    CPULLM_ASSERT(index < spans_.size(), "bad span index");
    SpanRecord& r = spans_[index];
    CPULLM_ASSERT(r.open, "span closed twice");
    CPULLM_ASSERT(end_time >= r.start,
                  "span '", r.name, "' ends before it starts");
    r.end = end_time;
    r.open = false;
}

void
Tracer::closeSpanAtClock(std::size_t index)
{
    std::lock_guard<std::mutex> lock(mu_);
    CPULLM_ASSERT(index < spans_.size(), "bad span index");
    SpanRecord& r = spans_[index];
    if (!r.open)
        return;
    r.end = std::max(r.start, now_);
    r.open = false;
}

std::size_t
Tracer::spanCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return spans_.size();
}

std::size_t
Tracer::openSpanCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const auto& s : spans_)
        if (s.open)
            ++n;
    return n;
}

std::vector<SpanRecord>
Tracer::spans() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return spans_;
}

std::vector<CounterSample>
Tracer::counterSamples() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
}

std::vector<InstantRecord>
Tracer::instants() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return instants_;
}

std::vector<SpanRecord>
Tracer::spansOnTrack(TrackId track) const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<SpanRecord> out;
    for (const auto& s : spans_) {
        if (s.track.pid == track.pid && s.track.tid == track.tid)
            out.push_back(s);
    }
    return out;
}

std::size_t
Tracer::trackCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return threads_.size();
}

void
Tracer::writeChromeTrace(std::ostream& os) const
{
    std::lock_guard<std::mutex> lock(mu_);

    os << "{\"traceEvents\":[";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            os << ',';
        first = false;
    };

    // Track metadata so Perfetto shows names, not bare pid/tid.
    for (const auto& [pname, pid] : processes_) {
        sep();
        os << strformat(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%lld,"
            "\"args\":{\"name\":%s}}",
            static_cast<long long>(pid),
            jsonQuote(pname).c_str());
    }
    for (const auto& [key, tid] : threads_) {
        sep();
        os << strformat(
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%lld,"
            "\"tid\":%lld,\"args\":{\"name\":%s}}",
            static_cast<long long>(key.first),
            static_cast<long long>(tid),
            jsonQuote(key.second).c_str());
        // Keep tracks in creation order in the Perfetto UI.
        sep();
        os << strformat(
            "{\"name\":\"thread_sort_index\",\"ph\":\"M\","
            "\"pid\":%lld,\"tid\":%lld,"
            "\"args\":{\"sort_index\":%lld}}",
            static_cast<long long>(key.first),
            static_cast<long long>(tid),
            static_cast<long long>(tid));
    }

    // Timed events, sorted by timestamp. Ties break longer-first so
    // parent spans precede their children.
    struct Timed
    {
        double ts;
        double tiebreak;
        std::string json;
    };
    std::vector<Timed> timed;
    timed.reserve(spans_.size() + instants_.size() +
                  counters_.size());

    for (const auto& s : spans_) {
        const double end = s.open ? std::max(s.start, now_) : s.end;
        std::string args;
        for (const auto& [k, v] : s.args) {
            if (!args.empty())
                args += ',';
            args += jsonQuote(k) + ":" + jsonQuote(v);
        }
        timed.push_back(
            {s.start, -(end - s.start),
             strformat("{\"name\":%s,\"cat\":%s,\"ph\":\"X\","
                       "\"ts\":%.3f,\"dur\":%.3f,\"pid\":%lld,"
                       "\"tid\":%lld,\"args\":{%s}}",
                       jsonQuote(s.name).c_str(),
                       jsonQuote(s.category.empty() ? "span"
                                                    : s.category)
                           .c_str(),
                       s.start * 1e6, (end - s.start) * 1e6,
                       static_cast<long long>(s.track.pid),
                       static_cast<long long>(s.track.tid),
                       args.c_str())});
    }
    for (const auto& i : instants_) {
        timed.push_back(
            {i.time, 0.0,
             strformat("{\"name\":%s,\"ph\":\"i\",\"ts\":%.3f,"
                       "\"pid\":%lld,\"tid\":%lld,\"s\":\"t\"}",
                       jsonQuote(i.name).c_str(), i.time * 1e6,
                       static_cast<long long>(i.track.pid),
                       static_cast<long long>(i.track.tid))});
    }
    for (const auto& c : counters_) {
        std::string args;
        for (const auto& [k, v] : c.series) {
            if (!args.empty())
                args += ',';
            args += jsonQuote(k) + ":" + strformat("%.6f", v);
        }
        timed.push_back(
            {c.time, 0.0,
             strformat("{\"name\":%s,\"ph\":\"C\",\"ts\":%.3f,"
                       "\"pid\":%lld,\"args\":{%s}}",
                       jsonQuote(c.name).c_str(), c.time * 1e6,
                       static_cast<long long>(c.pid),
                       args.c_str())});
    }

    std::stable_sort(timed.begin(), timed.end(),
                     [](const Timed& a, const Timed& b) {
                         if (a.ts != b.ts)
                             return a.ts < b.ts;
                         return a.tiebreak < b.tiebreak;
                     });
    for (const auto& t : timed) {
        sep();
        os << t.json;
    }
    os << "],\"displayTimeUnit\":\"ms\"}";
}

bool
Tracer::writeChromeTraceFile(const std::string& path) const
{
    std::ofstream ofs(path);
    if (!ofs) {
        warn("could not open '", path, "' for writing");
        return false;
    }
    writeChromeTrace(ofs);
    return static_cast<bool>(ofs);
}

} // namespace obs
} // namespace cpullm
