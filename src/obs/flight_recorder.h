#ifndef CPULLM_OBS_FLIGHT_RECORDER_H
#define CPULLM_OBS_FLIGHT_RECORDER_H

/**
 * @file
 * Always-on flight recorder: a fixed-size lock-free MPSC ring of the
 * most recent span begin/end, pmu, and telemetry events, dumped for
 * post-mortem triage when something goes wrong.
 *
 * Writers (any registered thread, including signal handlers) claim a
 * slot with one fetch_add and publish it seqlock-style: the slot's
 * stamp goes odd (2*idx+1) before the record bytes are copied in and
 * even (2*idx+2) after, so a reader that observes a mismatched or odd
 * stamp simply skips the slot instead of consuming a torn record.
 * Old records are overwritten once the ring wraps — by design: the
 * recorder keeps the *last* `capacity` events leading up to an
 * incident, like an aircraft flight recorder.
 *
 * Records are versioned fixed-size binary structs in memory and
 * render to JSONL (one header line, then one line per record) via an
 * async-signal-safe formatter — the dump path allocates nothing and
 * only calls write(2), so it can run from the SIGSEGV/SIGABRT/SIGTERM
 * crash handler installed by installCrashHandler(). The same records
 * can be re-exported as a Perfetto/Chrome trace for timeline viewing.
 *
 * Dump triggers, in increasing order of automation:
 *   - on demand: `GET /debug/flightrec` on the serve telemetry port,
 *     or `cpullm run --flightrec-out dump.jsonl`;
 *   - on crash: SIGSEGV/SIGABRT/SIGTERM and CPULLM_FATAL/CPULLM_PANIC
 *     (via the logging crash hook);
 *   - on SLO incident: the serving telemetry layer calls dumpToFile()
 *     when a burn-rate breach or latency z-score outlier fires.
 */

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cpullm {
namespace obs {
namespace flightrec {

/** Bumped whenever the Record layout or dump schema changes. */
constexpr int kDumpVersion = 1;

/** Record name storage (including NUL); longer names are clipped. */
constexpr int kRecNameChars = 24;

/** tid used for records emitted by unregistered threads. */
constexpr std::uint32_t kUnknownTid = 0xFFFFFFFFu;

enum class EventType : std::uint32_t
{
    Marker = 1,    ///< thread_start, incident reasons, free-form notes
    SpanBegin = 2, ///< logical-stack frame entered (a = depth)
    SpanEnd = 3,   ///< logical-stack frame left
    Pmu = 4,       ///< counter scope closed (a/b = cycles/instructions)
    Telemetry = 5, ///< serving lifecycle events (a = value, e.g. ms)
    Crash = 6,     ///< emitted by the crash handler (a = signal)
};

/** Stable lower-case token for the JSONL "type" field. */
const char* eventTypeName(EventType t) noexcept;

/** Inverse of eventTypeName; false when @p s is not a known token. */
bool eventTypeFromName(const std::string& s, EventType* out);

/** One fixed-size versioned record; trivially copyable. */
struct Record
{
    std::uint32_t type = 0; ///< EventType as integer
    std::uint32_t tid = 0;  ///< threadreg slot id (or kUnknownTid)
    std::uint64_t seq = 0;  ///< per-thread monotonic sequence number
    std::uint64_t t_ns = 0; ///< CLOCK_MONOTONIC nanoseconds
    char name[kRecNameChars] = {};
    std::int64_t a = 0;     ///< type-specific payload
    std::int64_t b = 0;     ///< type-specific payload
};

/**
 * The lock-free MPSC ring itself, usable standalone in tests. The
 * process-wide recorder below owns one instance.
 */
class Ring
{
  public:
    /** Capacity is @p min_capacity rounded up to a power of two. */
    explicit Ring(std::size_t min_capacity);
    ~Ring();
    Ring(const Ring&) = delete;
    Ring& operator=(const Ring&) = delete;

    std::size_t capacity() const noexcept { return mask_ + 1; }
    /** Total records ever pushed (monotonic). */
    std::uint64_t pushed() const noexcept;
    /** Records lost to wraparound: max(0, pushed - capacity). */
    std::uint64_t overwritten() const noexcept;

    /** Lock-free, async-signal-safe, wait-free for writers. */
    void push(const Record& r) noexcept;

    /**
     * Copy the currently valid records, oldest first, skipping slots
     * that are mid-write. Safe concurrently with writers. Returns the
     * number of records appended to @p out.
     */
    std::size_t snapshot(std::vector<Record>* out) const;

    /**
     * Async-signal-safe record dump: one JSONL line per live record
     * written straight to @p fd with no allocation. (The process-wide
     * signalSafeDump() prepends the header line.)
     */
    void dumpRecordsToFd(int fd) const noexcept;

  private:
    struct Slot
    {
        std::atomic<std::uint64_t> stamp{0};
        Record rec;
    };

    Slot* slots_ = nullptr;
    std::size_t mask_ = 0;
    std::atomic<std::uint64_t> head_{0};
};

/** @name Process-wide recorder */
/// @{

/**
 * Turn the recorder on with a ring of at least @p min_capacity
 * records and subscribe to threadreg frame/register sinks (spans and
 * thread_start markers start flowing immediately). Idempotent; a
 * repeated call with a different capacity swaps in a fresh ring.
 */
void enable(std::size_t min_capacity = 1 << 14);
bool enabled() noexcept;
/** Detach sinks and stop recording (tests). Dumps still see the old ring. */
void disable() noexcept;

std::uint64_t pushedCount() noexcept;
std::size_t ringCapacity() noexcept;

/**
 * Append one event for the calling thread (tid + per-thread seq come
 * from its threadreg slot; unregistered threads record under
 * kUnknownTid with a shared sequence). No-op while disabled.
 * Async-signal-safe.
 */
void record(EventType type, const char* name, std::int64_t a = 0,
            std::int64_t b = 0) noexcept;

/**
 * Full dump (header line + records) to an open fd. Async-signal-safe:
 * no allocation, write(2) only. Safe to call while writers are live.
 */
void signalSafeDump(int fd) noexcept;

/** Full dump to a file path; false on open/write failure. */
bool dumpToFile(const std::string& path);

/** Full dump rendered to a string (same bytes as dumpToFile). */
std::string dumpToString();

/**
 * Install SIGSEGV/SIGABRT/SIGTERM handlers and the logging crash hook
 * (CPULLM_FATAL/CPULLM_PANIC): on the first of any of these, the ring
 * is dumped to @p dump_path, then the original disposition is
 * restored and the signal re-raised so the process still dies by the
 * signal. A dump-once guard keeps panic→abort→SIGABRT from dumping
 * twice. Idempotent; the path is captured at install time.
 */
void installCrashHandler(const std::string& dump_path);

/** Path captured by installCrashHandler, or "" when not installed. */
const char* crashDumpPath() noexcept;

/// @}

/** @name Dump parsing / re-export */
/// @{

struct DumpThread
{
    std::uint32_t tid = 0;
    std::string name;
};

struct ParsedDump
{
    int version = 0;
    std::uint64_t pushed = 0;
    std::uint64_t overwritten = 0;
    std::size_t capacity = 0;
    std::vector<DumpThread> threads;
    std::vector<Record> records; ///< oldest first, ring order
};

/**
 * Strict parse of a JSONL dump. Returns false (with a reason in
 * @p err) on schema violations: bad header, unknown event type,
 * malformed record line.
 */
bool parseDump(const std::string& text, ParsedDump* out,
               std::string* err = nullptr);
bool parseDumpFile(const std::string& path, ParsedDump* out,
                   std::string* err = nullptr);

/**
 * Re-export a parsed dump as a Perfetto/Chrome trace: span begin/end
 * pairs become duration slices per thread track, everything else
 * becomes instant events. False on write failure.
 */
bool writePerfettoFile(const std::string& path, const ParsedDump& dump);

/// @}

} // namespace flightrec
} // namespace obs
} // namespace cpullm

#endif // CPULLM_OBS_FLIGHT_RECORDER_H
