#ifndef CPULLM_OBS_ATTRIBUTION_H
#define CPULLM_OBS_ATTRIBUTION_H

/**
 * @file
 * Top-down bottleneck attribution (the paper's core deliverable,
 * Findings 1-3): which resource each part of an inference run is
 * bound by, and how the wall clock divides across the hierarchy
 * run -> phase -> layer -> operator kind.
 *
 * The tree is built from the same per-operator compute/memory/
 * overhead decomposition the analytical timing models already solve
 * (perf::CpuPerfModel::costPhaseOps and the GPU offload StepCost);
 * instead of being collapsed into one latency number, every node
 * keeps
 *
 *  - its wall time and its share of the parent,
 *  - the *raw* resource demands (what compute or memory alone would
 *    have taken),
 *  - a wall-time attribution: each operator's visible time assigned
 *    to the resource that bounded it (compute / memory / dispatch
 *    overhead / interconnect transfer), which sums exactly to the
 *    node time, and
 *  - a bound_by verdict (the largest attributed bucket).
 *
 * The result renders as an ASCII roofline report, embeds into JSONL
 * run reports (RunReport::attribution), flattens into the
 * BENCH_*.json baseline metrics, and exports as Perfetto counter
 * tracks.
 */

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/span.h"
#include "perf/cpu_model.h"
#include "perf/workload.h"

namespace cpullm {
namespace obs {

/** The resource buckets wall time is attributed to. */
enum class BoundBy {
    Compute,  ///< matrix/vector engine throughput
    Memory,   ///< DRAM/HBM (or host-side) bandwidth
    Overhead, ///< kernel dispatch, barriers, framework cost
    Transfer, ///< socket interconnect (UPI) or host link (PCIe)
};

const char* boundByName(BoundBy b);

/** One node of the attribution tree. Times are seconds. */
struct AttributionNode
{
    std::string name; ///< "run", "prefill", "layer3", "gemm", ...
    std::string kind; ///< "run" / "phase" / "layer" / "op_kind" /
                      ///< "component"

    double time = 0.0;  ///< wall time attributed to this node
    double share = 1.0; ///< fraction of the parent's time

    /** Raw resource demand (not overlap-aware; for the roofline). */
    double computeTime = 0.0;
    double memoryTime = 0.0;
    double overheadTime = 0.0;

    /** Wall-time attribution; the four buckets sum to `time`. */
    double boundCompute = 0.0;
    double boundMemory = 0.0;
    double boundOverhead = 0.0;
    double boundTransfer = 0.0;

    /** Work done inside this node. */
    double flops = 0.0;
    double dramBytes = 0.0; ///< streamed weight + KV traffic
    double actBytes = 0.0;  ///< cache-level activation traffic

    BoundBy boundBy = BoundBy::Compute;

    std::vector<AttributionNode> children;

    double
    achievedGflops() const
    {
        return time > 0.0 ? flops / time / 1e9 : 0.0;
    }

    double
    achievedDramGBps() const
    {
        return time > 0.0 ? dramBytes / time / 1e9 : 0.0;
    }

    /** Child by name; nullptr if absent. */
    const AttributionNode* child(const std::string& name) const;

    /**
     * Fold one operator's cost into the raw/attributed buckets and
     * work totals (not into `time`/`share`, which finalize() owns).
     */
    void accumulateOp(const perf::OpDesc& op,
                      const perf::CpuPerfModel::OpCost& cost);

    /**
     * Recursively sum children into this node (when it has any),
     * recompute every child's share of this node's time, and settle
     * the bound_by verdict from the attributed buckets.
     */
    void finalize();
};

/** Whole-run attribution plus the roofline it is judged against. */
struct Attribution
{
    static constexpr int kSchemaVersion = 1;

    std::string device; ///< platform / GPU label
    double peakGflops = 0.0;   ///< matrix-engine peak, GFLOP/s
    double peakDramGBps = 0.0; ///< weight-stream bandwidth, GB/s

    AttributionNode root; ///< kind "run"; children are the phases

    /** Phase node ("prefill"/"decode"); nullptr if absent. */
    const AttributionNode* phase(const std::string& name) const;

    /** Serialize the tree as one JSON object (schema-versioned). */
    std::string toJson() const;

    /**
     * Flatten phase-level results into metric keys for the bench
     * baselines: attr_<phase>_{share, compute_share, memory_share,
     * overhead_share, transfer_share, gflops, dram_gbps} plus
     * attr_<phase>_bound_<verdict> = 1.
     */
    void summaryMetrics(std::map<std::string, double>& out) const;
};

/**
 * Attribute one CPU inference run: prefill plus every decode step,
 * hierarchy run -> phase -> layer -> operator kind, with a
 * "upi_exchange" component under a phase when the platform spans
 * sockets. Node times reproduce perf::CpuPerfModel::run exactly.
 */
Attribution attributeCpuRun(const perf::CpuPerfModel& model,
                            const model::ModelSpec& spec,
                            const perf::Workload& w);

/**
 * Render as an indented ASCII report with share bars and per-phase
 * achieved-vs-peak roofline lines. @p max_depth limits recursion
 * (1 = phases only); layer levels print their slowest entries first
 * and elide the rest.
 */
void renderAttributionReport(std::ostream& os, const Attribution& a,
                             int max_depth = 2);

/**
 * Emit the attributed time shares of @p node as one sample of the
 * multi-series counter track "attribution_share" at @p time (series
 * compute/memory/overhead/transfer, values 0-1).
 */
void emitAttributionShares(Tracer& tracer, std::int64_t pid,
                           double time, const AttributionNode& node);

/** Drop every attribution-share series to zero at @p time. */
void closeAttributionShares(Tracer& tracer, std::int64_t pid,
                            double time);

} // namespace obs
} // namespace cpullm

#endif // CPULLM_OBS_ATTRIBUTION_H
