#ifndef CPULLM_OBS_COUNTERS_H
#define CPULLM_OBS_COUNTERS_H

/**
 * @file
 * Emulated-perf-counter surface: converts the timing models' counter
 * totals (perf::Counters plus operator byte/FLOP totals) into rate
 * samples on Chrome-trace counter tracks, so Perfetto renders the
 * Fig 11/12/15/16-style bandwidth / MPKI / utilization timelines the
 * paper reads off real hardware counters.
 *
 * Convention: one sample is emitted at the start of the interval it
 * describes (Chrome counters step-interpolate), and closeCounters()
 * drops every series to zero at end of run so the last interval does
 * not bleed to infinity.
 */

#include <cstdint>

#include "obs/span.h"
#include "perf/timing.h"

namespace cpullm {
namespace obs {

/** Per-interval counter rates derived from modeled totals. */
struct CounterRates
{
    double dramGBps = 0.0;    ///< weight + KV streaming bandwidth
    double actGBps = 0.0;     ///< activation (cache-level) traffic
    double gflops = 0.0;      ///< achieved compute rate
    double llcMpki = 0.0;     ///< LLC misses per kilo-instruction
    double coreUtil = 0.0;    ///< 0-1
    double upiUtil = 0.0;     ///< 0-1
    double upiGBps = 0.0;     ///< socket-interconnect traffic
};

/**
 * Rates over an interval of @p seconds from modeled totals:
 * @p counters (instruction/LLC/UPI model), @p flops and the streamed
 * @p dram_bytes / cache-level @p act_bytes.
 */
CounterRates ratesFromCounters(const perf::Counters& counters,
                               double flops, double dram_bytes,
                               double act_bytes, double seconds);

/**
 * Emit one sample of every counter track at @p time under process
 * @p pid. Track names are stable ("bandwidth_GBps", "compute_GFLOPs",
 * "llc_mpki", "utilization").
 */
void emitCounterRates(Tracer& tracer, std::int64_t pid, double time,
                      const CounterRates& rates);

/** Convenience: derive rates for [start, end) and emit at start. */
void emitPhaseCounters(Tracer& tracer, std::int64_t pid, double start,
                       double end, const perf::Counters& counters,
                       double flops, double dram_bytes,
                       double act_bytes);

/** Drop all series to zero at @p time (end of run). */
void closeCounters(Tracer& tracer, std::int64_t pid, double time);

} // namespace obs
} // namespace cpullm

#endif // CPULLM_OBS_COUNTERS_H
