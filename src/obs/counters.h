#ifndef CPULLM_OBS_COUNTERS_H
#define CPULLM_OBS_COUNTERS_H

/**
 * @file
 * Emulated-perf-counter surface: converts the timing models' counter
 * totals (perf::Counters plus operator byte/FLOP totals) into rate
 * samples on Chrome-trace counter tracks, so Perfetto renders the
 * Fig 11/12/15/16-style bandwidth / MPKI / utilization timelines the
 * paper reads off real hardware counters.
 *
 * Convention: one sample is emitted at the start of the interval it
 * describes (Chrome counters step-interpolate), and closeCounters()
 * drops every series to zero at end of run so the last interval does
 * not bleed to infinity.
 */

#include <cstdint>

#include "obs/perf_events.h"
#include "obs/span.h"
#include "perf/timing.h"

namespace cpullm {
namespace obs {

/** Cache line size assumed when estimating DRAM traffic from LLC
 *  misses (one line streamed per miss). */
constexpr double kCacheLineBytes = 64.0;

/**
 * The paper's headline derived metrics, computed in exactly one place
 * for both the measured (pmu::PmuCounts) and the analytical
 * (perf::Counters / cpu_model) paths so `cpullm counters` and
 * bench_diff compare like against like. Every field is NaN when its
 * inputs are unavailable or the denominator is zero — downstream JSON
 * emits null, never nan or a fake 0.
 */
struct CounterMetrics
{
    double ipc = 0.0;          ///< instructions / cycles
    double llcMpki = 0.0;      ///< LLC misses per kilo-instruction
    double llcMissRate = 0.0;  ///< LLC misses / references
    double gbps = 0.0;         ///< achieved DRAM GB/s
    double instructionsPerToken = 0.0;
    double bytesPerToken = 0.0;
};

/**
 * Derive the headline metrics from raw totals. @p bytes is DRAM
 * traffic over the interval; @p seconds the wall time; @p tokens the
 * tokens produced (0 -> per-token fields NaN). Any NaN input flows
 * through to the metrics that need it.
 */
CounterMetrics deriveCounterMetrics(double instructions, double cycles,
                                    double llc_misses,
                                    double llc_references, double bytes,
                                    double seconds, double tokens);

/**
 * Measured flavour: metrics from a PmuCounts interval. DRAM bytes
 * prefer the IMC read+write counters when they opened; otherwise the
 * LLC-miss cache-line estimate (misses * kCacheLineBytes), the same
 * estimate the analytical path uses, keeping the two comparable.
 */
CounterMetrics deriveCounterMetrics(const pmu::PmuCounts& counts,
                                    double tokens);

/** DRAM bytes for a measured interval (IMC if available, else the
 *  LLC-miss line estimate; NaN when neither was measured). */
double estimateDramBytes(const pmu::PmuCounts& counts);

/**
 * Cycles the analytical model implies for an interval: utilization *
 * cores * frequency * seconds. The cpu_model reports utilization, not
 * cycles, so this is how the modeled side gets an IPC comparable to
 * the measured one.
 */
double modeledCycles(double core_utilization, double cores_used,
                     double core_frequency_hz, double seconds);

/** Per-interval counter rates derived from modeled totals. */
struct CounterRates
{
    double dramGBps = 0.0;    ///< weight + KV streaming bandwidth
    double actGBps = 0.0;     ///< activation (cache-level) traffic
    double gflops = 0.0;      ///< achieved compute rate
    double llcMpki = 0.0;     ///< LLC misses per kilo-instruction
    double coreUtil = 0.0;    ///< 0-1
    double upiUtil = 0.0;     ///< 0-1
    double upiGBps = 0.0;     ///< socket-interconnect traffic
};

/**
 * Rates over an interval of @p seconds from modeled totals:
 * @p counters (instruction/LLC/UPI model), @p flops and the streamed
 * @p dram_bytes / cache-level @p act_bytes.
 */
CounterRates ratesFromCounters(const perf::Counters& counters,
                               double flops, double dram_bytes,
                               double act_bytes, double seconds);

/**
 * Emit one sample of every counter track at @p time under process
 * @p pid. Track names are stable ("bandwidth_GBps", "compute_GFLOPs",
 * "llc_mpki", "utilization").
 */
void emitCounterRates(Tracer& tracer, std::int64_t pid, double time,
                      const CounterRates& rates);

/** Convenience: derive rates for [start, end) and emit at start. */
void emitPhaseCounters(Tracer& tracer, std::int64_t pid, double start,
                       double end, const perf::Counters& counters,
                       double flops, double dram_bytes,
                       double act_bytes);

/** Drop all series to zero at @p time (end of run). */
void closeCounters(Tracer& tracer, std::int64_t pid, double time);

} // namespace obs
} // namespace cpullm

#endif // CPULLM_OBS_COUNTERS_H
