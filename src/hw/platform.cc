#include "hw/platform.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace cpullm {
namespace hw {

std::string
memoryModeName(MemoryMode mode)
{
    switch (mode) {
      case MemoryMode::DdrOnly:
        return "ddr";
      case MemoryMode::HbmOnly:
        return "hbm_only";
      case MemoryMode::Flat:
        return "flat";
      case MemoryMode::Cache:
        return "cache";
    }
    CPULLM_PANIC("unhandled MemoryMode");
}

std::string
clusteringModeName(ClusteringMode mode)
{
    switch (mode) {
      case ClusteringMode::Quadrant:
        return "quad";
      case ClusteringMode::Snc4:
        return "snc";
    }
    CPULLM_PANIC("unhandled ClusteringMode");
}

MemoryMode
memoryModeFromName(const std::string& name)
{
    const std::string n = toLower(name);
    if (n == "ddr" || n == "ddr_only")
        return MemoryMode::DdrOnly;
    if (n == "hbm_only" || n == "hbm")
        return MemoryMode::HbmOnly;
    if (n == "flat")
        return MemoryMode::Flat;
    if (n == "cache")
        return MemoryMode::Cache;
    CPULLM_FATAL("unknown memory mode '", name, "'");
}

ClusteringMode
clusteringModeFromName(const std::string& name)
{
    const std::string n = toLower(name);
    if (n == "quad" || n == "quadrant")
        return ClusteringMode::Quadrant;
    if (n == "snc" || n == "snc4" || n == "snc-4")
        return ClusteringMode::Snc4;
    CPULLM_FATAL("unknown clustering mode '", name, "'");
}

std::string
PlatformConfig::label() const
{
    return strformat("%s/%s_%s/%dc", cpu.shortName.c_str(),
                     clusteringModeName(clusteringMode).c_str(),
                     memoryModeName(memoryMode).c_str(), coresUsed);
}

void
validatePlatform(const PlatformConfig& p)
{
    if (p.coresUsed <= 0 || p.coresUsed > p.cpu.totalCores()) {
        CPULLM_FATAL("core count ", p.coresUsed,
                     " out of range for ", p.cpu.name, " (1-",
                     p.cpu.totalCores(), ")");
    }
    const bool needs_hbm = p.memoryMode == MemoryMode::HbmOnly ||
                           p.memoryMode == MemoryMode::Flat ||
                           p.memoryMode == MemoryMode::Cache;
    if (needs_hbm && !p.cpu.hasHbm()) {
        CPULLM_FATAL("memory mode '", memoryModeName(p.memoryMode),
                     "' requires HBM, but ", p.cpu.name,
                     " has none");
    }
}

PlatformConfig
iclDefaultPlatform()
{
    PlatformConfig p;
    p.cpu = iclXeon8352Y();
    p.memoryMode = MemoryMode::DdrOnly;
    p.clusteringMode = ClusteringMode::Quadrant;
    p.coresUsed = 32;
    return p;
}

PlatformConfig
sprDefaultPlatform()
{
    return sprPlatform(ClusteringMode::Quadrant, MemoryMode::Flat, 48);
}

PlatformConfig
sprPlatform(ClusteringMode cm, MemoryMode mm, int cores)
{
    PlatformConfig p;
    p.cpu = sprXeonMax9468();
    p.memoryMode = mm;
    p.clusteringMode = cm;
    p.coresUsed = cores;
    validatePlatform(p);
    return p;
}

std::vector<PlatformConfig>
sprModeSweepPlatforms()
{
    return {
        sprPlatform(ClusteringMode::Quadrant, MemoryMode::Cache, 48),
        sprPlatform(ClusteringMode::Quadrant, MemoryMode::Flat, 48),
        sprPlatform(ClusteringMode::Snc4, MemoryMode::Cache, 48),
        sprPlatform(ClusteringMode::Snc4, MemoryMode::Flat, 48),
    };
}

PlatformConfig
platformByName(const std::string& name)
{
    const std::string n = toLower(name);
    if (n == "icl")
        return iclDefaultPlatform();
    if (n == "spr")
        return sprDefaultPlatform();

    // "cpu/clustering_memory/NNc"
    const auto parts = split(n, '/');
    if (parts.size() != 3) {
        CPULLM_FATAL("bad platform name '", name,
                     "' (expected e.g. spr/quad_flat/48c)");
    }
    PlatformConfig p;
    p.cpu = cpuByName(parts[0]);
    const auto modes = split(parts[1], '_');
    if (modes.size() != 2) {
        CPULLM_FATAL("bad mode spec '", parts[1],
                     "' (expected e.g. quad_flat)");
    }
    p.clusteringMode = clusteringModeFromName(modes[0]);
    p.memoryMode = memoryModeFromName(modes[1]);
    std::string cores = parts[2];
    if (!cores.empty() && cores.back() == 'c')
        cores.pop_back();
    p.coresUsed = std::atoi(cores.c_str());
    validatePlatform(p);
    return p;
}

} // namespace hw
} // namespace cpullm
