#ifndef CPULLM_HW_TYPES_H
#define CPULLM_HW_TYPES_H

/**
 * @file
 * Shared hardware-description types: memory devices, caches, and
 * chip-to-chip interconnects. Capacities are bytes; bandwidths are
 * bytes/second (vendor-decimal); latencies are seconds.
 */

#include <cstdint>
#include <string>

namespace cpullm {
namespace hw {

/** Kind of memory device attached to a socket or GPU. */
enum class MemKind {
    DDR4,
    DDR5,
    HBM2e,   ///< on-package HBM of the SPR Max series
    GpuHBM,  ///< GPU device memory
    CXL,     ///< CXL-attached memory expansion (Section III)
};

/** Human-readable kind name. */
std::string memKindName(MemKind kind);

/** One memory device (per socket for CPUs, per board for GPUs). */
struct MemoryDeviceConfig
{
    MemKind kind = MemKind::DDR5;
    /** Capacity attached to one socket/board, bytes. */
    std::uint64_t capacityBytes = 0;
    /** Peak sustained bandwidth per socket/board, bytes/s (STREAM). */
    double bandwidth = 0.0;
    /** Idle access latency, seconds. */
    double latency = 90e-9;
    /**
     * Fraction of STREAM bandwidth achieved by inference access
     * patterns (mixed reads/writes, GEMV strides). DDR4 degrades the
     * most; HBM's many channels degrade least.
     */
    double streamEfficiency = 0.9;
};

/** Per-core and shared cache capacities. */
struct CacheConfig
{
    std::uint64_t l1dPerCore = 0;
    std::uint64_t l2PerCore = 0;
    /** Shared LLC per socket. */
    std::uint64_t l3Shared = 0;
    /** Cache line size, bytes. */
    std::uint32_t lineSize = 64;
};

/** A chip-to-chip link (UPI between sockets, PCIe to a GPU). */
struct InterconnectConfig
{
    std::string name;
    /** Peak bandwidth per direction, bytes/s. */
    double bandwidth = 0.0;
    /** Achievable fraction of peak for bulk transfers. */
    double efficiency = 0.8;
    /** One-way latency, seconds. */
    double latency = 500e-9;

    /** Effective bulk-transfer bandwidth. */
    double effectiveBandwidth() const { return bandwidth * efficiency; }
};

} // namespace hw
} // namespace cpullm

#endif // CPULLM_HW_TYPES_H
