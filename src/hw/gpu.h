#ifndef CPULLM_HW_GPU_H
#define CPULLM_HW_GPU_H

/**
 * @file
 * GPU board descriptions. The two presets mirror Table II of the
 * paper: NVIDIA A100-40GB (PCIe 4.0 host link) and H100-80GB
 * (PCIe 5.0 host link).
 */

#include <cstdint>
#include <string>

#include "hw/types.h"

namespace cpullm {
namespace hw {

/** A GPU board plus its host link, as used for offloading inference. */
struct GpuConfig
{
    std::string name;      ///< e.g. "NVIDIA H100"
    std::string shortName; ///< e.g. "h100"

    int numSms = 0;
    /** Peak dense BF16 FLOP/s (tensor cores, no sparsity). */
    double bf16Flops = 0.0;
    /** Peak FP32 (CUDA core) FLOP/s, for non-GEMM ops. */
    double fp32Flops = 0.0;

    std::uint64_t l1PerSm = 0;
    std::uint64_t l2Shared = 0;

    /** Device memory. */
    MemoryDeviceConfig memory;

    /** Host link used to reach CPU DRAM for offloading. */
    InterconnectConfig pcie;

    /**
     * Host DRAM bandwidth available to the offload runtime for
     * CPU-side work (attention over offloaded KV cache), bytes/s.
     */
    double hostMemoryBandwidth = 150.0e9;
    /** Host DRAM capacity available for offloaded state, bytes. */
    std::uint64_t hostMemoryBytes = 0;
};

/** NVIDIA A100-40GB over PCIe 4.0 x16: Table II, GPU 1. */
GpuConfig nvidiaA100();

/** NVIDIA H100-80GB over PCIe 5.0 x16: Table II, GPU 2. */
GpuConfig nvidiaH100();

/** Look up a GPU preset ("a100", "h100"); fatal if unknown. */
GpuConfig gpuByName(const std::string& short_name);

} // namespace hw
} // namespace cpullm

#endif // CPULLM_HW_GPU_H
