#ifndef CPULLM_HW_PLATFORM_H
#define CPULLM_HW_PLATFORM_H

/**
 * @file
 * A Platform is a CPU chip plus the server knobs the paper sweeps:
 * the HBM memory mode (HBM-only / Flat / Cache), the clustering mode
 * (Quadrant / SNC-4), and the number of cores given to inference.
 */

#include <string>
#include <vector>

#include "hw/cpu.h"

namespace cpullm {
namespace hw {

/** HBM operating modes of the SPR Max series (Section II-E). */
enum class MemoryMode {
    DdrOnly,  ///< no HBM present (ICL) or HBM unused
    HbmOnly,  ///< only HBM visible; capacity-limited
    Flat,     ///< HBM and DDR as separate NUMA nodes (software managed)
    Cache,    ///< HBM acts as a memory-side cache in front of DDR
};

/** Clustering modes (Section II-E). */
enum class ClusteringMode {
    Quadrant, ///< one NUMA node per socket
    Snc4,     ///< four sub-NUMA clusters per socket
};

std::string memoryModeName(MemoryMode mode);
std::string clusteringModeName(ClusteringMode mode);
MemoryMode memoryModeFromName(const std::string& name);
ClusteringMode clusteringModeFromName(const std::string& name);

/** A fully-specified CPU execution platform. */
struct PlatformConfig
{
    CpuConfig cpu;
    MemoryMode memoryMode = MemoryMode::DdrOnly;
    ClusteringMode clusteringMode = ClusteringMode::Quadrant;
    /** Cores used for inference (numactl-style binding). */
    int coresUsed = 0;

    /** Sockets spanned by coresUsed. */
    int
    socketsUsed() const
    {
        return (coresUsed + cpu.coresPerSocket - 1) /
               cpu.coresPerSocket;
    }

    bool spansSockets() const { return socketsUsed() > 1; }

    /** e.g. "spr/quad_flat/48c". */
    std::string label() const;
};

/**
 * Validate a platform; fatal() on user errors such as HBM modes on a
 * chip without HBM or a core count exceeding the machine.
 */
void validatePlatform(const PlatformConfig& p);

/** ICL reference platform: 32 cores, DDR4, quadrant (Section IV-B). */
PlatformConfig iclDefaultPlatform();

/**
 * SPR reference platform: 48 cores (one socket), quad + flat, the
 * configuration Key Finding #2/#3 identify as best.
 */
PlatformConfig sprDefaultPlatform();

/** SPR with explicit memory/clustering modes and core count. */
PlatformConfig sprPlatform(ClusteringMode cm, MemoryMode mm, int cores);

/**
 * The four mode combinations of Fig 13, in the paper's order:
 * quad_cache, quad_flat, snc_cache, snc_flat (48 cores each).
 */
std::vector<PlatformConfig> sprModeSweepPlatforms();

/**
 * Parse "spr/quad_flat/48c"-style labels (also accepts "icl" and
 * "spr" shorthands for the default platforms); fatal on bad syntax.
 */
PlatformConfig platformByName(const std::string& name);

} // namespace hw
} // namespace cpullm

#endif // CPULLM_HW_PLATFORM_H
