#include "hw/gpu.h"

#include "util/logging.h"
#include "util/string_util.h"
#include "util/units.h"

namespace cpullm {
namespace hw {

GpuConfig
nvidiaA100()
{
    GpuConfig g;
    g.name = "NVIDIA A100";
    g.shortName = "a100";
    g.numSms = 108;
    g.bf16Flops = 312.0 * TFLOPS; // dense, no sparsity
    g.fp32Flops = 19.5 * TFLOPS;
    g.l1PerSm = 192 * KiB;
    g.l2Shared = 40 * MiB;

    g.memory.kind = MemKind::GpuHBM;
    g.memory.capacityBytes = 40ULL * GiB;
    g.memory.bandwidth = 1299.9 * GB; // STREAM-measured (Table II)
    g.memory.latency = 350e-9;

    g.pcie.name = "PCIe 4.0 x16";
    g.pcie.bandwidth = 64.0 * GB;
    g.pcie.efficiency = 0.8;
    g.pcie.latency = 1.5e-6;

    g.hostMemoryBandwidth = 150.0 * GB;
    g.hostMemoryBytes = 512ULL * GiB;
    return g;
}

GpuConfig
nvidiaH100()
{
    GpuConfig g;
    g.name = "NVIDIA H100";
    g.shortName = "h100";
    g.numSms = 132;
    g.bf16Flops = 756.0 * TFLOPS; // dense, no sparsity
    g.fp32Flops = 51.0 * TFLOPS;
    g.l1PerSm = 256 * KiB;
    g.l2Shared = 50 * MiB;

    g.memory.kind = MemKind::GpuHBM;
    g.memory.capacityBytes = 80ULL * GiB;
    g.memory.bandwidth = 1754.4 * GB; // STREAM-measured (Table II)
    g.memory.latency = 330e-9;

    g.pcie.name = "PCIe 5.0 x16";
    g.pcie.bandwidth = 128.0 * GB;
    g.pcie.efficiency = 0.8;
    g.pcie.latency = 1.2e-6;

    g.hostMemoryBandwidth = 180.0 * GB;
    g.hostMemoryBytes = 512ULL * GiB;
    return g;
}

GpuConfig
gpuByName(const std::string& short_name)
{
    const std::string n = toLower(short_name);
    if (n == "a100" || n == "a100-40gb")
        return nvidiaA100();
    if (n == "h100" || n == "h100-80gb")
        return nvidiaH100();
    CPULLM_FATAL("unknown GPU '", short_name, "' (try: a100, h100)");
}

} // namespace hw
} // namespace cpullm
