#ifndef CPULLM_HW_CPU_H
#define CPULLM_HW_CPU_H

/**
 * @file
 * CPU chip descriptions. The two presets mirror Table I of the paper:
 * the Xeon 3rd-gen 8352Y ("ICL CPU", AVX-512 only, DDR4) and the Xeon
 * 4th-gen Max 9468 ("SPR CPU", AMX + DDR5 + on-package HBM).
 */

#include <cstdint>
#include <optional>
#include <string>

#include "hw/types.h"
#include "numerics/dtype.h"

namespace cpullm {
namespace hw {

/** Matrix-compute capability of one CPU core generation. */
struct CpuComputeConfig
{
    /** Peak BF16 FLOP/s of one socket through AVX-512 (VDPBF16PS). */
    double avx512Bf16FlopsPerSocket = 0.0;
    /** Peak INT8 OP/s of one socket through AVX-512 VNNI. */
    double avx512Int8OpsPerSocket = 0.0;
    /** Peak BF16 FLOP/s of one socket through AMX (0 = no AMX). */
    double amxBf16FlopsPerSocket = 0.0;
    /** Peak INT8 OP/s of one socket through AMX (0 = no AMX). */
    double amxInt8OpsPerSocket = 0.0;

    bool hasAmx() const { return amxBf16FlopsPerSocket > 0.0; }

    /** Best available BF16 peak for one socket. */
    double
    bestBf16FlopsPerSocket() const
    {
        return hasAmx() ? amxBf16FlopsPerSocket
                        : avx512Bf16FlopsPerSocket;
    }

    /** Best available peak for one socket at a given GEMM dtype. */
    double
    bestFlopsPerSocket(DType dtype) const
    {
        // INT4 weights dequant into the INT8/VNNI units, so they
        // share the INT8 compute peak.
        if (dtype == DType::I8 || dtype == DType::I4) {
            return hasAmx() ? amxInt8OpsPerSocket
                            : avx512Int8OpsPerSocket;
        }
        return bestBf16FlopsPerSocket();
    }
};

/** A CPU chip / server description. */
struct CpuConfig
{
    std::string name;       ///< e.g. "Xeon Max 9468"
    std::string generation; ///< e.g. "Sapphire Rapids (SPR)"
    std::string shortName;  ///< e.g. "spr"

    int coresPerSocket = 0;
    int sockets = 0;
    double coreFrequency = 0.0; ///< Hz

    CpuComputeConfig compute;
    CacheConfig cache;

    /** Commodity DRAM attached to each socket. */
    MemoryDeviceConfig ddr;
    /** On-package HBM per socket, if present. */
    std::optional<MemoryDeviceConfig> hbm;
    /**
     * CXL-attached memory expansion per socket, if present (the
     * capacity-expansion option Section III points at).
     */
    std::optional<MemoryDeviceConfig> cxl;

    /** Socket-to-socket interconnect (UPI). */
    InterconnectConfig upi;

    int totalCores() const { return coresPerSocket * sockets; }
    bool hasHbm() const { return hbm.has_value(); }

    /** Total DRAM capacity across sockets (DDR + HBM), bytes. */
    std::uint64_t totalMemoryBytes() const;
};

/** Xeon 3rd-gen 8352Y (IceLake): Table I, CPU 1. */
CpuConfig iclXeon8352Y();

/** Xeon 4th-gen Max 9468 (Sapphire Rapids Max): Table I, CPU 2. */
CpuConfig sprXeonMax9468();

/**
 * SPR Max 9468 with a CXL 1.1 x8 memory expander per socket
 * (extension experiment; see DESIGN.md).
 */
CpuConfig sprXeonMax9468WithCxl(std::uint64_t capacity_per_socket);

/** Look up a CPU preset by short name ("icl", "spr"); fatal if unknown. */
CpuConfig cpuByName(const std::string& short_name);

} // namespace hw
} // namespace cpullm

#endif // CPULLM_HW_CPU_H
