#include "hw/cpu.h"

#include "util/logging.h"
#include "util/string_util.h"
#include "util/units.h"

namespace cpullm {
namespace hw {

std::string
memKindName(MemKind kind)
{
    switch (kind) {
      case MemKind::DDR4:
        return "DDR4";
      case MemKind::DDR5:
        return "DDR5";
      case MemKind::HBM2e:
        return "HBM2e";
      case MemKind::GpuHBM:
        return "GPU-HBM";
      case MemKind::CXL:
        return "CXL";
    }
    CPULLM_PANIC("unhandled MemKind");
}

std::uint64_t
CpuConfig::totalMemoryBytes() const
{
    std::uint64_t per_socket = ddr.capacityBytes;
    if (hbm)
        per_socket += hbm->capacityBytes;
    if (cxl)
        per_socket += cxl->capacityBytes;
    return per_socket * static_cast<std::uint64_t>(sockets);
}

CpuConfig
iclXeon8352Y()
{
    CpuConfig c;
    c.name = "Xeon 3rd 8352Y";
    c.generation = "IceLake (ICL)";
    c.shortName = "icl";
    c.coresPerSocket = 32;
    c.sockets = 2;
    c.coreFrequency = 2.20 * GHz;

    // Table I: 18.0 TFLOPS BF16 via AVX-512 per socket. ICL has no
    // AMX; BF16 runs through FP32 FMA after upconversion, which the
    // 18.0 figure already reflects.
    c.compute.avx512Bf16FlopsPerSocket = 18.0 * TFLOPS;
    c.compute.avx512Int8OpsPerSocket = 36.0 * TFLOPS; // AVX512-VNNI
    c.compute.amxBf16FlopsPerSocket = 0.0;
    c.compute.amxInt8OpsPerSocket = 0.0;

    c.cache.l1dPerCore = 48 * KiB;
    c.cache.l2PerCore = 1280 * KiB; // 1.25 MB
    c.cache.l3Shared = 48 * MiB;

    c.ddr.kind = MemKind::DDR4;
    c.ddr.capacityBytes = 128 * GiB; // 256 GB across two sockets
    c.ddr.bandwidth = 156.2 * GB;    // STREAM, single socket
    c.ddr.latency = 95e-9;
    c.ddr.streamEfficiency = 0.78;

    c.upi.name = "UPI 11.2GT/s x3";
    c.upi.bandwidth = 41.6 * GB;
    c.upi.efficiency = 0.75;
    c.upi.latency = 600e-9;
    return c;
}

CpuConfig
sprXeonMax9468()
{
    CpuConfig c;
    c.name = "Xeon 4th Max 9468";
    c.generation = "Sapphire Rapids (SPR)";
    c.shortName = "spr";
    c.coresPerSocket = 48;
    c.sockets = 2;
    c.coreFrequency = 2.10 * GHz;

    // Table I: 25.6 TFLOPS (AVX-512) / 206.4 TFLOPS (AMX) per socket.
    // AMX peak: 48 cores x 2.1 GHz x 1024 BF16 MAC/cycle = 206.4e12.
    c.compute.avx512Bf16FlopsPerSocket = 25.6 * TFLOPS;
    c.compute.avx512Int8OpsPerSocket = 51.2 * TFLOPS; // AVX512-VNNI
    c.compute.amxBf16FlopsPerSocket = 206.4 * TFLOPS;
    c.compute.amxInt8OpsPerSocket = 412.8 * TFLOPS; // 2x BF16 rate

    c.cache.l1dPerCore = 48 * KiB;
    c.cache.l2PerCore = 2 * MiB;
    c.cache.l3Shared = 105 * MiB;

    c.ddr.kind = MemKind::DDR5;
    c.ddr.capacityBytes = 256 * GiB; // 512 GB across two sockets
    c.ddr.bandwidth = 233.8 * GB;    // STREAM, single socket
    c.ddr.latency = 90e-9;
    c.ddr.streamEfficiency = 0.88;

    MemoryDeviceConfig hbm;
    hbm.kind = MemKind::HBM2e;
    hbm.capacityBytes = 64 * GiB; // 128 GB across two sockets
    hbm.bandwidth = 588.0 * GB;   // STREAM, single socket
    hbm.latency = 115e-9;         // HBM trades latency for bandwidth
    hbm.streamEfficiency = 0.95;
    c.hbm = hbm;

    c.upi.name = "UPI 16GT/s x4";
    c.upi.bandwidth = 62.4 * GB;
    c.upi.efficiency = 0.75;
    c.upi.latency = 550e-9;
    return c;
}

CpuConfig
sprXeonMax9468WithCxl(std::uint64_t capacity_per_socket)
{
    CpuConfig c = sprXeonMax9468();
    MemoryDeviceConfig cxl;
    cxl.kind = MemKind::CXL;
    cxl.capacityBytes = capacity_per_socket;
    // CXL 1.1 x8 expander: ~PCIe5 x8 wire rate, ~64 GB/s raw,
    // far-memory latency in the 200-300 ns range.
    cxl.bandwidth = 56.0 * GB;
    cxl.latency = 250e-9;
    cxl.streamEfficiency = 0.85;
    c.cxl = cxl;
    return c;
}

CpuConfig
cpuByName(const std::string& short_name)
{
    const std::string n = toLower(short_name);
    if (n == "icl" || n == "8352y" || n == "icelake")
        return iclXeon8352Y();
    if (n == "spr" || n == "9468" || n == "sapphirerapids" ||
        n == "spr-max")
        return sprXeonMax9468();
    CPULLM_FATAL("unknown CPU '", short_name, "' (try: icl, spr)");
}

} // namespace hw
} // namespace cpullm
