#ifndef CPULLM_GEMM_ATTENTION_H
#define CPULLM_GEMM_ATTENTION_H

/**
 * @file
 * Fused decode/prefill attention over contiguous KV-cache spans.
 *
 * This is the functional hot path the paper's decode analysis points
 * at (Figs 6/7): per generated token, attention streams every cached
 * K and V vector once — a bandwidth-bound sweep that the naive
 * implementation (per-position readK/readV copies, per-element dtype
 * conversion, one scalar dot per head per position, a two-pass
 * softmax) turns into a compute-bound crawl. attnFused replaces it
 * with a single-pass flash-style kernel:
 *
 *  - K/V rows are read straight from KvSpan views in the storage
 *    dtype (BF16 widened once per row, FP32 streamed in place) —
 *    never copied per (head, position) like readK/readV.
 *  - Scores, the running softmax max/sum, and the V accumulation are
 *    fused into one sweep over the span (online softmax, the flash
 *    attention recurrence), so the span is traversed once instead of
 *    twice and no scores array is materialized.
 *  - GQA-aware: the (sequence x kv-head) grid reads each kv-head's
 *    K/V stream once and reuses it for all query heads of the group.
 *  - The grid fans out on util's persistent thread pool with
 *    per-thread scratch owned by the kernel, so a decode step costs
 *    no heap allocation. Task boundaries align with output rows,
 *    making results invariant to the thread count.
 *  - Prefill batches query positions: with m > 1 queries at absolute
 *    positions [pos0, pos0 + m), query row i attends causally over
 *    span rows [0, pos0 + i].
 *
 * Inner dot/axpy loops run on the emulated AVX-512 unit (isa::Vec512
 * FMA lanes), the same dispatch conventions as the packed GEMM
 * kernels: activations in FP32, reductions in FP32 lane order.
 *
 * Numerics: attnRef reproduces the naive path's arithmetic order
 * exactly (scalar dots in position order, two-pass softmax), so it is
 * bit-identical to the pre-fused TransformerModel::attention loop.
 * attnFused changes only the reduction order (16-lane dots, online
 * rescaling); outputs match attnRef within kAttnTolerance for
 * O(1)-scaled inputs. Where the order is preserved — a span short
 * enough that the online max never updates after the first row and
 * head_dim <= one vector — the two are exact.
 */

#include <cstdint>

#include "kv/kv_span.h"

namespace cpullm {
namespace gemm {

/**
 * Documented output tolerance of attnFused vs attnRef (max abs diff)
 * for inputs with O(1) per-element magnitude, e.g. LayerNorm/RMSNorm
 * activations. Both kernels accumulate in FP32; they differ only in
 * summation order, so the gap is a few ULPs amplified by exp().
 */
inline constexpr float kAttnTolerance = 1e-3f;

/** Attention head geometry shared by every sequence in a call. */
struct AttnShape
{
    std::int64_t heads = 0;   ///< query heads
    std::int64_t kvHeads = 0; ///< kv heads (== heads for MHA)
    std::int64_t headDim = 0; ///< elements per head
};

/**
 * One sequence's inputs: q/out are row-major [m, heads * headDim]
 * FP32; k/v are span chunk arrays (in position order, jointly
 * covering at least pos0 + m rows of kvHeads * headDim elements).
 * Contiguous caches pass one chunk; paged caches pass one per block.
 */
struct AttnSeqView
{
    const float* q = nullptr;
    float* out = nullptr;
    const kv::KvSpan* k = nullptr;
    const kv::KvSpan* v = nullptr;
    std::size_t chunks = 0;
};

/**
 * One sequence's slot in a ragged (continuous-batching) call: its
 * view plus a private query span. Sequences in one call may sit at
 * arbitrary, mutually unrelated positions — the fused decode step of
 * the continuous batcher passes one slot per in-flight sequence.
 */
struct AttnRaggedSeq
{
    AttnSeqView view;
    std::int64_t pos0 = 0; ///< cached rows before this query span
    std::int64_t m = 1;    ///< query rows for this sequence
};

/**
 * Monotonic process-wide kernel counters (exported as host.attn.* in
 * run reports). scratchAllocs only grows when a thread's scratch
 * buffers must grow — steady-state decode adds zero.
 */
struct AttnStats
{
    std::uint64_t decodeCalls = 0;  ///< attnFused calls with m == 1
    std::uint64_t prefillCalls = 0; ///< attnFused calls with m > 1
    std::uint64_t raggedCalls = 0;  ///< attnFusedRagged calls
    std::uint64_t tasks = 0;        ///< (sequence x kv-head) grid tasks
    std::uint64_t spanRows = 0;     ///< K/V rows streamed (per task)
    std::uint64_t scratchAllocs = 0; ///< per-thread scratch growths
};

/** Snapshot of the process-wide counters (atomic reads). */
AttnStats attnStats();

/**
 * Fused attention for @p n_seqs sequences: for each sequence, each
 * query row i in [0, m) attends over cached rows [0, pos0 + i] with
 * softmax(q k / sqrt(headDim)) v per head. Decode is m == 1.
 * Parallel over (sequence x kv-head); thread-count invariant.
 */
void attnFused(const AttnShape& shape, std::int64_t m,
               std::int64_t pos0, const AttnSeqView* seqs,
               std::size_t n_seqs);

/**
 * Ragged fused attention: like attnFused, but each sequence carries
 * its own (pos0, m) — the shape of one continuous-batching iteration,
 * where in-flight sequences sit at heterogeneous positions. Each
 * (sequence x kv-head) task runs the identical fused sweep as the
 * uniform entry point, so outputs are bitwise equal to calling
 * attnFused once per sequence, at any thread count.
 */
void attnFusedRagged(const AttnShape& shape, const AttnRaggedSeq* seqs,
                     std::size_t n_seqs);

/**
 * Reference implementation over the same views: single-threaded
 * scalar loops in the naive path's exact arithmetic order (scores in
 * position order, two-pass softmax, weighted V sum). Ground truth
 * for tests and the host benchmark.
 */
void attnRef(const AttnShape& shape, std::int64_t m, std::int64_t pos0,
             const AttnSeqView* seqs, std::size_t n_seqs);

} // namespace gemm
} // namespace cpullm

#endif // CPULLM_GEMM_ATTENTION_H
