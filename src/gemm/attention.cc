#include "gemm/attention.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <vector>

#include "isa/avx512.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace cpullm {
namespace gemm {

namespace {

std::atomic<std::uint64_t> decodeCalls_{0};
std::atomic<std::uint64_t> prefillCalls_{0};
std::atomic<std::uint64_t> raggedCalls_{0};
std::atomic<std::uint64_t> tasks_{0};
std::atomic<std::uint64_t> spanRows_{0};
std::atomic<std::uint64_t> scratchAllocs_{0};

/**
 * Per-thread kernel scratch: grown monotonically, reused across
 * calls, never freed while the thread lives. Steady-state decode
 * touches no allocator (the satellite fix for the per-call
 * kbuf/vbuf/scores churn of the old naive loop).
 */
struct AttnScratch
{
    std::vector<float> krow;   ///< widened K head-slice (BF16 spans)
    std::vector<float> vrow;   ///< widened V head-slice
    std::vector<float> runMax; ///< online-softmax running max
    std::vector<float> runSum; ///< online-softmax running sum

    static void
    ensure(std::vector<float>& v, std::size_t n)
    {
        if (v.capacity() < n) {
            v.reserve(n);
            scratchAllocs_.fetch_add(1, std::memory_order_relaxed);
        }
        v.resize(n);
    }
};

AttnScratch&
attnScratch()
{
    thread_local AttnScratch s;
    return s;
}

/** q . k over @p n FP32 elements on the emulated AVX-512 lanes. */
float
dotF32(const float* a, const float* b, std::int64_t n)
{
    using isa::Vec512;
    Vec512 acc = Vec512::zero();
    std::int64_t i = 0;
    for (; i + Vec512::kF32Lanes <= n; i += Vec512::kF32Lanes)
        acc = isa::fma(acc, Vec512::loadF32(a + i),
                       Vec512::loadF32(b + i));
    float s = isa::horizontalSum(acc);
    for (; i < n; ++i)
        s += a[i] * b[i];
    return s;
}

/** acc += w * v over @p n FP32 elements (VFMADD231PS idiom). */
void
axpyF32(float w, const float* v, float* acc, std::int64_t n)
{
    using isa::Vec512;
    const Vec512 wv = Vec512::broadcast(w);
    std::int64_t i = 0;
    for (; i + Vec512::kF32Lanes <= n; i += Vec512::kF32Lanes) {
        const Vec512 r = isa::fma(Vec512::loadF32(acc + i), wv,
                                  Vec512::loadF32(v + i));
        r.storeF32(acc + i);
    }
    for (; i < n; ++i)
        acc[i] += w * v[i];
}

/** acc *= s over @p n FP32 elements (VMULPS idiom). */
void
scaleF32(float s, float* acc, std::int64_t n)
{
    using isa::Vec512;
    const Vec512 sv = Vec512::broadcast(s);
    std::int64_t i = 0;
    for (; i + Vec512::kF32Lanes <= n; i += Vec512::kF32Lanes) {
        const Vec512 r = isa::mul(Vec512::loadF32(acc + i), sv);
        r.storeF32(acc + i);
    }
    for (; i < n; ++i)
        acc[i] *= s;
}

/**
 * Sequential walker over a span chunk list, yielding one kv-head
 * slice (@p n elements at element offset @p off) per row in position
 * order. BF16 rows are widened once into @p scratch; FP32 rows are
 * returned in place.
 */
class SliceCursor
{
  public:
    SliceCursor(const kv::KvSpan* chunks, std::size_t n_chunks,
                std::int64_t off, std::int64_t n, float* scratch)
        : chunks_(chunks), n_chunks_(n_chunks), off_(off), n_(n),
          scratch_(scratch)
    {
    }

    const float*
    next()
    {
        while (chunk_ < n_chunks_ && local_ >= chunks_[chunk_].len) {
            ++chunk_;
            local_ = 0;
        }
        CPULLM_ASSERT(chunk_ < n_chunks_,
                      "KV span chunks shorter than the attended span");
        const kv::KvSpan& sp = chunks_[chunk_];
        const float* out;
        if (sp.dtype == DType::F32) {
            out = static_cast<const float*>(sp.data) +
                  local_ * sp.stride + off_;
        } else {
            CPULLM_ASSERT(sp.dtype == DType::BF16,
                          "unsupported KV span dtype ",
                          dtypeName(sp.dtype));
            const BFloat16* row = static_cast<const BFloat16*>(
                                      sp.data) +
                                  local_ * sp.stride + off_;
            for (std::int64_t i = 0; i < n_; ++i)
                scratch_[i] = row[i].toFloat();
            out = scratch_;
        }
        ++local_;
        return out;
    }

  private:
    const kv::KvSpan* chunks_;
    std::size_t n_chunks_;
    std::int64_t off_;
    std::int64_t n_;
    float* scratch_;
    std::size_t chunk_ = 0;
    std::int64_t local_ = 0;
};

void
checkArgs(const AttnShape& shape, std::int64_t m, std::int64_t pos0,
          const AttnSeqView* seqs, std::size_t n_seqs)
{
    CPULLM_ASSERT(shape.heads > 0 && shape.kvHeads > 0 &&
                      shape.headDim > 0,
                  "invalid attention shape");
    CPULLM_ASSERT(shape.heads % shape.kvHeads == 0,
                  "query heads ", shape.heads,
                  " not divisible by kv heads ", shape.kvHeads);
    CPULLM_ASSERT(m >= 1 && pos0 >= 0, "invalid query span [", pos0,
                  ", ", pos0 + m, ")");
    CPULLM_ASSERT(seqs != nullptr || n_seqs == 0,
                  "null sequence views");
    const std::int64_t span = pos0 + m;
    const std::int64_t d_kv = shape.kvHeads * shape.headDim;
    for (std::size_t s = 0; s < n_seqs; ++s) {
        std::int64_t k_rows = 0, v_rows = 0;
        for (std::size_t c = 0; c < seqs[s].chunks; ++c) {
            CPULLM_ASSERT(seqs[s].k[c].rowElems == d_kv &&
                              seqs[s].v[c].rowElems == d_kv,
                          "KV span row width mismatches kv-heads x "
                          "head-dim");
            k_rows += seqs[s].k[c].len;
            v_rows += seqs[s].v[c].len;
        }
        CPULLM_ASSERT(k_rows >= span && v_rows >= span,
                      "sequence ", s, " caches ", std::min(k_rows,
                      v_rows), " rows, needs ", span);
    }
}

/** One (sequence, kv-head) task: the fused single-pass sweep. */
void
fusedTask(const AttnShape& shape, std::int64_t m, std::int64_t pos0,
          const AttnSeqView& seq, std::int64_t kvh, float scale)
{
    const std::int64_t hd = shape.headDim;
    const std::int64_t group = shape.heads / shape.kvHeads;
    const std::int64_t width = shape.heads * hd; // q/out row elements
    const std::int64_t span = pos0 + m;
    const std::int64_t states = group * m;

    AttnScratch& scr = attnScratch();
    AttnScratch::ensure(scr.krow, static_cast<std::size_t>(hd));
    AttnScratch::ensure(scr.vrow, static_cast<std::size_t>(hd));
    AttnScratch::ensure(scr.runMax, static_cast<std::size_t>(states));
    AttnScratch::ensure(scr.runSum, static_cast<std::size_t>(states));

    const float neg_inf = -std::numeric_limits<float>::infinity();
    for (std::int64_t st = 0; st < states; ++st) {
        scr.runMax[static_cast<std::size_t>(st)] = neg_inf;
        scr.runSum[static_cast<std::size_t>(st)] = 0.0f;
    }
    // Accumulators live directly in the output rows this task owns.
    for (std::int64_t g = 0; g < group; ++g) {
        const std::int64_t h = kvh * group + g;
        for (std::int64_t qi = 0; qi < m; ++qi) {
            float* acc = seq.out + qi * width + h * hd;
            for (std::int64_t i = 0; i < hd; ++i)
                acc[i] = 0.0f;
        }
    }

    SliceCursor kc(seq.k, seq.chunks, kvh * hd, hd, scr.krow.data());
    SliceCursor vc(seq.v, seq.chunks, kvh * hd, hd, scr.vrow.data());

    for (std::int64_t p = 0; p < span; ++p) {
        const float* krow = kc.next();
        const float* vrow = vc.next();
        // Causality: row p is visible to query rows qi >= p - pos0.
        const std::int64_t qi_min = std::max<std::int64_t>(0,
                                                           p - pos0);
        for (std::int64_t g = 0; g < group; ++g) {
            const std::int64_t h = kvh * group + g;
            for (std::int64_t qi = qi_min; qi < m; ++qi) {
                const float* qh = seq.q + qi * width + h * hd;
                float* acc = seq.out + qi * width + h * hd;
                const std::size_t st =
                    static_cast<std::size_t>(g * m + qi);
                const float s = dotF32(qh, krow, hd) * scale;
                // Online-softmax recurrence: rescale history only
                // when the running max actually moves.
                const float m_old = scr.runMax[st];
                if (s > m_old) {
                    const float alpha = std::exp(m_old - s);
                    scr.runMax[st] = s;
                    scr.runSum[st] = scr.runSum[st] * alpha + 1.0f;
                    scaleF32(alpha, acc, hd); // exp(s - s) == 1
                    axpyF32(1.0f, vrow, acc, hd);
                } else {
                    const float w = std::exp(s - m_old);
                    scr.runSum[st] += w;
                    axpyF32(w, vrow, acc, hd);
                }
            }
        }
    }

    for (std::int64_t g = 0; g < group; ++g) {
        const std::int64_t h = kvh * group + g;
        for (std::int64_t qi = 0; qi < m; ++qi) {
            const std::size_t st = static_cast<std::size_t>(g * m +
                                                            qi);
            scaleF32(1.0f / scr.runSum[st],
                     seq.out + qi * width + h * hd, hd);
        }
    }
}

} // namespace

AttnStats
attnStats()
{
    AttnStats s;
    s.decodeCalls = decodeCalls_.load(std::memory_order_relaxed);
    s.prefillCalls = prefillCalls_.load(std::memory_order_relaxed);
    s.raggedCalls = raggedCalls_.load(std::memory_order_relaxed);
    s.tasks = tasks_.load(std::memory_order_relaxed);
    s.spanRows = spanRows_.load(std::memory_order_relaxed);
    s.scratchAllocs = scratchAllocs_.load(std::memory_order_relaxed);
    return s;
}

void
attnFused(const AttnShape& shape, std::int64_t m, std::int64_t pos0,
          const AttnSeqView* seqs, std::size_t n_seqs)
{
    checkArgs(shape, m, pos0, seqs, n_seqs);
    if (n_seqs == 0)
        return;
    const float scale =
        1.0f / std::sqrt(static_cast<float>(shape.headDim));
    const std::size_t grid =
        n_seqs * static_cast<std::size_t>(shape.kvHeads);

    (m == 1 ? decodeCalls_ : prefillCalls_)
        .fetch_add(1, std::memory_order_relaxed);
    tasks_.fetch_add(grid, std::memory_order_relaxed);
    spanRows_.fetch_add(grid * static_cast<std::uint64_t>(pos0 + m),
                        std::memory_order_relaxed);

    parallelFor(
        0, grid,
        [&](std::size_t idx) {
            const std::size_t b =
                idx / static_cast<std::size_t>(shape.kvHeads);
            const std::int64_t kvh = static_cast<std::int64_t>(
                idx % static_cast<std::size_t>(shape.kvHeads));
            fusedTask(shape, m, pos0, seqs[b], kvh, scale);
        },
        1);
}

void
attnFusedRagged(const AttnShape& shape, const AttnRaggedSeq* seqs,
                std::size_t n_seqs)
{
    CPULLM_ASSERT(seqs != nullptr || n_seqs == 0,
                  "null ragged sequence slots");
    std::uint64_t rows = 0;
    for (std::size_t s = 0; s < n_seqs; ++s) {
        checkArgs(shape, seqs[s].m, seqs[s].pos0, &seqs[s].view, 1);
        rows += static_cast<std::uint64_t>(seqs[s].pos0 + seqs[s].m);
    }
    if (n_seqs == 0)
        return;
    const float scale =
        1.0f / std::sqrt(static_cast<float>(shape.headDim));
    const std::size_t grid =
        n_seqs * static_cast<std::size_t>(shape.kvHeads);

    raggedCalls_.fetch_add(1, std::memory_order_relaxed);
    tasks_.fetch_add(grid, std::memory_order_relaxed);
    spanRows_.fetch_add(rows *
                            static_cast<std::uint64_t>(shape.kvHeads),
                        std::memory_order_relaxed);

    parallelFor(
        0, grid,
        [&](std::size_t idx) {
            const std::size_t b =
                idx / static_cast<std::size_t>(shape.kvHeads);
            const std::int64_t kvh = static_cast<std::int64_t>(
                idx % static_cast<std::size_t>(shape.kvHeads));
            const AttnRaggedSeq& rs = seqs[b];
            fusedTask(shape, rs.m, rs.pos0, rs.view, kvh, scale);
        },
        1);
}

void
attnRef(const AttnShape& shape, std::int64_t m, std::int64_t pos0,
        const AttnSeqView* seqs, std::size_t n_seqs)
{
    checkArgs(shape, m, pos0, seqs, n_seqs);
    const std::int64_t hd = shape.headDim;
    const std::int64_t group = shape.heads / shape.kvHeads;
    const std::int64_t width = shape.heads * hd;

    std::vector<float> scores(static_cast<std::size_t>(pos0 + m));
    std::vector<float> kbuf(static_cast<std::size_t>(hd));
    std::vector<float> vbuf(static_cast<std::size_t>(hd));
    for (std::size_t b = 0; b < n_seqs; ++b) {
        const AttnSeqView& seq = seqs[b];
        for (std::int64_t qi = 0; qi < m; ++qi) {
            const std::int64_t span = pos0 + qi + 1;
            for (std::int64_t h = 0; h < shape.heads; ++h) {
                const std::int64_t kvh = h / group;
                const float* qh = seq.q + qi * width + h * hd;
                SliceCursor kc(seq.k, seq.chunks, kvh * hd, hd,
                               kbuf.data());
                SliceCursor vc(seq.v, seq.chunks, kvh * hd, hd,
                               vbuf.data());
                // The naive path's order: scalar dot per position...
                for (std::int64_t p = 0; p < span; ++p) {
                    const float* kh = kc.next();
                    float dot = 0.0f;
                    for (std::int64_t i = 0; i < hd; ++i)
                        dot += qh[i] * kh[i];
                    scores[static_cast<std::size_t>(p)] =
                        dot /
                        std::sqrt(static_cast<float>(hd));
                }
                // ...two-pass softmax...
                float mx = scores[0];
                for (std::int64_t p = 1; p < span; ++p)
                    mx = std::max(mx,
                                  scores[static_cast<std::size_t>(p)]);
                float sum = 0.0f;
                for (std::int64_t p = 0; p < span; ++p) {
                    scores[static_cast<std::size_t>(p)] = std::exp(
                        scores[static_cast<std::size_t>(p)] - mx);
                    sum += scores[static_cast<std::size_t>(p)];
                }
                const float inv = 1.0f / sum;
                // ...then the weighted V accumulation.
                float* ch = seq.out + qi * width + h * hd;
                for (std::int64_t i = 0; i < hd; ++i)
                    ch[i] = 0.0f;
                for (std::int64_t p = 0; p < span; ++p) {
                    const float* vh = vc.next();
                    const float pw =
                        scores[static_cast<std::size_t>(p)] * inv;
                    for (std::int64_t i = 0; i < hd; ++i)
                        ch[i] += pw * vh[i];
                }
            }
        }
    }
}

} // namespace gemm
} // namespace cpullm
