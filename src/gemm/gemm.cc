#include "gemm/gemm.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "gemm/pack.h"
#include "gemm/packed_weights.h"
#include "isa/amx.h"
#include "isa/avx512.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace cpullm {
namespace gemm {

// Tile geometry constants (kTileM etc.) live in packed_weights.h so
// the packing cache and the kernels agree on block sizes.

std::string
engineName(Engine e)
{
    switch (e) {
      case Engine::Reference:
        return "reference-fp32";
      case Engine::AmxBf16:
        return "amx-bf16";
      case Engine::Avx512Bf16:
        return "avx512-bf16";
      case Engine::AmxI8:
        return "amx-int8";
    }
    CPULLM_PANIC("unhandled engine");
}

void
gemmRef(const float* a, const float* b, float* c, std::int64_t m,
        std::int64_t n, std::int64_t k)
{
    parallelFor(0, static_cast<std::size_t>(m), [&](std::size_t mi) {
        const float* arow = a + static_cast<std::int64_t>(mi) * k;
        float* crow = c + static_cast<std::int64_t>(mi) * n;
        std::fill(crow, crow + n, 0.0f);
        for (std::int64_t kk = 0; kk < k; ++kk) {
            const float av = arow[kk];
            const float* brow = b + kk * n;
            for (std::int64_t ni = 0; ni < n; ++ni)
                crow[ni] += av * brow[ni];
        }
    }, 4);
}

void
gemmAmxBf16(const BFloat16* a, const BFloat16* b, float* c, std::int64_t m,
            std::int64_t n, std::int64_t k)
{
    const std::int64_t m_blocks = (m + kTileM - 1) / kTileM;
    const std::int64_t n_blocks = (n + kTileN - 1) / kTileN;

    parallelFor(
        0, static_cast<std::size_t>(m_blocks * n_blocks),
        [&](std::size_t idx) {
            const std::int64_t bm = static_cast<std::int64_t>(idx) /
                                    n_blocks;
            const std::int64_t bn = static_cast<std::int64_t>(idx) %
                                    n_blocks;
            const std::int64_t m0 = bm * kTileM;
            const std::int64_t n0 = bn * kTileN;
            const int mrem = static_cast<int>(
                std::min<std::int64_t>(kTileM, m - m0));
            const int nrem = static_cast<int>(
                std::min<std::int64_t>(kTileN, n - n0));

            // One AMX context per block task; TMM0 = accumulator,
            // TMM1 = A tile, TMM2 = B tile (VNNI).
            isa::AmxUnit amx;
            isa::TileConfig cfg;
            cfg.setTile(0, kTileM, kTileN * 4);
            cfg.setTile(1, kTileM, kTileKBf16 * 2);
            cfg.setTile(2, kTileKBf16 / 2, kTileN * 4);
            amx.ldtilecfg(cfg);

            alignas(64) BFloat16 a_img[kTileM * kTileKBf16];
            alignas(64) BFloat16 b_img[(kTileKBf16 / 2) * (kTileN * 2)];
            alignas(64) float c_img[kTileM * kTileN];

            amx.tilezero(0);
            for (std::int64_t k0 = 0; k0 < k; k0 += kTileKBf16) {
                const int krem = static_cast<int>(
                    std::min<std::int64_t>(kTileKBf16, k - k0));
                packATile(a, k, m0, k0, mrem, krem, kTileM, kTileKBf16,
                          a_img);
                packBTileVnni(b, n, k0, n0, krem, nrem, kTileKBf16 / 2,
                              kTileN, b_img);
                amx.tileloadd(1, a_img, kTileKBf16 * sizeof(BFloat16));
                amx.tileloadd(2, b_img,
                              kTileN * 2 * sizeof(BFloat16));
                amx.tdpbf16ps(0, 1, 2);
            }
            amx.tilestored(0, c_img, kTileN * sizeof(float));
            for (int r = 0; r < mrem; ++r) {
                float* crow = c + (m0 + r) * n + n0;
                for (int cc = 0; cc < nrem; ++cc)
                    crow[cc] = c_img[r * kTileN + cc];
            }
        },
        1);
}

void
gemmAvx512Bf16(const BFloat16* a, const BFloat16* b, float* c,
               std::int64_t m, std::int64_t n, std::int64_t k)
{
    using isa::Vec512;
    using isa::Vec512Bf16;

    const std::int64_t n_vec = Vec512::kF32Lanes; // 16 outputs per vector
    parallelFor(0, static_cast<std::size_t>(m), [&](std::size_t mi_s) {
        const auto mi = static_cast<std::int64_t>(mi_s);
        const BFloat16* arow = a + mi * k;
        float* crow = c + mi * n;
        for (std::int64_t n0 = 0; n0 < n; n0 += n_vec) {
            const int nrem = static_cast<int>(
                std::min<std::int64_t>(n_vec, n - n0));
            Vec512 acc = Vec512::zero();
            std::int64_t kk = 0;
            for (; kk + 1 < k; kk += 2) {
                const Vec512Bf16 av = Vec512Bf16::broadcastPair(
                    arow[kk], arow[kk + 1]);
                // Assemble the VNNI pair register from two B rows.
                Vec512Bf16 bv;
                const BFloat16* b0 = b + kk * n + n0;
                const BFloat16* b1 = b + (kk + 1) * n + n0;
                for (int lane = 0; lane < nrem; ++lane) {
                    bv.lanes[static_cast<size_t>(2 * lane)] = b0[lane];
                    bv.lanes[static_cast<size_t>(2 * lane + 1)] =
                        b1[lane];
                }
                acc = isa::dpbf16ps(acc, av, bv);
            }
            if (kk < k) { // odd K tail: single-element pair
                const Vec512Bf16 av = Vec512Bf16::broadcastPair(
                    arow[kk], BFloat16());
                Vec512Bf16 bv;
                const BFloat16* b0 = b + kk * n + n0;
                for (int lane = 0; lane < nrem; ++lane)
                    bv.lanes[static_cast<size_t>(2 * lane)] = b0[lane];
                acc = isa::dpbf16ps(acc, av, bv);
            }
            for (int lane = 0; lane < nrem; ++lane)
                crow[n0 + lane] = acc.f32[static_cast<size_t>(lane)];
        }
    }, 2);
}

void
gemmAmxI8(const std::int8_t* a, const std::int8_t* b, float* c,
          std::int64_t m, std::int64_t n, std::int64_t k, float scale_a,
          float scale_b)
{
    const std::int64_t m_blocks = (m + kTileM - 1) / kTileM;
    const std::int64_t n_blocks = (n + kTileN - 1) / kTileN;
    const float scale = scale_a * scale_b;

    parallelFor(
        0, static_cast<std::size_t>(m_blocks * n_blocks),
        [&](std::size_t idx) {
            const std::int64_t bm = static_cast<std::int64_t>(idx) /
                                    n_blocks;
            const std::int64_t bn = static_cast<std::int64_t>(idx) %
                                    n_blocks;
            const std::int64_t m0 = bm * kTileM;
            const std::int64_t n0 = bn * kTileN;
            const int mrem = static_cast<int>(
                std::min<std::int64_t>(kTileM, m - m0));
            const int nrem = static_cast<int>(
                std::min<std::int64_t>(kTileN, n - n0));

            isa::AmxUnit amx;
            isa::TileConfig cfg;
            cfg.setTile(0, kTileM, kTileN * 4);
            cfg.setTile(1, kTileM, kTileKI8);
            cfg.setTile(2, kTileKI8 / 4, kTileN * 4);
            amx.ldtilecfg(cfg);

            alignas(64) std::int8_t a_img[kTileM * kTileKI8];
            alignas(64) std::int8_t b_img[(kTileKI8 / 4) * (kTileN * 4)];
            alignas(64) std::int32_t c_img[kTileM * kTileN];

            amx.tilezero(0);
            for (std::int64_t k0 = 0; k0 < k; k0 += kTileKI8) {
                const int krem = static_cast<int>(
                    std::min<std::int64_t>(kTileKI8, k - k0));
                packATileI8(a, k, m0, k0, mrem, krem, kTileM, kTileKI8,
                            a_img);
                packBTileVnniI8(b, n, k0, n0, krem, nrem, kTileKI8 / 4,
                                kTileN, b_img);
                amx.tileloadd(1, a_img, kTileKI8);
                amx.tileloadd(2, b_img, kTileN * 4);
                amx.tdpbssd(0, 1, 2);
            }
            amx.tilestored(0, c_img, kTileN * sizeof(std::int32_t));
            for (int r = 0; r < mrem; ++r) {
                float* crow = c + (m0 + r) * n + n0;
                for (int cc = 0; cc < nrem; ++cc)
                    crow[cc] = scale *
                               static_cast<float>(c_img[r * kTileN + cc]);
            }
        },
        1);
}

namespace {

/**
 * Thread-local AMX context for the packed kernels: one AmxUnit per
 * worker, reconfigured only when the accumulator row shape changes
 * instead of constructing unit+config per block task.
 *
 * Tile roles (2x2 register blocking): TMM0-3 = accumulators for
 * (m0,n0) (m0,n1) (m1,n0) (m1,n1), TMM4/5 = the two A tiles,
 * TMM6/7 = the two pre-packed B tiles. Accumulator and A tiles are
 * trimmed to the actual M remainder — the trimmed rows would only
 * ever accumulate zero-padding, and the emulated TMUL cost scales
 * with configured rows, so decode shapes (M << 16) skip almost all
 * of the dot-product work. BF16 and INT8 share the configuration:
 * both use 64-byte A/B rows and 16-row B tiles.
 */
struct AmxContext
{
    isa::AmxUnit amx;
    int rows0 = -1; ///< rows of the first accumulator pair
    int rows1 = -1; ///< rows of the second pair (0 = single M tile)
};

AmxContext&
amxContext()
{
    thread_local AmxContext ctx;
    return ctx;
}

void
ensureAmxConfig(AmxContext& ctx, int rows0, int rows1)
{
    if (ctx.rows0 == rows0 && ctx.rows1 == rows1)
        return;
    isa::TileConfig cfg;
    cfg.setTile(0, rows0, kTileN * 4);
    cfg.setTile(1, rows0, kTileN * 4);
    cfg.setTile(4, rows0, isa::kMaxColsb);
    if (rows1 > 0) {
        cfg.setTile(2, rows1, kTileN * 4);
        cfg.setTile(3, rows1, kTileN * 4);
        cfg.setTile(5, rows1, isa::kMaxColsb);
    }
    cfg.setTile(6, kTileKBf16 / 2, kTileN * 4);
    cfg.setTile(7, kTileKBf16 / 2, kTileN * 4);
    ctx.amx.ldtilecfg(cfg);
    ctx.rows0 = rows0;
    ctx.rows1 = rows1;
}

} // namespace

void
gemmAmxBf16Packed(const BFloat16* a, const PackedWeightsBf16& b,
                  float* c, std::int64_t m)
{
    const std::int64_t n = b.n();
    const std::int64_t k = b.k();
    const std::int64_t m_blocks = (m + kTileM - 1) / kTileM;
    const std::int64_t n_blocks = b.nBlocks();
    const std::int64_t k_steps = b.kSteps();
    // 2x2 register blocking: each task owns up to 2 M x 2 N tiles, so
    // every A tile load feeds two TMULs.
    const std::int64_t mm = (m_blocks + 1) / 2;
    const std::int64_t nn = (n_blocks + 1) / 2;

    // Pack A once per (m-block, k-step) up front; the task grid spans
    // all n-blocks, so packing inside the tasks would re-convert each
    // A row once per n-pair — a per-row cost that caps how far batched
    // decode can amortize the weight stream.
    constexpr std::int64_t kATileElems = kTileM * kTileKBf16;
    std::vector<BFloat16> apack(
        static_cast<std::size_t>(m_blocks * k_steps * kATileElems));
    for (std::int64_t bm = 0; bm < m_blocks; ++bm) {
        const std::int64_t am0 = bm * kTileM;
        const int amrem = static_cast<int>(
            std::min<std::int64_t>(kTileM, m - am0));
        for (std::int64_t ks = 0; ks < k_steps; ++ks) {
            const std::int64_t k0 = ks * kTileKBf16;
            const int krem = static_cast<int>(
                std::min<std::int64_t>(kTileKBf16, k - k0));
            packATile(a, k, am0, k0, amrem, krem, amrem, kTileKBf16,
                      apack.data() + (bm * k_steps + ks) * kATileElems);
        }
    }

    parallelFor(
        0, static_cast<std::size_t>(mm * nn),
        [&](std::size_t idx) {
            const std::int64_t bm0 =
                2 * (static_cast<std::int64_t>(idx) / nn);
            const std::int64_t bn0 =
                2 * (static_cast<std::int64_t>(idx) % nn);
            const std::int64_t m0 = bm0 * kTileM;
            const std::int64_t n0 = bn0 * kTileN;
            const int mrem0 = static_cast<int>(
                std::min<std::int64_t>(kTileM, m - m0));
            const int mrem1 =
                bm0 + 1 < m_blocks
                    ? static_cast<int>(std::min<std::int64_t>(
                          kTileM, m - (m0 + kTileM)))
                    : 0;
            const int nrem0 = static_cast<int>(
                std::min<std::int64_t>(kTileN, n - n0));
            const int nrem1 =
                bn0 + 1 < n_blocks
                    ? static_cast<int>(std::min<std::int64_t>(
                          kTileN, n - (n0 + kTileN)))
                    : 0;

            AmxContext& ctx = amxContext();
            ensureAmxConfig(ctx, mrem0, mrem1);
            isa::AmxUnit& amx = ctx.amx;

            alignas(64) float c_img[kTileM * kTileN];

            amx.tilezero(0);
            if (nrem1 > 0)
                amx.tilezero(1);
            if (mrem1 > 0) {
                amx.tilezero(2);
                if (nrem1 > 0)
                    amx.tilezero(3);
            }
            for (std::int64_t ks = 0; ks < k_steps; ++ks) {
                amx.tileloadd(4,
                              apack.data() +
                                  (bm0 * k_steps + ks) * kATileElems,
                              kTileKBf16 * sizeof(BFloat16));
                if (mrem1 > 0) {
                    amx.tileloadd(
                        5,
                        apack.data() +
                            ((bm0 + 1) * k_steps + ks) * kATileElems,
                        kTileKBf16 * sizeof(BFloat16));
                }
                amx.tileloadd(6, b.tile(bn0, ks),
                              kTileN * 2 * sizeof(BFloat16));
                if (nrem1 > 0)
                    amx.tileloadd(7, b.tile(bn0 + 1, ks),
                                  kTileN * 2 * sizeof(BFloat16));
                amx.tdpbf16ps(0, 4, 6);
                if (nrem1 > 0)
                    amx.tdpbf16ps(1, 4, 7);
                if (mrem1 > 0) {
                    amx.tdpbf16ps(2, 5, 6);
                    if (nrem1 > 0)
                        amx.tdpbf16ps(3, 5, 7);
                }
            }

            const auto store = [&](int t, std::int64_t mb,
                                   std::int64_t nb, int mr, int nr) {
                amx.tilestored(t, c_img, kTileN * sizeof(float));
                for (int r = 0; r < mr; ++r) {
                    float* crow = c + (mb + r) * n + nb;
                    for (int cc = 0; cc < nr; ++cc)
                        crow[cc] = c_img[r * kTileN + cc];
                }
            };
            store(0, m0, n0, mrem0, nrem0);
            if (nrem1 > 0)
                store(1, m0, n0 + kTileN, mrem0, nrem1);
            if (mrem1 > 0) {
                store(2, m0 + kTileM, n0, mrem1, nrem0);
                if (nrem1 > 0)
                    store(3, m0 + kTileM, n0 + kTileN, mrem1, nrem1);
            }
        },
        1);
}

void
gemmAmxI8Packed(const std::int8_t* a, const PackedWeightsI8& b, float* c,
                std::int64_t m, float scale_a)
{
    const std::int64_t n = b.n();
    const std::int64_t k = b.k();
    const std::int64_t m_blocks = (m + kTileM - 1) / kTileM;
    const std::int64_t n_blocks = b.nBlocks();
    const std::int64_t k_steps = b.kSteps();
    const float scale = scale_a * b.scale();
    const std::int64_t mm = (m_blocks + 1) / 2;
    const std::int64_t nn = (n_blocks + 1) / 2;

    // Same A-pack hoist as the BF16 kernel: one conversion per
    // (m-block, k-step) instead of one per n-pair task.
    constexpr std::int64_t kATileElemsI8 = kTileM * kTileKI8;
    std::vector<std::int8_t> apack(
        static_cast<std::size_t>(m_blocks * k_steps * kATileElemsI8));
    for (std::int64_t bm = 0; bm < m_blocks; ++bm) {
        const std::int64_t am0 = bm * kTileM;
        const int amrem = static_cast<int>(
            std::min<std::int64_t>(kTileM, m - am0));
        for (std::int64_t ks = 0; ks < k_steps; ++ks) {
            const std::int64_t k0 = ks * kTileKI8;
            const int krem = static_cast<int>(
                std::min<std::int64_t>(kTileKI8, k - k0));
            packATileI8(a, k, am0, k0, amrem, krem, amrem, kTileKI8,
                        apack.data() +
                            (bm * k_steps + ks) * kATileElemsI8);
        }
    }

    parallelFor(
        0, static_cast<std::size_t>(mm * nn),
        [&](std::size_t idx) {
            const std::int64_t bm0 =
                2 * (static_cast<std::int64_t>(idx) / nn);
            const std::int64_t bn0 =
                2 * (static_cast<std::int64_t>(idx) % nn);
            const std::int64_t m0 = bm0 * kTileM;
            const std::int64_t n0 = bn0 * kTileN;
            const int mrem0 = static_cast<int>(
                std::min<std::int64_t>(kTileM, m - m0));
            const int mrem1 =
                bm0 + 1 < m_blocks
                    ? static_cast<int>(std::min<std::int64_t>(
                          kTileM, m - (m0 + kTileM)))
                    : 0;
            const int nrem0 = static_cast<int>(
                std::min<std::int64_t>(kTileN, n - n0));
            const int nrem1 =
                bn0 + 1 < n_blocks
                    ? static_cast<int>(std::min<std::int64_t>(
                          kTileN, n - (n0 + kTileN)))
                    : 0;

            AmxContext& ctx = amxContext();
            ensureAmxConfig(ctx, mrem0, mrem1);
            isa::AmxUnit& amx = ctx.amx;

            alignas(64) std::int32_t c_img[kTileM * kTileN];

            amx.tilezero(0);
            if (nrem1 > 0)
                amx.tilezero(1);
            if (mrem1 > 0) {
                amx.tilezero(2);
                if (nrem1 > 0)
                    amx.tilezero(3);
            }
            for (std::int64_t ks = 0; ks < k_steps; ++ks) {
                amx.tileloadd(4,
                              apack.data() +
                                  (bm0 * k_steps + ks) * kATileElemsI8,
                              kTileKI8);
                if (mrem1 > 0) {
                    amx.tileloadd(
                        5,
                        apack.data() +
                            ((bm0 + 1) * k_steps + ks) * kATileElemsI8,
                        kTileKI8);
                }
                amx.tileloadd(6, b.tile(bn0, ks), kTileN * 4);
                if (nrem1 > 0)
                    amx.tileloadd(7, b.tile(bn0 + 1, ks), kTileN * 4);
                amx.tdpbssd(0, 4, 6);
                if (nrem1 > 0)
                    amx.tdpbssd(1, 4, 7);
                if (mrem1 > 0) {
                    amx.tdpbssd(2, 5, 6);
                    if (nrem1 > 0)
                        amx.tdpbssd(3, 5, 7);
                }
            }

            const auto store = [&](int t, std::int64_t mb,
                                   std::int64_t nb, int mr, int nr) {
                amx.tilestored(t, c_img,
                               kTileN * sizeof(std::int32_t));
                for (int r = 0; r < mr; ++r) {
                    float* crow = c + (mb + r) * n + nb;
                    for (int cc = 0; cc < nr; ++cc)
                        crow[cc] =
                            scale *
                            static_cast<float>(c_img[r * kTileN + cc]);
                }
            };
            store(0, m0, n0, mrem0, nrem0);
            if (nrem1 > 0)
                store(1, m0, n0 + kTileN, mrem0, nrem1);
            if (mrem1 > 0) {
                store(2, m0 + kTileM, n0, mrem1, nrem0);
                if (nrem1 > 0)
                    store(3, m0 + kTileM, n0 + kTileN, mrem1, nrem1);
            }
        },
        1);
}

void
gemmAvx512Bf16Packed(const BFloat16* a, const PackedWeightsVnni& b,
                     float* c, std::int64_t m)
{
    using isa::Vec512;
    using isa::Vec512Bf16;

    const std::int64_t n = b.n();
    const std::int64_t k = b.k();
    const std::int64_t k_pairs = b.kPairs();
    const std::int64_t n_vec = Vec512::kF32Lanes;
    parallelFor(0, static_cast<std::size_t>(m), [&](std::size_t mi_s) {
        const auto mi = static_cast<std::int64_t>(mi_s);
        const BFloat16* arow = a + mi * k;
        float* crow = c + mi * n;
        for (std::int64_t n0 = 0; n0 < n; n0 += n_vec) {
            const int nrem = static_cast<int>(
                std::min<std::int64_t>(n_vec, n - n0));
            Vec512 acc = Vec512::zero();
            for (std::int64_t p = 0; p < k_pairs; ++p) {
                // B rows are already pair-interleaved; the odd-K tail
                // pair is zero-padded on both operands, matching the
                // unpacked kernel's tail handling bit for bit.
                const Vec512Bf16 av = Vec512Bf16::broadcastPair(
                    arow[2 * p],
                    2 * p + 1 < k ? arow[2 * p + 1] : BFloat16());
                Vec512Bf16 bv;
                const BFloat16* row = b.pairRow(p) + 2 * n0;
                std::copy(row, row + 2 * nrem, bv.lanes.begin());
                acc = isa::dpbf16ps(acc, av, bv);
            }
            for (int lane = 0; lane < nrem; ++lane)
                crow[n0 + lane] = acc.f32[static_cast<size_t>(lane)];
        }
    }, 2);
}

Tensor
matmul(Engine engine, const Tensor& a, const Tensor& b)
{
    CPULLM_ASSERT(a.rank() == 2 && b.rank() == 2,
                  "matmul expects rank-2 operands, got ",
                  shapeToString(a.shape()), " x ",
                  shapeToString(b.shape()));
    const std::int64_t m = a.dim(0);
    const std::int64_t k = a.dim(1);
    const std::int64_t n = b.dim(1);
    CPULLM_ASSERT(b.dim(0) == k, "matmul inner dimension mismatch: ",
                  shapeToString(a.shape()), " x ",
                  shapeToString(b.shape()));

    Tensor out({m, n}, DType::F32);
    float* cp = out.data<float>();

    switch (engine) {
      case Engine::Reference: {
        const Tensor af = a.dtype() == DType::F32 ? a.cast(DType::F32)
                                                  : a.cast(DType::F32);
        const Tensor bf = b.cast(DType::F32);
        gemmRef(af.data<float>(), bf.data<float>(), cp, m, n, k);
        return out;
      }
      case Engine::AmxBf16: {
        const Tensor ab = a.dtype() == DType::BF16 ? a.cast(DType::BF16)
                                                   : a.cast(DType::BF16);
        const Tensor bb = b.cast(DType::BF16);
        gemmAmxBf16(ab.data<BFloat16>(), bb.data<BFloat16>(), cp, m, n,
                    k);
        return out;
      }
      case Engine::Avx512Bf16: {
        const Tensor ab = a.cast(DType::BF16);
        const Tensor bb = b.cast(DType::BF16);
        gemmAvx512Bf16(ab.data<BFloat16>(), bb.data<BFloat16>(), cp, m,
                       n, k);
        return out;
      }
      case Engine::AmxI8: {
        // Per-tensor symmetric quantization from the observed range.
        float amax = 0.0f, bmax = 0.0f;
        for (std::int64_t i = 0; i < a.size(); ++i)
            amax = std::max(amax, std::fabs(a.at(i)));
        for (std::int64_t i = 0; i < b.size(); ++i)
            bmax = std::max(bmax, std::fabs(b.at(i)));
        const QuantParams qa = QuantParams::forAbsMax(amax);
        const QuantParams qb = QuantParams::forAbsMax(bmax);
        std::vector<std::int8_t> aq(static_cast<size_t>(a.size()));
        std::vector<std::int8_t> bq(static_cast<size_t>(b.size()));
        for (std::int64_t i = 0; i < a.size(); ++i)
            aq[static_cast<size_t>(i)] = qa.quantize(a.at(i));
        for (std::int64_t i = 0; i < b.size(); ++i)
            bq[static_cast<size_t>(i)] = qb.quantize(b.at(i));
        gemmAmxI8(aq.data(), bq.data(), cp, m, n, k, qa.scale, qb.scale);
        return out;
      }
    }
    CPULLM_PANIC("unhandled engine");
}

} // namespace gemm
} // namespace cpullm
