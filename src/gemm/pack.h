#ifndef CPULLM_GEMM_PACK_H
#define CPULLM_GEMM_PACK_H

/**
 * @file
 * Operand packing for the tiled kernels. AMX's TDPBF16PS consumes the
 * B operand in VNNI layout: consecutive K elements are interleaved in
 * pairs so each tile row holds one K-pair across all N columns.
 * Packing routines zero-pad partial blocks so edge tiles can use the
 * full 16x64 tile configuration.
 */

#include <cstdint>
#include <vector>

#include "numerics/bf16.h"

namespace cpullm {
namespace gemm {

/**
 * Pack a [rows x cols] sub-block of a row-major BF16 matrix into a
 * tile image of @p tile_rows rows x @p tile_cols BF16 columns,
 * zero-padded.
 *
 * @param src      base of the full matrix
 * @param ld       leading dimension (elements) of the full matrix
 * @param r0,c0    top-left of the block within the matrix
 * @param rows,cols valid extent of the block (<= tile dims)
 * @param dst      tile image, tile_rows*tile_cols elements
 */
void packATile(const BFloat16* src, std::int64_t ld, std::int64_t r0,
               std::int64_t c0, int rows, int cols, int tile_rows,
               int tile_cols, BFloat16* dst);

/**
 * Pack a K x N sub-block of a row-major BF16 matrix into VNNI pair
 * layout: output row p holds, for each column n, the pair
 * (src[2p][n], src[2p+1][n]). Odd K is padded with zero.
 *
 * @param dst tile image of tile_kpairs rows x (2*tile_n) BF16 elements
 */
void packBTileVnni(const BFloat16* src, std::int64_t ld, std::int64_t k0,
                   std::int64_t n0, int k, int n, int tile_kpairs,
                   int tile_n, BFloat16* dst);

/**
 * INT8 variant of packATile (quads along K, no interleave needed for
 * the A operand).
 */
void packATileI8(const std::int8_t* src, std::int64_t ld, std::int64_t r0,
                 std::int64_t c0, int rows, int cols, int tile_rows,
                 int tile_cols, std::int8_t* dst);

/**
 * Pack a K x N INT8 block into VNNI quad layout: output row q holds,
 * for each column n, the quad (src[4q][n] .. src[4q+3][n]), zero
 * padded when K is not a multiple of 4.
 */
void packBTileVnniI8(const std::int8_t* src, std::int64_t ld,
                     std::int64_t k0, std::int64_t n0, int k, int n,
                     int tile_kquads, int tile_n, std::int8_t* dst);

/**
 * Convert a full row-major FP32 matrix to BF16 (round-nearest-even),
 * the precision weights are stored in.
 */
std::vector<BFloat16> toBf16(const float* src, std::int64_t count);

} // namespace gemm
} // namespace cpullm

#endif // CPULLM_GEMM_PACK_H
