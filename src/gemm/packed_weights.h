#ifndef CPULLM_GEMM_PACKED_WEIGHTS_H
#define CPULLM_GEMM_PACKED_WEIGHTS_H

/**
 * @file
 * Pre-packed weight cache for the functional GEMM path. The unpacked
 * kernels re-run packBTileVnni on the static B operand for every
 * M-block of every call — a decode run re-packs the full weight
 * matrix once per token per layer. These classes pack B exactly once
 * (at model construction) into the tile images the AMX TMUL consumes,
 * and the *Packed kernels stream them straight into TILELOADD.
 *
 * Packing only reorders bytes; the packed kernels execute the same
 * FP32/INT32 accumulation sequence as the unpacked ones, so results
 * are bitwise identical (tests/gemm/test_packed_weights.cc holds the
 * kernels to that).
 */

#include <cstdint>
#include <vector>

#include "gemm/gemm.h"
#include "numerics/bf16.h"
#include "numerics/dtype.h"
#include "tensor/tensor.h"

namespace cpullm {
namespace gemm {

/** AMX palette-1 native block sizes shared by every tiled kernel. */
inline constexpr int kTileM = 16;      ///< rows of A / C per tile
inline constexpr int kTileN = 16;      ///< FP32/INT32 C columns per tile
inline constexpr int kTileKBf16 = 32;  ///< BF16 K elements per tile step
inline constexpr int kTileKI8 = 64;    ///< INT8 K elements per tile step

/**
 * B[K,N] packed once into VNNI pair-interleaved 16x64-byte tile
 * images, laid out [n_block][k_step] with k-steps contiguous so a
 * full accumulation sweep streams linearly.
 */
class PackedWeightsBf16
{
  public:
    /** BF16 elements per tile image (16 pair-rows x 2*16 columns). */
    static constexpr std::int64_t kTileElems =
        (kTileKBf16 / 2) * (2 * kTileN);

    PackedWeightsBf16() = default;
    PackedWeightsBf16(const BFloat16* b, std::int64_t k, std::int64_t n);

    bool empty() const { return data_.empty(); }
    std::int64_t k() const { return k_; }
    std::int64_t n() const { return n_; }
    std::int64_t kSteps() const { return k_steps_; }
    std::int64_t nBlocks() const { return n_blocks_; }

    /** Tile image for n-block @p bn, k-step @p ks (row stride 64 B). */
    const BFloat16* tile(std::int64_t bn, std::int64_t ks) const
    {
        return data_.data() + (bn * k_steps_ + ks) * kTileElems;
    }

  private:
    std::int64_t k_ = 0;
    std::int64_t n_ = 0;
    std::int64_t k_steps_ = 0;
    std::int64_t n_blocks_ = 0;
    std::vector<BFloat16> data_;
};

/**
 * FP32 B[K,N] quantized once (per-tensor symmetric absmax, the same
 * scheme matmul applies per call) and packed into VNNI quad-
 * interleaved INT8 tile images; remembers the quantization scale.
 */
class PackedWeightsI8
{
  public:
    /** INT8 elements per tile image (16 quad-rows x 4*16 columns). */
    static constexpr std::int64_t kTileElems =
        (kTileKI8 / 4) * (4 * kTileN);

    PackedWeightsI8() = default;
    PackedWeightsI8(const float* b, std::int64_t k, std::int64_t n);

    bool empty() const { return data_.empty(); }
    std::int64_t k() const { return k_; }
    std::int64_t n() const { return n_; }
    std::int64_t kSteps() const { return k_steps_; }
    std::int64_t nBlocks() const { return n_blocks_; }
    float scale() const { return scale_; }

    const std::int8_t* tile(std::int64_t bn, std::int64_t ks) const
    {
        return data_.data() + (bn * k_steps_ + ks) * kTileElems;
    }

  private:
    std::int64_t k_ = 0;
    std::int64_t n_ = 0;
    std::int64_t k_steps_ = 0;
    std::int64_t n_blocks_ = 0;
    float scale_ = 0.0f;
    std::vector<std::int8_t> data_;
};

/**
 * B[K,N] pair-interleaved for the AVX-512 VDPBF16PS kernel: row p
 * holds (b[2p][j], b[2p+1][j]) for every column j, zero-padded on odd
 * K, so the kernel loads pair registers with one contiguous copy
 * instead of gathering two B rows lane by lane.
 */
class PackedWeightsVnni
{
  public:
    PackedWeightsVnni() = default;
    PackedWeightsVnni(const BFloat16* b, std::int64_t k, std::int64_t n);

    bool empty() const { return data_.empty(); }
    std::int64_t k() const { return k_; }
    std::int64_t n() const { return n_; }
    std::int64_t kPairs() const { return k_pairs_; }

    /** Interleaved row for K-pair @p p: 2*n() BF16 elements. */
    const BFloat16* pairRow(std::int64_t p) const
    {
        return data_.data() + p * 2 * n_;
    }

  private:
    std::int64_t k_ = 0;
    std::int64_t n_ = 0;
    std::int64_t k_pairs_ = 0;
    std::vector<BFloat16> data_;
};

/** BF16 GEMM over pre-packed B on the functional AMX unit. */
void gemmAmxBf16Packed(const BFloat16* a, const PackedWeightsBf16& b,
                       float* c, std::int64_t m);

/** INT8 GEMM over pre-quantized+packed B; output scale_a*b.scale(). */
void gemmAmxI8Packed(const std::int8_t* a, const PackedWeightsI8& b,
                     float* c, std::int64_t m, float scale_a);

/** BF16 GEMM over pair-interleaved B on the AVX-512 BF16 kernel. */
void gemmAvx512Bf16Packed(const BFloat16* a, const PackedWeightsVnni& b,
                          float* c, std::int64_t m);

/**
 * A weight matrix prepared once for a specific engine: the engine's
 * native dtype conversion, quantization, and tile packing all happen
 * here instead of per matmul call. Reference keeps a plain FP32 copy.
 */
class PreparedB
{
  public:
    PreparedB() = default;

    /** Prepare rank-2 @p b ([K, N], any dtype) for @p engine. */
    PreparedB(Engine engine, const Tensor& b);

    Engine engine() const { return engine_; }
    std::int64_t k() const { return k_; }
    std::int64_t n() const { return n_; }
    bool empty() const { return k_ == 0; }

    /** @name Engine-specific views (panic on engine mismatch) */
    /// @{
    const Tensor& refB() const;
    const PackedWeightsBf16& amxBf16() const;
    const PackedWeightsI8& amxI8() const;
    const PackedWeightsVnni& avx512() const;
    /// @}

  private:
    Engine engine_ = Engine::Reference;
    std::int64_t k_ = 0;
    std::int64_t n_ = 0;
    Tensor ref_b_;
    PackedWeightsBf16 amx_bf16_;
    PackedWeightsI8 amx_i8_;
    PackedWeightsVnni avx512_;
};

/**
 * matmul against a prepared B. Numerically identical to
 * matmul(engine, a, b_tensor) for the tensor @p b was prepared from;
 * @p engine must match b.engine().
 */
Tensor matmul(Engine engine, const Tensor& a, const PreparedB& b);

} // namespace gemm
} // namespace cpullm

#endif // CPULLM_GEMM_PACKED_WEIGHTS_H
