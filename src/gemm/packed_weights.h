#ifndef CPULLM_GEMM_PACKED_WEIGHTS_H
#define CPULLM_GEMM_PACKED_WEIGHTS_H

/**
 * @file
 * Pre-packed weight cache for the functional GEMM path. The unpacked
 * kernels re-run packBTileVnni on the static B operand for every
 * M-block of every call — a decode run re-packs the full weight
 * matrix once per token per layer. These classes pack B exactly once
 * (at model construction) into the tile images the AMX TMUL consumes,
 * and the *Packed kernels stream them straight into TILELOADD.
 *
 * Packing only reorders bytes; the packed kernels execute the same
 * FP32/INT32 accumulation sequence as the unpacked ones, so results
 * are bitwise identical (tests/gemm/test_packed_weights.cc holds the
 * kernels to that).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "gemm/gemm.h"
#include "numerics/bf16.h"
#include "numerics/dtype.h"
#include "tensor/tensor.h"

namespace cpullm {
namespace gemm {

/**
 * Storage dtype of a prepared weight matrix. Native keeps the
 * engine's own format (BF16 tiles / pair rows, per-tensor INT8 for
 * AmxI8). The grouped formats are weight-only quantization: the
 * weight bytes shrink (the decode bandwidth lever the paper's
 * Section IV points at) while activations stay full precision, and
 * dequantization is fused into the packed kernels' inner loops.
 */
enum class WeightDtype : std::uint8_t {
    Native,    ///< engine-native storage (bf16 on the BF16 engines)
    I8Grouped, ///< per-group absmax INT8, FMA-fused dequant
    I4Grouped, ///< nibble-packed INT4, per-group scales
};

/** CLI name of @p d ("bf16", "int8", "int4"). */
const char* weightDtypeName(WeightDtype d);

/**
 * Parse a --wquant value ("bf16"/"native", "int8"/"i8g",
 * "int4"/"i4g"). Returns false on unknown names so CLIs can exit 2.
 */
bool weightDtypeFromName(const std::string& name, WeightDtype* out);

/** Process-wide requested weight dtype (what --wquant/CPULLM_WQUANT
 *  select; engines pick it up at construction). */
WeightDtype requestedWeightDtype();
void setRequestedWeightDtype(WeightDtype d);

/**
 * Apply the CPULLM_WQUANT environment variable (if set and
 * non-empty). Returns false without side effects on malformed
 * values, storing the offending text in @p err_value (if non-null)
 * so CLIs can hard-error (exit 2) — same contract as
 * applyThreadsEnv/applyCountersEnv.
 */
bool applyWquantEnv(std::string* err_value = nullptr);

/** Default quantization group length along K (multiple of 16). */
inline constexpr std::int64_t kQuantGroup = 64;

/** AMX palette-1 native block sizes shared by every tiled kernel. */
inline constexpr int kTileM = 16;      ///< rows of A / C per tile
inline constexpr int kTileN = 16;      ///< FP32/INT32 C columns per tile
inline constexpr int kTileKBf16 = 32;  ///< BF16 K elements per tile step
inline constexpr int kTileKI8 = 64;    ///< INT8 K elements per tile step

/**
 * B[K,N] packed once into VNNI pair-interleaved 16x64-byte tile
 * images, laid out [n_block][k_step] with k-steps contiguous so a
 * full accumulation sweep streams linearly.
 */
class PackedWeightsBf16
{
  public:
    /** BF16 elements per tile image (16 pair-rows x 2*16 columns). */
    static constexpr std::int64_t kTileElems =
        (kTileKBf16 / 2) * (2 * kTileN);

    PackedWeightsBf16() = default;
    PackedWeightsBf16(const BFloat16* b, std::int64_t k, std::int64_t n);

    bool empty() const { return data_.empty(); }
    std::int64_t k() const { return k_; }
    std::int64_t n() const { return n_; }
    std::int64_t kSteps() const { return k_steps_; }
    std::int64_t nBlocks() const { return n_blocks_; }

    /** Tile image for n-block @p bn, k-step @p ks (row stride 64 B). */
    const BFloat16* tile(std::int64_t bn, std::int64_t ks) const
    {
        return data_.data() + (bn * k_steps_ + ks) * kTileElems;
    }

  private:
    std::int64_t k_ = 0;
    std::int64_t n_ = 0;
    std::int64_t k_steps_ = 0;
    std::int64_t n_blocks_ = 0;
    std::vector<BFloat16> data_;
};

/**
 * FP32 B[K,N] quantized once (per-tensor symmetric absmax, the same
 * scheme matmul applies per call) and packed into VNNI quad-
 * interleaved INT8 tile images; remembers the quantization scale.
 */
class PackedWeightsI8
{
  public:
    /** INT8 elements per tile image (16 quad-rows x 4*16 columns). */
    static constexpr std::int64_t kTileElems =
        (kTileKI8 / 4) * (4 * kTileN);

    PackedWeightsI8() = default;
    PackedWeightsI8(const float* b, std::int64_t k, std::int64_t n);

    bool empty() const { return data_.empty(); }
    std::int64_t k() const { return k_; }
    std::int64_t n() const { return n_; }
    std::int64_t kSteps() const { return k_steps_; }
    std::int64_t nBlocks() const { return n_blocks_; }
    float scale() const { return scale_; }

    const std::int8_t* tile(std::int64_t bn, std::int64_t ks) const
    {
        return data_.data() + (bn * k_steps_ + ks) * kTileElems;
    }

  private:
    std::int64_t k_ = 0;
    std::int64_t n_ = 0;
    std::int64_t k_steps_ = 0;
    std::int64_t n_blocks_ = 0;
    float scale_ = 0.0f;
    std::vector<std::int8_t> data_;
};

/**
 * B[K,N] pair-interleaved for the AVX-512 VDPBF16PS kernel: row p
 * holds (b[2p][j], b[2p+1][j]) for every column j, zero-padded on odd
 * K, so the kernel loads pair registers with one contiguous copy
 * instead of gathering two B rows lane by lane.
 */
class PackedWeightsVnni
{
  public:
    PackedWeightsVnni() = default;
    PackedWeightsVnni(const BFloat16* b, std::int64_t k, std::int64_t n);

    bool empty() const { return data_.empty(); }
    std::int64_t k() const { return k_; }
    std::int64_t n() const { return n_; }
    std::int64_t kPairs() const { return k_pairs_; }

    /** Interleaved row for K-pair @p p: 2*n() BF16 elements. */
    const BFloat16* pairRow(std::int64_t p) const
    {
        return data_.data() + p * 2 * n_;
    }

  private:
    std::int64_t k_ = 0;
    std::int64_t n_ = 0;
    std::int64_t k_pairs_ = 0;
    std::vector<BFloat16> data_;
};

/**
 * FP32 B[K,N] quantized once per (column, K-group) with symmetric
 * absmax INT8 and stored column-major (each output column's K codes
 * contiguous) so the decode GEMV streams one row of codes plus its
 * group scales per output — no tile transpose. All-zero groups get
 * scale 1 with zero codes, never a zero divisor.
 */
class PackedWeightsI8G
{
  public:
    PackedWeightsI8G() = default;
    PackedWeightsI8G(const float* b, std::int64_t k, std::int64_t n,
                     std::int64_t group = kQuantGroup);

    bool empty() const { return data_.empty(); }
    std::int64_t k() const { return k_; }
    std::int64_t n() const { return n_; }
    std::int64_t group() const { return group_; }
    std::int64_t groups() const { return groups_; }
    std::int64_t kPad() const { return groups_ * group_; }

    /** Contiguous K codes of output column @p j (kPad() entries). */
    const std::int8_t* row(std::int64_t j) const
    {
        return data_.data() + j * kPad();
    }
    /** Group scales of column @p j (groups() entries). */
    const float* scaleRow(std::int64_t j) const
    {
        return scales_.data() + j * groups_;
    }
    /** Dequantized element (kk, j) — test/validation accessor. */
    float dequant(std::int64_t kk, std::int64_t j) const
    {
        return scaleRow(j)[kk / group_] * row(j)[kk];
    }

    /** Packed footprint: codes plus scales, the bytes a decode step
     *  streams per matmul against this weight. */
    std::uint64_t bytes() const
    {
        return data_.size() + scales_.size() * sizeof(float);
    }

    /** @name Dequantization error vs the FP32 source */
    /// @{
    double maxAbsErr() const { return max_abs_err_; }
    double errSumSq() const { return err_sum_sq_; }
    std::int64_t errElems() const { return k_ * n_; }
    /// @}

  private:
    std::int64_t k_ = 0;
    std::int64_t n_ = 0;
    std::int64_t group_ = 0;
    std::int64_t groups_ = 0;
    double max_abs_err_ = 0.0;
    double err_sum_sq_ = 0.0;
    std::vector<std::int8_t> data_;
    std::vector<float> scales_;
};

/**
 * FP32 B[K,N] quantized to 4 bits per weight: per-(column, K-group)
 * scales, two codes nibble-packed per byte, column-major like
 * PackedWeightsI8G. Within a column the codes are laid out in planar
 * 16-element micro-blocks — byte i of a block holds element i in the
 * low nibble and element i+8 in the high one — so the fused kernels
 * split a whole block into INT8 codes with two mask/shift ops on a
 * single 64-bit load. Symmetric by default (codes -7..7 biased to
 * 1..15); with_offset adds an NF4-style per-group affine offset
 * (codes 0..15, real = scale * code + offset) for asymmetric
 * distributions. Degenerate (constant / all-zero) groups get scale 1
 * with the code that reproduces the constant.
 */
class PackedWeightsI4G
{
  public:
    /** Bias added to symmetric codes so they pack as unsigned
     *  nibbles: stored = code + 8, code in [-7, 7]. */
    static constexpr int kSymBias = 8;

    PackedWeightsI4G() = default;
    PackedWeightsI4G(const float* b, std::int64_t k, std::int64_t n,
                     std::int64_t group = kQuantGroup,
                     bool with_offset = false);

    bool empty() const { return data_.empty(); }
    std::int64_t k() const { return k_; }
    std::int64_t n() const { return n_; }
    std::int64_t group() const { return group_; }
    std::int64_t groups() const { return groups_; }
    std::int64_t kPad() const { return groups_ * group_; }
    bool withOffset() const { return !offsets_.empty(); }

    /** Nibble-packed K codes of column @p j (kPad()/2 bytes, planar
     *  16-element micro-blocks — see the class comment). */
    const std::uint8_t* row(std::int64_t j) const
    {
        return data_.data() + j * (kPad() / 2);
    }
    const float* scaleRow(std::int64_t j) const
    {
        return scales_.data() + j * groups_;
    }
    const float* offsetRow(std::int64_t j) const
    {
        return offsets_.data() + j * groups_;
    }

    /** Unsigned nibble code of element (kk, j). */
    int code(std::int64_t kk, std::int64_t j) const
    {
        const std::int64_t r = kk & 15;
        const std::uint8_t byte = row(j)[static_cast<std::size_t>(
            (kk >> 4) * 8 + (r & 7))];
        return r < 8 ? (byte & 0xf) : (byte >> 4);
    }
    /** Dequantized element (kk, j) — test/validation accessor. */
    float dequant(std::int64_t kk, std::int64_t j) const
    {
        const std::int64_t g = kk / group_;
        const int u = code(kk, j);
        return withOffset()
                   ? scaleRow(j)[g] * static_cast<float>(u) +
                         offsetRow(j)[g]
                   : scaleRow(j)[g] *
                         static_cast<float>(u - kSymBias);
    }

    std::uint64_t bytes() const
    {
        return data_.size() +
               (scales_.size() + offsets_.size()) * sizeof(float);
    }

    /** @name Dequantization error vs the FP32 source */
    /// @{
    double maxAbsErr() const { return max_abs_err_; }
    double errSumSq() const { return err_sum_sq_; }
    std::int64_t errElems() const { return k_ * n_; }
    /// @}

  private:
    std::int64_t k_ = 0;
    std::int64_t n_ = 0;
    std::int64_t group_ = 0;
    std::int64_t groups_ = 0;
    double max_abs_err_ = 0.0;
    double err_sum_sq_ = 0.0;
    std::vector<std::uint8_t> data_;
    std::vector<float> scales_;
    std::vector<float> offsets_; ///< empty in symmetric mode
};

/** Packed bytes the BF16 tile format would occupy for a [K, N]
 *  weight — the denominator of every bytes-moved-reduction metric. */
std::uint64_t packedBf16Bytes(std::int64_t k, std::int64_t n);

/** BF16 GEMM over pre-packed B on the functional AMX unit. */
void gemmAmxBf16Packed(const BFloat16* a, const PackedWeightsBf16& b,
                       float* c, std::int64_t m);

/** INT8 GEMM over pre-quantized+packed B; output scale_a*b.scale(). */
void gemmAmxI8Packed(const std::int8_t* a, const PackedWeightsI8& b,
                     float* c, std::int64_t m, float scale_a);

/** BF16 GEMM over pair-interleaved B on the AVX-512 BF16 kernel. */
void gemmAvx512Bf16Packed(const BFloat16* a, const PackedWeightsVnni& b,
                          float* c, std::int64_t m);

/**
 * FP32-activation GEMM over group-quantized INT8 weights with
 * dequantization fused into the AVX-512 FMA inner loop (one scale
 * broadcast per group, 16 codes widened per step). Partitioned over
 * N in fixed 16-column tasks — every output element is computed
 * whole inside one task, so results are bitwise identical for any
 * thread count or backend (the attnFused contract).
 */
void gemmAvx512I8gPacked(const float* a, const PackedWeightsI8G& b,
                         float* c, std::int64_t m);

/** Same contract as gemmAvx512I8gPacked over nibble-packed INT4. */
void gemmAvx512I4gPacked(const float* a, const PackedWeightsI4G& b,
                         float* c, std::int64_t m);

/**
 * m=1 decode fast path over INT4 weights: streams each output
 * column's nibble row and group scales once, no tile transpose and
 * no M loop, thread-pool partitioned over N with larger grain.
 * Bitwise identical to gemmAvx512I4gPacked at m == 1 (shared
 * per-column dot routine).
 */
void gemvI4gFused(const float* a, const PackedWeightsI4G& b, float* c);

/**
 * Process-wide counters for the quantized weight path, mirroring
 * AttnStats: prepared-tensor footprints and dequantization error at
 * construction, fused-kernel call/byte counts at matmul time.
 * Exported as host.quant.* registry stats and cpullm_host_quant_*
 * gauges.
 */
struct QuantStats
{
    std::uint64_t tensors = 0;       ///< quantized weights prepared
    std::uint64_t tensorsI4 = 0;     ///< of which nibble-packed INT4
    std::uint64_t packedBytes = 0;   ///< quantized bytes (codes+scales)
    std::uint64_t nativeBytes = 0;   ///< BF16 tile bytes they replace
    std::uint64_t gemmCalls = 0;     ///< fused-dequant calls, m > 1
    std::uint64_t gemvCalls = 0;     ///< fused decode GEMV calls
    std::uint64_t bytesStreamed = 0; ///< packed bytes those calls read
    double maxAbsErr = 0.0;          ///< worst per-weight dequant error
    double rmsErr = 0.0;             ///< RMS dequant error, all weights
};

/** Snapshot of the process-wide counters (atomic reads). */
QuantStats quantStats();

/** Reset the counters (tests). */
void resetQuantStats();

/**
 * A weight matrix prepared once for a specific engine: the engine's
 * native dtype conversion, quantization, and tile packing all happen
 * here instead of per matmul call. Reference keeps a plain FP32 copy.
 */
class PreparedB
{
  public:
    PreparedB() = default;

    /** Prepare rank-2 @p b ([K, N], any dtype) for @p engine. */
    PreparedB(Engine engine, const Tensor& b);

    /**
     * Prepare with an explicit weight dtype. The grouped quantized
     * formats replace the engine-native packing on every engine
     * (weight-only quantization: the fused AVX-512 dequant kernels
     * run regardless of which BF16 engine the model selected);
     * matmul still requires the engine to match.
     */
    PreparedB(Engine engine, const Tensor& b, WeightDtype wdtype,
              std::int64_t group = kQuantGroup);

    Engine engine() const { return engine_; }
    WeightDtype weightDtype() const { return wdtype_; }
    std::int64_t k() const { return k_; }
    std::int64_t n() const { return n_; }
    bool empty() const { return k_ == 0; }

    /** @name Engine-specific views (panic on engine mismatch) */
    /// @{
    const Tensor& refB() const;
    const PackedWeightsBf16& amxBf16() const;
    const PackedWeightsI8& amxI8() const;
    const PackedWeightsVnni& avx512() const;
    /// @}

    /** @name Quantized views (panic unless weightDtype() matches) */
    /// @{
    const PackedWeightsI8G& i8g() const;
    const PackedWeightsI4G& i4g() const;
    /// @}

    /** @name Dequantization error (0 for Native) */
    /// @{
    double quantMaxAbsErr() const;
    double quantErrSumSq() const;
    /** Elements behind quantErrSumSq (k*n; 0 for Native). */
    std::int64_t quantErrElems() const
    {
        return wdtype_ == WeightDtype::Native ? 0 : k_ * n_;
    }
    /// @}

  private:
    Engine engine_ = Engine::Reference;
    WeightDtype wdtype_ = WeightDtype::Native;
    std::int64_t k_ = 0;
    std::int64_t n_ = 0;
    Tensor ref_b_;
    PackedWeightsBf16 amx_bf16_;
    PackedWeightsI8 amx_i8_;
    PackedWeightsVnni avx512_;
    PackedWeightsI8G i8g_;
    PackedWeightsI4G i4g_;
};

/**
 * matmul against a prepared B. Numerically identical to
 * matmul(engine, a, b_tensor) for the tensor @p b was prepared from;
 * @p engine must match b.engine().
 */
Tensor matmul(Engine engine, const Tensor& a, const PreparedB& b);

} // namespace gemm
} // namespace cpullm

#endif // CPULLM_GEMM_PACKED_WEIGHTS_H
