#include "gemm/pack.h"

#include <cstring>

namespace cpullm {
namespace gemm {

void
packATile(const BFloat16* src, std::int64_t ld, std::int64_t r0,
          std::int64_t c0, int rows, int cols, int tile_rows,
          int tile_cols, BFloat16* dst)
{
    for (int r = 0; r < tile_rows; ++r) {
        BFloat16* out = dst + static_cast<std::int64_t>(r) * tile_cols;
        if (r < rows) {
            const BFloat16* in = src + (r0 + r) * ld + c0;
            int c = 0;
            for (; c < cols; ++c)
                out[c] = in[c];
            for (; c < tile_cols; ++c)
                out[c] = BFloat16();
        } else {
            for (int c = 0; c < tile_cols; ++c)
                out[c] = BFloat16();
        }
    }
}

void
packBTileVnni(const BFloat16* src, std::int64_t ld, std::int64_t k0,
              std::int64_t n0, int k, int n, int tile_kpairs, int tile_n,
              BFloat16* dst)
{
    for (int p = 0; p < tile_kpairs; ++p) {
        BFloat16* out =
            dst + static_cast<std::int64_t>(p) * (2 * tile_n);
        const int klo = 2 * p;
        const int khi = 2 * p + 1;
        for (int c = 0; c < tile_n; ++c) {
            BFloat16 lo, hi;
            if (c < n && klo < k)
                lo = src[(k0 + klo) * ld + n0 + c];
            if (c < n && khi < k)
                hi = src[(k0 + khi) * ld + n0 + c];
            out[2 * c] = lo;
            out[2 * c + 1] = hi;
        }
    }
}

void
packATileI8(const std::int8_t* src, std::int64_t ld, std::int64_t r0,
            std::int64_t c0, int rows, int cols, int tile_rows,
            int tile_cols, std::int8_t* dst)
{
    for (int r = 0; r < tile_rows; ++r) {
        std::int8_t* out = dst + static_cast<std::int64_t>(r) * tile_cols;
        if (r < rows) {
            const std::int8_t* in = src + (r0 + r) * ld + c0;
            int c = 0;
            for (; c < cols; ++c)
                out[c] = in[c];
            for (; c < tile_cols; ++c)
                out[c] = 0;
        } else {
            std::memset(out, 0, static_cast<size_t>(tile_cols));
        }
    }
}

void
packBTileVnniI8(const std::int8_t* src, std::int64_t ld, std::int64_t k0,
                std::int64_t n0, int k, int n, int tile_kquads, int tile_n,
                std::int8_t* dst)
{
    for (int q = 0; q < tile_kquads; ++q) {
        std::int8_t* out =
            dst + static_cast<std::int64_t>(q) * (4 * tile_n);
        for (int c = 0; c < tile_n; ++c) {
            for (int i = 0; i < 4; ++i) {
                const int kk = 4 * q + i;
                std::int8_t v = 0;
                if (c < n && kk < k)
                    v = src[(k0 + kk) * ld + n0 + c];
                out[4 * c + i] = v;
            }
        }
    }
}

std::vector<BFloat16>
toBf16(const float* src, std::int64_t count)
{
    std::vector<BFloat16> out(static_cast<size_t>(count));
    for (std::int64_t i = 0; i < count; ++i)
        out[static_cast<size_t>(i)] = BFloat16(src[i]);
    return out;
}

} // namespace gemm
} // namespace cpullm
