#include "gemm/packed_weights.h"

#include <algorithm>
#include <cmath>

#include "gemm/pack.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace cpullm {
namespace gemm {

PackedWeightsBf16::PackedWeightsBf16(const BFloat16* b, std::int64_t k,
                                     std::int64_t n)
    : k_(k), n_(n), k_steps_((k + kTileKBf16 - 1) / kTileKBf16),
      n_blocks_((n + kTileN - 1) / kTileN)
{
    CPULLM_ASSERT(k > 0 && n > 0, "PackedWeightsBf16 needs K,N >= 1");
    data_.resize(
        static_cast<std::size_t>(n_blocks_ * k_steps_ * kTileElems));
    parallelFor(0, static_cast<std::size_t>(n_blocks_),
                [&](std::size_t bn_s) {
        const auto bn = static_cast<std::int64_t>(bn_s);
        const std::int64_t n0 = bn * kTileN;
        const int nrem = static_cast<int>(
            std::min<std::int64_t>(kTileN, n - n0));
        for (std::int64_t ks = 0; ks < k_steps_; ++ks) {
            const std::int64_t k0 = ks * kTileKBf16;
            const int krem = static_cast<int>(
                std::min<std::int64_t>(kTileKBf16, k - k0));
            packBTileVnni(b, n, k0, n0, krem, nrem, kTileKBf16 / 2,
                          kTileN,
                          data_.data() + (bn * k_steps_ + ks) *
                                             kTileElems);
        }
    });
}

PackedWeightsI8::PackedWeightsI8(const float* b, std::int64_t k,
                                 std::int64_t n)
    : k_(k), n_(n), k_steps_((k + kTileKI8 - 1) / kTileKI8),
      n_blocks_((n + kTileN - 1) / kTileN)
{
    CPULLM_ASSERT(k > 0 && n > 0, "PackedWeightsI8 needs K,N >= 1");
    // Same per-tensor symmetric quantization matmul applies per call.
    float bmax = 0.0f;
    for (std::int64_t i = 0; i < k * n; ++i)
        bmax = std::max(bmax, std::fabs(b[i]));
    const QuantParams qb = QuantParams::forAbsMax(bmax);
    scale_ = qb.scale;
    std::vector<std::int8_t> bq(static_cast<std::size_t>(k * n));
    for (std::int64_t i = 0; i < k * n; ++i)
        bq[static_cast<std::size_t>(i)] = qb.quantize(b[i]);

    data_.resize(
        static_cast<std::size_t>(n_blocks_ * k_steps_ * kTileElems));
    parallelFor(0, static_cast<std::size_t>(n_blocks_),
                [&](std::size_t bn_s) {
        const auto bn = static_cast<std::int64_t>(bn_s);
        const std::int64_t n0 = bn * kTileN;
        const int nrem = static_cast<int>(
            std::min<std::int64_t>(kTileN, n - n0));
        for (std::int64_t ks = 0; ks < k_steps_; ++ks) {
            const std::int64_t k0 = ks * kTileKI8;
            const int krem = static_cast<int>(
                std::min<std::int64_t>(kTileKI8, k - k0));
            packBTileVnniI8(bq.data(), n, k0, n0, krem, nrem,
                            kTileKI8 / 4, kTileN,
                            data_.data() + (bn * k_steps_ + ks) *
                                               kTileElems);
        }
    });
}

PackedWeightsVnni::PackedWeightsVnni(const BFloat16* b, std::int64_t k,
                                     std::int64_t n)
    : k_(k), n_(n), k_pairs_((k + 1) / 2)
{
    CPULLM_ASSERT(k > 0 && n > 0, "PackedWeightsVnni needs K,N >= 1");
    data_.resize(static_cast<std::size_t>(k_pairs_ * 2 * n));
    parallelFor(0, static_cast<std::size_t>(k_pairs_),
                [&](std::size_t p_s) {
        const auto p = static_cast<std::int64_t>(p_s);
        BFloat16* row = data_.data() + p * 2 * n;
        const BFloat16* b0 = b + 2 * p * n;
        const BFloat16* b1 = b0 + n;
        const bool has_hi = 2 * p + 1 < k;
        for (std::int64_t j = 0; j < n; ++j) {
            row[2 * j] = b0[j];
            row[2 * j + 1] = has_hi ? b1[j] : BFloat16();
        }
    }, 8);
}

PreparedB::PreparedB(Engine engine, const Tensor& b) : engine_(engine)
{
    CPULLM_ASSERT(b.rank() == 2,
                  "PreparedB expects a rank-2 weight, got ",
                  shapeToString(b.shape()));
    k_ = b.dim(0);
    n_ = b.dim(1);
    switch (engine) {
      case Engine::Reference:
        ref_b_ = b.cast(DType::F32);
        return;
      case Engine::AmxBf16: {
        const Tensor bb = b.cast(DType::BF16);
        amx_bf16_ = PackedWeightsBf16(bb.data<BFloat16>(), k_, n_);
        return;
      }
      case Engine::Avx512Bf16: {
        const Tensor bb = b.cast(DType::BF16);
        avx512_ = PackedWeightsVnni(bb.data<BFloat16>(), k_, n_);
        return;
      }
      case Engine::AmxI8: {
        const Tensor bf = b.cast(DType::F32);
        amx_i8_ = PackedWeightsI8(bf.data<float>(), k_, n_);
        return;
      }
    }
    CPULLM_PANIC("unhandled engine");
}

const Tensor&
PreparedB::refB() const
{
    CPULLM_ASSERT(engine_ == Engine::Reference,
                  "PreparedB holds ", engineName(engine_),
                  ", not reference-fp32");
    return ref_b_;
}

const PackedWeightsBf16&
PreparedB::amxBf16() const
{
    CPULLM_ASSERT(engine_ == Engine::AmxBf16, "PreparedB holds ",
                  engineName(engine_), ", not amx-bf16");
    return amx_bf16_;
}

const PackedWeightsI8&
PreparedB::amxI8() const
{
    CPULLM_ASSERT(engine_ == Engine::AmxI8, "PreparedB holds ",
                  engineName(engine_), ", not amx-int8");
    return amx_i8_;
}

const PackedWeightsVnni&
PreparedB::avx512() const
{
    CPULLM_ASSERT(engine_ == Engine::Avx512Bf16, "PreparedB holds ",
                  engineName(engine_), ", not avx512-bf16");
    return avx512_;
}

Tensor
matmul(Engine engine, const Tensor& a, const PreparedB& b)
{
    CPULLM_ASSERT(engine == b.engine(),
                  "matmul engine ", engineName(engine),
                  " mismatches PreparedB engine ",
                  engineName(b.engine()));
    CPULLM_ASSERT(a.rank() == 2, "matmul expects a rank-2 activation, "
                  "got ", shapeToString(a.shape()));
    const std::int64_t m = a.dim(0);
    const std::int64_t k = a.dim(1);
    CPULLM_ASSERT(k == b.k(), "matmul inner dimension mismatch: ",
                  shapeToString(a.shape()), " x packed [", b.k(), ", ",
                  b.n(), "]");

    Tensor out({m, b.n()}, DType::F32);
    float* cp = out.data<float>();

    switch (engine) {
      case Engine::Reference: {
        const Tensor af = a.cast(DType::F32);
        gemmRef(af.data<float>(), b.refB().data<float>(), cp, m, b.n(),
                k);
        return out;
      }
      case Engine::AmxBf16: {
        const Tensor ab = a.cast(DType::BF16);
        gemmAmxBf16Packed(ab.data<BFloat16>(), b.amxBf16(), cp, m);
        return out;
      }
      case Engine::Avx512Bf16: {
        const Tensor ab = a.cast(DType::BF16);
        gemmAvx512Bf16Packed(ab.data<BFloat16>(), b.avx512(), cp, m);
        return out;
      }
      case Engine::AmxI8: {
        // Activations are still quantized per call from their
        // observed range; only the weight side is cached.
        float amax = 0.0f;
        for (std::int64_t i = 0; i < a.size(); ++i)
            amax = std::max(amax, std::fabs(a.at(i)));
        const QuantParams qa = QuantParams::forAbsMax(amax);
        std::vector<std::int8_t> aq(static_cast<std::size_t>(a.size()));
        for (std::int64_t i = 0; i < a.size(); ++i)
            aq[static_cast<std::size_t>(i)] = qa.quantize(a.at(i));
        gemmAmxI8Packed(aq.data(), b.amxI8(), cp, m, qa.scale);
        return out;
      }
    }
    CPULLM_PANIC("unhandled engine");
}

} // namespace gemm
} // namespace cpullm
