#include "gemm/packed_weights.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <mutex>

// The INT4 fast path uses AVX-512F intrinsics inside a
// target("avx512f") function, which GCC/Clang permit without any
// -march flag; runtime dispatch below keeps the binary portable.
#if defined(__x86_64__) && defined(__GNUC__)
#define CPULLM_X86_DISPATCH 1
#include <immintrin.h>
#endif

#include "gemm/pack.h"
#include "isa/avx512.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/string_util.h"

namespace cpullm {
namespace gemm {

namespace {

std::atomic<WeightDtype> requested_wdtype_{WeightDtype::Native};

// Process-wide quantization counters (the AttnStats pattern).
// Error aggregates are doubles merged under a mutex: preparation is
// cold (once per weight), the kernels never touch it.
std::atomic<std::uint64_t> q_tensors_{0};
std::atomic<std::uint64_t> q_tensors_i4_{0};
std::atomic<std::uint64_t> q_packed_bytes_{0};
std::atomic<std::uint64_t> q_native_bytes_{0};
std::atomic<std::uint64_t> q_gemm_calls_{0};
std::atomic<std::uint64_t> q_gemv_calls_{0};
std::atomic<std::uint64_t> q_bytes_streamed_{0};
std::mutex q_err_mu_;
double q_max_abs_err_ = 0.0;
double q_err_sum_sq_ = 0.0;
std::uint64_t q_err_elems_ = 0;

void
quantStatsOnPrepare(bool is_i4, std::uint64_t packed_bytes,
                    std::uint64_t native_bytes, double max_abs_err,
                    double err_sum_sq, std::uint64_t elems)
{
    q_tensors_.fetch_add(1, std::memory_order_relaxed);
    if (is_i4)
        q_tensors_i4_.fetch_add(1, std::memory_order_relaxed);
    q_packed_bytes_.fetch_add(packed_bytes,
                              std::memory_order_relaxed);
    q_native_bytes_.fetch_add(native_bytes,
                              std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(q_err_mu_);
    q_max_abs_err_ = std::max(q_max_abs_err_, max_abs_err);
    q_err_sum_sq_ += err_sum_sq;
    q_err_elems_ += elems;
}

void
quantStatsOnCall(bool is_gemv, std::uint64_t bytes)
{
    (is_gemv ? q_gemv_calls_ : q_gemm_calls_)
        .fetch_add(1, std::memory_order_relaxed);
    q_bytes_streamed_.fetch_add(bytes, std::memory_order_relaxed);
}

} // namespace

const char*
weightDtypeName(WeightDtype d)
{
    switch (d) {
      case WeightDtype::Native:
        return "bf16";
      case WeightDtype::I8Grouped:
        return "int8";
      case WeightDtype::I4Grouped:
        return "int4";
    }
    CPULLM_PANIC("unhandled weight dtype");
}

bool
weightDtypeFromName(const std::string& name, WeightDtype* out)
{
    const std::string n = toLower(name);
    if (n == "bf16" || n == "native" || n == "none") {
        *out = WeightDtype::Native;
        return true;
    }
    if (n == "int8" || n == "i8" || n == "i8g") {
        *out = WeightDtype::I8Grouped;
        return true;
    }
    if (n == "int4" || n == "i4" || n == "i4g") {
        *out = WeightDtype::I4Grouped;
        return true;
    }
    return false;
}

WeightDtype
requestedWeightDtype()
{
    return requested_wdtype_.load(std::memory_order_relaxed);
}

void
setRequestedWeightDtype(WeightDtype d)
{
    requested_wdtype_.store(d, std::memory_order_relaxed);
}

bool
applyWquantEnv(std::string* err_value)
{
    const char* env = std::getenv("CPULLM_WQUANT");
    if (env == nullptr || *env == '\0')
        return true;
    WeightDtype d;
    if (!weightDtypeFromName(env, &d)) {
        if (err_value != nullptr)
            *err_value = env;
        return false;
    }
    setRequestedWeightDtype(d);
    return true;
}

QuantStats
quantStats()
{
    QuantStats s;
    s.tensors = q_tensors_.load(std::memory_order_relaxed);
    s.tensorsI4 = q_tensors_i4_.load(std::memory_order_relaxed);
    s.packedBytes = q_packed_bytes_.load(std::memory_order_relaxed);
    s.nativeBytes = q_native_bytes_.load(std::memory_order_relaxed);
    s.gemmCalls = q_gemm_calls_.load(std::memory_order_relaxed);
    s.gemvCalls = q_gemv_calls_.load(std::memory_order_relaxed);
    s.bytesStreamed =
        q_bytes_streamed_.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(q_err_mu_);
    s.maxAbsErr = q_max_abs_err_;
    s.rmsErr = q_err_elems_ > 0
                   ? std::sqrt(q_err_sum_sq_ /
                               static_cast<double>(q_err_elems_))
                   : 0.0;
    return s;
}

void
resetQuantStats()
{
    q_tensors_.store(0, std::memory_order_relaxed);
    q_tensors_i4_.store(0, std::memory_order_relaxed);
    q_packed_bytes_.store(0, std::memory_order_relaxed);
    q_native_bytes_.store(0, std::memory_order_relaxed);
    q_gemm_calls_.store(0, std::memory_order_relaxed);
    q_gemv_calls_.store(0, std::memory_order_relaxed);
    q_bytes_streamed_.store(0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(q_err_mu_);
    q_max_abs_err_ = 0.0;
    q_err_sum_sq_ = 0.0;
    q_err_elems_ = 0;
}

std::uint64_t
packedBf16Bytes(std::int64_t k, std::int64_t n)
{
    const std::int64_t n_blocks = (n + kTileN - 1) / kTileN;
    const std::int64_t k_steps = (k + kTileKBf16 - 1) / kTileKBf16;
    return static_cast<std::uint64_t>(n_blocks * k_steps *
                                      PackedWeightsBf16::kTileElems) *
           sizeof(BFloat16);
}

PackedWeightsBf16::PackedWeightsBf16(const BFloat16* b, std::int64_t k,
                                     std::int64_t n)
    : k_(k), n_(n), k_steps_((k + kTileKBf16 - 1) / kTileKBf16),
      n_blocks_((n + kTileN - 1) / kTileN)
{
    CPULLM_ASSERT(k > 0 && n > 0, "PackedWeightsBf16 needs K,N >= 1");
    data_.resize(
        static_cast<std::size_t>(n_blocks_ * k_steps_ * kTileElems));
    parallelFor(0, static_cast<std::size_t>(n_blocks_),
                [&](std::size_t bn_s) {
        const auto bn = static_cast<std::int64_t>(bn_s);
        const std::int64_t n0 = bn * kTileN;
        const int nrem = static_cast<int>(
            std::min<std::int64_t>(kTileN, n - n0));
        for (std::int64_t ks = 0; ks < k_steps_; ++ks) {
            const std::int64_t k0 = ks * kTileKBf16;
            const int krem = static_cast<int>(
                std::min<std::int64_t>(kTileKBf16, k - k0));
            packBTileVnni(b, n, k0, n0, krem, nrem, kTileKBf16 / 2,
                          kTileN,
                          data_.data() + (bn * k_steps_ + ks) *
                                             kTileElems);
        }
    });
}

PackedWeightsI8::PackedWeightsI8(const float* b, std::int64_t k,
                                 std::int64_t n)
    : k_(k), n_(n), k_steps_((k + kTileKI8 - 1) / kTileKI8),
      n_blocks_((n + kTileN - 1) / kTileN)
{
    CPULLM_ASSERT(k > 0 && n > 0, "PackedWeightsI8 needs K,N >= 1");
    // Same per-tensor symmetric quantization matmul applies per call.
    float bmax = 0.0f;
    for (std::int64_t i = 0; i < k * n; ++i)
        bmax = std::max(bmax, std::fabs(b[i]));
    std::vector<std::int8_t> bq(static_cast<std::size_t>(k * n));
    if (bmax > 0.0f) {
        const QuantParams qb = QuantParams::forAbsMax(bmax);
        scale_ = qb.scale;
        for (std::int64_t i = 0; i < k * n; ++i)
            bq[static_cast<std::size_t>(i)] = qb.quantize(b[i]);
    } else {
        // All-zero weights: an explicit scale-1 / zero-tile guard so
        // no divisor can be 0 and the dequantized output is exactly
        // zero rather than 0 * (1/0) = NaN.
        scale_ = 1.0f;
    }

    data_.resize(
        static_cast<std::size_t>(n_blocks_ * k_steps_ * kTileElems));
    parallelFor(0, static_cast<std::size_t>(n_blocks_),
                [&](std::size_t bn_s) {
        const auto bn = static_cast<std::int64_t>(bn_s);
        const std::int64_t n0 = bn * kTileN;
        const int nrem = static_cast<int>(
            std::min<std::int64_t>(kTileN, n - n0));
        for (std::int64_t ks = 0; ks < k_steps_; ++ks) {
            const std::int64_t k0 = ks * kTileKI8;
            const int krem = static_cast<int>(
                std::min<std::int64_t>(kTileKI8, k - k0));
            packBTileVnniI8(bq.data(), n, k0, n0, krem, nrem,
                            kTileKI8 / 4, kTileN,
                            data_.data() + (bn * k_steps_ + ks) *
                                               kTileElems);
        }
    });
}

PackedWeightsVnni::PackedWeightsVnni(const BFloat16* b, std::int64_t k,
                                     std::int64_t n)
    : k_(k), n_(n), k_pairs_((k + 1) / 2)
{
    CPULLM_ASSERT(k > 0 && n > 0, "PackedWeightsVnni needs K,N >= 1");
    data_.resize(static_cast<std::size_t>(k_pairs_ * 2 * n));
    parallelFor(0, static_cast<std::size_t>(k_pairs_),
                [&](std::size_t p_s) {
        const auto p = static_cast<std::int64_t>(p_s);
        BFloat16* row = data_.data() + p * 2 * n;
        const BFloat16* b0 = b + 2 * p * n;
        const BFloat16* b1 = b0 + n;
        const bool has_hi = 2 * p + 1 < k;
        for (std::int64_t j = 0; j < n; ++j) {
            row[2 * j] = b0[j];
            row[2 * j + 1] = has_hi ? b1[j] : BFloat16();
        }
    }, 8);
}

PackedWeightsI8G::PackedWeightsI8G(const float* b, std::int64_t k,
                                   std::int64_t n, std::int64_t group)
    : k_(k), n_(n), group_(group), groups_(group > 0 ? (k + group - 1) / group : 0)
{
    CPULLM_ASSERT(k > 0 && n > 0, "PackedWeightsI8G needs K,N >= 1");
    CPULLM_ASSERT(group > 0 &&
                      group % isa::Vec512::kF32Lanes == 0,
                  "quant group must be a positive multiple of ",
                  isa::Vec512::kF32Lanes, ", got ", group);
    const std::int64_t k_pad = kPad();
    data_.assign(static_cast<std::size_t>(n * k_pad), 0);
    scales_.assign(static_cast<std::size_t>(n * groups_), 1.0f);
    // Per-column error partials merged serially below so the stored
    // aggregates are independent of thread count.
    std::vector<double> col_max(static_cast<std::size_t>(n), 0.0);
    std::vector<double> col_sq(static_cast<std::size_t>(n), 0.0);
    parallelFor(0, static_cast<std::size_t>(n), [&](std::size_t j_s) {
        const auto j = static_cast<std::int64_t>(j_s);
        std::int8_t* codes = data_.data() + j * k_pad;
        float* scales = scales_.data() + j * groups_;
        double cmax = 0.0, csq = 0.0;
        for (std::int64_t g = 0; g < groups_; ++g) {
            const std::int64_t k0 = g * group_;
            const std::int64_t kend =
                std::min(k, k0 + group_);
            float absmax = 0.0f;
            for (std::int64_t kk = k0; kk < kend; ++kk)
                absmax = std::max(absmax,
                                  std::fabs(b[kk * n + j]));
            // All-zero groups keep the default scale 1 / zero codes
            // (same guard as the per-tensor INT8 path).
            const float scale =
                absmax > 0.0f ? absmax / 127.0f : 1.0f;
            scales[g] = scale;
            for (std::int64_t kk = k0; kk < kend; ++kk) {
                const float v = b[kk * n + j];
                float r = std::nearbyint(v / scale);
                r = std::min(127.0f, std::max(-127.0f, r));
                codes[kk] = static_cast<std::int8_t>(r);
                const double err = std::fabs(
                    static_cast<double>(scale) *
                        static_cast<double>(r) -
                    static_cast<double>(v));
                cmax = std::max(cmax, err);
                csq += err * err;
            }
        }
        col_max[j_s] = cmax;
        col_sq[j_s] = csq;
    }, 4);
    for (std::int64_t j = 0; j < n; ++j) {
        max_abs_err_ = std::max(
            max_abs_err_, col_max[static_cast<std::size_t>(j)]);
        err_sum_sq_ += col_sq[static_cast<std::size_t>(j)];
    }
    quantStatsOnPrepare(/*is_i4=*/false, bytes(),
                        packedBf16Bytes(k, n), max_abs_err_,
                        err_sum_sq_,
                        static_cast<std::uint64_t>(k * n));
}

PackedWeightsI4G::PackedWeightsI4G(const float* b, std::int64_t k,
                                   std::int64_t n, std::int64_t group,
                                   bool with_offset)
    : k_(k), n_(n), group_(group), groups_(group > 0 ? (k + group - 1) / group : 0)
{
    CPULLM_ASSERT(k > 0 && n > 0, "PackedWeightsI4G needs K,N >= 1");
    CPULLM_ASSERT(group > 0 &&
                      group % isa::Vec512::kF32Lanes == 0,
                  "quant group must be a positive multiple of ",
                  isa::Vec512::kF32Lanes, ", got ", group);
    const std::int64_t k_pad = kPad();
    // Padding bytes hold the symmetric zero code in both nibbles so
    // dequant() of the padded tail is exactly 0 (the kernels never
    // read padding at all — activations are zero-padded instead).
    const std::uint8_t pad_byte =
        with_offset ? 0
                    : static_cast<std::uint8_t>(kSymBias |
                                                (kSymBias << 4));
    data_.assign(static_cast<std::size_t>(n * (k_pad / 2)), pad_byte);
    scales_.assign(static_cast<std::size_t>(n * groups_), 1.0f);
    if (with_offset)
        offsets_.assign(static_cast<std::size_t>(n * groups_), 0.0f);
    std::vector<double> col_max(static_cast<std::size_t>(n), 0.0);
    std::vector<double> col_sq(static_cast<std::size_t>(n), 0.0);
    parallelFor(0, static_cast<std::size_t>(n), [&](std::size_t j_s) {
        const auto j = static_cast<std::int64_t>(j_s);
        std::uint8_t* bytes_row = data_.data() + j * (k_pad / 2);
        float* scales = scales_.data() + j * groups_;
        double cmax = 0.0, csq = 0.0;
        for (std::int64_t g = 0; g < groups_; ++g) {
            const std::int64_t k0 = g * group_;
            const std::int64_t kend = std::min(k, k0 + group_);
            float scale = 1.0f, offset = 0.0f;
            if (with_offset) {
                // NF4-style affine range: real = scale * u + offset,
                // u in [0, 15]. Constant groups degenerate to
                // scale 1 / offset = value, reproduced by u = 0.
                float vmin = b[k0 * n + j], vmax = vmin;
                for (std::int64_t kk = k0; kk < kend; ++kk) {
                    const float v = b[kk * n + j];
                    vmin = std::min(vmin, v);
                    vmax = std::max(vmax, v);
                }
                scale = (vmax - vmin) / 15.0f;
                if (!(scale > 0.0f))
                    scale = 1.0f;
                offset = vmin;
                offsets_[static_cast<std::size_t>(j * groups_ + g)] =
                    offset;
            } else {
                float absmax = 0.0f;
                for (std::int64_t kk = k0; kk < kend; ++kk)
                    absmax = std::max(absmax,
                                      std::fabs(b[kk * n + j]));
                scale = absmax > 0.0f ? absmax / 7.0f : 1.0f;
            }
            scales[g] = scale;
            for (std::int64_t kk = k0; kk < kend; ++kk) {
                const float v = b[kk * n + j];
                int u;
                float deq;
                if (with_offset) {
                    float r = std::nearbyint((v - offset) / scale);
                    r = std::min(15.0f, std::max(0.0f, r));
                    u = static_cast<int>(r);
                    deq = scale * static_cast<float>(u) + offset;
                } else {
                    float r = std::nearbyint(v / scale);
                    r = std::min(7.0f, std::max(-7.0f, r));
                    u = static_cast<int>(r) + kSymBias;
                    deq = scale * static_cast<float>(u - kSymBias);
                }
                // Planar 16-element micro-blocks: byte i of a block
                // holds element i in the low nibble and element i+8
                // in the high one, so the decode loop splits a whole
                // block with two mask/shift ops on one 64-bit load.
                const std::int64_t r = kk & 15;
                std::uint8_t& byte =
                    bytes_row[(kk >> 4) * 8 + (r & 7)];
                byte = r < 8
                           ? static_cast<std::uint8_t>(
                                 (byte & 0xf0) | u)
                           : static_cast<std::uint8_t>(
                                 (byte & 0x0f) | (u << 4));
                const double err =
                    std::fabs(static_cast<double>(deq) -
                              static_cast<double>(v));
                cmax = std::max(cmax, err);
                csq += err * err;
            }
        }
        col_max[j_s] = cmax;
        col_sq[j_s] = csq;
    }, 4);
    for (std::int64_t j = 0; j < n; ++j) {
        max_abs_err_ = std::max(
            max_abs_err_, col_max[static_cast<std::size_t>(j)]);
        err_sum_sq_ += col_sq[static_cast<std::size_t>(j)];
    }
    quantStatsOnPrepare(/*is_i4=*/true, bytes(),
                        packedBf16Bytes(k, n), max_abs_err_,
                        err_sum_sq_,
                        static_cast<std::uint64_t>(k * n));
}

namespace {

/**
 * The hot dot loops below are written lane-parallel (16 independent
 * accumulation chains, folded in a fixed pairwise tree) so the
 * compiler can map them onto whatever vector unit the host has, and
 * are cloned per ISA level with runtime ifunc dispatch where the
 * toolchain supports it. Every clone executes the same fixed
 * accumulation sequence on a given machine (dispatch is resolved
 * once per process), so thread-count invariance and the GEMV==GEMM
 * agreement are unaffected.
 */
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
#define CPULLM_HOT_CLONES \
    __attribute__((target_clones("arch=x86-64-v4", "arch=x86-64-v3", \
                                 "default")))
#else
#define CPULLM_HOT_CLONES
#endif

constexpr int kDotLanes = 16;

/** Fixed pairwise-tree fold of the lane accumulators. */
inline float
foldLanes(float* lanes)
{
    for (int stride = kDotLanes / 2; stride > 0; stride /= 2)
        for (int l = 0; l < stride; ++l)
            lanes[l] += lanes[l + stride];
    return lanes[0];
}

/**
 * Dot of activation row @p arow against output column @p j of the
 * grouped-INT8 weight. The group scale is factored out of the inner
 * loop (sum codes-times-activation first, scale once per group); the
 * code bytes widen to float inside the lane loop, which the vector
 * clones turn into sign-extend + convert + FMA. The per-group scale
 * applies lane-wise into a column-level accumulator (one more FMA
 * per group), so the lane fold happens exactly once per column. The
 * whole column is computed by one caller with one deterministic
 * accumulation sequence — that is what makes the GEMM/GEMV paths and
 * every thread count bitwise agree.
 */
CPULLM_HOT_CLONES float
dotColI8gPortable(const float* arow, const PackedWeightsI8G& b,
                  std::int64_t j)
{
    const std::int64_t k = b.k();
    const std::int64_t group = b.group();
    const std::int8_t* codes = b.row(j);
    const float* scales = b.scaleRow(j);
    float accl[kDotLanes] = {};
    float acc_tail = 0.0f;
    for (std::int64_t g = 0; g < b.groups(); ++g) {
        const std::int64_t k0 = g * group;
        const std::int64_t kend = std::min(k, k0 + group);
        float lanes[kDotLanes] = {};
        std::int64_t kk = k0;
        for (; kk + kDotLanes <= kend; kk += kDotLanes)
            for (int l = 0; l < kDotLanes; ++l)
                lanes[l] += arow[kk + l] *
                            static_cast<float>(codes[kk + l]);
        float t = 0.0f;
        for (; kk < kend; ++kk)
            t += arow[kk] * static_cast<float>(codes[kk]);
        for (int l = 0; l < kDotLanes; ++l)
            accl[l] += scales[g] * lanes[l];
        acc_tail += scales[g] * t;
    }
    return foldLanes(accl) + acc_tail;
}

#if CPULLM_X86_DISPATCH
// GCC's _mm512_undefined_*() helpers (inside the convert intrinsics)
// trip -Wmaybe-uninitialized when AVX-512 is enabled per-function
// instead of globally (GCC PR105593); the values are intentionally
// undefined inputs to masked builtins, so silence the false alarm.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
/**
 * AVX-512F INT8 dot: one 16-byte code load, one VPMOVSXBD widen, one
 * convert and one FMA per 16 elements; the group scale applies as a
 * vector FMA into the column accumulator and the pairwise fold runs
 * once per column, mirroring the portable path's fixed accumulation
 * structure (dispatch is resolved once per process, so a given
 * machine always sees one deterministic sequence).
 */
__attribute__((target("avx512f"))) float
dotColI8gAvx512(const float* arow, const PackedWeightsI8G& b,
                std::int64_t j)
{
    const std::int64_t k = b.k();
    const std::int64_t group = b.group();
    const std::int8_t* codes = b.row(j);
    const float* scales = b.scaleRow(j);
    __m512 acc = _mm512_setzero_ps();
    float acc_tail = 0.0f;
    for (std::int64_t g = 0; g < b.groups(); ++g) {
        const std::int64_t k0 = g * group;
        const std::int64_t kend = std::min(k, k0 + group);
        __m512 lanes = _mm512_setzero_ps();
        std::int64_t kk = k0;
        for (; kk + kDotLanes <= kend; kk += kDotLanes) {
            const __m128i c16 = _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(codes + kk));
            const __m512 w =
                _mm512_cvtepi32_ps(_mm512_cvtepi8_epi32(c16));
            lanes = _mm512_fmadd_ps(_mm512_loadu_ps(arow + kk), w,
                                    lanes);
        }
        float t = 0.0f;
        for (; kk < kend; ++kk)
            t += arow[kk] * static_cast<float>(codes[kk]);
        acc = _mm512_fmadd_ps(_mm512_set1_ps(scales[g]), lanes, acc);
        acc_tail += scales[g] * t;
    }
    alignas(64) float accl[kDotLanes];
    _mm512_store_ps(accl, acc);
    return foldLanes(accl) + acc_tail;
}
#pragma GCC diagnostic pop
#endif // CPULLM_X86_DISPATCH

/** One-time runtime dispatch between the INT8 dot implementations
 *  (resolved once per process — see dotColI4g). */
inline float
dotColI8g(const float* arow, const PackedWeightsI8G& b, std::int64_t j)
{
#if CPULLM_X86_DISPATCH
    static const bool use_avx512 = __builtin_cpu_supports("avx512f");
    if (use_avx512)
        return dotColI8gAvx512(arow, b, j);
#endif
    return dotColI8gPortable(arow, b, j);
}

/**
 * Per-group sums of the activation row (asums[g] = sum of arow over
 * group g's K range). These are column-independent, so the callers
 * compute them once per activation row and every dotColI4g call
 * reuses them to fold the nibble bias / affine offset analytically —
 * the per-column work never touches a second reduction pass.
 */
CPULLM_HOT_CLONES void
groupActSums(const float* arow, std::int64_t k, std::int64_t group,
             std::int64_t groups, float* asums)
{
    for (std::int64_t g = 0; g < groups; ++g) {
        const std::int64_t k0 = g * group;
        const std::int64_t kend = std::min(k, k0 + group);
        float lanes[kDotLanes] = {};
        std::int64_t kk = k0;
        for (; kk + kDotLanes <= kend; kk += kDotLanes)
            for (int l = 0; l < kDotLanes; ++l)
                lanes[l] += arow[kk + l];
        float s = foldLanes(lanes);
        for (; kk < kend; ++kk)
            s += arow[kk];
        asums[g] = s;
    }
}

/** Per-group decode buffer length for the portable INT4 path (a
 *  multiple of kDotLanes; bounds the stack frame). */
constexpr std::int64_t kDotChunk = 256;

/**
 * Portable INT4 counterpart of dotColI8g: each chunk of the group
 * first splits the planar 16-element nibble blocks into an
 * unsigned-code stack buffer — one 64-bit load plus two mask/shift
 * ops per block — then runs the INT8 path's lane-parallel widen+FMA
 * dot over it. The nibble bias and the affine offset both fold
 * analytically per group against the precomputed activation sums
 * @p asums (groupActSums): sum(a * s*(u-8)) = s * sum(a*u) - 8*s *
 * sum(a), and sum(a * (s*u + o)) = s * sum(a*u) + o * sum(a), so the
 * per-column work is one decode+dot pass with a single lane fold at
 * the end. Deterministic fixed accumulation order, same bitwise
 * contract as dotColI8g.
 */
CPULLM_HOT_CLONES float
dotColI4gPortable(const float* arow, const PackedWeightsI4G& b,
                  std::int64_t j, const float* asums)
{
    const std::int64_t k = b.k();
    const std::int64_t group = b.group();
    const std::uint8_t* bytes_row = b.row(j);
    const float* scales = b.scaleRow(j);
    const bool affine = b.withOffset();
    const float* offsets = affine ? b.offsetRow(j) : nullptr;
    std::uint8_t w8[kDotChunk];
    float accl[kDotLanes] = {};
    float acc_tail = 0.0f;
    for (std::int64_t g = 0; g < b.groups(); ++g) {
        // Group starts are block-aligned: group is a multiple of 16.
        const std::int64_t k0 = g * group;
        const std::int64_t kend = std::min(k, k0 + group);
        float lanes[kDotLanes] = {};
        float gtail = 0.0f;
        for (std::int64_t c0 = k0; c0 < kend; c0 += kDotChunk) {
            const std::int64_t len =
                std::min(kDotChunk, kend - c0);
            const std::uint8_t* bp = bytes_row + c0 / 2;
            const std::int64_t full = (len / 16) * 16;
            constexpr std::uint64_t kLoMask = 0x0f0f0f0f0f0f0f0fULL;
            for (std::int64_t t = 0; t < full; t += 16) {
                std::uint64_t v;
                std::memcpy(&v, bp + t / 2, sizeof v);
#if defined(__BYTE_ORDER__) && \
    __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
                const std::uint64_t lo = v & kLoMask;
                const std::uint64_t hi = (v >> 4) & kLoMask;
                std::memcpy(w8 + t, &lo, sizeof lo);
                std::memcpy(w8 + t + 8, &hi, sizeof hi);
#else
                for (int i = 0; i < 8; ++i) {
                    const std::uint8_t byte = bp[t / 2 + i];
                    w8[t + i] = byte & 0xf;
                    w8[t + 8 + i] = byte >> 4;
                }
#endif
            }
            for (std::int64_t t = full; t < len; ++t) {
                // Ragged final block: same planar indexing as code().
                const std::int64_t r = t & 15;
                const std::uint8_t byte =
                    bp[(t >> 4) * 8 + (r & 7)];
                w8[t] = r < 8 ? (byte & 0xf) : (byte >> 4);
            }
            const float* a0 = arow + c0;
            std::int64_t i = 0;
            for (; i + kDotLanes <= len; i += kDotLanes)
                for (int l = 0; l < kDotLanes; ++l)
                    lanes[l] += a0[i + l] *
                                static_cast<float>(w8[i + l]);
            for (; i < len; ++i)
                gtail += a0[i] * static_cast<float>(w8[i]);
        }
        // Symmetric: w = s*(u-8); affine: w = s*u + o.
        const float off = affine ? offsets[g] : -8.0f * scales[g];
        for (int l = 0; l < kDotLanes; ++l)
            accl[l] += scales[g] * lanes[l];
        acc_tail += scales[g] * gtail + off * asums[g];
    }
    return foldLanes(accl) + acc_tail;
}

#if CPULLM_X86_DISPATCH
// Same GCC PR105593 false alarm as the INT8 block above.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
/**
 * AVX-512F INT4 dot: the planar block layout decodes in-register —
 * one 8-byte load, two mask/shift ops to split the nibbles (low
 * nibbles are block elements 0-7, high nibbles elements 8-15), one
 * VPMOVZXBD widen, one convert and one FMA per 16 elements, so the
 * inner loop costs the same as the INT8 path while streaming half
 * the bytes. Same analytic bias/offset folding against @p asums and
 * the same fixed pairwise fold as the portable path (values may
 * differ from it in the last bit, but dispatch is resolved once per
 * process, so every caller on a given machine sees one deterministic
 * accumulation sequence).
 */
__attribute__((target("avx512f"))) float
dotColI4gAvx512(const float* arow, const PackedWeightsI4G& b,
                std::int64_t j, const float* asums)
{
    const std::int64_t k = b.k();
    const std::int64_t group = b.group();
    const std::uint8_t* bytes_row = b.row(j);
    const float* scales = b.scaleRow(j);
    const bool affine = b.withOffset();
    const float* offsets = affine ? b.offsetRow(j) : nullptr;
    const __m128i lo_mask = _mm_set1_epi8(0x0f);
    __m512 acc = _mm512_setzero_ps();
    float acc_tail = 0.0f;
    for (std::int64_t g = 0; g < b.groups(); ++g) {
        // Group starts are block-aligned: group is a multiple of 16.
        const std::int64_t k0 = g * group;
        const std::int64_t kend = std::min(k, k0 + group);
        const std::int64_t len = kend - k0;
        const std::int64_t blocks = len / 16;
        const std::uint8_t* bp = bytes_row + (k0 / 16) * 8;
        const float* a0 = arow + k0;
        __m512 lanes = _mm512_setzero_ps();
        for (std::int64_t t = 0; t < blocks; ++t) {
            std::uint64_t v;
            std::memcpy(&v, bp + t * 8, sizeof v);
            const __m128i bytes =
                _mm_set_epi64x(0, static_cast<long long>(v));
            const __m128i lo = _mm_and_si128(bytes, lo_mask);
            const __m128i hi = _mm_and_si128(
                _mm_srli_epi16(bytes, 4), lo_mask);
            const __m512 w = _mm512_cvtepi32_ps(
                _mm512_cvtepu8_epi32(_mm_unpacklo_epi64(lo, hi)));
            lanes = _mm512_fmadd_ps(_mm512_loadu_ps(a0 + t * 16), w,
                                    lanes);
        }
        float gtail = 0.0f;
        for (std::int64_t t = blocks * 16; t < len; ++t) {
            // Ragged final block: same planar indexing as code().
            const std::int64_t r = t & 15;
            const std::uint8_t byte = bp[(t >> 4) * 8 + (r & 7)];
            gtail += a0[t] * static_cast<float>(
                                 r < 8 ? (byte & 0xf) : (byte >> 4));
        }
        // Symmetric: w = s*(u-8); affine: w = s*u + o.
        const float off = affine ? offsets[g] : -8.0f * scales[g];
        acc = _mm512_fmadd_ps(_mm512_set1_ps(scales[g]), lanes, acc);
        acc_tail += scales[g] * gtail + off * asums[g];
    }
    alignas(64) float accl[kDotLanes];
    _mm512_store_ps(accl, acc);
    return foldLanes(accl) + acc_tail;
}
#pragma GCC diagnostic pop
#endif // CPULLM_X86_DISPATCH

/** One-time runtime dispatch between the INT4 dot implementations
 *  (resolved once per process, so the per-machine accumulation
 *  sequence is fixed — the thread-invariance contract holds). */
inline float
dotColI4g(const float* arow, const PackedWeightsI4G& b, std::int64_t j,
          const float* asums)
{
#if CPULLM_X86_DISPATCH
    static const bool use_avx512 = __builtin_cpu_supports("avx512f");
    if (use_avx512)
        return dotColI4gAvx512(arow, b, j, asums);
#endif
    return dotColI4gPortable(arow, b, j, asums);
}

} // namespace

void
gemmAvx512I8gPacked(const float* a, const PackedWeightsI8G& b,
                    float* c, std::int64_t m)
{
    CPULLM_ASSERT(!b.empty(), "gemmAvx512I8gPacked on empty weights");
    const std::int64_t n = b.n();
    const std::int64_t k = b.k();
    const std::int64_t n_chunks = (n + kTileN - 1) / kTileN;
    quantStatsOnCall(/*is_gemv=*/false, b.bytes());
    // Fixed 16-column tasks: every output element is computed whole
    // inside one task, so any thread count / backend produces the
    // same bits.
    parallelFor(0, static_cast<std::size_t>(n_chunks),
                [&](std::size_t cb) {
        const std::int64_t j0 =
            static_cast<std::int64_t>(cb) * kTileN;
        const std::int64_t j1 =
            std::min<std::int64_t>(n, j0 + kTileN);
        for (std::int64_t j = j0; j < j1; ++j)
            for (std::int64_t mi = 0; mi < m; ++mi)
                c[mi * n + j] = dotColI8g(a + mi * k, b, j);
    });
}

void
gemmAvx512I4gPacked(const float* a, const PackedWeightsI4G& b,
                    float* c, std::int64_t m)
{
    CPULLM_ASSERT(!b.empty(), "gemmAvx512I4gPacked on empty weights");
    const std::int64_t n = b.n();
    const std::int64_t k = b.k();
    const std::int64_t n_chunks = (n + kTileN - 1) / kTileN;
    quantStatsOnCall(/*is_gemv=*/false, b.bytes());
    // Per-row activation group sums, shared read-only by every task
    // (they fold the nibble bias / affine offset analytically).
    std::vector<float> asums(static_cast<std::size_t>(m * b.groups()));
    for (std::int64_t mi = 0; mi < m; ++mi)
        groupActSums(a + mi * k, k, b.group(), b.groups(),
                     asums.data() + mi * b.groups());
    parallelFor(0, static_cast<std::size_t>(n_chunks),
                [&](std::size_t cb) {
        const std::int64_t j0 =
            static_cast<std::int64_t>(cb) * kTileN;
        const std::int64_t j1 =
            std::min<std::int64_t>(n, j0 + kTileN);
        for (std::int64_t j = j0; j < j1; ++j)
            for (std::int64_t mi = 0; mi < m; ++mi)
                c[mi * n + j] =
                    dotColI4g(a + mi * k, b, j,
                              asums.data() + mi * b.groups());
    });
}

void
gemvI4gFused(const float* a, const PackedWeightsI4G& b, float* c)
{
    CPULLM_ASSERT(!b.empty(), "gemvI4gFused on empty weights");
    const std::int64_t n = b.n();
    const std::int64_t n_chunks = (n + kTileN - 1) / kTileN;
    quantStatsOnCall(/*is_gemv=*/true, b.bytes());
    std::vector<float> asums(static_cast<std::size_t>(b.groups()));
    groupActSums(a, b.k(), b.group(), b.groups(), asums.data());
    // Decode specialization: no M loop, each task streams a run of
    // column rows linearly (grain 4 = 64 columns amortizes pool
    // dispatch). Task boundaries stay the same 16-column chunks, so
    // the output is bitwise identical to gemmAvx512I4gPacked(m=1)
    // for any thread count (the attnFused contract).
    parallelFor(0, static_cast<std::size_t>(n_chunks),
                [&](std::size_t cb) {
        const std::int64_t j0 =
            static_cast<std::int64_t>(cb) * kTileN;
        const std::int64_t j1 =
            std::min<std::int64_t>(n, j0 + kTileN);
        for (std::int64_t j = j0; j < j1; ++j)
            c[j] = dotColI4g(a, b, j, asums.data());
    }, 4);
}

PreparedB::PreparedB(Engine engine, const Tensor& b) : engine_(engine)
{
    CPULLM_ASSERT(b.rank() == 2,
                  "PreparedB expects a rank-2 weight, got ",
                  shapeToString(b.shape()));
    k_ = b.dim(0);
    n_ = b.dim(1);
    switch (engine) {
      case Engine::Reference:
        ref_b_ = b.cast(DType::F32);
        return;
      case Engine::AmxBf16: {
        const Tensor bb = b.cast(DType::BF16);
        amx_bf16_ = PackedWeightsBf16(bb.data<BFloat16>(), k_, n_);
        return;
      }
      case Engine::Avx512Bf16: {
        const Tensor bb = b.cast(DType::BF16);
        avx512_ = PackedWeightsVnni(bb.data<BFloat16>(), k_, n_);
        return;
      }
      case Engine::AmxI8: {
        const Tensor bf = b.cast(DType::F32);
        amx_i8_ = PackedWeightsI8(bf.data<float>(), k_, n_);
        return;
      }
    }
    CPULLM_PANIC("unhandled engine");
}

PreparedB::PreparedB(Engine engine, const Tensor& b,
                     WeightDtype wdtype, std::int64_t group)
{
    if (wdtype == WeightDtype::Native) {
        *this = PreparedB(engine, b);
        return;
    }
    CPULLM_ASSERT(b.rank() == 2,
                  "PreparedB expects a rank-2 weight, got ",
                  shapeToString(b.shape()));
    engine_ = engine;
    wdtype_ = wdtype;
    k_ = b.dim(0);
    n_ = b.dim(1);
    const Tensor bf = b.cast(DType::F32);
    if (wdtype == WeightDtype::I8Grouped)
        i8g_ = PackedWeightsI8G(bf.data<float>(), k_, n_, group);
    else
        i4g_ = PackedWeightsI4G(bf.data<float>(), k_, n_, group);
}

const PackedWeightsI8G&
PreparedB::i8g() const
{
    CPULLM_ASSERT(wdtype_ == WeightDtype::I8Grouped,
                  "PreparedB holds ", weightDtypeName(wdtype_),
                  " weights, not int8");
    return i8g_;
}

const PackedWeightsI4G&
PreparedB::i4g() const
{
    CPULLM_ASSERT(wdtype_ == WeightDtype::I4Grouped,
                  "PreparedB holds ", weightDtypeName(wdtype_),
                  " weights, not int4");
    return i4g_;
}

double
PreparedB::quantMaxAbsErr() const
{
    switch (wdtype_) {
      case WeightDtype::Native:
        return 0.0;
      case WeightDtype::I8Grouped:
        return i8g_.maxAbsErr();
      case WeightDtype::I4Grouped:
        return i4g_.maxAbsErr();
    }
    CPULLM_PANIC("unhandled weight dtype");
}

double
PreparedB::quantErrSumSq() const
{
    switch (wdtype_) {
      case WeightDtype::Native:
        return 0.0;
      case WeightDtype::I8Grouped:
        return i8g_.errSumSq();
      case WeightDtype::I4Grouped:
        return i4g_.errSumSq();
    }
    CPULLM_PANIC("unhandled weight dtype");
}

const Tensor&
PreparedB::refB() const
{
    CPULLM_ASSERT(engine_ == Engine::Reference,
                  "PreparedB holds ", engineName(engine_),
                  ", not reference-fp32");
    return ref_b_;
}

const PackedWeightsBf16&
PreparedB::amxBf16() const
{
    CPULLM_ASSERT(engine_ == Engine::AmxBf16, "PreparedB holds ",
                  engineName(engine_), ", not amx-bf16");
    return amx_bf16_;
}

const PackedWeightsI8&
PreparedB::amxI8() const
{
    CPULLM_ASSERT(engine_ == Engine::AmxI8, "PreparedB holds ",
                  engineName(engine_), ", not amx-int8");
    return amx_i8_;
}

const PackedWeightsVnni&
PreparedB::avx512() const
{
    CPULLM_ASSERT(engine_ == Engine::Avx512Bf16, "PreparedB holds ",
                  engineName(engine_), ", not avx512-bf16");
    return avx512_;
}

Tensor
matmul(Engine engine, const Tensor& a, const PreparedB& b)
{
    CPULLM_ASSERT(engine == b.engine(),
                  "matmul engine ", engineName(engine),
                  " mismatches PreparedB engine ",
                  engineName(b.engine()));
    CPULLM_ASSERT(a.rank() == 2, "matmul expects a rank-2 activation, "
                  "got ", shapeToString(a.shape()));
    const std::int64_t m = a.dim(0);
    const std::int64_t k = a.dim(1);
    CPULLM_ASSERT(k == b.k(), "matmul inner dimension mismatch: ",
                  shapeToString(a.shape()), " x packed [", b.k(), ", ",
                  b.n(), "]");

    Tensor out({m, b.n()}, DType::F32);
    float* cp = out.data<float>();

    if (b.weightDtype() != WeightDtype::Native) {
        // Weight-only quantization: activations stay FP32 and the
        // fused-dequant kernels run on every engine; only the weight
        // stream shrinks (the decode bandwidth lever).
        const Tensor af = a.cast(DType::F32);
        if (b.weightDtype() == WeightDtype::I8Grouped)
            gemmAvx512I8gPacked(af.data<float>(), b.i8g(), cp, m);
        else if (m == 1)
            gemvI4gFused(af.data<float>(), b.i4g(), cp);
        else
            gemmAvx512I4gPacked(af.data<float>(), b.i4g(), cp, m);
        return out;
    }

    switch (engine) {
      case Engine::Reference: {
        const Tensor af = a.cast(DType::F32);
        gemmRef(af.data<float>(), b.refB().data<float>(), cp, m, b.n(),
                k);
        return out;
      }
      case Engine::AmxBf16: {
        const Tensor ab = a.cast(DType::BF16);
        gemmAmxBf16Packed(ab.data<BFloat16>(), b.amxBf16(), cp, m);
        return out;
      }
      case Engine::Avx512Bf16: {
        const Tensor ab = a.cast(DType::BF16);
        gemmAvx512Bf16Packed(ab.data<BFloat16>(), b.avx512(), cp, m);
        return out;
      }
      case Engine::AmxI8: {
        // Activations are still quantized per call from their
        // observed range; only the weight side is cached.
        float amax = 0.0f;
        for (std::int64_t i = 0; i < a.size(); ++i)
            amax = std::max(amax, std::fabs(a.at(i)));
        const QuantParams qa = QuantParams::forAbsMax(amax);
        std::vector<std::int8_t> aq(static_cast<std::size_t>(a.size()));
        for (std::int64_t i = 0; i < a.size(); ++i)
            aq[static_cast<std::size_t>(i)] = qa.quantize(a.at(i));
        gemmAmxI8Packed(aq.data(), b.amxI8(), cp, m, qa.scale);
        return out;
      }
    }
    CPULLM_PANIC("unhandled engine");
}

} // namespace gemm
} // namespace cpullm
