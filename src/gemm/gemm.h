#ifndef CPULLM_GEMM_GEMM_H
#define CPULLM_GEMM_GEMM_H

/**
 * @file
 * Blocked GEMM kernels over the emulated matrix engines. All kernels
 * compute C[M,N] = A[M,K] * B[K,N] with row-major operands:
 *
 *  - gemmRef:       FP32 reference (ground truth for tests)
 *  - gemmAmxBf16:   BF16 inputs through the functional AMX tiles
 *                   (Sapphire Rapids path)
 *  - gemmAvx512Bf16: BF16 inputs through the functional VDPBF16PS
 *                   vector kernel (IceLake path)
 *  - gemmAmxI8:     symmetric INT8 through TDPBSSD with FP32 output
 *
 * All BF16/INT8 kernels accumulate in FP32/INT32 exactly as the
 * instructions define, so the three paths agree to within BF16
 * rounding of the inputs.
 */

#include <cstdint>
#include <string>

#include "numerics/bf16.h"
#include "numerics/dtype.h"
#include "tensor/tensor.h"

namespace cpullm {
namespace gemm {

/** Which emulated engine executes a GEMM. */
enum class Engine {
    Reference, ///< plain FP32 loops
    AmxBf16,   ///< Sapphire Rapids AMX tiles
    Avx512Bf16, ///< IceLake AVX-512 VDPBF16PS
    AmxI8,     ///< AMX INT8 (TDPBSSD)
};

/** Human-readable engine name. */
std::string engineName(Engine e);

/** FP32 reference: C = A*B. A:[M,K] B:[K,N] C:[M,N], row-major. */
void gemmRef(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t n, std::int64_t k);

/** BF16 GEMM on the functional AMX unit; FP32 output. */
void gemmAmxBf16(const BFloat16* a, const BFloat16* b, float* c,
                 std::int64_t m, std::int64_t n, std::int64_t k);

/** BF16 GEMM on the functional AVX-512 BF16 kernel; FP32 output. */
void gemmAvx512Bf16(const BFloat16* a, const BFloat16* b, float* c,
                    std::int64_t m, std::int64_t n, std::int64_t k);

/**
 * Symmetric INT8 GEMM through TDPBSSD; output dequantized to FP32
 * using scale_a * scale_b.
 */
void gemmAmxI8(const std::int8_t* a, const std::int8_t* b, float* c,
               std::int64_t m, std::int64_t n, std::int64_t k,
               float scale_a, float scale_b);

/**
 * Tensor-level facade: dispatch on @p engine. FP32 inputs are
 * converted to the engine's native dtype first (mirroring what a BF16
 * inference stack does to weights/activations). Returns an FP32
 * tensor [M,N].
 */
Tensor matmul(Engine engine, const Tensor& a, const Tensor& b);

} // namespace gemm
} // namespace cpullm

#endif // CPULLM_GEMM_GEMM_H
