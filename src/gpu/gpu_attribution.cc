#include "gpu/gpu_attribution.h"

namespace cpullm {
namespace gpu {

namespace {

/** Append one Fig 18 component when it has nonzero time. */
void
addComponent(obs::AttributionNode& phase, const char* name,
             double time, obs::BoundBy bound)
{
    if (time <= 0.0)
        return;
    obs::AttributionNode c;
    c.name = name;
    c.kind = "component";
    c.time = time;
    switch (bound) {
      case obs::BoundBy::Compute:
        c.boundCompute = c.computeTime = time;
        break;
      case obs::BoundBy::Memory:
        c.boundMemory = c.memoryTime = time;
        break;
      case obs::BoundBy::Overhead:
        c.boundOverhead = c.overheadTime = time;
        break;
      case obs::BoundBy::Transfer:
        c.boundTransfer = time;
        break;
    }
    phase.children.push_back(std::move(c));
}

void
addPhase(obs::AttributionNode& root, const char* name,
         const OffloadBreakdown& b)
{
    obs::AttributionNode phase;
    phase.name = name;
    phase.kind = "phase";
    addComponent(phase, "pcie_load", b.pcieLoadTime,
                 obs::BoundBy::Transfer);
    addComponent(phase, "gpu_compute", b.gpuComputeTime,
                 obs::BoundBy::Compute);
    addComponent(phase, "cpu_attention", b.cpuAttentionTime,
                 obs::BoundBy::Memory);
    addComponent(phase, "framework", b.otherTime,
                 obs::BoundBy::Overhead);
    root.children.push_back(std::move(phase));
}

} // namespace

obs::Attribution
attributeGpuResult(const GpuPerfModel& model, const GpuRunResult& r)
{
    obs::Attribution a;
    a.device = model.gpu().name +
               (r.placement == GpuPlacement::Offloaded
                    ? " (offload)"
                    : " (resident)");
    a.peakGflops = model.gpu().bf16Flops / 1e9;
    a.peakDramGBps = model.gpu().memory.bandwidth / 1e9;

    a.root.name = "run";
    a.root.kind = "run";
    addPhase(a.root, "prefill", r.prefillBreakdown);

    // Whole-run decode totals: the stored decode breakdown is a
    // per-step average, so recover the sums from the run totals.
    OffloadBreakdown decode;
    decode.pcieLoadTime = r.totalBreakdown.pcieLoadTime -
                          r.prefillBreakdown.pcieLoadTime;
    decode.gpuComputeTime = r.totalBreakdown.gpuComputeTime -
                            r.prefillBreakdown.gpuComputeTime;
    decode.cpuAttentionTime = r.totalBreakdown.cpuAttentionTime -
                              r.prefillBreakdown.cpuAttentionTime;
    decode.otherTime =
        r.totalBreakdown.otherTime - r.prefillBreakdown.otherTime;
    decode.totalTime =
        r.totalBreakdown.totalTime - r.prefillBreakdown.totalTime;
    if (decode.totalTime > 0.0)
        addPhase(a.root, "decode", decode);

    a.root.finalize();
    a.root.share = 1.0;
    return a;
}

obs::Attribution
attributeGpuRun(const GpuPerfModel& model,
                const model::ModelSpec& spec, const perf::Workload& w)
{
    return attributeGpuResult(model, model.run(spec, w));
}

} // namespace gpu
} // namespace cpullm
