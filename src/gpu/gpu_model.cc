#include "gpu/gpu_model.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"
#include "util/units.h"

namespace cpullm {
namespace gpu {

namespace {

double
tileUtil(std::int64_t x, std::int64_t tile)
{
    if (x <= 0)
        return 1.0;
    const std::int64_t tiles = (x + tile - 1) / tile;
    return static_cast<double>(x) / static_cast<double>(tiles * tile);
}

} // namespace

GpuPerfModel::GpuPerfModel(const hw::GpuConfig& gpu,
                           GpuCalibration calibration)
    : gpu_(gpu), cal_(calibration)
{
}

std::uint64_t
GpuPerfModel::memoryBudget() const
{
    return static_cast<std::uint64_t>(
        static_cast<double>(gpu_.memory.capacityBytes) *
        (1.0 - cal_.memoryReserve));
}

GpuPlacement
GpuPerfModel::choosePlacement(const model::ModelSpec& spec,
                              const perf::Workload& w) const
{
    const std::uint64_t weights = spec.weightBytes(w.dtype);
    const std::uint64_t kvc =
        spec.kvCacheBytes(w.finalSeqLen(), w.batch, w.kvDtype);
    const std::uint64_t act = spec.activationBytes(
        w.batch * w.promptLen, w.finalSeqLen(), DType::BF16);
    if (weights + kvc + act <= memoryBudget())
        return GpuPlacement::Resident;
    return GpuPlacement::Offloaded;
}

double
GpuPerfModel::gemmEfficiency(std::int64_t m, std::int64_t n,
                             std::int64_t k) const
{
    // Ramp reaches the ceiling once min(n, k) ~ tensorRampHalfSize.
    const double s = static_cast<double>(std::min(n, k));
    const double ramp =
        std::min(1.0, 2.0 * s / (s + cal_.tensorRampHalfSize));
    return cal_.tensorBaseEfficiency * tileUtil(m, 16) * ramp;
}

GpuPerfModel::StepCost
GpuPerfModel::timeStep(const model::ModelSpec& spec, perf::Phase phase,
                       const perf::Workload& w, std::int64_t ctx_len,
                       GpuPlacement placement) const
{
    const std::vector<perf::OpDesc> ops =
        perf::buildPhaseOps(spec, phase, w, ctx_len);
    const double gpu_bw = gpu_.memory.bandwidth;
    const double pcie_bw = gpu_.pcie.effectiveBandwidth();

    StepCost cost;
    double gpu_compute = 0.0;
    double gpu_memory = 0.0;
    double kv_bytes = 0.0;
    double act_bytes = 0.0;
    double weight_bytes = 0.0;

    for (const auto& op : ops) {
        weight_bytes += static_cast<double>(op.weightBytes);
        act_bytes += static_cast<double>(op.actBytes);
        switch (op.kind) {
          case perf::OpKind::Gemm:
            gpu_compute += op.flops /
                           (gpu_.bf16Flops *
                            gemmEfficiency(op.m, op.n, op.k));
            break;
          case perf::OpKind::Attention:
            kv_bytes += static_cast<double>(op.kvBytes);
            if (placement == GpuPlacement::Resident ||
                phase == perf::Phase::Prefill) {
                // On-GPU attention (tensor cores, fused kernels).
                gpu_compute += op.flops / (gpu_.bf16Flops * 0.35);
            }
            break;
          case perf::OpKind::Elementwise:
          case perf::OpKind::Embedding:
            gpu_compute += op.flops / gpu_.fp32Flops;
            break;
        }
    }
    // Device-memory streaming of weights (resident or staged) plus
    // activations; KV streams from device memory only when resident.
    gpu_memory = (weight_bytes + act_bytes) / gpu_bw;
    if (placement == GpuPlacement::Resident)
        gpu_memory += kv_bytes / gpu_bw;

    cost.overhead =
        static_cast<double>(ops.size()) * cal_.kernelOverhead;
    cost.gpuBusy = std::max(gpu_compute, gpu_memory);

    if (placement == GpuPlacement::Resident) {
        cost.transfer = 0.0;
        cost.cpuAttention = 0.0;
        cost.total = cost.gpuBusy + cost.overhead;
        cost.visibleLoad = 0.0;
        return cost;
    }

    // ---- Offloaded step (FlexGen) ----------------------------------
    // Weights stream from host DRAM over PCIe once per step; the
    // zig-zag block schedule reuses each layer's weights across the
    // whole batch before moving on.
    cost.transfer = weight_bytes / pcie_bw;

    if (phase == perf::Phase::Decode) {
        // KV lives on the host; decode attention runs there to avoid
        // shipping the cache across PCIe.
        cost.cpuAttention = kv_bytes / cal_.cpuAttentionBandwidth;
    } else {
        // Prefill attention runs on the GPU; freshly produced KV
        // entries are written back to host DRAM over PCIe.
        cost.transfer += kv_bytes / pcie_bw;
    }

    // Per-layer activation shuttling between host and device.
    const double act_pcie =
        2.0 * static_cast<double>(w.batch) *
        (phase == perf::Phase::Prefill ? w.promptLen : 1) *
        static_cast<double>(spec.dModel) * dtypeSize(w.dtype) *
        static_cast<double>(spec.numLayers) / pcie_bw;

    cost.overhead += static_cast<double>(spec.numLayers) *
                         cal_.offloadLayerOverhead +
                     act_pcie;

    const double non_transfer =
        cost.gpuBusy + cost.cpuAttention + cost.overhead;
    const double overlap_eff =
        static_cast<double>(w.batch) /
        (static_cast<double>(w.batch) + cal_.overlapHalfBatch);
    const double hidden =
        overlap_eff * std::min(cost.transfer, non_transfer);

    cost.total = cost.transfer + non_transfer - hidden;
    cost.visibleLoad = cost.transfer - hidden;
    return cost;
}

GpuRunResult
GpuPerfModel::run(const model::ModelSpec& spec,
                  const perf::Workload& w, obs::Tracer* tracer) const
{
    CPULLM_ASSERT(w.batch >= 1 && w.promptLen >= 1 && w.genLen >= 1,
                  "degenerate workload");
    const GpuPlacement placement = choosePlacement(spec, w);

    if (placement == GpuPlacement::Offloaded) {
        const std::uint64_t state =
            spec.weightBytes(w.dtype) +
            spec.kvCacheBytes(w.finalSeqLen(), w.batch, w.kvDtype);
        if (state > gpu_.hostMemoryBytes) {
            CPULLM_FATAL("offloaded state (", formatBytes(state),
                         ") exceeds host DRAM (",
                         formatBytes(gpu_.hostMemoryBytes), ")");
        }
    }

    GpuRunResult r;
    r.placement = placement;

    // Execution-timeline tracks (compute vs. PCIe vs. host
    // attention), laid out on the tracer's simulated clock.
    obs::TrackId compute_track, pcie_track, cpu_track;
    double cursor = 0.0;
    if (tracer) {
        const std::string proc = strformat(
            "gpu: %s (%s, %s)", gpu_.name.c_str(), spec.name.c_str(),
            placement == GpuPlacement::Offloaded ? "offload"
                                                 : "resident");
        compute_track = tracer->track(proc, "gpu compute");
        pcie_track = tracer->track(proc, "pcie transfer");
        cpu_track = tracer->track(proc, "cpu attention");
        cursor = tracer->time();
    }
    auto trace_step = [&](const std::string& label,
                          const StepCost& c) {
        if (!tracer)
            return;
        obs::Span g = tracer->begin(label, "gpu_compute",
                                    compute_track, cursor);
        g.annotate("overhead_s", c.overhead);
        g.close(cursor + c.gpuBusy);
        if (c.transfer > 0.0) {
            obs::Span p =
                tracer->begin(label, "pcie", pcie_track, cursor);
            p.annotate("visible_s", c.visibleLoad);
            p.annotate("hidden_s", c.transfer - c.visibleLoad);
            p.close(cursor + c.transfer);
        }
        if (c.cpuAttention > 0.0) {
            tracer->complete(label, "cpu_attention", cpu_track,
                             cursor, c.cpuAttention);
        }
        tracer->counter(
            "pcie_visible_fraction", compute_track.pid, cursor,
            c.total > 0.0 ? c.visibleLoad / c.total : 0.0);
        cursor += c.total;
    };

    const StepCost pre =
        timeStep(spec, perf::Phase::Prefill, w, w.promptLen, placement);
    r.prefillBreakdown.pcieLoadTime = pre.visibleLoad;
    r.prefillBreakdown.gpuComputeTime = pre.gpuBusy;
    r.prefillBreakdown.cpuAttentionTime = pre.cpuAttention;
    r.prefillBreakdown.otherTime = pre.overhead;
    r.prefillBreakdown.totalTime = pre.total;
    trace_step("prefill", pre);

    const std::int64_t steps = w.genLen - 1;
    OffloadBreakdown dec;
    for (std::int64_t s = 0; s < steps; ++s) {
        const StepCost step = timeStep(spec, perf::Phase::Decode, w,
                                       w.promptLen + s + 1, placement);
        dec.pcieLoadTime += step.visibleLoad;
        dec.gpuComputeTime += step.gpuBusy;
        dec.cpuAttentionTime += step.cpuAttention;
        dec.otherTime += step.overhead;
        dec.totalTime += step.total;
        trace_step(strformat("decode%lld", static_cast<long long>(s)),
                   step);
    }
    if (tracer) {
        tracer->counter("pcie_visible_fraction", compute_track.pid,
                        cursor, 0.0);
        tracer->setTime(cursor);
    }

    r.totalBreakdown.pcieLoadTime =
        r.prefillBreakdown.pcieLoadTime + dec.pcieLoadTime;
    r.totalBreakdown.gpuComputeTime =
        r.prefillBreakdown.gpuComputeTime + dec.gpuComputeTime;
    r.totalBreakdown.cpuAttentionTime =
        r.prefillBreakdown.cpuAttentionTime + dec.cpuAttentionTime;
    r.totalBreakdown.otherTime =
        r.prefillBreakdown.otherTime + dec.otherTime;
    r.totalBreakdown.totalTime =
        r.prefillBreakdown.totalTime + dec.totalTime;

    r.decodeBreakdown = dec;
    if (steps > 0) {
        const double inv = 1.0 / static_cast<double>(steps);
        r.decodeBreakdown.pcieLoadTime *= inv;
        r.decodeBreakdown.gpuComputeTime *= inv;
        r.decodeBreakdown.cpuAttentionTime *= inv;
        r.decodeBreakdown.otherTime *= inv;
        r.decodeBreakdown.totalTime *= inv;
    }

    perf::InferenceTiming& t = r.timing;
    t.ttft = pre.total;
    t.decodeTime = dec.totalTime;
    t.tpot = steps > 0 ? dec.totalTime / static_cast<double>(steps)
                       : 0.0;
    t.e2eLatency = t.ttft + t.decodeTime;
    t.totalThroughput =
        static_cast<double>(w.generatedTokens()) / t.e2eLatency;
    t.prefillThroughput =
        static_cast<double>(w.batch * w.promptLen) / t.ttft;
    t.decodeThroughput =
        steps > 0 ? static_cast<double>(w.batch * steps) / dec.totalTime
                  : 0.0;
    t.prefill.totalTime = pre.total;
    t.prefill.computeTime = pre.gpuBusy;
    t.prefill.overheadTime = pre.overhead;
    t.decodeStep.totalTime = r.decodeBreakdown.totalTime;
    t.decodeStep.computeTime = r.decodeBreakdown.gpuComputeTime;
    t.decodeStep.overheadTime = r.decodeBreakdown.otherTime;
    return r;
}

double
GpuPerfModel::gemmThroughput(std::int64_t m, std::int64_t n,
                             std::int64_t k, DType dtype) const
{
    const double flops = 2.0 * static_cast<double>(m) *
                         static_cast<double>(n) *
                         static_cast<double>(k);
    // Weight operand (k*n) sized in bits so sub-byte dtypes account
    // honestly; activations never go below one byte per element.
    const double bytes = static_cast<double>(
        static_cast<std::uint64_t>(k) * n * dtypeBits(dtype) / 8 +
        (static_cast<std::uint64_t>(m) * k +
         static_cast<std::uint64_t>(m) * n) *
            dtypeSize(dtype));
    const double compute =
        flops / (gpu_.bf16Flops * gemmEfficiency(m, n, k));
    const double memory = bytes / gpu_.memory.bandwidth;
    const double time =
        std::max(compute, memory) + cal_.kernelOverhead;
    return flops / time;
}

} // namespace gpu
} // namespace cpullm
