#ifndef CPULLM_GPU_GPU_MODEL_H
#define CPULLM_GPU_GPU_MODEL_H

/**
 * @file
 * GPU inference timing model with FlexGen-style offloading.
 *
 * Placement policy (Section V of the paper): when the model state
 * (weights + KV + activations) fits in GPU memory (after a workspace
 * reserve), inference runs fully resident. Otherwise the engine
 * offloads: weights live in host DRAM and stream over PCIe layer by
 * layer each step (FlexGen's published configurations place the
 * weights of over-capacity models fully on the CPU), the KV cache
 * lives in host DRAM, decode attention executes on the host CPU, and
 * zig-zag block scheduling overlaps PCIe transfer with computation
 * with an effectiveness that grows with batch size (Fig 18).
 */

#include "hw/gpu.h"
#include "model/spec.h"
#include "obs/span.h"
#include "perf/ops.h"
#include "perf/timing.h"
#include "perf/workload.h"

namespace cpullm {
namespace gpu {

/** Calibration constants of the GPU/offload model. */
struct GpuCalibration
{
    /** Tensor-core GEMM efficiency ceiling. */
    double tensorBaseEfficiency = 0.80;
    /** Dimension at which the tensor-core ramp reaches half. */
    double tensorRampHalfSize = 1536.0;
    /** Kernel launch + framework cost per operator, seconds. */
    double kernelOverhead = 5e-6;
    /** Extra per-layer runtime cost in offload mode (FlexGen). */
    double offloadLayerOverhead = 0.3e-3;
    /** Effective bandwidth of FlexGen's host-side attention. */
    double cpuAttentionBandwidth = 16.0e9;
    /** GPU memory fraction reserved for workspace/fragmentation. */
    double memoryReserve = 0.15;
    /** Zig-zag overlap efficiency = batch / (batch + this). */
    double overlapHalfBatch = 32.0;
};

/** Where inference state lives for one run. */
enum class GpuPlacement {
    Resident, ///< weights + KV + activations fit in GPU memory
    Offloaded ///< weights/KV in host DRAM, streamed over PCIe
};

/** Execution time decomposition of offloading inference (Fig 18). */
struct OffloadBreakdown
{
    double pcieLoadTime = 0.0;     ///< visible (un-hidden) PCIe time
    double gpuComputeTime = 0.0;   ///< GEMMs + on-GPU attention
    double cpuAttentionTime = 0.0; ///< host-side decode attention
    double otherTime = 0.0;        ///< framework / kernel overheads
    double totalTime = 0.0;

    /** Fraction of time spent loading over PCIe. */
    double
    loadFraction() const
    {
        return totalTime > 0.0 ? pcieLoadTime / totalTime : 0.0;
    }
};

/** Result of one simulated GPU run. */
struct GpuRunResult
{
    perf::InferenceTiming timing;
    GpuPlacement placement = GpuPlacement::Resident;
    OffloadBreakdown prefillBreakdown;
    /** Per-step average decode breakdown. */
    OffloadBreakdown decodeBreakdown;
    /** Whole-run breakdown (prefill + all decode steps). */
    OffloadBreakdown totalBreakdown;
};

/** Analytical GPU inference model for one board. */
class GpuPerfModel
{
  public:
    explicit GpuPerfModel(const hw::GpuConfig& gpu,
                          GpuCalibration calibration = {});

    const hw::GpuConfig& gpu() const { return gpu_; }
    const GpuCalibration& calibration() const { return cal_; }

    /** GPU memory available to model state, bytes. */
    std::uint64_t memoryBudget() const;

    /** Placement the engine would choose for this run. */
    GpuPlacement choosePlacement(const model::ModelSpec& spec,
                                 const perf::Workload& w) const;

    /**
     * Simulate a full request. fatal() if host DRAM cannot hold it.
     *
     * With a @p tracer, the run emits a per-step execution timeline
     * starting at the tracer's current clock: a "gpu compute" track,
     * a "pcie transfer" track (weight/KV streaming, with the
     * zig-zag-hidden share annotated — the Fig 18 breakdown,
     * visually), a "cpu attention" track for host-side decode
     * attention, and a visible-load-fraction counter track.
     */
    GpuRunResult run(const model::ModelSpec& spec,
                     const perf::Workload& w,
                     obs::Tracer* tracer = nullptr) const;

    /** Achieved GEMM throughput for Fig 1. */
    double gemmThroughput(std::int64_t m, std::int64_t n,
                          std::int64_t k, DType dtype) const;

    /** Dimension-dependent tensor-core efficiency. */
    double gemmEfficiency(std::int64_t m, std::int64_t n,
                          std::int64_t k) const;

    /** Cost decomposition of one phase step. */
    struct StepCost
    {
        double transfer = 0.0;     ///< PCIe weight/KV streaming
        double gpuBusy = 0.0;      ///< max(compute, device memory)
        double cpuAttention = 0.0;
        double overhead = 0.0;
        double total = 0.0;        ///< after overlap
        double visibleLoad = 0.0;  ///< transfer minus hidden part
    };

    /**
     * Time one phase step under an explicit placement (exposed for
     * the hybrid CPU-GPU execution model, which forces Resident on
     * the GPU's share of the layers).
     */
    StepCost timeStep(const model::ModelSpec& spec, perf::Phase phase,
                      const perf::Workload& w, std::int64_t ctx_len,
                      GpuPlacement placement) const;

  private:
    hw::GpuConfig gpu_;
    GpuCalibration cal_;
};

} // namespace gpu
} // namespace cpullm

#endif // CPULLM_GPU_GPU_MODEL_H
