#ifndef CPULLM_GPU_GPU_ATTRIBUTION_H
#define CPULLM_GPU_GPU_ATTRIBUTION_H

/**
 * @file
 * Bottleneck attribution of GPU (and FlexGen-offload) runs, on the
 * same obs::Attribution tree the CPU engine produces. An offloaded
 * run's phases decompose into the Fig 18 components — visible PCIe
 * load (transfer), GPU compute, host-side decode attention (host
 * memory bandwidth) and framework overhead — so the attributed
 * transfer share of a phase equals the paper's execution-time "load"
 * fraction.
 */

#include "gpu/gpu_model.h"
#include "obs/attribution.h"

namespace cpullm {
namespace gpu {

/**
 * Attribute one GPU run: run -> phase -> component
 * (pcie_load / gpu_compute / cpu_attention / framework). Component
 * times reproduce GpuPerfModel::run's OffloadBreakdown exactly;
 * resident runs only carry gpu_compute and framework components.
 */
obs::Attribution attributeGpuRun(const GpuPerfModel& model,
                                 const model::ModelSpec& spec,
                                 const perf::Workload& w);

/** Same, from an already-simulated result (no re-run). */
obs::Attribution attributeGpuResult(const GpuPerfModel& model,
                                    const GpuRunResult& result);

} // namespace gpu
} // namespace cpullm

#endif // CPULLM_GPU_GPU_ATTRIBUTION_H
