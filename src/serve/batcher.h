#ifndef CPULLM_SERVE_BATCHER_H
#define CPULLM_SERVE_BATCHER_H

/**
 * @file
 * Continuous batching on the *real* host decode path. Where
 * serving_sim.h schedules against timing models, this runtime drives
 * TransformerModel forward passes: in-flight sequences at different
 * positions and lengths fuse into one ragged decode step per
 * iteration (model::TransformerModel::decodeStepRagged), backed by
 * the paged-KV block pool (kv::PagedKvCache) for admission control,
 * preempt-and-requeue eviction, and shared-prefix KV reuse.
 *
 * The scheduling follows Orca/vLLM iteration-level batching (related
 * work [56]/[28]): requests join the running batch the moment a slot
 * and pool capacity are free and leave the moment they finish, so the
 * decode GEMMs run at the highest batch the pool admits — the
 * batch-scaling lever the paper's Fig 8-11 throughput analysis turns.
 */

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "kv/paged_kv_cache.h"
#include "model/transformer.h"
#include "stats/stats.h"

namespace cpullm {
namespace serve {

/** Continuous-batching runtime configuration. */
struct BatcherConfig
{
    /** In-flight sequence cap (the fused decode GEMM's max m). */
    std::int64_t maxBatch = 8;
    /** Paged-KV tokens per block. */
    std::int64_t blockSize = 16;
    /** Paged-KV pool capacity in blocks (shared by all sequences). */
    std::int64_t numBlocks = 256;
    /**
     * Share the KV blocks of a common prompt prefix between requests
     * (copy-on-write; see PagedKvCache::addSequenceWithPrefix).
     */
    bool prefixCache = true;
};

/** One generation request. */
struct BatchRequest
{
    std::vector<std::int64_t> prompt;
    std::int64_t genLen = 16; ///< tokens to generate (greedy)
};

/**
 * Lifetime scheduler counters (exported as host.batch.* in run
 * reports and cpullm_host_batch_* Prometheus gauges).
 */
struct BatchStats
{
    std::int64_t steps = 0;         ///< fused ragged decode steps
    std::int64_t decodedTokens = 0; ///< tokens out of decode steps
    std::int64_t prefillTokens = 0; ///< prompt tokens run (suffixes)
    std::int64_t admitted = 0;      ///< admissions incl. re-admits
    std::int64_t retired = 0;       ///< sequences finished
    std::int64_t preemptions = 0;   ///< evict-and-requeue events
    std::int64_t admissionRejections = 0; ///< pool-full admit refusals
    std::int64_t prefixHits = 0;    ///< admissions that shared a prefix
    std::int64_t prefixTokensReused = 0; ///< prompt tokens not re-run
    std::int64_t occupancySum = 0;  ///< sum of batch size over steps
    std::int64_t peakOccupancy = 0; ///< max in-flight sequences

    /** Mean in-flight sequences per fused decode step. */
    double
    meanOccupancy() const
    {
        return steps > 0 ? static_cast<double>(occupancySum) /
                               static_cast<double>(steps)
                         : 0.0;
    }
};

/**
 * Point-in-time view of the continuous-batching runtime and its
 * paged pool, published process-wide by ContinuousBatcher::run() so
 * telemetry surfaces (/metrics gauges, run reports, `cpullm bench`
 * stat dumps) can export host.batch.* without owning the batcher.
 */
struct HostBatchSnapshot
{
    bool valid = false; ///< false until a batcher publishes
    BatchStats stats;
    std::int64_t maxBatch = 0;      ///< configured slot cap
    std::int64_t liveSequences = 0; ///< in flight at publish time
    std::int64_t blockSize = 0;     ///< paged-pool tokens per block
    std::int64_t blocksTotal = 0;   ///< paged-pool capacity
    std::int64_t blocksInUse = 0;   ///< at publish time
    std::int64_t peakBlocksInUse = 0; ///< pool high watermark
    std::int64_t prefixSharedBlocks = 0; ///< blocks reused via CoW
};

/** Publish @p snap as the process-wide latest (thread-safe). */
void publishHostBatchStats(const HostBatchSnapshot& snap);

/** Latest published snapshot (valid == false before the first). */
HostBatchSnapshot hostBatchSnapshot();

/**
 * Record the latest snapshot as host.batch.* scalars in @p reg
 * (no-op while no batcher has published), mirroring the
 * obs::recordHost*Stats family `cpullm bench` dumps.
 */
void recordHostBatchStats(stats::Registry& reg);

/**
 * @name Process-wide requested configuration
 * The CLI's --batch-max / --kv-blocks / --prefix-cache flags and
 * their CPULLM_BATCH_MAX / CPULLM_KV_BLOCKS / CPULLM_PREFIX_CACHE
 * env equivalents land here; whoever constructs a batcher for the
 * host path starts from requestedBatcherConfig().
 */
/// @{
BatcherConfig requestedBatcherConfig();
void setRequestedBatcherConfig(const BatcherConfig& cfg);

/**
 * Apply the CPULLM_BATCH_MAX / CPULLM_KV_BLOCKS /
 * CPULLM_PREFIX_CACHE environment variables on top of the current
 * requested config. Returns false on a malformed value with a
 * ready-to-print message in @p err_msg (the CLI turns that into its
 * exit-2 usage error); unset/empty variables are ignored.
 */
bool applyBatcherEnv(std::string* err_msg);
/// @}

/**
 * The continuous-batching decode runtime. Typical use:
 *
 *   ContinuousBatcher b(model, cfg);
 *   b.submit({prompt, gen_len});  // any number of requests
 *   auto outs = b.run();          // completions in submit order
 *   const BatchStats& s = b.stats();
 *
 * run() loops: admit waiting requests into free slots (prefilling
 * their prompts, reusing cached prefix blocks), execute one fused
 * ragged decode step over every live sequence, retire finished ones.
 * When the pool cannot admit a step, the youngest live sequence is
 * preempted — its blocks are released and the request re-queued with
 * its generated tokens folded into the prompt, so its completion is
 * unchanged (greedy decoding is deterministic and the fused step is
 * bitwise equal to sequential decode).
 */
class ContinuousBatcher
{
  public:
    ContinuousBatcher(model::TransformerModel& model,
                      const BatcherConfig& cfg);

    /** Enqueue a request; returns its id (completion index). */
    std::int64_t submit(BatchRequest req);

    /**
     * Run until every submitted request has completed; returns the
     * generated tokens per request, in submit order. Requests whose
     * prompt + completion cannot fit the pool even alone are fatal
     * (the pool is sized by configuration, not workload).
     */
    std::vector<std::vector<std::int64_t>> run();

    const BatchStats& stats() const { return stats_; }
    const kv::PagedKvCache& pool() const { return cache_; }

  private:
    /** A live (admitted) sequence. */
    struct Running
    {
        std::int64_t id = 0;  ///< completion index
        std::int64_t seq = 0; ///< paged-cache sequence id
        std::vector<std::int64_t> prompt; ///< current prefill basis
        std::vector<std::int64_t> generated; ///< this admission's out
        std::int64_t lastToken = 0;
        std::int64_t remaining = 0; ///< tokens still to generate
    };

    /** A queued request (possibly a preempted re-queue). */
    struct Waiting
    {
        std::int64_t id = 0;
        std::vector<std::int64_t> prompt;
        std::int64_t remaining = 0;
    };

    /** Admit from the queue while slots and pool capacity allow. */
    void admit();

    /** Evict the youngest live sequence back onto the queue. */
    void preempt();

    /** Publish the process-wide HostBatchSnapshot. */
    void publish() const;

    model::TransformerModel& model_;
    BatcherConfig cfg_;
    kv::PagedKvCache cache_;
    std::deque<Waiting> waiting_;
    std::vector<Running> live_; ///< admission order (oldest first)
    std::vector<std::vector<std::int64_t>> done_;
    BatchStats stats_;
};

} // namespace serve
} // namespace cpullm

#endif // CPULLM_SERVE_BATCHER_H
