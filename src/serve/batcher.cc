#include "serve/batcher.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <mutex>

#include "util/logging.h"

namespace cpullm {
namespace serve {

namespace {

std::mutex g_snapshot_mu;
HostBatchSnapshot g_snapshot;

std::mutex g_requested_mu;
BatcherConfig g_requested;

/** Strict positive-integer env parse ("12", no trailing junk). */
bool
envPositiveInt(const char* value, std::int64_t* out)
{
    char* end = nullptr;
    const long long v = std::strtoll(value, &end, 10);
    if (end == value || *end != '\0' || v < 1)
        return false;
    *out = v;
    return true;
}

} // namespace

void
publishHostBatchStats(const HostBatchSnapshot& snap)
{
    std::lock_guard<std::mutex> lock(g_snapshot_mu);
    g_snapshot = snap;
    g_snapshot.valid = true;
}

HostBatchSnapshot
hostBatchSnapshot()
{
    std::lock_guard<std::mutex> lock(g_snapshot_mu);
    return g_snapshot;
}

void
recordHostBatchStats(stats::Registry& reg)
{
    const HostBatchSnapshot s = hostBatchSnapshot();
    if (!s.valid)
        return;
    auto set = [&reg](const char* name, const char* desc, double v) {
        reg.scalar(name, desc).set(v);
    };
    set("host.batch.steps", "fused ragged decode steps",
        static_cast<double>(s.stats.steps));
    set("host.batch.decoded_tokens",
        "tokens produced by fused decode steps",
        static_cast<double>(s.stats.decodedTokens));
    set("host.batch.prefill_tokens",
        "prompt tokens prefilled (prefix-cache suffixes only)",
        static_cast<double>(s.stats.prefillTokens));
    set("host.batch.admitted", "sequence admissions incl. re-admits",
        static_cast<double>(s.stats.admitted));
    set("host.batch.retired", "sequences completed",
        static_cast<double>(s.stats.retired));
    set("host.batch.preemptions", "evict-and-requeue events",
        static_cast<double>(s.stats.preemptions));
    set("host.batch.admission_rejections",
        "admissions refused because the paged pool was full",
        static_cast<double>(s.stats.admissionRejections));
    set("host.batch.prefix_hits",
        "admissions that reused a cached prompt prefix",
        static_cast<double>(s.stats.prefixHits));
    set("host.batch.prefix_tokens_reused",
        "prompt tokens served from shared prefix blocks",
        static_cast<double>(s.stats.prefixTokensReused));
    set("host.batch.mean_occupancy",
        "mean in-flight sequences per fused decode step",
        s.stats.meanOccupancy());
    set("host.batch.peak_occupancy", "max in-flight sequences",
        static_cast<double>(s.stats.peakOccupancy));
    set("host.batch.kv_blocks_total", "paged-KV pool capacity",
        static_cast<double>(s.blocksTotal));
    set("host.batch.kv_blocks_in_use",
        "paged-KV blocks held at publish time",
        static_cast<double>(s.blocksInUse));
    set("host.batch.kv_blocks_peak", "paged-KV pool high watermark",
        static_cast<double>(s.peakBlocksInUse));
    set("host.batch.kv_prefix_shared_blocks",
        "paged-KV blocks reused via shared prefixes",
        static_cast<double>(s.prefixSharedBlocks));
}

BatcherConfig
requestedBatcherConfig()
{
    std::lock_guard<std::mutex> lock(g_requested_mu);
    return g_requested;
}

void
setRequestedBatcherConfig(const BatcherConfig& cfg)
{
    CPULLM_ASSERT(cfg.maxBatch >= 1 && cfg.blockSize >= 1 &&
                      cfg.numBlocks >= 1,
                  "batcher config values must be >= 1");
    std::lock_guard<std::mutex> lock(g_requested_mu);
    g_requested = cfg;
}

bool
applyBatcherEnv(std::string* err_msg)
{
    BatcherConfig cfg = requestedBatcherConfig();
    struct IntVar
    {
        const char* name;
        std::int64_t* slot;
    };
    const IntVar ints[] = {{"CPULLM_BATCH_MAX", &cfg.maxBatch},
                           {"CPULLM_KV_BLOCKS", &cfg.numBlocks}};
    for (const IntVar& v : ints) {
        const char* env = std::getenv(v.name);
        if (env == nullptr || *env == '\0')
            continue;
        if (!envPositiveInt(env, v.slot)) {
            if (err_msg != nullptr)
                *err_msg = std::string(v.name) +
                           " expects a positive integer, got '" +
                           env + "'";
            return false;
        }
    }
    if (const char* env = std::getenv("CPULLM_PREFIX_CACHE")) {
        const std::string v = env;
        if (v.empty()) {
            // unset-equivalent
        } else if (v == "on") {
            cfg.prefixCache = true;
        } else if (v == "off") {
            cfg.prefixCache = false;
        } else {
            if (err_msg != nullptr)
                *err_msg = "CPULLM_PREFIX_CACHE expects on|off, "
                           "got '" + v + "'";
            return false;
        }
    }
    setRequestedBatcherConfig(cfg);
    return true;
}

ContinuousBatcher::ContinuousBatcher(model::TransformerModel& model,
                                     const BatcherConfig& cfg)
    : model_(model), cfg_(cfg),
      cache_(model.makePagedKvCache(cfg.blockSize, cfg.numBlocks))
{
    CPULLM_ASSERT(cfg.maxBatch >= 1, "maxBatch must be >= 1");
}

std::int64_t
ContinuousBatcher::submit(BatchRequest req)
{
    CPULLM_ASSERT(!req.prompt.empty(), "empty prompt");
    CPULLM_ASSERT(req.genLen >= 1, "genLen must be >= 1");
    const auto id = static_cast<std::int64_t>(done_.size());
    done_.emplace_back();
    Waiting w;
    w.id = id;
    w.prompt = std::move(req.prompt);
    w.remaining = req.genLen;
    waiting_.push_back(std::move(w));
    return id;
}

void
ContinuousBatcher::admit()
{
    while (!waiting_.empty() &&
           static_cast<std::int64_t>(live_.size()) < cfg_.maxBatch) {
        Waiting& w = waiting_.front();

        // Longest cached common prefix among live sequences' prompts
        // (their prompt tokens are fully cached after prefill). At
        // least one suffix token must remain to prefill.
        std::int64_t src = -1, common = 0;
        if (cfg_.prefixCache) {
            const std::int64_t cap =
                static_cast<std::int64_t>(w.prompt.size()) - 1;
            for (const Running& r : live_) {
                const std::int64_t n = std::min(
                    cap,
                    static_cast<std::int64_t>(r.prompt.size()));
                std::int64_t lcp = 0;
                while (lcp < n &&
                       w.prompt[static_cast<std::size_t>(lcp)] ==
                           r.prompt[static_cast<std::size_t>(lcp)])
                    ++lcp;
                if (lcp > common) {
                    common = lcp;
                    src = r.seq;
                }
            }
        }

        const std::int64_t seq =
            src >= 0 ? cache_.addSequenceWithPrefix(src, common)
                     : cache_.addSequence();
        const std::vector<std::int64_t> suffix(
            w.prompt.begin() + static_cast<std::ptrdiff_t>(common),
            w.prompt.end());
        const std::int64_t first =
            model_.prefillPaged(suffix, seq, cache_);
        if (first < 0) {
            // Pool full: back off, leave the request queued.
            cache_.releaseSequence(seq);
            ++stats_.admissionRejections;
            break;
        }

        Running r;
        r.id = w.id;
        r.seq = seq;
        r.prompt = std::move(w.prompt);
        r.generated.push_back(first);
        r.lastToken = first;
        r.remaining = w.remaining - 1;
        live_.push_back(std::move(r));
        waiting_.pop_front();

        ++stats_.admitted;
        stats_.prefillTokens +=
            static_cast<std::int64_t>(suffix.size());
        if (src >= 0) {
            ++stats_.prefixHits;
            stats_.prefixTokensReused += common;
        }
        stats_.peakOccupancy =
            std::max(stats_.peakOccupancy,
                     static_cast<std::int64_t>(live_.size()));
    }
}

void
ContinuousBatcher::preempt()
{
    CPULLM_ASSERT(!live_.empty(), "nothing to preempt");
    Running victim = std::move(live_.back());
    live_.pop_back();

    // Already-generated tokens are final output (greedy decoding is
    // deterministic); fold them into the prompt so the re-admitted
    // prefill resumes exactly where the eviction cut.
    done_[static_cast<std::size_t>(victim.id)].insert(
        done_[static_cast<std::size_t>(victim.id)].end(),
        victim.generated.begin(), victim.generated.end());
    Waiting w;
    w.id = victim.id;
    w.prompt = std::move(victim.prompt);
    w.prompt.insert(w.prompt.end(), victim.generated.begin(),
                    victim.generated.end());
    w.remaining = victim.remaining;
    waiting_.push_front(std::move(w));

    cache_.releaseSequence(victim.seq);
    ++stats_.preemptions;
}

std::vector<std::vector<std::int64_t>>
ContinuousBatcher::run()
{
    while (!waiting_.empty() || !live_.empty()) {
        admit();
        CPULLM_ASSERT(!live_.empty(),
                      "paged pool (", cfg_.numBlocks, " blocks of ",
                      cfg_.blockSize,
                      ") cannot admit any waiting request");

        // Retire sequences whose prefill already satisfied genLen.
        for (std::size_t i = 0; i < live_.size();) {
            if (live_[i].remaining == 0) {
                Running& r = live_[i];
                auto& out = done_[static_cast<std::size_t>(r.id)];
                out.insert(out.end(), r.generated.begin(),
                           r.generated.end());
                cache_.releaseSequence(r.seq);
                ++stats_.retired;
                live_.erase(live_.begin() +
                            static_cast<std::ptrdiff_t>(i));
            } else {
                ++i;
            }
        }
        if (live_.empty())
            continue;

        // One fused ragged decode step over every live sequence;
        // when the pool cannot cover it, evict the youngest sequence
        // and retry with the smaller batch.
        std::vector<std::int64_t> next;
        for (;;) {
            std::vector<model::TransformerModel::RaggedSlot> slots(
                live_.size());
            for (std::size_t i = 0; i < live_.size(); ++i) {
                slots[i].seq = live_[i].seq;
                slots[i].token = live_[i].lastToken;
            }
            next = model_.decodeStepRagged(slots, cache_);
            if (!next.empty())
                break;
            CPULLM_ASSERT(live_.size() > 1,
                          "paged pool too small to decode a single "
                          "sequence");
            preempt();
        }

        ++stats_.steps;
        stats_.occupancySum +=
            static_cast<std::int64_t>(live_.size());
        stats_.decodedTokens +=
            static_cast<std::int64_t>(live_.size());
        for (std::size_t i = 0; i < live_.size(); ++i) {
            live_[i].generated.push_back(next[i]);
            live_[i].lastToken = next[i];
            --live_[i].remaining;
        }
        publish(); // live view for /metrics scrapes mid-run
    }
    publish();
    return done_;
}

void
ContinuousBatcher::publish() const
{
    HostBatchSnapshot s;
    s.stats = stats_;
    s.maxBatch = cfg_.maxBatch;
    s.liveSequences = static_cast<std::int64_t>(live_.size());
    s.blockSize = cache_.blockSize();
    s.blocksTotal = cache_.numBlocks();
    s.blocksInUse = cache_.numBlocks() - cache_.freeBlocks();
    s.peakBlocksInUse =
        cache_.numBlocks() - cache_.stats().minFreeBlocks;
    s.prefixSharedBlocks = cache_.stats().prefixSharedBlocks;
    publishHostBatchStats(s);
}

} // namespace serve
} // namespace cpullm
