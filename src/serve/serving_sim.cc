#include "serve/serving_sim.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>

#include "util/logging.h"
#include "util/rng.h"

namespace cpullm {
namespace serve {

LatencyFn
cpuLatencyFn(const hw::PlatformConfig& platform,
             const model::ModelSpec& spec,
             const perf::Workload& per_request)
{
    auto perf_model = std::make_shared<perf::CpuPerfModel>(platform);
    auto spec_copy = std::make_shared<model::ModelSpec>(spec);
    auto cache =
        std::make_shared<std::map<std::int64_t, BatchLatency>>();
    return [=](std::int64_t batch) {
        auto it = cache->find(batch);
        if (it != cache->end())
            return it->second;
        perf::Workload w = per_request;
        w.batch = batch;
        const perf::InferenceTiming t =
            perf_model->run(*spec_copy, w);
        const BatchLatency lat{t.ttft, t.e2eLatency};
        (*cache)[batch] = lat;
        return lat;
    };
}

LatencyFn
gpuLatencyFn(const hw::GpuConfig& gpu_config,
             const model::ModelSpec& spec,
             const perf::Workload& per_request)
{
    auto gpu_model = std::make_shared<gpu::GpuPerfModel>(gpu_config);
    auto spec_copy = std::make_shared<model::ModelSpec>(spec);
    auto cache =
        std::make_shared<std::map<std::int64_t, BatchLatency>>();
    return [=](std::int64_t batch) {
        auto it = cache->find(batch);
        if (it != cache->end())
            return it->second;
        perf::Workload w = per_request;
        w.batch = batch;
        const auto r = gpu_model->run(*spec_copy, w);
        const BatchLatency lat{r.timing.ttft, r.timing.e2eLatency};
        (*cache)[batch] = lat;
        return lat;
    };
}

namespace {

double
percentile(std::vector<double> values, double p)
{
    CPULLM_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range");
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const double rank = p / 100.0 *
                        static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

} // namespace

double
ServingResult::tokenThroughput(std::int64_t gen_len_per_request) const
{
    if (makespan <= 0.0)
        return 0.0;
    return static_cast<double>(requests.size()) *
           static_cast<double>(gen_len_per_request) / makespan;
}

double
ServingResult::ttftPercentile(double p) const
{
    std::vector<double> v;
    v.reserve(requests.size());
    for (const auto& r : requests)
        v.push_back(r.ttft());
    return percentile(std::move(v), p);
}

double
ServingResult::e2ePercentile(double p) const
{
    std::vector<double> v;
    v.reserve(requests.size());
    for (const auto& r : requests)
        v.push_back(r.e2e());
    return percentile(std::move(v), p);
}

ServingResult
simulateServing(const ServingConfig& cfg, const LatencyFn& device)
{
    CPULLM_ASSERT(cfg.arrivalRate > 0.0, "arrival rate must be > 0");
    CPULLM_ASSERT(cfg.maxBatch >= 1, "maxBatch must be >= 1");
    CPULLM_ASSERT(cfg.numRequests >= 1, "need at least one request");

    // Arrival times (Poisson process).
    Rng rng(cfg.seed);
    std::vector<RequestStats> requests(
        static_cast<std::size_t>(cfg.numRequests));
    double t = 0.0;
    for (auto& r : requests) {
        double u = rng.uniform();
        if (u < 1e-12)
            u = 1e-12;
        t += -std::log(u) / cfg.arrivalRate;
        r.arrival = t;
    }

    ServingResult result;
    double server_free = 0.0;
    std::size_t next = 0; // first request not yet dispatched
    double batch_count = 0.0;
    double batch_sum = 0.0;

    while (next < requests.size()) {
        // The server can look at the queue once it is free and at
        // least one request has arrived.
        const double head_arrival = requests[next].arrival;
        double launch = std::max(server_free, head_arrival);

        // Batching window: wait (bounded) for followers to arrive.
        if (cfg.maxWait > 0.0) {
            const double deadline =
                std::max(head_arrival, server_free) + cfg.maxWait;
            launch = deadline;
        }

        // Collect everything that has arrived by the launch instant,
        // up to the batch cap.
        std::size_t count = 0;
        while (next + count < requests.size() &&
               count < static_cast<std::size_t>(cfg.maxBatch) &&
               requests[next + count].arrival <= launch) {
            ++count;
        }
        if (count == 0) {
            // Window expired with nothing queued (only possible with
            // maxWait > 0 when launch < head arrival): move to the
            // head request.
            launch = head_arrival;
            count = 1;
        }
        // Greedy launch may begin exactly when the batch is complete.
        launch = std::max(launch,
                          requests[next + count - 1].arrival);
        launch = std::max(launch, server_free);

        const BatchLatency lat =
            device(static_cast<std::int64_t>(count));
        for (std::size_t i = 0; i < count; ++i) {
            RequestStats& r = requests[next + i];
            r.start = launch;
            r.firstToken = launch + lat.ttft;
            r.finish = launch + lat.e2e;
            r.batchSize = static_cast<std::int64_t>(count);
        }
        server_free = launch + lat.e2e;
        result.busyTime += lat.e2e;
        batch_sum += static_cast<double>(count);
        batch_count += 1.0;
        next += count;
    }

    result.makespan = server_free;
    result.meanBatchSize =
        batch_count > 0.0 ? batch_sum / batch_count : 0.0;
    result.requests = std::move(requests);
    return result;
}

StepCosts
cpuStepCosts(const hw::PlatformConfig& platform,
             const model::ModelSpec& spec,
             const perf::Workload& per_request)
{
    auto perf_model = std::make_shared<perf::CpuPerfModel>(platform);
    auto spec_copy = std::make_shared<model::ModelSpec>(spec);
    auto prefill_cache =
        std::make_shared<std::map<std::int64_t, double>>();
    auto decode_cache =
        std::make_shared<std::map<std::int64_t, double>>();
    const std::int64_t mid_ctx =
        per_request.promptLen + per_request.genLen / 2;

    StepCosts costs;
    costs.genLen = per_request.genLen;
    costs.prefill = [=](std::int64_t batch) {
        auto it = prefill_cache->find(batch);
        if (it != prefill_cache->end())
            return it->second;
        perf::Workload w = per_request;
        w.batch = batch;
        const double t =
            perf_model
                ->timePhase(*spec_copy, perf::Phase::Prefill, w,
                            w.promptLen)
                .totalTime;
        (*prefill_cache)[batch] = t;
        return t;
    };
    costs.decode = [=](std::int64_t batch) {
        auto it = decode_cache->find(batch);
        if (it != decode_cache->end())
            return it->second;
        perf::Workload w = per_request;
        w.batch = batch;
        const double t =
            perf_model
                ->timePhase(*spec_copy, perf::Phase::Decode, w,
                            mid_ctx)
                .totalTime;
        (*decode_cache)[batch] = t;
        return t;
    };
    return costs;
}

ServingResult
simulateContinuousBatching(const ServingConfig& cfg,
                           const StepCosts& costs)
{
    CPULLM_ASSERT(cfg.arrivalRate > 0.0, "arrival rate must be > 0");
    CPULLM_ASSERT(cfg.maxBatch >= 1, "maxBatch must be >= 1");
    CPULLM_ASSERT(cfg.numRequests >= 1, "need at least one request");
    CPULLM_ASSERT(costs.prefill && costs.decode,
                  "step cost oracles required");

    Rng rng(cfg.seed);
    std::vector<RequestStats> requests(
        static_cast<std::size_t>(cfg.numRequests));
    double t = 0.0;
    for (auto& r : requests) {
        double u = rng.uniform();
        if (u < 1e-12)
            u = 1e-12;
        t += -std::log(u) / cfg.arrivalRate;
        r.arrival = t;
    }

    struct Active
    {
        std::size_t index;
        std::int64_t remaining; // decode tokens still to produce
    };

    ServingResult result;
    std::vector<Active> active;
    std::size_t next = 0;
    std::size_t done = 0;
    double now = 0.0;
    double batch_sum = 0.0;
    double batch_steps = 0.0;

    while (done < requests.size()) {
        // Idle with nothing queued: jump to the next arrival.
        if (active.empty() && next < requests.size() &&
            requests[next].arrival > now) {
            now = requests[next].arrival;
        }

        // Admit arrivals into free slots at this iteration boundary.
        std::size_t admit = 0;
        while (next + admit < requests.size() &&
               active.size() + admit <
                   static_cast<std::size_t>(cfg.maxBatch) &&
               requests[next + admit].arrival <= now) {
            ++admit;
        }
        if (admit > 0) {
            const double start = now;
            const std::size_t running_before = active.size();
            now += costs.prefill(static_cast<std::int64_t>(admit));
            for (std::size_t i = 0; i < admit; ++i) {
                RequestStats& r = requests[next + i];
                r.start = start;
                r.firstToken = now; // prefill emits token #1
                r.batchSize = static_cast<std::int64_t>(
                    running_before + admit);
                if (costs.genLen <= 1) {
                    r.finish = now;
                    ++done;
                } else {
                    active.push_back(
                        Active{next + i, costs.genLen - 1});
                }
            }
            result.busyTime += now - start;
            next += admit;
        }

        if (active.empty())
            continue;

        // One decode iteration over the running batch.
        const double step =
            costs.decode(static_cast<std::int64_t>(active.size()));
        now += step;
        result.busyTime += step;
        batch_sum += static_cast<double>(active.size());
        batch_steps += 1.0;

        for (std::size_t i = 0; i < active.size();) {
            Active& a = active[i];
            if (--a.remaining == 0) {
                requests[a.index].finish = now;
                ++done;
                active[i] = active.back();
                active.pop_back();
            } else {
                ++i;
            }
        }
    }

    result.makespan = now;
    result.meanBatchSize =
        batch_steps > 0.0 ? batch_sum / batch_steps : 0.0;
    result.requests = std::move(requests);
    return result;
}

} // namespace serve
} // namespace cpullm
