#include "serve/serving_sim.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>

#include "gemm/attention.h"
#include "obs/metrics.h"
#include "serve/telemetry.h"
#include "stats/stats.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace cpullm {
namespace serve {

LatencyFn
cpuLatencyFn(const hw::PlatformConfig& platform,
             const model::ModelSpec& spec,
             const perf::Workload& per_request)
{
    auto perf_model = std::make_shared<perf::CpuPerfModel>(platform);
    auto spec_copy = std::make_shared<model::ModelSpec>(spec);
    auto cache =
        std::make_shared<std::map<std::int64_t, BatchLatency>>();
    return [=](std::int64_t batch) {
        auto it = cache->find(batch);
        if (it != cache->end())
            return it->second;
        perf::Workload w = per_request;
        w.batch = batch;
        const perf::InferenceTiming t =
            perf_model->run(*spec_copy, w);
        const BatchLatency lat{t.ttft, t.e2eLatency};
        (*cache)[batch] = lat;
        return lat;
    };
}

LatencyFn
gpuLatencyFn(const hw::GpuConfig& gpu_config,
             const model::ModelSpec& spec,
             const perf::Workload& per_request)
{
    auto gpu_model = std::make_shared<gpu::GpuPerfModel>(gpu_config);
    auto spec_copy = std::make_shared<model::ModelSpec>(spec);
    auto cache =
        std::make_shared<std::map<std::int64_t, BatchLatency>>();
    return [=](std::int64_t batch) {
        auto it = cache->find(batch);
        if (it != cache->end())
            return it->second;
        perf::Workload w = per_request;
        w.batch = batch;
        const auto r = gpu_model->run(*spec_copy, w);
        const BatchLatency lat{r.timing.ttft, r.timing.e2eLatency};
        (*cache)[batch] = lat;
        return lat;
    };
}

double
ServingResult::tokenThroughput(std::int64_t gen_len_per_request) const
{
    if (makespan <= 0.0)
        return 0.0;
    return static_cast<double>(requests.size()) *
           static_cast<double>(gen_len_per_request) / makespan;
}

double
ServingResult::ttftPercentile(double p) const
{
    std::vector<double> v;
    v.reserve(requests.size());
    for (const auto& r : requests)
        v.push_back(r.ttft());
    return stats::percentile(std::move(v), p);
}

double
ServingResult::e2ePercentile(double p) const
{
    std::vector<double> v;
    v.reserve(requests.size());
    for (const auto& r : requests)
        v.push_back(r.e2e());
    return stats::percentile(std::move(v), p);
}

ServingResult
simulateServing(const ServingConfig& cfg, const LatencyFn& device,
                obs::Tracer* tracer, ServingTelemetry* telemetry)
{
    CPULLM_ASSERT(cfg.arrivalRate > 0.0, "arrival rate must be > 0");
    CPULLM_ASSERT(cfg.maxBatch >= 1, "maxBatch must be >= 1");
    CPULLM_ASSERT(cfg.numRequests >= 1, "need at least one request");

    // Arrival times (Poisson process).
    Rng rng(cfg.seed);
    std::vector<RequestStats> requests(
        static_cast<std::size_t>(cfg.numRequests));
    double t = 0.0;
    for (auto& r : requests) {
        double u = rng.uniform();
        if (u < 1e-12)
            u = 1e-12;
        t += -std::log(u) / cfg.arrivalRate;
        r.arrival = t;
    }

    ServingResult result;
    double server_free = 0.0;
    std::size_t next = 0; // first request not yet dispatched
    double batch_count = 0.0;
    double batch_sum = 0.0;

    while (next < requests.size()) {
        // The server can look at the queue once it is free and at
        // least one request has arrived.
        const double head_arrival = requests[next].arrival;
        double launch = std::max(server_free, head_arrival);

        // Batching window: wait (bounded) for followers to arrive.
        if (cfg.maxWait > 0.0) {
            const double deadline =
                std::max(head_arrival, server_free) + cfg.maxWait;
            launch = deadline;
        }

        // Collect everything that has arrived by the launch instant,
        // up to the batch cap.
        std::size_t count = 0;
        while (next + count < requests.size() &&
               count < static_cast<std::size_t>(cfg.maxBatch) &&
               requests[next + count].arrival <= launch) {
            ++count;
        }
        if (count == 0) {
            // Window expired with nothing queued (only possible with
            // maxWait > 0 when launch < head arrival): move to the
            // head request.
            launch = head_arrival;
            count = 1;
        }
        // Greedy launch may begin exactly when the batch is complete.
        launch = std::max(launch,
                          requests[next + count - 1].arrival);
        launch = std::max(launch, server_free);

        const BatchLatency lat =
            device(static_cast<std::int64_t>(count));
        for (std::size_t i = 0; i < count; ++i) {
            RequestStats& r = requests[next + i];
            r.start = launch;
            r.firstToken = launch + lat.ttft;
            r.finish = launch + lat.e2e;
            r.batchSize = static_cast<std::int64_t>(count);
        }
        if (telemetry) {
            for (std::size_t i = 0; i < count; ++i)
                telemetry->onEnqueue(requests[next + i].arrival);
            // Requests that arrived before the launch but did not
            // fit the batch stay behind as backlog.
            std::size_t backlog = 0;
            while (next + count + backlog < requests.size() &&
                   requests[next + count + backlog].arrival <=
                       launch) {
                ++backlog;
            }
            telemetry->onBatchFormed(
                launch, static_cast<std::int64_t>(count),
                static_cast<std::int64_t>(backlog));
            for (std::size_t i = 0; i < count; ++i) {
                const RequestStats& r = requests[next + i];
                telemetry->onPrefillDone(r.firstToken, r.ttft());
                telemetry->onDecodeDone(r.finish, r.ttft(),
                                        r.e2e());
            }
        }
        server_free = launch + lat.e2e;
        result.busyTime += lat.e2e;
        batch_sum += static_cast<double>(count);
        batch_count += 1.0;
        next += count;
    }

    result.makespan = server_free;
    result.meanBatchSize =
        batch_count > 0.0 ? batch_sum / batch_count : 0.0;
    result.requests = std::move(requests);
    if (tracer)
        traceServing(*tracer, result, "static batching");
    return result;
}

StepCosts
cpuStepCosts(const hw::PlatformConfig& platform,
             const model::ModelSpec& spec,
             const perf::Workload& per_request)
{
    auto perf_model = std::make_shared<perf::CpuPerfModel>(platform);
    auto spec_copy = std::make_shared<model::ModelSpec>(spec);
    auto prefill_cache =
        std::make_shared<std::map<std::int64_t, double>>();
    auto decode_cache =
        std::make_shared<std::map<std::int64_t, double>>();
    const std::int64_t mid_ctx =
        per_request.promptLen + per_request.genLen / 2;

    StepCosts costs;
    costs.genLen = per_request.genLen;
    costs.prefill = [=](std::int64_t batch) {
        auto it = prefill_cache->find(batch);
        if (it != prefill_cache->end())
            return it->second;
        perf::Workload w = per_request;
        w.batch = batch;
        const double t =
            perf_model
                ->timePhase(*spec_copy, perf::Phase::Prefill, w,
                            w.promptLen)
                .totalTime;
        (*prefill_cache)[batch] = t;
        return t;
    };
    costs.decode = [=](std::int64_t batch) {
        auto it = decode_cache->find(batch);
        if (it != decode_cache->end())
            return it->second;
        perf::Workload w = per_request;
        w.batch = batch;
        const double t =
            perf_model
                ->timePhase(*spec_copy, perf::Phase::Decode, w,
                            mid_ctx)
                .totalTime;
        (*decode_cache)[batch] = t;
        return t;
    };
    return costs;
}

ServingResult
simulateContinuousBatching(const ServingConfig& cfg,
                           const StepCosts& costs,
                           obs::Tracer* tracer,
                           ServingTelemetry* telemetry)
{
    CPULLM_ASSERT(cfg.arrivalRate > 0.0, "arrival rate must be > 0");
    CPULLM_ASSERT(cfg.maxBatch >= 1, "maxBatch must be >= 1");
    CPULLM_ASSERT(cfg.numRequests >= 1, "need at least one request");
    CPULLM_ASSERT(costs.prefill && costs.decode,
                  "step cost oracles required");

    Rng rng(cfg.seed);
    std::vector<RequestStats> requests(
        static_cast<std::size_t>(cfg.numRequests));
    double t = 0.0;
    for (auto& r : requests) {
        double u = rng.uniform();
        if (u < 1e-12)
            u = 1e-12;
        t += -std::log(u) / cfg.arrivalRate;
        r.arrival = t;
    }

    struct Active
    {
        std::size_t index;
        std::int64_t remaining; // decode tokens still to produce
    };

    ServingResult result;
    std::vector<Active> active;
    std::size_t next = 0;
    std::size_t done = 0;
    double now = 0.0;
    double batch_sum = 0.0;
    double batch_steps = 0.0;

    while (done < requests.size()) {
        // Idle with nothing queued: jump to the next arrival.
        if (active.empty() && next < requests.size() &&
            requests[next].arrival > now) {
            now = requests[next].arrival;
        }

        // Admit arrivals into free slots at this iteration boundary.
        std::size_t admit = 0;
        while (next + admit < requests.size() &&
               active.size() + admit <
                   static_cast<std::size_t>(cfg.maxBatch) &&
               requests[next + admit].arrival <= now) {
            ++admit;
        }
        if (admit > 0) {
            const double start = now;
            const std::size_t running_before = active.size();
            now += costs.prefill(static_cast<std::int64_t>(admit));
            if (telemetry) {
                for (std::size_t i = 0; i < admit; ++i)
                    telemetry->onEnqueue(
                        requests[next + i].arrival);
                std::size_t backlog = 0;
                while (next + admit + backlog < requests.size() &&
                       requests[next + admit + backlog].arrival <=
                           start) {
                    ++backlog;
                }
                telemetry->onBatchFormed(
                    start,
                    static_cast<std::int64_t>(running_before +
                                              admit),
                    static_cast<std::int64_t>(backlog));
            }
            for (std::size_t i = 0; i < admit; ++i) {
                RequestStats& r = requests[next + i];
                r.start = start;
                r.firstToken = now; // prefill emits token #1
                r.batchSize = static_cast<std::int64_t>(
                    running_before + admit);
                if (telemetry)
                    telemetry->onPrefillDone(r.firstToken,
                                             r.ttft());
                if (costs.genLen <= 1) {
                    r.finish = now;
                    ++done;
                    if (telemetry)
                        telemetry->onDecodeDone(r.finish, r.ttft(),
                                                r.e2e());
                } else {
                    active.push_back(
                        Active{next + i, costs.genLen - 1});
                }
            }
            result.busyTime += now - start;
            next += admit;
        }

        if (active.empty())
            continue;

        // One decode iteration over the running batch.
        const double step =
            costs.decode(static_cast<std::int64_t>(active.size()));
        now += step;
        result.busyTime += step;
        batch_sum += static_cast<double>(active.size());
        batch_steps += 1.0;
        if (telemetry)
            telemetry->onStep(
                now, static_cast<std::int64_t>(active.size()));

        for (std::size_t i = 0; i < active.size();) {
            Active& a = active[i];
            if (--a.remaining == 0) {
                requests[a.index].finish = now;
                ++done;
                if (telemetry) {
                    const RequestStats& r = requests[a.index];
                    telemetry->onDecodeDone(r.finish, r.ttft(),
                                            r.e2e());
                }
                active[i] = active.back();
                active.pop_back();
            } else {
                ++i;
            }
        }
    }

    result.makespan = now;
    result.meanBatchSize =
        batch_steps > 0.0 ? batch_sum / batch_steps : 0.0;
    result.requests = std::move(requests);
    if (tracer)
        traceServing(*tracer, result, "continuous batching");
    return result;
}

void
traceServing(obs::Tracer& tracer, const ServingResult& result,
             const std::string& policy)
{
    // One Perfetto track per request: a request span wrapping queue /
    // prefill / decode child spans plus an arrival marker.
    for (std::size_t i = 0; i < result.requests.size(); ++i) {
        const RequestStats& r = result.requests[i];
        const obs::TrackId track = tracer.track(
            "requests", strformat("req %04zu", i));
        tracer.instant("arrival", track, r.arrival);
        obs::Span req = tracer.begin(
            strformat("request %zu", i), "request", track, r.arrival);
        req.annotate("batch_size",
                     static_cast<double>(r.batchSize));
        req.annotate("ttft_s", r.ttft());
        req.annotate("e2e_s", r.e2e());
        tracer.complete("queue", "queue", track, r.arrival,
                        r.queueing());
        tracer.complete("prefill", "prefill", track, r.start,
                        r.firstToken - r.start);
        tracer.complete("decode", "decode", track, r.firstToken,
                        r.finish - r.firstToken);
        req.close(r.finish);
    }

    // Server busy track: merged [start, finish] execution intervals.
    const obs::TrackId server =
        tracer.track("serving (" + policy + ")", "server");
    std::vector<std::pair<double, double>> exec;
    exec.reserve(result.requests.size());
    for (const auto& r : result.requests)
        exec.emplace_back(r.start, r.finish);
    std::sort(exec.begin(), exec.end());
    std::size_t batch_no = 0;
    for (std::size_t i = 0; i < exec.size();) {
        double lo = exec[i].first;
        double hi = exec[i].second;
        std::size_t j = i + 1;
        while (j < exec.size() && exec[j].first <= hi) {
            hi = std::max(hi, exec[j].second);
            ++j;
        }
        tracer.complete(
            strformat("busy %zu (%zu reqs)", batch_no, j - i),
            "busy", server, lo, hi - lo);
        ++batch_no;
        i = j;
    }

    // Counter tracks: queue depth (arrived, not yet launched) and
    // running requests (launched, not yet finished) over time.
    struct Edge
    {
        double time;
        int queue_delta;
        int running_delta;
    };
    std::vector<Edge> edges;
    edges.reserve(result.requests.size() * 3);
    for (const auto& r : result.requests) {
        edges.push_back({r.arrival, +1, 0});
        edges.push_back({r.start, -1, +1});
        edges.push_back({r.finish, 0, -1});
    }
    std::sort(edges.begin(), edges.end(),
              [](const Edge& a, const Edge& b) {
                  return a.time < b.time;
              });
    int queued = 0;
    int running = 0;
    std::size_t k = 0;
    while (k < edges.size()) {
        const double t = edges[k].time;
        while (k < edges.size() && edges[k].time == t) {
            queued += edges[k].queue_delta;
            running += edges[k].running_delta;
            ++k;
        }
        tracer.counter("queue_depth", server.pid, t,
                       static_cast<double>(queued));
        tracer.counter("running_requests", server.pid, t,
                       static_cast<double>(running));
    }
}

obs::RunReport
buildRunReport(const ServingResult& result, const ServingConfig& cfg,
               const std::string& platform_label,
               const std::string& model_name,
               const perf::Workload& per_request,
               const std::string& policy, stats::Registry& reg)
{
    // Histogram bounds: [0, 4x the observed p100] keeps every sample
    // in range while giving the buckets useful resolution.
    auto register_hist = [&](const std::string& name,
                             const std::string& desc,
                             auto&& sample_of) {
        double hi = 0.0;
        for (const auto& r : result.requests)
            hi = std::max(hi, sample_of(r));
        stats::Histogram& h = reg.histogram(
            name, 0.0, std::max(hi, 1e-9) * 1.000001, 512, desc);
        for (const auto& r : result.requests)
            h.sample(sample_of(r));
        return &h;
    };

    const stats::Histogram* ttft = register_hist(
        "serve.ttft", "arrival-relative time to first token, s",
        [](const RequestStats& r) { return r.ttft(); });
    const stats::Histogram* e2e = register_hist(
        "serve.e2e", "arrival-relative request latency, s",
        [](const RequestStats& r) { return r.e2e(); });
    const stats::Histogram* queueing = register_hist(
        "serve.queueing", "time from arrival to batch launch, s",
        [](const RequestStats& r) { return r.queueing(); });

    reg.scalar("serve.requests", "requests served")
        .set(static_cast<double>(result.requests.size()));
    reg.scalar("serve.makespan", "simulated wall time, s")
        .set(result.makespan);
    reg.scalar("serve.utilization", "server busy fraction")
        .set(result.utilization());
    reg.scalar("serve.mean_batch", "mean launched batch size")
        .set(result.meanBatchSize);
    obs::recordHostPoolStats(reg);
    obs::recordHostAttnStats(reg);

    obs::RunReport report;
    report.kind = "serving";
    report.platform = platform_label;
    report.model = model_name;
    report.setWorkload(per_request);
    report.info["policy"] = policy;
    report.metrics["arrival_rate_rps"] = cfg.arrivalRate;
    report.metrics["max_batch"] =
        static_cast<double>(cfg.maxBatch);
    report.metrics["requests"] =
        static_cast<double>(result.requests.size());
    report.metrics["makespan_s"] = result.makespan;
    report.metrics["utilization"] = result.utilization();
    report.metrics["mean_batch_size"] = result.meanBatchSize;
    report.metrics["tokens_per_s"] =
        result.tokenThroughput(per_request.genLen);

    // Percentiles come from the upgraded Registry histograms, so the
    // report and `stats dump` can never disagree.
    auto quantiles = [&](const std::string& prefix,
                         const stats::Histogram& h) {
        report.metrics[prefix + "_p50_s"] = h.quantile(50.0);
        report.metrics[prefix + "_p95_s"] = h.quantile(95.0);
        report.metrics[prefix + "_p99_s"] = h.quantile(99.0);
    };
    quantiles("ttft", *ttft);
    quantiles("e2e", *e2e);
    quantiles("queueing", *queueing);

    // Host-side execution counters: how much of the simulation's own
    // compute ran on the persistent thread pool.
    const ThreadPool::Stats pool = ThreadPool::instance().stats();
    report.metrics["host_pool_size"] =
        static_cast<double>(pool.poolSize);
    report.metrics["host_pool_parallel_ops"] =
        static_cast<double>(pool.parallelOps);
    report.metrics["host_pool_tasks"] =
        static_cast<double>(pool.tasks);
    report.metrics["host_pool_steals"] =
        static_cast<double>(pool.steals);
    const gemm::AttnStats attn = gemm::attnStats();
    report.metrics["host_attn_decode_calls"] =
        static_cast<double>(attn.decodeCalls);
    report.metrics["host_attn_prefill_calls"] =
        static_cast<double>(attn.prefillCalls);
    report.metrics["host_attn_tasks"] =
        static_cast<double>(attn.tasks);
    report.metrics["host_attn_span_rows"] =
        static_cast<double>(attn.spanRows);

    // TPOT per request is (e2e - ttft) / (genLen - 1).
    if (per_request.genLen > 1) {
        std::vector<double> tpot;
        tpot.reserve(result.requests.size());
        for (const auto& r : result.requests)
            tpot.push_back((r.e2e() - r.ttft()) /
                           static_cast<double>(per_request.genLen -
                                               1));
        double hi = 0.0;
        for (double v : tpot)
            hi = std::max(hi, v);
        stats::Histogram& h = reg.histogram(
            "serve.tpot", 0.0, std::max(hi, 1e-9) * 1.000001, 512,
            "per-request time per output token, s");
        for (double v : tpot)
            h.sample(v);
        quantiles("tpot", h);
    }
    return report;
}

} // namespace serve
} // namespace cpullm
