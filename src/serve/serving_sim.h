#ifndef CPULLM_SERVE_SERVING_SIM_H
#define CPULLM_SERVE_SERVING_SIM_H

/**
 * @file
 * Event-driven inference *serving* simulator. The paper's metrics
 * discussion (Section II-C) distinguishes chatbot (TTFT), translation
 * (TPOT), and batch-analytics (throughput) use cases; this module
 * turns the single-request timing models into a served-system view:
 * Poisson arrivals, a bounded batching window, static batches, and
 * tail-latency statistics.
 */

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "gpu/gpu_model.h"
#include "hw/platform.h"
#include "model/spec.h"
#include "obs/run_report.h"
#include "obs/span.h"
#include "perf/cpu_model.h"
#include "perf/workload.h"
#include "stats/stats.h"

namespace cpullm {
namespace serve {

class ServingTelemetry; // serve/telemetry.h

/** Latency of one batched execution. */
struct BatchLatency
{
    double ttft = 0.0; ///< prefill completion for the whole batch
    double e2e = 0.0;  ///< full generation for the whole batch
};

/** Device latency oracle: batch size -> batch latency. */
using LatencyFn = std::function<BatchLatency(std::int64_t batch)>;

/** Memoizing oracle over the CPU timing model. */
LatencyFn cpuLatencyFn(const hw::PlatformConfig& platform,
                       const model::ModelSpec& spec,
                       const perf::Workload& per_request);

/** Memoizing oracle over the GPU (+offload) timing model. */
LatencyFn gpuLatencyFn(const hw::GpuConfig& gpu,
                       const model::ModelSpec& spec,
                       const perf::Workload& per_request);

/** Serving-system configuration. */
struct ServingConfig
{
    /** Mean request arrival rate, requests/second (Poisson). */
    double arrivalRate = 1.0;
    /** Maximum batch size the server forms. */
    std::int64_t maxBatch = 16;
    /**
     * Batching window: after the first queued request, wait at most
     * this long for more arrivals before launching (0 = greedy).
     */
    double maxWait = 0.0;
    /** Requests to simulate. */
    std::int64_t numRequests = 500;
    std::uint64_t seed = 1;
};

/** Per-request observable timings. */
struct RequestStats
{
    double arrival = 0.0;
    double start = 0.0;      ///< batch launch
    double firstToken = 0.0; ///< arrival-relative TTFT is ttft()
    double finish = 0.0;
    std::int64_t batchSize = 0;

    double ttft() const { return firstToken - arrival; }
    double e2e() const { return finish - arrival; }
    double queueing() const { return start - arrival; }
};

/** Aggregate outcome of one serving simulation. */
struct ServingResult
{
    std::vector<RequestStats> requests;
    double makespan = 0.0;
    double busyTime = 0.0;
    double meanBatchSize = 0.0;

    /** Server busy fraction. */
    double
    utilization() const
    {
        return makespan > 0.0 ? busyTime / makespan : 0.0;
    }

    /** Generated-token throughput over the whole run. */
    double tokenThroughput(std::int64_t gen_len_per_request) const;

    /** Percentile (0-100) of arrival-relative TTFT. */
    double ttftPercentile(double p) const;

    /** Percentile (0-100) of arrival-relative E2E latency. */
    double e2ePercentile(double p) const;
};

/**
 * Simulate a single-server static-batching queue.
 *
 * The server launches a batch whenever it is idle and either
 * maxBatch requests are waiting or the oldest waiting request has
 * aged past maxWait (and at least one request is waiting).
 *
 * With a @p tracer, the run emits one Perfetto track per request
 * (queue / prefill / decode spans inside a request span), a server
 * busy track, and queue-depth / running-request counter tracks; see
 * traceServing().
 *
 * With @p telemetry, the per-request lifecycle (enqueue ->
 * batch-formed -> prefill-done -> decode-done) is streamed into the
 * live telemetry layer as the event loop advances, so its HTTP
 * endpoints observe the run in flight (see serve/telemetry.h).
 */
ServingResult simulateServing(const ServingConfig& cfg,
                              const LatencyFn& device,
                              obs::Tracer* tracer = nullptr,
                              ServingTelemetry* telemetry = nullptr);

/** @name Continuous batching (Orca-style iteration scheduling) */
/// @{

/** Per-step cost oracles for iteration-level scheduling. */
struct StepCosts
{
    /** Prefill time for @p batch newly admitted requests. */
    std::function<double(std::int64_t batch)> prefill;
    /** One decode iteration over @p batch active sequences. */
    std::function<double(std::int64_t batch)> decode;
    /** Output tokens each request generates. */
    std::int64_t genLen = 32;
};

/** Memoizing step-cost oracles over the CPU timing model. */
StepCosts cpuStepCosts(const hw::PlatformConfig& platform,
                       const model::ModelSpec& spec,
                       const perf::Workload& per_request);

/**
 * Simulate iteration-level (continuous) batching, the scheduling of
 * Orca/vLLM (related work [56]/[28]): requests join the running batch
 * at iteration boundaries as soon as a slot is free and leave the
 * moment they finish, instead of waiting for whole static batches.
 * maxWait is ignored (admission is continuous).
 *
 * Tracing and live telemetry as in simulateServing(); continuous
 * batching additionally reports per-iteration batch occupancy.
 */
ServingResult
simulateContinuousBatching(const ServingConfig& cfg,
                           const StepCosts& costs,
                           obs::Tracer* tracer = nullptr,
                           ServingTelemetry* telemetry = nullptr);
/// @}

/** @name Observability */
/// @{

/**
 * Emit the request-lifecycle view of a finished simulation into
 * @p tracer: per request one "requests" track holding a request span
 * with nested queue ([arrival, start]) / prefill ([start, first
 * token]) / decode ([first token, finish]) spans plus an arrival
 * marker; a "serving" process with the server's merged busy
 * intervals; and counter tracks for queue depth and running
 * requests. @p policy labels the scheduler ("static batching", ...).
 */
void traceServing(obs::Tracer& tracer, const ServingResult& result,
                  const std::string& policy);

/**
 * Build the machine-readable run report of a serving simulation.
 * TTFT / E2E / queueing percentiles (p50/p95/p99) are sourced from
 * stats::Registry histograms registered into @p reg ("serve.ttft",
 * "serve.e2e", "serve.queueing", seconds), alongside throughput,
 * utilization, and batch-size metrics.
 */
obs::RunReport buildRunReport(const ServingResult& result,
                              const ServingConfig& cfg,
                              const std::string& platform_label,
                              const std::string& model_name,
                              const perf::Workload& per_request,
                              const std::string& policy,
                              stats::Registry& reg);

/// @}

} // namespace serve
} // namespace cpullm

#endif // CPULLM_SERVE_SERVING_SIM_H
