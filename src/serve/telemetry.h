#ifndef CPULLM_SERVE_TELEMETRY_H
#define CPULLM_SERVE_TELEMETRY_H

/**
 * @file
 * Live serving telemetry: per-request lifecycle instrumentation
 * (enqueue -> batch-formed -> prefill-done -> decode-done) recorded
 * into cumulative stats::Registry statistics plus sliding-window
 * time-series (obs/timeseries.h), with SLO targets and a burn-rate
 * evaluator. The paper's Section II-C use-case metrics — TTFT for
 * chatbots, TPOT for translation, throughput for batch analytics —
 * become continuously observable signals instead of end-of-run
 * summaries: an HTTP endpoint (util/http_server.h) can scrape
 * Prometheus text or JSON *while* the simulation runs.
 *
 * Threading: every method is safe to call concurrently; one mutex
 * serializes the simulation thread's hooks against HTTP readers.
 * Timestamps are simulated seconds and must be (approximately)
 * non-decreasing per caller; samples older than one window are
 * dropped from the windowed series but always land in the
 * cumulative registry.
 */

#include <cstdint>
#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/run_report.h"
#include "obs/timeseries.h"
#include "stats/stats.h"

namespace cpullm {
namespace serve {

/** SLO targets in seconds; 0 disables that objective. */
struct SloTargets
{
    double ttft_s = 0.0;
    double tpot_s = 0.0;
    double e2e_s = 0.0;
    /**
     * Error budget: tolerated violation fraction (0.01 = "99% of
     * requests meet the target"). Burn rate is the observed
     * violation fraction divided by this budget; > 1 means the
     * budget is being consumed faster than provisioned.
     */
    double budget = 0.01;

    bool any() const
    {
        return ttft_s > 0.0 || tpot_s > 0.0 || e2e_s > 0.0;
    }
};

/** Outcome of one objective's evaluation. */
struct SloVerdict
{
    std::string metric; ///< "ttft" / "tpot" / "e2e"
    double target_s = 0.0;
    std::uint64_t total = 0;
    std::uint64_t violations = 0;
    double violationRatio = 0.0; ///< NaN until a sample arrives
    double burnRate = 0.0;       ///< violationRatio / budget
    bool met = true;             ///< violationRatio <= budget
};

/** Live telemetry for one serving run. */
class ServingTelemetry
{
  public:
    struct Options
    {
        SloTargets slo;
        /** Trailing window for rates/rolling quantiles, seconds. */
        double window_s = 60.0;
        /** Ring slots per window (resolution of expiry). */
        std::size_t slices = 12;
        /** Upper bound of the live TTFT/E2E histograms, seconds. */
        double latencyHi_s = 120.0;
        /** Upper bound of the live TPOT histogram, seconds. */
        double tpotHi_s = 5.0;
        std::size_t latencyBuckets = 256;
        /** Output tokens per request, for tokens/s (0 = unknown). */
        std::int64_t genLen = 0;

        /** @name Incident triggers (flight-recorder integration)
         *  Each distinct reason fires at most once per run; the
         *  callback runs outside the telemetry mutex. */
        /// @{

        /** An e2e latency sample more than this many standard
         *  deviations above the running mean fires an incident
         *  "latency_zscore_e2e" (0 disables). */
        double incidentZscore = 0.0;
        /** Completed requests required before z-score arming (the
         *  running variance is meaningless on a handful of samples). */
        std::uint64_t zscoreMinSamples = 32;
        /** Any enabled SLO whose burn rate exceeds this fires
         *  "burn_rate_<metric>" (0 disables). 1.0 = "budget consumed
         *  faster than provisioned". */
        double incidentBurnRate = 0.0;
        /** Samples required per objective before burn-rate arming. */
        std::uint64_t burnMinSamples = 16;
        /** Incident sink; typically dumps the flight recorder. */
        std::function<void(const std::string& reason)> onIncident;

        /// @}
    };

    ServingTelemetry() : ServingTelemetry(Options{}) {}
    explicit ServingTelemetry(const Options& opt);

    /** @name Lifecycle hooks (called by the serving simulators) */
    /// @{

    /** A request joined the queue at time @p t. */
    void onEnqueue(double t);

    /** A batch of @p batchSize launched; @p backlog requests remain
     *  queued after the launch. */
    void onBatchFormed(double t, std::int64_t batchSize,
                       std::int64_t backlog);

    /** One scheduler iteration ran with @p active requests (batch
     *  occupancy of continuous batching). */
    void onStep(double t, std::int64_t active);

    /** A request's prefill finished; @p ttft_s is arrival-relative. */
    void onPrefillDone(double t, double ttft_s);

    /** A request finished; latencies are arrival-relative. TPOT is
     *  derived from Options::genLen when known. */
    void onDecodeDone(double t, double ttft_s, double e2e_s);

    /// @}

    /** @name Views (safe concurrently with the hooks) */
    /// @{

    /** Latest event timestamp (the window's "now"). */
    double now() const;

    /** Requests that completed so far. */
    std::uint64_t completed() const;

    /** Deep copy of the cumulative serve.live.* statistics. */
    stats::Registry snapshot() const;

    /** Verdicts for every enabled objective (empty if none). */
    std::vector<SloVerdict> sloVerdicts() const;

    /** Incident reasons fired so far, in firing order. */
    std::vector<std::string> incidents() const;

    /** Prometheus 0.0.4 exposition: cumulative registry + windowed
     *  gauges + SLO series. */
    void writePrometheus(std::ostream& os) const;

    /** JSON view: cumulative stats, windowed aggregates, SLO block. */
    void writeStatsJson(std::ostream& os) const;

    /** Add the SLO verdict block (slo_* metrics, met/violated info
     *  strings) to a run report. No-op with no enabled objective. */
    void annotateReport(obs::RunReport& report) const;

    /** Publish the finished run report for the /report endpoint. */
    void setLatestReportJson(const std::string& json);

    /** Latest published report ("" while the run is in flight). */
    std::string latestReportJson() const;

    /// @}

  private:
    std::vector<SloVerdict> verdictsLocked() const;
    void windowJsonLocked(std::ostream& os) const;
    /** Record @p reason once; appends to @p fired when new. */
    void fireLocked(const std::string& reason,
                    std::vector<std::string>* fired);

    mutable std::mutex mu_;
    Options opt_;
    stats::Registry reg_;

    obs::WindowedCounter arrivals_;
    obs::WindowedCounter completions_;
    obs::WindowedCounter tokens_;
    obs::WindowedGauge queueDepth_;
    obs::WindowedGauge batchOccupancy_;
    obs::RollingHistogram ttftWin_;
    obs::RollingHistogram tpotWin_;
    obs::RollingHistogram e2eWin_;

    double now_ = 0.0;
    std::uint64_t completed_ = 0;
    std::uint64_t ttftTotal_ = 0, ttftViol_ = 0;
    std::uint64_t tpotTotal_ = 0, tpotViol_ = 0;
    std::uint64_t e2eTotal_ = 0, e2eViol_ = 0;

    /** Welford running mean/variance of e2e latency (z-score). */
    double e2eMean_ = 0.0, e2eM2_ = 0.0;
    std::uint64_t e2eN_ = 0;
    std::vector<std::string> incidents_; ///< fired reasons, in order

    std::string latestReport_;
};

} // namespace serve
} // namespace cpullm

#endif // CPULLM_SERVE_TELEMETRY_H
