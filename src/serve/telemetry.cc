#include "serve/telemetry.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "gemm/packed_weights.h"
#include "serve/batcher.h"
#include "obs/counters.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "util/json.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace cpullm {
namespace serve {

namespace {

double
ratioOrNaN(std::uint64_t violations, std::uint64_t total)
{
    return total ? static_cast<double>(violations) /
                       static_cast<double>(total)
                 : std::numeric_limits<double>::quiet_NaN();
}

SloVerdict
makeVerdict(const char* metric, double target, double budget,
            std::uint64_t total, std::uint64_t violations)
{
    SloVerdict v;
    v.metric = metric;
    v.target_s = target;
    v.total = total;
    v.violations = violations;
    v.violationRatio = ratioOrNaN(violations, total);
    v.burnRate = total ? v.violationRatio / budget
                       : std::numeric_limits<double>::quiet_NaN();
    // No samples yet: the objective is trivially met.
    v.met = !total || v.violationRatio <= budget;
    return v;
}

} // namespace

ServingTelemetry::ServingTelemetry(const Options& opt)
    : opt_(opt),
      arrivals_(opt.window_s, opt.slices),
      completions_(opt.window_s, opt.slices),
      tokens_(opt.window_s, opt.slices),
      queueDepth_(opt.window_s, opt.slices),
      batchOccupancy_(opt.window_s, opt.slices),
      ttftWin_(opt.window_s, opt.slices, 0.0, opt.latencyHi_s,
               opt.latencyBuckets),
      tpotWin_(opt.window_s, opt.slices, 0.0, opt.tpotHi_s,
               opt.latencyBuckets),
      e2eWin_(opt.window_s, opt.slices, 0.0, opt.latencyHi_s,
              opt.latencyBuckets)
{
    // Register the cumulative statistics up front so an early scrape
    // sees the full (zero-valued) metric surface, not a shifting one.
    reg_.scalar("serve.live.arrivals", "requests enqueued");
    reg_.scalar("serve.live.batches", "batches launched");
    reg_.scalar("serve.live.completions", "requests finished");
    reg_.scalar("serve.live.tokens", "output tokens generated");
    reg_.distribution("serve.live.queue_depth",
                      "queued requests after each batch launch");
    reg_.distribution("serve.live.batch_occupancy",
                      "requests per launched batch / iteration");
    reg_.histogram("serve.live.ttft", 0.0, opt.latencyHi_s,
                   opt.latencyBuckets,
                   "arrival-relative time to first token, s");
    reg_.histogram("serve.live.tpot", 0.0, opt.tpotHi_s,
                   opt.latencyBuckets,
                   "per-request time per output token, s");
    reg_.histogram("serve.live.e2e", 0.0, opt.latencyHi_s,
                   opt.latencyBuckets,
                   "arrival-relative request latency, s");
}

void
ServingTelemetry::onEnqueue(double t)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        now_ = std::max(now_, t);
        arrivals_.record(t);
        reg_.scalar("serve.live.arrivals") += 1.0;
    }
    obs::flightrec::record(obs::flightrec::EventType::Telemetry,
                           "enqueue",
                           static_cast<std::int64_t>(t * 1e3), 0);
}

void
ServingTelemetry::onBatchFormed(double t, std::int64_t batchSize,
                                std::int64_t backlog)
{
    std::lock_guard<std::mutex> lock(mu_);
    now_ = std::max(now_, t);
    reg_.scalar("serve.live.batches") += 1.0;
    queueDepth_.record(t, static_cast<double>(backlog));
    reg_.distribution("serve.live.queue_depth")
        .sample(static_cast<double>(backlog));
    batchOccupancy_.record(t, static_cast<double>(batchSize));
    reg_.distribution("serve.live.batch_occupancy")
        .sample(static_cast<double>(batchSize));
}

void
ServingTelemetry::onStep(double t, std::int64_t active)
{
    std::lock_guard<std::mutex> lock(mu_);
    now_ = std::max(now_, t);
    batchOccupancy_.record(t, static_cast<double>(active));
    reg_.distribution("serve.live.batch_occupancy")
        .sample(static_cast<double>(active));
}

void
ServingTelemetry::onPrefillDone(double t, double ttft_s)
{
    std::lock_guard<std::mutex> lock(mu_);
    now_ = std::max(now_, t);
    ttftWin_.record(t, ttft_s);
    reg_.histogram("serve.live.ttft", 0.0, opt_.latencyHi_s,
                   opt_.latencyBuckets)
        .sample(ttft_s);
    if (opt_.slo.ttft_s > 0.0) {
        ++ttftTotal_;
        if (ttft_s > opt_.slo.ttft_s)
            ++ttftViol_;
    }
}

void
ServingTelemetry::onDecodeDone(double t, double ttft_s, double e2e_s)
{
    std::vector<std::string> fired;
    {
        std::lock_guard<std::mutex> lock(mu_);
        now_ = std::max(now_, t);
        ++completed_;
        completions_.record(t);
        reg_.scalar("serve.live.completions") += 1.0;
        e2eWin_.record(t, e2e_s);
        reg_.histogram("serve.live.e2e", 0.0, opt_.latencyHi_s,
                       opt_.latencyBuckets)
            .sample(e2e_s);
        if (opt_.slo.e2e_s > 0.0) {
            ++e2eTotal_;
            if (e2e_s > opt_.slo.e2e_s)
                ++e2eViol_;
        }
        if (opt_.genLen > 0) {
            tokens_.record(t, static_cast<double>(opt_.genLen));
            reg_.scalar("serve.live.tokens") +=
                static_cast<double>(opt_.genLen);
        }
        if (opt_.genLen > 1) {
            const double tpot =
                (e2e_s - ttft_s) /
                static_cast<double>(opt_.genLen - 1);
            tpotWin_.record(t, tpot);
            reg_.histogram("serve.live.tpot", 0.0, opt_.tpotHi_s,
                           opt_.latencyBuckets)
                .sample(tpot);
            if (opt_.slo.tpot_s > 0.0) {
                ++tpotTotal_;
                if (tpot > opt_.slo.tpot_s)
                    ++tpotViol_;
            }
        }

        // Latency outlier: z-score of this sample against the running
        // mean/variance of all *prior* completions (Welford), so the
        // outlier itself does not inflate the baseline it is judged
        // against.
        if (opt_.incidentZscore > 0.0 &&
            e2eN_ >= std::max<std::uint64_t>(2, opt_.zscoreMinSamples)) {
            const double var =
                e2eM2_ / static_cast<double>(e2eN_ - 1);
            if (var > 0.0) {
                const double z = (e2e_s - e2eMean_) / std::sqrt(var);
                if (z >= opt_.incidentZscore)
                    fireLocked("latency_zscore_e2e", &fired);
            }
        }
        ++e2eN_;
        const double delta = e2e_s - e2eMean_;
        e2eMean_ += delta / static_cast<double>(e2eN_);
        e2eM2_ += delta * (e2e_s - e2eMean_);

        // SLO burn-rate breach on any armed objective.
        if (opt_.incidentBurnRate > 0.0) {
            for (const SloVerdict& v : verdictsLocked()) {
                if (v.total >= opt_.burnMinSamples &&
                    v.burnRate > opt_.incidentBurnRate) {
                    fireLocked("burn_rate_" + v.metric, &fired);
                }
            }
        }
    }
    obs::flightrec::record(obs::flightrec::EventType::Telemetry,
                           "request_done",
                           static_cast<std::int64_t>(e2e_s * 1e3),
                           static_cast<std::int64_t>(ttft_s * 1e3));
    // Callbacks run unlocked: an incident sink that dumps the flight
    // recorder (or scrapes this telemetry) must not deadlock.
    for (const std::string& reason : fired) {
        obs::flightrec::record(obs::flightrec::EventType::Marker,
                               reason.c_str(), 0, 0);
        if (opt_.onIncident)
            opt_.onIncident(reason);
    }
}

std::vector<std::string>
ServingTelemetry::incidents() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return incidents_;
}

void
ServingTelemetry::fireLocked(const std::string& reason,
                             std::vector<std::string>* fired)
{
    for (const std::string& seen : incidents_) {
        if (seen == reason)
            return; // fire-once per distinct reason
    }
    incidents_.push_back(reason);
    fired->push_back(reason);
}

double
ServingTelemetry::now() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return now_;
}

std::uint64_t
ServingTelemetry::completed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return completed_;
}

stats::Registry
ServingTelemetry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return reg_.snapshot();
}

std::vector<SloVerdict>
ServingTelemetry::verdictsLocked() const
{
    std::vector<SloVerdict> out;
    const SloTargets& slo = opt_.slo;
    if (slo.ttft_s > 0.0)
        out.push_back(makeVerdict("ttft", slo.ttft_s, slo.budget,
                                  ttftTotal_, ttftViol_));
    if (slo.tpot_s > 0.0)
        out.push_back(makeVerdict("tpot", slo.tpot_s, slo.budget,
                                  tpotTotal_, tpotViol_));
    if (slo.e2e_s > 0.0)
        out.push_back(makeVerdict("e2e", slo.e2e_s, slo.budget,
                                  e2eTotal_, e2eViol_));
    return out;
}

std::vector<SloVerdict>
ServingTelemetry::sloVerdicts() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return verdictsLocked();
}

void
ServingTelemetry::writePrometheus(std::ostream& os) const
{
    std::lock_guard<std::mutex> lock(mu_);
    obs::writePrometheus(os, reg_, {});

    const double now = now_;
    auto gauge = [&](const char* name, const char* help, double v) {
        obs::writePromHeader(os, name, help, "gauge");
        obs::writePromSample(os, name, {}, v);
    };
    gauge("cpullm_window_seconds", "trailing telemetry window",
          arrivals_.window());
    gauge("cpullm_window_arrival_rate_rps",
          "windowed request arrival rate", arrivals_.rate(now));
    gauge("cpullm_window_completion_rate_rps",
          "windowed request completion rate", completions_.rate(now));
    gauge("cpullm_window_tokens_per_second",
          "windowed output-token throughput", tokens_.rate(now));

    // Host execution counters: live view of the persistent thread
    // pool driving the functional kernels under this server.
    const ThreadPool::Stats pool = ThreadPool::instance().stats();
    gauge("cpullm_host_pool_size", "persistent host worker threads",
          static_cast<double>(pool.poolSize));
    gauge("cpullm_host_pool_parallel_ops_total",
          "parallelFor calls executed on the host pool",
          static_cast<double>(pool.parallelOps));
    gauge("cpullm_host_pool_tasks_total",
          "loop indices executed via the host pool",
          static_cast<double>(pool.tasks));
    gauge("cpullm_host_pool_steals_total",
          "work chunks stolen between host workers",
          static_cast<double>(pool.steals));

    // Measured hardware counters, when a pmu::Session is live under
    // this server (--counters). Fields the backend cannot measure
    // are NaN and skipped — absent series, not fake zeros.
    const obs::pmu::Session& pmu = obs::pmu::Session::instance();
    if (pmu.active()) {
        gauge("cpullm_host_pmu_backend_perf",
              "1 when the perf_event backend is live, 0 under soft",
              pmu.backend() == obs::pmu::Backend::Perf ? 1.0 : 0.0);
        gauge("cpullm_host_pmu_thread_groups",
              "per-thread perf counter groups open",
              static_cast<double>(pmu.threadGroups()));
        const obs::pmu::PmuCounts c = pmu.readAll();
        auto finiteGauge = [&](const char* name, const char* help,
                               double v) {
            if (std::isfinite(v))
                gauge(name, help, v);
        };
        finiteGauge("cpullm_host_pmu_task_clock_seconds_total",
                    "measured CPU time across threads",
                    c.taskClockNs / 1e9);
        finiteGauge("cpullm_host_pmu_cycles_total",
                    "measured core cycles", c.cycles);
        finiteGauge("cpullm_host_pmu_instructions_total",
                    "measured retired instructions", c.instructions);
        finiteGauge("cpullm_host_pmu_llc_misses_total",
                    "measured last-level cache misses", c.llcMisses);
        finiteGauge("cpullm_host_pmu_llc_references_total",
                    "measured last-level cache references",
                    c.llcReferences);
        finiteGauge("cpullm_host_pmu_branch_misses_total",
                    "measured mispredicted branches", c.branchMisses);
        finiteGauge("cpullm_host_pmu_page_faults_total",
                    "measured minor+major page faults", c.pageFaults);
        finiteGauge("cpullm_host_pmu_context_switches_total",
                    "measured context switches", c.contextSwitches);
        const obs::CounterMetrics m =
            obs::deriveCounterMetrics(c, 0.0);
        finiteGauge("cpullm_host_pmu_ipc",
                    "measured instructions per cycle", m.ipc);
        finiteGauge("cpullm_host_pmu_llc_mpki",
                    "measured LLC misses per kilo-instruction",
                    m.llcMpki);
    }

    // Quantized-weight counters, when --wquant / CPULLM_WQUANT put
    // grouped INT8/INT4 weight caches behind the fused kernels.
    const gemm::QuantStats qs = gemm::quantStats();
    if (qs.tensors > 0) {
        gauge("cpullm_host_quant_tensors",
              "weight tensors quantized group-wise",
              static_cast<double>(qs.tensors));
        gauge("cpullm_host_quant_tensors_i4",
              "of which nibble-packed INT4",
              static_cast<double>(qs.tensorsI4));
        gauge("cpullm_host_quant_packed_bytes",
              "quantized weight bytes resident (codes + scales)",
              static_cast<double>(qs.packedBytes));
        gauge("cpullm_host_quant_native_bytes",
              "packed BF16 tile bytes the quantized forms replace",
              static_cast<double>(qs.nativeBytes));
        if (qs.nativeBytes > 0) {
            gauge("cpullm_host_quant_bytes_ratio",
                  "packed / native weight bytes (lower is better)",
                  static_cast<double>(qs.packedBytes) /
                      static_cast<double>(qs.nativeBytes));
        }
        gauge("cpullm_host_quant_gemm_calls_total",
              "fused-dequant GEMM calls",
              static_cast<double>(qs.gemmCalls));
        gauge("cpullm_host_quant_gemv_calls_total",
              "fused decode GEMV calls (m == 1, INT4)",
              static_cast<double>(qs.gemvCalls));
        gauge("cpullm_host_quant_bytes_streamed_total",
              "packed weight bytes streamed by the fused kernels",
              static_cast<double>(qs.bytesStreamed));
        gauge("cpullm_host_quant_max_abs_err",
              "worst per-weight dequantization error", qs.maxAbsErr);
        gauge("cpullm_host_quant_rms_err",
              "RMS dequantization error over all quantized weights",
              qs.rmsErr);
    }

    // Continuous-batching counters, when a host ContinuousBatcher
    // session has published (--batching continuous). Snapshots are
    // refreshed every fused decode step, so a live scrape sees the
    // in-flight occupancy, not just the final totals.
    const HostBatchSnapshot hb = hostBatchSnapshot();
    if (hb.valid) {
        gauge("cpullm_host_batch_steps_total",
              "fused ragged decode steps executed",
              static_cast<double>(hb.stats.steps));
        gauge("cpullm_host_batch_decoded_tokens_total",
              "tokens produced by fused decode steps",
              static_cast<double>(hb.stats.decodedTokens));
        gauge("cpullm_host_batch_prefill_tokens_total",
              "prompt tokens prefilled (prefix-cache suffixes only)",
              static_cast<double>(hb.stats.prefillTokens));
        gauge("cpullm_host_batch_admitted_total",
              "sequence admissions incl. preemption re-admits",
              static_cast<double>(hb.stats.admitted));
        gauge("cpullm_host_batch_retired_total",
              "sequences completed",
              static_cast<double>(hb.stats.retired));
        gauge("cpullm_host_batch_preemptions_total",
              "evict-and-requeue events under pool pressure",
              static_cast<double>(hb.stats.preemptions));
        gauge("cpullm_host_batch_admission_rejections_total",
              "admissions refused because the paged pool was full",
              static_cast<double>(hb.stats.admissionRejections));
        gauge("cpullm_host_batch_prefix_hits_total",
              "admissions that reused a cached prompt prefix",
              static_cast<double>(hb.stats.prefixHits));
        gauge("cpullm_host_batch_prefix_tokens_reused_total",
              "prompt tokens served from shared prefix blocks",
              static_cast<double>(hb.stats.prefixTokensReused));
        gauge("cpullm_host_batch_live_sequences",
              "sequences in flight at the last publish",
              static_cast<double>(hb.liveSequences));
        gauge("cpullm_host_batch_max_batch",
              "configured in-flight sequence cap",
              static_cast<double>(hb.maxBatch));
        gauge("cpullm_host_batch_mean_occupancy",
              "mean in-flight sequences per fused decode step",
              hb.stats.meanOccupancy());
        gauge("cpullm_host_batch_peak_occupancy",
              "max in-flight sequences",
              static_cast<double>(hb.stats.peakOccupancy));
        gauge("cpullm_host_batch_kv_blocks_total",
              "paged-KV pool capacity in blocks",
              static_cast<double>(hb.blocksTotal));
        gauge("cpullm_host_batch_kv_block_size",
              "paged-KV tokens per block",
              static_cast<double>(hb.blockSize));
        gauge("cpullm_host_batch_kv_blocks_in_use",
              "paged-KV blocks held at the last publish",
              static_cast<double>(hb.blocksInUse));
        gauge("cpullm_host_batch_kv_blocks_peak",
              "paged-KV pool high watermark",
              static_cast<double>(hb.peakBlocksInUse));
        gauge("cpullm_host_batch_kv_prefix_shared_blocks",
              "paged-KV blocks reused via shared prefixes",
              static_cast<double>(hb.prefixSharedBlocks));
    }

    auto gaugeStats = [&](const char* name, const char* help,
                          const obs::WindowedGauge& g) {
        obs::writePromHeader(os, name, help, "gauge");
        obs::writePromSample(os, name, {{"stat", "last"}}, g.last());
        obs::writePromSample(os, name, {{"stat", "mean"}},
                             g.mean(now));
        obs::writePromSample(os, name, {{"stat", "max"}},
                             g.max(now));
    };
    gaugeStats("cpullm_window_queue_depth", "windowed queue depth",
               queueDepth_);
    gaugeStats("cpullm_window_batch_occupancy",
               "windowed batch occupancy", batchOccupancy_);

    auto quantiles = [&](const char* name, const char* help,
                         const obs::RollingHistogram& h) {
        obs::writePromHeader(os, name, help, "gauge");
        obs::writePromSample(os, name, {{"quantile", "0.5"}},
                             h.quantile(now, 50.0));
        obs::writePromSample(os, name, {{"quantile", "0.95"}},
                             h.quantile(now, 95.0));
        obs::writePromSample(os, name, {{"quantile", "0.99"}},
                             h.quantile(now, 99.0));
    };
    quantiles("cpullm_window_ttft_seconds",
              "windowed time-to-first-token quantiles", ttftWin_);
    quantiles("cpullm_window_tpot_seconds",
              "windowed time-per-output-token quantiles", tpotWin_);
    quantiles("cpullm_window_e2e_seconds",
              "windowed end-to-end latency quantiles", e2eWin_);

    const auto verdicts = verdictsLocked();
    if (!verdicts.empty()) {
        auto sloFamily = [&](const char* name, const char* help,
                             auto&& value_of) {
            obs::writePromHeader(os, name, help, "gauge");
            for (const auto& v : verdicts) {
                obs::writePromSample(os, name,
                                     {{"slo", v.metric}},
                                     value_of(v));
            }
        };
        sloFamily("cpullm_slo_target_seconds", "SLO latency target",
                  [](const SloVerdict& v) { return v.target_s; });
        sloFamily("cpullm_slo_violation_ratio",
                  "fraction of requests over target",
                  [](const SloVerdict& v) {
                      return v.violationRatio;
                  });
        sloFamily("cpullm_slo_burn_rate",
                  "violation ratio / error budget",
                  [](const SloVerdict& v) { return v.burnRate; });
        sloFamily("cpullm_slo_met", "1 when within budget",
                  [](const SloVerdict& v) {
                      return v.met ? 1.0 : 0.0;
                  });
    }
}

void
ServingTelemetry::windowJsonLocked(std::ostream& os) const
{
    const double now = now_;
    os << "{\"seconds\":" << jsonNumber(arrivals_.window())
       << ",\"arrival_rate_rps\":"
       << jsonNumber(arrivals_.rate(now))
       << ",\"completion_rate_rps\":"
       << jsonNumber(completions_.rate(now))
       << ",\"tokens_per_second\":" << jsonNumber(tokens_.rate(now))
       << ",\"queue_depth_last\":"
       << jsonNumber(queueDepth_.last())
       << ",\"queue_depth_mean\":"
       << jsonNumber(queueDepth_.mean(now))
       << ",\"batch_occupancy_mean\":"
       << jsonNumber(batchOccupancy_.mean(now));
    auto hist = [&](const char* key,
                    const obs::RollingHistogram& h) {
        os << ",\"" << key
           << "\":{\"p50\":" << jsonNumber(h.quantile(now, 50.0))
           << ",\"p95\":" << jsonNumber(h.quantile(now, 95.0))
           << ",\"p99\":" << jsonNumber(h.quantile(now, 99.0))
           << ",\"n\":" << h.count(now) << "}";
    };
    hist("ttft_s", ttftWin_);
    hist("tpot_s", tpotWin_);
    hist("e2e_s", e2eWin_);
    os << "}";
}

void
ServingTelemetry::writeStatsJson(std::ostream& os) const
{
    std::lock_guard<std::mutex> lock(mu_);
    os << "{\"now_s\":" << jsonNumber(now_) << ",\"completed\":"
       << completed_ << ",\"window\":";
    windowJsonLocked(os);
    os << ",\"slo\":[";
    bool first = true;
    for (const auto& v : verdictsLocked()) {
        if (!first)
            os << ',';
        first = false;
        os << "{\"metric\":" << jsonQuote(v.metric)
           << ",\"target_s\":" << jsonNumber(v.target_s)
           << ",\"total\":" << v.total << ",\"violations\":"
           << v.violations << ",\"violation_ratio\":"
           << jsonNumber(v.violationRatio) << ",\"burn_rate\":"
           << jsonNumber(v.burnRate) << ",\"met\":"
           << (v.met ? "true" : "false") << "}";
    }
    os << "],\"incidents\":[";
    first = true;
    for (const std::string& reason : incidents_) {
        if (!first)
            os << ',';
        first = false;
        os << jsonQuote(reason);
    }
    os << "],\"stats\":";
    obs::writeRegistryJson(os, reg_);
    os << "}";
}

void
ServingTelemetry::annotateReport(obs::RunReport& report) const
{
    const auto verdicts = sloVerdicts();
    if (verdicts.empty())
        return;
    bool all_met = true;
    for (const auto& v : verdicts) {
        report.metrics["slo_" + v.metric + "_target_s"] = v.target_s;
        report.metrics["slo_" + v.metric + "_violation_ratio"] =
            v.violationRatio;
        report.metrics["slo_" + v.metric + "_burn_rate"] =
            v.burnRate;
        report.metrics["slo_" + v.metric + "_violations"] =
            static_cast<double>(v.violations);
        report.info["slo_" + v.metric] =
            v.met ? "met" : "violated";
        all_met = all_met && v.met;
    }
    report.metrics["slo_budget"] = opt_.slo.budget;
    report.info["slo"] = all_met ? "met" : "violated";
}

void
ServingTelemetry::setLatestReportJson(const std::string& json)
{
    std::lock_guard<std::mutex> lock(mu_);
    latestReport_ = json;
}

std::string
ServingTelemetry::latestReportJson() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return latestReport_;
}

} // namespace serve
} // namespace cpullm
