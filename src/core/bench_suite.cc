#include "core/bench_suite.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>

#include "core/experiments.h"
#include "gpu/gpu_attribution.h"
#include "hw/platform.h"
#include "model/spec.h"
#include "obs/attribution.h"
#include "perf/cpu_model.h"
#include "perf/workload.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/string_util.h"

namespace cpullm {
namespace core {

namespace {

/** Metric-key-safe form of a series/x label. */
std::string
sanitizeKey(const std::string& s)
{
    std::string out = s;
    for (char& c : out) {
        if (c == ' ' || c == ',' || c == '/')
            c = '_';
    }
    return out;
}

/** One suite entry: its id/title and the generator to run. */
struct SuiteEntry
{
    std::string id;
    std::string title;
    std::function<BenchBaseline()> run;
};

BenchBaseline
attributionCpuBaseline(const std::string& id, std::int64_t batch)
{
    const perf::CpuPerfModel m(hw::sprDefaultPlatform());
    const model::ModelSpec spec = model::llama2_13b();
    const perf::Workload w = perf::paperWorkload(batch);

    BenchBaseline b;
    b.id = id;
    b.title = strformat("bottleneck attribution: %s on %s, batch %lld",
                        spec.name.c_str(), m.platform().label().c_str(),
                        static_cast<long long>(batch));
    obs::attributeCpuRun(m, spec, w).summaryMetrics(b.metrics);
    const auto t = m.run(spec, w);
    b.metrics["ttft_s"] = t.ttft;
    b.metrics["tpot_s"] = t.tpot;
    b.metrics["e2e_s"] = t.e2eLatency;
    b.metrics["tokens_per_s"] = t.totalThroughput;
    return b;
}

BenchBaseline
attributionGpuBaseline()
{
    const gpu::GpuPerfModel a100(hw::nvidiaA100());
    const model::ModelSpec spec = model::opt30b();
    const perf::Workload w = perf::paperWorkload(8);

    BenchBaseline b;
    b.id = "attr_opt30b_a100_b8";
    b.title = "bottleneck attribution: opt-30b offloaded on A100, "
              "batch 8 (Fig 18 components)";
    gpu::attributeGpuRun(a100, spec, w).summaryMetrics(b.metrics);
    const auto r = a100.run(spec, w);
    b.metrics["e2e_s"] = r.timing.e2eLatency;
    b.metrics["tokens_per_s"] = r.timing.totalThroughput;
    return b;
}

std::vector<SuiteEntry>
suiteEntries(const BenchSuiteOptions& opt)
{
    // Quick mode: the models the CI gate can sweep in seconds.
    std::vector<model::ModelSpec> models;
    for (const auto& m : model::evaluatedModels()) {
        if (!opt.quick || m.weightBytes(DType::BF16) <= 30e9)
            models.push_back(m);
    }
    const std::vector<std::int64_t> batches =
        opt.quick ? std::vector<std::int64_t>{1, 8}
                  : paperBatchSweep();
    const std::vector<std::int64_t> gemm_sizes =
        opt.quick ? std::vector<std::int64_t>{256, 1024, 4096}
                  : std::vector<std::int64_t>{256, 512, 1024, 2048,
                                              4096, 8192, 16384};

    auto fig = [](const std::string& id, const std::string& title,
                  std::function<FigureData()> gen) {
        return SuiteEntry{id, title, [id, gen]() {
                              return baselineFromFigure(gen(), id);
                          }};
    };

    std::vector<SuiteEntry> entries;
    entries.push_back(fig(
        "fig01_gemm", "Fig 1: GEMM TFLOPS vs matrix size",
        [gemm_sizes]() { return fig01GemmThroughput(gemm_sizes); }));
    entries.push_back(fig("fig06_model_memory",
                          "Fig 6: model weight footprints",
                          []() { return fig06ModelMemory(); }));
    entries.push_back(fig("fig07_kv_cache",
                          "Fig 7: KV-cache footprint",
                          []() { return fig07KvCacheFootprint(); }));
    entries.push_back(fig("fig08_latency",
                          "Fig 8: E2E latency, ICL vs SPR",
                          [models, batches]() {
                              return fig08E2eIclVsSpr(models, batches)
                                  .latency;
                          }));
    entries.push_back(fig("fig08_throughput",
                          "Fig 8: E2E throughput, ICL vs SPR",
                          [models, batches]() {
                              return fig08E2eIclVsSpr(models, batches)
                                  .throughput;
                          }));
    entries.push_back(fig("fig09_prefill",
                          "Fig 9: prefill latency, ICL vs SPR",
                          [models, batches]() {
                              return fig09PhaseLatency(models, batches)
                                  .prefill;
                          }));
    entries.push_back(fig("fig09_decode",
                          "Fig 9: decode latency, ICL vs SPR",
                          [models, batches]() {
                              return fig09PhaseLatency(models, batches)
                                  .decode;
                          }));
    entries.push_back(fig("fig10_prefill",
                          "Fig 10: prefill throughput speedup",
                          [models, batches]() {
                              return fig10PhaseThroughput(models,
                                                          batches)
                                  .prefill;
                          }));
    entries.push_back(fig("fig10_decode",
                          "Fig 10: decode throughput speedup",
                          [models, batches]() {
                              return fig10PhaseThroughput(models,
                                                          batches)
                                  .decode;
                          }));
    entries.push_back(fig("fig11_counters",
                          "Fig 11: counters vs batch, LLaMA2-13B",
                          [batches]() {
                              return figCountersVsBatch(
                                  model::llama2_13b(), batches);
                          }));
    entries.push_back(fig("fig13_numa",
                          "Fig 13: SPR NUMA/memory modes",
                          [models, batches]() {
                              return fig13NumaModes(models, batches);
                          }));
    entries.push_back(fig("fig14_cores", "Fig 14: core-count scaling",
                          [models, batches]() {
                              return fig14CoreScaling(models, batches);
                          }));
    entries.push_back(fig("fig15_numa_counters",
                          "Fig 15: counters per NUMA config",
                          []() { return fig15NumaCounters(); }));
    entries.push_back(fig("fig16_core_counters",
                          "Fig 16: counters vs core count",
                          []() { return fig16CoreCounters(); }));
    entries.push_back(fig("fig17_latency",
                          "Fig 17: CPU vs GPU latency, batch 1",
                          []() { return figCpuVsGpu(1).latency; }));
    entries.push_back(fig("fig17_throughput",
                          "Fig 17: CPU vs GPU throughput, batch 1",
                          []() { return figCpuVsGpu(1).throughput; }));
    entries.push_back(fig("fig18_a100_opt30b",
                          "Fig 18: offload breakdown, A100 OPT-30B",
                          []() {
                              return fig18OffloadBreakdown()
                                  .a100Opt30b;
                          }));
    entries.push_back(fig("fig18_h100_opt66b",
                          "Fig 18: offload breakdown, H100 OPT-66B",
                          []() {
                              return fig18OffloadBreakdown()
                                  .h100Opt66b;
                          }));
    if (!opt.quick) {
        entries.push_back(fig("fig12_counters",
                              "Fig 12: counters vs batch, OPT-66B",
                              [batches]() {
                                  return figCountersVsBatch(
                                      model::opt66b(), batches);
                              }));
        entries.push_back(
            fig("fig19_latency",
                "Fig 19: CPU vs GPU latency, batch 16",
                []() { return figCpuVsGpu(16).latency; }));
        entries.push_back(
            fig("fig19_throughput",
                "Fig 19: CPU vs GPU throughput, batch 16",
                []() { return figCpuVsGpu(16).throughput; }));
        entries.push_back(
            fig("fig20_latency", "Fig 20: latency vs seq len, batch 1",
                []() { return figSeqLenSweep(1).latency; }));
    }
    entries.push_back(
        {"attr_llama2_13b_spr_b1",
         "attribution: llama2-13b on SPR, batch 1", []() {
             return attributionCpuBaseline("attr_llama2_13b_spr_b1",
                                           1);
         }});
    entries.push_back(
        {"attr_llama2_13b_spr_b8",
         "attribution: llama2-13b on SPR, batch 8", []() {
             return attributionCpuBaseline("attr_llama2_13b_spr_b8",
                                           8);
         }});
    entries.push_back({"attr_opt30b_a100_b8",
                       "attribution: opt-30b offloaded on A100",
                       []() { return attributionGpuBaseline(); }});
    return entries;
}

} // namespace

std::vector<std::string>
benchSuiteIds(const BenchSuiteOptions& opt)
{
    std::vector<std::string> ids;
    for (const auto& e : suiteEntries(opt))
        ids.push_back(e.id);
    return ids;
}

std::vector<BenchBaseline>
runBenchSuite(const BenchSuiteOptions& opt, stats::Registry* stats)
{
    const auto entries = suiteEntries(opt);
    std::vector<BenchBaseline> out(entries.size());
    // One registry shard per entry, merged after the parallel sweep:
    // the entries run concurrently and Registry is not synchronized.
    std::vector<stats::Registry> shards(entries.size());
    parallelFor(0, entries.size(), [&](std::size_t i) {
        const auto t0 = std::chrono::steady_clock::now();
        out[i] = entries[i].run();
        out[i].id = entries[i].id;
        if (out[i].title.empty())
            out[i].title = entries[i].title;
        out[i].wallSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        shards[i].scalar("bench.entries", "suite entries run") += 1.0;
        shards[i].scalar("bench.metrics", "metric values emitted") +=
            static_cast<double>(out[i].metrics.size());
        shards[i]
            .distribution("bench.entry_seconds",
                          "wall time per suite entry")
            .sample(out[i].wallSeconds);
    });
    if (stats) {
        for (const auto& s : shards)
            stats->merge(s);
    }
    return out;
}

BenchBaseline
baselineFromFigure(const FigureData& f, const std::string& id)
{
    BenchBaseline b;
    b.id = id;
    b.title = f.title();
    for (const auto& s : f.series()) {
        const auto& xs = f.xLabels();
        CPULLM_ASSERT(s.values.size() == xs.size(),
                      "series/x-label arity mismatch in ", f.id());
        for (std::size_t i = 0; i < xs.size(); ++i) {
            b.metrics[sanitizeKey(s.name) + "/" +
                      sanitizeKey(xs[i])] = s.values[i];
        }
    }
    return b;
}

std::string
BenchBaseline::toJson() const
{
    std::string out = strformat(
        "{\n  \"schema\": %d,\n  \"id\": %s,\n  \"title\": %s,\n"
        "  \"wall_s\": %.6g,\n  \"metrics\": {",
        kSchemaVersion, jsonQuote(id).c_str(),
        jsonQuote(title).c_str(), wallSeconds);
    bool first = true;
    for (const auto& [key, value] : metrics) {
        out += strformat("%s\n    %s: %.17g", first ? "" : ",",
                         jsonQuote(key).c_str(), value);
        first = false;
    }
    out += "\n  }\n}\n";
    return out;
}

bool
writeBaseline(const BenchBaseline& b, const std::string& dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const std::string path = dir + "/" + b.filename();
    std::ofstream os(path);
    if (!os) {
        warn("cannot write ", path);
        return false;
    }
    os << b.toJson();
    return static_cast<bool>(os);
}

bool
parseBaseline(const std::string& json, BenchBaseline* out)
{
    JsonValue doc;
    if (!JsonValue::parse(json, &doc) || !doc.isObject())
        return false;
    const JsonValue* schema = doc.find("schema");
    const JsonValue* id = doc.find("id");
    const JsonValue* metrics = doc.find("metrics");
    if (!schema || !schema->isNumber() || !id || !id->isString() ||
        !metrics || !metrics->isObject())
        return false;
    if (static_cast<int>(schema->asNumber()) >
        BenchBaseline::kSchemaVersion)
        return false; // written by a newer tool
    out->id = id->asString();
    out->title = doc.stringOr("title", "");
    out->wallSeconds = doc.numberOr("wall_s", 0.0);
    out->metrics.clear();
    for (const auto& [key, value] : metrics->asObject()) {
        if (!value.isNumber())
            return false;
        out->metrics[key] = value.asNumber();
    }
    return true;
}

bool
loadBaselineFile(const std::string& path, BenchBaseline* out)
{
    std::ifstream is(path);
    if (!is)
        return false;
    std::stringstream ss;
    ss << is.rdbuf();
    return parseBaseline(ss.str(), out);
}

std::vector<BenchBaseline>
loadBaselineDir(const std::string& dir)
{
    std::vector<BenchBaseline> out;
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("BENCH_", 0) != 0 ||
            name.size() < 11 ||
            name.compare(name.size() - 5, 5, ".json") != 0)
            continue;
        BenchBaseline b;
        if (loadBaselineFile(entry.path().string(), &b))
            out.push_back(std::move(b));
        else
            warn("skipping malformed baseline ", entry.path().string());
    }
    if (ec)
        warn("cannot list ", dir, ": ", ec.message());
    std::sort(out.begin(), out.end(),
              [](const BenchBaseline& a, const BenchBaseline& b) {
                  return a.id < b.id;
              });
    return out;
}

MetricDirection
metricDirection(const std::string& key)
{
    std::string k = key;
    std::transform(k.begin(), k.end(), k.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    auto has = [&](const char* needle) {
        return k.find(needle) != std::string::npos;
    };
    // Throughput-flavored keys first: "tokens_per_s" ends in "_s".
    if (has("tokens_per_s") || has("tok_s") || has("throughput") ||
        has("flops") || has("speedup"))
        return MetricDirection::HigherBetter;
    if ((k.size() >= 2 && k.compare(k.size() - 2, 2, "_s") == 0) ||
        has("latency") || has("ttft") || has("tpot") || has("e2e") ||
        has("time") || has("mpki") || has("_bytes") || has("_gb"))
        return MetricDirection::LowerBetter;
    return MetricDirection::Characterization;
}

int
diffBaselines(const std::vector<BenchBaseline>& baseline,
              const std::vector<BenchBaseline>& fresh,
              const BenchDiffOptions& opt, std::ostream& os)
{
    std::map<std::string, const BenchBaseline*> by_id;
    for (const auto& f : fresh)
        by_id[f.id] = &f;

    int failures = 0;
    for (const auto& base : baseline) {
        auto it = by_id.find(base.id);
        if (it == by_id.end()) {
            os << "FAIL " << base.id
               << ": bench missing from fresh results\n";
            ++failures;
            continue;
        }
        const BenchBaseline& cur = *it->second;
        for (const auto& [key, base_v] : base.metrics) {
            auto mv = cur.metrics.find(key);
            if (mv == cur.metrics.end()) {
                os << "FAIL " << base.id << " " << key
                   << ": metric missing from fresh results\n";
                ++failures;
                continue;
            }
            const double cur_v = mv->second;
            const double diff = cur_v - base_v;
            if (std::abs(diff) <= opt.absTol)
                continue;
            const double rel =
                std::abs(diff) /
                std::max(std::abs(base_v), opt.absTol);
            if (rel <= opt.relTol)
                continue;
            const MetricDirection dir = metricDirection(key);
            const bool worse =
                dir == MetricDirection::Characterization ||
                (dir == MetricDirection::LowerBetter ? diff > 0.0
                                                     : diff < 0.0);
            const char* what =
                dir == MetricDirection::Characterization
                    ? "drift"
                    : (worse ? "regression" : "improvement");
            if (worse || opt.strict) {
                os << strformat(
                    "FAIL %s %s: %s %.6g -> %.6g (%+.2f%%)\n",
                    base.id.c_str(), key.c_str(), what, base_v,
                    cur_v, 100.0 * diff / base_v);
                ++failures;
            } else {
                os << strformat(
                    "note %s %s: %s %.6g -> %.6g (%+.2f%%); refresh "
                    "the baseline to lock it in\n",
                    base.id.c_str(), key.c_str(), what, base_v,
                    cur_v, 100.0 * diff / base_v);
            }
        }
        for (const auto& [key, value] : cur.metrics) {
            if (!base.metrics.count(key)) {
                os << "note " << base.id << " " << key
                   << ": new metric (not in baseline)\n";
                if (opt.strict)
                    ++failures;
            }
        }
    }
    for (const auto& f : fresh) {
        const bool known =
            std::any_of(baseline.begin(), baseline.end(),
                        [&](const BenchBaseline& b) {
                            return b.id == f.id;
                        });
        if (!known)
            os << "note " << f.id
               << ": new bench (not in baseline)\n";
    }
    return failures;
}

} // namespace core
} // namespace cpullm
