#include "core/experiments.h"

#include <cmath>

#include "engine/inference_engine.h"
#include "gpu/gpu_model.h"
#include "obs/counters.h"
#include "hw/platform.h"
#include "perf/cpu_model.h"
#include "util/string_util.h"
#include "util/units.h"

namespace cpullm {
namespace core {

namespace {

std::string
batchLabel(const model::ModelSpec& m, std::int64_t b)
{
    return strformat("%s/b%lld", m.name.c_str(),
                     static_cast<long long>(b));
}

} // namespace

std::vector<std::int64_t>
paperBatchSweep()
{
    return {1, 2, 4, 8, 16, 32};
}

Table
table1CpuConfigs()
{
    const hw::CpuConfig icl = hw::iclXeon8352Y();
    const hw::CpuConfig spr = hw::sprXeonMax9468();
    Table t({"", "CPU 1 (ICL CPU)", "CPU 2 (SPR CPU)"});
    t.setCaption("Table I: Evaluation Setup for CPU Servers");
    auto row = [&](const std::string& k, const std::string& a,
                   const std::string& b) {
        t.addRow({k, a, b});
    };
    row("Generation", icl.generation, spr.generation);
    row("CPU", icl.name, spr.name);
    row("Core Frequency",
        strformat("%.2f GHz", icl.coreFrequency / GHz),
        strformat("%.2f GHz", spr.coreFrequency / GHz));
    row("Compute Throughput (BF16)",
        strformat("%.1f TFLOPS (AVX-512)",
                  icl.compute.avx512Bf16FlopsPerSocket / TFLOPS),
        strformat("%.1f (AVX-512) / %.1f (AMX) TFLOPS",
                  spr.compute.avx512Bf16FlopsPerSocket / TFLOPS,
                  spr.compute.amxBf16FlopsPerSocket / TFLOPS));
    row("# cores (per socket) / sockets",
        strformat("%d / %d", icl.coresPerSocket, icl.sockets),
        strformat("%d / %d", spr.coresPerSocket, spr.sockets));
    row("L1D / L2 Cache (per core)",
        strformat("%s / %s", formatBytes(icl.cache.l1dPerCore).c_str(),
                  formatBytes(icl.cache.l2PerCore).c_str()),
        strformat("%s / %s", formatBytes(spr.cache.l1dPerCore).c_str(),
                  formatBytes(spr.cache.l2PerCore).c_str()));
    row("L3 Cache", formatBytes(icl.cache.l3Shared),
        formatBytes(spr.cache.l3Shared));
    row("CPU Memory",
        strformat("%s %s", hw::memKindName(icl.ddr.kind).c_str(),
                  formatBytes(icl.ddr.capacityBytes * 2).c_str()),
        strformat("%s %s, HBM %s",
                  hw::memKindName(spr.ddr.kind).c_str(),
                  formatBytes(spr.ddr.capacityBytes * 2).c_str(),
                  formatBytes(spr.hbm->capacityBytes * 2).c_str()));
    row("Memory Bandwidth (per socket)",
        formatBandwidth(icl.ddr.bandwidth),
        strformat("%s DDR5, %s HBM",
                  formatBandwidth(spr.ddr.bandwidth).c_str(),
                  formatBandwidth(spr.hbm->bandwidth).c_str()));
    return t;
}

Table
table2GpuConfigs()
{
    const hw::GpuConfig a = hw::nvidiaA100();
    const hw::GpuConfig h = hw::nvidiaH100();
    Table t({"", "GPU 1", "GPU 2"});
    t.setCaption("Table II: Evaluation Setup for GPU Servers");
    t.addRow({"GPU", a.name, h.name});
    t.addRow({"Number of SMs", std::to_string(a.numSms),
              std::to_string(h.numSms)});
    t.addRow({"Compute Throughput (BF16)",
              strformat("%.0f TFLOPS", a.bf16Flops / TFLOPS),
              strformat("%.0f TFLOPS", h.bf16Flops / TFLOPS)});
    t.addRow({"L1 / L2 Cache",
              strformat("%s / %s", formatBytes(a.l1PerSm).c_str(),
                        formatBytes(a.l2Shared).c_str()),
              strformat("%s / %s", formatBytes(h.l1PerSm).c_str(),
                        formatBytes(h.l2Shared).c_str())});
    t.addRow({"GPU Memory", formatBytes(a.memory.capacityBytes),
              formatBytes(h.memory.capacityBytes)});
    t.addRow({"Memory Bandwidth", formatBandwidth(a.memory.bandwidth),
              formatBandwidth(h.memory.bandwidth)});
    t.addRow({"CPU-GPU Interconnect",
              strformat("%s, %s", a.pcie.name.c_str(),
                        formatBandwidth(a.pcie.bandwidth).c_str()),
              strformat("%s, %s", h.pcie.name.c_str(),
                        formatBandwidth(h.pcie.bandwidth).c_str())});
    return t;
}

FigureData
fig01GemmThroughput(const std::vector<std::int64_t>& sizes)
{
    FigureData f("fig01", "GEMM throughput across CPUs and GPUs",
                 "matrix dim (M=N=K)", "TFLOPS");
    std::vector<std::string> labels;
    for (auto s : sizes)
        labels.push_back(std::to_string(s));
    f.setXLabels(labels);

    const perf::CpuPerfModel icl(hw::iclDefaultPlatform());
    const perf::CpuPerfModel spr(hw::sprDefaultPlatform());
    const gpu::GpuPerfModel a100(hw::nvidiaA100());
    const gpu::GpuPerfModel h100(hw::nvidiaH100());

    std::vector<double> vi, vs, va, vh;
    for (auto s : sizes) {
        vi.push_back(icl.gemmThroughput(s, s, s, DType::BF16) / TFLOPS);
        vs.push_back(spr.gemmThroughput(s, s, s, DType::BF16) / TFLOPS);
        va.push_back(a100.gemmThroughput(s, s, s, DType::BF16) /
                     TFLOPS);
        vh.push_back(h100.gemmThroughput(s, s, s, DType::BF16) /
                     TFLOPS);
    }
    f.addSeries("8352Y (AVX-512)", std::move(vi));
    f.addSeries("Max9468 (AMX)", std::move(vs));
    f.addSeries("A100", std::move(va));
    f.addSeries("H100", std::move(vh));
    return f;
}

FigureData
fig06ModelMemory()
{
    FigureData f("fig06", "Model weight memory footprint (FP16)",
                 "model", "GB");
    std::vector<model::ModelSpec> zoo = model::evaluatedModels();
    zoo.push_back(model::opt175b());
    std::vector<std::string> labels;
    std::vector<double> gb;
    for (const auto& m : zoo) {
        labels.push_back(m.name);
        gb.push_back(static_cast<double>(m.weightBytes(DType::F16)) /
                     GB);
    }
    f.setXLabels(labels);
    f.addSeries("fp16 weights", std::move(gb));
    return f;
}

FigureData
fig07KvCacheFootprint()
{
    const model::ModelSpec m = model::llama2_13b();
    FigureData f("fig07",
                 "KV cache footprint, " + m.name +
                     " (dotted line = model size)",
                 "sequence length", "GB");
    const std::vector<std::int64_t> seqs = {128,  512,  1024, 2048,
                                            4096, 8192, 16384, 32768};
    std::vector<std::string> labels;
    for (auto s : seqs)
        labels.push_back(std::to_string(s));
    f.setXLabels(labels);
    for (std::int64_t b : {1, 4, 8, 16, 32, 64}) {
        std::vector<double> vals;
        for (auto s : seqs) {
            vals.push_back(static_cast<double>(
                               m.kvCacheBytes(s, b, DType::BF16)) /
                           GB);
        }
        f.addSeries(strformat("batch %lld", static_cast<long long>(b)),
                    std::move(vals));
    }
    f.addSeries("model size (FP16)",
                std::vector<double>(
                    seqs.size(),
                    static_cast<double>(m.weightBytes(DType::F16)) /
                        GB));
    return f;
}

ComparisonFigure
fig08E2eIclVsSpr(const std::vector<model::ModelSpec>& models,
                 const std::vector<std::int64_t>& batches)
{
    ComparisonFigure out;
    out.latency = FigureData("fig08a",
                             "E2E latency normalized to ICL CPU",
                             "model/batch", "normalized latency");
    out.throughput = FigureData(
        "fig08b", "E2E throughput normalized to ICL CPU",
        "model/batch", "normalized throughput");

    const perf::CpuPerfModel icl(hw::iclDefaultPlatform());
    const perf::CpuPerfModel spr(hw::sprDefaultPlatform());

    std::vector<std::string> labels;
    std::vector<double> icl_lat, spr_lat, icl_tput, spr_tput;
    for (const auto& m : models) {
        for (auto b : batches) {
            labels.push_back(batchLabel(m, b));
            const auto w = perf::paperWorkload(b);
            const auto ti = icl.run(m, w);
            const auto ts = spr.run(m, w);
            icl_lat.push_back(1.0);
            spr_lat.push_back(ts.e2eLatency / ti.e2eLatency);
            icl_tput.push_back(1.0);
            spr_tput.push_back(ts.totalThroughput /
                               ti.totalThroughput);
        }
    }
    out.latency.setXLabels(labels);
    out.latency.addSeries("ICL", icl_lat);
    out.latency.addSeries("SPR", spr_lat);
    out.throughput.setXLabels(labels);
    out.throughput.addSeries("ICL", icl_tput);
    out.throughput.addSeries("SPR", spr_tput);
    return out;
}

PhaseFigure
fig09PhaseLatency(const std::vector<model::ModelSpec>& models,
                  const std::vector<std::int64_t>& batches)
{
    PhaseFigure out;
    out.prefill = FigureData("fig09a",
                             "Prefill latency (TTFT) normalized to ICL",
                             "model/batch", "normalized latency");
    out.decode = FigureData("fig09b",
                            "Decode latency (TPOT) normalized to ICL",
                            "model/batch", "normalized latency");
    const perf::CpuPerfModel icl(hw::iclDefaultPlatform());
    const perf::CpuPerfModel spr(hw::sprDefaultPlatform());

    std::vector<std::string> labels;
    std::vector<double> base_p, base_d, spr_p, spr_d;
    for (const auto& m : models) {
        for (auto b : batches) {
            labels.push_back(batchLabel(m, b));
            const auto w = perf::paperWorkload(b);
            const auto ti = icl.run(m, w);
            const auto ts = spr.run(m, w);
            base_p.push_back(1.0);
            base_d.push_back(1.0);
            spr_p.push_back(ts.ttft / ti.ttft);
            spr_d.push_back(ts.tpot / ti.tpot);
        }
    }
    out.prefill.setXLabels(labels);
    out.prefill.addSeries("ICL", base_p);
    out.prefill.addSeries("SPR", spr_p);
    out.decode.setXLabels(labels);
    out.decode.addSeries("ICL", base_d);
    out.decode.addSeries("SPR", spr_d);
    return out;
}

PhaseFigure
fig10PhaseThroughput(const std::vector<model::ModelSpec>& models,
                     const std::vector<std::int64_t>& batches)
{
    PhaseFigure out;
    out.prefill = FigureData("fig10a",
                             "Prefill throughput normalized to ICL",
                             "model/batch", "normalized throughput");
    out.decode = FigureData("fig10b",
                            "Decode throughput normalized to ICL",
                            "model/batch", "normalized throughput");
    const perf::CpuPerfModel icl(hw::iclDefaultPlatform());
    const perf::CpuPerfModel spr(hw::sprDefaultPlatform());

    std::vector<std::string> labels;
    std::vector<double> base_p, base_d, spr_p, spr_d;
    for (const auto& m : models) {
        for (auto b : batches) {
            labels.push_back(batchLabel(m, b));
            const auto w = perf::paperWorkload(b);
            const auto ti = icl.run(m, w);
            const auto ts = spr.run(m, w);
            base_p.push_back(1.0);
            base_d.push_back(1.0);
            spr_p.push_back(ts.prefillThroughput /
                            ti.prefillThroughput);
            spr_d.push_back(ts.decodeThroughput /
                            ti.decodeThroughput);
        }
    }
    out.prefill.setXLabels(labels);
    out.prefill.addSeries("ICL", base_p);
    out.prefill.addSeries("SPR", spr_p);
    out.decode.setXLabels(labels);
    out.decode.addSeries("ICL", base_d);
    out.decode.addSeries("SPR", spr_d);
    return out;
}

FigureData
figCountersVsBatch(const model::ModelSpec& spec,
                   const std::vector<std::int64_t>& batches)
{
    FigureData f(spec.family == "opt" ? "fig12" : "fig11",
                 "Hardware counters on SPR vs batch size, " + spec.name,
                 "batch", "value");
    std::vector<std::string> labels;
    for (auto b : batches)
        labels.push_back(std::to_string(b));
    f.setXLabels(labels);

    engine::CpuInferenceEngine eng(hw::sprDefaultPlatform(), spec);
    const hw::PlatformConfig& plat = eng.platform();
    std::vector<double> mpki, util, loads, stores, ipc, gbps;
    for (auto b : batches) {
        const auto r = eng.infer(perf::paperWorkload(b));
        mpki.push_back(r.counters.mpki());
        util.push_back(r.counters.coreUtilization);
        loads.push_back(r.counters.loads);
        stores.push_back(r.counters.stores);
        // Same derived-metric schema (llc_mpki / ipc / gbps) as the
        // measured host path, so `cpullm counters` and bench_diff
        // compare modeled vs measured without key mapping. Cycles
        // come from the utilization model; DRAM bytes use the same
        // LLC-miss-line estimate as the measured side.
        const double cycles = obs::modeledCycles(
            r.counters.coreUtilization,
            static_cast<double>(plat.coresUsed),
            plat.cpu.coreFrequency, r.timing.e2eLatency);
        const obs::CounterMetrics m = obs::deriveCounterMetrics(
            r.counters.instructions, cycles, r.counters.llcMisses,
            r.counters.llcAccesses,
            r.counters.llcMisses * obs::kCacheLineBytes,
            r.timing.e2eLatency, 0.0);
        ipc.push_back(m.ipc);
        gbps.push_back(m.gbps);
    }
    const double l0 = loads.empty() || loads[0] == 0.0 ? 1.0 : loads[0];
    const double s0 =
        stores.empty() || stores[0] == 0.0 ? 1.0 : stores[0];
    for (auto& v : loads)
        v /= l0;
    for (auto& v : stores)
        v /= s0;
    f.addSeries("llc_mpki", std::move(mpki));
    f.addSeries("core_utilization", std::move(util));
    f.addSeries("norm_loads", std::move(loads));
    f.addSeries("norm_stores", std::move(stores));
    f.addSeries("ipc", std::move(ipc));
    f.addSeries("gbps", std::move(gbps));
    return f;
}

namespace {

/** The six latency/throughput metrics of Figs 13 and 14. */
struct MetricSet
{
    double e2eLatency = 0.0;
    double ttft = 0.0;
    double tpot = 0.0;
    double totalTput = 0.0;
    double prefillTput = 0.0;
    double decodeTput = 0.0;
};

/** Each metric averaged across all (model, batch) workloads. */
MetricSet
averageMetrics(const perf::CpuPerfModel& m,
               const std::vector<model::ModelSpec>& models,
               const std::vector<std::int64_t>& batches)
{
    MetricSet avg;
    double n = 0.0;
    for (const auto& spec : models) {
        for (auto b : batches) {
            const auto t = m.run(spec, perf::paperWorkload(b));
            avg.e2eLatency += t.e2eLatency;
            avg.ttft += t.ttft;
            avg.tpot += t.tpot;
            avg.totalTput += t.totalThroughput;
            avg.prefillTput += t.prefillThroughput;
            avg.decodeTput += t.decodeThroughput;
            n += 1.0;
        }
    }
    avg.e2eLatency /= n;
    avg.ttft /= n;
    avg.tpot /= n;
    avg.totalTput /= n;
    avg.prefillTput /= n;
    avg.decodeTput /= n;
    return avg;
}

FigureData
normalizedMetricFigure(const std::string& id, const std::string& title,
                       const std::vector<std::string>& config_labels,
                       const std::vector<MetricSet>& metrics,
                       std::size_t baseline_index)
{
    FigureData f(id, title, "metric", "normalized to baseline");
    f.setXLabels({"e2e_latency", "ttft", "tpot", "total_tput",
                  "prefill_tput", "decode_tput"});
    const MetricSet& base = metrics[baseline_index];
    for (std::size_t i = 0; i < metrics.size(); ++i) {
        const MetricSet& m = metrics[i];
        f.addSeries(config_labels[i],
                    {m.e2eLatency / base.e2eLatency,
                     m.ttft / base.ttft, m.tpot / base.tpot,
                     m.totalTput / base.totalTput,
                     m.prefillTput / base.prefillTput,
                     m.decodeTput / base.decodeTput});
    }
    return f;
}

} // namespace

FigureData
fig13NumaModes(const std::vector<model::ModelSpec>& models,
               const std::vector<std::int64_t>& batches)
{
    std::vector<std::string> labels;
    std::vector<MetricSet> metrics;
    for (const auto& p : hw::sprModeSweepPlatforms()) {
        labels.push_back(
            strformat("%s_%s",
                      hw::clusteringModeName(p.clusteringMode).c_str(),
                      hw::memoryModeName(p.memoryMode).c_str()));
        const perf::CpuPerfModel m(p);
        metrics.push_back(averageMetrics(m, models, batches));
    }
    return normalizedMetricFigure(
        "fig13",
        "SPR memory/clustering mode comparison (normalized to "
        "quad_cache)",
        labels, metrics, 0);
}

FigureData
fig14CoreScaling(const std::vector<model::ModelSpec>& models,
                 const std::vector<std::int64_t>& batches)
{
    std::vector<std::string> labels;
    std::vector<MetricSet> metrics;
    for (int cores : {12, 24, 48, 96}) {
        labels.push_back(strformat("%dc", cores));
        const perf::CpuPerfModel m(hw::sprPlatform(
            hw::ClusteringMode::Quadrant, hw::MemoryMode::Flat, cores));
        metrics.push_back(averageMetrics(m, models, batches));
    }
    return normalizedMetricFigure(
        "fig14",
        "SPR core-count comparison (normalized to 12 cores)", labels,
        metrics, 0);
}

FigureData
fig15NumaCounters()
{
    FigureData f("fig15",
                 "Counters per NUMA config, LLaMA2-13B batch 8",
                 "config", "value");
    std::vector<std::string> labels;
    std::vector<double> mpki, util, remote;
    for (const auto& p : hw::sprModeSweepPlatforms()) {
        labels.push_back(
            strformat("%s_%s",
                      hw::clusteringModeName(p.clusteringMode).c_str(),
                      hw::memoryModeName(p.memoryMode).c_str()));
        engine::CpuInferenceEngine eng(p, model::llama2_13b());
        const auto r = eng.infer(perf::paperWorkload(8));
        mpki.push_back(r.counters.mpki());
        util.push_back(r.counters.coreUtilization);
        remote.push_back(r.counters.remoteLlcAccesses);
    }
    // Remote accesses normalized to quad_cache for plotting.
    const double r0 = remote[0] > 0.0 ? remote[0] : 1.0;
    for (auto& v : remote)
        v /= r0;
    f.setXLabels(labels);
    f.addSeries("llc_mpki", std::move(mpki));
    f.addSeries("core_utilization", std::move(util));
    f.addSeries("norm_remote_llc", std::move(remote));
    return f;
}

FigureData
fig16CoreCounters()
{
    FigureData f("fig16",
                 "Counters vs core count, LLaMA2-7B batch 8", "cores",
                 "value");
    std::vector<std::string> labels;
    std::vector<double> mpki, util, upi;
    for (int cores : {12, 24, 48, 96}) {
        labels.push_back(std::to_string(cores));
        engine::CpuInferenceEngine eng(
            hw::sprPlatform(hw::ClusteringMode::Quadrant,
                            hw::MemoryMode::Flat, cores),
            model::llama2_7b());
        const auto r = eng.infer(perf::paperWorkload(8));
        mpki.push_back(r.counters.mpki());
        util.push_back(r.counters.coreUtilization);
        upi.push_back(r.counters.upiUtilization);
    }
    f.setXLabels(labels);
    f.addSeries("llc_mpki", std::move(mpki));
    f.addSeries("core_utilization", std::move(util));
    f.addSeries("upi_utilization", std::move(upi));
    return f;
}

ComparisonFigure
figCpuVsGpu(std::int64_t batch,
            const std::vector<model::ModelSpec>& models)
{
    const std::string id = batch == 1 ? "fig17" : "fig19";
    ComparisonFigure out;
    out.latency =
        FigureData(id + "a",
                   strformat("E2E latency vs GPUs, batch %lld "
                             "(normalized to SPR CPU)",
                             static_cast<long long>(batch)),
                   "model", "normalized latency");
    out.throughput =
        FigureData(id + "b",
                   strformat("Throughput vs GPUs, batch %lld "
                             "(normalized to SPR CPU)",
                             static_cast<long long>(batch)),
                   "model", "normalized throughput");

    const perf::CpuPerfModel spr(hw::sprDefaultPlatform());
    const gpu::GpuPerfModel a100(hw::nvidiaA100());
    const gpu::GpuPerfModel h100(hw::nvidiaH100());

    std::vector<std::string> labels;
    std::vector<double> lat_spr, lat_a, lat_h;
    std::vector<double> tput_spr, tput_a, tput_h;
    for (const auto& m : models) {
        labels.push_back(m.name);
        const auto w = perf::paperWorkload(batch);
        const auto ts = spr.run(m, w);
        const auto ra = a100.run(m, w);
        const auto rh = h100.run(m, w);
        lat_spr.push_back(1.0);
        lat_a.push_back(ra.timing.e2eLatency / ts.e2eLatency);
        lat_h.push_back(rh.timing.e2eLatency / ts.e2eLatency);
        tput_spr.push_back(1.0);
        tput_a.push_back(ra.timing.totalThroughput /
                         ts.totalThroughput);
        tput_h.push_back(rh.timing.totalThroughput /
                         ts.totalThroughput);
    }
    out.latency.setXLabels(labels);
    out.latency.addSeries("Max9468", lat_spr);
    out.latency.addSeries("A100", lat_a);
    out.latency.addSeries("H100", lat_h);
    out.throughput.setXLabels(labels);
    out.throughput.addSeries("Max9468", tput_spr);
    out.throughput.addSeries("A100", tput_a);
    out.throughput.addSeries("H100", tput_h);
    return out;
}

OffloadBreakdownFigure
fig18OffloadBreakdown(const std::vector<std::int64_t>& batches)
{
    OffloadBreakdownFigure out;
    auto build = [&](const hw::GpuConfig& g, const model::ModelSpec& m,
                     const std::string& id) {
        FigureData f(id,
                     strformat("%s execution breakdown, %s (offload)",
                               g.name.c_str(), m.name.c_str()),
                     "batch", "fraction of time");
        std::vector<std::string> labels;
        for (auto b : batches)
            labels.push_back(std::to_string(b));
        f.setXLabels(labels);

        const gpu::GpuPerfModel gm(g);
        std::vector<double> load, compute, attn, other;
        for (auto b : batches) {
            const auto r = gm.run(m, perf::paperWorkload(b));
            const auto& bd = r.totalBreakdown;
            const double tot =
                bd.totalTime > 0.0 ? bd.totalTime : 1.0;
            load.push_back(bd.pcieLoadTime / tot);
            compute.push_back(bd.gpuComputeTime / tot);
            attn.push_back(bd.cpuAttentionTime / tot);
            other.push_back(
                std::max(0.0, 1.0 - (bd.pcieLoadTime +
                                     bd.gpuComputeTime +
                                     bd.cpuAttentionTime) /
                                        tot));
        }
        f.addSeries("pcie_load", std::move(load));
        f.addSeries("gpu_compute", std::move(compute));
        f.addSeries("cpu_attention", std::move(attn));
        f.addSeries("other", std::move(other));
        return f;
    };
    out.a100Opt30b =
        build(hw::nvidiaA100(), model::opt30b(), "fig18a");
    out.h100Opt66b =
        build(hw::nvidiaH100(), model::opt66b(), "fig18b");
    return out;
}

ComparisonFigure
figSeqLenSweep(std::int64_t batch,
               const std::vector<std::int64_t>& seq_lens)
{
    const std::string id = batch == 1 ? "fig20" : "fig21";
    ComparisonFigure out;
    out.latency = FigureData(
        id + "a",
        strformat("E2E latency vs input length, batch %lld",
                  static_cast<long long>(batch)),
        "input tokens", "seconds");
    out.throughput = FigureData(
        id + "b",
        strformat("Throughput vs input length, batch %lld",
                  static_cast<long long>(batch)),
        "input tokens", "tokens/s");

    std::vector<std::string> labels;
    for (auto s : seq_lens)
        labels.push_back(std::to_string(s));
    out.latency.setXLabels(labels);
    out.throughput.setXLabels(labels);

    const perf::CpuPerfModel spr(hw::sprDefaultPlatform());
    const gpu::GpuPerfModel a100(hw::nvidiaA100());
    const gpu::GpuPerfModel h100(hw::nvidiaH100());

    const std::vector<model::ModelSpec> models = {
        model::opt13b(), model::opt30b(), model::llama2_70b()};

    for (const auto& m : models) {
        std::vector<double> lat_s, lat_a, lat_h;
        std::vector<double> tput_s, tput_a, tput_h;
        for (auto s : seq_lens) {
            perf::Workload w;
            w.batch = batch;
            w.promptLen = s;
            w.genLen = 32;
            const auto ts = spr.run(m, w);
            const auto ra = a100.run(m, w);
            const auto rh = h100.run(m, w);
            lat_s.push_back(ts.e2eLatency);
            lat_a.push_back(ra.timing.e2eLatency);
            lat_h.push_back(rh.timing.e2eLatency);
            tput_s.push_back(ts.totalThroughput);
            tput_a.push_back(ra.timing.totalThroughput);
            tput_h.push_back(rh.timing.totalThroughput);
        }
        out.latency.addSeries(m.name + "/Max9468", std::move(lat_s));
        out.latency.addSeries(m.name + "/A100", std::move(lat_a));
        out.latency.addSeries(m.name + "/H100", std::move(lat_h));
        out.throughput.addSeries(m.name + "/Max9468",
                                 std::move(tput_s));
        out.throughput.addSeries(m.name + "/A100", std::move(tput_a));
        out.throughput.addSeries(m.name + "/H100", std::move(tput_h));
    }
    return out;
}

} // namespace core
} // namespace cpullm
