#ifndef CPULLM_CORE_EXPERIMENTS_H
#define CPULLM_CORE_EXPERIMENTS_H

/**
 * @file
 * The characterization harness: one generator per evaluation artifact
 * of the paper (DESIGN.md Section 3). Each returns the series the
 * corresponding figure plots; the bench binaries print them, tests
 * assert the trends (the key findings), and EXPERIMENTS.md records
 * paper-vs-measured.
 */

#include <cstdint>
#include <vector>

#include "core/figure.h"
#include "model/spec.h"
#include "util/table.h"

namespace cpullm {
namespace core {

/** Default batch sweep of the paper (Section IV-A). */
std::vector<std::int64_t> paperBatchSweep();

/** A two-panel figure (latency + throughput). */
struct ComparisonFigure
{
    FigureData latency;
    FigureData throughput;
};

/** A two-panel phase figure (prefill + decode). */
struct PhaseFigure
{
    FigureData prefill;
    FigureData decode;
};

/** Table I: CPU server configurations. */
Table table1CpuConfigs();

/** Table II: GPU server configurations. */
Table table2GpuConfigs();

/** Fig 1: GEMM TFLOPS vs. square matrix dimension across devices. */
FigureData fig01GemmThroughput(
    const std::vector<std::int64_t>& sizes = {256, 512, 1024, 2048,
                                              4096, 8192, 16384});

/** Fig 6: FP16 weight footprints of the model zoo (GB). */
FigureData fig06ModelMemory();

/** Fig 7: LLaMA2-13B KV-cache footprint vs. sequence length/batch. */
FigureData fig07KvCacheFootprint();

/**
 * Fig 8: end-to-end latency and throughput of ICL vs SPR, normalized
 * to ICL, over the model zoo and batch sweep.
 */
ComparisonFigure fig08E2eIclVsSpr(
    const std::vector<model::ModelSpec>& models =
        model::evaluatedModels(),
    const std::vector<std::int64_t>& batches = paperBatchSweep());

/** Fig 9: prefill/decode latency, ICL vs SPR (normalized to ICL). */
PhaseFigure fig09PhaseLatency(
    const std::vector<model::ModelSpec>& models =
        model::evaluatedModels(),
    const std::vector<std::int64_t>& batches = paperBatchSweep());

/** Fig 10: prefill/decode throughput, SPR speedup over ICL. */
PhaseFigure fig10PhaseThroughput(
    const std::vector<model::ModelSpec>& models =
        model::evaluatedModels(),
    const std::vector<std::int64_t>& batches = paperBatchSweep());

/**
 * Fig 11/12: modeled hardware counters on SPR vs. batch size
 * (whole-run MPKI, core utilization, loads/stores normalized to
 * batch 1). Fig 11 uses LLaMA2-13B, Fig 12 OPT-66B.
 */
FigureData figCountersVsBatch(
    const model::ModelSpec& spec,
    const std::vector<std::int64_t>& batches = paperBatchSweep());

/**
 * Fig 13: latency/throughput metrics of the four SPR memory +
 * clustering configurations, normalized to quad_cache, averaged over
 * models and batches.
 */
FigureData fig13NumaModes(
    const std::vector<model::ModelSpec>& models =
        model::evaluatedModels(),
    const std::vector<std::int64_t>& batches = paperBatchSweep());

/**
 * Fig 14: the same metric set for 12/24/48/96 cores, normalized to
 * 12 cores.
 */
FigureData fig14CoreScaling(
    const std::vector<model::ModelSpec>& models =
        model::evaluatedModels(),
    const std::vector<std::int64_t>& batches = paperBatchSweep());

/** Fig 15: counters per NUMA config (LLaMA2-13B, batch 8). */
FigureData fig15NumaCounters();

/** Fig 16: counters vs core count (LLaMA2-7B, batch 8). */
FigureData fig16CoreCounters();

/**
 * Fig 17/19: CPU vs A100/H100 end-to-end latency and throughput,
 * normalized to the SPR CPU, at the given batch size.
 */
ComparisonFigure figCpuVsGpu(
    std::int64_t batch,
    const std::vector<model::ModelSpec>& models =
        model::evaluatedModels());

/** Fig 18: GPU offload execution-time breakdown vs batch. */
struct OffloadBreakdownFigure
{
    FigureData a100Opt30b;
    FigureData h100Opt66b;
};
OffloadBreakdownFigure fig18OffloadBreakdown(
    const std::vector<std::int64_t>& batches = {1, 4, 8, 16, 32});

/**
 * Fig 20/21: latency/throughput vs input sequence length at the
 * given batch size, for a representative model subset, all three
 * devices. The sweep extends to 4096 tokens (the paper stops at
 * 1024) to expose the CPU/H100 crossover on LLaMA2-70B, which this
 * model places at a longer sequence than the paper observed (see
 * EXPERIMENTS.md).
 */
ComparisonFigure figSeqLenSweep(
    std::int64_t batch,
    const std::vector<std::int64_t>& seq_lens = {128, 256, 512, 1024,
                                                 2048, 4096});

} // namespace core
} // namespace cpullm

#endif // CPULLM_CORE_EXPERIMENTS_H
