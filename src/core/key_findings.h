#ifndef CPULLM_CORE_KEY_FINDINGS_H
#define CPULLM_CORE_KEY_FINDINGS_H

/**
 * @file
 * Programmatic validation of the paper's five Key Findings against
 * the simulation (DESIGN.md Section 3). Each check runs a reduced
 * sweep and asserts the *trend*, not absolute numbers.
 */

#include <string>
#include <vector>

namespace cpullm {
namespace core {

/** Result of one key-finding validation. */
struct KeyFindingCheck
{
    int number = 0;       ///< paper key-finding number (1-5)
    std::string summary;  ///< what the paper claims
    bool passed = false;
    std::string detail;   ///< measured evidence
};

/** KF1: SPR beats ICL on all models/batches, with sizable speedups. */
KeyFindingCheck checkKeyFinding1();

/** KF2: quad_flat is the best memory/clustering configuration. */
KeyFindingCheck checkKeyFinding2();

/** KF3: 48 cores (one socket) is the best core count; 96 regresses. */
KeyFindingCheck checkKeyFinding3();

/**
 * KF4: GPUs win on models that fit; the CPU wins (latency and
 * throughput) on models that force offloading.
 */
KeyFindingCheck checkKeyFinding4();

/**
 * KF5: at batch 16, the H100 eventually overtakes the CPU on
 * LLaMA2-70B as the sequence grows, while the A100 never does.
 */
KeyFindingCheck checkKeyFinding5();

/** Run all five checks. */
std::vector<KeyFindingCheck> checkAllKeyFindings();

} // namespace core
} // namespace cpullm

#endif // CPULLM_CORE_KEY_FINDINGS_H
