#ifndef CPULLM_CORE_CPULLM_H
#define CPULLM_CORE_CPULLM_H

/**
 * @file
 * Convenience umbrella header: the public API of the cpullm
 * framework. Examples and downstream users can include just this.
 *
 * Layer map (bottom-up):
 *  - isa/gemm:   functional Intel AMX & AVX-512 emulation + GEMMs
 *  - hw/mem:     hardware descriptions and the NUMA memory model
 *  - model/kv:   LLM architectures, functional transformer, KV cache
 *  - perf/gpu:   analytical CPU and GPU(+offload) timing models
 *  - engine:     the CPU inference engine (functional + timing)
 *  - core:       paper-figure experiment harness and key findings
 */

#include "core/bench_suite.h"
#include "core/experiments.h"
#include "core/figure.h"
#include "core/key_findings.h"
#include "engine/inference_engine.h"
#include "gemm/gemm.h"
#include "gpu/gpu_attribution.h"
#include "gpu/gpu_model.h"
#include "hw/platform.h"
#include "isa/amx.h"
#include "isa/avx512.h"
#include "kv/kv_cache.h"
#include "mem/memory_system.h"
#include "model/layers.h"
#include "model/spec.h"
#include "model/transformer.h"
#include "obs/attribution.h"
#include "obs/counters.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/run_report.h"
#include "obs/span.h"
#include "obs/timeseries.h"
#include "opt/hybrid.h"
#include "opt/numa_placement.h"
#include "perf/cpu_model.h"
#include "perf/workload.h"
#include "serve/serving_sim.h"
#include "serve/telemetry.h"
#include "stats/stats.h"
#include "trace/timeline.h"
#include "util/http_server.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/units.h"

#endif // CPULLM_CORE_CPULLM_H
