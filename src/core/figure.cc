#include "core/figure.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace cpullm {
namespace core {

void
FigureData::setXLabels(std::vector<std::string> labels)
{
    CPULLM_ASSERT(series_.empty(),
                  "set x labels before adding series");
    xLabels_ = std::move(labels);
}

void
FigureData::addSeries(const std::string& name,
                      std::vector<double> values)
{
    CPULLM_ASSERT(values.size() == xLabels_.size(),
                  "series '", name, "' has ", values.size(),
                  " values for ", xLabels_.size(), " x labels");
    series_.push_back(Series{name, std::move(values)});
}

bool
FigureData::hasSeries(const std::string& name) const
{
    for (const auto& s : series_)
        if (s.name == name)
            return true;
    return false;
}

const std::vector<double>&
FigureData::seriesValues(const std::string& name) const
{
    for (const auto& s : series_)
        if (s.name == name)
            return s.values;
    CPULLM_PANIC("no series '", name, "' in figure ", id_);
}

double
FigureData::value(const std::string& series_name,
                  const std::string& x_label) const
{
    const auto& vals = seriesValues(series_name);
    for (std::size_t i = 0; i < xLabels_.size(); ++i)
        if (xLabels_[i] == x_label)
            return vals[i];
    CPULLM_PANIC("no x label '", x_label, "' in figure ", id_);
}

Table
FigureData::toTable(int digits) const
{
    std::vector<std::string> headers{xAxis_.empty() ? "x" : xAxis_};
    for (const auto& s : series_)
        headers.push_back(s.name);
    Table t(std::move(headers));
    t.setCaption(strformat("%s: %s (%s)", id_.c_str(), title_.c_str(),
                           yAxis_.c_str()));
    for (std::size_t i = 0; i < xLabels_.size(); ++i) {
        std::vector<std::string> row{xLabels_[i]};
        for (const auto& s : series_)
            row.push_back(formatNumber(s.values[i], digits));
        t.addRow(std::move(row));
    }
    return t;
}

bool
FigureData::writeCsv(const std::string& path) const
{
    std::vector<std::string> headers{xAxis_.empty() ? "x" : xAxis_};
    for (const auto& s : series_)
        headers.push_back(s.name);
    CsvWriter csv(std::move(headers));
    for (std::size_t i = 0; i < xLabels_.size(); ++i) {
        std::vector<std::string> row{xLabels_[i]};
        for (const auto& s : series_)
            row.push_back(formatNumber(s.values[i], 6));
        csv.addRow(std::move(row));
    }
    return csv.writeFile(path);
}

} // namespace core
} // namespace cpullm
