#ifndef CPULLM_CORE_FIGURE_H
#define CPULLM_CORE_FIGURE_H

/**
 * @file
 * Figure data container: the series a paper figure plots, in a form
 * the bench harness can print as a table, dump as CSV, and tests can
 * assert against.
 */

#include <string>
#include <vector>

#include "util/csv.h"
#include "util/table.h"

namespace cpullm {
namespace core {

/** One plotted line/bar group. */
struct Series
{
    std::string name;
    std::vector<double> values;
};

/** Data behind one (sub-)figure. */
class FigureData
{
  public:
    FigureData() = default;
    FigureData(std::string id, std::string title, std::string x_axis,
               std::string y_axis)
        : id_(std::move(id)), title_(std::move(title)),
          xAxis_(std::move(x_axis)), yAxis_(std::move(y_axis))
    {
    }

    const std::string& id() const { return id_; }
    const std::string& title() const { return title_; }
    const std::string& xAxis() const { return xAxis_; }
    const std::string& yAxis() const { return yAxis_; }

    void setXLabels(std::vector<std::string> labels);
    const std::vector<std::string>& xLabels() const { return xLabels_; }

    /** Append a series; its length must match the x labels. */
    void addSeries(const std::string& name, std::vector<double> values);

    const std::vector<Series>& series() const { return series_; }
    bool hasSeries(const std::string& name) const;

    /** Value of @p series_name at @p x_label; panics if absent. */
    double value(const std::string& series_name,
                 const std::string& x_label) const;

    /** All values of one series; panics if absent. */
    const std::vector<double>& seriesValues(
        const std::string& name) const;

    /** Render as a console table (rows = x, columns = series). */
    Table toTable(int digits = 3) const;

    /** Dump as CSV ("x,series1,series2,..."). */
    bool writeCsv(const std::string& path) const;

  private:
    std::string id_;
    std::string title_;
    std::string xAxis_;
    std::string yAxis_;
    std::vector<std::string> xLabels_;
    std::vector<Series> series_;
};

} // namespace core
} // namespace cpullm

#endif // CPULLM_CORE_FIGURE_H
