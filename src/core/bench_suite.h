#ifndef CPULLM_CORE_BENCH_SUITE_H
#define CPULLM_CORE_BENCH_SUITE_H

/**
 * @file
 * Machine-readable bench baselines and the regression gate.
 *
 * runBenchSuite() sweeps the paper-figure experiments plus the
 * bottleneck-attribution runs and flattens each into a BenchBaseline:
 * a schema-versioned {id, title, metrics, wall_s} record written as
 * BENCH_<id>.json. Committed baselines live in bench/baselines/; CI
 * regenerates them and diffBaselines() compares fresh against
 * committed with noise-aware thresholds, failing the build on
 * regression.
 *
 * The simulator is deterministic, so metric drift means a *model*
 * change: the tolerance only absorbs libm/compiler variation across
 * toolchains. Wall-clock is recorded but informational — it depends
 * on the machine, not the model.
 */

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "core/figure.h"
#include "stats/stats.h"

namespace cpullm {
namespace core {

/** One benchmark's flattened result set. */
struct BenchBaseline
{
    static constexpr int kSchemaVersion = 1;

    std::string id;    ///< "fig08_latency", "attr_llama2_13b_spr_b1"
    std::string title; ///< human-readable description
    std::map<std::string, double> metrics; ///< key -> value, sorted
    double wallSeconds = 0.0; ///< generation time (informational)

    /** Canonical file name: BENCH_<id>.json. */
    std::string filename() const { return "BENCH_" + id + ".json"; }

    /** Serialize as one pretty-printed JSON object. */
    std::string toJson() const;
};

/** Suite scope. Quick mode is what the CI gate runs (< 5 min). */
struct BenchSuiteOptions
{
    /**
     * Trim the sweep: models up to 30 GB of BF16 weights, batches
     * {1, 8}, three GEMM sizes. Full mode uses the paper's sweeps.
     */
    bool quick = false;
};

/** Titles/ids of the suite entries (same order runBenchSuite emits). */
std::vector<std::string> benchSuiteIds(const BenchSuiteOptions& opt);

/**
 * Run every suite entry and return its baseline records. Entries run
 * concurrently via parallelFor; each entry samples into its own
 * stats::Registry and the shards are merged into @p stats (entry
 * wall-time distribution, metric counts) when it is non-null.
 */
std::vector<BenchBaseline> runBenchSuite(
    const BenchSuiteOptions& opt = {},
    stats::Registry* stats = nullptr);

/**
 * Flatten one figure into baseline metrics, one per (series, x)
 * point, keyed "<series>/<x_label>" with spaces and commas replaced
 * by '_'.
 */
BenchBaseline baselineFromFigure(const FigureData& f,
                                 const std::string& id);

/** Write @p b as <dir>/BENCH_<id>.json (dir created). */
bool writeBaseline(const BenchBaseline& b, const std::string& dir);

/** Parse one BENCH_*.json document. False on malformed input. */
bool parseBaseline(const std::string& json, BenchBaseline* out);

/** Load one baseline file. False if unreadable or malformed. */
bool loadBaselineFile(const std::string& path, BenchBaseline* out);

/**
 * Load every BENCH_*.json in @p dir, sorted by id. Unparseable files
 * are skipped with a warning.
 */
std::vector<BenchBaseline> loadBaselineDir(const std::string& dir);

/** How a metric's drift is judged. */
enum class MetricDirection {
    LowerBetter,      ///< latencies, times, MPKI, footprints
    HigherBetter,     ///< throughputs, TFLOPS, speedups
    Characterization, ///< shares, ratios: any drift is suspect
};

/** Direction heuristic from the metric key. */
MetricDirection metricDirection(const std::string& key);

/** Thresholds for diffBaselines. */
struct BenchDiffOptions
{
    /**
     * Relative tolerance. The simulator is deterministic; 2% absorbs
     * libm/compiler differences, nothing else.
     */
    double relTol = 0.02;
    /** Absolute slack for values near zero. */
    double absTol = 1e-9;
    /** Also fail on improvements (baseline refresh hygiene). */
    bool strict = false;
};

/**
 * Compare @p fresh against @p baseline, printing one line per
 * difference to @p os. Returns the number of failures: regressions,
 * characterization drifts, and baseline benches/metrics missing from
 * fresh. Improvements and brand-new metrics are notes unless
 * opt.strict. Wall-clock is never judged.
 */
int diffBaselines(const std::vector<BenchBaseline>& baseline,
                  const std::vector<BenchBaseline>& fresh,
                  const BenchDiffOptions& opt, std::ostream& os);

} // namespace core
} // namespace cpullm

#endif // CPULLM_CORE_BENCH_SUITE_H
